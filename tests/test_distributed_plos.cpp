// Tests for the distributed (ADMM) PLOS trainer, including agreement with
// the centralized solver and network accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/assert.hpp"
#include "core/centralized_plos.hpp"
#include "core/distributed_plos.hpp"
#include "core/evaluation.hpp"
#include "data/labeling.hpp"
#include "data/synthetic.hpp"
#include "net/simnet.hpp"
#include "rng/engine.hpp"

namespace plos::core {
namespace {

data::MultiUserDataset make_population(std::size_t num_users,
                                       double max_rotation,
                                       std::size_t num_providers,
                                       double training_rate,
                                       std::uint64_t seed,
                                       std::size_t points_per_class = 30) {
  data::SyntheticSpec spec;
  spec.num_users = num_users;
  spec.points_per_class = points_per_class;
  spec.max_rotation = max_rotation;
  rng::Engine engine(seed);
  auto dataset = data::generate_synthetic(spec, engine);
  std::vector<std::size_t> providers(num_providers);
  for (std::size_t i = 0; i < num_providers; ++i) providers[i] = i;
  data::reveal_labels(dataset, providers, training_rate, engine);
  return dataset;
}

DistributedPlosOptions fast_options() {
  DistributedPlosOptions options;
  options.params.lambda = 100.0;
  options.params.cl = 10.0;
  options.params.cu = 1.0;
  options.cutting_plane.epsilon = 1e-2;
  options.cccp.max_iterations = 4;
  options.max_admm_iterations = 120;
  options.eps_abs = 1e-3;
  return options;
}

CentralizedPlosOptions matching_centralized() {
  CentralizedPlosOptions options;
  options.params.lambda = 100.0;
  options.params.cl = 10.0;
  options.params.cu = 1.0;
  options.cutting_plane.epsilon = 1e-2;
  options.cccp.max_iterations = 4;
  return options;
}

TEST(DistributedPlos, LearnsOnSimplePopulation) {
  auto dataset = make_population(4, 0.3, 2, 0.4, 1);
  const auto result = train_distributed_plos(dataset, fast_options());
  const auto report = evaluate(dataset, predict_all(dataset, result.model));
  EXPECT_GT(report.providers, 0.8);
  EXPECT_GT(report.non_providers, 0.8);
}

TEST(DistributedPlos, AccuracyCloseToCentralized) {
  // The paper's Fig. 11: |accuracy difference| stays within a few percent.
  auto dataset = make_population(6, std::numbers::pi / 3.0, 3, 0.3, 2);
  const auto distributed = train_distributed_plos(dataset, fast_options());
  const auto centralized =
      train_centralized_plos(dataset, matching_centralized());
  const auto rd = evaluate(dataset, predict_all(dataset, distributed.model));
  const auto rc = evaluate(dataset, predict_all(dataset, centralized.model));
  EXPECT_NEAR(rd.providers, rc.providers, 0.10);
  EXPECT_NEAR(rd.non_providers, rc.non_providers, 0.10);
}

TEST(DistributedPlos, ResidualsShrinkWithinCccpRound) {
  auto dataset = make_population(4, 0.4, 2, 0.4, 3);
  const auto result = train_distributed_plos(dataset, fast_options());
  const auto& primal = result.diagnostics.primal_residual_trace;
  ASSERT_GE(primal.size(), 3u);
  // Compare early vs late within the trace: consensus must tighten.
  EXPECT_LT(primal.back(), primal.front() + 1e-12);
}

TEST(DistributedPlos, DiagnosticsPopulated) {
  auto dataset = make_population(3, 0.2, 2, 0.4, 4);
  const auto result = train_distributed_plos(dataset, fast_options());
  EXPECT_GE(result.diagnostics.cccp_iterations, 1);
  EXPECT_GT(result.diagnostics.admm_iterations_total, 0);
  EXPECT_EQ(result.diagnostics.objective_trace.size(),
            result.diagnostics.primal_residual_trace.size());
}

TEST(DistributedPlos, NetworkAccountingPopulated) {
  auto dataset = make_population(4, 0.3, 2, 0.4, 5);
  net::SimNetwork network(4, net::DeviceProfile{}, net::LinkProfile{});
  const auto result =
      train_distributed_plos(dataset, fast_options(), &network);
  (void)result;
  EXPECT_GT(network.rounds_completed(), 0u);
  EXPECT_GT(network.mean_bytes_per_device(), 0.0);
  EXPECT_GT(network.total_simulated_seconds(), 0.0);
  EXPECT_GT(network.total_device_energy(), 0.0);
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_GT(network.device_metrics(t).bytes_received, 0u);
    EXPECT_GT(network.device_metrics(t).bytes_sent, 0u);
  }
  // Raw data never moves: per-device traffic must be far below the size of
  // its raw samples (30*2 samples × 3 dims × 8 bytes = 1.4 KB per message
  // would be the give-away; each model message is ~3 doubles per vector).
  const auto& m = network.device_metrics(0);
  const double bytes_per_message =
      static_cast<double>(m.bytes_sent) /
      static_cast<double>(m.messages_sent);
  EXPECT_LT(bytes_per_message, 200.0);
}

TEST(DistributedPlos, NetworkDeviceCountMismatchThrows) {
  auto dataset = make_population(3, 0.2, 1, 0.4, 6);
  net::SimNetwork network(2, net::DeviceProfile{}, net::LinkProfile{});
  EXPECT_THROW(train_distributed_plos(dataset, fast_options(), &network),
               PreconditionError);
}

TEST(DistributedPlos, RunsWithoutBootstrap) {
  auto dataset = make_population(3, 0.2, 2, 0.4, 7);
  auto options = fast_options();
  options.svm_bootstrap = false;
  const auto result = train_distributed_plos(dataset, options);
  const auto report = evaluate(dataset, predict_all(dataset, result.model));
  EXPECT_GT(report.overall, 0.6);
}

TEST(DistributedPlos, RunsWithNoLabelsAtAll) {
  auto dataset = make_population(3, 0.0, 0, 0.0, 8, 15);
  const auto result = train_distributed_plos(dataset, fast_options());
  EXPECT_EQ(result.model.num_users(), 3u);
  for (double v : result.diagnostics.objective_trace) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(DistributedPlos, InvalidOptionsThrow) {
  auto dataset = make_population(2, 0.0, 1, 0.4, 9, 10);
  auto options = fast_options();
  options.rho = 0.0;
  EXPECT_THROW(train_distributed_plos(dataset, options), PreconditionError);
}

TEST(DistributedPlos, DeterministicGivenOptions) {
  auto dataset = make_population(3, 0.3, 2, 0.4, 10, 15);
  const auto a = train_distributed_plos(dataset, fast_options());
  const auto b = train_distributed_plos(dataset, fast_options());
  EXPECT_TRUE(linalg::approx_equal(a.model.global_weights,
                                   b.model.global_weights, 0.0));
}

TEST(DistributedPlos, MultiThreadedTrainingMatchesSerialBitwise) {
  // Devices solve their per-round prox-QPs concurrently when num_threads >
  // 1; model and byte ledger must match the serial schedule bitwise (full
  // contract in test_parallel_equivalence — this in-binary smoke check is
  // what the TSan CI job exercises).
  auto dataset = make_population(4, 0.5, 2, 0.4, 22, 15);
  auto threaded_options = fast_options();
  threaded_options.num_threads = 4;
  net::SimNetwork serial_net(4, net::DeviceProfile{}, net::LinkProfile{});
  net::SimNetwork threaded_net(4, net::DeviceProfile{}, net::LinkProfile{});
  const auto serial =
      train_distributed_plos(dataset, fast_options(), &serial_net);
  const auto threaded =
      train_distributed_plos(dataset, threaded_options, &threaded_net);
  EXPECT_TRUE(linalg::approx_equal(serial.model.global_weights,
                                   threaded.model.global_weights, 0.0));
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_TRUE(linalg::approx_equal(serial.model.user_deviations[t],
                                     threaded.model.user_deviations[t], 0.0));
    EXPECT_EQ(serial_net.device_metrics(t).bytes_sent,
              threaded_net.device_metrics(t).bytes_sent);
    EXPECT_EQ(serial_net.device_metrics(t).bytes_received,
              threaded_net.device_metrics(t).bytes_received);
  }
  EXPECT_EQ(serial.diagnostics.objective_trace,
            threaded.diagnostics.objective_trace);
  EXPECT_EQ(serial_net.rounds_completed(), threaded_net.rounds_completed());
}

}  // namespace
}  // namespace plos::core
