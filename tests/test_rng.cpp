// Tests for the seeded randomness substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/assert.hpp"
#include "linalg/matrix.hpp"
#include "rng/engine.hpp"
#include "rng/multivariate_normal.hpp"

namespace plos::rng {
namespace {

TEST(Engine, DeterministicGivenSeed) {
  Engine a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Engine, DifferentSeedsDiffer) {
  Engine a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Engine, UniformRange) {
  Engine e(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = e.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
  EXPECT_THROW(e.uniform(1.0, 0.0), PreconditionError);
}

TEST(Engine, UniformIntInclusiveRange) {
  Engine e(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = e.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values reachable
}

TEST(Engine, GaussianMoments) {
  Engine e(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = e.gaussian(1.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Engine, BernoulliFrequency) {
  Engine e(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (e.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
  EXPECT_THROW(e.bernoulli(1.5), PreconditionError);
}

TEST(Engine, ForkStreamsDecorrelated) {
  Engine parent(5);
  Engine a = parent.fork(0);
  Engine b = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Engine, ForkDeterministicAcrossRuns) {
  Engine p1(5), p2(5);
  Engine a = p1.fork(3), b = p2.fork(3);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Engine, ShufflePreservesMultiset) {
  Engine e(21);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  e.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Engine, SampleWithoutReplacementDistinct) {
  Engine e(23);
  const auto idx = e.sample_without_replacement(10, 6);
  EXPECT_EQ(idx.size(), 6u);
  const std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 6u);
  for (std::size_t i : idx) EXPECT_LT(i, 10u);
  EXPECT_THROW(e.sample_without_replacement(3, 4), PreconditionError);
}

TEST(Engine, SampleWithoutReplacementFull) {
  Engine e(29);
  auto idx = e.sample_without_replacement(5, 5);
  std::sort(idx.begin(), idx.end());
  EXPECT_EQ(idx, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(MultivariateNormal, RejectsNonSpd) {
  const auto cov = linalg::Matrix::from_rows({{0.0, 1.0}, {1.0, 0.0}});
  EXPECT_THROW(MultivariateNormal({0.0, 0.0}, cov), PreconditionError);
}

TEST(MultivariateNormal, RejectsDimensionMismatch) {
  EXPECT_THROW(MultivariateNormal({0.0}, linalg::Matrix::identity(2)),
               PreconditionError);
}

TEST(MultivariateNormal, SampleMomentsMatch) {
  // The paper's synthetic covariance.
  const auto cov =
      linalg::Matrix::from_rows({{225.0, -180.0}, {-180.0, 225.0}});
  const MultivariateNormal dist({10.0, 10.0}, cov);
  Engine e(31);
  const int n = 20000;
  double m0 = 0.0, m1 = 0.0, c00 = 0.0, c01 = 0.0, c11 = 0.0;
  std::vector<linalg::Vector> samples = dist.sample_n(e, n);
  for (const auto& x : samples) {
    m0 += x[0];
    m1 += x[1];
  }
  m0 /= n;
  m1 /= n;
  for (const auto& x : samples) {
    c00 += (x[0] - m0) * (x[0] - m0);
    c01 += (x[0] - m0) * (x[1] - m1);
    c11 += (x[1] - m1) * (x[1] - m1);
  }
  EXPECT_NEAR(m0, 10.0, 0.5);
  EXPECT_NEAR(m1, 10.0, 0.5);
  EXPECT_NEAR(c00 / n, 225.0, 10.0);
  EXPECT_NEAR(c01 / n, -180.0, 10.0);
  EXPECT_NEAR(c11 / n, 225.0, 10.0);
}

}  // namespace
}  // namespace plos::rng
