// Tests for cross-validation-based parameter selection.
#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "core/baselines.hpp"
#include "core/cross_validation.hpp"
#include "data/labeling.hpp"
#include "data/synthetic.hpp"
#include "rng/engine.hpp"

namespace plos::core {
namespace {

data::MultiUserDataset easy_population(std::uint64_t seed) {
  data::SyntheticSpec spec;
  spec.num_users = 3;
  spec.points_per_class = 30;
  spec.label_noise = 0.0;
  rng::Engine engine(seed);
  auto dataset = data::generate_synthetic(spec, engine);
  data::reveal_labels(dataset, {0, 1, 2}, 0.5, engine);
  return dataset;
}

TEST(CrossValidation, HighAccuracyOnLearnableData) {
  const auto dataset = easy_population(1);
  const double acc = cross_validate(dataset, [](const auto& fold) {
    return run_all_baseline(fold);
  });
  EXPECT_GT(acc, 0.9);
}

TEST(CrossValidation, ChanceLevelOnRandomPredictor) {
  const auto dataset = easy_population(2);
  // A predictor that ignores the data entirely: always +1.
  const double acc = cross_validate(dataset, [](const auto& fold) {
    std::vector<UserPrediction> out(fold.num_users());
    for (std::size_t t = 0; t < fold.num_users(); ++t) {
      out[t].labels.assign(fold.users[t].num_samples(), 1);
    }
    return out;
  });
  EXPECT_NEAR(acc, 0.5, 0.15);
}

TEST(CrossValidation, HeldOutLabelsAreHiddenDuringTraining) {
  const auto dataset = easy_population(3);
  const std::size_t total_revealed = [&] {
    std::size_t n = 0;
    for (const auto& u : dataset.users) n += u.num_revealed();
    return n;
  }();

  CrossValidationOptions options;
  options.num_folds = 3;
  cross_validate(
      dataset,
      [&](const data::MultiUserDataset& fold) {
        std::size_t fold_revealed = 0;
        for (const auto& u : fold.users) fold_revealed += u.num_revealed();
        EXPECT_LT(fold_revealed, total_revealed);
        std::vector<UserPrediction> out(fold.num_users());
        for (std::size_t t = 0; t < fold.num_users(); ++t) {
          out[t].labels.assign(fold.users[t].num_samples(), 1);
        }
        return out;
      },
      options);
}

TEST(CrossValidation, LeaveOneOutMode) {
  data::SyntheticSpec spec;
  spec.num_users = 1;
  spec.points_per_class = 8;
  spec.label_noise = 0.0;
  rng::Engine engine(4);
  auto dataset = data::generate_synthetic(spec, engine);
  data::reveal_labels(dataset, {0}, 0.5, engine);

  CrossValidationOptions options;
  options.num_folds = 0;  // LOO
  const double acc = cross_validate(
      dataset, [](const auto& fold) { return run_all_baseline(fold); },
      options);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(CrossValidation, RequiresTwoRevealedSamples) {
  data::SyntheticSpec spec;
  spec.num_users = 1;
  spec.points_per_class = 5;
  rng::Engine engine(5);
  auto dataset = data::generate_synthetic(spec, engine);  // nothing revealed
  EXPECT_THROW(
      cross_validate(dataset,
                     [](const auto& fold) { return run_all_baseline(fold); }),
      PreconditionError);
}

TEST(SelectBestParameter, PicksInformativeCandidate) {
  const auto dataset = easy_population(6);
  // Candidate 0 trains a real model; candidate 1 predicts a constant.
  const std::vector<double> candidates{1.0, 0.0};
  const std::size_t best = select_best_parameter(
      dataset, candidates, [](double candidate) -> TrainPredictFn {
        if (candidate > 0.5) {
          return [](const auto& fold) { return run_all_baseline(fold); };
        }
        return [](const auto& fold) {
          std::vector<UserPrediction> out(fold.num_users());
          for (std::size_t t = 0; t < fold.num_users(); ++t) {
            out[t].labels.assign(fold.users[t].num_samples(), 1);
          }
          return out;
        };
      });
  EXPECT_EQ(best, 0u);
}

TEST(SelectBestParameter, EmptyCandidatesThrow) {
  const auto dataset = easy_population(7);
  EXPECT_THROW(
      select_best_parameter(dataset, {},
                            [](double) -> TrainPredictFn {
                              return [](const auto& fold) {
                                return run_all_baseline(fold);
                              };
                            }),
      PreconditionError);
}

}  // namespace
}  // namespace plos::core
