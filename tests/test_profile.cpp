// Profiler + bench-gate suite.
//
// Three contracts under test:
//   1. Tree aggregation — repeated PLOS_SPAN scopes at the same position
//      fold into one node; pool workers nest under the span that spawned
//      them (ProfileContextScope); reset() with open spans is safe.
//   2. Structural byte-identity (DESIGN.md §8, §12) — the non-"timing"
//      part of the profile JSON for a full trainer run is byte-identical
//      at any thread count, for both trainers.
//   3. bench_check — the BENCH_*.json gate flags counter drift and median
//      wall-time regressions, tolerates timing noise in diff mode, and
//      the checked-in repo-root baselines pass a self-check.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "core/centralized_plos.hpp"
#include "core/distributed_plos.hpp"
#include "data/labeling.hpp"
#include "data/synthetic.hpp"
#include "net/simnet.hpp"
#include "obs/inspect.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/engine.hpp"

namespace plos {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Profiler::instance().reset();
    obs::Profiler::instance().set_enabled(true);
  }
  void TearDown() override {
    obs::Profiler::instance().set_enabled(false);
    obs::Profiler::instance().reset();
  }
};

TEST_F(ProfilerTest, AggregatesRepeatedSpansIntoOneNode) {
  for (int i = 0; i < 3; ++i) {
    PLOS_SPAN("outer");
    { PLOS_SPAN("inner"); }
    { PLOS_SPAN("inner"); }
  }
  const auto root = obs::Profiler::instance().snapshot();
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0].name, "outer");
  EXPECT_EQ(root.children[0].count, 3u);
  ASSERT_EQ(root.children[0].children.size(), 1u);
  EXPECT_EQ(root.children[0].children[0].name, "inner");
  EXPECT_EQ(root.children[0].children[0].count, 6u);
}

TEST_F(ProfilerTest, SiblingsAreSortedByName) {
  {
    PLOS_SPAN("top");
    { PLOS_SPAN("zeta"); }
    { PLOS_SPAN("alpha"); }
  }
  const auto root = obs::Profiler::instance().snapshot();
  ASSERT_EQ(root.children.size(), 1u);
  ASSERT_EQ(root.children[0].children.size(), 2u);
  EXPECT_EQ(root.children[0].children[0].name, "alpha");
  EXPECT_EQ(root.children[0].children[1].name, "zeta");
}

TEST_F(ProfilerTest, PoolWorkersInheritSpawningSpan) {
  for (const int threads : {1, 4}) {
    obs::Profiler::instance().reset();
    parallel::ThreadPool pool(threads);
    {
      PLOS_SPAN("parent");
      pool.parallel_for(16, [&](std::size_t) { PLOS_SPAN("child"); });
    }
    const auto root = obs::Profiler::instance().snapshot();
    ASSERT_EQ(root.children.size(), 1u) << "threads=" << threads;
    EXPECT_EQ(root.children[0].name, "parent");
    ASSERT_EQ(root.children[0].children.size(), 1u) << "threads=" << threads;
    EXPECT_EQ(root.children[0].children[0].name, "child");
    EXPECT_EQ(root.children[0].children[0].count, 16u);
  }
}

TEST_F(ProfilerTest, ResetWithOpenSpanClosesAsNoOp) {
  obs::profile_span_open("stale");
  obs::Profiler::instance().reset();
  obs::profile_span_close();  // generation mismatch: must not touch tree
  const auto root = obs::Profiler::instance().snapshot();
  EXPECT_TRUE(root.children.empty());
}

TEST_F(ProfilerTest, DisabledProfilerRecordsNothing) {
  obs::Profiler::instance().set_enabled(false);
  { PLOS_SPAN("invisible"); }
  EXPECT_TRUE(obs::Profiler::instance().snapshot().children.empty());
}

TEST_F(ProfilerTest, TimingSectionIsPresentOnlyWhenRequested) {
  { PLOS_SPAN("phase"); }
  obs::ProfileJsonOptions with_timing;
  obs::ProfileJsonOptions without_timing;
  without_timing.include_timing = false;
  const std::string full = obs::profile_to_json(with_timing);
  const std::string structural = obs::profile_to_json(without_timing);
  EXPECT_NE(full.find("\"timing\""), std::string::npos);
  EXPECT_EQ(structural.find("\"timing\""), std::string::npos);
  EXPECT_EQ(structural.find("inclusive_ms"), std::string::npos);
  EXPECT_NE(structural.find("\"phase\""), std::string::npos);
}

// ---- structural byte-identity across thread counts -----------------------

data::MultiUserDataset make_population() {
  data::SyntheticSpec spec;
  spec.num_users = 6;
  spec.points_per_class = 20;
  spec.max_rotation = 1.2;
  rng::Engine engine(11);
  auto dataset = data::generate_synthetic(spec, engine);
  data::reveal_labels(dataset, {0, 2, 4}, 0.3, engine);
  return dataset;
}

std::string structural_profile_json() {
  obs::ProfileJsonOptions options;
  options.include_timing = false;
  options.registry = &obs::metrics();
  return obs::profile_to_json(options);
}

TEST_F(ProfilerTest, CentralizedStructuralProfileIsThreadCountInvariant) {
  const auto dataset = make_population();
  obs::metrics().set_enabled(true);
  std::string reference;
  for (const int threads : {1, 2, 4, 8}) {
    obs::Profiler::instance().reset();
    obs::metrics().reset_values();
    core::CentralizedPlosOptions options;
    options.cutting_plane.epsilon = 1e-2;
    options.cccp.max_iterations = 2;
    options.num_threads = threads;
    core::train_centralized_plos(dataset, options);
    const std::string json = structural_profile_json();
    if (threads == 1) {
      reference = json;
      EXPECT_NE(json.find("plos.sign_fit"), std::string::npos);
      EXPECT_NE(json.find("plos.dual_solve"), std::string::npos);
    } else {
      EXPECT_EQ(json, reference) << "threads=" << threads;
    }
  }
}

TEST_F(ProfilerTest, DistributedStructuralProfileIsThreadCountInvariant) {
  const auto dataset = make_population();
  obs::metrics().set_enabled(true);
  std::string reference;
  for (const int threads : {1, 2, 4, 8}) {
    obs::Profiler::instance().reset();
    obs::metrics().reset_values();
    core::DistributedPlosOptions options;
    options.cutting_plane.epsilon = 1e-2;
    options.cccp.max_iterations = 2;
    options.max_admm_iterations = 30;
    options.num_threads = threads;
    net::SimNetwork network(dataset.num_users(), net::DeviceProfile{},
                            net::LinkProfile{});
    core::train_distributed_plos(dataset, options, &network);
    const std::string json = structural_profile_json();
    if (threads == 1) {
      reference = json;
      EXPECT_NE(json.find("plos.device_solve"), std::string::npos);
      EXPECT_NE(json.find("plos.server_update"), std::string::npos);
    } else {
      EXPECT_EQ(json, reference) << "threads=" << threads;
    }
  }
}

// ---- bench_check gate ----------------------------------------------------

obs::json::Value parse_or_die(const std::string& text) {
  std::string error;
  auto parsed = obs::json::parse(text, &error);
  if (!parsed.has_value()) {
    ADD_FAILURE() << "JSON parse failed: " << error;
    return obs::json::Value();
  }
  return *parsed;
}

std::string bench_fixture(int qp_solves, double median_ms) {
  std::string out = "{\"schema_version\":1,\"name\":\"demo\",\"cases\":{";
  out += "\"small\":{\"counters\":{\"qp_solves\":";
  out += std::to_string(qp_solves);
  out += ",\"rounds\":3},\"timing\":{\"reps\":5,\"warmup\":1,\"median_ms\":";
  out += std::to_string(median_ms);
  out += ",\"mad_ms\":0.5,\"min_ms\":9.0}}}}";
  return out;
}

TEST(BenchCheck, IdenticalSuitesPass) {
  const auto baseline = parse_or_die(bench_fixture(12, 10.0));
  const auto result = obs::bench_check(baseline, baseline);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.counters_compared, 2u);
}

TEST(BenchCheck, CounterDriftFailsInBothDirections) {
  const auto baseline = parse_or_die(bench_fixture(12, 10.0));
  const auto drifted = parse_or_die(bench_fixture(13, 10.0));
  const auto forward = obs::bench_check(drifted, baseline);
  ASSERT_FALSE(forward.ok());
  bool mentions_counter = false;
  for (const auto& violation : forward.violations) {
    if (violation.find("qp_solves") != std::string::npos) {
      mentions_counter = true;
    }
  }
  EXPECT_TRUE(mentions_counter);
  // Drift is symmetric: a run with FEWER solves than baseline also fails.
  EXPECT_FALSE(obs::bench_check(baseline, drifted).ok());
}

TEST(BenchCheck, SlowMedianFailsCheckButPassesDiff) {
  const auto baseline = parse_or_die(bench_fixture(12, 10.0));
  // 100 ms vs 10 ms baseline = 10x, beyond the default 4x allowance.
  const auto slow = parse_or_die(bench_fixture(12, 100.0));
  EXPECT_FALSE(obs::bench_check(slow, baseline).ok());
  obs::BenchCheckOptions diff_mode;
  diff_mode.check_time_regression = false;
  EXPECT_TRUE(obs::bench_check(slow, baseline, diff_mode).ok());
  // The reverse direction (run faster than baseline) is never a failure.
  EXPECT_TRUE(obs::bench_check(baseline, slow).ok());
}

TEST(BenchCheck, SuiteNameAndCaseSetMustMatch) {
  const auto baseline = parse_or_die(bench_fixture(12, 10.0));
  auto renamed_text = bench_fixture(12, 10.0);
  const std::string::size_type at = renamed_text.find("\"demo\"");
  renamed_text.replace(at, 6, "\"other\"");
  EXPECT_FALSE(obs::bench_check(parse_or_die(renamed_text), baseline).ok());

  const auto empty = parse_or_die(
      "{\"schema_version\":1,\"name\":\"demo\",\"cases\":{}}");
  EXPECT_FALSE(obs::bench_check(empty, baseline).ok());  // case missing
  EXPECT_FALSE(obs::bench_check(baseline, empty).ok());  // extra case
}

// A baseline that gates nothing must FAIL, not pass vacuously: a truncated
// or mis-regenerated BENCH_*.json would otherwise disable the perf gate
// while CI keeps reporting green. Both empty-vacuity shapes are covered:
// zero cases, and cases present but carrying zero counters.
TEST(BenchCheck, EmptyBaselineIsAViolationNotAVacuousPass) {
  const auto empty = parse_or_die(
      "{\"schema_version\":1,\"name\":\"demo\",\"cases\":{}}");
  // Run == baseline, so every per-case rule is trivially satisfied — only
  // the non-vacuity rule can (and must) reject this.
  const auto result = obs::bench_check(empty, empty);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.counters_compared, 0u);
  bool names_vacuity = false;
  for (const auto& violation : result.violations) {
    if (violation.find("no cases") != std::string::npos) names_vacuity = true;
  }
  EXPECT_TRUE(names_vacuity);
}

TEST(BenchCheck, CounterlessBaselineIsAViolation) {
  const auto counterless = parse_or_die(
      "{\"schema_version\":1,\"name\":\"demo\",\"cases\":{\"small\":"
      "{\"counters\":{},\"timing\":{\"reps\":5,\"warmup\":1,"
      "\"median_ms\":10.0,\"mad_ms\":0.5,\"min_ms\":9.0}}}}");
  const auto result = obs::bench_check(counterless, counterless);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.counters_compared, 0u);
  bool names_vacuity = false;
  for (const auto& violation : result.violations) {
    if (violation.find("no counters") != std::string::npos) {
      names_vacuity = true;
    }
  }
  EXPECT_TRUE(names_vacuity);
}

TEST(BenchCheck, BenchReportMentionsCasesAndCounters) {
  const auto suite = parse_or_die(bench_fixture(12, 10.0));
  const std::string report = obs::bench_report(suite);
  EXPECT_NE(report.find("demo"), std::string::npos);
  EXPECT_NE(report.find("small"), std::string::npos);
  EXPECT_NE(report.find("qp_solves"), std::string::npos);
}

// The three repo-root baselines must parse, self-check, and carry at
// least one exact counter each — guards against checking in a truncated
// or hand-mangled baseline.
TEST(BenchCheck, CheckedInBaselinesSelfCheck) {
  const char* const names[] = {
      "BENCH_fig12_dist_runtime.json",
      "BENCH_abl04_qp_micro.json",
      "BENCH_cccp_threads.json",
  };
  for (const char* name : names) {
    const std::string path =
        std::string(PLOS_BENCH_BASELINE_DIR) + "/" + name;
    std::string text;
    ASSERT_TRUE(obs::read_file(path, text)) << path;
    const auto suite = parse_or_die(text);
    const auto result = obs::bench_check(suite, suite);
    EXPECT_TRUE(result.ok()) << path;
    EXPECT_GT(result.counters_compared, 0u) << path;
  }
}

}  // namespace
}  // namespace plos
