// Tests for the deterministic mergeable aggregates (obs/sketch.hpp):
// merge order/partition invariance (the thread-count-independence
// argument), diff as merge's inverse, quantile determinism, and the
// O(buckets) memory bound.
#include "obs/sketch.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rng/engine.hpp"

namespace plos {
namespace {

using obs::CauseCounters;
using obs::QuantileSketch;

std::vector<double> sample_values(std::uint64_t seed, std::size_t n) {
  rng::Engine engine(seed);
  std::vector<double> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Spread across the sketch's whole dynamic range, including exact
    // zeros, underflow, and overflow samples.
    const double pick = engine.uniform(0.0, 1.0);
    if (pick < 0.05) {
      values.push_back(0.0);
    } else if (pick < 0.10) {
      values.push_back(engine.uniform(0.0, 1e-5));
    } else if (pick < 0.15) {
      values.push_back(engine.uniform(1e4, 1e6));
    } else {
      values.push_back(engine.uniform(1e-4, 1e3));
    }
  }
  return values;
}

TEST(QuantileSketch, MergeIsOrderInvariant) {
  const auto values = sample_values(7, 500);
  QuantileSketch forward, backward;
  for (std::size_t i = 0; i < values.size(); ++i) {
    forward.record(values[i]);
    backward.record(values[values.size() - 1 - i]);
  }
  EXPECT_EQ(forward.counts(), backward.counts());
  EXPECT_EQ(forward.count(), backward.count());
  EXPECT_EQ(forward.quantile(0.5), backward.quantile(0.5));
}

TEST(QuantileSketch, MergeIsPartitionInvariant) {
  // Any split of the samples across "threads" and any merge order must
  // produce identical counts — the byte-identical-journal argument.
  const auto values = sample_values(11, 600);
  QuantileSketch serial;
  for (const double v : values) serial.record(v);

  for (const std::size_t parts : {2u, 3u, 8u}) {
    std::vector<QuantileSketch> shards(parts);
    for (std::size_t i = 0; i < values.size(); ++i) {
      shards[i % parts].record(values[i]);
    }
    // Merge in descending shard order to stress commutativity too.
    QuantileSketch merged;
    for (std::size_t s = parts; s-- > 0;) merged.merge(shards[s]);
    EXPECT_EQ(merged.counts(), serial.counts()) << parts << " shards";
    EXPECT_EQ(merged.count(), serial.count());
  }
}

TEST(QuantileSketch, DiffInvertsMerge) {
  const auto values = sample_values(13, 300);
  QuantileSketch cumulative;
  QuantileSketch first_half;
  for (std::size_t i = 0; i < values.size(); ++i) {
    cumulative.record(values[i]);
    if (i < values.size() / 2) first_half.record(values[i]);
  }
  const QuantileSketch delta = cumulative.diff(first_half);
  EXPECT_EQ(delta.count(), cumulative.count() - first_half.count());
  QuantileSketch rebuilt = first_half;
  rebuilt.merge(delta);
  EXPECT_EQ(rebuilt.counts(), cumulative.counts());
}

TEST(QuantileSketch, QuantilesBracketTheSamples) {
  QuantileSketch sketch;
  for (int i = 1; i <= 100; ++i) sketch.record(static_cast<double>(i));
  // Log buckets have relative width 1/8: the reported lower edge sits
  // within one bucket below the true order statistic.
  EXPECT_GE(sketch.quantile(0.50), 50.0 * (1.0 - 0.125 - 1e-12));
  EXPECT_LE(sketch.quantile(0.50), 51.0);
  EXPECT_GE(sketch.quantile(0.99), 99.0 * (1.0 - 0.125 - 1e-12));
  EXPECT_LE(sketch.quantile(0.99), 100.0);
  EXPECT_EQ(sketch.quantile(0.0), sketch.quantile(0.0));  // deterministic
}

TEST(QuantileSketch, EdgeBucketsResolveDeterministically) {
  QuantileSketch sketch;
  sketch.record(0.0);
  EXPECT_EQ(sketch.quantile(0.5), 0.0);
  sketch.record(1e-9);  // underflow bucket reports min/2
  sketch.record(1e9);   // overflow bucket reports max
  EXPECT_EQ(sketch.quantile(1.0), sketch.spec().max_value);
  EXPECT_EQ(sketch.count(), 3u);
}

TEST(QuantileSketch, EmptySketchAnswersZero) {
  const QuantileSketch sketch;
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.quantile(0.5), 0.0);
}

TEST(QuantileSketch, MemoryIsBoundedByBucketsNotSamples) {
  QuantileSketch sketch;
  const std::size_t before = sketch.memory_bytes();
  for (int i = 0; i < 100000; ++i) {
    sketch.record(static_cast<double>(i % 997) + 0.5);
  }
  EXPECT_EQ(sketch.memory_bytes(), before);
  EXPECT_EQ(sketch.count(), 100000u);
  // Default spec: [1e-4, 1e4) spans 27 octaves of 8 slices plus the three
  // edge buckets — a few KB, independent of the hundred thousand samples.
  EXPECT_LT(sketch.memory_bytes(), 4096u);
}

TEST(QuantileSketch, WeightedRecordMatchesRepeatedRecord) {
  QuantileSketch weighted, repeated;
  weighted.record(3.0, 5);
  for (int i = 0; i < 5; ++i) repeated.record(3.0);
  EXPECT_EQ(weighted.counts(), repeated.counts());
}

TEST(QuantileSketch, SameSpecGatesMergeCompatibility) {
  const QuantileSketch a;
  QuantileSketch::Spec other;
  other.sub_buckets = 4;
  const QuantileSketch b(other);
  EXPECT_TRUE(a.same_spec(QuantileSketch()));
  EXPECT_FALSE(a.same_spec(b));
}

TEST(CauseCounters, MergeAddsElementwise) {
  CauseCounters a(4), b(4);
  a.add(0);
  a.add(2, 3);
  b.add(2);
  b.add(3);
  a.merge(b);
  const std::vector<std::uint64_t> expected = {1, 0, 4, 1};
  EXPECT_EQ(a.counts(), expected);
  EXPECT_EQ(a.total(), 6u);
}

}  // namespace
}  // namespace plos
