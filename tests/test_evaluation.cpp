// Tests for the evaluation harness.
#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "core/evaluation.hpp"

namespace plos::core {
namespace {

using linalg::Vector;

data::UserData make_user(const std::vector<int>& labels, bool provides) {
  data::UserData u;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    u.samples.push_back(Vector{static_cast<double>(i)});
    u.true_labels.push_back(labels[i]);
  }
  u.revealed.assign(labels.size(), false);
  if (provides) u.revealed[0] = true;
  return u;
}

TEST(UserAccuracy, ExactMatch) {
  const auto user = make_user({1, -1, 1, -1}, true);
  UserPrediction p;
  p.labels = {1, -1, 1, -1};
  EXPECT_DOUBLE_EQ(user_accuracy(user, p), 1.0);
}

TEST(UserAccuracy, PartialMatch) {
  const auto user = make_user({1, -1, 1, -1}, true);
  UserPrediction p;
  p.labels = {1, -1, -1, 1};
  EXPECT_DOUBLE_EQ(user_accuracy(user, p), 0.5);
}

TEST(UserAccuracy, ClusterMatchingForgivesGlobalFlip) {
  const auto user = make_user({1, 1, -1, -1}, false);
  UserPrediction p;
  p.labels = {-1, -1, 1, 1};  // perfectly anti-aligned clusters
  p.match_clusters = true;
  EXPECT_DOUBLE_EQ(user_accuracy(user, p), 1.0);
  p.match_clusters = false;
  EXPECT_DOUBLE_EQ(user_accuracy(user, p), 0.0);
}

TEST(UserAccuracy, SizeMismatchThrows) {
  const auto user = make_user({1, -1}, true);
  UserPrediction p;
  p.labels = {1};
  EXPECT_THROW(user_accuracy(user, p), PreconditionError);
}

TEST(Evaluate, SplitsProvidersAndNonProviders) {
  data::MultiUserDataset d;
  d.users.push_back(make_user({1, 1}, true));    // provider
  d.users.push_back(make_user({-1, -1}, false)); // non-provider
  std::vector<UserPrediction> predictions(2);
  predictions[0].labels = {1, 1};    // 100%
  predictions[1].labels = {-1, 1};   // 50%
  const auto report = evaluate(d, predictions);
  EXPECT_EQ(report.num_providers, 1u);
  EXPECT_EQ(report.num_non_providers, 1u);
  EXPECT_DOUBLE_EQ(report.providers, 1.0);
  EXPECT_DOUBLE_EQ(report.non_providers, 0.5);
  EXPECT_DOUBLE_EQ(report.overall, 0.75);
}

TEST(Evaluate, AllProviders) {
  data::MultiUserDataset d;
  d.users.push_back(make_user({1}, true));
  std::vector<UserPrediction> predictions(1);
  predictions[0].labels = {1};
  const auto report = evaluate(d, predictions);
  EXPECT_EQ(report.num_non_providers, 0u);
  EXPECT_DOUBLE_EQ(report.non_providers, 0.0);  // empty split stays zero
  EXPECT_DOUBLE_EQ(report.overall, 1.0);
}

TEST(Evaluate, SizeMismatchThrows) {
  data::MultiUserDataset d;
  d.users.push_back(make_user({1}, true));
  EXPECT_THROW(evaluate(d, {}), PreconditionError);
}

TEST(PredictAll, UsesPersonalizedWeights) {
  data::MultiUserDataset d;
  data::UserData u;
  u.samples = {{1.0}, {-1.0}};
  u.true_labels = {1, -1};
  u.revealed = {false, false};
  d.users.push_back(u);
  d.users.push_back(u);

  PersonalizedModel model = PersonalizedModel::zeros(2, 1);
  model.global_weights = {1.0};
  model.user_deviations[1] = {-2.0};  // user 1's weights flip to -1

  const auto predictions = predict_all(d, model);
  EXPECT_EQ(predictions[0].labels, (std::vector<int>{1, -1}));
  EXPECT_EQ(predictions[1].labels, (std::vector<int>{-1, 1}));
}

TEST(PredictAll, ModelUserCountMismatchThrows) {
  data::MultiUserDataset d;
  d.users.push_back(make_user({1}, true));
  const auto model = PersonalizedModel::zeros(2, 1);
  EXPECT_THROW(predict_all(d, model), PreconditionError);
}

}  // namespace
}  // namespace plos::core
