// Tests for the plos::obs observability layer: structured logger, metrics
// registry, and trace spans.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace plos::obs {
namespace {

// ---- minimal JSON syntax checker ----------------------------------------
// Recursive-descent validator (no external deps): enough to assert that the
// registry and trace serializers emit well-formed JSON, which is what
// chrome://tracing / Perfetto / downstream tooling require.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '"') {
        ++pos_;
        return true;
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool is_valid_json(std::string_view text) {
  return JsonChecker(text).valid();
}

TEST(JsonChecker, SanityOnKnownInputs) {
  EXPECT_TRUE(is_valid_json(R"({"a":[1,2.5,-3e-2],"b":{"c":"x\"y"},"d":null})"));
  EXPECT_FALSE(is_valid_json(R"({"a":1)"));
  EXPECT_FALSE(is_valid_json(R"({"a":})"));
  EXPECT_FALSE(is_valid_json("{,}"));
}

// ---- logger --------------------------------------------------------------

class LoggerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sink_ = std::make_shared<MemorySink>();
    Logger::instance().set_sink(sink_);
    Logger::instance().set_level(Level::kTrace);
  }

  void TearDown() override {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(Level::kInfo);
  }

  std::shared_ptr<MemorySink> sink_;
};

TEST_F(LoggerTest, RuntimeLevelFiltersRecords) {
  Logger::instance().set_level(Level::kWarn);
  PLOS_LOG_TRACE("invisible trace");
  PLOS_LOG_DEBUG("invisible debug");
  PLOS_LOG_INFO("invisible info");
  PLOS_LOG_WARN("visible warn");
  PLOS_LOG_ERROR("visible error");
  const auto lines = sink_->lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("level=warn"), std::string::npos);
  EXPECT_NE(lines[0].find("msg=\"visible warn\""), std::string::npos);
  EXPECT_NE(lines[1].find("level=error"), std::string::npos);
}

TEST_F(LoggerTest, OffLevelSilencesEverything) {
  Logger::instance().set_level(Level::kOff);
  PLOS_LOG_ERROR("nothing");
  EXPECT_TRUE(sink_->lines().empty());
}

TEST_F(LoggerTest, FieldsRenderAsKeyValuePairs) {
  PLOS_LOG_INFO("solve done", F("iters", 42), F("objective", 1.5),
                F("converged", true), F("method", "fista"));
  const auto lines = sink_->lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("iters=42"), std::string::npos);
  EXPECT_NE(lines[0].find("objective=1.5"), std::string::npos);
  EXPECT_NE(lines[0].find("converged=true"), std::string::npos);
  EXPECT_NE(lines[0].find("method=\"fista\""), std::string::npos);
  EXPECT_EQ(lines[0].back(), '\n');
}

TEST_F(LoggerTest, QuotesAndNewlinesAreEscaped) {
  PLOS_LOG_INFO("a \"b\"\nc");
  const auto lines = sink_->lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("msg=\"a \\\"b\\\"\\nc\""), std::string::npos);
  // One record stays one line despite the embedded newline.
  EXPECT_EQ(lines[0].find('\n'), lines[0].size() - 1);
}

TEST_F(LoggerTest, IntegerFieldsCoverSignsAndWidths) {
  PLOS_LOG_INFO("ints", F("neg", -7), F("big", std::size_t{1} << 40));
  const auto lines = sink_->lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("neg=-7"), std::string::npos);
  EXPECT_NE(lines[0].find("big=1099511627776"), std::string::npos);
}

TEST(LogLevel, ParseRoundTrips) {
  for (Level level : {Level::kTrace, Level::kDebug, Level::kInfo, Level::kWarn,
                      Level::kError, Level::kOff}) {
    const auto parsed = parse_level(level_name(level));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(parse_level("verbose").has_value());
  EXPECT_FALSE(parse_level("").has_value());
}

// ---- metrics -------------------------------------------------------------

TEST(Metrics, CounterAccumulates) {
  Registry registry;
  Counter& counter = registry.counter("c");
  counter.increment();
  counter.add(2.5);
  EXPECT_DOUBLE_EQ(counter.value(), 3.5);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&registry.counter("c"), &counter);
}

TEST(Metrics, DisabledRegistryDropsRecords) {
  Registry registry(/*enabled=*/false);
  Counter& counter = registry.counter("c");
  Gauge& gauge = registry.gauge("g");
  Histogram& histogram = registry.histogram("h", default_iteration_buckets());
  counter.increment();
  gauge.set(7.0);
  histogram.record(3.0);
  EXPECT_DOUBLE_EQ(counter.value(), 0.0);
  EXPECT_FALSE(gauge.has_value());
  EXPECT_TRUE(gauge.samples().empty());
  EXPECT_EQ(histogram.count(), 0u);

  registry.set_enabled(true);
  counter.increment();
  gauge.set(7.0);
  EXPECT_DOUBLE_EQ(counter.value(), 1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 7.0);
}

TEST(Metrics, GaugeKeepsLastValueAndSampleTrace) {
  Registry registry;
  Gauge& gauge = registry.gauge("g");
  EXPECT_FALSE(gauge.has_value());
  gauge.set(3.0);
  gauge.set(1.0);
  gauge.set(2.0);
  EXPECT_TRUE(gauge.has_value());
  EXPECT_DOUBLE_EQ(gauge.value(), 2.0);
  const auto samples = gauge.samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_DOUBLE_EQ(samples[0], 3.0);
  EXPECT_DOUBLE_EQ(samples[1], 1.0);
  EXPECT_DOUBLE_EQ(samples[2], 2.0);
}

TEST(Metrics, HistogramBucketsAreInclusiveUpperBounds) {
  Registry registry;
  const double bounds[] = {1.0, 2.0, 5.0};
  Histogram& histogram = registry.histogram("h", bounds);
  histogram.record(0.5);  // <= 1
  histogram.record(1.0);  // <= 1 (inclusive)
  histogram.record(1.5);  // <= 2
  histogram.record(5.0);  // <= 5 (inclusive)
  histogram.record(7.0);  // overflow
  const auto counts = histogram.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 15.0);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.5);
  EXPECT_DOUBLE_EQ(histogram.max(), 7.0);
}

TEST(Metrics, ResetValuesKeepsInstrumentIdentity) {
  Registry registry;
  Counter& counter = registry.counter("c");
  Gauge& gauge = registry.gauge("g");
  const double bounds[] = {1.0, 2.0};
  Histogram& histogram = registry.histogram("h", bounds);
  counter.add(5.0);
  gauge.set(1.0);
  histogram.record(1.5);

  registry.reset_values();
  EXPECT_DOUBLE_EQ(counter.value(), 0.0);
  EXPECT_FALSE(gauge.has_value());
  EXPECT_TRUE(gauge.samples().empty());
  EXPECT_EQ(histogram.count(), 0u);
  // The references still point at the live instruments.
  EXPECT_EQ(&registry.counter("c"), &counter);
  counter.increment();
  EXPECT_DOUBLE_EQ(registry.counter("c").value(), 1.0);
}

TEST(Metrics, SnapshotIsValidJsonWithAllInstruments) {
  Registry registry;
  registry.counter("a.count").add(3.0);
  registry.gauge("b.gauge").set(1.25);
  const double bounds[] = {1.0, 10.0};
  registry.histogram("c.hist", bounds).record(4.0);
  const std::string json = registry.to_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"a.count\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"b.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"samples\":[1.25]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"c.hist\""), std::string::npos);
}

TEST(Metrics, EmptyRegistrySnapshotIsValidJson) {
  const Registry registry;
  EXPECT_TRUE(is_valid_json(registry.to_json()));
}

TEST(Metrics, HistogramQuantilesInterpolateWithinBuckets) {
  Registry registry;
  const double bounds[] = {1.0, 2.0, 5.0, 10.0};
  Histogram& histogram = registry.histogram("h", bounds);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.0);  // empty
  for (int v = 1; v <= 10; ++v) histogram.record(static_cast<double>(v));
  // Buckets hold {1, 1, 3, 5} values; rank-based interpolation:
  // p50 rank 5 lands at the top of the (2, 5] bucket.
  EXPECT_DOUBLE_EQ(histogram.quantile(0.50), 5.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.90), 9.0);
  EXPECT_NEAR(histogram.quantile(0.99), 9.9, 1e-9);
  // Extremes snap to the tracked min/max.
  EXPECT_DOUBLE_EQ(histogram.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(-3.0), 1.0);  // clamped q
  EXPECT_DOUBLE_EQ(histogram.quantile(7.0), 10.0);
}

TEST(Metrics, HistogramQuantileSingleValueIsExact) {
  Registry registry;
  const double bounds[] = {1.0, 2.0, 5.0, 10.0};
  Histogram& histogram = registry.histogram("h", bounds);
  histogram.record(7.0);
  // min/max tighten the containing bucket to the single point.
  EXPECT_DOUBLE_EQ(histogram.quantile(0.50), 7.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.99), 7.0);
}

TEST(Metrics, SnapshotsCarryQuantileSummaries) {
  Registry registry;
  const double bounds[] = {1.0, 2.0, 5.0, 10.0};
  Histogram& histogram = registry.histogram("q.hist", bounds);
  for (int v = 1; v <= 10; ++v) histogram.record(static_cast<double>(v));
  const std::string json = registry.to_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"p50\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p90\":9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\":"), std::string::npos) << json;
  const std::string prom = registry.to_prometheus();
  EXPECT_NE(prom.find("# TYPE q_hist_quantile gauge"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("q_hist_quantile{q=\"0.5\"} 5"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("q_hist_quantile{q=\"0.9\"} 9"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("q_hist_quantile{q=\"0.99\"} "), std::string::npos)
      << prom;
}

namespace {
std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}
}  // namespace

TEST(Metrics, PrometheusEmitsHelpAndTypeOncePerFamily) {
  Registry registry;
  registry.counter("fmt.count").add(1.0);
  registry.gauge("fmt.gauge").set(2.0);
  const double bounds[] = {1.0, 10.0};
  Histogram& histogram = registry.histogram("fmt.hist", bounds);
  histogram.record(3.0);
  const std::string prom = registry.to_prometheus();
  // Exactly one HELP and one TYPE per family — including the single
  // labeled quantile gauge family (three series, one header).
  for (const std::string family :
       {"fmt_count", "fmt_gauge", "fmt_hist", "fmt_hist_quantile"}) {
    EXPECT_EQ(count_occurrences(prom, "# HELP " + family + " "), 1u)
        << family << "\n" << prom;
    EXPECT_EQ(count_occurrences(prom, "# TYPE " + family + " "), 1u)
        << family << "\n" << prom;
  }
  EXPECT_EQ(count_occurrences(prom, "fmt_hist_quantile{q="), 3u) << prom;
  // HELP precedes TYPE precedes the samples of the family.
  const std::size_t help_pos = prom.find("# HELP fmt_count ");
  const std::size_t type_pos = prom.find("# TYPE fmt_count ");
  const std::size_t sample_pos = prom.find("fmt_count 1");
  EXPECT_LT(help_pos, type_pos);
  EXPECT_LT(type_pos, sample_pos);
}

TEST(Metrics, PrometheusDeduplicatesCollidingFamilies) {
  Registry registry;
  // Distinct dotted names that sanitize onto the same Prometheus family
  // must not repeat the family's headers.
  registry.gauge("col.lide").set(1.0);
  registry.gauge("col/lide").set(2.0);
  const std::string prom = registry.to_prometheus();
  EXPECT_EQ(count_occurrences(prom, "# TYPE col_lide gauge"), 1u) << prom;
  EXPECT_EQ(count_occurrences(prom, "# HELP col_lide "), 1u) << prom;
  EXPECT_EQ(count_occurrences(prom, "\ncol_lide "), 2u) << prom;
}

// ---- trace spans ---------------------------------------------------------

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceCollector::instance().clear();
    TraceCollector::instance().set_enabled(true);
  }

  void TearDown() override {
    TraceCollector::instance().set_enabled(false);
    TraceCollector::instance().clear();
  }
};

TEST_F(TraceTest, DisabledCollectorRecordsNothing) {
  TraceCollector::instance().set_enabled(false);
  { PLOS_SPAN("invisible"); }
  EXPECT_TRUE(TraceCollector::instance().events().empty());
}

TEST_F(TraceTest, SpansNestWithDepthAndContainment) {
  {
    PLOS_SPAN("outer");
    {
      PLOS_SPAN("middle");
      { PLOS_SPAN("inner", "index", 3.0); }
    }
  }
  const auto events = TraceCollector::instance().events();
  ASSERT_EQ(events.size(), 3u);
  // Spans close innermost-first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "middle");
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].depth, 0);
  EXPECT_TRUE(events[0].has_arg);
  EXPECT_EQ(events[0].arg_name, "index");
  EXPECT_DOUBLE_EQ(events[0].arg, 3.0);
  // Child intervals are contained in their parent's interval.
  for (int child = 0; child < 2; ++child) {
    const auto& inner = events[child];
    const auto& outer = events[child + 1];
    EXPECT_GE(inner.ts_us, outer.ts_us);
    EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);
  }
}

TEST_F(TraceTest, SequentialSpansShareDepthZero) {
  { PLOS_SPAN("first"); }
  { PLOS_SPAN("second"); }
  const auto events = TraceCollector::instance().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
}

TEST_F(TraceTest, ChromeJsonIsValidAndCarriesEvents) {
  {
    PLOS_SPAN("qp_solve");
    { PLOS_SPAN("projection"); }
  }
  const std::string json = TraceCollector::instance().to_chrome_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"qp_solve\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"projection\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST_F(TraceTest, EmptyCollectorStillSerializesValidJson) {
  const std::string json = TraceCollector::instance().to_chrome_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
}

TEST_F(TraceTest, ConcurrentSpansRecordPerThreadTracksWithoutLoss) {
  // Thread pools open spans from many workers at once: depth bookkeeping is
  // thread-local, the shared event vector is mutex-guarded, and each event
  // carries its recording thread's id so Perfetto renders per-worker
  // tracks. Nothing may be lost or cross-contaminated.
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 100;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([] {
      for (int k = 0; k < kSpansPerThread; ++k) {
        PLOS_SPAN("worker_outer", "k", static_cast<double>(k));
        { PLOS_SPAN("worker_inner"); }
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto events = TraceCollector::instance().events();
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread * 2));
  std::map<std::uint32_t, std::pair<int, int>> per_tid;  // (outer, inner)
  for (const auto& event : events) {
    EXPECT_GT(event.tid, 0u);
    if (event.name == "worker_outer") {
      EXPECT_EQ(event.depth, 0);
      ++per_tid[event.tid].first;
    } else {
      ASSERT_EQ(event.name, "worker_inner");
      EXPECT_EQ(event.depth, 1);
      ++per_tid[event.tid].second;
    }
  }
  // Dense per-thread ids: every worker contributed its full span count to
  // its own track.
  ASSERT_EQ(per_tid.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, counts] : per_tid) {
    EXPECT_EQ(counts.first, kSpansPerThread) << "tid " << tid;
    EXPECT_EQ(counts.second, kSpansPerThread) << "tid " << tid;
  }
  EXPECT_TRUE(is_valid_json(TraceCollector::instance().to_chrome_json()));
}

TEST(Metrics, ConcurrentCounterGaugeHistogramRecording) {
  // The solver records counters/gauges/histograms from pool workers; the
  // registry must neither lose integer-valued increments nor corrupt the
  // gauge sample trace under concurrency.
  Registry registry(true);
  Counter& counter = registry.counter("c");
  Gauge& gauge = registry.gauge("g");
  Histogram& histogram = registry.histogram("h", default_iteration_buckets());

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int k = 0; k < kOpsPerThread; ++k) {
        counter.increment();
        gauge.set(static_cast<double>(i));
        histogram.record(static_cast<double>(k % 50));
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_DOUBLE_EQ(counter.value(),
                   static_cast<double>(kThreads * kOpsPerThread));
  EXPECT_EQ(histogram.count(),
            static_cast<std::size_t>(kThreads * kOpsPerThread));
  const auto samples = gauge.samples();
  EXPECT_EQ(samples.size(), static_cast<std::size_t>(kThreads * kOpsPerThread));
  // The last value is one of the writers' values, whatever the interleave.
  EXPECT_GE(gauge.value(), 0.0);
  EXPECT_LT(gauge.value(), static_cast<double>(kThreads));
  EXPECT_TRUE(is_valid_json(registry.to_json()));
}

}  // namespace
}  // namespace plos::obs
