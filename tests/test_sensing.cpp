// Tests for the 3-D rotation utility, the body-sensor-network simulator,
// and the HAR-like generator.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/assert.hpp"
#include "sensing/body_sensor.hpp"
#include "sensing/har.hpp"
#include "sensing/rotation3d.hpp"
#include "svm/linear_svm.hpp"

namespace plos::sensing {
namespace {

TEST(Rotation3, IdentityLeavesVectorsAlone) {
  const Rotation3 r;
  const Vec3 v{1.0, 2.0, 3.0};
  const Vec3 out = r.apply(v);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_DOUBLE_EQ(out[2], 3.0);
}

TEST(Rotation3, QuarterTurnAboutZ) {
  const Rotation3 r =
      Rotation3::axis_angle({0.0, 0.0, 1.0}, std::numbers::pi / 2.0);
  const Vec3 out = r.apply({1.0, 0.0, 0.0});
  EXPECT_NEAR(out[0], 0.0, 1e-12);
  EXPECT_NEAR(out[1], 1.0, 1e-12);
  EXPECT_NEAR(out[2], 0.0, 1e-12);
}

TEST(Rotation3, PreservesNorm) {
  rng::Engine engine(1);
  for (int trial = 0; trial < 20; ++trial) {
    const Rotation3 r = Rotation3::random(engine, std::numbers::pi);
    const Vec3 v{engine.gaussian(), engine.gaussian(), engine.gaussian()};
    EXPECT_NEAR(norm3(r.apply(v)), norm3(v), 1e-12);
  }
}

TEST(Rotation3, ComposeMatchesSequentialApplication) {
  rng::Engine engine(2);
  const Rotation3 a = Rotation3::random(engine, 2.0);
  const Rotation3 b = Rotation3::random(engine, 2.0);
  const Vec3 v{1.0, -2.0, 0.5};
  const Vec3 lhs = a.compose(b).apply(v);
  const Vec3 rhs = a.apply(b.apply(v));
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(lhs[i], rhs[i], 1e-12);
}

TEST(Rotation3, ZeroAxisThrows) {
  EXPECT_THROW(Rotation3::axis_angle({0.0, 0.0, 0.0}, 1.0), PreconditionError);
}

TEST(BodySensor, DatasetShape) {
  BodySensorSpec spec;
  spec.num_users = 4;
  rng::Engine engine(3);
  const auto d = generate_body_sensor_dataset(spec, engine);
  EXPECT_EQ(d.num_users(), 4u);
  EXPECT_EQ(d.dim(), 121u);  // 120 features + bias
  for (const auto& u : d.users) {
    // 2260 samples per activity -> 69 windows per activity, two activities.
    EXPECT_EQ(u.num_samples(), 138u);
    std::size_t standing = 0;
    for (int y : u.true_labels) {
      if (y == kStandingLabel) ++standing;
    }
    EXPECT_EQ(standing, 69u);
  }
}

TEST(BodySensor, NoBiasNoStandardizeOption) {
  BodySensorSpec spec;
  spec.num_users = 2;
  spec.seconds_per_activity = 10.0;
  spec.standardize = false;
  spec.add_bias_dimension = false;
  rng::Engine engine(4);
  const auto d = generate_body_sensor_dataset(spec, engine);
  EXPECT_EQ(d.dim(), 120u);
}

TEST(BodySensor, DeterministicGivenSeed) {
  BodySensorSpec spec;
  spec.num_users = 2;
  spec.seconds_per_activity = 10.0;
  rng::Engine e1(5), e2(5);
  const auto d1 = generate_body_sensor_dataset(spec, e1);
  const auto d2 = generate_body_sensor_dataset(spec, e2);
  for (std::size_t t = 0; t < 2; ++t) {
    for (std::size_t i = 0; i < d1.users[t].num_samples(); ++i) {
      EXPECT_TRUE(linalg::approx_equal(d1.users[t].samples[i],
                                       d2.users[t].samples[i], 0.0));
    }
  }
}

TEST(BodySensor, SignalLayerShape) {
  BodySensorSpec spec;
  spec.seconds_per_activity = 5.0;
  rng::Engine engine(6);
  const auto archetypes = sample_placement_archetypes(spec, engine);
  EXPECT_EQ(archetypes.styles.size(), spec.num_wearing_styles);
  const UserTraits traits = sample_user_traits(spec, archetypes, engine);
  const auto nodes =
      simulate_user_activity(spec, traits, Activity::kStandingRest, engine);
  ASSERT_EQ(nodes.size(), kNumBodyNodes);
  for (const auto& node : nodes) {
    EXPECT_EQ(node.num_samples(), 100u);  // 5 s at 20 Hz
  }
}

TEST(BodySensor, ActivitiesAreLinearlySeparablePerUser) {
  // A personalized linear classifier on a user's own labeled windows should
  // get high training accuracy — the two postures differ in shin gravity.
  BodySensorSpec spec;
  spec.num_users = 3;
  rng::Engine engine(7);
  const auto d = generate_body_sensor_dataset(spec, engine);
  for (const auto& user : d.users) {
    const auto model = svm::train_linear_svm(user.samples, user.true_labels);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < user.num_samples(); ++i) {
      if (model.predict(user.samples[i]) == user.true_labels[i]) ++correct;
    }
    EXPECT_GT(static_cast<double>(correct) /
                  static_cast<double>(user.num_samples()),
              0.95);
  }
}

TEST(BodySensor, UsersDifferMoreThanActivitiesOverlap) {
  // The per-user mounting rotation must create real inter-user variation:
  // a classifier trained on user 0's labels should transfer imperfectly to
  // other users (this is exactly the effect PLOS exploits).
  BodySensorSpec spec;
  spec.num_users = 6;
  rng::Engine engine(8);
  const auto d = generate_body_sensor_dataset(spec, engine);
  const auto model =
      svm::train_linear_svm(d.users[0].samples, d.users[0].true_labels);
  double worst_transfer = 1.0;
  for (std::size_t t = 1; t < d.num_users(); ++t) {
    std::size_t correct = 0;
    for (std::size_t i = 0; i < d.users[t].num_samples(); ++i) {
      if (model.predict(d.users[t].samples[i]) == d.users[t].true_labels[i]) {
        ++correct;
      }
    }
    worst_transfer = std::min(
        worst_transfer, static_cast<double>(correct) /
                            static_cast<double>(d.users[t].num_samples()));
  }
  EXPECT_LT(worst_transfer, 0.9);
}

TEST(Har, DatasetShape) {
  HarSpec spec;
  spec.num_users = 5;
  spec.dim = 50;
  spec.samples_per_class = 20;
  rng::Engine engine(9);
  const auto d = generate_har_dataset(spec, engine);
  EXPECT_EQ(d.num_users(), 5u);
  EXPECT_EQ(d.dim(), 51u);  // + bias
  for (const auto& u : d.users) EXPECT_EQ(u.num_samples(), 40u);
}

TEST(Har, DefaultSpecMatchesPaperDimensions) {
  HarSpec spec;
  spec.num_users = 2;  // keep the test fast; dim stays 561
  rng::Engine engine(10);
  const auto d = generate_har_dataset(spec, engine);
  EXPECT_EQ(d.dim(), 562u);
  EXPECT_EQ(d.users[0].num_samples(), 100u);
}

TEST(Har, ClassesLearnablePerUser) {
  HarSpec spec;
  spec.num_users = 3;
  spec.dim = 100;
  spec.samples_per_class = 40;
  rng::Engine engine(11);
  const auto d = generate_har_dataset(spec, engine);
  for (const auto& user : d.users) {
    const auto model = svm::train_linear_svm(user.samples, user.true_labels);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < user.num_samples(); ++i) {
      if (model.predict(user.samples[i]) == user.true_labels[i]) ++correct;
    }
    EXPECT_GT(static_cast<double>(correct) /
                  static_cast<double>(user.num_samples()),
              0.9);
  }
}

TEST(Har, TraitStrengthKnobIncreasesUserVariation) {
  // With zero trait scales all users share one distribution; with large
  // scales a classifier from user 0 transfers worse.
  const auto transfer_accuracy = [](double direction_scale,
                                    double offset_scale) {
    HarSpec spec;
    spec.num_users = 4;
    spec.dim = 80;
    spec.samples_per_class = 40;
    spec.trait_direction_scale = direction_scale;
    spec.trait_offset_scale = offset_scale;
    rng::Engine engine(12);
    const auto d = generate_har_dataset(spec, engine);
    const auto model =
        svm::train_linear_svm(d.users[0].samples, d.users[0].true_labels);
    double total = 0.0;
    std::size_t count = 0;
    for (std::size_t t = 1; t < d.num_users(); ++t) {
      for (std::size_t i = 0; i < d.users[t].num_samples(); ++i) {
        total += model.predict(d.users[t].samples[i]) ==
                         d.users[t].true_labels[i]
                     ? 1.0
                     : 0.0;
        ++count;
      }
    }
    return total / static_cast<double>(count);
  };
  EXPECT_GT(transfer_accuracy(0.0, 0.0), transfer_accuracy(1.5, 3.0) + 0.05);
}

TEST(Har, InvalidSpecThrows) {
  HarSpec spec;
  spec.trait_rank = 0;
  rng::Engine engine(13);
  EXPECT_THROW(generate_har_dataset(spec, engine), PreconditionError);
}

}  // namespace
}  // namespace plos::sensing
