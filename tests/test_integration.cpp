// End-to-end integration tests across the whole stack: simulators ->
// feature pipeline -> all four methods -> evaluation, plus the distributed
// trainer on a simulated network.
#include <gtest/gtest.h>

#include <cmath>

#include "core/baselines.hpp"
#include "core/centralized_plos.hpp"
#include "core/cross_validation.hpp"
#include "core/distributed_plos.hpp"
#include "core/evaluation.hpp"
#include "data/labeling.hpp"
#include "net/simnet.hpp"
#include "rng/engine.hpp"
#include "sensing/body_sensor.hpp"
#include "sensing/har.hpp"

namespace plos::core {
namespace {

CentralizedPlosOptions plos_options() {
  CentralizedPlosOptions options;
  options.params.lambda = 100.0;
  options.params.cl = 10.0;
  options.params.cu = 1.0;
  options.cutting_plane.epsilon = 1e-2;
  options.cccp.max_iterations = 4;
  return options;
}

TEST(Integration, BodySensorPipelineEndToEnd) {
  // Averaged over three simulated populations: single draws are noisy, and
  // the paper's ordering claims are about expected behaviour.
  double plos_l = 0.0, plos_u = 0.0, all_l = 0.0, single_u = 0.0;
  const int kSeeds = 3;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    sensing::BodySensorSpec spec;
    spec.num_users = 12;
    spec.seconds_per_activity = 60.0;  // ~36 windows per activity
    rng::Engine engine(static_cast<std::uint64_t>(seed));
    auto dataset = sensing::generate_body_sensor_dataset(spec, engine);

    // Half the users label 20% of their windows.
    data::reveal_labels(dataset, {0, 1, 2, 3, 4, 5}, 0.2, engine);

    auto body_options = plos_options();  // per-domain params, as the paper's CV would pick
    body_options.params.lambda = 30.0;
    body_options.params.cu = 5.0;
    const auto plos = train_centralized_plos(dataset, body_options);
    const auto plos_report =
        evaluate(dataset, predict_all(dataset, plos.model));
    const auto all_report = evaluate(dataset, run_all_baseline(dataset));
    const auto single_report = evaluate(dataset, run_single_baseline(dataset));
    plos_l += plos_report.providers / kSeeds;
    plos_u += plos_report.non_providers / kSeeds;
    all_l += all_report.providers / kSeeds;
    single_u += single_report.non_providers / kSeeds;
  }

  // The paper's headline ordering on body-sensor data: PLOS wins on both
  // user types; Single cannot help label-free users.
  EXPECT_GT(plos_l, 0.8);
  EXPECT_GT(plos_u, 0.7);
  EXPECT_GE(plos_l, all_l - 0.02);
  EXPECT_GT(plos_u, single_u);
}

TEST(Integration, HarPipelineEndToEnd) {
  sensing::HarSpec spec;
  spec.num_users = 10;
  spec.dim = 120;  // keep runtime modest; structure unchanged
  spec.samples_per_class = 30;
  rng::Engine engine(2);
  auto dataset = sensing::generate_har_dataset(spec, engine);
  data::reveal_labels(dataset, {0, 1, 2, 3, 4}, 0.2, engine);

  const auto plos = train_centralized_plos(dataset, plos_options());
  const auto plos_report = evaluate(dataset, predict_all(dataset, plos.model));
  const auto single_report = evaluate(dataset, run_single_baseline(dataset));

  EXPECT_GT(plos_report.providers, 0.7);
  EXPECT_GT(plos_report.non_providers, 0.7);
  EXPECT_GT(plos_report.non_providers, single_report.non_providers);
}

TEST(Integration, DistributedMatchesCentralizedOnBodySensor) {
  sensing::BodySensorSpec spec;
  spec.num_users = 5;
  spec.seconds_per_activity = 25.0;
  rng::Engine engine(3);
  auto dataset = sensing::generate_body_sensor_dataset(spec, engine);
  data::reveal_labels(dataset, {0, 1, 2}, 0.25, engine);

  DistributedPlosOptions options;
  options.params = plos_options().params;
  options.cutting_plane.epsilon = 1e-2;
  options.cccp.max_iterations = 3;
  options.max_admm_iterations = 80;

  net::SimNetwork network(5, net::DeviceProfile{}, net::LinkProfile{});
  const auto distributed = train_distributed_plos(dataset, options, &network);
  const auto centralized = train_centralized_plos(dataset, plos_options());

  const auto rd = evaluate(dataset, predict_all(dataset, distributed.model));
  const auto rc = evaluate(dataset, predict_all(dataset, centralized.model));
  EXPECT_NEAR(rd.overall, rc.overall, 0.12);

  // Communication stays model-sized: every message carries O(dim) doubles,
  // not the raw windows.
  const auto& metrics = network.device_metrics(0);
  ASSERT_GT(metrics.messages_sent, 0u);
  const double uplink_per_message =
      static_cast<double>(metrics.bytes_sent) /
      static_cast<double>(metrics.messages_sent);
  // w + v + xi at 121 dims ≈ 2*8*121 + overhead ≈ 2 KB.
  EXPECT_LT(uplink_per_message, 4096.0);
}

TEST(Integration, CrossValidationSelectsReasonableLambda) {
  sensing::HarSpec spec;
  spec.num_users = 6;
  spec.dim = 40;
  spec.samples_per_class = 20;
  rng::Engine engine(4);
  auto dataset = sensing::generate_har_dataset(spec, engine);
  data::reveal_labels(dataset, {0, 1, 2}, 0.3, engine);

  const std::vector<double> lambdas{1.0, 100.0};
  CrossValidationOptions cv;
  cv.num_folds = 2;
  const std::size_t best = select_best_parameter(
      dataset, lambdas,
      [&](double lambda) -> TrainPredictFn {
        return [lambda](const data::MultiUserDataset& fold) {
          auto options = plos_options();
          options.params.lambda = lambda;
          options.cccp.max_iterations = 2;
          const auto result = train_centralized_plos(fold, options);
          return predict_all(fold, result.model);
        };
      },
      cv);
  EXPECT_LT(best, lambdas.size());
}

}  // namespace
}  // namespace plos::core
