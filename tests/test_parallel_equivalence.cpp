// Serial-equivalence suite: for every supported thread count, the
// centralized trainer, the distributed trainer, and all three baselines
// must produce results BITWISE identical to the single-threaded run — same
// w0 and v_t down to the last ulp, same objective traces, same SimNetwork
// byte ledgers. This is the determinism contract of DESIGN.md §8; any
// reduction reordering or RNG-stream drift introduced by future threading
// work fails here instead of silently changing benches.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/baselines.hpp"
#include "core/centralized_plos.hpp"
#include "core/distributed_plos.hpp"
#include "data/labeling.hpp"
#include "data/synthetic.hpp"
#include "net/simnet.hpp"
#include "rng/engine.hpp"
#include "sensing/body_sensor.hpp"
#include "sensing/har.hpp"

namespace plos::core {
namespace {

data::MultiUserDataset make_synth_population() {
  data::SyntheticSpec spec;
  spec.num_users = 6;
  spec.points_per_class = 20;
  spec.max_rotation = 1.2;
  rng::Engine engine(11);
  auto dataset = data::generate_synthetic(spec, engine);
  data::reveal_labels(dataset, {0, 2, 4}, 0.3, engine);
  return dataset;
}

data::MultiUserDataset make_body_population() {
  sensing::BodySensorSpec spec;
  spec.num_users = 4;
  spec.seconds_per_activity = 15.0;
  rng::Engine engine(12);
  auto dataset = sensing::generate_body_sensor_dataset(spec, engine);
  data::reveal_labels(dataset, {0, 2}, 0.25, engine);
  return dataset;
}

data::MultiUserDataset make_har_population() {
  sensing::HarSpec spec;
  spec.num_users = 5;
  spec.dim = 30;
  spec.samples_per_class = 10;
  rng::Engine engine(13);
  auto dataset = sensing::generate_har_dataset(spec, engine);
  data::reveal_labels(dataset, {0, 3}, 0.3, engine);
  return dataset;
}

void expect_bitwise_equal(const linalg::Vector& serial,
                          const linalg::Vector& threaded, const char* what) {
  ASSERT_EQ(serial.size(), threaded.size()) << what;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    // Exact double comparison on purpose: the contract is bitwise identity,
    // not closeness.
    ASSERT_EQ(serial[i], threaded[i]) << what << " differs at " << i;
  }
}

void expect_models_equal(const PersonalizedModel& serial,
                         const PersonalizedModel& threaded) {
  expect_bitwise_equal(serial.global_weights, threaded.global_weights, "w0");
  ASSERT_EQ(serial.user_deviations.size(), threaded.user_deviations.size());
  for (std::size_t t = 0; t < serial.user_deviations.size(); ++t) {
    expect_bitwise_equal(serial.user_deviations[t],
                         threaded.user_deviations[t], "v_t");
  }
}

void expect_traces_equal(const std::vector<double>& serial,
                         const std::vector<double>& threaded,
                         const char* what) {
  ASSERT_EQ(serial.size(), threaded.size()) << what;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], threaded[i]) << what << " differs at entry " << i;
  }
}

void expect_predictions_equal(const std::vector<UserPrediction>& serial,
                              const std::vector<UserPrediction>& threaded) {
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t t = 0; t < serial.size(); ++t) {
    EXPECT_EQ(serial[t].match_clusters, threaded[t].match_clusters)
        << "user " << t;
    ASSERT_EQ(serial[t].labels, threaded[t].labels) << "user " << t;
  }
}

class SerialEquivalence : public ::testing::TestWithParam<int> {};

CentralizedPlosOptions centralized_options(int threads) {
  CentralizedPlosOptions options;
  options.cutting_plane.epsilon = 1e-2;
  options.cccp.max_iterations = 3;
  options.num_threads = threads;
  return options;
}

DistributedPlosOptions distributed_options(int threads) {
  DistributedPlosOptions options;
  options.cutting_plane.epsilon = 1e-2;
  options.cccp.max_iterations = 3;
  options.max_admm_iterations = 60;
  options.num_threads = threads;
  return options;
}

void check_centralized(const data::MultiUserDataset& dataset, int threads) {
  const auto serial = train_centralized_plos(dataset, centralized_options(1));
  const auto threaded =
      train_centralized_plos(dataset, centralized_options(threads));
  expect_models_equal(serial.model, threaded.model);
  expect_traces_equal(serial.diagnostics.objective_trace,
                      threaded.diagnostics.objective_trace, "objective");
  EXPECT_EQ(serial.diagnostics.cccp_iterations,
            threaded.diagnostics.cccp_iterations);
  EXPECT_EQ(serial.diagnostics.qp_solves, threaded.diagnostics.qp_solves);
  EXPECT_EQ(serial.diagnostics.final_constraint_count,
            threaded.diagnostics.final_constraint_count);
}

TEST_P(SerialEquivalence, CentralizedSynthetic) {
  check_centralized(make_synth_population(), GetParam());
}

TEST_P(SerialEquivalence, CentralizedBodySensor) {
  check_centralized(make_body_population(), GetParam());
}

TEST_P(SerialEquivalence, CentralizedHar) {
  check_centralized(make_har_population(), GetParam());
}

void check_distributed(const data::MultiUserDataset& dataset, int threads) {
  net::SimNetwork serial_net(dataset.num_users(), net::DeviceProfile{},
                             net::LinkProfile{});
  net::SimNetwork threaded_net(dataset.num_users(), net::DeviceProfile{},
                               net::LinkProfile{});
  const auto serial =
      train_distributed_plos(dataset, distributed_options(1), &serial_net);
  const auto threaded = train_distributed_plos(
      dataset, distributed_options(threads), &threaded_net);

  expect_models_equal(serial.model, threaded.model);
  expect_traces_equal(serial.diagnostics.objective_trace,
                      threaded.diagnostics.objective_trace, "objective");
  expect_traces_equal(serial.diagnostics.primal_residual_trace,
                      threaded.diagnostics.primal_residual_trace, "primal");
  expect_traces_equal(serial.diagnostics.dual_residual_trace,
                      threaded.diagnostics.dual_residual_trace, "dual");
  EXPECT_EQ(serial.diagnostics.admm_iterations_total,
            threaded.diagnostics.admm_iterations_total);
  EXPECT_EQ(serial.diagnostics.qp_solves, threaded.diagnostics.qp_solves);

  // The communication ledger is integer-exact, so the threaded simulation
  // must charge byte-for-byte what the serial one did — per device and for
  // the server.
  EXPECT_EQ(serial_net.rounds_completed(), threaded_net.rounds_completed());
  EXPECT_EQ(serial_net.server_metrics().bytes_sent,
            threaded_net.server_metrics().bytes_sent);
  EXPECT_EQ(serial_net.server_metrics().bytes_received,
            threaded_net.server_metrics().bytes_received);
  for (std::size_t t = 0; t < dataset.num_users(); ++t) {
    const auto& s = serial_net.device_metrics(t);
    const auto& p = threaded_net.device_metrics(t);
    EXPECT_EQ(s.bytes_sent, p.bytes_sent) << "device " << t;
    EXPECT_EQ(s.bytes_received, p.bytes_received) << "device " << t;
    EXPECT_EQ(s.messages_sent, p.messages_sent) << "device " << t;
    EXPECT_EQ(s.messages_received, p.messages_received) << "device " << t;
  }
}

TEST_P(SerialEquivalence, DistributedSynthetic) {
  check_distributed(make_synth_population(), GetParam());
}

TEST_P(SerialEquivalence, DistributedBodySensor) {
  check_distributed(make_body_population(), GetParam());
}

TEST_P(SerialEquivalence, DistributedHar) {
  check_distributed(make_har_population(), GetParam());
}

void check_baselines(const data::MultiUserDataset& dataset, int threads) {
  BaselineOptions serial_options;
  BaselineOptions threaded_options;
  threaded_options.num_threads = threads;
  expect_predictions_equal(run_all_baseline(dataset, serial_options),
                           run_all_baseline(dataset, threaded_options));
  expect_predictions_equal(run_single_baseline(dataset, serial_options),
                           run_single_baseline(dataset, threaded_options));
  GroupBaselineOptions serial_group;
  GroupBaselineOptions threaded_group;
  threaded_group.base.num_threads = threads;
  EXPECT_EQ(group_users(dataset, serial_group),
            group_users(dataset, threaded_group));
  expect_predictions_equal(run_group_baseline(dataset, serial_group),
                           run_group_baseline(dataset, threaded_group));
}

TEST_P(SerialEquivalence, BaselinesSynthetic) {
  check_baselines(make_synth_population(), GetParam());
}

TEST_P(SerialEquivalence, BaselinesBodySensor) {
  check_baselines(make_body_population(), GetParam());
}

TEST_P(SerialEquivalence, BaselinesHar) {
  check_baselines(make_har_population(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Threads, SerialEquivalence,
                         ::testing::Values(1, 2, 4, 8),
                         [](const auto& param_info) {
                           return "threads" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace plos::core
