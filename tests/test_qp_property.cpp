// Property-test harness for the two FISTA QP solvers (DESIGN.md §13).
//
// Across ~200 seeded random instances per solver the suite checks the three
// properties the hot-path engine leans on:
//   1. correctness — the returned point satisfies the KKT conditions of its
//      problem to 1e-8 (feasibility + unit-step projected-gradient norm);
//   2. warm-start idempotence — re-solving with the cold solution as warm
//      start returns after ZERO iterations with the bitwise-identical
//      vector, which is what makes cross-round warm-start seeding safe;
//   3. projection idempotence — projecting an already-projected point is a
//      bitwise no-op, so the solver's "project the warm start before use"
//      step cannot perturb an optimal seed.
#include <gtest/gtest.h>

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "qp/box_qp.hpp"
#include "qp/capped_simplex_qp.hpp"
#include "qp/projection.hpp"
#include "rng/engine.hpp"

namespace plos::qp {
namespace {

using linalg::Matrix;
using linalg::Vector;

constexpr int kInstancesPerSolver = 200;
constexpr double kKktBound = 1e-8;

void expect_bitwise_equal(const Vector& a, const Vector& b, int seed) {
  ASSERT_EQ(a.size(), b.size()) << "seed " << seed;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << "seed " << seed << " component " << i;
  }
}

// H = B Bᵀ + ½I: symmetric PSD with smallest eigenvalue >= 0.5, so every
// instance is strongly convex and FISTA converges to tight tolerances fast.
Matrix random_psd(std::size_t n, rng::Engine& engine) {
  Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) b(r, c) = engine.gaussian();
  }
  Matrix h = b.row_gram();
  for (std::size_t i = 0; i < n; ++i) h(i, i) += 0.5;
  return h;
}

CappedSimplexQpProblem random_capped_simplex(int seed) {
  rng::Engine engine(static_cast<std::uint64_t>(seed) * 7919 + 1);
  const std::size_t n = 2 + static_cast<std::size_t>(seed % 12);
  CappedSimplexQpProblem problem;
  problem.hessian = random_psd(n, engine);
  problem.linear = engine.gaussian_vector(n, 0.0, 2.0);

  // Random partition of {0,…,n−1} into 1–4 shuffled groups, mimicking the
  // per-user index groups of the centralized dual.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  engine.shuffle(order);
  const std::size_t num_groups =
      1 + static_cast<std::size_t>(engine.uniform_int(0, 3)) % n;
  problem.groups.assign(num_groups, {});
  for (std::size_t i = 0; i < n; ++i) {
    problem.groups[i % num_groups].push_back(order[i]);
  }
  problem.caps.resize(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    problem.caps[g] = engine.uniform(0.25, 2.0);
  }
  return problem;
}

BoxQpProblem random_box(int seed) {
  rng::Engine engine(static_cast<std::uint64_t>(seed) * 6007 + 3);
  const std::size_t n = 2 + static_cast<std::size_t>(seed % 12);
  BoxQpProblem problem;
  problem.hessian = random_psd(n, engine);
  problem.linear = engine.gaussian_vector(n, 0.0, 2.0);
  problem.lo = engine.uniform(-1.0, 0.0);
  problem.hi = problem.lo + engine.uniform(0.5, 2.0);
  return problem;
}

QpOptions tight_options() {
  QpOptions options;
  options.tolerance = 1e-11;
  options.max_iterations = 50000;
  return options;
}

TEST(QpProperty, CappedSimplexKktAndWarmIdempotence) {
  for (int seed = 0; seed < kInstancesPerSolver; ++seed) {
    const auto problem = random_capped_simplex(seed);
    const auto cold = solve_capped_simplex_qp(problem, tight_options());
    ASSERT_TRUE(cold.converged) << "seed " << seed;
    EXPECT_LE(kkt_residual(problem, cold.solution), kKktBound)
        << "seed " << seed;

    // A warm start that IS the cold solution must be accepted by the
    // iteration-0 probe and returned without a single FISTA step.
    QpOptions warm_options = tight_options();
    warm_options.warm_start = cold.solution;
    const auto warm = solve_capped_simplex_qp(problem, warm_options);
    ASSERT_TRUE(warm.converged) << "seed " << seed;
    EXPECT_EQ(warm.iterations, 0) << "seed " << seed;
    expect_bitwise_equal(cold.solution, warm.solution, seed);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(cold.objective),
              std::bit_cast<std::uint64_t>(warm.objective))
        << "seed " << seed;
  }
}

TEST(QpProperty, CappedSimplexCachedLipschitzIsBitwiseNeutral) {
  for (int seed = 0; seed < kInstancesPerSolver; ++seed) {
    const auto problem = random_capped_simplex(seed);
    const auto plain = solve_capped_simplex_qp(problem, tight_options());

    // Passing the memoized Lipschitz estimate back through the option must
    // reproduce the internal estimate's run bit for bit — this is the
    // contract the Device-side Lipschitz cache relies on.
    QpOptions cached = tight_options();
    cached.lipschitz = lipschitz_estimate(problem.hessian);
    const auto memoized = solve_capped_simplex_qp(problem, cached);
    EXPECT_EQ(plain.iterations, memoized.iterations) << "seed " << seed;
    expect_bitwise_equal(plain.solution, memoized.solution, seed);
  }
}

TEST(QpProperty, BoxKktAndWarmIdempotence) {
  for (int seed = 0; seed < kInstancesPerSolver; ++seed) {
    const auto problem = random_box(seed);
    const auto cold = solve_box_qp(problem, tight_options());
    ASSERT_TRUE(cold.converged) << "seed " << seed;
    EXPECT_LE(kkt_residual(problem, cold.solution), kKktBound)
        << "seed " << seed;

    QpOptions warm_options = tight_options();
    warm_options.warm_start = cold.solution;
    const auto warm = solve_box_qp(problem, warm_options);
    ASSERT_TRUE(warm.converged) << "seed " << seed;
    EXPECT_EQ(warm.iterations, 0) << "seed " << seed;
    expect_bitwise_equal(cold.solution, warm.solution, seed);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(cold.objective),
              std::bit_cast<std::uint64_t>(warm.objective))
        << "seed " << seed;
  }
}

TEST(QpProperty, ProjectionsAreBitwiseIdempotent) {
  for (int seed = 0; seed < kInstancesPerSolver; ++seed) {
    rng::Engine engine(static_cast<std::uint64_t>(seed) * 104729 + 17);
    const std::size_t n = 1 + static_cast<std::size_t>(seed % 16);

    Vector x = engine.gaussian_vector(n, 0.0, 3.0);
    const double cap = engine.uniform(0.1, 2.0);
    project_capped_simplex(x, cap);
    Vector once = x;
    project_capped_simplex(x, cap);
    expect_bitwise_equal(once, x, seed);

    Vector y = engine.gaussian_vector(n, 0.0, 3.0);
    const double lo = engine.uniform(-1.0, 0.0);
    const double hi = lo + engine.uniform(0.5, 2.0);
    project_box(y, lo, hi);
    Vector box_once = y;
    project_box(y, lo, hi);
    expect_bitwise_equal(box_once, y, seed);
  }
}

}  // namespace
}  // namespace plos::qp
