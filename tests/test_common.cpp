// Tests for the common substrate: contract checking and the stopwatch,
// plus the PersonalizedModel value type.
#include <gtest/gtest.h>

#include <string>

#include "common/assert.hpp"
#include "common/stopwatch.hpp"
#include "core/model.hpp"

namespace plos {
namespace {

TEST(Assert, PassingCheckIsSilent) {
  EXPECT_NO_THROW(PLOS_CHECK(1 + 1 == 2, "arithmetic works"));
  EXPECT_NO_THROW(PLOS_ASSERT(true));
}

TEST(Assert, FailingCheckThrowsWithContext) {
  try {
    PLOS_CHECK(false, "the message");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);       // expression
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);  // file
    EXPECT_NE(what.find("the message"), std::string::npos);  // message
  }
}

TEST(Assert, AssertWithoutMessage) {
  EXPECT_THROW(PLOS_ASSERT(2 < 1), PreconditionError);
}

TEST(Assert, SideEffectsEvaluatedOnce) {
  int calls = 0;
  const auto bump = [&] {
    ++calls;
    return true;
  };
  PLOS_CHECK(bump(), "");
  EXPECT_EQ(calls, 1);
}

TEST(Stopwatch, ElapsedIsNonNegativeAndMonotone) {
  Stopwatch watch;
  const double a = watch.elapsed_seconds();
  const double b = watch.elapsed_seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(Stopwatch, ResetRestartsFromZero) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  const double before = watch.elapsed_seconds();
  watch.reset();
  EXPECT_LE(watch.elapsed_seconds(), before + 1e-3);
}

TEST(PersonalizedModel, ZerosShape) {
  const auto model = core::PersonalizedModel::zeros(3, 4);
  EXPECT_EQ(model.num_users(), 3u);
  EXPECT_EQ(model.dim(), 4u);
  EXPECT_DOUBLE_EQ(linalg::norm(model.global_weights), 0.0);
}

TEST(PersonalizedModel, UserWeightsComposeGlobalAndDeviation) {
  auto model = core::PersonalizedModel::zeros(2, 2);
  model.global_weights = {1.0, 2.0};
  model.user_deviations[1] = {0.5, -2.0};
  EXPECT_EQ(model.user_weights(0), (linalg::Vector{1.0, 2.0}));
  EXPECT_EQ(model.user_weights(1), (linalg::Vector{1.5, 0.0}));
}

TEST(PersonalizedModel, DecisionValueAndPredict) {
  auto model = core::PersonalizedModel::zeros(1, 2);
  model.global_weights = {1.0, -1.0};
  EXPECT_DOUBLE_EQ(model.decision_value(0, linalg::Vector{2.0, 0.5}), 1.5);
  EXPECT_EQ(model.predict(0, linalg::Vector{2.0, 0.5}), 1);
  EXPECT_EQ(model.predict(0, linalg::Vector{0.0, 0.5}), -1);
  EXPECT_EQ(model.predict(0, linalg::Vector{1.0, 1.0}), 1);  // tie -> +1
}

TEST(PersonalizedModel, OutOfRangeUserThrows) {
  const auto model = core::PersonalizedModel::zeros(1, 2);
  EXPECT_THROW(model.user_weights(1), PreconditionError);
  EXPECT_THROW(model.predict(5, linalg::Vector{0.0, 0.0}),
               PreconditionError);
}

}  // namespace
}  // namespace plos
