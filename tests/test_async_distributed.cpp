// Tests for the asynchronous (partial-participation) distributed PLOS.
#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"
#include "core/distributed_plos.hpp"
#include "core/evaluation.hpp"
#include "data/labeling.hpp"
#include "data/synthetic.hpp"
#include "net/simnet.hpp"
#include "rng/engine.hpp"

namespace plos::core {
namespace {

data::MultiUserDataset make_population(std::uint64_t seed,
                                       std::size_t num_users = 6) {
  data::SyntheticSpec spec;
  spec.num_users = num_users;
  spec.points_per_class = 30;
  spec.max_rotation = 0.5;
  rng::Engine engine(seed);
  auto dataset = data::generate_synthetic(spec, engine);
  std::vector<std::size_t> providers;
  for (std::size_t t = 0; t < num_users; t += 2) providers.push_back(t);
  data::reveal_labels(dataset, providers, 0.3, engine);
  return dataset;
}

AsyncDistributedPlosOptions fast_options(double participation) {
  AsyncDistributedPlosOptions options;
  options.base.params.lambda = 100.0;
  options.base.params.cl = 10.0;
  options.base.params.cu = 1.0;
  options.base.cutting_plane.epsilon = 1e-2;
  options.base.cccp.max_iterations = 3;
  options.base.max_admm_iterations = 150;
  options.participation = participation;
  return options;
}

TEST(AsyncDistributedPlos, FullParticipationMatchesSynchronous) {
  auto dataset = make_population(1);
  const auto sync = train_distributed_plos(dataset, fast_options(1.0).base);
  const auto async = train_async_distributed_plos(dataset, fast_options(1.0));
  EXPECT_TRUE(linalg::approx_equal(sync.model.global_weights,
                                   async.model.global_weights, 0.0));
  EXPECT_EQ(sync.diagnostics.admm_iterations_total,
            async.diagnostics.admm_iterations_total);
}

TEST(AsyncDistributedPlos, PartialParticipationStillLearns) {
  auto dataset = make_population(2);
  const auto result =
      train_async_distributed_plos(dataset, fast_options(0.5));
  const auto report = evaluate(dataset, predict_all(dataset, result.model));
  EXPECT_GT(report.overall, 0.75);
}

TEST(AsyncDistributedPlos, AccuracyDegradesGracefully) {
  auto dataset = make_population(3);
  const auto full = train_async_distributed_plos(dataset, fast_options(1.0));
  const auto sparse =
      train_async_distributed_plos(dataset, fast_options(0.3));
  const auto rf = evaluate(dataset, predict_all(dataset, full.model));
  const auto rs = evaluate(dataset, predict_all(dataset, sparse.model));
  EXPECT_GT(rs.overall, rf.overall - 0.15);
}

TEST(AsyncDistributedPlos, LowerParticipationSendsFewerMessagesPerRound) {
  auto dataset = make_population(4, 8);
  net::SimNetwork full_net(8, net::DeviceProfile{}, net::LinkProfile{});
  net::SimNetwork sparse_net(8, net::DeviceProfile{}, net::LinkProfile{});
  const auto full =
      train_async_distributed_plos(dataset, fast_options(1.0), &full_net);
  const auto sparse =
      train_async_distributed_plos(dataset, fast_options(0.4), &sparse_net);

  const double full_msgs_per_round =
      static_cast<double>(full_net.server_metrics().bytes_received) /
      std::max(1, full.diagnostics.admm_iterations_total);
  const double sparse_msgs_per_round =
      static_cast<double>(sparse_net.server_metrics().bytes_received) /
      std::max(1, sparse.diagnostics.admm_iterations_total);
  EXPECT_LT(sparse_msgs_per_round, 0.8 * full_msgs_per_round);
}

TEST(AsyncDistributedPlos, DeterministicGivenScheduleSeed) {
  auto dataset = make_population(5);
  const auto a = train_async_distributed_plos(dataset, fast_options(0.6));
  const auto b = train_async_distributed_plos(dataset, fast_options(0.6));
  EXPECT_TRUE(linalg::approx_equal(a.model.global_weights,
                                   b.model.global_weights, 0.0));
}

TEST(AsyncDistributedPlos, InvalidParticipationThrows) {
  auto dataset = make_population(6);
  EXPECT_THROW(train_async_distributed_plos(dataset, fast_options(0.0)),
               PreconditionError);
  EXPECT_THROW(train_async_distributed_plos(dataset, fast_options(1.5)),
               PreconditionError);
}

}  // namespace
}  // namespace plos::core
