// Seeded property tests for the plos_lint scrubber and lexer
// (DESIGN.md §16). The scrubber is the foundation every rule family
// stands on, so its contract is pinned generatively: random programs are
// assembled from self-terminating fragments whose comment/string payloads
// carry a sentinel byte that legal code never contains, and the suite
// asserts that (a) no payload byte survives scrubbing, (b) line structure
// and length are preserved exactly, (c) scrubbing is idempotent
// (scrub(scrub(x)) == scrub(x)), and (d) tokenization of the scrubbed
// text is deterministic and sentinel-free. Fixed seed, fixed iteration
// count: a failure reproduces byte-for-byte on every machine.
#include "lint/lexer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace plos::lint {
namespace {

// Payload bytes live only inside comments and literals; '@' never appears
// in the code fragments, so one surviving '@' convicts the scrubber.
constexpr char kSentinel = '@';

// Deterministic 64-bit LCG (same constants as std::knuth_b's ancestor);
// no std::random_device, no seed from the clock — reruns are identical.
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 33;
  }
  std::size_t below(std::size_t n) {
    return static_cast<std::size_t>(next() % n);
  }

 private:
  std::uint64_t state_;
};

// A payload that must be erased wholesale: sentinel-framed letters plus
// characters that probe the state machine (slashes, stars, parens).
std::string payload(Lcg& rng) {
  static const char kChars[] = {'a', 'b', ' ', '(', ')', '*', '/', '@'};
  std::string out(1, kSentinel);
  const std::size_t len = 1 + rng.below(8);
  for (std::size_t i = 0; i < len; ++i) {
    out += kChars[rng.below(sizeof(kChars))];
  }
  out += kSentinel;
  return out;
}

// Escapes a payload for use inside a normal (non-raw) string literal.
std::string escaped(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

// Strips "*/" so a payload can sit inside a block comment.
std::string block_safe(std::string text) {
  for (std::size_t at = text.find("*/"); at != std::string::npos;
       at = text.find("*/")) {
    text[at + 1] = ' ';
  }
  return text;
}

// Strips the raw-string terminator ")lint" so a payload can sit inside
// R"lint(...)lint".
std::string raw_safe(std::string text) {
  for (std::size_t at = text.find(")lint"); at != std::string::npos;
       at = text.find(")lint")) {
    text[at] = ' ';
  }
  return text;
}

// Every fragment is self-terminating (comments closed, literals closed,
// line comments own their newline), so any concatenation starts and ends
// in code state and the generator never builds an ill-formed prefix.
std::string random_fragment(Lcg& rng) {
  const std::string p = payload(rng);
  switch (rng.below(16)) {
    case 0:
      return "int v" + std::to_string(rng.below(100)) + " = " +
             std::to_string(rng.below(1000)) + ";\n";
    case 1:
      return "x += y[i] * 2.5e-3;\n";
    case 2:
      return "if (a < b) { c(d, e); }\n";
    case 3:
      return "#include \"core/solver.hpp\"\n";
    case 4:  // line comment
      return "// " + p + "\n";
    case 5:  // line comment continued by a splice: both lines vanish
      return "// " + p + " \\\n spliced " + p + "\n";
    case 6:  // one-line block comment
      return "/* " + block_safe(p) + " */ int k" +
             std::to_string(rng.below(100)) + ";\n";
    case 7:  // multi-line block comment
      return "/* " + block_safe(p) + "\n " + block_safe(p) + " */\n";
    case 8:  // string literal
      return "auto s = \"" + escaped(p) + "\";\n";
    case 9:  // comment openers inside a string are payload, not comments
      return "auto s = \"/* " + escaped(p) + " // \";\n";
    case 10:  // adjacent literals
      return "auto s = \"" + escaped(p) + "\" \"" + escaped(p) + "\";\n";
    case 11:  // char literal
      return "char c = '@';\n";
    case 12:  // raw string, default delimiter
      return "auto r = R\"(" + block_safe(raw_safe(p)) + ")\";\n";
    case 13:  // raw string, custom delimiter, quotes and parens inside
      return "auto r = R\"lint(quote \" close ) " + raw_safe(p) +
             ")lint\";\n";
    case 14:  // identifier ending in R is not a raw-string prefix
      return "auto s = FLAVOR\"" + escaped(p) + "\";\n";
    default:  // digit separators are not char literals
      return "int big = 1'000'" + std::to_string(rng.below(900) + 100) +
             ";\n";
  }
}

std::vector<std::size_t> newline_positions(const std::string& text) {
  std::vector<std::size_t> at;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') at.push_back(i);
  }
  return at;
}

TEST(ScrubberProperty, SentinelErasureLineStructureAndIdempotence) {
  Lcg rng(0x5eed5eed5eed5eedull);
  for (int iteration = 0; iteration < 300; ++iteration) {
    std::string source;
    const std::size_t fragments = 3 + rng.below(20);
    for (std::size_t i = 0; i < fragments; ++i) {
      source += random_fragment(rng);
    }

    const std::string scrubbed = strip_comments_and_strings(source);
    // Length and line structure survive byte-for-byte, so every rule's
    // line numbers match the original file.
    ASSERT_EQ(scrubbed.size(), source.size()) << source;
    ASSERT_EQ(newline_positions(scrubbed), newline_positions(source))
        << source;
    // No comment or literal payload byte survives.
    ASSERT_EQ(scrubbed.find(kSentinel), std::string::npos)
        << "iteration " << iteration << "\n--- source ---\n"
        << source << "--- scrubbed ---\n"
        << scrubbed;
    // Scrubbing is idempotent: blanked text holds no openers.
    ASSERT_EQ(strip_comments_and_strings(scrubbed), scrubbed) << source;

    // The token stream is deterministic and sentinel-free, and bracket
    // bookkeeping never goes negative on generated (balanced) programs.
    const std::vector<Token> tokens = tokenize(scrubbed);
    const std::vector<Token> again = tokenize(scrubbed);
    ASSERT_EQ(tokens.size(), again.size());
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      ASSERT_EQ(tokens[i].text, again[i].text);
      ASSERT_EQ(tokens[i].line, again[i].line);
      ASSERT_EQ(tokens[i].text.find(kSentinel), std::string::npos);
      ASSERT_GE(tokens[i].brace_depth, 0);
      ASSERT_GE(tokens[i].paren_depth, 0);
    }
  }
}

// ---- directed lexer cases the generator cannot pin precisely ------------

TEST(Lexer, MaxMunchPunctuationAndTemplateBrackets) {
  const std::vector<Token> tokens = tokenize("a <<= b; c->d; e >> f;");
  const auto has = [&](const char* text) {
    return std::any_of(tokens.begin(), tokens.end(), [&](const Token& t) {
      return t.kind == TokenKind::kPunct && t.text == text;
    });
  };
  EXPECT_TRUE(has("<<="));
  EXPECT_TRUE(has("->"));
  // ">>" is deliberately split so template argument lists stay balanced
  // for the semantic rules' backward walks.
  EXPECT_FALSE(has(">>"));
  EXPECT_EQ(std::count_if(tokens.begin(), tokens.end(),
                          [](const Token& t) {
                            return t.kind == TokenKind::kPunct &&
                                   t.text == ">";
                          }),
            2);
}

TEST(Lexer, PpNumbersLexAsSingleTokens) {
  const std::vector<Token> tokens = tokenize("x = 2.5e-3 + 1'000 + 0x1f;");
  std::vector<std::string> numbers;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kNumber) numbers.push_back(t.text);
  }
  EXPECT_EQ(numbers,
            (std::vector<std::string>{"2.5e-3", "1'000", "0x1f"}));
}

TEST(Lexer, TracksBraceAndParenDepth) {
  const std::vector<Token> tokens = tokenize("void f() { if (a) { g(b); } }");
  ASSERT_FALSE(tokens.empty());
  const Token& last = tokens.back();  // outermost '}'
  EXPECT_EQ(last.text, "}");
  EXPECT_EQ(last.brace_depth, 0);
  int max_brace = 0;
  for (const Token& t : tokens) max_brace = std::max(max_brace, t.brace_depth);
  EXPECT_EQ(max_brace, 2);  // tokens inside the nested if-body
}

TEST(Lexer, LineSpliceInLineCommentHidesTheNextLine) {
  const std::string scrubbed = strip_comments_and_strings(
      "// hidden \\\nstill hidden rand()\nint live;\n");
  EXPECT_EQ(scrubbed.find("rand"), std::string::npos);
  EXPECT_NE(scrubbed.find("int live;"), std::string::npos);
}

TEST(Lexer, IdentifierEndingInRIsNotARawStringPrefix) {
  // If FLAVOR's trailing R opened a raw string, the scrubber would hunt
  // for )" and swallow the rest of the file.
  const std::string scrubbed = strip_comments_and_strings(
      "auto s = FLAVOR\"x(y)z\"; int after;\n");
  EXPECT_NE(scrubbed.find("FLAVOR"), std::string::npos);
  EXPECT_NE(scrubbed.find("int after;"), std::string::npos);
  EXPECT_EQ(scrubbed.find("x(y)z"), std::string::npos);
}

TEST(Lexer, TokensCarryOneBasedLineNumbers) {
  const std::vector<Token> tokens = tokenize("int a;\nint b;\n");
  ASSERT_GE(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].text, "int");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[3].text, "int");
  EXPECT_EQ(tokens[3].line, 2);
}

}  // namespace
}  // namespace plos::lint
