// Tests for the L-BFGS optimizer and the finite-difference gradient check.
#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"
#include "opt/lbfgs.hpp"
#include "rng/engine.hpp"

namespace plos::opt {
namespace {

using linalg::Vector;

// Convex quadratic ½ x^T A x − b^T x with known minimizer.
ObjectiveFn quadratic(const std::vector<Vector>& a, const Vector& b) {
  return [a, b](std::span<const double> x, std::span<double> g) {
    double value = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      double ax = 0.0;
      for (std::size_t j = 0; j < x.size(); ++j) ax += a[i][j] * x[j];
      g[i] = ax - b[i];
      value += 0.5 * x[i] * ax - b[i] * x[i];
    }
    return value;
  };
}

TEST(Lbfgs, SolvesDiagonalQuadratic) {
  const std::vector<Vector> a{{2.0, 0.0}, {0.0, 8.0}};
  const Vector b{2.0, 8.0};  // minimizer (1, 1)
  const auto result = minimize_lbfgs(quadratic(a, b), Vector{0.0, 0.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 1.0, 1e-5);
  EXPECT_NEAR(result.x[1], 1.0, 1e-5);
}

TEST(Lbfgs, SolvesIllConditionedQuadratic) {
  const std::vector<Vector> a{{100.0, 0.0}, {0.0, 0.01}};
  const Vector b{100.0, 0.01};  // minimizer (1, 1)
  LbfgsOptions options;
  options.max_iterations = 2000;
  options.tolerance = 1e-9;
  const auto result =
      minimize_lbfgs(quadratic(a, b), Vector{-3.0, 7.0}, options);
  EXPECT_NEAR(result.x[0], 1.0, 1e-4);
  EXPECT_NEAR(result.x[1], 1.0, 1e-3);
}

TEST(Lbfgs, MinimizesRosenbrock) {
  const ObjectiveFn rosenbrock = [](std::span<const double> x,
                                    std::span<double> g) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    g[0] = -2.0 * a - 400.0 * x[0] * b;
    g[1] = 200.0 * b;
    return a * a + 100.0 * b * b;
  };
  LbfgsOptions options;
  options.max_iterations = 5000;
  options.tolerance = 1e-8;
  const auto result =
      minimize_lbfgs(rosenbrock, Vector{-1.2, 1.0}, options);
  EXPECT_NEAR(result.x[0], 1.0, 1e-3);
  EXPECT_NEAR(result.x[1], 1.0, 1e-3);
  EXPECT_LT(result.objective, 1e-6);
}

TEST(Lbfgs, LogisticRegressionSeparable) {
  // Smooth logistic loss on two separated points plus L2: the solver must
  // find a direction classifying both.
  const ObjectiveFn f = [](std::span<const double> x, std::span<double> g) {
    const double pts[2][2] = {{2.0, 1.0}, {-2.0, -1.0}};
    const int labels[2] = {1, -1};
    double value = 0.5 * (x[0] * x[0] + x[1] * x[1]);
    g[0] = x[0];
    g[1] = x[1];
    for (int i = 0; i < 2; ++i) {
      const double m =
          labels[i] * (x[0] * pts[i][0] + x[1] * pts[i][1]);
      value += std::log1p(std::exp(-m));
      const double c = -labels[i] / (1.0 + std::exp(m));
      g[0] += c * pts[i][0];
      g[1] += c * pts[i][1];
    }
    return value;
  };
  const auto result = minimize_lbfgs(f, Vector{0.0, 0.0});
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.x[0] * 2.0 + result.x[1], 0.0);  // classifies +1 point
}

TEST(Lbfgs, InvalidInputsThrow) {
  const ObjectiveFn f = [](std::span<const double> x, std::span<double> g) {
    g[0] = 2.0 * x[0];
    return x[0] * x[0];
  };
  EXPECT_THROW(minimize_lbfgs(f, Vector{}), PreconditionError);
  LbfgsOptions options;
  options.history = 0;
  EXPECT_THROW(minimize_lbfgs(f, Vector{1.0}, options), PreconditionError);
}

TEST(GradientCheck, FlagsWrongGradient) {
  const ObjectiveFn good = [](std::span<const double> x, std::span<double> g) {
    g[0] = 2.0 * x[0];
    return x[0] * x[0];
  };
  const ObjectiveFn bad = [](std::span<const double> x, std::span<double> g) {
    g[0] = 3.0 * x[0];  // wrong
    return x[0] * x[0];
  };
  const Vector at{1.5};
  EXPECT_LT(gradient_check(good, at), 1e-6);
  EXPECT_GT(gradient_check(bad, at), 1.0);
}

// Property: random SPD quadratics are solved to their analytic minimizer.
class LbfgsQuadraticProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LbfgsQuadraticProperty, MatchesAnalyticMinimizer) {
  rng::Engine engine(GetParam() * 97 + 13);
  const std::size_t n = 2 + static_cast<std::size_t>(engine.uniform_int(0, 6));
  std::vector<Vector> a(n, Vector(n, 0.0));
  // SPD matrix B B^T + I.
  std::vector<Vector> basis(n);
  for (auto& row : basis) row = engine.gaussian_vector(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a[i][j] = linalg::dot(basis[i], basis[j]) + (i == j ? 1.0 : 0.0);
    }
  }
  const Vector x_true = engine.gaussian_vector(n);
  Vector b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) b[i] = linalg::dot(a[i], x_true);

  LbfgsOptions options;
  options.max_iterations = 1000;
  options.tolerance = 1e-9;
  const auto result =
      minimize_lbfgs(quadratic(a, b), Vector(n, 0.0), options);
  EXPECT_TRUE(linalg::approx_equal(result.x, x_true, 1e-4));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LbfgsQuadraticProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace plos::opt
