// Tests for the dual-coordinate-descent linear SVM.
#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"
#include "rng/engine.hpp"
#include "svm/linear_svm.hpp"

namespace plos::svm {
namespace {

using linalg::Vector;

std::pair<std::vector<Vector>, std::vector<int>> separable_blobs(
    rng::Engine& engine, std::size_t per_class, double gap) {
  std::vector<Vector> xs;
  std::vector<int> ys;
  for (std::size_t i = 0; i < per_class; ++i) {
    xs.push_back({gap + engine.gaussian(0.0, 0.5),
                  gap + engine.gaussian(0.0, 0.5), 1.0});
    ys.push_back(1);
    xs.push_back({-gap + engine.gaussian(0.0, 0.5),
                  -gap + engine.gaussian(0.0, 0.5), 1.0});
    ys.push_back(-1);
  }
  return {xs, ys};
}

TEST(LinearSvm, EmptyInputGivesEmptyModel) {
  const auto model = train_linear_svm({}, {});
  EXPECT_TRUE(model.weights.empty());
}

TEST(LinearSvm, RejectsBadLabels) {
  EXPECT_THROW(train_linear_svm({{1.0}}, std::vector<int>{0}),
               PreconditionError);
}

TEST(LinearSvm, RejectsSizeMismatch) {
  EXPECT_THROW(train_linear_svm({{1.0}}, std::vector<int>{1, -1}),
               PreconditionError);
}

TEST(LinearSvm, RejectsNonPositiveC) {
  LinearSvmOptions options;
  options.c = 0.0;
  EXPECT_THROW(train_linear_svm({{1.0}}, std::vector<int>{1}, options),
               PreconditionError);
}

TEST(LinearSvm, SeparatesBlobs) {
  rng::Engine engine(3);
  const auto [xs, ys] = separable_blobs(engine, 50, 3.0);
  const auto model = train_linear_svm(xs, ys);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(model.predict(xs[i]), ys[i]);
  }
}

TEST(LinearSvm, TrivialOnePointProblem) {
  // Single positive point x = (2): optimum w = 1/2 (margin exactly 1) when
  // C >= 1/4: min 1/2 w^2 + C max(0, 1 - 2w) -> w* = 1/2.
  const auto model =
      train_linear_svm({{2.0}}, std::vector<int>{1});
  EXPECT_NEAR(model.weights[0], 0.5, 1e-4);
}

TEST(LinearSvm, SmallCProducesSmallerWeights) {
  rng::Engine engine(5);
  const auto [xs, ys] = separable_blobs(engine, 30, 2.0);
  LinearSvmOptions weak;
  weak.c = 1e-4;
  LinearSvmOptions strong;
  strong.c = 10.0;
  const double weak_norm =
      linalg::norm(train_linear_svm(xs, ys, weak).weights);
  const double strong_norm =
      linalg::norm(train_linear_svm(xs, ys, strong).weights);
  EXPECT_LT(weak_norm, strong_norm);
}

TEST(LinearSvm, DecisionValueMatchesDot) {
  LinearSvmModel model;
  model.weights = {1.0, -2.0};
  EXPECT_DOUBLE_EQ(model.decision_value(Vector{3.0, 1.0}), 1.0);
  EXPECT_EQ(model.predict(Vector{3.0, 1.0}), 1);
  EXPECT_EQ(model.predict(Vector{0.0, 1.0}), -1);
}

// Property: the DCD solution's primal objective is no worse than random
// perturbations of it (local optimality in the convex primal ⇒ global).
class SvmOptimalityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SvmOptimalityProperty, PrimalObjectiveLocallyOptimal) {
  rng::Engine engine(GetParam() * 131 + 17);
  const std::size_t per_class =
      10 + static_cast<std::size_t>(engine.uniform_int(0, 30));
  const double gap = engine.uniform(0.3, 2.5);  // possibly non-separable
  const auto [xs, ys] = separable_blobs(engine, per_class, gap);

  LinearSvmOptions options;
  options.c = engine.uniform(0.05, 5.0);
  options.tolerance = 1e-8;
  options.max_epochs = 3000;
  const auto model = train_linear_svm(xs, ys, options);
  const double best = svm_primal_objective(model, xs, ys, options.c);

  for (int probe = 0; probe < 100; ++probe) {
    LinearSvmModel perturbed = model;
    for (auto& w : perturbed.weights) w += engine.gaussian(0.0, 0.05);
    EXPECT_GE(svm_primal_objective(perturbed, xs, ys, options.c),
              best - 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SvmOptimalityProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(LinearSvm, DeterministicGivenSeed) {
  rng::Engine engine(9);
  const auto [xs, ys] = separable_blobs(engine, 20, 1.0);
  const auto a = train_linear_svm(xs, ys);
  const auto b = train_linear_svm(xs, ys);
  EXPECT_TRUE(linalg::approx_equal(a.weights, b.weights, 0.0));
}

}  // namespace
}  // namespace plos::svm
