// Tests for model serialization and on-disk persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/model_io.hpp"
#include "net/serialize.hpp"
#include "rng/engine.hpp"

namespace plos::core {
namespace {

PersonalizedModel random_model(std::size_t users, std::size_t dim,
                               std::uint64_t seed) {
  rng::Engine engine(seed);
  PersonalizedModel model;
  model.global_weights = engine.gaussian_vector(dim);
  for (std::size_t t = 0; t < users; ++t) {
    model.user_deviations.push_back(engine.gaussian_vector(dim));
  }
  return model;
}

void expect_models_equal(const PersonalizedModel& a,
                         const PersonalizedModel& b) {
  ASSERT_EQ(a.num_users(), b.num_users());
  EXPECT_TRUE(linalg::approx_equal(a.global_weights, b.global_weights, 0.0));
  for (std::size_t t = 0; t < a.num_users(); ++t) {
    EXPECT_TRUE(
        linalg::approx_equal(a.user_deviations[t], b.user_deviations[t], 0.0));
  }
}

TEST(ModelIo, RoundTripBytes) {
  const auto model = random_model(5, 17, 1);
  const auto bytes = serialize_model(model);
  const auto parsed = deserialize_model(bytes);
  ASSERT_TRUE(parsed.has_value());
  expect_models_equal(model, *parsed);
}

TEST(ModelIo, RoundTripEmptyModel) {
  PersonalizedModel model;  // zero users, zero dim
  const auto parsed = deserialize_model(serialize_model(model));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->num_users(), 0u);
  EXPECT_EQ(parsed->dim(), 0u);
}

TEST(ModelIo, RejectsBadMagic) {
  auto bytes = serialize_model(random_model(2, 3, 2));
  bytes[0] ^= 0xff;
  EXPECT_FALSE(deserialize_model(bytes).has_value());
}

TEST(ModelIo, RejectsTruncation) {
  const auto bytes = serialize_model(random_model(2, 3, 3));
  for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2, std::size_t{5}}) {
    EXPECT_FALSE(
        deserialize_model(std::span(bytes.data(), cut)).has_value())
        << "cut at " << cut;
  }
}

TEST(ModelIo, RejectsTrailingGarbage) {
  auto bytes = serialize_model(random_model(1, 2, 4));
  bytes.push_back(0);
  EXPECT_FALSE(deserialize_model(bytes).has_value());
}

TEST(ModelIo, RejectsInconsistentDimensions) {
  // Hand-build a buffer whose deviation length mismatches w0.
  net::Serializer s;
  s.write_u32(0x504c4f53);
  s.write_u32(1);
  s.write_u64(1);
  s.write_vector(std::vector<double>{1.0, 2.0});
  s.write_vector(std::vector<double>{3.0});  // wrong length
  EXPECT_FALSE(deserialize_model(s.buffer()).has_value());
}

TEST(ModelIo, SaveLoadFile) {
  const auto path =
      (std::filesystem::temp_directory_path() / "plos_model_io_test.bin")
          .string();
  const auto model = random_model(4, 9, 5);
  ASSERT_TRUE(save_model(model, path));
  const auto loaded = load_model(path);
  ASSERT_TRUE(loaded.has_value());
  expect_models_equal(model, *loaded);
  std::remove(path.c_str());
}

TEST(ModelIo, LoadMissingFileFails) {
  EXPECT_FALSE(load_model("/nonexistent/dir/model.bin").has_value());
}

}  // namespace
}  // namespace plos::core
