// Tests for the QP solver library: projections, capped-simplex QP (the PLOS
// dual shape), and box QP, validated against brute-force grid search and
// KKT conditions.
#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"
#include "qp/box_qp.hpp"
#include "qp/capped_simplex_qp.hpp"
#include "qp/projection.hpp"
#include "rng/engine.hpp"

namespace plos::qp {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(Projection, CappedSimplexAlreadyFeasible) {
  Vector x{0.2, 0.3};
  project_capped_simplex(x, 1.0);
  EXPECT_DOUBLE_EQ(x[0], 0.2);
  EXPECT_DOUBLE_EQ(x[1], 0.3);
}

TEST(Projection, CappedSimplexClipsNegatives) {
  Vector x{-0.5, 0.4};
  project_capped_simplex(x, 1.0);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.4);
}

TEST(Projection, CappedSimplexProjectsOntoFace) {
  Vector x{2.0, 2.0};
  project_capped_simplex(x, 1.0);
  EXPECT_NEAR(x[0], 0.5, 1e-12);
  EXPECT_NEAR(x[1], 0.5, 1e-12);
}

TEST(Projection, CappedSimplexZeroCap) {
  Vector x{1.0, 2.0, 3.0};
  project_capped_simplex(x, 0.0);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Projection, CappedSimplexRejectsNegativeCap) {
  Vector x{1.0};
  EXPECT_THROW(project_capped_simplex(x, -1.0), PreconditionError);
}

TEST(Projection, BoxClamps) {
  Vector x{-2.0, 0.5, 7.0};
  project_box(x, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.5);
  EXPECT_DOUBLE_EQ(x[2], 1.0);
}

// Property: the projection is the closest feasible point — no random
// feasible probe may be closer.
class CappedSimplexProjectionProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CappedSimplexProjectionProperty, IsClosestFeasiblePoint) {
  rng::Engine engine(GetParam());
  const std::size_t n = 1 + static_cast<std::size_t>(engine.uniform_int(0, 7));
  const double cap = engine.uniform(0.0, 2.0);
  const Vector original = engine.gaussian_vector(n, 0.0, 2.0);

  Vector projected = original;
  project_capped_simplex(projected, cap);

  // Feasibility.
  double sum = 0.0;
  for (double v : projected) {
    EXPECT_GE(v, -1e-12);
    sum += v;
  }
  EXPECT_LE(sum, cap + 1e-9);

  const double base = linalg::squared_distance(projected, original);
  for (int probe = 0; probe < 200; ++probe) {
    Vector candidate = engine.gaussian_vector(n, 0.0, 2.0);
    project_capped_simplex(candidate, cap);  // any feasible point
    EXPECT_GE(linalg::squared_distance(candidate, original), base - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CappedSimplexProjectionProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

CappedSimplexQpProblem tiny_problem() {
  // min 1/2 x^T H x - c^T x over {x >= 0, x0 + x1 <= 1}, H = I, c = (2, 1).
  // Unconstrained optimum (2,1) is infeasible; the constrained optimum lies
  // on the face x0 + x1 = 1: minimize along it -> x = (1, 0).
  CappedSimplexQpProblem p;
  p.hessian = Matrix::identity(2);
  p.linear = {2.0, 1.0};
  p.groups = {{0, 1}};
  p.caps = {1.0};
  return p;
}

TEST(CappedSimplexQp, SolvesTinyKnownProblem) {
  const auto result = solve_capped_simplex_qp(tiny_problem());
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.solution[0], 1.0, 1e-6);
  EXPECT_NEAR(result.solution[1], 0.0, 1e-6);
}

TEST(CappedSimplexQp, InteriorOptimum) {
  CappedSimplexQpProblem p;
  p.hessian = Matrix::identity(2);
  p.linear = {0.25, 0.25};
  p.groups = {{0, 1}};
  p.caps = {1.0};
  const auto result = solve_capped_simplex_qp(p);
  EXPECT_NEAR(result.solution[0], 0.25, 1e-6);
  EXPECT_NEAR(result.solution[1], 0.25, 1e-6);
}

TEST(CappedSimplexQp, EmptyProblem) {
  CappedSimplexQpProblem p;
  const auto result = solve_capped_simplex_qp(p);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.solution.empty());
}

TEST(CappedSimplexQp, ValidatesGroupPartition) {
  CappedSimplexQpProblem p = tiny_problem();
  p.groups = {{0}};  // does not cover index 1
  EXPECT_THROW(solve_capped_simplex_qp(p), PreconditionError);
  p.groups = {{0, 1}, {1}};  // overlap
  p.caps = {1.0, 1.0};
  EXPECT_THROW(solve_capped_simplex_qp(p), PreconditionError);
}

TEST(CappedSimplexQp, WarmStartMatchesColdSolution) {
  const auto cold = solve_capped_simplex_qp(tiny_problem());
  QpOptions options;
  options.warm_start = {0.3, 0.3};
  const auto warm = solve_capped_simplex_qp(tiny_problem(), options);
  EXPECT_NEAR(warm.solution[0], cold.solution[0], 1e-6);
  EXPECT_NEAR(warm.solution[1], cold.solution[1], 1e-6);
}

TEST(CappedSimplexQp, KktResidualSmallAtSolution) {
  const auto result = solve_capped_simplex_qp(tiny_problem());
  EXPECT_LT(kkt_residual(tiny_problem(), result.solution), 1e-5);
  // And clearly non-small away from it.
  EXPECT_GT(kkt_residual(tiny_problem(), Vector{0.0, 0.0}), 0.1);
}

// Property: on random PSD problems with random group structure the solver's
// objective beats (or matches) every random feasible probe, and KKT holds.
class CappedSimplexQpProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static CappedSimplexQpProblem random_problem(rng::Engine& engine) {
    const std::size_t n =
        2 + static_cast<std::size_t>(engine.uniform_int(0, 6));
    Matrix b(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b(i, j) = engine.gaussian();
    }
    CappedSimplexQpProblem p;
    p.hessian = b.matmul(b.transposed());
    for (std::size_t i = 0; i < n; ++i) p.hessian(i, i) += 0.1;
    p.linear = engine.gaussian_vector(n);
    // Random partition into 1-3 groups.
    const std::size_t num_groups =
        1 + static_cast<std::size_t>(engine.uniform_int(0, 2));
    p.groups.assign(num_groups, {});
    for (std::size_t i = 0; i < n; ++i) {
      p.groups[static_cast<std::size_t>(engine.uniform_int(
                   0, static_cast<std::int64_t>(num_groups) - 1))]
          .push_back(i);
    }
    // Drop empty groups (must not reference zero indices).
    std::vector<std::vector<std::size_t>> groups;
    for (auto& g : p.groups) {
      if (!g.empty()) groups.push_back(std::move(g));
    }
    // Every index must be covered; rebuild caps for surviving groups.
    p.groups = std::move(groups);
    p.caps.assign(p.groups.size(), 0.0);
    for (auto& c : p.caps) c = engine.uniform(0.1, 2.0);
    return p;
  }
};

TEST_P(CappedSimplexQpProperty, BeatsRandomFeasibleProbesAndSatisfiesKkt) {
  rng::Engine engine(GetParam() * 977 + 3);
  const auto p = random_problem(engine);
  const auto result = solve_capped_simplex_qp(p);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(kkt_residual(p, result.solution), 1e-4);

  const auto objective = [&](const Vector& x) {
    return 0.5 * linalg::dot(x, p.hessian.matvec(x)) -
           linalg::dot(p.linear, x);
  };
  for (int probe = 0; probe < 300; ++probe) {
    Vector x = engine.gaussian_vector(p.linear.size(), 0.0, 1.0);
    for (std::size_t g = 0; g < p.groups.size(); ++g) {
      Vector block(p.groups[g].size());
      for (std::size_t k = 0; k < block.size(); ++k) {
        block[k] = x[p.groups[g][k]];
      }
      project_capped_simplex(block, p.caps[g]);
      for (std::size_t k = 0; k < block.size(); ++k) {
        x[p.groups[g][k]] = block[k];
      }
    }
    EXPECT_GE(objective(x), result.objective - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CappedSimplexQpProperty,
                         ::testing::Range<std::uint64_t>(0, 15));

TEST(BoxQp, UnconstrainedInteriorSolution) {
  BoxQpProblem p;
  p.hessian = Matrix::identity(2);
  p.linear = {0.25, 0.5};
  p.lo = 0.0;
  p.hi = 1.0;
  const auto result = solve_box_qp(p);
  EXPECT_NEAR(result.solution[0], 0.25, 1e-6);
  EXPECT_NEAR(result.solution[1], 0.5, 1e-6);
}

TEST(BoxQp, ClampsAtBounds) {
  BoxQpProblem p;
  p.hessian = Matrix::identity(2);
  p.linear = {5.0, -3.0};
  p.lo = 0.0;
  p.hi = 1.0;
  const auto result = solve_box_qp(p);
  EXPECT_NEAR(result.solution[0], 1.0, 1e-6);
  EXPECT_NEAR(result.solution[1], 0.0, 1e-6);
}

TEST(BoxQp, RejectsInvertedBounds) {
  BoxQpProblem p;
  p.hessian = Matrix::identity(1);
  p.linear = {0.0};
  p.lo = 1.0;
  p.hi = 0.0;
  EXPECT_THROW(solve_box_qp(p), PreconditionError);
}

class BoxQpProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoxQpProperty, BeatsRandomFeasibleProbes) {
  rng::Engine engine(GetParam() * 31 + 7);
  const std::size_t n = 2 + static_cast<std::size_t>(engine.uniform_int(0, 5));
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = engine.gaussian();
  }
  BoxQpProblem p;
  p.hessian = b.matmul(b.transposed());
  for (std::size_t i = 0; i < n; ++i) p.hessian(i, i) += 0.1;
  p.linear = engine.gaussian_vector(n);
  p.lo = 0.0;
  p.hi = engine.uniform(0.5, 2.0);

  const auto result = solve_box_qp(p);
  EXPECT_TRUE(result.converged);
  const auto objective = [&](const Vector& x) {
    return 0.5 * linalg::dot(x, p.hessian.matvec(x)) -
           linalg::dot(p.linear, x);
  };
  for (int probe = 0; probe < 300; ++probe) {
    Vector x(n);
    for (auto& v : x) v = engine.uniform(p.lo, p.hi);
    EXPECT_GE(objective(x), result.objective - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoxQpProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace plos::qp
