// Tests for the All / Single / Group baselines.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <set>

#include "common/assert.hpp"
#include "core/baselines.hpp"
#include "core/evaluation.hpp"
#include "data/labeling.hpp"
#include "data/synthetic.hpp"
#include "rng/engine.hpp"

namespace plos::core {
namespace {

data::MultiUserDataset make_population(std::size_t num_users,
                                       double max_rotation,
                                       std::size_t num_providers,
                                       double training_rate,
                                       std::uint64_t seed,
                                       std::size_t points_per_class = 40) {
  data::SyntheticSpec spec;
  spec.num_users = num_users;
  spec.points_per_class = points_per_class;
  spec.max_rotation = max_rotation;
  rng::Engine engine(seed);
  auto dataset = data::generate_synthetic(spec, engine);
  std::vector<std::size_t> providers(num_providers);
  for (std::size_t i = 0; i < num_providers; ++i) providers[i] = i;
  data::reveal_labels(dataset, providers, training_rate, engine);
  return dataset;
}

TEST(AllBaseline, GoodWhenUsersIdentical) {
  auto dataset = make_population(4, 0.0, 2, 0.4, 1);
  const auto report = evaluate(dataset, run_all_baseline(dataset));
  EXPECT_GT(report.providers, 0.82);
  EXPECT_GT(report.non_providers, 0.82);
}

TEST(AllBaseline, DegradesUnderRotation) {
  auto aligned = make_population(6, 0.0, 6, 0.4, 2);
  auto rotated = make_population(6, std::numbers::pi, 6, 0.4, 2);
  const double acc_aligned =
      evaluate(aligned, run_all_baseline(aligned)).overall;
  const double acc_rotated =
      evaluate(rotated, run_all_baseline(rotated)).overall;
  EXPECT_GT(acc_aligned, acc_rotated + 0.15);
}

TEST(AllBaseline, PredictionShape) {
  auto dataset = make_population(3, 0.0, 1, 0.4, 3, 10);
  const auto predictions = run_all_baseline(dataset);
  ASSERT_EQ(predictions.size(), 3u);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(predictions[t].labels.size(), dataset.users[t].num_samples());
    EXPECT_FALSE(predictions[t].match_clusters);
  }
}

TEST(SingleBaseline, LabeledUsersLearnOwnModel) {
  // With generous labels and rotations, Single still fits each provider.
  auto dataset = make_population(4, std::numbers::pi, 4, 0.6, 4);
  const auto report = evaluate(dataset, run_single_baseline(dataset));
  EXPECT_GT(report.providers, 0.8);
}

TEST(SingleBaseline, UnlabeledUsersUseClustering) {
  // Spherical well-separated blobs (the paper's anti-correlated covariance
  // is deliberately elongated along the within-class axis, where plain
  // k-means legitimately splits the wrong way).
  data::SyntheticSpec spec;
  spec.num_users = 3;
  spec.points_per_class = 40;
  spec.variance = 25.0;
  spec.covariance = 0.0;
  rng::Engine engine(5);
  auto dataset = data::generate_synthetic(spec, engine);
  data::reveal_labels(dataset, {0}, 0.5, engine);

  const auto predictions = run_single_baseline(dataset);
  EXPECT_FALSE(predictions[0].match_clusters);  // provider: classifier
  EXPECT_TRUE(predictions[1].match_clusters);   // no labels: clusters
  EXPECT_TRUE(predictions[2].match_clusters);
  const auto report = evaluate(dataset, predictions);
  EXPECT_GT(report.non_providers, 0.82);
}

TEST(SingleBaseline, UnaffectedByOtherUsersLabels) {
  // Single never uses peers: removing user 2's labels must not change
  // user 0's prediction.
  auto dataset = make_population(3, 0.3, 3, 0.5, 6);
  const auto before = run_single_baseline(dataset);
  data::MultiUserDataset modified = dataset;
  std::fill(modified.users[2].revealed.begin(),
            modified.users[2].revealed.end(), false);
  const auto after = run_single_baseline(modified);
  EXPECT_EQ(before[0].labels, after[0].labels);
}

TEST(GroupBaseline, GroupsSimilarUsersTogether) {
  // Three pairs of users at rotations {0, pi/3, 2pi/3}: LSH histograms +
  // spectral clustering should group the pairs. (Angles are distinct mod
  // pi: the unlabeled class union is symmetric under a pi rotation, so a
  // {0, pi} pair would be indistinguishable without labels.)
  data::SyntheticSpec spec;
  spec.num_users = 6;
  spec.points_per_class = 200;
  spec.max_rotation = 0.0;
  rng::Engine engine(7);
  data::MultiUserDataset dataset;
  dataset.users.resize(6);
  const double angles[6] = {0.0, 0.0,
                            std::numbers::pi / 3.0, std::numbers::pi / 3.0,
                            2.0 * std::numbers::pi / 3.0,
                            2.0 * std::numbers::pi / 3.0};
  for (int t = 0; t < 6; ++t) {
    data::SyntheticSpec one = spec;
    one.num_users = 1;
    rng::Engine user_engine = engine.fork(static_cast<std::uint64_t>(t));
    auto d = data::generate_synthetic(one, user_engine);
    for (auto& x : d.users[0].samples) {
      // Rotate the 2-D part, keep the bias coordinate.
      const linalg::Vector rotated =
          data::rotate2d({x[0], x[1]}, angles[t]);
      x[0] = rotated[0];
      x[1] = rotated[1];
    }
    dataset.users[t] = std::move(d.users[0]);
  }

  GroupBaselineOptions options;
  const auto assignment = group_users(dataset, options);
  EXPECT_EQ(assignment[0], assignment[1]);
  EXPECT_EQ(assignment[2], assignment[3]);
  EXPECT_EQ(assignment[4], assignment[5]);
  const std::set<std::size_t> distinct(assignment.begin(), assignment.end());
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(GroupBaseline, BetweenAllAndSingleOnRotatedUsers) {
  // Group exploits labels within a group but not across groups; with large
  // rotations it should beat All on providers.
  auto dataset = make_population(6, std::numbers::pi, 6, 0.5, 8, 60);
  const auto group_report = evaluate(dataset, run_group_baseline(dataset));
  const auto all_report = evaluate(dataset, run_all_baseline(dataset));
  EXPECT_GT(group_report.providers, all_report.providers);
}

TEST(GroupBaseline, LabelFreeGroupFallsBackToClustering) {
  // No labels anywhere: every user must get cluster predictions.
  auto dataset = make_population(4, 0.0, 0, 0.0, 9, 20);
  const auto predictions = run_group_baseline(dataset);
  for (const auto& p : predictions) {
    EXPECT_TRUE(p.match_clusters);
    EXPECT_FALSE(p.labels.empty());
  }
}

TEST(GroupBaseline, PredictionShapeAndDeterminism) {
  auto dataset = make_population(5, 0.4, 2, 0.3, 10, 20);
  const auto a = run_group_baseline(dataset);
  const auto b = run_group_baseline(dataset);
  ASSERT_EQ(a.size(), 5u);
  for (std::size_t t = 0; t < 5; ++t) {
    EXPECT_EQ(a[t].labels.size(), dataset.users[t].num_samples());
    EXPECT_EQ(a[t].labels, b[t].labels);
  }
}

TEST(GroupBaseline, MoreGroupsThanUsersClamped) {
  auto dataset = make_population(2, 0.0, 1, 0.4, 11, 10);
  GroupBaselineOptions options;
  options.num_groups = 10;
  const auto predictions = run_group_baseline(dataset, options);
  EXPECT_EQ(predictions.size(), 2u);
}

}  // namespace
}  // namespace plos::core
