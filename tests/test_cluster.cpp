// Tests for the clustering substrate: k-means, Hungarian matching, LSH
// histograms, spectral clustering.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "cluster/hungarian.hpp"
#include "cluster/kmeans.hpp"
#include "cluster/lsh.hpp"
#include "cluster/spectral.hpp"
#include "common/assert.hpp"
#include "rng/engine.hpp"

namespace plos::cluster {
namespace {

using linalg::Matrix;
using linalg::Vector;

std::vector<Vector> blob(rng::Engine& engine, const Vector& center,
                         std::size_t count, double spread) {
  std::vector<Vector> out;
  for (std::size_t i = 0; i < count; ++i) {
    Vector x = center;
    for (auto& v : x) v += engine.gaussian(0.0, spread);
    out.push_back(std::move(x));
  }
  return out;
}

TEST(KMeans, RecoversTwoBlobs) {
  rng::Engine engine(1);
  auto points = blob(engine, {5.0, 5.0}, 40, 0.5);
  const auto negatives = blob(engine, {-5.0, -5.0}, 40, 0.5);
  points.insert(points.end(), negatives.begin(), negatives.end());

  const auto result = kmeans(points, 2, engine);
  // First 40 together, last 40 together, different clusters.
  for (std::size_t i = 1; i < 40; ++i) {
    EXPECT_EQ(result.assignments[i], result.assignments[0]);
    EXPECT_EQ(result.assignments[40 + i], result.assignments[40]);
  }
  EXPECT_NE(result.assignments[0], result.assignments[40]);
}

TEST(KMeans, SingleClusterCentroidIsMean) {
  rng::Engine engine(2);
  const std::vector<Vector> points{{1.0, 1.0}, {3.0, 5.0}, {5.0, 3.0}};
  const auto result = kmeans(points, 1, engine);
  EXPECT_NEAR(result.centroids[0][0], 3.0, 1e-9);
  EXPECT_NEAR(result.centroids[0][1], 3.0, 1e-9);
}

TEST(KMeans, KEqualsNGivesZeroInertia) {
  rng::Engine engine(3);
  const std::vector<Vector> points{{0.0}, {1.0}, {5.0}};
  const auto result = kmeans(points, 3, engine);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeans, InvalidArgumentsThrow) {
  rng::Engine engine(4);
  EXPECT_THROW(kmeans({}, 1, engine), PreconditionError);
  EXPECT_THROW(kmeans({{1.0}}, 2, engine), PreconditionError);
  EXPECT_THROW(kmeans({{1.0}, {2.0, 3.0}}, 1, engine), PreconditionError);
}

TEST(KMeans, HandlesDuplicatePoints) {
  rng::Engine engine(5);
  const std::vector<Vector> points(10, Vector{1.0, 1.0});
  const auto result = kmeans(points, 2, engine);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(Hungarian, IdentityAssignment) {
  const auto cost = Matrix::from_rows({{0.0, 5.0}, {5.0, 0.0}});
  const auto result = solve_assignment(cost);
  EXPECT_EQ(result.assignment, (std::vector<std::size_t>{0, 1}));
  EXPECT_DOUBLE_EQ(result.total_cost, 0.0);
}

TEST(Hungarian, CrossAssignment) {
  const auto cost = Matrix::from_rows({{5.0, 0.0}, {0.0, 5.0}});
  const auto result = solve_assignment(cost);
  EXPECT_EQ(result.assignment, (std::vector<std::size_t>{1, 0}));
  EXPECT_DOUBLE_EQ(result.total_cost, 0.0);
}

TEST(Hungarian, Known3x3) {
  // Classic example; optimal cost is 5 (0->1, 1->0, 2->2 for cost 2+1+2).
  const auto cost =
      Matrix::from_rows({{4.0, 2.0, 8.0}, {1.0, 3.0, 7.0}, {6.0, 5.0, 2.0}});
  const auto result = solve_assignment(cost);
  EXPECT_DOUBLE_EQ(result.total_cost, 5.0);
}

TEST(Hungarian, NegativeCosts) {
  const auto cost = Matrix::from_rows({{-1.0, 0.0}, {0.0, -1.0}});
  const auto result = solve_assignment(cost);
  EXPECT_DOUBLE_EQ(result.total_cost, -2.0);
}

// Property: Hungarian beats brute-force-checked random permutations.
class HungarianProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HungarianProperty, BeatsRandomPermutations) {
  rng::Engine engine(GetParam() * 53 + 11);
  const std::size_t n = 2 + static_cast<std::size_t>(engine.uniform_int(0, 5));
  Matrix cost(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) cost(i, j) = engine.gaussian(0.0, 3.0);
  }
  const auto result = solve_assignment(cost);
  // Permutation validity.
  const std::set<std::size_t> unique(result.assignment.begin(),
                                     result.assignment.end());
  EXPECT_EQ(unique.size(), n);

  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (int probe = 0; probe < 500; ++probe) {
    engine.shuffle(perm);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) total += cost(i, perm[i]);
    EXPECT_GE(total, result.total_cost - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HungarianProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(BestAssignmentAccuracy, PerfectWithFlippedIds) {
  const std::vector<std::size_t> predicted{1, 1, 0, 0};
  const std::vector<std::size_t> truth{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(best_assignment_accuracy(predicted, truth, 2), 1.0);
}

TEST(BestAssignmentAccuracy, PartialAgreement) {
  const std::vector<std::size_t> predicted{0, 0, 0, 1};
  const std::vector<std::size_t> truth{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(best_assignment_accuracy(predicted, truth, 2), 0.75);
}

TEST(BestAssignmentAccuracy, AtLeastHalfForBinary) {
  // With two classes, the best of {identity, swap} is always >= 0.5.
  rng::Engine engine(77);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::size_t> predicted(20), truth(20);
    for (std::size_t i = 0; i < 20; ++i) {
      predicted[i] = static_cast<std::size_t>(engine.uniform_int(0, 1));
      truth[i] = static_cast<std::size_t>(engine.uniform_int(0, 1));
    }
    EXPECT_GE(best_assignment_accuracy(predicted, truth, 2), 0.5);
  }
}

TEST(Lsh, BucketInRangeAndDeterministic) {
  rng::Engine engine(8);
  const RandomHyperplaneHasher hasher(4, 7, engine);
  EXPECT_EQ(hasher.num_buckets(), 128u);
  rng::Engine data_engine(9);
  for (int i = 0; i < 100; ++i) {
    const Vector x = data_engine.gaussian_vector(4);
    const std::size_t b = hasher.bucket(x);
    EXPECT_LT(b, 128u);
    EXPECT_EQ(b, hasher.bucket(x));  // deterministic
  }
}

TEST(Lsh, OppositePointsLandInComplementaryBuckets) {
  rng::Engine engine(10);
  const RandomHyperplaneHasher hasher(3, 5, engine);
  const Vector x{1.0, -2.0, 0.5};
  const Vector neg{-1.0, 2.0, -0.5};
  // Every sign flips (no zero dot products almost surely) -> bitwise
  // complement within 5 bits.
  EXPECT_EQ(hasher.bucket(x) ^ hasher.bucket(neg), 0b11111u);
}

TEST(Lsh, HistogramNormalized) {
  rng::Engine engine(11);
  const RandomHyperplaneHasher hasher(2, 4, engine);
  const auto points = blob(engine, {1.0, 1.0}, 50, 1.0);
  const Vector h = hasher.histogram(points);
  EXPECT_NEAR(linalg::sum(h), 1.0, 1e-12);
  for (double v : h) EXPECT_GE(v, 0.0);
}

TEST(Lsh, EmptyHistogramIsZero) {
  rng::Engine engine(12);
  const RandomHyperplaneHasher hasher(2, 3, engine);
  const Vector h = hasher.histogram({});
  EXPECT_DOUBLE_EQ(linalg::sum(h), 0.0);
}

TEST(Jaccard, IdenticalIsOne) {
  const Vector h{0.5, 0.25, 0.25};
  EXPECT_DOUBLE_EQ(generalized_jaccard(h, h), 1.0);
}

TEST(Jaccard, DisjointIsZero) {
  EXPECT_DOUBLE_EQ(generalized_jaccard(Vector{1.0, 0.0}, Vector{0.0, 1.0}),
                   0.0);
}

TEST(Jaccard, BothEmptyIsOne) {
  EXPECT_DOUBLE_EQ(generalized_jaccard(Vector{0.0}, Vector{0.0}), 1.0);
}

TEST(Jaccard, SymmetricAndBounded) {
  rng::Engine engine(13);
  for (int trial = 0; trial < 50; ++trial) {
    Vector a(8), b(8);
    for (auto& v : a) v = engine.uniform(0.0, 1.0);
    for (auto& v : b) v = engine.uniform(0.0, 1.0);
    const double sab = generalized_jaccard(a, b);
    EXPECT_DOUBLE_EQ(sab, generalized_jaccard(b, a));
    EXPECT_GE(sab, 0.0);
    EXPECT_LE(sab, 1.0);
  }
}

TEST(Jaccard, RejectsNegativeEntries) {
  EXPECT_THROW(generalized_jaccard(Vector{-0.1}, Vector{0.1}),
               PreconditionError);
}

TEST(Spectral, RecoversBlockStructure) {
  // Two obvious communities with strong intra- and weak inter-similarity.
  const std::size_t n = 10;
  Matrix similarity(n, n, 0.05);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if ((i < 5) == (j < 5)) similarity(i, j) = 1.0;
    }
  }
  rng::Engine engine(14);
  const auto assignment = spectral_clustering(similarity, 2, engine);
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_EQ(assignment[i], assignment[0]);
    EXPECT_EQ(assignment[5 + i], assignment[5]);
  }
  EXPECT_NE(assignment[0], assignment[5]);
}

TEST(Spectral, SingleClusterTrivial) {
  rng::Engine engine(15);
  const auto assignment =
      spectral_clustering(Matrix::identity(4), 1, engine);
  for (std::size_t v : assignment) EXPECT_EQ(v, 0u);
}

TEST(Spectral, RejectsNegativeSimilarity) {
  rng::Engine engine(16);
  Matrix s = Matrix::identity(3);
  s(0, 1) = -0.5;
  EXPECT_THROW(spectral_clustering(s, 2, engine), PreconditionError);
}

}  // namespace
}  // namespace plos::cluster
