// Tests for the flight recorder (obs/flight.hpp): bounded ring buffer,
// deterministic event ids, Chrome-trace export with upload -> cut ->
// aggregate flows, and the exact JSON round trip.
#include "obs/flight.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace plos {
namespace {

using obs::AttemptResult;
using obs::FlightEvent;
using obs::FlightEventKind;
using obs::FlightRecorder;

FlightEvent make_event(std::uint64_t round, std::uint32_t device,
                       std::uint32_t attempt, FlightEventKind kind,
                       double t_start, double t_end) {
  FlightEvent event;
  event.round = round;
  event.device = device;
  event.attempt = attempt;
  event.kind = kind;
  event.t_start = t_start;
  event.t_end = t_end;
  return event;
}

TEST(FlightRecorder, IdIsAPureFunctionOfRoundDeviceAttempt) {
  const FlightEvent a =
      make_event(3, 7, 2, FlightEventKind::kUploadAttempt, 0.0, 1.0);
  const FlightEvent b =
      make_event(3, 7, 2, FlightEventKind::kDeadlineMiss, 5.0, 6.0);
  EXPECT_EQ(a.id(), b.id());  // same key, kind/time do not matter
  const FlightEvent c =
      make_event(3, 7, 3, FlightEventKind::kUploadAttempt, 0.0, 1.0);
  EXPECT_NE(a.id(), c.id());
  EXPECT_EQ(a.id(), (3ull << 32) | (7ull << 8) | 2ull);
}

TEST(FlightRecorder, RingBufferBoundsMemoryAndKeepsNewest) {
  FlightRecorder recorder(/*capacity=*/4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    recorder.record(make_event(i, i, 1, FlightEventKind::kUploadAttempt,
                               static_cast<double>(i),
                               static_cast<double>(i) + 0.5));
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.capacity(), 4u);
  EXPECT_EQ(recorder.dropped(), 6u);
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first among the survivors: rounds 6, 7, 8, 9.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].round, 6u + i);
  }
}

TEST(FlightRecorder, ChromeJsonRoundTripsEventsExactly) {
  FlightRecorder recorder;
  recorder.record(
      make_event(0, 2, 1, FlightEventKind::kBootstrap, 0.0, 0.0));
  FlightEvent upload =
      make_event(1, 3, 2, FlightEventKind::kUploadAttempt, 0.125, 0.25);
  upload.cause = static_cast<int>(AttemptResult::kCorrupted);
  recorder.record(upload);
  FlightEvent fold =
      make_event(2, 5, 0, FlightEventKind::kLateFold, 1.0, 2.5);
  fold.staleness = 3;
  fold.cause = 6;  // core::kLateUpload
  recorder.record(fold);
  FlightEvent cut = make_event(2, obs::kFlightServerDevice, 0,
                               FlightEventKind::kQuorumCut, 2.0, 2.75);
  cut.staleness = 9;
  recorder.record(cut);

  const std::string json = recorder.to_chrome_json();
  std::vector<FlightEvent> parsed;
  std::string error;
  ASSERT_TRUE(obs::parse_flight_json(json, parsed, &error)) << error;
  const auto originals = recorder.events();
  ASSERT_EQ(parsed.size(), originals.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].round, originals[i].round);
    EXPECT_EQ(parsed[i].device, originals[i].device);
    EXPECT_EQ(parsed[i].attempt, originals[i].attempt);
    EXPECT_EQ(parsed[i].kind, originals[i].kind);
    EXPECT_EQ(parsed[i].cause, originals[i].cause);
    EXPECT_EQ(parsed[i].staleness, originals[i].staleness);
    // args carry the raw seconds, so the trip is exact, not µs-rounded.
    EXPECT_EQ(parsed[i].t_start, originals[i].t_start);
    EXPECT_EQ(parsed[i].t_end, originals[i].t_end);
  }
}

TEST(FlightRecorder, ChromeJsonIsValidJsonWithMetadata) {
  FlightRecorder recorder;
  recorder.record(
      make_event(0, 1, 1, FlightEventKind::kUploadAttempt, 0.0, 1.0));
  const std::string json = recorder.to_chrome_json();
  std::string error;
  const auto value = obs::json::parse(json, &error);
  ASSERT_TRUE(value.has_value()) << error;
  const auto* events = value->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Process + server thread metadata lead the stream.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"plos flight\""), std::string::npos);
}

TEST(FlightRecorder, DeliveredUploadsGetFlowsToCutAndAggregate) {
  FlightRecorder recorder;
  FlightEvent upload =
      make_event(4, 2, 1, FlightEventKind::kUploadAttempt, 0.5, 1.5);
  upload.cause = static_cast<int>(AttemptResult::kDelivered);
  recorder.record(upload);
  recorder.record(make_event(4, obs::kFlightServerDevice, 0,
                             FlightEventKind::kQuorumCut, 0.0, 2.0));
  recorder.record(make_event(4, obs::kFlightServerDevice, 0,
                             FlightEventKind::kAggregate, 2.0, 2.0));
  const std::string json = recorder.to_chrome_json();
  // One flow triplet (s -> t -> f) sharing the upload's id.
  const std::string id = std::to_string(upload.id());
  EXPECT_NE(json.find("\"ph\":\"s\",\"id\":" + id), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"ph\":\"t\",\"id\":" + id), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\",\"id\":" + id), std::string::npos);
  // Binding point "e" pins the finish phase to the enclosing slice.
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
}

TEST(FlightRecorder, FailedUploadsAndAnchorlessRoundsGetNoFlows) {
  FlightRecorder recorder;
  FlightEvent dropped =
      make_event(1, 2, 1, FlightEventKind::kUploadAttempt, 0.0, 1.0);
  dropped.cause = static_cast<int>(AttemptResult::kDropped);
  recorder.record(dropped);
  recorder.record(make_event(1, obs::kFlightServerDevice, 0,
                             FlightEventKind::kQuorumCut, 0.0, 2.0));
  recorder.record(make_event(1, obs::kFlightServerDevice, 0,
                             FlightEventKind::kAggregate, 2.0, 2.0));
  // Delivered, but its round has no server anchors (ring overwrote them).
  FlightEvent orphan =
      make_event(9, 3, 1, FlightEventKind::kUploadAttempt, 5.0, 6.0);
  orphan.cause = static_cast<int>(AttemptResult::kDelivered);
  recorder.record(orphan);
  const std::string json = recorder.to_chrome_json();
  EXPECT_EQ(json.find("\"ph\":\"s\""), std::string::npos) << json;
}

TEST(FlightRecorder, ParseRejectsMalformedInput) {
  std::vector<FlightEvent> events;
  std::string error;
  EXPECT_FALSE(obs::parse_flight_json("not json", events, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(obs::parse_flight_json("{\"foo\":1}", events, &error));
  EXPECT_FALSE(
      obs::parse_flight_json("{\"traceEvents\":[{\"ph\":\"X\"}]}", events,
                             &error));
}

TEST(FlightRecorder, KindNamesCoverTheVocabulary) {
  EXPECT_EQ(obs::flight_kind_name(FlightEventKind::kBootstrap), "bootstrap");
  EXPECT_EQ(obs::flight_kind_name(FlightEventKind::kUploadAttempt),
            "upload_attempt");
  EXPECT_EQ(obs::flight_kind_name(FlightEventKind::kQuorumCut), "quorum_cut");
  EXPECT_EQ(obs::flight_kind_name(FlightEventKind::kEviction), "eviction");
}

}  // namespace
}  // namespace plos
