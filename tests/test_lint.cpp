// plos_lint engine tests (DESIGN.md §11): scrubber state machine, config
// parsing, each rule kind on hermetic in-memory sources, suppression
// comments, the transitive include-graph privacy rule, the embedded
// self-test fixtures, CLI exit codes, and — the acceptance gate — a scan
// of the real repository tree, which must come back clean.
#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace plos::lint {
namespace {

// Minimal hand-built config exercising one rule per kind. Banned patterns
// live in raw strings so plos_lint never flags its own test corpus.
Config engine_config() {
  Config config;
  config.roots = {"src"};
  config.extensions = {".cpp", ".hpp"};

  Rule rng;
  rng.name = "determinism-rng";
  rng.kind = RuleKind::kBannedPattern;
  rng.message = "nondeterministic RNG";
  rng.patterns = {R"(std::random_device)"};
  rng.paths = {"src/"};
  rng.allow_paths = {"src/rng/"};
  config.rules.push_back(rng);

  Rule float_eq;
  float_eq.name = "numeric-float-eq";
  float_eq.kind = RuleKind::kFloatEq;
  float_eq.message = "exact comparison against nonzero float literal";
  config.rules.push_back(float_eq);

  Rule pragma;
  pragma.name = "hygiene-pragma-once";
  pragma.kind = RuleKind::kPragmaOnce;
  pragma.message = "header missing #pragma once";
  config.rules.push_back(pragma);

  Rule order;
  order.name = "hygiene-include-order";
  order.kind = RuleKind::kIncludeOrder;
  order.message = "include order";
  config.rules.push_back(order);

  Rule using_ns;
  using_ns.name = "hygiene-using-namespace";
  using_ns.kind = RuleKind::kUsingNamespaceHeader;
  using_ns.message = "using namespace in header";
  config.rules.push_back(using_ns);

  Rule privacy;
  privacy.name = "privacy-raw-data";
  privacy.kind = RuleKind::kForbiddenInclude;
  privacy.message = "net layer must not see raw data";
  privacy.forbidden = "data/";
  privacy.transitive = true;
  privacy.paths = {"src/net/"};
  config.rules.push_back(privacy);

  return config;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

// Config exercising only the token-level semantic families (race-surface,
// accumulation-order, layering) with a small in-test layering DAG, so the
// tests below stay hermetic and each finding is attributable to one rule.
Config semantic_config() {
  Config config;
  config.roots = {"src"};
  config.extensions = {".cpp", ".hpp"};

  Rule race;
  race.name = "race-surface";
  race.kind = RuleKind::kRaceSurface;
  race.message = "unsynchronized write in a thread-pool lambda";
  race.paths = {"src/"};
  config.rules.push_back(race);

  Rule acc;
  acc.name = "accumulation-order";
  acc.kind = RuleKind::kAccumulationOrder;
  acc.message = "loop-carried double fold outside linalg::kernels";
  acc.paths = {"src/core/", "src/linalg/", "src/qp/", "src/svm/"};
  acc.allow_paths = {"src/linalg/kernels"};
  config.rules.push_back(acc);

  Rule layering;
  layering.name = "layering";
  layering.kind = RuleKind::kLayering;
  layering.message = "undeclared module dependency";
  config.rules.push_back(layering);

  std::string error;
  const auto layers = parse_layers(R"({"modules": {
    "common": [],
    "linalg": ["common"],
    "parallel": ["common"],
    "qp": ["common", "linalg"],
    "net": ["common"],
    "core": ["common", "linalg", "parallel", "qp"],
    "tests": ["*"]
  }})",
                                   &error);
  EXPECT_TRUE(layers.has_value()) << error;
  config.layers = *layers;
  config.layers_loaded = true;
  return config;
}

// ---- scrubber ------------------------------------------------------------

TEST(Scrubber, BlanksLineCommentsButKeepsNewlines) {
  const std::string scrubbed =
      strip_comments_and_strings("int a;  // std::random_device\nint b;");
  EXPECT_EQ(scrubbed.find("random_device"), std::string::npos);
  EXPECT_NE(scrubbed.find("int a;"), std::string::npos);
  EXPECT_NE(scrubbed.find("\nint b;"), std::string::npos);
}

TEST(Scrubber, BlanksBlockCommentsPreservingLineStructure) {
  const std::string source = "int a; /* rand()\n rand() */ int b;";
  const std::string scrubbed = strip_comments_and_strings(source);
  EXPECT_EQ(scrubbed.find("rand"), std::string::npos);
  EXPECT_EQ(std::count(scrubbed.begin(), scrubbed.end(), '\n'),
            std::count(source.begin(), source.end(), '\n'));
  EXPECT_NE(scrubbed.find("int b;"), std::string::npos);
}

TEST(Scrubber, BlanksStringAndCharLiteralContents) {
  const std::string scrubbed = strip_comments_and_strings(
      "const char* s = \"call rand() now\"; char c = 'r';");
  EXPECT_EQ(scrubbed.find("rand"), std::string::npos);
  // Delimiters stay so the line remains structurally intact.
  EXPECT_NE(scrubbed.find('"'), std::string::npos);
}

TEST(Scrubber, BlanksRawStringsWithCustomDelimiter) {
  const std::string source =
      "auto s = R\"lint(std::random_device inside)lint\"; int after;";
  const std::string scrubbed = strip_comments_and_strings(source);
  EXPECT_EQ(scrubbed.find("random_device"), std::string::npos);
  EXPECT_NE(scrubbed.find("int after;"), std::string::npos);
}

TEST(Scrubber, DigitSeparatorIsNotACharLiteral) {
  // If 1'000'000 opened a char literal, the rand() call would be blanked.
  const std::string scrubbed =
      strip_comments_and_strings("int n = 1'000'000; n = rand();");
  EXPECT_NE(scrubbed.find("rand()"), std::string::npos);
}

TEST(Scrubber, KeepsQuotedIncludeTargetsReadable) {
  const std::string scrubbed = strip_comments_and_strings(
      "#include \"data/dataset.hpp\"\nconst char* s = \"data/other.hpp\";\n");
  EXPECT_NE(scrubbed.find("data/dataset.hpp"), std::string::npos);
  EXPECT_EQ(scrubbed.find("data/other.hpp"), std::string::npos);
}

TEST(Scrubber, EscapedQuoteDoesNotEndString) {
  const std::string scrubbed = strip_comments_and_strings(
      "const char* s = \"a \\\" rand() b\"; int keep;");
  EXPECT_EQ(scrubbed.find("rand"), std::string::npos);
  EXPECT_NE(scrubbed.find("int keep;"), std::string::npos);
}

// ---- config parsing ------------------------------------------------------

TEST(ParseConfig, ParsesRootsExtensionsAndRuleFields) {
  const std::string json = R"({
    "roots": ["src", "tools"],
    "extensions": [".cpp"],
    "rules": [
      {"name": "r1", "kind": "banned-pattern", "message": "m",
       "patterns": ["abc"], "paths": ["src/"], "allow_paths": ["src/x/"]},
      {"name": "r2", "kind": "forbidden-include", "forbidden": "data/",
       "transitive": true, "enabled": false}
    ]
  })";
  const auto config = parse_config(json);
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->roots, (std::vector<std::string>{"src", "tools"}));
  EXPECT_EQ(config->extensions, std::vector<std::string>{".cpp"});
  ASSERT_EQ(config->rules.size(), 2u);
  EXPECT_EQ(config->rules[0].kind, RuleKind::kBannedPattern);
  EXPECT_EQ(config->rules[0].patterns, std::vector<std::string>{"abc"});
  EXPECT_EQ(config->rules[1].kind, RuleKind::kForbiddenInclude);
  EXPECT_EQ(config->rules[1].forbidden, "data/");
  EXPECT_TRUE(config->rules[1].transitive);
  EXPECT_FALSE(config->rules[1].enabled);
}

TEST(ParseConfig, RejectsMalformedJson) {
  std::string error;
  EXPECT_FALSE(parse_config("{not json", &error).has_value());
  EXPECT_NE(error.find("lint_rules.json"), std::string::npos);
}

TEST(ParseConfig, RejectsMissingRulesArray) {
  std::string error;
  EXPECT_FALSE(parse_config(R"({"roots": ["src"]})", &error).has_value());
  EXPECT_NE(error.find("rules"), std::string::npos);
}

TEST(ParseConfig, RejectsUnknownRuleKind) {
  std::string error;
  const std::string json =
      R"({"rules": [{"name": "r", "kind": "telepathy"}]})";
  EXPECT_FALSE(parse_config(json, &error).has_value());
  EXPECT_NE(error.find("telepathy"), std::string::npos);
}

// ---- banned-pattern rule + path scoping ----------------------------------

TEST(Rules, BannedPatternFlagsMatchWithLineNumber) {
  const auto config = engine_config();
  const std::string source = "int x;\nstd::random_device rd;\n";
  const auto findings = lint_source(config, "src/core/solver.cpp", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "determinism-rng");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[0].file, "src/core/solver.cpp");
}

TEST(Rules, BannedPatternRespectsPathsAndAllowPaths) {
  const auto config = engine_config();
  const std::string source = "std::random_device rd;\n";
  // Inside the exempt prefix: the RNG wrapper is allowed to touch entropy.
  EXPECT_TRUE(lint_source(config, "src/rng/engine.cpp", source).empty());
  // Outside the rule's paths entirely.
  EXPECT_TRUE(lint_source(config, "tools/seed_tool.cpp", source).empty());
}

TEST(Rules, BannedPatternIgnoresCommentsAndStrings) {
  const auto config = engine_config();
  const std::string source =
      "// std::random_device in prose\n"
      "const char* s = \"std::random_device\";\n";
  EXPECT_TRUE(lint_source(config, "src/core/solver.cpp", source).empty());
}

// ---- float-eq rule -------------------------------------------------------

TEST(Rules, FloatEqFlagsNonzeroLiteralComparison) {
  const auto config = engine_config();
  const auto findings = lint_source(config, "src/core/a.cpp",
                                    "bool done(double f) { return f == 1.5; }");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "numeric-float-eq");
}

TEST(Rules, FloatEqFlagsLiteralOnLeftAndScientificNotation) {
  const auto config = engine_config();
  EXPECT_EQ(lint_source(config, "src/core/a.cpp", "bool b = 2.5 == x;").size(),
            1u);
  EXPECT_EQ(
      lint_source(config, "src/core/a.cpp", "bool b = x != 1e-9;").size(), 1u);
}

TEST(Rules, FloatEqAllowsExactZeroComparison) {
  const auto config = engine_config();
  // The "was this coordinate ever touched" sparsity idiom stays legal.
  EXPECT_TRUE(
      lint_source(config, "src/core/a.cpp", "if (gamma[i] != 0.0) use(i);")
          .empty());
  EXPECT_TRUE(
      lint_source(config, "src/core/a.cpp", "bool z = x == 0.0;").empty());
}

TEST(Rules, FloatEqSeesNonzeroCompareAfterZeroCompareOnOneLine) {
  const auto config = engine_config();
  const auto findings = lint_source(
      config, "src/core/a.cpp", "bool b = a == 0.0 && c == 2.5;");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "numeric-float-eq");
}

TEST(Rules, FloatEqIgnoresIntegerComparison) {
  const auto config = engine_config();
  EXPECT_TRUE(
      lint_source(config, "src/core/a.cpp", "bool b = n == 3;").empty());
}

// ---- hygiene rules -------------------------------------------------------

TEST(Rules, PragmaOnceRequiredInHeadersOnly) {
  const auto config = engine_config();
  const auto findings =
      lint_source(config, "src/core/h.hpp", "namespace plos {}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "hygiene-pragma-once");
  EXPECT_EQ(findings[0].line, 1);

  EXPECT_TRUE(
      lint_source(config, "src/core/h.hpp", "#pragma once\nint x;\n").empty());
  EXPECT_TRUE(
      lint_source(config, "src/core/h.cpp", "namespace plos {}\n").empty());
}

TEST(Rules, IncludeOrderOwnHeaderMustComeFirst) {
  const auto config = engine_config();
  const std::string source =
      "#include <vector>\n"
      "#include \"core/solver.hpp\"\n";
  const auto findings = lint_source(config, "src/core/solver.cpp", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "hygiene-include-order");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(Rules, IncludeOrderNoAngleAfterQuotedBlock) {
  const auto config = engine_config();
  const std::string source =
      "#include \"core/solver.hpp\"\n"
      "\n"
      "#include \"common/assert.hpp\"\n"
      "#include <vector>\n";
  const auto findings = lint_source(config, "src/core/solver.cpp", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4);
}

TEST(Rules, IncludeOrderAcceptsSubjectThenAngleThenQuoted) {
  const auto config = engine_config();
  const std::string source =
      "#include \"core/solver.hpp\"\n"
      "\n"
      "#include <cmath>\n"
      "#include <vector>\n"
      "\n"
      "#include \"common/assert.hpp\"\n";
  EXPECT_TRUE(lint_source(config, "src/core/solver.cpp", source).empty());
}

TEST(Rules, UsingNamespaceFlaggedInHeaderNotSource) {
  const auto config = engine_config();
  const std::string source = "#pragma once\nusing namespace std;\n";
  const auto findings = lint_source(config, "src/core/h.hpp", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "hygiene-using-namespace");
  EXPECT_EQ(findings[0].line, 2);

  EXPECT_TRUE(
      lint_source(config, "src/core/h.cpp", "using namespace std;\n").empty());
}

// ---- suppressions --------------------------------------------------------

TEST(Suppressions, SameLineAllowSilencesNamedRule) {
  const auto config = engine_config();
  const std::string source =
      "std::random_device rd;  // plos-lint: allow(determinism-rng)\n";
  EXPECT_TRUE(lint_source(config, "src/core/a.cpp", source).empty());
}

TEST(Suppressions, PrecedingLineAllowSilencesNextLine) {
  const auto config = engine_config();
  const std::string source =
      "// plos-lint: allow(determinism-rng)\n"
      "std::random_device rd;\n";
  EXPECT_TRUE(lint_source(config, "src/core/a.cpp", source).empty());
}

TEST(Suppressions, AllowListCoversMultipleRules) {
  const auto config = engine_config();
  const std::string source =
      "// plos-lint: allow(determinism-rng, numeric-float-eq)\n"
      "bool b = (x == 1.5); std::random_device rd;\n";
  EXPECT_TRUE(lint_source(config, "src/core/a.cpp", source).empty());
}

TEST(Suppressions, AllowFileSilencesWholeFileForThatRuleOnly) {
  const auto config = engine_config();
  const std::string source =
      "// plos-lint: allow-file(determinism-rng)\n"
      "std::random_device a;\n"
      "int pad;\n"
      "std::random_device b;\n"
      "bool c = x == 2.5;\n";
  const auto findings = lint_source(config, "src/core/a.cpp", source);
  // Both RNG hits suppressed; the float-eq on line 5 still fires.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "numeric-float-eq");
  EXPECT_EQ(findings[0].line, 5);
}

TEST(Suppressions, WrongRuleNameDoesNotSuppress) {
  const auto config = engine_config();
  const std::string source =
      "std::random_device rd;  // plos-lint: allow(numeric-float-eq)\n";
  EXPECT_EQ(lint_source(config, "src/core/a.cpp", source).size(), 1u);
}

// ---- include-graph privacy rule ------------------------------------------

TEST(PrivacyRule, FlagsDirectDataInclude) {
  const auto config = engine_config();
  const auto findings = lint_source(config, "src/net/wire.cpp",
                                    "#include \"data/dataset.hpp\"\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "privacy-raw-data");
  EXPECT_NE(findings[0].message.find("data/dataset.hpp"), std::string::npos);
}

TEST(PrivacyRule, FollowsTransitiveIncludeChain) {
  const auto config = engine_config();
  FileSet project;
  project["src/net/wire.cpp"] = "#include \"sensing/window.hpp\"\n";
  project["src/sensing/window.hpp"] =
      "#pragma once\n#include \"data/dataset.hpp\"\n";
  project["src/data/dataset.hpp"] = "#pragma once\n";
  const auto findings = lint_files(config, project);
  ASSERT_GE(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "privacy-raw-data");
  EXPECT_EQ(findings[0].file, "src/net/wire.cpp");
}

TEST(PrivacyRule, CleanNetFileWithProjectIncludesPasses) {
  const auto config = engine_config();
  FileSet project;
  project["src/net/wire.cpp"] = "#include \"common/assert.hpp\"\n";
  project["src/common/assert.hpp"] = "#pragma once\n#include <string>\n";
  EXPECT_TRUE(lint_files(config, project).empty());
}

TEST(PrivacyRule, DoesNotApplyOutsideNetLayer) {
  const auto config = engine_config();
  // The device-side solver legitimately sees the dataset.
  EXPECT_TRUE(lint_source(config, "src/core/distributed.cpp",
                          "#include \"data/dataset.hpp\"\n")
                  .empty());
}

// ---- race-surface rule ---------------------------------------------------
//
// Sources live in raw strings: the scrubber blanks them when plos_lint
// scans this test file, so the planted races never flag the test itself.

TEST(RaceSurface, FlagsUnsynchronizedCapturedWrite) {
  const auto config = semantic_config();
  const std::string source = R"(void solve(const std::vector<double>& x,
           parallel::ThreadPool& pool) {
  double total = 0.0;
  pool.parallel_for(x.size(), [&](std::size_t t) {
    total += x[t];
  });
}
)";
  const auto findings = lint_source(config, "src/core/reduce.cpp", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "race-surface");
  EXPECT_EQ(findings[0].line, 5);
  EXPECT_NE(findings[0].message.find("'total'"), std::string::npos);
}

TEST(RaceSurface, ChunkIndexedWriteIsSafe) {
  const auto config = semantic_config();
  const std::string source = R"(void square(std::vector<double>& out,
            const std::vector<double>& in, parallel::ThreadPool& pool) {
  pool.parallel_for(in.size(), [&](std::size_t t) {
    out[t] = in[t] * in[t];
  });
}
)";
  EXPECT_TRUE(lint_source(config, "src/core/map.cpp", source).empty());
}

TEST(RaceSurface, AtomicCounterIsSafe) {
  const auto config = semantic_config();
  const std::string source = R"(void count(std::size_t n,
           parallel::ThreadPool& pool) {
  std::atomic<long> hits{0};
  pool.parallel_for(n, [&](std::size_t t) {
    if (t % 2 == 0) ++hits;
  });
}
)";
  EXPECT_TRUE(lint_source(config, "src/core/count.cpp", source).empty());
}

TEST(RaceSurface, LockGuardedWriteIsSafe) {
  const auto config = semantic_config();
  const std::string source = R"(void enqueue(std::vector<int>& queue,
             std::mutex& mu, parallel::ThreadPool& pool) {
  pool.submit([&] {
    std::lock_guard<std::mutex> guard(mu);
    queue.push_back(1);
  });
}
)";
  EXPECT_TRUE(lint_source(config, "src/core/queue.cpp", source).empty());
}

TEST(RaceSurface, ExplicitByValueCaptureIsSafe) {
  const auto config = semantic_config();
  const std::string source = R"(void detach(double seed,
            parallel::ThreadPool& pool) {
  pool.submit([seed]() mutable { seed += 1.0; });
}
)";
  EXPECT_TRUE(lint_source(config, "src/core/detach.cpp", source).empty());
}

TEST(RaceSurface, ThisCapturedMemberMutationFlagged) {
  const auto config = semantic_config();
  const std::string bad = R"(void Collector::run(parallel::ThreadPool& pool,
                    std::size_t n) {
  pool.parallel_for(n, [this](std::size_t t) {
    results_.push_back(t);
  });
}
)";
  const auto findings = lint_source(config, "src/core/collect.cpp", bad);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "race-surface");
  EXPECT_NE(findings[0].message.find("'results_'"), std::string::npos);

  // A chunk-indexed member write through the same capture stays legal.
  const std::string good = R"(void Collector::fill(parallel::ThreadPool& pool,
                     std::size_t n) {
  pool.parallel_for(n, [this](std::size_t t) {
    slots_[t] = 0.0;
  });
}
)";
  EXPECT_TRUE(lint_source(config, "src/core/collect.cpp", good).empty());
}

TEST(RaceSurface, LambdaLocalIndexedWriteIsSafe) {
  const auto config = semantic_config();
  const std::string source = R"(void mark(std::vector<double>& out,
          const std::vector<std::vector<std::size_t>>& spans,
          parallel::ThreadPool& pool) {
  pool.parallel_for(spans.size(), [&](std::size_t g) {
    for (std::size_t j : spans[g]) out[j] = 1.0;
  });
}
)";
  EXPECT_TRUE(lint_source(config, "src/core/mark.cpp", source).empty());
}

// ---- accumulation-order rule ---------------------------------------------

TEST(AccumulationOrder, FlagsLoopCarriedRawFold) {
  const auto config = semantic_config();
  const std::string source = R"(double objective(const double* g,
                  const double* x, std::size_t n) {
  double obj = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    obj += g[i] * x[i];
  }
  return obj;
}
)";
  const auto findings = lint_source(config, "src/qp/solver.cpp", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "accumulation-order");
  EXPECT_EQ(findings[0].line, 5);
  EXPECT_NE(findings[0].message.find("'obj'"), std::string::npos);
}

TEST(AccumulationOrder, KernelRoutedFoldIsExempt) {
  const auto config = semantic_config();
  const std::string source = R"(double objective(std::size_t m) {
  double obj = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    obj += linalg::kernels::blocked_dot(rows[i], x);
  }
  return obj;
}
)";
  EXPECT_TRUE(lint_source(config, "src/qp/solver.cpp", source).empty());
}

TEST(AccumulationOrder, ScanRecurrenceIsExempt) {
  const auto config = semantic_config();
  // The prefix-scan idiom from project_capped_simplex: the target is
  // re-read inside the loop, so the order IS the algorithm.
  const std::string source = R"(double threshold(const std::vector<double>& u) {
  double running = 0.0;
  double theta = 0.0;
  for (std::size_t k = 0; k < u.size(); ++k) {
    running += u[k];
    theta = running / static_cast<double>(k + 1);
  }
  return theta;
}
)";
  EXPECT_TRUE(lint_source(config, "src/qp/projection.cpp", source).empty());
}

TEST(AccumulationOrder, SeededRecurrenceIsExempt) {
  const auto config = semantic_config();
  // Cholesky-style pivot update: seeded from a[0], not a zero fold.
  const std::string source = R"(double pivot(const double* a, const double* l,
             std::size_t i) {
  double diag = a[0];
  for (std::size_t k = 0; k < i; ++k) {
    diag -= l[k] * l[k];
  }
  return diag;
}
)";
  EXPECT_TRUE(lint_source(config, "src/linalg/factor.cpp", source).empty());
}

TEST(AccumulationOrder, HoistedElementTermIsExempt) {
  const auto config = semantic_config();
  // Folds over a hoisted per-iteration local are the blessed shape for
  // branching losses (the element term does not read the loop variable).
  const std::string source = R"(double hinge(const double* m, std::size_t n) {
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double margin = m[i];
    loss += std::max(0.0, 1.0 - margin);
  }
  return loss;
}
)";
  EXPECT_TRUE(lint_source(config, "src/core/loss.cpp", source).empty());
}

TEST(AccumulationOrder, IntegerAccumulatorIsExempt) {
  const auto config = semantic_config();
  const std::string source = R"(int agreement(const int* a, const int* b,
              std::size_t n) {
  int agree = 0;
  for (std::size_t i = 0; i < n; ++i) {
    agree += a[i] == b[i] ? 1 : 0;
  }
  return agree;
}
)";
  EXPECT_TRUE(lint_source(config, "src/core/vote.cpp", source).empty());
}

TEST(AccumulationOrder, OnlyAppliesToHotPathModules) {
  const auto config = semantic_config();
  const std::string source = R"(double sum_all(const double* v, std::size_t n) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += v[i];
  }
  return total;
}
)";
  // Same raw fold, but the net layer is outside the rule's paths.
  EXPECT_TRUE(lint_source(config, "src/net/wire.cpp", source).empty());
}

// ---- layering rule -------------------------------------------------------

TEST(Layering, UndeclaredEdgeFlagged) {
  const auto config = semantic_config();
  const auto findings = lint_source(config, "src/linalg/matrix.cpp",
                                    "#include \"qp/box_qp.hpp\"\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layering");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("linalg -> qp"), std::string::npos);
}

TEST(Layering, DeclaredEdgesSelfAndAngleIncludesAreClean) {
  const auto config = semantic_config();
  const std::string source =
      "#include \"qp/solver.hpp\"\n"
      "\n"
      "#include <vector>\n"
      "\n"
      "#include \"common/assert.hpp\"\n"
      "#include \"linalg/kernels.hpp\"\n"
      "#include \"qp/projection.hpp\"\n";
  EXPECT_TRUE(lint_source(config, "src/qp/solver.cpp", source).empty());
}

TEST(Layering, UnknownModuleIsFlagged) {
  const auto config = semantic_config();
  const auto findings =
      lint_source(config, "src/rogue/widget.cpp", "int x;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layering");
  EXPECT_NE(findings[0].message.find("\"rogue\""), std::string::npos);
}

TEST(Layering, WildcardTopLayerMayIncludeAnything) {
  const auto config = semantic_config();
  const std::string source =
      "#include \"core/trainer.hpp\"\n#include \"net/wire.hpp\"\n";
  EXPECT_TRUE(lint_source(config, "tests/test_widget.cpp", source).empty());
}

TEST(Layering, BareTargetResolvesToOwnModule) {
  const auto config = semantic_config();
  // A directory-less target is a sibling header: always a self-edge.
  EXPECT_TRUE(lint_source(config, "src/qp/solver.cpp",
                          "#include \"solver_detail.hpp\"\n")
                  .empty());
}

TEST(Layering, ParseRejectsCycles) {
  std::string error;
  const auto layers = parse_layers(
      R"({"modules": {"a": ["b"], "b": ["a"]}})", &error);
  EXPECT_FALSE(layers.has_value());
  EXPECT_NE(error.find("cycle"), std::string::npos);
}

TEST(Layering, ParseRejectsUnknownDependency) {
  std::string error;
  const auto layers =
      parse_layers(R"({"modules": {"a": ["ghost"]}})", &error);
  EXPECT_FALSE(layers.has_value());
  EXPECT_NE(error.find("ghost"), std::string::npos);
}

// ---- threaded scan determinism -------------------------------------------

TEST(Threads, ScanIsByteIdenticalAcrossThreadCounts) {
  const auto config = engine_config();
  FileSet project;
  for (int i = 0; i < 12; ++i) {
    const std::string path = "src/core/f" + std::to_string(i) + ".cpp";
    project[path] = (i % 2 == 0)
                        ? "std::random_device rd;\nbool b = x == 1.5;\n"
                        : "int x;\n";
  }
  project["src/net/wire.cpp"] = "#include \"sensing/w.hpp\"\n";
  project["src/sensing/w.hpp"] = "#pragma once\n#include \"data/d.hpp\"\n";
  project["src/data/d.hpp"] = "#pragma once\n";

  const std::string serial = format_findings(lint_files(config, project, 1));
  EXPECT_FALSE(serial.empty());
  for (const int threads : {2, 4, 8}) {
    EXPECT_EQ(format_findings(lint_files(config, project, threads)), serial)
        << "threads=" << threads;
  }
}

// ---- mechanical fixer ----------------------------------------------------

TEST(Fix, InsertsPragmaOnceAfterLeadingCommentBlock) {
  const auto config = engine_config();
  const std::string source = "// doc\n// more\nnamespace plos {}\n";
  const FixOutcome fixed = fix_mechanical(config, "src/core/h.hpp", source);
  ASSERT_TRUE(fixed.changed);
  EXPECT_FALSE(fixed.refused);
  EXPECT_NE(fixed.text.find("// more\n#pragma once\n\nnamespace"),
            std::string::npos)
      << fixed.text;
  EXPECT_TRUE(lint_source(config, "src/core/h.hpp", fixed.text).empty());
}

TEST(Fix, CanonicalizesIncludeOrderAndReachesAFixpoint) {
  const auto config = engine_config();
  const std::string source =
      "#include <vector>\n"
      "#include \"core/solver.hpp\"\n"
      "#include <cmath>\n"
      "\n"
      "#include \"common/assert.hpp\"\n"
      "\n"
      "int x;\n";
  const FixOutcome fixed =
      fix_mechanical(config, "src/core/solver.cpp", source);
  ASSERT_TRUE(fixed.changed);
  // Own header first, then the angle block, then quoted project headers.
  EXPECT_NE(fixed.text.find("#include \"core/solver.hpp\"\n\n"
                            "#include <vector>\n#include <cmath>\n\n"
                            "#include \"common/assert.hpp\"\n"),
            std::string::npos)
      << fixed.text;
  EXPECT_TRUE(
      lint_source(config, "src/core/solver.cpp", fixed.text).empty());
  // Idempotence: fixing a fixed file is a no-op.
  const FixOutcome again =
      fix_mechanical(config, "src/core/solver.cpp", fixed.text);
  EXPECT_FALSE(again.changed);
}

TEST(Fix, RefusesFilesCarryingSuppressionMarkers) {
  const auto config = engine_config();
  const std::string source =
      "// plos-lint: allow(hygiene-include-order)\n"
      "#include <vector>\n"
      "#include \"core/solver.hpp\"\n";
  const FixOutcome outcome =
      fix_mechanical(config, "src/core/solver.cpp", source);
  EXPECT_TRUE(outcome.refused);
  EXPECT_FALSE(outcome.changed);
}

TEST(Fix, LeavesIncludeRegionWithInterleavedCommentAlone) {
  const auto config = engine_config();
  // A comment pinned between includes would detach under a rebuild, so the
  // fixer must not touch the region.
  const std::string source =
      "#include <vector>\n"
      "// pinned explanation\n"
      "#include \"core/solver.hpp\"\n"
      "int x;\n";
  const FixOutcome outcome =
      fix_mechanical(config, "src/core/solver.cpp", source);
  EXPECT_FALSE(outcome.changed);
  EXPECT_FALSE(outcome.refused);
}

// ---- SARIF output --------------------------------------------------------

TEST(Sarif, EmitsDeterministicSarif21Log) {
  const auto config = engine_config();
  const std::vector<Finding> findings{
      {"determinism-rng", "src/core/a.cpp", 7, "no entropy in solvers"}};
  const std::string sarif = format_sarif(config, findings);
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"determinism-rng\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":7"), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\":\"src/core/a.cpp\""), std::string::npos);
  EXPECT_EQ(sarif.back(), '\n');
  // Deterministic byte-for-byte; the rules catalog indexes every enabled
  // rule even when findings are empty.
  EXPECT_EQ(sarif, format_sarif(config, findings));
  const std::string empty_log = format_sarif(config, {});
  EXPECT_NE(empty_log.find("\"results\":[]"), std::string::npos);
  EXPECT_NE(empty_log.find("\"id\":\"numeric-float-eq\""), std::string::npos);
}

// ---- reporting & ordering ------------------------------------------------

TEST(Reporting, FormatFindingsUsesCompilerStyle) {
  const std::vector<Finding> findings{
      {"determinism-rng", "src/core/a.cpp", 7, "no entropy in solvers"}};
  EXPECT_EQ(format_findings(findings),
            "src/core/a.cpp:7: error: [determinism-rng] no entropy in "
            "solvers\n");
}

TEST(Reporting, LintFilesOrdersFindingsByFileThenLine) {
  const auto config = engine_config();
  FileSet project;
  project["src/core/b.cpp"] = "std::random_device rd;\n";
  project["src/core/a.cpp"] = "int x;\nstd::random_device rd;\n";
  const auto findings = lint_files(config, project);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].file, "src/core/a.cpp");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[1].file, "src/core/b.cpp");
}

// ---- shipped config, self-test, and the real tree ------------------------

TEST(ShippedConfig, ParsesAndCoversTheDeterminismCatalog) {
  const std::string text =
      read_file(std::string(PLOS_REPO_DIR) + "/tools/lint_rules.json");
  ASSERT_FALSE(text.empty());
  std::string error;
  const auto config = parse_config(text, &error);
  ASSERT_TRUE(config.has_value()) << error;
  const auto names = [&] {
    std::vector<std::string> out;
    for (const Rule& r : config->rules) out.push_back(r.name);
    return out;
  }();
  for (const char* required :
       {"determinism-rng", "determinism-clock", "determinism-unordered",
        "determinism-build-stamp", "numeric-no-float", "numeric-float-eq",
        "numeric-c-abs", "privacy-raw-data", "io-iostream", "cache-purity",
        "hygiene-pragma-once", "hygiene-include-order",
        "hygiene-using-namespace", "race-surface", "accumulation-order",
        "layering"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << "missing rule " << required;
  }
}

// ---- cache-purity rule ---------------------------------------------------
//
// The hot-path cache sources (gram_cache, warm_store) must stay pure
// functions of solver inputs: no timers, no wall clocks, no pointer-derived
// keys, no hash-seeded containers (DESIGN.md §13). The shipped rule is
// path-scoped to exactly those files.

std::size_t count_rule(const std::vector<Finding>& findings,
                       const std::string& rule) {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

TEST(CachePurity, FlagsImpureStateInsideCacheSources) {
  const std::string text =
      read_file(std::string(PLOS_REPO_DIR) + "/tools/lint_rules.json");
  const auto config = parse_config(text);
  ASSERT_TRUE(config.has_value());

  const std::string impure =
      "int f() {\n"
      "  common::Stopwatch timer;\n"
      "  auto stamp = std::chrono::steady_clock::now();\n"
      "  std::hash<int> hasher;\n"
      "  auto key = reinterpret_cast<std::size_t>(nullptr);\n"
      "  return 0;\n"
      "}\n";
  // Every impurity class fires, in both scoped cache files.
  EXPECT_GE(count_rule(lint_source(*config, "src/core/gram_cache.cpp", impure),
                       "cache-purity"),
            4u);
  EXPECT_GE(count_rule(lint_source(*config, "src/qp/warm_store.cpp", impure),
                       "cache-purity"),
            4u);
}

TEST(CachePurity, DoesNotApplyOutsideTheCacheSources) {
  const std::string text =
      read_file(std::string(PLOS_REPO_DIR) + "/tools/lint_rules.json");
  const auto config = parse_config(text);
  ASSERT_TRUE(config.has_value());

  // Stopwatch is banned only by cache-purity; other solver files may use it
  // (subject to their own rules), so the rule must not fire there.
  const std::string source = "common::Stopwatch timer;\n";
  EXPECT_EQ(count_rule(
                lint_source(*config, "src/core/cutting_plane.cpp", source),
                "cache-purity"),
            0u);
}

TEST(CachePurity, CoversSketchAndFlightRecorderSources) {
  const std::string text =
      read_file(std::string(PLOS_REPO_DIR) + "/tools/lint_rules.json");
  const auto config = parse_config(text);
  ASSERT_TRUE(config.has_value());

  // The mergeable sketches and the flight recorder promise byte-identical
  // output at any thread count (DESIGN.md §15), which the same purity
  // classes protect: no clocks, no std::hash, no unordered containers.
  const std::string impure =
      "void g() {\n"
      "  auto stamp = std::chrono::steady_clock::now();\n"
      "  std::hash<std::string> hasher;\n"
      "  std::unordered_map<int, int> buckets;\n"
      "}\n";
  for (const char* path :
       {"src/obs/sketch.cpp", "src/obs/sketch.hpp", "src/obs/flight.cpp",
        "src/obs/flight.hpp"}) {
    EXPECT_GE(count_rule(lint_source(*config, path, impure), "cache-purity"),
              3u)
        << path;
  }
  // The scope is those files exactly: sibling obs sources (journal,
  // metrics) legitimately quarantine wall time and stay out of the rule.
  EXPECT_EQ(count_rule(lint_source(*config, "src/obs/metrics.cpp", impure),
                       "cache-purity"),
            0u);
}

TEST(SelfTest, AllEmbeddedFixturesPassAndReportNamesLocations) {
  const std::string text =
      read_file(std::string(PLOS_REPO_DIR) + "/tools/lint_rules.json");
  auto config = parse_config(text);
  ASSERT_TRUE(config.has_value());
  // The layering fixtures need the shipped DAG (the CLI loads it the same
  // way whenever a layering rule is enabled).
  std::string layers_error;
  const auto layers = parse_layers(
      read_file(std::string(PLOS_REPO_DIR) + "/tools/lint_layers.json"),
      &layers_error);
  ASSERT_TRUE(layers.has_value()) << layers_error;
  config->layers = *layers;
  config->layers_loaded = true;
  const SelfTestResult result = self_test(*config);
  EXPECT_TRUE(result.ok) << result.report;
  // Rejections are reported with the rule name and a file:line location.
  EXPECT_NE(result.report.find("[determinism-rng]"), std::string::npos);
  EXPECT_NE(result.report.find("src/core/bad_rng.cpp:3"), std::string::npos)
      << result.report;
  EXPECT_NE(result.report.find("all fixtures passed"), std::string::npos);
}

TEST(Cli, HelpAndListRulesExitZero) {
  std::string out;
  EXPECT_EQ(run_cli({"--help"}, out), 0);
  EXPECT_NE(out.find("usage:"), std::string::npos);

  out.clear();
  EXPECT_EQ(run_cli({"--root", PLOS_REPO_DIR, "--list-rules"}, out), 0);
  EXPECT_NE(out.find("determinism-rng"), std::string::npos);
}

TEST(Cli, UsageErrorsExitTwo) {
  std::string out;
  EXPECT_EQ(run_cli({"--frobnicate"}, out), 2);
  EXPECT_NE(out.find("unknown flag"), std::string::npos);

  out.clear();
  EXPECT_EQ(run_cli({"--rules"}, out), 2);

  out.clear();
  EXPECT_EQ(run_cli({"--rules", "/nonexistent/lint_rules.json"}, out), 2);
  EXPECT_NE(out.find("cannot open"), std::string::npos);
}

TEST(Cli, SelfTestExitsZeroWithShippedRules) {
  std::string out;
  EXPECT_EQ(run_cli({"--root", PLOS_REPO_DIR, "--self-test"}, out), 0);
  EXPECT_NE(out.find("all fixtures passed"), std::string::npos);
}

TEST(Cli, RealTreeLintsClean) {
  // The acceptance gate: plos_lint over the actual repository exits 0.
  std::string out;
  EXPECT_EQ(run_cli({"--root", PLOS_REPO_DIR}, out), 0) << out;
  EXPECT_NE(out.find("0 finding(s)"), std::string::npos) << out;
}

TEST(Cli, FindingsInAScannedTreeExitOne) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "plos_lint_cli_test";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "core");
  fs::create_directories(root / "tools");
  {
    std::ofstream rules(root / "tools" / "lint_rules.json");
    rules << R"({"roots": ["src"], "rules": [
      {"name": "determinism-rng", "kind": "banned-pattern",
       "message": "no entropy in solvers",
       "patterns": ["std::random_device"], "paths": ["src/"]}
    ]})";
  }
  {
    std::ofstream bad(root / "src" / "core" / "bad.cpp");
    bad << "std::random_device rd;\n";
  }
  std::string out;
  EXPECT_EQ(run_cli({"--root", root.string()}, out), 1);
  EXPECT_NE(out.find("[determinism-rng]"), std::string::npos);
  EXPECT_NE(out.find("src/core/bad.cpp:1"), std::string::npos);

  // A positional prefix filter that excludes the bad file scans clean.
  out.clear();
  EXPECT_EQ(run_cli({"--root", root.string(), "src/other/"}, out), 0);
  fs::remove_all(root);
}

TEST(Cli, ThreadedRealTreeScanIsByteIdentical) {
  // The §8 contract applied to the linter itself: the scan's byte output
  // must not depend on the worker count (CI asserts the same equality).
  std::string serial;
  ASSERT_EQ(run_cli({"--root", PLOS_REPO_DIR, "--threads", "1"}, serial), 0);
  for (const char* threads : {"2", "4", "8"}) {
    std::string out;
    EXPECT_EQ(run_cli({"--root", PLOS_REPO_DIR, "--threads", threads}, out),
              0);
    EXPECT_EQ(out, serial) << "threads=" << threads;
  }
}

TEST(Cli, ThreadsFlagRejectsNonPositiveValues) {
  std::string out;
  EXPECT_EQ(run_cli({"--root", PLOS_REPO_DIR, "--threads", "0"}, out), 2);
  out.clear();
  EXPECT_EQ(run_cli({"--root", PLOS_REPO_DIR, "--threads", "lots"}, out), 2);
  out.clear();
  EXPECT_EQ(run_cli({"--root", PLOS_REPO_DIR, "--format", "xml"}, out), 2);
}

TEST(Cli, SarifFormatEmitsALogAndKeepsExitCodes) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "plos_lint_sarif_test";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "core");
  fs::create_directories(root / "tools");
  {
    std::ofstream rules(root / "tools" / "lint_rules.json");
    rules << R"({"roots": ["src"], "rules": [
      {"name": "determinism-rng", "kind": "banned-pattern",
       "message": "no entropy in solvers",
       "patterns": ["std::random_device"], "paths": ["src/"]}
    ]})";
  }
  {
    std::ofstream bad(root / "src" / "core" / "bad.cpp");
    bad << "std::random_device rd;\n";
  }
  std::string out;
  EXPECT_EQ(run_cli({"--root", root.string(), "--format", "sarif"}, out), 1);
  EXPECT_EQ(out.front(), '{');
  EXPECT_NE(out.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(out.find("\"ruleId\":\"determinism-rng\""), std::string::npos);

  // Clean scans still exit 0 and emit a (findings-free) log.
  std::ofstream(root / "src" / "core" / "bad.cpp") << "int x;\n";
  out.clear();
  EXPECT_EQ(run_cli({"--root", root.string(), "--format", "sarif"}, out), 0);
  EXPECT_NE(out.find("\"results\":[]"), std::string::npos);
  fs::remove_all(root);
}

TEST(Cli, FixRewritesTreeAndReachesAFixpoint) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "plos_lint_fix_test";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "core");
  fs::create_directories(root / "tools");
  {
    std::ofstream rules(root / "tools" / "lint_rules.json");
    rules << R"({"roots": ["src"], "rules": [
      {"name": "hygiene-pragma-once", "kind": "pragma-once",
       "message": "header missing #pragma once"},
      {"name": "hygiene-include-order", "kind": "include-order",
       "message": "include order"}
    ]})";
  }
  std::ofstream(root / "src" / "core" / "h.hpp") << "int declared();\n";
  std::ofstream(root / "src" / "core" / "pinned.hpp")
      << "#pragma once  // plos-lint: allow(hygiene-pragma-once)\nint y;\n";

  std::string out;
  EXPECT_EQ(run_cli({"--root", root.string(), "--fix"}, out), 0);
  EXPECT_NE(out.find("fixed: src/core/h.hpp"), std::string::npos) << out;
  EXPECT_NE(out.find("refused (plos-lint suppression present): "
                     "src/core/pinned.hpp"),
            std::string::npos)
      << out;

  std::ifstream fixed(root / "src" / "core" / "h.hpp");
  std::ostringstream text;
  text << fixed.rdbuf();
  EXPECT_EQ(text.str(), "#pragma once\n\nint declared();\n");

  // The fixed tree scans clean and a second --fix touches nothing.
  out.clear();
  EXPECT_EQ(run_cli({"--root", root.string()}, out), 0) << out;
  out.clear();
  EXPECT_EQ(run_cli({"--root", root.string(), "--fix"}, out), 0);
  EXPECT_NE(out.find("0 file(s) fixed"), std::string::npos) << out;
  fs::remove_all(root);
}

}  // namespace
}  // namespace plos::lint
