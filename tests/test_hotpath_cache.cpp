// Cache-equivalence suite for the hot-path engine (DESIGN.md §13).
//
// The Gram/cutting-plane dot cache and the cached Lipschitz estimates are
// memoization of pure functions, so they must be BITWISE invisible: for
// both trainers, at every supported thread count, a run with
// hotpath_cache=true must produce the same model doubles, the same
// serialized round journal, and the same integer-exact SimNetwork byte
// ledgers as a run with hotpath_cache=false. A second set of tests proves
// the caches are actually ON in the default configuration by asserting the
// obs counters record real reuse — equivalence alone would also pass if the
// cache silently never engaged.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/centralized_plos.hpp"
#include "core/distributed_plos.hpp"
#include "data/labeling.hpp"
#include "data/synthetic.hpp"
#include "net/simnet.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "rng/engine.hpp"

namespace plos::core {
namespace {

data::MultiUserDataset make_population() {
  data::SyntheticSpec spec;
  spec.num_users = 5;
  spec.points_per_class = 18;
  spec.max_rotation = 1.1;
  rng::Engine engine(23);
  auto dataset = data::generate_synthetic(spec, engine);
  data::reveal_labels(dataset, {0, 2}, 0.3, engine);
  return dataset;
}

void expect_bitwise_equal(const linalg::Vector& cached,
                          const linalg::Vector& plain, const char* what) {
  ASSERT_EQ(cached.size(), plain.size()) << what;
  for (std::size_t i = 0; i < cached.size(); ++i) {
    // Exact double comparison on purpose: the contract is bitwise identity.
    ASSERT_EQ(cached[i], plain[i]) << what << " differs at " << i;
  }
}

void expect_models_equal(const PersonalizedModel& cached,
                         const PersonalizedModel& plain) {
  expect_bitwise_equal(cached.global_weights, plain.global_weights, "w0");
  ASSERT_EQ(cached.user_deviations.size(), plain.user_deviations.size());
  for (std::size_t t = 0; t < cached.user_deviations.size(); ++t) {
    expect_bitwise_equal(cached.user_deviations[t], plain.user_deviations[t],
                         "v_t");
  }
}

class CacheEquivalence : public ::testing::TestWithParam<int> {};

CentralizedPlosOptions centralized_options(int threads, bool cache,
                                           obs::Journal* journal) {
  CentralizedPlosOptions options;
  options.cutting_plane.epsilon = 1e-2;
  options.cccp.max_iterations = 3;
  options.num_threads = threads;
  options.hotpath_cache = cache;
  options.journal = journal;
  return options;
}

DistributedPlosOptions distributed_options(int threads, bool cache,
                                           obs::Journal* journal) {
  DistributedPlosOptions options;
  options.cutting_plane.epsilon = 1e-2;
  options.cccp.max_iterations = 3;
  options.max_admm_iterations = 50;
  options.num_threads = threads;
  options.hotpath_cache = cache;
  options.journal = journal;
  return options;
}

TEST_P(CacheEquivalence, CentralizedModelAndJournalBitwiseIdentical) {
  const auto dataset = make_population();
  obs::Journal cached_journal;
  obs::Journal plain_journal;
  const auto cached = train_centralized_plos(
      dataset, centralized_options(GetParam(), true, &cached_journal));
  const auto plain = train_centralized_plos(
      dataset, centralized_options(GetParam(), false, &plain_journal));

  expect_models_equal(cached.model, plain.model);
  ASSERT_EQ(cached.diagnostics.objective_trace.size(),
            plain.diagnostics.objective_trace.size());
  for (std::size_t i = 0; i < cached.diagnostics.objective_trace.size(); ++i) {
    ASSERT_EQ(cached.diagnostics.objective_trace[i],
              plain.diagnostics.objective_trace[i])
        << "objective entry " << i;
  }
  EXPECT_EQ(cached.diagnostics.qp_solves, plain.diagnostics.qp_solves);
  EXPECT_EQ(cached.diagnostics.final_constraint_count,
            plain.diagnostics.final_constraint_count);
  // Byte-identical serialized journals: same objectives, same constraint
  // counts, same QP work — the cache may not even change iteration counts.
  EXPECT_EQ(cached_journal.to_jsonl(), plain_journal.to_jsonl());
}

TEST_P(CacheEquivalence, DistributedModelJournalAndLedgerBitwiseIdentical) {
  const auto dataset = make_population();
  obs::Journal cached_journal;
  obs::Journal plain_journal;
  net::SimNetwork cached_net(dataset.num_users(), net::DeviceProfile{},
                             net::LinkProfile{});
  net::SimNetwork plain_net(dataset.num_users(), net::DeviceProfile{},
                            net::LinkProfile{});
  const auto cached = train_distributed_plos(
      dataset, distributed_options(GetParam(), true, &cached_journal),
      &cached_net);
  const auto plain = train_distributed_plos(
      dataset, distributed_options(GetParam(), false, &plain_journal),
      &plain_net);

  expect_models_equal(cached.model, plain.model);
  EXPECT_EQ(cached.diagnostics.admm_iterations_total,
            plain.diagnostics.admm_iterations_total);
  EXPECT_EQ(cached.diagnostics.qp_solves, plain.diagnostics.qp_solves);
  EXPECT_EQ(cached_journal.to_jsonl(), plain_journal.to_jsonl());

  EXPECT_EQ(cached_net.server_metrics().bytes_sent,
            plain_net.server_metrics().bytes_sent);
  EXPECT_EQ(cached_net.server_metrics().bytes_received,
            plain_net.server_metrics().bytes_received);
  for (std::size_t t = 0; t < dataset.num_users(); ++t) {
    const auto& c = cached_net.device_metrics(t);
    const auto& p = plain_net.device_metrics(t);
    EXPECT_EQ(c.bytes_sent, p.bytes_sent) << "device " << t;
    EXPECT_EQ(c.bytes_received, p.bytes_received) << "device " << t;
    EXPECT_EQ(c.messages_sent, p.messages_sent) << "device " << t;
    EXPECT_EQ(c.messages_received, p.messages_received) << "device " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, CacheEquivalence,
                         ::testing::Values(1, 2, 4, 8),
                         [](const auto& param_info) {
                           return "threads" + std::to_string(param_info.param);
                         });

// Equivalence is vacuous if the cache never engages: prove reuse happens.
// The global registry starts disabled; these tests enable it around one
// training run and read the counters back. They are deliberately not
// parameterized — counters are process-global and cumulative.

struct CounterSnapshot {
  double dots_reused;
  double planes_reused;
  double warm_store_hits;
  double warm_hits;
  double lipschitz_reuses;
};

CounterSnapshot snapshot(const char* warm_hit_counter,
                         const char* lipschitz_counter) {
  auto& registry = obs::metrics();
  return {registry.counter("plos.gram_cache.dots_reused").value(),
          registry.counter("plos.gram_cache.planes_reused").value(),
          registry.counter("qp.warm_store.hits").value(),
          registry.counter(warm_hit_counter).value(),
          registry.counter(lipschitz_counter).value()};
}

TEST(CacheCounters, CentralizedRunRecordsReuse) {
  const auto dataset = make_population();
  auto& registry = obs::metrics();
  registry.set_enabled(true);
  registry.reset_values();
  (void)train_centralized_plos(dataset,
                               centralized_options(1, true, nullptr));
  const auto counters = snapshot("qp.capped_simplex.warm_hits",
                                 "qp.capped_simplex.lipschitz_reuses");
  registry.set_enabled(false);

  // Cross-iteration dual re-solves and the sign-fitting inner loops hit the
  // Gram cache; cross-round warm-start seeding must land at least one hit.
  EXPECT_GT(counters.dots_reused, 0.0);
  EXPECT_GT(counters.warm_store_hits, 0.0);
}

TEST(CacheCounters, DistributedRunRecordsReuse) {
  const auto dataset = make_population();
  auto& registry = obs::metrics();
  registry.set_enabled(true);
  registry.reset_values();
  (void)train_distributed_plos(dataset, distributed_options(1, true, nullptr),
                               nullptr);
  const auto counters = snapshot("qp.capped_simplex.warm_hits",
                                 "qp.capped_simplex.lipschitz_reuses");
  registry.set_enabled(false);

  EXPECT_GT(counters.dots_reused, 0.0);
  EXPECT_GT(counters.warm_store_hits, 0.0);
  // Per-device prox-QPs re-solve against an unchanged Hessian once per ADMM
  // iteration — the memoized Lipschitz estimate must be reused there.
  EXPECT_GT(counters.lipschitz_reuses, 0.0);
}

TEST(CacheCounters, DisabledCacheRecordsNoDotReuse) {
  const auto dataset = make_population();
  auto& registry = obs::metrics();
  registry.set_enabled(true);
  registry.reset_values();
  (void)train_distributed_plos(dataset, distributed_options(1, false, nullptr),
                               nullptr);
  const double dots_reused =
      registry.counter("plos.gram_cache.dots_reused").value();
  const double lipschitz_reuses =
      registry.counter("qp.capped_simplex.lipschitz_reuses").value();
  registry.set_enabled(false);

  // hotpath_cache=false disables memoization only (interning and warm-start
  // seeding are algorithm state and stay on), so dot/Lipschitz reuse must
  // be exactly zero.
  EXPECT_EQ(dots_reused, 0.0);
  EXPECT_EQ(lipschitz_reuses, 0.0);
}

}  // namespace
}  // namespace plos::core
