// Tests for the shared 1-slack cutting-plane machinery, including a
// brute-force check that Eq. 14 really picks the most violated constraint
// among all 2^m subset selections.
#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"
#include "core/cutting_plane.hpp"
#include "rng/engine.hpp"

namespace plos::core {
namespace {

using linalg::Vector;

data::UserData small_user() {
  data::UserData u;
  u.samples = {{1.0, 0.0}, {0.0, 1.0}, {-1.0, 0.5}, {0.3, -0.7}};
  u.true_labels = {1, -1, -1, 1};
  u.revealed = {true, true, false, false};
  return u;
}

TEST(UserContext, SplitsByVisibility) {
  const auto user = small_user();
  const auto ctx = PlosUserContext::from_user(user);
  EXPECT_EQ(ctx.labeled, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(ctx.unlabeled, (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(ctx.num_samples(), 4u);
}

TEST(CccpSigns, MatchDecisionValues) {
  const auto user = small_user();
  const auto ctx = PlosUserContext::from_user(user);
  const Vector w{1.0, 0.0};
  const auto signs = cccp_signs(ctx, w);
  ASSERT_EQ(signs.size(), 2u);
  EXPECT_EQ(signs[0], -1);  // w·(-1, 0.5) = -1
  EXPECT_EQ(signs[1], 1);   // w·(0.3, -0.7) = 0.3
}

TEST(CccpSigns, ZeroDecisionValueIsPositive) {
  data::UserData u;
  u.samples = {{0.0, 1.0}};
  u.true_labels = {1};
  u.revealed = {false};
  const auto ctx = PlosUserContext::from_user(u);
  EXPECT_EQ(cccp_signs(ctx, Vector{1.0, 0.0})[0], 1);
}

TEST(MostViolated, SelectsOnlyMarginViolators) {
  // With large weights every margin exceeds 1 and nothing is selected.
  const auto user = small_user();
  const auto ctx = PlosUserContext::from_user(user);
  Vector w{10.0, -10.0};
  const auto signs = cccp_signs(ctx, w);
  const auto plane = most_violated_constraint(ctx, signs, w, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(plane.offset, 0.0);
  EXPECT_NEAR(linalg::norm(plane.s), 0.0, 1e-12);
}

TEST(MostViolated, ZeroWeightsSelectEverything) {
  const auto user = small_user();
  const auto ctx = PlosUserContext::from_user(user);
  const Vector w{0.0, 0.0};
  const auto signs = cccp_signs(ctx, w);
  const auto plane = most_violated_constraint(ctx, signs, w, 2.0, 1.0);
  // offset = (Cl*2 + Cu*2)/4 = (4 + 2)/4 = 1.5.
  EXPECT_DOUBLE_EQ(plane.offset, 1.5);
}

TEST(MostViolated, WeightsClAndCuEnterSeparately) {
  const auto user = small_user();
  const auto ctx = PlosUserContext::from_user(user);
  const Vector w{0.0, 0.0};
  const auto signs = cccp_signs(ctx, w);
  const auto p1 = most_violated_constraint(ctx, signs, w, 4.0, 0.0);
  EXPECT_DOUBLE_EQ(p1.offset, 2.0);  // only labeled terms
  const auto p2 = most_violated_constraint(ctx, signs, w, 0.0, 4.0);
  EXPECT_DOUBLE_EQ(p2.offset, 2.0);  // only unlabeled terms
}

TEST(ConstraintViolationAndSlack, Formulas) {
  CuttingPlane plane;
  plane.s = {1.0, 0.0};
  plane.offset = 2.0;
  const Vector w{0.5, 0.0};
  EXPECT_DOUBLE_EQ(constraint_violation(plane, w, 0.25), 2.0 - 0.5 - 0.25);

  CuttingPlane weaker;
  weaker.s = {2.0, 0.0};
  weaker.offset = 0.2;
  EXPECT_DOUBLE_EQ(optimal_slack({plane, weaker}, w), 1.5);
  EXPECT_DOUBLE_EQ(optimal_slack({weaker}, w), 0.0);  // clamped at zero
  EXPECT_DOUBLE_EQ(optimal_slack({}, w), 0.0);
}

// Property: Eq. 14's greedy selection yields the subset-c constraint with
// the largest violation b_c − s_c·w among ALL 2^m subsets.
class MostViolatedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MostViolatedProperty, BeatsAllSubsets) {
  rng::Engine engine(GetParam() * 17 + 5);
  const std::size_t m = 1 + static_cast<std::size_t>(engine.uniform_int(0, 9));
  const std::size_t dim = 2;

  data::UserData u;
  for (std::size_t i = 0; i < m; ++i) {
    u.samples.push_back(engine.gaussian_vector(dim));
    u.true_labels.push_back(engine.bernoulli(0.5) ? 1 : -1);
    u.revealed.push_back(engine.bernoulli(0.5));
  }
  const auto ctx = PlosUserContext::from_user(u);
  const Vector w = engine.gaussian_vector(dim);
  const auto signs = cccp_signs(ctx, w);
  const double cl = engine.uniform(0.1, 3.0);
  const double cu = engine.uniform(0.1, 3.0);

  const auto best = most_violated_constraint(ctx, signs, w, cl, cu);
  const double best_violation = best.offset - linalg::dot(best.s, w);

  // Enumerate all subsets.
  for (std::size_t mask = 0; mask < (std::size_t{1} << m); ++mask) {
    Vector s(dim, 0.0);
    double offset = 0.0;
    std::size_t unlabeled_pos = 0;
    for (std::size_t i = 0; i < m; ++i) {
      const bool is_labeled = u.revealed[i];
      double coeff = 0.0;
      if (is_labeled) {
        coeff = cl * static_cast<double>(u.true_labels[i]);
      } else {
        coeff = cu * static_cast<double>(signs[unlabeled_pos]);
      }
      if (!is_labeled) ++unlabeled_pos;
      if (mask & (std::size_t{1} << i)) {
        linalg::axpy(coeff, u.samples[i], s);
        offset += is_labeled ? cl : cu;
      }
    }
    linalg::scale(s, 1.0 / static_cast<double>(m));
    offset /= static_cast<double>(m);
    EXPECT_LE(offset - linalg::dot(s, w), best_violation + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MostViolatedProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

data::UserData gaussian_user(rng::Engine& engine, std::size_t per_class,
                             double gap, bool reveal_none = true) {
  data::UserData u;
  for (std::size_t i = 0; i < per_class; ++i) {
    u.samples.push_back({gap + engine.gaussian(0.0, 0.4),
                         engine.gaussian(0.0, 0.4), 1.0});
    u.true_labels.push_back(1);
    u.samples.push_back({-gap + engine.gaussian(0.0, 0.4),
                         engine.gaussian(0.0, 0.4), 1.0});
    u.true_labels.push_back(-1);
  }
  u.revealed.assign(u.num_samples(), !reveal_none);
  return u;
}

TEST(LocalDeviationFit, ClassifiesSeparableDataWithTrueSigns) {
  rng::Engine engine(501);
  const auto user = gaussian_user(engine, 30, 3.0);
  const auto ctx = PlosUserContext::from_user(user);
  const linalg::Vector w0{0.05, 0.0, 0.0};  // weak but correctly oriented
  std::vector<int> signs;
  for (std::size_t i : ctx.unlabeled) signs.push_back(user.true_labels[i]);

  const auto fit =
      fit_local_deviation(ctx, signs, w0, /*lambda_over_t=*/1.0, 10.0, 1.0,
                          1e-3, 100);
  for (std::size_t i = 0; i < user.num_samples(); ++i) {
    const int predicted =
        linalg::dot(fit.weights, user.samples[i]) >= 0.0 ? 1 : -1;
    EXPECT_EQ(predicted, user.true_labels[i]);
  }
  EXPECT_GE(fit.objective, 0.0);
}

TEST(LocalDeviationFit, EmptyUserReturnsGlobalWeights) {
  data::UserData empty;
  const auto ctx = PlosUserContext::from_user(empty);
  const linalg::Vector w0{1.0, -2.0};
  const auto fit = fit_local_deviation(ctx, {}, w0, 1.0, 10.0, 1.0, 1e-3, 50);
  EXPECT_TRUE(linalg::approx_equal(fit.weights, w0, 0.0));
  EXPECT_DOUBLE_EQ(fit.objective, 0.0);
}

TEST(LocalDeviationFit, ObjectiveBeatsZeroDeviation) {
  // The fit minimizes (λ/T)||v||² + ξ; v = 0 is feasible, so the optimal
  // objective can never exceed the slack of the raw global weights.
  rng::Engine engine(502);
  const auto user = gaussian_user(engine, 25, 2.0);
  const auto ctx = PlosUserContext::from_user(user);
  const linalg::Vector w0 = engine.gaussian_vector(3, 0.0, 0.1);
  const auto signs = cccp_signs(ctx, w0);

  const auto fit = fit_local_deviation(ctx, signs, w0, 2.0, 10.0, 1.0,
                                       1e-3, 100);
  // ξ at v=0 equals the most violated constraint's violation at w0.
  const auto plane = most_violated_constraint(ctx, signs, w0, 10.0, 1.0);
  const double zero_dev_objective =
      std::max(0.0, plane.offset - linalg::dot(plane.s, w0));
  EXPECT_LE(fit.objective, zero_dev_objective + 1e-4);
}

TEST(ClusterInitialSigns, RecoversCleanClusterStructure) {
  // w0 classifies at chance on this user; the user's own two clean blobs
  // plus polarity alignment should produce near-perfect signs.
  rng::Engine engine(503);
  const auto user = gaussian_user(engine, 40, 3.0);
  const auto ctx = PlosUserContext::from_user(user);
  // Mostly-correct but weak global orientation.
  const linalg::Vector w0{0.03, 0.01, 0.0};
  const auto signs = cluster_initial_signs(ctx, w0, 10.0, 10.0, 1.0, 7);
  std::size_t correct = 0;
  for (std::size_t k = 0; k < ctx.unlabeled.size(); ++k) {
    if (signs[k] == user.true_labels[ctx.unlabeled[k]]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) /
                static_cast<double>(ctx.unlabeled.size()),
            0.95);
}

TEST(ClusterInitialSigns, TinyUsersFallBackToWeightSigns) {
  data::UserData u;
  u.samples = {{1.0, 1.0}, {-1.0, 1.0}};
  u.true_labels = {1, -1};
  u.revealed = {false, false};
  const auto ctx = PlosUserContext::from_user(u);
  const linalg::Vector w0{1.0, 0.0};
  const auto signs = cluster_initial_signs(ctx, w0, 1.0, 10.0, 1.0, 7);
  EXPECT_EQ(signs, cccp_signs(ctx, w0));
}

TEST(ClusterInitialSigns, RejectsLabeledUsers) {
  rng::Engine engine(504);
  const auto user = gaussian_user(engine, 5, 2.0, /*reveal_none=*/false);
  const auto ctx = PlosUserContext::from_user(user);
  EXPECT_THROW(
      cluster_initial_signs(ctx, linalg::Vector{0.0, 0.0, 0.0}, 1.0, 10.0,
                            1.0, 7),
      PreconditionError);
}

TEST(MostViolated, SignsSizeMismatchThrows) {
  const auto user = small_user();
  const auto ctx = PlosUserContext::from_user(user);
  const Vector w{0.0, 0.0};
  const std::vector<int> wrong_signs{1};
  EXPECT_THROW(most_violated_constraint(ctx, wrong_signs, w, 1.0, 1.0),
               PreconditionError);
}

}  // namespace
}  // namespace plos::core
