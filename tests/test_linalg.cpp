// Unit and property tests for the dense linear algebra substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "rng/engine.hpp"

namespace plos::linalg {
namespace {

TEST(Vector, DotBasic) {
  const Vector a{1.0, 2.0, 3.0};
  const Vector b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0 - 10.0 + 18.0);
}

TEST(Vector, DotEmptyIsZero) {
  EXPECT_DOUBLE_EQ(dot(Vector{}, Vector{}), 0.0);
}

TEST(Vector, DotSizeMismatchThrows) {
  EXPECT_THROW(dot(Vector{1.0}, Vector{1.0, 2.0}), PreconditionError);
}

TEST(Vector, NormAndSquaredNorm) {
  const Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(squared_norm(a), 25.0);
  EXPECT_DOUBLE_EQ(norm(a), 5.0);
}

TEST(Vector, SquaredDistance) {
  EXPECT_DOUBLE_EQ(squared_distance(Vector{1.0, 2.0}, Vector{4.0, 6.0}), 25.0);
}

TEST(Vector, AxpyAccumulates) {
  Vector y{1.0, 1.0};
  axpy(2.0, Vector{3.0, -1.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(Vector, ScaleAndScaled) {
  Vector x{1.0, -2.0};
  scale(x, -3.0);
  EXPECT_DOUBLE_EQ(x[0], -3.0);
  EXPECT_DOUBLE_EQ(x[1], 6.0);
  const Vector y = scaled(x, 0.5);
  EXPECT_DOUBLE_EQ(y[0], -1.5);
  EXPECT_DOUBLE_EQ(x[0], -3.0);  // source untouched
}

TEST(Vector, AddSub) {
  const Vector a{1.0, 2.0}, b{3.0, 5.0};
  EXPECT_EQ(add(a, b), (Vector{4.0, 7.0}));
  EXPECT_EQ(sub(b, a), (Vector{2.0, 3.0}));
}

TEST(Vector, SumMean) {
  EXPECT_DOUBLE_EQ(sum(Vector{1.0, 2.0, 3.0}), 6.0);
  EXPECT_DOUBLE_EQ(mean(Vector{1.0, 2.0, 3.0}), 2.0);
  EXPECT_THROW(mean(Vector{}), PreconditionError);
}

TEST(Vector, ApproxEqual) {
  EXPECT_TRUE(approx_equal(Vector{1.0, 2.0}, Vector{1.0 + 1e-10, 2.0}, 1e-9));
  EXPECT_FALSE(approx_equal(Vector{1.0}, Vector{1.1}, 1e-3));
  EXPECT_FALSE(approx_equal(Vector{1.0}, Vector{1.0, 2.0}, 1.0));
}

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
  EXPECT_THROW(m(2, 0), PreconditionError);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1.0, 2.0}, {3.0}}), PreconditionError);
}

TEST(Matrix, IdentityMatvec) {
  const Matrix eye = Matrix::identity(3);
  const Vector x{1.0, 2.0, 3.0};
  EXPECT_EQ(eye.matvec(x), x);
}

TEST(Matrix, MatvecKnown) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(m.matvec(Vector{1.0, 1.0}), (Vector{3.0, 7.0}));
}

TEST(Matrix, MatvecTransposedMatchesTranspose) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0, 0.0}, {3.0, 4.0, -1.0}});
  const Vector x{2.0, -1.0};
  EXPECT_EQ(m.matvec_transposed(x), m.transposed().matvec(x));
}

TEST(Matrix, MatmulKnown) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const Matrix b = Matrix::from_rows({{0.0, 1.0}, {1.0, 0.0}});
  const Matrix c = a.matmul(b);
  EXPECT_TRUE(c.approx_equal(Matrix::from_rows({{2.0, 1.0}, {4.0, 3.0}}), 0.0));
}

TEST(Matrix, RowGramSymmetricPsd) {
  rng::Engine engine(5);
  Matrix m(4, 6);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 6; ++j) m(i, j) = engine.gaussian();
  }
  const Matrix g = m.row_gram();
  EXPECT_TRUE(g.approx_equal(g.transposed(), 1e-12));
  // PSD: x^T G x >= 0 for random probes.
  for (int trial = 0; trial < 10; ++trial) {
    const Vector x = engine.gaussian_vector(4);
    EXPECT_GE(dot(x, g.matvec(x)), -1e-10);
  }
}

TEST(Cholesky, FactorsKnownSpd) {
  const Matrix a = Matrix::from_rows({{4.0, 2.0}, {2.0, 3.0}});
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  EXPECT_TRUE(l->matmul(l->transposed()).approx_equal(a, 1e-12));
}

TEST(Cholesky, RejectsIndefinite) {
  const Matrix a = Matrix::from_rows({{0.0, 1.0}, {1.0, 0.0}});
  EXPECT_FALSE(cholesky(a).has_value());
}

TEST(Cholesky, SolveRecoversSolution) {
  const Matrix a = Matrix::from_rows({{4.0, 2.0}, {2.0, 3.0}});
  const Vector x_true{1.0, -2.0};
  const Vector b = a.matvec(x_true);
  const auto x = solve_spd(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_TRUE(approx_equal(*x, x_true, 1e-10));
}

TEST(Eigen, DiagonalMatrix) {
  const Matrix a = Matrix::from_rows({{3.0, 0.0}, {0.0, 1.0}});
  const auto eig = symmetric_eigen(a);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-10);
}

TEST(Eigen, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  const Matrix a = Matrix::from_rows({{2.0, 1.0}, {1.0, 2.0}});
  const auto eig = symmetric_eigen(a);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-10);
}

// Property sweep: random symmetric matrices of several sizes satisfy
// A v = λ v, orthonormal eigenvectors, and trace preservation.
class EigenProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenProperty, ReconstructsAndOrthonormal) {
  const std::size_t n = GetParam();
  rng::Engine engine(100 + n);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      a(i, j) = a(j, i) = engine.gaussian();
    }
  }
  const auto eig = symmetric_eigen(a);

  double trace = 0.0, eigsum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    trace += a(i, i);
    eigsum += eig.values[i];
  }
  EXPECT_NEAR(trace, eigsum, 1e-8 * (1.0 + std::abs(trace)));

  for (std::size_t k = 0; k < n; ++k) {
    Vector v(eig.vectors.row(k).begin(), eig.vectors.row(k).end());
    const Vector av = a.matvec(v);
    const Vector lv = scaled(v, eig.values[k]);
    EXPECT_TRUE(approx_equal(av, lv, 1e-7))
        << "eigenpair " << k << " of size " << n;
    for (std::size_t k2 = 0; k2 <= k; ++k2) {
      const double expected = (k == k2) ? 1.0 : 0.0;
      EXPECT_NEAR(dot(eig.vectors.row(k), eig.vectors.row(k2)), expected, 1e-9);
    }
  }
  // Values ascend.
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_LE(eig.values[k - 1], eig.values[k] + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenProperty,
                         ::testing::Values<std::size_t>(1, 2, 3, 5, 8, 13, 21));

// Property sweep: Cholesky solve on random SPD systems.
class CholeskyProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskyProperty, SolvesRandomSpdSystems) {
  const std::size_t n = GetParam();
  rng::Engine engine(200 + n);
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = engine.gaussian();
  }
  Matrix a = b.matmul(b.transposed());
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);

  const Vector x_true = engine.gaussian_vector(n);
  const auto x = solve_spd(a, a.matvec(x_true));
  ASSERT_TRUE(x.has_value());
  EXPECT_TRUE(approx_equal(*x, x_true, 1e-7));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyProperty,
                         ::testing::Values<std::size_t>(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace plos::linalg
