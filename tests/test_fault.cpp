// Tests for the fault-injection layer and the fault-tolerant distributed
// trainer: counter-based schedule determinism (including across thread
// counts), drop/offline/corrupt accounting, straggler/deadline semantics,
// and convergence under 20% dropout.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "core/distributed_plos.hpp"
#include "core/evaluation.hpp"
#include "data/labeling.hpp"
#include "data/synthetic.hpp"
#include "net/fault.hpp"
#include "net/serialize.hpp"
#include "net/simnet.hpp"
#include "rng/engine.hpp"

namespace plos::net {
namespace {

// ---- FaultModel schedule --------------------------------------------------

TEST(FaultModel, DisabledModelNeverFaults) {
  const FaultModel inert;
  EXPECT_FALSE(inert.enabled());
  for (std::uint64_t round = 0; round < 50; ++round) {
    EXPECT_FALSE(inert.offline(round, 0));
    EXPECT_FALSE(inert.straggler(round, 0));
    EXPECT_FALSE(inert.drop(round, 0, Direction::kUplink, 0));
    EXPECT_FALSE(inert.corrupt(round, 0, Direction::kDownlink, 0));
    EXPECT_EQ(inert.time_multiplier(round, 0), 1.0);
  }
}

TEST(FaultModel, DrawsAreReproducible) {
  FaultSpec spec;
  spec.drop_probability = 0.3;
  spec.offline_probability = 0.2;
  spec.straggler_probability = 0.25;
  spec.seed = 7;
  const FaultModel a(spec);
  const FaultModel b(spec);
  for (std::uint64_t round = 0; round < 100; ++round) {
    for (std::size_t device = 0; device < 5; ++device) {
      EXPECT_EQ(a.offline(round, device), b.offline(round, device));
      EXPECT_EQ(a.straggler(round, device), b.straggler(round, device));
      for (int attempt = 0; attempt < 3; ++attempt) {
        EXPECT_EQ(a.drop(round, device, Direction::kUplink, attempt),
                  b.drop(round, device, Direction::kUplink, attempt));
        EXPECT_EQ(a.drop(round, device, Direction::kDownlink, attempt),
                  b.drop(round, device, Direction::kDownlink, attempt));
      }
    }
  }
}

TEST(FaultModel, SeedDecorrelatesSchedules) {
  FaultSpec spec;
  spec.drop_probability = 0.5;
  spec.seed = 1;
  FaultSpec other = spec;
  other.seed = 2;
  const FaultModel a(spec);
  const FaultModel b(other);
  int differences = 0;
  for (std::uint64_t round = 0; round < 400; ++round) {
    if (a.drop(round, 0, Direction::kUplink, 0) !=
        b.drop(round, 0, Direction::kUplink, 0)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 100);  // ~50% expected for independent fair draws
}

TEST(FaultModel, EmpiricalRatesMatchProbabilities) {
  FaultSpec spec;
  spec.drop_probability = 0.2;
  spec.offline_probability = 0.1;
  spec.seed = 11;
  const FaultModel model(spec);
  int drops = 0, offline = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto round = static_cast<std::uint64_t>(i);
    drops += model.drop(round, i % 7, Direction::kUplink, 0) ? 1 : 0;
    offline += model.offline(round, i % 7) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.2, 0.02);
  EXPECT_NEAR(static_cast<double>(offline) / n, 0.1, 0.02);
}

TEST(FaultModel, DirectionsAndAttemptsAreIndependentDraws) {
  FaultSpec spec;
  spec.drop_probability = 0.5;
  spec.seed = 13;
  const FaultModel model(spec);
  int up_vs_down = 0, first_vs_retry = 0;
  for (std::uint64_t round = 0; round < 400; ++round) {
    if (model.drop(round, 0, Direction::kUplink, 0) !=
        model.drop(round, 0, Direction::kDownlink, 0)) {
      ++up_vs_down;
    }
    if (model.drop(round, 0, Direction::kUplink, 0) !=
        model.drop(round, 0, Direction::kUplink, 1)) {
      ++first_vs_retry;
    }
  }
  EXPECT_GT(up_vs_down, 100);
  EXPECT_GT(first_vs_retry, 100);
}

TEST(FaultModel, StragglerMultiplierAndDeadline) {
  FaultSpec spec;
  spec.straggler_probability = 1.0;
  spec.straggler_slowdown = 6.0;
  spec.seed = 17;
  const FaultModel no_deadline(spec);
  EXPECT_TRUE(no_deadline.straggler(0, 0));
  EXPECT_EQ(no_deadline.time_multiplier(0, 0), 6.0);
  // Without a deadline the server waits: nobody misses.
  EXPECT_FALSE(no_deadline.misses_deadline(0, 0));
  spec.round_deadline_s = 2.0;
  const FaultModel with_deadline(spec);
  EXPECT_TRUE(with_deadline.misses_deadline(0, 0));
}

TEST(FaultModel, InvalidSpecThrows) {
  FaultSpec spec;
  spec.drop_probability = 1.5;
  EXPECT_THROW(FaultModel{spec}, PreconditionError);
  spec = {};
  spec.straggler_slowdown = 0.5;
  spec.straggler_probability = 0.1;
  EXPECT_THROW(FaultModel{spec}, PreconditionError);
  spec = {};
  spec.max_retries = -1;
  spec.drop_probability = 0.1;
  EXPECT_THROW(FaultModel{spec}, PreconditionError);
}

// ---- SimNetwork fault accounting -----------------------------------------

// SimNetwork holds a mutex and is neither movable nor copyable, so the
// helper hands back a unique_ptr.
std::unique_ptr<SimNetwork> make_network(std::size_t devices,
                                         const FaultSpec& spec) {
  auto net =
      std::make_unique<SimNetwork>(devices, DeviceProfile{}, LinkProfile{});
  net->set_fault_model(FaultModel(spec));
  return net;
}

std::vector<std::uint8_t> test_frame(std::size_t payload_bytes = 64) {
  const std::vector<std::uint8_t> payload(payload_bytes, 0xAB);
  return frame_message(payload);
}

TEST(SimNetworkFaults, AlwaysDropExhaustsRetriesAndFails) {
  FaultSpec spec;
  spec.drop_probability = 1.0;
  spec.max_retries = 2;
  const auto net = make_network(2, spec);
  const auto frame = test_frame();
  const auto outcome = net->transmit_to_server(0, frame);
  EXPECT_FALSE(outcome.delivered);
  EXPECT_EQ(outcome.attempts, 3);  // 1 try + 2 retries
  const auto counters = net->fault_counters();
  EXPECT_EQ(counters.uplink_dropped, 3u);
  EXPECT_EQ(counters.retries, 2u);
  EXPECT_EQ(counters.failed_messages, 1u);
  // Sender paid for every attempt; the server never decoded a byte.
  EXPECT_EQ(net->device_metrics(0).bytes_sent, 3 * frame.size());
  EXPECT_EQ(net->server_metrics().bytes_received, 0u);
}

TEST(SimNetworkFaults, AlwaysCorruptIsDetectedByCrcAndFails) {
  FaultSpec spec;
  spec.corrupt_probability = 1.0;
  spec.max_retries = 1;
  const auto net = make_network(1, spec);
  const auto frame = test_frame();
  const auto outcome = net->transmit_to_device(0, frame);
  EXPECT_FALSE(outcome.delivered);
  EXPECT_EQ(outcome.attempts, 2);
  const auto counters = net->fault_counters();
  EXPECT_EQ(counters.downlink_corrupted, 2u);
  EXPECT_EQ(counters.failed_messages, 1u);
  // Corrupt frames traveled the whole way: both ends are charged.
  EXPECT_EQ(net->device_metrics(0).bytes_received, 2 * frame.size());
  EXPECT_EQ(net->server_metrics().bytes_sent, 2 * frame.size());
}

TEST(SimNetworkFaults, FaultFreeTransmitMatchesPlainSend) {
  SimNetwork faulty(2, DeviceProfile{}, LinkProfile{});  // no fault model
  SimNetwork plain(2, DeviceProfile{}, LinkProfile{});
  const auto frame = test_frame();
  const auto outcome = faulty.transmit_to_server(1, frame);
  EXPECT_TRUE(outcome.delivered);
  EXPECT_EQ(outcome.attempts, 1);
  plain.send_to_server(1, frame.size());
  EXPECT_EQ(faulty.device_metrics(1).bytes_sent,
            plain.device_metrics(1).bytes_sent);
  EXPECT_EQ(faulty.server_metrics().bytes_received,
            plain.server_metrics().bytes_received);
  EXPECT_EQ(faulty.fault_counters().failed_messages, 0u);
}

TEST(SimNetworkFaults, TransmitOutcomesKeyOnRoundCounter) {
  FaultSpec spec;
  spec.drop_probability = 0.5;
  spec.max_retries = 0;
  spec.seed = 23;
  // Two identical networks stepping through rounds in lockstep agree on
  // every outcome; their drop pattern varies over rounds.
  const auto a = make_network(1, spec);
  const auto b = make_network(1, spec);
  const auto frame = test_frame();
  int delivered = 0;
  for (int round = 0; round < 40; ++round) {
    const auto oa = a->transmit_to_server(0, frame);
    const auto ob = b->transmit_to_server(0, frame);
    EXPECT_EQ(oa.delivered, ob.delivered);
    delivered += oa.delivered ? 1 : 0;
    a->end_round();
    b->end_round();
  }
  EXPECT_GT(delivered, 5);
  EXPECT_LT(delivered, 35);
}

TEST(SimNetworkFaults, StragglerScalesComputeAndDeadlineCapsRound) {
  FaultSpec spec;
  spec.straggler_probability = 1.0;
  spec.straggler_slowdown = 10.0;
  const auto slow = make_network(1, spec);
  slow->account_device_compute(0, 0.1);  // 0.1 * 10 cpu_slowdown * 10 straggler
  EXPECT_DOUBLE_EQ(slow->device_metrics(0).compute_seconds, 10.0);
  slow->end_round();
  EXPECT_DOUBLE_EQ(slow->total_simulated_seconds(), 10.0);

  spec.round_deadline_s = 3.0;
  const auto capped = make_network(1, spec);
  capped->account_device_compute(0, 0.1);
  capped->end_round();
  // The device took 10 simulated seconds but the server moved on at 3.
  EXPECT_DOUBLE_EQ(capped->total_simulated_seconds(), 3.0);
}

TEST(SimNetworkFaults, PerDeviceLinkOverrides) {
  SimNetwork net(2, DeviceProfile{}, LinkProfile{0.01, 1024.0});
  LinkProfile slow_link;
  slow_link.latency_s = 0.05;
  slow_link.bandwidth_kbps = 256.0;
  net.set_device_link(1, slow_link);
  EXPECT_DOUBLE_EQ(net.device_link(0).bandwidth_kbps, 1024.0);
  EXPECT_DOUBLE_EQ(net.device_link(1).bandwidth_kbps, 256.0);
  // 1 KiB over the slow link: 0.05 + 8/256 s; over the default: 0.01 + 8/1024.
  net.send_to_device(1, 1024);
  net.end_round();
  EXPECT_NEAR(net.total_simulated_seconds(), 0.05 + 8.0 / 256.0, 1e-12);
  EXPECT_THROW(net.set_device_link(5, slow_link), PreconditionError);
  LinkProfile bad;
  bad.bandwidth_kbps = 0.0;
  EXPECT_THROW(net.set_device_link(0, bad), PreconditionError);
}

TEST(SimNetworkFaults, DeviceMetricsOutOfRangeThrows) {
  SimNetwork net(2, DeviceProfile{}, LinkProfile{});
  EXPECT_THROW(net.device_metrics(2), PreconditionError);
  EXPECT_THROW(net.device_link(2), PreconditionError);
}

// ---- Retry backoff jitter -------------------------------------------------

TEST(FaultModel, RetryBackoffMultiplierIdentityWithoutJitter) {
  // Disabled model and jitter-free spec are both bitwise identities.
  const FaultModel inert;
  EXPECT_EQ(inert.retry_backoff_multiplier(0, 0, Direction::kUplink, 1), 1.0);
  FaultSpec spec;
  spec.drop_probability = 0.5;  // enabled, but no jitter configured
  spec.seed = 3;
  const FaultModel model(spec);
  for (int attempt = 1; attempt <= 4; ++attempt) {
    EXPECT_EQ(model.retry_backoff_multiplier(2, 1, Direction::kDownlink,
                                             attempt),
              1.0);
  }
}

TEST(FaultModel, RetryBackoffMultiplierJitterIsBoundedAndDeterministic) {
  FaultSpec spec;
  spec.drop_probability = 0.5;
  spec.retry_jitter = 0.4;
  spec.seed = 11;
  const FaultModel model(spec);
  const FaultModel twin(spec);
  bool saw_distinct = false;
  double first = 0.0;
  for (std::uint64_t round = 0; round < 4; ++round) {
    for (std::size_t device = 0; device < 4; ++device) {
      for (int attempt = 1; attempt <= 3; ++attempt) {
        const double m = model.retry_backoff_multiplier(
            round, device, Direction::kUplink, attempt);
        EXPECT_GE(m, 1.0 - spec.retry_jitter);
        EXPECT_LT(m, 1.0 + spec.retry_jitter);
        // Pure counter draw: a twin model replays it exactly.
        EXPECT_EQ(m, twin.retry_backoff_multiplier(round, device,
                                                   Direction::kUplink,
                                                   attempt));
        if (round == 0 && device == 0 && attempt == 1) first = m;
        if (m != first) saw_distinct = true;
      }
    }
  }
  EXPECT_TRUE(saw_distinct);  // the draws actually vary across the key space
}

TEST(FaultModel, CounterUniformExternalKindsAreIndependent) {
  // The async latency jitter keys its family from 0x10 up; distinct kinds
  // over the same (seed, round, device) key must decorrelate.
  const double a = counter_uniform(42, 0x10, 3, 1, 0, 0);
  const double b = counter_uniform(42, 0x11, 3, 1, 0, 0);
  EXPECT_GE(a, 0.0);
  EXPECT_LT(a, 1.0);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, counter_uniform(42, 0x10, 3, 1, 0, 0));
}

}  // namespace
}  // namespace plos::net

namespace plos::core {
namespace {

data::MultiUserDataset make_population(std::uint64_t seed,
                                       std::size_t num_users = 6) {
  data::SyntheticSpec spec;
  spec.num_users = num_users;
  spec.points_per_class = 30;
  spec.max_rotation = 0.5;
  rng::Engine engine(seed);
  auto dataset = data::generate_synthetic(spec, engine);
  std::vector<std::size_t> providers;
  for (std::size_t t = 0; t < num_users; t += 2) providers.push_back(t);
  data::reveal_labels(dataset, providers, 0.3, engine);
  return dataset;
}

DistributedPlosOptions fast_options(int num_threads = 1) {
  DistributedPlosOptions options;
  options.params.lambda = 100.0;
  options.params.cl = 10.0;
  options.params.cu = 1.0;
  options.cutting_plane.epsilon = 1e-2;
  options.cccp.max_iterations = 3;
  options.max_admm_iterations = 100;
  options.num_threads = num_threads;
  return options;
}

net::FaultSpec mixed_fault_spec() {
  net::FaultSpec spec;
  spec.drop_probability = 0.15;
  spec.corrupt_probability = 0.05;
  spec.offline_probability = 0.1;
  spec.straggler_probability = 0.1;
  // Any straggler misses when a deadline is set (the decision keys on the
  // schedule, not on measured time); the magnitude only caps the clock.
  spec.round_deadline_s = 5.0;
  spec.seed = 31;
  return spec;
}

struct FaultyRun {
  DistributedPlosResult result;
  std::vector<std::size_t> device_bytes_sent;
  std::vector<std::size_t> device_bytes_received;
  std::size_t server_bytes_sent = 0;
  std::size_t server_bytes_received = 0;
  std::size_t uplink_messages = 0;
  net::FaultCounters counters;
};

FaultyRun run_faulty(const data::MultiUserDataset& dataset,
                     const net::FaultSpec& spec, int num_threads) {
  net::SimNetwork network(dataset.num_users(), net::DeviceProfile{},
                          net::LinkProfile{});
  network.set_fault_model(net::FaultModel(spec));
  FaultyRun run;
  run.result =
      train_distributed_plos(dataset, fast_options(num_threads), &network);
  for (std::size_t t = 0; t < dataset.num_users(); ++t) {
    run.device_bytes_sent.push_back(network.device_metrics(t).bytes_sent);
    run.device_bytes_received.push_back(
        network.device_metrics(t).bytes_received);
    run.uplink_messages += network.device_metrics(t).messages_sent;
  }
  run.server_bytes_sent = network.server_metrics().bytes_sent;
  run.server_bytes_received = network.server_metrics().bytes_received;
  run.counters = network.fault_counters();
  return run;
}

TEST(FaultTolerantDistributedPlos, DeterministicAcrossThreadCounts) {
  // The core acceptance criterion: with faults enabled, models, per-device
  // byte ledgers, fault counters, and the participation trace are bitwise
  // identical for every thread count.
  const auto dataset = make_population(41);
  const auto reference = run_faulty(dataset, mixed_fault_spec(), 1);
  // The faults actually fired — otherwise this test proves nothing.
  EXPECT_GT(reference.counters.downlink_dropped +
                reference.counters.uplink_dropped,
            0u);
  EXPECT_GT(reference.result.diagnostics.devices_offline_total, 0u);
  for (const int threads : {2, 4, 8}) {
    const auto run = run_faulty(dataset, mixed_fault_spec(), threads);
    EXPECT_TRUE(
        linalg::approx_equal(reference.result.model.global_weights,
                             run.result.model.global_weights, 0.0))
        << "threads=" << threads;
    for (std::size_t t = 0; t < dataset.num_users(); ++t) {
      EXPECT_TRUE(
          linalg::approx_equal(reference.result.model.user_deviations[t],
                               run.result.model.user_deviations[t], 0.0))
          << "threads=" << threads << " device=" << t;
      EXPECT_EQ(reference.device_bytes_sent[t], run.device_bytes_sent[t]);
      EXPECT_EQ(reference.device_bytes_received[t],
                run.device_bytes_received[t]);
    }
    EXPECT_EQ(reference.server_bytes_sent, run.server_bytes_sent);
    EXPECT_EQ(reference.server_bytes_received, run.server_bytes_received);
    EXPECT_EQ(reference.counters.downlink_dropped,
              run.counters.downlink_dropped);
    EXPECT_EQ(reference.counters.uplink_dropped, run.counters.uplink_dropped);
    EXPECT_EQ(reference.counters.downlink_corrupted,
              run.counters.downlink_corrupted);
    EXPECT_EQ(reference.counters.uplink_corrupted,
              run.counters.uplink_corrupted);
    EXPECT_EQ(reference.counters.retries, run.counters.retries);
    EXPECT_EQ(reference.counters.failed_messages,
              run.counters.failed_messages);
    EXPECT_EQ(reference.result.diagnostics.participation_trace,
              run.result.diagnostics.participation_trace);
    EXPECT_EQ(reference.result.diagnostics.objective_trace,
              run.result.diagnostics.objective_trace);
  }
}

TEST(FaultTolerantDistributedPlos, TwentyPercentDropoutStaysWithinTwoPercent) {
  // Acceptance criterion: 20% per-round device dropout (churn) costs at
  // most 2 accuracy points against the fault-free run.
  const auto dataset = make_population(42, 8);
  net::SimNetwork clean_net(8, net::DeviceProfile{}, net::LinkProfile{});
  const auto clean =
      train_distributed_plos(dataset, fast_options(), &clean_net);

  net::FaultSpec spec;
  spec.offline_probability = 0.2;
  spec.seed = 43;
  const auto faulty = run_faulty(dataset, spec, 1);

  const auto clean_report =
      evaluate(dataset, predict_all(dataset, clean.model));
  const auto faulty_report =
      evaluate(dataset, predict_all(dataset, faulty.result.model));
  EXPECT_GT(faulty.result.diagnostics.devices_offline_total, 0u);
  EXPECT_GE(faulty_report.overall, clean_report.overall - 0.02);
}

TEST(FaultTolerantDistributedPlos, ParticipationTraceReflectsChurn) {
  const auto dataset = make_population(44, 8);
  net::FaultSpec spec;
  spec.offline_probability = 0.3;
  spec.seed = 45;
  const auto run = run_faulty(dataset, spec, 1);
  const auto& trace = run.result.diagnostics.participation_trace;
  ASSERT_EQ(trace.size(),
            static_cast<std::size_t>(
                run.result.diagnostics.admm_iterations_total));
  double mean = 0.0;
  bool any_partial = false;
  for (double p : trace) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    mean += p;
    any_partial = any_partial || p < 1.0;
  }
  mean /= static_cast<double>(trace.size());
  EXPECT_TRUE(any_partial);
  EXPECT_NEAR(mean, 0.7, 0.15);
}

TEST(FaultTolerantDistributedPlos, FaultFreeRunHasCleanDiagnostics) {
  const auto dataset = make_population(46);
  net::SimNetwork network(6, net::DeviceProfile{}, net::LinkProfile{});
  const auto result =
      train_distributed_plos(dataset, fast_options(), &network);
  EXPECT_EQ(result.diagnostics.devices_offline_total, 0u);
  EXPECT_EQ(result.diagnostics.uplink_failures_total, 0u);
  EXPECT_EQ(result.diagnostics.fault_counters.retries, 0u);
  for (double p : result.diagnostics.participation_trace) {
    EXPECT_EQ(p, 1.0);
  }
}

TEST(FaultTolerantDistributedPlos, DeadlineDropsStragglerUploads) {
  const auto dataset = make_population(47, 6);
  net::FaultSpec spec;
  spec.straggler_probability = 0.25;
  spec.straggler_slowdown = 8.0;
  spec.round_deadline_s = 0.5;
  spec.seed = 48;
  const auto run = run_faulty(dataset, spec, 1);
  const auto& diag = run.result.diagnostics;
  EXPECT_GT(diag.deadline_misses_total, 0u);
  // With stragglers as the only fault (no drops, no corruption, no churn),
  // each of the 6 devices uploads once per ADMM iteration — except when it
  // missed the deadline, in which case it never transmits. The bootstrap
  // adds one upload per label provider (3 of 6: devices without revealed
  // labels have no local SVM to contribute). The ledger must show exactly
  // that many uplinks.
  const std::size_t expected =
      3 + 6 * static_cast<std::size_t>(diag.admm_iterations_total) -
      diag.deadline_misses_total;
  EXPECT_EQ(run.uplink_messages, expected);
}

TEST(FaultTolerantDistributedPlos, CorruptionIsRecoveredByRetries) {
  const auto dataset = make_population(49, 6);
  net::FaultSpec spec;
  spec.corrupt_probability = 0.1;
  spec.max_retries = 5;  // enough retries that messages almost always land
  spec.seed = 50;
  const auto run = run_faulty(dataset, spec, 1);
  EXPECT_GT(run.counters.downlink_corrupted + run.counters.uplink_corrupted,
            0u);
  EXPECT_GT(run.counters.retries, 0u);
  // With 5 retries at 10% corruption the failure probability per message is
  // 1e-6; the run should see (virtually) no undelivered messages.
  EXPECT_EQ(run.counters.failed_messages, 0u);
  const auto report =
      evaluate(dataset, predict_all(dataset, run.result.model));
  EXPECT_GT(report.overall, 0.75);
}

}  // namespace
}  // namespace plos::core
