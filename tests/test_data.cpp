// Tests for dataset containers, labeling policies, the synthetic generator,
// and feature transforms.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/assert.hpp"
#include "data/dataset.hpp"
#include "data/labeling.hpp"
#include "data/synthetic.hpp"
#include "data/transform.hpp"
#include "rng/engine.hpp"

namespace plos::data {
namespace {

using linalg::Vector;

UserData make_user(std::size_t n, int label, std::size_t dim = 2) {
  UserData u;
  for (std::size_t i = 0; i < n; ++i) {
    u.samples.push_back(Vector(dim, static_cast<double>(i)));
    u.true_labels.push_back(label);
  }
  u.revealed.assign(n, false);
  return u;
}

TEST(Dataset, RevealedCountsAndIndices) {
  UserData u = make_user(4, 1);
  u.revealed = {true, false, true, false};
  EXPECT_EQ(u.num_revealed(), 2u);
  EXPECT_TRUE(u.provides_labels());
  EXPECT_EQ(u.revealed_indices(), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(u.hidden_indices(), (std::vector<std::size_t>{1, 3}));
}

TEST(Dataset, LabeledUnlabeledUserSplit) {
  MultiUserDataset d;
  d.users.push_back(make_user(3, 1));
  d.users.push_back(make_user(3, -1));
  d.users[0].revealed[0] = true;
  EXPECT_EQ(d.labeled_users(), (std::vector<std::size_t>{0}));
  EXPECT_EQ(d.unlabeled_users(), (std::vector<std::size_t>{1}));
  EXPECT_EQ(d.total_samples(), 6u);
  EXPECT_EQ(d.dim(), 2u);
}

TEST(Dataset, InvariantViolationsThrow) {
  MultiUserDataset d;
  d.users.push_back(make_user(2, 1));
  d.users[0].true_labels[0] = 0;  // invalid label
  EXPECT_THROW(d.check_invariants(), PreconditionError);

  d.users[0].true_labels[0] = 1;
  d.users[0].revealed.pop_back();  // mask size mismatch
  EXPECT_THROW(d.check_invariants(), PreconditionError);
}

TEST(Labeling, HideAllClearsEverything) {
  MultiUserDataset d;
  d.users.push_back(make_user(3, 1));
  d.users[0].revealed = {true, true, true};
  hide_all_labels(d);
  EXPECT_EQ(d.users[0].num_revealed(), 0u);
}

TEST(Labeling, RevealFractionRespectsBudget) {
  MultiUserDataset d;
  UserData u;
  for (int i = 0; i < 50; ++i) {
    u.samples.push_back(Vector{0.0});
    u.true_labels.push_back(i < 25 ? 1 : -1);
  }
  u.revealed.assign(50, false);
  d.users.push_back(std::move(u));

  rng::Engine engine(1);
  reveal_labels(d, {0}, 0.2, engine);
  EXPECT_EQ(d.users[0].num_revealed(), 10u);
}

TEST(Labeling, RevealGuaranteesClassCoverage) {
  MultiUserDataset d;
  UserData u;
  for (int i = 0; i < 40; ++i) {
    u.samples.push_back(Vector{0.0});
    u.true_labels.push_back(i == 0 ? 1 : -1);  // single positive sample
  }
  u.revealed.assign(40, false);
  d.users.push_back(std::move(u));

  rng::Engine engine(2);
  reveal_labels(d, {0}, 0.05, engine);  // budget 2
  bool has_positive = false, has_negative = false;
  for (std::size_t i = 0; i < 40; ++i) {
    if (!d.users[0].revealed[i]) continue;
    (d.users[0].true_labels[i] > 0 ? has_positive : has_negative) = true;
  }
  EXPECT_TRUE(has_positive);
  EXPECT_TRUE(has_negative);
}

TEST(Labeling, OnlyListedProvidersRevealed) {
  MultiUserDataset d;
  d.users.push_back(make_user(10, 1));
  d.users.push_back(make_user(10, -1));
  rng::Engine engine(3);
  reveal_labels(d, {1}, 0.5, engine);
  EXPECT_EQ(d.users[0].num_revealed(), 0u);
  EXPECT_GT(d.users[1].num_revealed(), 0u);
}

TEST(Labeling, ChooseProvidersDistinctAndSorted) {
  MultiUserDataset d;
  for (int i = 0; i < 10; ++i) d.users.push_back(make_user(2, 1));
  rng::Engine engine(4);
  const auto providers = choose_providers(d, 4, engine);
  EXPECT_EQ(providers.size(), 4u);
  for (std::size_t i = 1; i < providers.size(); ++i) {
    EXPECT_LT(providers[i - 1], providers[i]);
  }
  EXPECT_THROW(choose_providers(d, 11, engine), PreconditionError);
}

TEST(Synthetic, ShapeMatchesSpec) {
  SyntheticSpec spec;
  spec.num_users = 5;
  spec.points_per_class = 30;
  rng::Engine engine(5);
  const auto d = generate_synthetic(spec, engine);
  EXPECT_EQ(d.num_users(), 5u);
  EXPECT_EQ(d.dim(), 3u);  // 2-D + bias
  for (const auto& u : d.users) {
    EXPECT_EQ(u.num_samples(), 60u);
    EXPECT_EQ(u.num_revealed(), 0u);
  }
}

TEST(Synthetic, LabelNoiseApproximatelyTenPercent) {
  SyntheticSpec spec;
  spec.num_users = 20;
  spec.points_per_class = 200;
  spec.add_bias_dimension = false;
  rng::Engine engine(6);
  const auto d = generate_synthetic(spec, engine);
  // Count samples whose label disagrees with the class mean they were drawn
  // around: first points_per_class are the +1 class.
  std::size_t flipped = 0, total = 0;
  for (const auto& u : d.users) {
    for (std::size_t i = 0; i < u.num_samples(); ++i) {
      const int generating_class =
          i < spec.points_per_class ? 1 : -1;
      if (u.true_labels[i] != generating_class) ++flipped;
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(flipped) / static_cast<double>(total), 0.10,
              0.02);
}

TEST(Synthetic, RotationMovesClassMeans) {
  SyntheticSpec spec;
  spec.num_users = 2;
  spec.points_per_class = 300;
  spec.max_rotation = std::numbers::pi / 2.0;
  spec.add_bias_dimension = false;
  spec.label_noise = 0.0;
  rng::Engine engine(7);
  const auto d = generate_synthetic(spec, engine);

  // User 0 has rotation 0: +1 mean near (10, 10). User 1 rotated by pi/2:
  // +1 mean near (-10, 10).
  const auto class_mean = [&](const UserData& u) {
    Vector m(2, 0.0);
    for (std::size_t i = 0; i < spec.points_per_class; ++i) {
      linalg::axpy(1.0, u.samples[i], m);
    }
    linalg::scale(m, 1.0 / static_cast<double>(spec.points_per_class));
    return m;
  };
  const Vector m0 = class_mean(d.users[0]);
  const Vector m1 = class_mean(d.users[1]);
  EXPECT_NEAR(m0[0], 10.0, 2.0);
  EXPECT_NEAR(m0[1], 10.0, 2.0);
  EXPECT_NEAR(m1[0], -10.0, 2.0);
  EXPECT_NEAR(m1[1], 10.0, 2.0);
}

TEST(Synthetic, Rotate2dKnownAngles) {
  const Vector x{1.0, 0.0};
  const Vector y = rotate2d(x, std::numbers::pi / 2.0);
  EXPECT_NEAR(y[0], 0.0, 1e-12);
  EXPECT_NEAR(y[1], 1.0, 1e-12);
  EXPECT_THROW(rotate2d(Vector{1.0, 2.0, 3.0}, 0.1), PreconditionError);
}

TEST(Synthetic, DeterministicGivenSeed) {
  SyntheticSpec spec;
  spec.num_users = 3;
  spec.points_per_class = 10;
  rng::Engine e1(8), e2(8);
  const auto d1 = generate_synthetic(spec, e1);
  const auto d2 = generate_synthetic(spec, e2);
  for (std::size_t t = 0; t < 3; ++t) {
    for (std::size_t i = 0; i < d1.users[t].num_samples(); ++i) {
      EXPECT_TRUE(linalg::approx_equal(d1.users[t].samples[i],
                                       d2.users[t].samples[i], 0.0));
      EXPECT_EQ(d1.users[t].true_labels[i], d2.users[t].true_labels[i]);
    }
  }
}

TEST(Standardizer, ZeroMeanUnitVariance) {
  MultiUserDataset d;
  UserData u;
  rng::Engine engine(9);
  for (int i = 0; i < 500; ++i) {
    u.samples.push_back({engine.gaussian(5.0, 3.0), engine.gaussian(-2.0, 0.5)});
    u.true_labels.push_back(1);
  }
  u.revealed.assign(500, false);
  d.users.push_back(std::move(u));

  const auto s = Standardizer::fit(d);
  s.apply_in_place(d);
  const auto refit = Standardizer::fit(d);
  EXPECT_NEAR(refit.mean()[0], 0.0, 1e-9);
  EXPECT_NEAR(refit.mean()[1], 0.0, 1e-9);
  EXPECT_NEAR(refit.scale()[0], 1.0, 1e-9);
  EXPECT_NEAR(refit.scale()[1], 1.0, 1e-9);
}

TEST(Standardizer, ConstantDimensionGetsUnitScale) {
  MultiUserDataset d;
  UserData u;
  for (int i = 0; i < 10; ++i) {
    u.samples.push_back({1.0, static_cast<double>(i)});
    u.true_labels.push_back(1);
  }
  u.revealed.assign(10, false);
  d.users.push_back(std::move(u));
  const auto s = Standardizer::fit(d);
  EXPECT_DOUBLE_EQ(s.scale()[0], 1.0);
  const Vector out = s.apply(Vector{1.0, 0.0});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
}

TEST(Transform, AugmentBiasAppendsOne) {
  const Vector x{2.0, 3.0};
  const Vector out = augment_bias(x);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[2], 1.0);

  MultiUserDataset d;
  d.users.push_back(make_user(3, 1));
  augment_bias(d);
  EXPECT_EQ(d.dim(), 3u);
  for (const auto& s : d.users[0].samples) EXPECT_DOUBLE_EQ(s.back(), 1.0);
}

}  // namespace
}  // namespace plos::data
