// Golden-regression gate: small seeded configurations — one per trainer
// plus the baselines — whose final objective and accuracies are pinned to
// checked-in golden files at 1e-10 relative tolerance. A refactor that
// silently changes numerics (reduction reordering, RNG-stream drift, QP
// tolerance tweaks) fails tier-1 here instead of drifting the benches.
//
// Regenerating after an INTENTIONAL numeric change:
//
//   PLOS_REGEN_GOLDEN=1 ./test_golden_regression
//
// rewrites the files under tests/golden/ (the path is compiled in via
// PLOS_GOLDEN_DIR); commit the diff together with the change that caused
// it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/baselines.hpp"
#include "core/centralized_plos.hpp"
#include "core/distributed_plos.hpp"
#include "core/evaluation.hpp"
#include "core/logistic_plos.hpp"
#include "data/labeling.hpp"
#include "data/synthetic.hpp"
#include "net/simnet.hpp"
#include "rng/engine.hpp"

namespace plos::core {
namespace {

using GoldenValues = std::map<std::string, double>;

std::string golden_path(const std::string& name) {
  return std::string(PLOS_GOLDEN_DIR) + "/" + name;
}

bool regen_requested() { return std::getenv("PLOS_REGEN_GOLDEN") != nullptr; }

void write_golden(const std::string& name, const GoldenValues& values) {
  const std::string path = golden_path(name);
  std::FILE* file = std::fopen(path.c_str(), "w");
  ASSERT_NE(file, nullptr) << "cannot write " << path;
  std::fprintf(file,
               "# Golden values for test_golden_regression; regenerate with\n"
               "# PLOS_REGEN_GOLDEN=1 ./test_golden_regression\n");
  for (const auto& [key, value] : values) {
    std::fprintf(file, "%s %.17g\n", key.c_str(), value);
  }
  std::fclose(file);
}

GoldenValues read_golden(const std::string& name) {
  const std::string path = golden_path(name);
  std::FILE* file = std::fopen(path.c_str(), "r");
  EXPECT_NE(file, nullptr) << "missing golden file " << path
                           << " — run with PLOS_REGEN_GOLDEN=1 to create it";
  GoldenValues values;
  if (file == nullptr) return values;
  char key[128];
  double value = 0.0;
  char line[256];
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (line[0] == '#' || line[0] == '\n') continue;
    if (std::sscanf(line, "%127s %lf", key, &value) == 2) values[key] = value;
  }
  std::fclose(file);
  return values;
}

void check_against_golden(const std::string& name,
                          const GoldenValues& actual) {
  if (regen_requested()) {
    write_golden(name, actual);
    GTEST_SKIP() << "regenerated " << golden_path(name);
  }
  const GoldenValues golden = read_golden(name);
  ASSERT_EQ(golden.size(), actual.size())
      << name << " key set drifted — regenerate if intentional";
  for (const auto& [key, expected] : golden) {
    const auto it = actual.find(key);
    ASSERT_NE(it, actual.end()) << name << " missing key " << key;
    const double tolerance = 1e-10 * std::max(1.0, std::abs(expected));
    EXPECT_NEAR(it->second, expected, tolerance)
        << name << " key " << key
        << " drifted — if intentional, regenerate with PLOS_REGEN_GOLDEN=1";
  }
}

// One fixed population shared by all golden configs: 6 synthetic users,
// half of them providers at a 30% labeling rate.
data::MultiUserDataset golden_population() {
  data::SyntheticSpec spec;
  spec.num_users = 6;
  spec.points_per_class = 25;
  spec.max_rotation = 1.0;
  rng::Engine engine(2024);
  auto dataset = data::generate_synthetic(spec, engine);
  data::reveal_labels(dataset, {0, 2, 4}, 0.3, engine);
  return dataset;
}

void add_report(GoldenValues& values, const std::string& prefix,
                const AccuracyReport& report) {
  values[prefix + ".providers"] = report.providers;
  values[prefix + ".non_providers"] = report.non_providers;
  values[prefix + ".overall"] = report.overall;
}

TEST(GoldenRegression, CentralizedTrainer) {
  const auto dataset = golden_population();
  CentralizedPlosOptions options;
  options.cutting_plane.epsilon = 1e-2;
  options.cccp.max_iterations = 3;
  const auto result = train_centralized_plos(dataset, options);

  GoldenValues values;
  values["objective"] =
      plos_objective(dataset, result.model, options.params);
  values["constraints"] =
      static_cast<double>(result.diagnostics.final_constraint_count);
  add_report(values, "accuracy",
             evaluate(dataset, predict_all(dataset, result.model)));
  check_against_golden("centralized_synth.txt", values);
}

TEST(GoldenRegression, DistributedTrainer) {
  const auto dataset = golden_population();
  DistributedPlosOptions options;
  options.cutting_plane.epsilon = 1e-2;
  options.cccp.max_iterations = 3;
  options.max_admm_iterations = 60;
  net::SimNetwork network(dataset.num_users(), net::DeviceProfile{},
                          net::LinkProfile{});
  const auto result = train_distributed_plos(dataset, options, &network);

  GoldenValues values;
  values["objective"] =
      plos_objective(dataset, result.model, options.params);
  values["admm_iterations"] =
      static_cast<double>(result.diagnostics.admm_iterations_total);
  values["server_bytes_received"] =
      static_cast<double>(network.server_metrics().bytes_received);
  values["server_bytes_sent"] =
      static_cast<double>(network.server_metrics().bytes_sent);
  add_report(values, "accuracy",
             evaluate(dataset, predict_all(dataset, result.model)));
  check_against_golden("distributed_synth.txt", values);
}

TEST(GoldenRegression, LogisticTrainer) {
  const auto dataset = golden_population();
  LogisticPlosOptions options;
  options.cccp.max_iterations = 3;
  const auto result = train_logistic_plos(dataset, options);

  GoldenValues values;
  add_report(values, "accuracy",
             evaluate(dataset, predict_all(dataset, result.model)));
  check_against_golden("logistic_synth.txt", values);
}

TEST(GoldenRegression, Baselines) {
  const auto dataset = golden_population();
  GoldenValues values;
  add_report(values, "all", evaluate(dataset, run_all_baseline(dataset)));
  add_report(values, "single",
             evaluate(dataset, run_single_baseline(dataset)));
  add_report(values, "group", evaluate(dataset, run_group_baseline(dataset)));
  check_against_golden("baselines_synth.txt", values);
}

}  // namespace
}  // namespace plos::core
