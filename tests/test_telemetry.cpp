// Tests for the run-telemetry pipeline: JSON reader, round journal,
// convergence watchdog, run manifests, and the plos_inspect diff/check
// machinery — including the determinism contract (journals and manifest
// cores byte-identical at any thread count, DESIGN.md §8 extended to
// telemetry).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "core/centralized_plos.hpp"
#include "core/distributed_plos.hpp"
#include "data/dataset.hpp"
#include "data/labeling.hpp"
#include "data/synthetic.hpp"
#include "net/simnet.hpp"
#include "obs/inspect.hpp"
#include "obs/journal.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/watchdog.hpp"
#include "rng/engine.hpp"

namespace plos {
namespace {

data::MultiUserDataset make_population(std::size_t num_users,
                                       double max_rotation,
                                       std::size_t num_providers, double rate,
                                       std::uint64_t seed,
                                       std::size_t points_per_class = 20) {
  data::SyntheticSpec spec;
  spec.num_users = num_users;
  spec.points_per_class = points_per_class;
  spec.max_rotation = max_rotation;
  rng::Engine engine(seed);
  auto dataset = data::generate_synthetic(spec, engine);
  std::vector<std::size_t> providers(num_providers);
  for (std::size_t i = 0; i < num_providers; ++i) providers[i] = i;
  data::reveal_labels(dataset, providers, rate, engine);
  return dataset;
}

core::CentralizedPlosOptions fast_centralized() {
  core::CentralizedPlosOptions options;
  options.params.lambda = 100.0;
  options.params.cl = 10.0;
  options.params.cu = 1.0;
  options.cutting_plane.epsilon = 1e-2;
  options.cccp.max_iterations = 4;
  return options;
}

core::DistributedPlosOptions fast_distributed() {
  core::DistributedPlosOptions options;
  options.params.lambda = 100.0;
  options.params.cl = 10.0;
  options.params.cu = 1.0;
  options.cutting_plane.epsilon = 1e-2;
  options.cccp.max_iterations = 3;
  options.max_admm_iterations = 40;
  return options;
}

// ---- JSON reader ---------------------------------------------------------

TEST(Json, ParsesScalarsArraysObjects) {
  const auto value =
      obs::json::parse(R"({"a":1.5,"b":[true,null,"x\n"],"c":{"d":-2e3}})");
  ASSERT_TRUE(value.has_value());
  ASSERT_TRUE(value->is_object());
  EXPECT_DOUBLE_EQ(value->find("a")->as_number(), 1.5);
  const auto& array = value->find("b")->as_array();
  ASSERT_EQ(array.size(), 3u);
  EXPECT_TRUE(array[0].as_bool());
  EXPECT_TRUE(array[1].is_null());
  EXPECT_EQ(array[2].as_string(), "x\n");
  EXPECT_DOUBLE_EQ(value->find("c")->find("d")->as_number(), -2000.0);
}

TEST(Json, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(obs::json::parse("{\"a\":", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(obs::json::parse("{\"a\":1} trailing", &error).has_value());
  EXPECT_FALSE(obs::json::parse("", &error).has_value());
}

TEST(Json, RoundTripsThroughToJson) {
  const std::string text =
      R"({"n":null,"num":0.125,"s":"q\"uote","v":[1,2,3]})";
  const auto value = obs::json::parse(text);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->to_json(), text);
}

TEST(Json, FlattenProducesDotPaths) {
  const auto value =
      obs::json::parse(R"({"a":{"b":1,"c":[10,20]},"d":"x"})");
  ASSERT_TRUE(value.has_value());
  const auto leaves = obs::json::flatten(*value);
  ASSERT_EQ(leaves.size(), 4u);
  EXPECT_EQ(leaves[0].first, "a.b");
  EXPECT_EQ(leaves[1].first, "a.c[0]");
  EXPECT_EQ(leaves[2].first, "a.c[1]");
  EXPECT_EQ(leaves[3].first, "d");
  EXPECT_DOUBLE_EQ(leaves[2].second.as_number(), 20.0);
}

// ---- round journal -------------------------------------------------------

TEST(Journal, RecordRoundTripsThroughJsonl) {
  obs::Journal journal;
  obs::RoundRecord centralized;
  centralized.trainer = "centralized";
  centralized.cccp_round = 2;
  centralized.objective = 1.25;
  centralized.constraints = 17;
  centralized.qp_solves = 3;
  centralized.qp_iterations = 420;
  journal.append(centralized);

  obs::RoundRecord blowup;
  blowup.trainer = "distributed";
  blowup.cccp_round = 0;
  blowup.admm_iteration = 5;
  blowup.objective = std::numeric_limits<double>::quiet_NaN();
  blowup.objective_finite = false;
  blowup.primal_residual = 0.5;
  blowup.dual_residual = 0.25;
  blowup.participation_rate = 0.75;
  blowup.bytes_to_devices = 1000;
  blowup.bytes_to_server = 2000;
  blowup.messages_dropped = 3;
  blowup.retries = 4;
  journal.append(blowup);

  std::vector<obs::RoundRecord> parsed;
  std::string error;
  ASSERT_TRUE(obs::parse_journal_jsonl(journal.to_jsonl(), parsed, &error))
      << error;
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].trainer, "centralized");
  EXPECT_EQ(parsed[0].cccp_round, 2);
  EXPECT_EQ(parsed[0].admm_iteration, -1);
  EXPECT_DOUBLE_EQ(parsed[0].objective, 1.25);
  EXPECT_TRUE(parsed[0].objective_finite);
  EXPECT_TRUE(std::isnan(parsed[0].primal_residual));
  EXPECT_EQ(parsed[0].constraints, 17u);
  EXPECT_EQ(parsed[0].qp_iterations, 420);

  EXPECT_EQ(parsed[1].admm_iteration, 5);
  EXPECT_TRUE(std::isnan(parsed[1].objective));
  EXPECT_FALSE(parsed[1].objective_finite);  // blowup marker survives
  EXPECT_DOUBLE_EQ(parsed[1].participation_rate, 0.75);
  EXPECT_EQ(parsed[1].bytes_to_server, 2000u);
  EXPECT_EQ(parsed[1].retries, 4u);
}

TEST(Journal, AsyncQuorumFieldsRoundTrip) {
  obs::Journal journal;
  obs::RoundRecord record;
  record.trainer = "distributed";
  record.cccp_round = 1;
  record.admm_iteration = 7;
  record.quorum_size = 12;
  record.late_uploads = 3;
  record.evictions_offline = 1;
  record.evictions_late = 2;
  record.evictions_failed = 4;
  record.max_staleness = 5;
  record.staleness_hist = {6, 3, 2, 1, 0, 1, 0, 0};
  journal.append(record);

  std::vector<obs::RoundRecord> parsed;
  std::string error;
  ASSERT_TRUE(obs::parse_journal_jsonl(journal.to_jsonl(), parsed, &error))
      << error;
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].quorum_size, 12u);
  EXPECT_EQ(parsed[0].late_uploads, 3u);
  EXPECT_EQ(parsed[0].evictions_offline, 1u);
  EXPECT_EQ(parsed[0].evictions_late, 2u);
  EXPECT_EQ(parsed[0].evictions_failed, 4u);
  EXPECT_EQ(parsed[0].max_staleness, 5u);
  EXPECT_EQ(parsed[0].staleness_hist,
            (std::vector<std::uint64_t>{6, 3, 2, 1, 0, 1, 0, 0}));
  // Records from trainers that predate the async fields parse with the
  // defaults intact.
  std::vector<obs::RoundRecord> legacy;
  ASSERT_TRUE(obs::parse_journal_jsonl(
      "{\"trainer\":\"distributed\",\"cccp_round\":0,\"admm_iteration\":0}",
      legacy, &error))
      << error;
  ASSERT_EQ(legacy.size(), 1u);
  EXPECT_EQ(legacy[0].quorum_size, 0u);
  EXPECT_EQ(legacy[0].max_staleness, 0u);
  EXPECT_TRUE(legacy[0].staleness_hist.empty());
}

TEST(Journal, ObservabilityFieldsRoundTrip) {
  obs::Journal journal;
  obs::RoundRecord record;
  record.trainer = "async";
  record.cccp_round = 0;
  record.admm_iteration = 3;
  record.stale_p50 = 1.0;
  record.stale_p90 = 4.0;
  record.stale_p99 = 7.5;
  record.lat_count = 24;
  record.lat_p50 = 0.012;
  record.lat_p90 = 0.031;
  record.lat_p99 = 0.0625;
  record.cause_counts = {9, 1, 2, 0, 1, 0, 3, 0};
  record.tuned_quorum = 0.7;
  record.tuned_staleness_bound = 8;
  record.tune_event = "bound_widen";
  record.tune_trigger = 7.5;
  journal.append(record);

  std::vector<obs::RoundRecord> parsed;
  std::string error;
  ASSERT_TRUE(obs::parse_journal_jsonl(journal.to_jsonl(), parsed, &error))
      << error;
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].stale_p50, 1.0);
  EXPECT_EQ(parsed[0].stale_p90, 4.0);
  EXPECT_EQ(parsed[0].stale_p99, 7.5);
  EXPECT_EQ(parsed[0].lat_count, 24u);
  EXPECT_EQ(parsed[0].lat_p50, 0.012);
  EXPECT_EQ(parsed[0].lat_p90, 0.031);
  EXPECT_EQ(parsed[0].lat_p99, 0.0625);
  EXPECT_EQ(parsed[0].cause_counts,
            (std::vector<std::uint64_t>{9, 1, 2, 0, 1, 0, 3, 0}));
  EXPECT_EQ(parsed[0].tuned_quorum, 0.7);
  EXPECT_EQ(parsed[0].tuned_staleness_bound, 8u);
  EXPECT_EQ(parsed[0].tune_event, "bound_widen");
  EXPECT_EQ(parsed[0].tune_trigger, 7.5);
  // Legacy records without the observability fields parse with defaults.
  std::vector<obs::RoundRecord> legacy;
  ASSERT_TRUE(obs::parse_journal_jsonl(
      "{\"trainer\":\"async\",\"cccp_round\":0,\"admm_iteration\":0}",
      legacy, &error))
      << error;
  ASSERT_EQ(legacy.size(), 1u);
  EXPECT_TRUE(std::isnan(legacy[0].stale_p99));
  EXPECT_EQ(legacy[0].lat_count, 0u);
  EXPECT_TRUE(legacy[0].cause_counts.empty());
  EXPECT_TRUE(legacy[0].tune_event.empty());
  EXPECT_EQ(legacy[0].tuned_staleness_bound, 0u);
}

TEST(Journal, DownsamplingKeepsEveryNthFromTheFirst) {
  obs::Journal full;
  obs::Journal sampled;
  sampled.set_every(3);
  EXPECT_EQ(sampled.every(), 3u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    obs::RoundRecord record;
    record.trainer = "async";
    record.admm_iteration = i;
    full.append(record);
    sampled.append(record);
  }
  EXPECT_EQ(sampled.offered(), 10u);
  EXPECT_EQ(sampled.size(), 4u);  // iterations 0, 3, 6, 9
  const std::vector<obs::RoundRecord> kept = sampled.records();
  ASSERT_EQ(kept.size(), 4u);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].admm_iteration, 3 * i);
  }
  // The sampled stream is exactly the full stream's every-3rd line:
  // downsampling drops whole records, never changes what a record says.
  std::istringstream full_lines(full.to_jsonl());
  std::istringstream sampled_lines(sampled.to_jsonl());
  std::string full_line;
  std::string sampled_line;
  std::size_t row = 0;
  while (std::getline(full_lines, full_line)) {
    if (row % 3 == 0) {
      ASSERT_TRUE(std::getline(sampled_lines, sampled_line));
      EXPECT_EQ(sampled_line, full_line) << "row " << row;
    }
    ++row;
  }
  EXPECT_FALSE(std::getline(sampled_lines, sampled_line));
}

TEST(Journal, DownsamplingRejectsZero) {
  obs::Journal journal;
  EXPECT_THROW(journal.set_every(0), PreconditionError);
}

TEST(Journal, ParseReportsMalformedLine) {
  std::vector<obs::RoundRecord> parsed;
  std::string error;
  EXPECT_FALSE(obs::parse_journal_jsonl("{not json}\n", parsed, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Journal, CentralizedTrainerEmitsOneRecordPerRound) {
  const auto dataset = make_population(3, 0.3, 2, 0.4, 11);
  auto options = fast_centralized();
  obs::Journal journal;
  options.journal = &journal;
  const auto result = core::train_centralized_plos(dataset, options);
  ASSERT_EQ(journal.size(),
            static_cast<std::size_t>(result.diagnostics.cccp_iterations));
  const auto records = journal.records();
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].trainer, "centralized");
    EXPECT_EQ(records[i].cccp_round, static_cast<int>(i));
    EXPECT_EQ(records[i].admm_iteration, -1);
    EXPECT_TRUE(std::isfinite(records[i].objective));
    EXPECT_GT(records[i].qp_solves, 0);
    EXPECT_GT(records[i].qp_iterations, 0);
  }
  // Per-round QP solves in the journal sum to the run total.
  int qp_total = 0;
  for (const auto& record : records) qp_total += record.qp_solves;
  EXPECT_EQ(qp_total, result.diagnostics.qp_solves);
}

TEST(Journal, DistributedTrainerRecordsResidualsAndTraffic) {
  const auto dataset = make_population(4, 0.3, 2, 0.4, 12);
  auto options = fast_distributed();
  obs::Journal journal;
  options.journal = &journal;
  net::SimNetwork network(dataset.num_users(), net::DeviceProfile{},
                          net::LinkProfile{});
  const auto result = core::train_distributed_plos(dataset, options, &network);
  ASSERT_EQ(journal.size(),
            static_cast<std::size_t>(result.diagnostics.admm_iterations_total));
  std::uint64_t down = 0, up = 0;
  for (const auto& record : journal.records()) {
    EXPECT_EQ(record.trainer, "distributed");
    EXPECT_GE(record.admm_iteration, 0);
    EXPECT_TRUE(std::isfinite(record.primal_residual));
    EXPECT_TRUE(std::isfinite(record.dual_residual));
    EXPECT_DOUBLE_EQ(record.participation_rate, 1.0);
    down += record.bytes_to_devices;
    up += record.bytes_to_server;
  }
  // Per-iteration byte deltas sum to the network ledger totals (minus the
  // bootstrap round, which precedes the first journaled iteration).
  const auto traffic = network.traffic_snapshot();
  EXPECT_LE(down, traffic.bytes_to_devices);
  EXPECT_LE(up, traffic.bytes_to_server);
  EXPECT_GT(down, 0u);
  EXPECT_GT(up, 0u);
}

TEST(Journal, ByteIdenticalAcrossThreadCountsCentralized) {
  const auto dataset = make_population(4, 0.4, 2, 0.4, 13);
  std::string reference;
  for (int threads : {1, 2, 4, 8}) {
    auto options = fast_centralized();
    options.num_threads = threads;
    obs::Journal journal;
    options.journal = &journal;
    core::train_centralized_plos(dataset, options);
    const std::string jsonl = journal.to_jsonl();
    ASSERT_FALSE(jsonl.empty());
    if (reference.empty()) {
      reference = jsonl;
    } else {
      EXPECT_EQ(jsonl, reference) << "journal differs at " << threads
                                  << " threads";
    }
  }
}

TEST(Journal, ByteIdenticalAcrossThreadCountsDistributed) {
  const auto dataset = make_population(4, 0.4, 2, 0.4, 14);
  std::string reference;
  for (int threads : {1, 2, 4, 8}) {
    auto options = fast_distributed();
    options.num_threads = threads;
    obs::Journal journal;
    options.journal = &journal;
    net::SimNetwork network(dataset.num_users(), net::DeviceProfile{},
                            net::LinkProfile{});
    core::train_distributed_plos(dataset, options, &network);
    const std::string jsonl = journal.to_jsonl();
    ASSERT_FALSE(jsonl.empty());
    if (reference.empty()) {
      reference = jsonl;
    } else {
      EXPECT_EQ(jsonl, reference) << "journal differs at " << threads
                                  << " threads";
    }
  }
}

// ---- watchdog ------------------------------------------------------------

obs::RoundRecord healthy_record(double objective) {
  obs::RoundRecord record;
  record.trainer = "centralized";
  record.objective = objective;
  return record;
}

TEST(Watchdog, FlagsNonFiniteObjective) {
  obs::Watchdog watchdog{obs::WatchdogConfig{}};
  EXPECT_EQ(watchdog.observe(healthy_record(2.0)), obs::WatchdogAction::kNone);
  obs::RoundRecord blowup = healthy_record(
      std::numeric_limits<double>::quiet_NaN());
  blowup.objective_finite = false;
  EXPECT_EQ(watchdog.observe(blowup), obs::WatchdogAction::kWarn);
  ASSERT_EQ(watchdog.violations().size(), 1u);
  EXPECT_EQ(watchdog.violations()[0].kind, obs::ViolationKind::kNonFinite);
  EXPECT_EQ(watchdog.violations()[0].record_index, 1u);
  EXPECT_STREQ(watchdog.verdict(), "warn");
}

TEST(Watchdog, UnsetObjectiveIsNotABlowup) {
  obs::Watchdog watchdog{obs::WatchdogConfig{}};
  obs::RoundRecord record;  // objective stays kUnset, objective_finite true
  record.trainer = "distributed";
  EXPECT_EQ(watchdog.observe(record), obs::WatchdogAction::kNone);
  EXPECT_FALSE(watchdog.triggered());
}

TEST(Watchdog, FlagsInfResidual) {
  obs::Watchdog watchdog{obs::WatchdogConfig{}};
  obs::RoundRecord record = healthy_record(1.0);
  record.primal_residual = std::numeric_limits<double>::infinity();
  EXPECT_EQ(watchdog.observe(record), obs::WatchdogAction::kWarn);
  EXPECT_EQ(watchdog.violations()[0].kind, obs::ViolationKind::kNonFinite);
}

TEST(Watchdog, FlagsObjectiveDivergence) {
  obs::WatchdogConfig config;
  config.divergence_factor = 100.0;
  obs::Watchdog watchdog(config);
  EXPECT_EQ(watchdog.observe(healthy_record(1.0)), obs::WatchdogAction::kNone);
  // 1000 > 100 * (1 + |1.0|)
  EXPECT_EQ(watchdog.observe(healthy_record(1000.0)),
            obs::WatchdogAction::kWarn);
  EXPECT_EQ(watchdog.violations()[0].kind, obs::ViolationKind::kDivergence);
}

TEST(Watchdog, FlagsResidualDivergence) {
  obs::Watchdog watchdog{obs::WatchdogConfig{}};
  obs::RoundRecord good = healthy_record(1.0);
  good.primal_residual = 1e-6;
  EXPECT_EQ(watchdog.observe(good), obs::WatchdogAction::kNone);
  obs::RoundRecord grown = healthy_record(0.9);
  grown.primal_residual = 1.0;  // 1e6x growth > default 1e4x
  EXPECT_EQ(watchdog.observe(grown), obs::WatchdogAction::kWarn);
  EXPECT_EQ(watchdog.violations()[0].kind, obs::ViolationKind::kDivergence);
}

TEST(Watchdog, FlagsStallAfterConfiguredRounds) {
  obs::WatchdogConfig config;
  config.stall_rounds = 2;
  obs::Watchdog watchdog(config);
  EXPECT_EQ(watchdog.observe(healthy_record(1.0)), obs::WatchdogAction::kNone);
  EXPECT_EQ(watchdog.observe(healthy_record(1.0)), obs::WatchdogAction::kNone);
  EXPECT_EQ(watchdog.observe(healthy_record(1.0)), obs::WatchdogAction::kWarn);
  EXPECT_EQ(watchdog.violations()[0].kind, obs::ViolationKind::kStall);
  // Re-armed: the streak restarts instead of firing every record.
  EXPECT_EQ(watchdog.observe(healthy_record(1.0)), obs::WatchdogAction::kNone);
}

TEST(Watchdog, StallDisabledByDefault) {
  obs::Watchdog watchdog{obs::WatchdogConfig{}};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(watchdog.observe(healthy_record(1.0)),
              obs::WatchdogAction::kNone);
  }
  EXPECT_FALSE(watchdog.triggered());
}

TEST(Watchdog, FlagsParticipationCollapse) {
  obs::WatchdogConfig config;
  config.participation_floor = 0.5;
  config.participation_rounds = 3;
  obs::Watchdog watchdog(config);
  obs::RoundRecord low = healthy_record(1.0);
  low.participation_rate = 0.2;
  EXPECT_EQ(watchdog.observe(low), obs::WatchdogAction::kNone);
  EXPECT_EQ(watchdog.observe(low), obs::WatchdogAction::kNone);
  EXPECT_EQ(watchdog.observe(low), obs::WatchdogAction::kWarn);
  EXPECT_EQ(watchdog.violations()[0].kind, obs::ViolationKind::kParticipation);
  // A healthy round resets the streak.
  obs::RoundRecord ok = healthy_record(1.0);
  ok.participation_rate = 0.9;
  EXPECT_EQ(watchdog.observe(ok), obs::WatchdogAction::kNone);
  EXPECT_EQ(watchdog.observe(low), obs::WatchdogAction::kNone);
}

TEST(Watchdog, FlagsStalenessCollapse) {
  obs::WatchdogConfig config;
  config.staleness_ceiling = 3;
  config.staleness_rounds = 2;
  obs::Watchdog watchdog(config);
  obs::RoundRecord stale = healthy_record(1.0);
  stale.max_staleness = 3;
  EXPECT_EQ(watchdog.observe(stale), obs::WatchdogAction::kNone);
  EXPECT_EQ(watchdog.observe(stale), obs::WatchdogAction::kWarn);
  ASSERT_EQ(watchdog.violations().size(), 1u);
  EXPECT_EQ(watchdog.violations()[0].kind, obs::ViolationKind::kStaleness);
  // A fresh aggregate resets the streak.
  obs::RoundRecord fresh = healthy_record(1.0);
  fresh.max_staleness = 1;
  EXPECT_EQ(watchdog.observe(fresh), obs::WatchdogAction::kNone);
  EXPECT_EQ(watchdog.observe(stale), obs::WatchdogAction::kNone);
}

TEST(Watchdog, StalenessCollapseDefersToTheTunedBound) {
  // Under --auto-tune the controller may widen the bound past the static
  // ceiling; the watchdog must track the journaled tuned bound instead of
  // false-firing on staleness the tuner deliberately allowed.
  obs::WatchdogConfig config;
  config.staleness_ceiling = 3;
  config.staleness_rounds = 2;
  obs::Watchdog watchdog(config);
  obs::RoundRecord widened = healthy_record(1.0);
  widened.max_staleness = 6;          // over the static ceiling...
  widened.tuned_staleness_bound = 8;  // ...but inside the tuned bound
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(watchdog.observe(widened), obs::WatchdogAction::kNone) << i;
  }
  EXPECT_FALSE(watchdog.triggered());
  // Once the fleet pins the tuned bound itself, the policy still fires.
  obs::RoundRecord pinned = healthy_record(1.0);
  pinned.max_staleness = 8;
  pinned.tuned_staleness_bound = 8;
  EXPECT_EQ(watchdog.observe(pinned), obs::WatchdogAction::kNone);
  EXPECT_EQ(watchdog.observe(pinned), obs::WatchdogAction::kWarn);
  ASSERT_EQ(watchdog.violations().size(), 1u);
  EXPECT_EQ(watchdog.violations()[0].kind, obs::ViolationKind::kStaleness);
}

TEST(Watchdog, StalenessPolicyDisabledByDefault) {
  obs::Watchdog watchdog{obs::WatchdogConfig{}};  // ceiling 0 = off
  obs::RoundRecord stale = healthy_record(1.0);
  stale.max_staleness = 1000;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(watchdog.observe(stale), obs::WatchdogAction::kNone);
  }
  EXPECT_FALSE(watchdog.triggered());
}

TEST(Watchdog, AbortPolicyEscalates) {
  obs::WatchdogConfig config;
  config.on_violation = obs::WatchdogConfig::OnViolation::kAbort;
  obs::Watchdog watchdog(config);
  obs::RoundRecord blowup = healthy_record(1.0);
  blowup.objective_finite = false;
  blowup.objective = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(watchdog.observe(blowup), obs::WatchdogAction::kAbort);
  EXPECT_TRUE(watchdog.should_abort());
  EXPECT_STREQ(watchdog.verdict(), "abort");
}

TEST(Watchdog, NoFalsePositiveOnHealthyRuns) {
  // Default policy over real solver journals must stay quiet: telemetry
  // never flags a converging run.
  const auto dataset = make_population(4, 0.4, 2, 0.4, 15);
  {
    auto options = fast_centralized();
    obs::Journal journal;
    obs::Watchdog watchdog{obs::WatchdogConfig{}};
    options.journal = &journal;
    options.watchdog = &watchdog;
    const auto result = core::train_centralized_plos(dataset, options);
    EXPECT_FALSE(result.diagnostics.watchdog_aborted);
    EXPECT_STREQ(watchdog.verdict(), "ok") << "centralized run flagged";
  }
  {
    auto options = fast_distributed();
    obs::Journal journal;
    obs::Watchdog watchdog{obs::WatchdogConfig{}};
    options.journal = &journal;
    options.watchdog = &watchdog;
    const auto result = core::train_distributed_plos(dataset, options);
    EXPECT_FALSE(result.diagnostics.watchdog_aborted);
    EXPECT_STREQ(watchdog.verdict(), "ok") << "distributed run flagged";
  }
}

TEST(Watchdog, AbortStopsCentralizedTraining) {
  const auto dataset = make_population(3, 0.3, 2, 0.4, 16);
  auto options = fast_centralized();
  // Impossible improvement bar: every round past the first counts as a
  // stall, and the abort policy must stop the run at the round boundary.
  obs::WatchdogConfig config;
  config.on_violation = obs::WatchdogConfig::OnViolation::kAbort;
  config.stall_rounds = 1;
  config.stall_tolerance = 1e9;
  obs::Journal journal;
  obs::Watchdog watchdog(config);
  options.journal = &journal;
  options.watchdog = &watchdog;
  const auto result = core::train_centralized_plos(dataset, options);
  EXPECT_TRUE(result.diagnostics.watchdog_aborted);
  EXPECT_TRUE(watchdog.should_abort());
  EXPECT_EQ(journal.size(), 2u);  // the offending round is the last record
}

TEST(Watchdog, AbortStopsDistributedTraining) {
  const auto dataset = make_population(3, 0.3, 2, 0.4, 17);
  auto options = fast_distributed();
  obs::WatchdogConfig config;
  config.on_violation = obs::WatchdogConfig::OnViolation::kAbort;
  config.stall_rounds = 1;
  config.stall_tolerance = 1e9;
  obs::Watchdog watchdog(config);
  options.watchdog = &watchdog;
  const auto result = core::train_distributed_plos(dataset, options);
  EXPECT_TRUE(result.diagnostics.watchdog_aborted);
  EXPECT_LE(result.diagnostics.admm_iterations_total, 2);
}

TEST(Watchdog, ReplayMatchesOnlineObservation) {
  std::vector<obs::RoundRecord> records;
  records.push_back(healthy_record(2.0));
  records.push_back(healthy_record(1.5));
  records.push_back(healthy_record(1e6));  // diverges
  const auto watchdog = obs::replay_watchdog(records, obs::WatchdogConfig{});
  ASSERT_EQ(watchdog.violations().size(), 1u);
  EXPECT_EQ(watchdog.violations()[0].kind, obs::ViolationKind::kDivergence);
  EXPECT_EQ(watchdog.violations()[0].record_index, 2u);
}

// ---- run manifest --------------------------------------------------------

obs::RunManifest sample_manifest() {
  obs::RunManifest manifest;
  manifest.tool = "test";
  obs::fill_build_info(manifest);
  manifest.seed = 42;
  manifest.dataset = {"synth", 4, 2, 160, 3, 0.25, 0x1234abcdu};
  manifest.options["lambda"] = "100";
  manifest.results["accuracy.plos.overall"] = 0.875;
  manifest.watchdog_verdict = "ok";
  manifest.threads = 4;
  manifest.wall_seconds = 1.5;
  manifest.timing["simulated_seconds"] = 2.5;
  return manifest;
}

TEST(Manifest, SerializesAndParses) {
  const obs::RunManifest manifest = sample_manifest();
  const std::string json = obs::manifest_to_json(manifest);
  const auto value = obs::json::parse(json);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->find("tool")->as_string(), "test");
  EXPECT_DOUBLE_EQ(value->find("seed")->as_number(), 42.0);
  EXPECT_EQ(value->find("dataset")->find("name")->as_string(), "synth");
  EXPECT_EQ(value->find("dataset")->find("content_hash")->as_string(),
            "0x000000001234abcd");
  EXPECT_DOUBLE_EQ(
      value->find("results")->find("accuracy.plos.overall")->as_number(),
      0.875);
  EXPECT_DOUBLE_EQ(value->find("timing")->find("wall_seconds")->as_number(),
                   1.5);
  EXPECT_DOUBLE_EQ(
      value->find("timing")->find("simulated_seconds")->as_number(), 2.5);
}

TEST(Manifest, TimingSectionIsExcludable) {
  const obs::RunManifest manifest = sample_manifest();
  const std::string core = obs::manifest_to_json(manifest, false);
  EXPECT_EQ(core.find("timing"), std::string::npos);
  EXPECT_EQ(core.find("wall_seconds"), std::string::npos);
  // Only timing differs between two otherwise-identical runs.
  obs::RunManifest other = sample_manifest();
  other.wall_seconds = 99.0;
  other.threads = 8;
  other.timing["simulated_seconds"] = 7.0;
  EXPECT_EQ(obs::manifest_to_json(other, false), core);
  EXPECT_NE(obs::manifest_to_json(other), obs::manifest_to_json(manifest));
}

TEST(Manifest, Fnv1aIsStableAndSensitive) {
  obs::Fnv1a a, b, c;
  a.add_u64(1);
  a.add_double(0.5);
  b.add_u64(1);
  b.add_double(0.5);
  c.add_u64(1);
  c.add_double(0.5000000001);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
}

TEST(Manifest, DatasetFingerprintIsDeterministic) {
  const auto first = make_population(3, 0.3, 2, 0.4, 21);
  const auto second = make_population(3, 0.3, 2, 0.4, 21);
  const auto third = make_population(3, 0.3, 2, 0.4, 22);  // different seed
  const auto fp1 = data::fingerprint(first, "synth");
  const auto fp2 = data::fingerprint(second, "synth");
  const auto fp3 = data::fingerprint(third, "synth");
  EXPECT_EQ(fp1.content_hash, fp2.content_hash);
  EXPECT_NE(fp1.content_hash, fp3.content_hash);
  EXPECT_EQ(fp1.users, 3u);
  EXPECT_EQ(fp1.providers, 2u);
  EXPECT_GT(fp1.labeled_fraction, 0.0);
  EXPECT_LT(fp1.labeled_fraction, 1.0);
}

// ---- inspect: diff / check -----------------------------------------------

obs::json::Value parse_or_die(const std::string& text) {
  auto value = obs::json::parse(text);
  EXPECT_TRUE(value.has_value()) << text;
  return value.value_or(obs::json::Value{});
}

TEST(Inspect, DiffFindsChangedMissingAndExtraFields) {
  const auto left = parse_or_die(R"({"a":1,"b":{"c":2},"only_left":3})");
  const auto right = parse_or_die(R"({"a":1,"b":{"c":5},"only_right":4})");
  const auto result = obs::diff_values(left, right);
  ASSERT_EQ(result.differences.size(), 3u);
  EXPECT_EQ(result.differences[0].path, "b.c");
  EXPECT_EQ(result.differences[1].path, "only_left");
  EXPECT_EQ(result.differences[1].right, "<missing>");
  EXPECT_EQ(result.differences[2].path, "only_right");
  EXPECT_EQ(result.differences[2].left, "<missing>");
}

TEST(Inspect, DiffRespectsTolerance) {
  const auto left = parse_or_die(R"({"x":1.0})");
  const auto right = parse_or_die(R"({"x":1.0000001})");
  EXPECT_FALSE(obs::diff_values(left, right).identical());
  obs::DiffOptions tolerant;
  tolerant.tolerance = 1e-6;
  EXPECT_TRUE(obs::diff_values(left, right, tolerant).identical());
  obs::DiffOptions per_field;
  per_field.field_tolerances["x"] = 1e-6;
  EXPECT_TRUE(obs::diff_values(left, right, per_field).identical());
}

TEST(Inspect, DiffIgnoresConfiguredPrefixes) {
  const auto left = parse_or_die(R"({"a":1,"timing":{"wall_seconds":1.0}})");
  const auto right = parse_or_die(R"({"a":1,"timing":{"wall_seconds":9.0}})");
  EXPECT_FALSE(obs::diff_values(left, right).identical());
  EXPECT_TRUE(
      obs::diff_values(left, right, obs::default_diff_options()).identical());
}

TEST(Inspect, CheckOptionsIgnoreBuildAndTiming) {
  obs::RunManifest manifest = sample_manifest();
  const auto left = parse_or_die(obs::manifest_to_json(manifest));
  manifest.compiler = "other-compiler 99.9";
  manifest.wall_seconds = 123.0;
  manifest.dataset.content_hash = 0xdeadbeef;
  const auto right = parse_or_die(obs::manifest_to_json(manifest));
  EXPECT_FALSE(
      obs::diff_values(left, right, obs::default_diff_options()).identical());
  EXPECT_TRUE(
      obs::diff_values(left, right, obs::default_check_options()).identical());
  // A result drift beyond tolerance still fails the check.
  manifest.results["accuracy.plos.overall"] = 0.85;
  const auto drifted = parse_or_die(obs::manifest_to_json(manifest));
  const auto result =
      obs::diff_values(left, drifted, obs::default_check_options());
  ASSERT_EQ(result.differences.size(), 1u);
  EXPECT_EQ(result.differences[0].path, "results.accuracy.plos.overall");
}

TEST(Inspect, ConvergenceReportMentionsKeyFacts) {
  const auto manifest = parse_or_die(obs::manifest_to_json(sample_manifest()));
  std::vector<obs::RoundRecord> journal;
  journal.push_back(healthy_record(2.0));
  journal.push_back(healthy_record(1.5));
  const std::string report = obs::convergence_report(&manifest, &journal);
  EXPECT_NE(report.find("synth"), std::string::npos);
  EXPECT_NE(report.find("2 records"), std::string::npos);
  EXPECT_NE(report.find("accuracy.plos.overall"), std::string::npos);
}

TEST(Inspect, ManifestCoreByteIdenticalAcrossThreadCounts) {
  // End-to-end: the deterministic manifest core (results + options +
  // dataset fingerprint) of a real training run must not depend on the
  // thread count.
  const auto dataset = make_population(3, 0.3, 2, 0.4, 23);
  std::string reference;
  for (int threads : {1, 4}) {
    auto options = fast_centralized();
    options.num_threads = threads;
    const auto result = core::train_centralized_plos(dataset, options);
    obs::RunManifest manifest;
    manifest.tool = "test";
    obs::fill_build_info(manifest);
    manifest.seed = 23;
    manifest.dataset = data::fingerprint(dataset, "synth");
    manifest.results["final_objective"] =
        result.diagnostics.objective_trace.back();
    manifest.results["cccp_rounds"] =
        static_cast<double>(result.diagnostics.cccp_iterations);
    manifest.threads = threads;
    manifest.wall_seconds = result.diagnostics.train_seconds;
    const std::string core_json = obs::manifest_to_json(manifest, false);
    if (reference.empty()) {
      reference = core_json;
    } else {
      EXPECT_EQ(core_json, reference);
    }
  }
}

// ---- metrics: prometheus + dropped samples -------------------------------

TEST(Metrics, PrometheusExposesCountersGaugesHistograms) {
  auto& registry = obs::metrics();
  registry.set_enabled(true);
  registry.counter("telemetry.test.counter").add(3.0);
  registry.gauge("telemetry.test/gauge").set(1.5);
  const double bounds[] = {1.0, 10.0};
  auto& histogram = registry.histogram("telemetry.test.hist", bounds);
  histogram.record(0.5);
  histogram.record(5.0);
  histogram.record(50.0);
  const std::string prom = registry.to_prometheus();
  EXPECT_NE(prom.find("# TYPE telemetry_test_counter counter"),
            std::string::npos);
  EXPECT_NE(prom.find("telemetry_test_counter 3"), std::string::npos);
  // '/' is not a legal Prometheus name character; it must be sanitized in
  // every sample and header name. Only # HELP free text may carry the
  // original dotted/slashed registry name.
  EXPECT_NE(prom.find("telemetry_test_gauge 1.5"), std::string::npos);
  std::istringstream lines(prom);
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("# HELP ", 0) == 0) continue;
    EXPECT_EQ(line.find('/'), std::string::npos) << line;
  }
  EXPECT_NE(prom.find("telemetry_test_hist_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("telemetry_test_hist_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("telemetry_test_hist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("telemetry_test_hist_count 3"), std::string::npos);
}

TEST(Metrics, GaugeCountsDroppedSamplesPastCap) {
  auto& registry = obs::metrics();
  registry.set_enabled(true);
  auto& gauge = registry.gauge("telemetry.test.capped");
  for (std::size_t i = 0; i < obs::Gauge::kMaxSamples + 10; ++i) {
    gauge.set(static_cast<double>(i));
  }
  EXPECT_EQ(gauge.samples().size(), obs::Gauge::kMaxSamples);
  EXPECT_EQ(gauge.dropped_samples(), 10u);
  // The final value is still tracked even though its trace entry dropped.
  EXPECT_DOUBLE_EQ(gauge.value(),
                   static_cast<double>(obs::Gauge::kMaxSamples + 9));
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"dropped_samples\":10"), std::string::npos);
  const std::string prom = registry.to_prometheus();
  EXPECT_NE(prom.find("telemetry_test_capped_dropped_samples 10"),
            std::string::npos);
}

}  // namespace
}  // namespace plos
