// Tests for the centralized PLOS trainer (CCCP + cutting planes + dual QP).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/assert.hpp"
#include "core/baselines.hpp"
#include "core/centralized_plos.hpp"
#include "core/evaluation.hpp"
#include "data/labeling.hpp"
#include "data/synthetic.hpp"
#include "obs/metrics.hpp"
#include "rng/engine.hpp"

namespace plos::core {
namespace {

data::MultiUserDataset make_population(std::size_t num_users,
                                       double max_rotation,
                                       std::size_t num_providers,
                                       double training_rate,
                                       std::uint64_t seed,
                                       std::size_t points_per_class = 40) {
  data::SyntheticSpec spec;
  spec.num_users = num_users;
  spec.points_per_class = points_per_class;
  spec.max_rotation = max_rotation;
  rng::Engine engine(seed);
  auto dataset = data::generate_synthetic(spec, engine);
  std::vector<std::size_t> providers(num_providers);
  for (std::size_t i = 0; i < num_providers; ++i) providers[i] = i;
  data::reveal_labels(dataset, providers, training_rate, engine);
  return dataset;
}

CentralizedPlosOptions fast_options() {
  CentralizedPlosOptions options;
  options.params.lambda = 100.0;
  options.params.cl = 10.0;
  options.params.cu = 1.0;
  options.cutting_plane.epsilon = 1e-2;
  options.cccp.max_iterations = 5;
  return options;
}

TEST(CentralizedPlos, SingleFullyLabeledUserLearnsClassifier) {
  auto dataset = make_population(1, 0.0, 1, 1.0, 1);
  const auto result = train_centralized_plos(dataset, fast_options());
  const auto report = evaluate(dataset, predict_all(dataset, result.model));
  // 10% label noise bounds attainable accuracy near 0.9.
  EXPECT_GT(report.providers, 0.82);
}

TEST(CentralizedPlos, UnlabeledUserBorrowsKnowledge) {
  // Identical distributions; only user 0 provides labels. User 1 must still
  // be classified well through the shared hyperplane.
  auto dataset = make_population(2, 0.0, 1, 0.5, 2);
  const auto result = train_centralized_plos(dataset, fast_options());
  const auto report = evaluate(dataset, predict_all(dataset, result.model));
  EXPECT_GT(report.non_providers, 0.82);
}

TEST(CentralizedPlos, ObjectiveTraceDecreasesAcrossCccp) {
  auto dataset = make_population(4, std::numbers::pi / 2.0, 2, 0.3, 3);
  const auto result = train_centralized_plos(dataset, fast_options());
  const auto& trace = result.diagnostics.objective_trace;
  ASSERT_GE(trace.size(), 1u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i], trace[i - 1] * 1.02 + 1e-6)
        << "CCCP objective rose at iteration " << i;
  }
  for (double v : trace) EXPECT_TRUE(std::isfinite(v));
}

TEST(CentralizedPlos, DiagnosticsPopulated) {
  auto dataset = make_population(3, 0.5, 2, 0.3, 4);
  const auto result = train_centralized_plos(dataset, fast_options());
  EXPECT_GE(result.diagnostics.cccp_iterations, 1);
  EXPECT_GT(result.diagnostics.qp_solves, 0);
  EXPECT_GT(result.diagnostics.final_constraint_count, 0u);
  EXPECT_GE(result.diagnostics.train_seconds, 0.0);
  // Per-round diagnostics cover every started CCCP round and sum up to the
  // aggregate QP-solve count.
  ASSERT_GE(result.diagnostics.round_seconds.size(), 1u);
  ASSERT_EQ(result.diagnostics.round_qp_solves.size(),
            result.diagnostics.round_seconds.size());
  int per_round_qp_total = 0;
  for (std::size_t i = 0; i < result.diagnostics.round_seconds.size(); ++i) {
    EXPECT_GE(result.diagnostics.round_seconds[i], 0.0);
    EXPECT_GT(result.diagnostics.round_qp_solves[i], 0);
    per_round_qp_total += result.diagnostics.round_qp_solves[i];
  }
  EXPECT_EQ(per_round_qp_total, result.diagnostics.qp_solves);
}

TEST(CentralizedPlos, TrainingEmitsMetricsSnapshot) {
  // Integration check for the observability layer: with the global registry
  // enabled, a training run must leave behind a non-empty snapshot whose
  // objective gauge mirrors the (monotone) accepted-round objective trace.
  obs::metrics().set_enabled(true);
  obs::metrics().reset_values();
  auto dataset = make_population(3, 0.5, 2, 0.3, 4);
  const auto result = train_centralized_plos(dataset, fast_options());
  const std::string snapshot = obs::metrics().to_json();
  obs::metrics().set_enabled(false);

  EXPECT_GT(snapshot.size(), 2u) << "empty metrics snapshot: " << snapshot;
  EXPECT_NE(snapshot.find("plos.objective"), std::string::npos);
  EXPECT_NE(snapshot.find("qp.capped_simplex.solves"), std::string::npos);
  EXPECT_NE(snapshot.find("plos.cutting_plane.constraints_added"),
            std::string::npos);

  const auto& objective = obs::metrics().gauge("plos.objective");
  const auto samples = objective.samples();
  ASSERT_EQ(samples.size(), result.diagnostics.objective_trace.size());
  ASSERT_FALSE(samples.empty());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(samples[i], result.diagnostics.objective_trace[i]);
    if (i > 0) {
      EXPECT_LE(samples[i], samples[i - 1] + 1e-9)
          << "objective gauge rose at accepted round " << i;
    }
  }
  EXPECT_GT(obs::metrics().counter("qp.capped_simplex.solves").value(), 0.0);
}

TEST(CentralizedPlos, LargeLambdaShrinksDeviations) {
  auto dataset = make_population(4, std::numbers::pi / 3.0, 4, 0.4, 5);
  auto options = fast_options();
  options.params.lambda = 1e6;
  const auto tied = train_centralized_plos(dataset, options);
  options.params.lambda = 1.0;
  const auto loose = train_centralized_plos(dataset, options);

  double tied_dev = 0.0, loose_dev = 0.0;
  for (std::size_t t = 0; t < 4; ++t) {
    tied_dev += linalg::norm(tied.model.user_deviations[t]);
    loose_dev += linalg::norm(loose.model.user_deviations[t]);
  }
  EXPECT_LT(tied_dev, 0.2 * loose_dev + 1e-9);
}

TEST(CentralizedPlos, PersonalizationBeatsGlobalOnRotatedUsers) {
  // Strong rotations: a single global hyperplane cannot fit everyone.
  auto dataset =
      make_population(6, 5.0 * std::numbers::pi / 6.0, 6, 0.4, 6, 60);
  auto options = fast_options();
  options.params.lambda = 10.0;
  const auto result = train_centralized_plos(dataset, options);
  const auto plos_report =
      evaluate(dataset, predict_all(dataset, result.model));
  const auto all_report = evaluate(dataset, run_all_baseline(dataset));
  EXPECT_GT(plos_report.providers, all_report.providers + 0.05);
}

TEST(CentralizedPlos, RunsWithNoLabelsAtAll) {
  auto dataset = make_population(3, 0.0, 0, 0.0, 7, 20);
  const auto result = train_centralized_plos(dataset, fast_options());
  EXPECT_TRUE(std::isfinite(
      plos_objective(dataset, result.model, fast_options().params)));
  EXPECT_EQ(result.model.num_users(), 3u);
}

TEST(CentralizedPlos, DeterministicGivenOptions) {
  auto dataset = make_population(3, 0.4, 2, 0.3, 8, 20);
  const auto a = train_centralized_plos(dataset, fast_options());
  const auto b = train_centralized_plos(dataset, fast_options());
  EXPECT_TRUE(linalg::approx_equal(a.model.global_weights,
                                   b.model.global_weights, 0.0));
}

TEST(CentralizedPlos, InvalidOptionsThrow) {
  auto dataset = make_population(2, 0.0, 1, 0.3, 9, 10);
  auto options = fast_options();
  options.params.lambda = 0.0;
  EXPECT_THROW(train_centralized_plos(dataset, options), PreconditionError);
  data::MultiUserDataset empty;
  EXPECT_THROW(train_centralized_plos(empty, fast_options()),
               PreconditionError);
}

TEST(PlosObjective, ZeroModelCountsFullHinge) {
  auto dataset = make_population(2, 0.0, 1, 0.5, 10, 10);
  const auto model = PersonalizedModel::zeros(2, dataset.dim());
  PlosHyperParams params;
  params.lambda = 100.0;
  params.cl = 1.0;
  params.cu = 1.0;
  // All margins are 0, every hinge is 1, normalized per user: Σ_t 1 = 2.
  EXPECT_NEAR(plos_objective(dataset, model, params), 2.0, 1e-12);
}

TEST(PlosObjective, UserCountMismatchThrows) {
  auto dataset = make_population(2, 0.0, 1, 0.5, 11, 10);
  const auto model = PersonalizedModel::zeros(3, dataset.dim());
  EXPECT_THROW(plos_objective(dataset, model, PlosHyperParams{}),
               PreconditionError);
}

TEST(CentralizedPlos, MultiThreadedTrainingMatchesSerialBitwise) {
  // Per-user separation, sign fitting, and Hessian row assembly run on a
  // pool when num_threads > 1; the result must equal the serial run down
  // to the last bit (the full contract lives in test_parallel_equivalence,
  // this is the in-binary smoke check TSan exercises).
  auto dataset = make_population(5, 0.8, 3, 0.3, 21, 20);
  auto serial_options = fast_options();
  auto threaded_options = fast_options();
  threaded_options.num_threads = 4;
  const auto serial = train_centralized_plos(dataset, serial_options);
  const auto threaded = train_centralized_plos(dataset, threaded_options);
  ASSERT_EQ(serial.model.global_weights.size(),
            threaded.model.global_weights.size());
  for (std::size_t j = 0; j < serial.model.global_weights.size(); ++j) {
    EXPECT_EQ(serial.model.global_weights[j], threaded.model.global_weights[j]);
  }
  for (std::size_t t = 0; t < serial.model.num_users(); ++t) {
    for (std::size_t j = 0; j < serial.model.user_deviations[t].size(); ++j) {
      EXPECT_EQ(serial.model.user_deviations[t][j],
                threaded.model.user_deviations[t][j]);
    }
  }
  EXPECT_EQ(serial.diagnostics.objective_trace,
            threaded.diagnostics.objective_trace);
  EXPECT_EQ(serial.diagnostics.final_constraint_count,
            threaded.diagnostics.final_constraint_count);
}

}  // namespace
}  // namespace plos::core
