// Tests for signal statistics, windowing, and the 120-d feature extractor.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/assert.hpp"
#include "features/extractor.hpp"
#include "features/stats.hpp"
#include "features/window.hpp"
#include "rng/engine.hpp"

namespace plos::features {
namespace {

using linalg::Vector;

TEST(Stats, StddevKnown) {
  // Population stddev of {2, 4, 4, 4, 5, 5, 7, 9} is 2.
  const Vector x{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(stddev(x), 2.0);
}

TEST(Stats, StddevConstantIsZero) {
  EXPECT_DOUBLE_EQ(stddev(Vector{3.0, 3.0, 3.0}), 0.0);
}

TEST(Stats, QuantileEndpoints) {
  const Vector x{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(x, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(x, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(quantile(x, 0.5), 2.0);
}

TEST(Stats, QuantileInterpolates) {
  const Vector x{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(x, 0.25), 2.5);
}

TEST(Stats, MedianEvenCount) {
  EXPECT_DOUBLE_EQ(median(Vector{1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Stats, MadKnown) {
  // median = 2, deviations {1, 0, 1} -> MAD = 1.
  EXPECT_DOUBLE_EQ(median_absolute_deviation(Vector{1.0, 2.0, 3.0}), 1.0);
}

TEST(Stats, EnergyKnown) {
  EXPECT_DOUBLE_EQ(energy(Vector{1.0, 2.0, 2.0}), 3.0);
}

TEST(Stats, IqrKnown) {
  const Vector x{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(interquartile_range(x), 2.0);
}

TEST(Stats, MinMax) {
  const Vector x{3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(max_value(x), 3.0);
  EXPECT_DOUBLE_EQ(min_value(x), -1.0);
}

TEST(Stats, EmptyInputsThrow) {
  const Vector empty;
  EXPECT_THROW(stddev(empty), PreconditionError);
  EXPECT_THROW(quantile(empty, 0.5), PreconditionError);
  EXPECT_THROW(energy(empty), PreconditionError);
  EXPECT_THROW(max_value(empty), PreconditionError);
}

TEST(Stats, SignalFeaturesLayout) {
  const Vector x{1.0, 2.0, 3.0, 4.0};
  const Vector f = signal_features(x);
  ASSERT_EQ(f.size(), kPerSignalFeatureCount);
  EXPECT_DOUBLE_EQ(f[0], 2.5);               // mean
  EXPECT_DOUBLE_EQ(f[3], 4.0);               // max
  EXPECT_DOUBLE_EQ(f[4], 1.0);               // min
  EXPECT_DOUBLE_EQ(f[5], 30.0 / 4.0);        // energy
}

TEST(Window, PaperConfiguration) {
  // 20 Hz * 113 s = 2260 samples, 64-long windows, stride 32 -> 69 windows
  // (the paper reports ~70 per activity).
  const auto windows = sliding_windows(2260, WindowSpec{64, 32});
  EXPECT_EQ(windows.size(), 69u);
  EXPECT_EQ(windows.front().begin, 0u);
  EXPECT_EQ(windows.front().end, 64u);
  EXPECT_EQ(windows[1].begin, 32u);
}

TEST(Window, ExactFit) {
  const auto windows = sliding_windows(64, WindowSpec{64, 32});
  EXPECT_EQ(windows.size(), 1u);
}

TEST(Window, TooShortGivesNone) {
  EXPECT_TRUE(sliding_windows(63, WindowSpec{64, 32}).empty());
}

TEST(Window, NonOverlapping) {
  const auto windows = sliding_windows(100, WindowSpec{10, 10});
  EXPECT_EQ(windows.size(), 10u);
}

TEST(Window, InvalidSpecThrows) {
  EXPECT_THROW(sliding_windows(100, WindowSpec{0, 10}), PreconditionError);
  EXPECT_THROW(sliding_windows(100, WindowSpec{10, 0}), PreconditionError);
}

TEST(Window, ViewBounds) {
  const Vector signal(100, 0.0);
  EXPECT_EQ(window_view(signal, {10, 20}).size(), 10u);
  EXPECT_THROW(window_view(signal, {90, 110}), PreconditionError);
}

NodeSignals constant_node(std::size_t n, double ax, double ay, double az) {
  NodeSignals node;
  node.accel_x.assign(n, ax);
  node.accel_y.assign(n, ay);
  node.accel_z.assign(n, az);
  node.gyro_u.assign(n, 0.0);
  node.gyro_v.assign(n, 0.0);
  return node;
}

TEST(Extractor, AccelCrossFeaturesGravityOnly) {
  const Vector ax(10, 0.0), ay(10, 0.0), az(10, -1.0);
  const Vector f = accel_cross_features(ax, ay, az);
  ASSERT_EQ(f.size(), kAccelCrossFeatureCount);
  EXPECT_NEAR(f[0], 1.0, 1e-12);             // |a| = 1 g
  EXPECT_NEAR(f[1], std::numbers::pi / 2.0, 1e-12);      // angle to x
  EXPECT_NEAR(f[2], std::numbers::pi / 2.0, 1e-12);      // angle to y
  EXPECT_NEAR(f[3], std::numbers::pi, 1e-12);            // angle to z (pointing down)
  EXPECT_NEAR(f[4], 1.0, 1e-12);             // SMA
}

TEST(Extractor, AccelCrossFeaturesZeroVector) {
  const Vector zeros(5, 0.0);
  const Vector f = accel_cross_features(zeros, zeros, zeros);
  for (double v : f) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Extractor, NodeFeatureCount) {
  const NodeSignals node = constant_node(64, 0.1, 0.2, -0.9);
  const Vector f = node_window_features(node, {0, 64});
  EXPECT_EQ(f.size(), kNodeFeatureCount);
}

TEST(Extractor, ThreeNodesGive120Dims) {
  const std::vector<NodeSignals> nodes(3, constant_node(64, 0.0, 0.0, -1.0));
  const Vector f = multi_node_window_features(nodes, {0, 64});
  EXPECT_EQ(f.size(), 120u);
}

TEST(Extractor, ExtractWindowsShape) {
  const std::vector<NodeSignals> nodes(3, constant_node(2260, 0.0, 0.0, -1.0));
  const auto features = extract_windows(nodes, WindowSpec{64, 32});
  EXPECT_EQ(features.size(), 69u);
  for (const auto& f : features) EXPECT_EQ(f.size(), 120u);
}

TEST(Extractor, RejectsMismatchedNodeLengths) {
  std::vector<NodeSignals> nodes{constant_node(100, 0, 0, -1),
                                 constant_node(99, 0, 0, -1)};
  EXPECT_THROW(extract_windows(nodes, WindowSpec{10, 5}), PreconditionError);
}

TEST(Extractor, RejectsRaggedSignalsWithinNode) {
  NodeSignals node = constant_node(50, 0, 0, -1);
  node.gyro_v.resize(49);
  EXPECT_THROW(node_window_features(node, {0, 10}), PreconditionError);
}

// Property: features distinguish differently-oriented constant gravity.
class ExtractorOrientationProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExtractorOrientationProperty, DistinctOrientationsDistinctFeatures) {
  rng::Engine engine(GetParam() + 400);
  const double a1 = engine.uniform(0.0, 3.1);
  const double a2 = a1 + engine.uniform(0.5, 1.5);
  const NodeSignals n1 =
      constant_node(64, std::sin(a1), 0.0, -std::cos(a1));
  const NodeSignals n2 =
      constant_node(64, std::sin(a2), 0.0, -std::cos(a2));
  const Vector f1 = node_window_features(n1, {0, 64});
  const Vector f2 = node_window_features(n2, {0, 64});
  EXPECT_FALSE(linalg::approx_equal(f1, f2, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtractorOrientationProperty,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace plos::features
