// Tiered-contract subsystem tests (DESIGN.md §11): CHECK/DCHECK firing,
// stream-formatted messages, PLOS_CHECK_FINITE on NaN/Inf, handler
// registration, and one negative test per threaded contract site (QP,
// Cholesky, cutting plane, net framing, journal ordering). The DCHECK
// behavior tests cover both build flavors: with -DPLOS_CONTRACTS=ON the
// checked branches fire, without it they must compile away (conditions
// never evaluated).
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/cutting_plane.hpp"
#include "data/dataset.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "net/serialize.hpp"
#include "obs/journal.hpp"
#include "qp/box_qp.hpp"
#include "qp/capped_simplex_qp.hpp"

namespace plos {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// ---- PLOS_CHECK ----------------------------------------------------------

TEST(Contracts, CheckPassesOnTrueCondition) {
  EXPECT_NO_THROW(PLOS_CHECK(1 + 1 == 2, "arithmetic"));
}

TEST(Contracts, CheckThrowsPreconditionError) {
  EXPECT_THROW(PLOS_CHECK(false, "always fails"), PreconditionError);
}

TEST(Contracts, CheckMessageCarriesExpressionFileAndStreamedValues) {
  const int got = -3;
  try {
    PLOS_CHECK(got > 0, "need positive, got " << got);
    FAIL() << "PLOS_CHECK did not throw";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("PLOS_CHECK failed"), std::string::npos) << what;
    EXPECT_NE(what.find("got > 0"), std::string::npos) << what;
    EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("need positive, got -3"), std::string::npos) << what;
  }
}

TEST(Contracts, CheckMessageOnlyBuiltOnFailure) {
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return std::string("message");
  };
  PLOS_CHECK(true, expensive());
  EXPECT_EQ(evaluations, 0);
}

TEST(Contracts, AssertIsCheckWithEmptyMessage) {
  EXPECT_NO_THROW(PLOS_ASSERT(true));
  EXPECT_THROW(PLOS_ASSERT(false), PreconditionError);
}

// ---- PLOS_DCHECK ---------------------------------------------------------

TEST(Contracts, DcheckBehaviorMatchesBuildFlavor) {
  int calls = 0;
  auto failing = [&]() {
    ++calls;
    return false;
  };
#if defined(PLOS_CONTRACTS)
  EXPECT_THROW(PLOS_DCHECK(failing(), "checked build fires"),
               PreconditionError);
  EXPECT_EQ(calls, 1);
  try {
    PLOS_DCHECK(false, "tier marker");
    FAIL() << "PLOS_DCHECK did not throw";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("PLOS_DCHECK failed"),
              std::string::npos);
  }
#else
  // Contracts off: the condition is type-checked but never evaluated.
  EXPECT_NO_THROW(PLOS_DCHECK(failing(), "compiled out"));
  EXPECT_EQ(calls, 0);
#endif
}

// ---- PLOS_CHECK_FINITE ---------------------------------------------------

TEST(Contracts, CheckFinitePassesThroughFiniteValues) {
  EXPECT_DOUBLE_EQ(PLOS_CHECK_FINITE(2.5), 2.5);
  EXPECT_DOUBLE_EQ(PLOS_CHECK_FINITE(-1e300), -1e300);
  EXPECT_DOUBLE_EQ(PLOS_CHECK_FINITE(0.0), 0.0);
  const double computed = PLOS_CHECK_FINITE(3.0 * 4.0);
  EXPECT_DOUBLE_EQ(computed, 12.0);
}

TEST(Contracts, CheckFiniteRejectsNanAndInf) {
  EXPECT_THROW(PLOS_CHECK_FINITE(kNan), PreconditionError);
  EXPECT_THROW(PLOS_CHECK_FINITE(kInf), PreconditionError);
  EXPECT_THROW(PLOS_CHECK_FINITE(-kInf), PreconditionError);
  try {
    PLOS_CHECK_FINITE(0.0 * kInf);
    FAIL() << "PLOS_CHECK_FINITE did not throw";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("PLOS_CHECK_FINITE failed"), std::string::npos)
        << what;
    EXPECT_NE(what.find("non-finite value"), std::string::npos) << what;
  }
}

// ---- failure handler -----------------------------------------------------

ContractViolation g_last{ContractKind::kCheck, "", "", 0, ""};
int g_handler_calls = 0;

void recording_handler(const ContractViolation& violation) {
  g_last = violation;
  ++g_handler_calls;
}

TEST(Contracts, RegisteredHandlerObservesViolationThenThrowStillHappens) {
  g_handler_calls = 0;
  ContractHandler previous = set_contract_handler(&recording_handler);
  EXPECT_EQ(previous, nullptr);

  EXPECT_THROW(PLOS_CHECK(2 < 1, "observed " << 42), PreconditionError);
  EXPECT_EQ(g_handler_calls, 1);
  EXPECT_EQ(g_last.kind, ContractKind::kCheck);
  EXPECT_EQ(std::string(g_last.expression), "2 < 1");
  EXPECT_EQ(g_last.message, "observed 42");
  EXPECT_GT(g_last.line, 0);

  // Restoring the default: returns the custom handler, stops observing.
  ContractHandler restored = set_contract_handler(nullptr);
  EXPECT_EQ(restored, &recording_handler);
  EXPECT_THROW(PLOS_CHECK(false, ""), PreconditionError);
  EXPECT_EQ(g_handler_calls, 1);
}

// ---- contract sites: QP --------------------------------------------------

TEST(ContractSites, CappedSimplexQpRejectsWarmStartSizeMismatch) {
  qp::CappedSimplexQpProblem problem;
  problem.hessian = linalg::Matrix(2, 2);
  problem.hessian(0, 0) = problem.hessian(1, 1) = 1.0;
  problem.linear = linalg::Vector(2, 1.0);
  problem.groups = {{0, 1}};
  problem.caps = {1.0};
  qp::QpOptions options;
  options.warm_start = linalg::Vector(3, 0.0);  // wrong size
  EXPECT_THROW(qp::solve_capped_simplex_qp(problem, options),
               PreconditionError);
}

TEST(ContractSites, BoxQpNonFiniteObjectiveTripsFinitenessGate) {
  qp::BoxQpProblem problem;
  problem.hessian = linalg::Matrix(2, 2);
  problem.hessian(0, 0) = problem.hessian(1, 1) = 1.0;
  problem.linear = linalg::Vector(2, kNan);  // poisons the objective
  problem.lo = -1.0;
  problem.hi = 1.0;
  EXPECT_THROW(qp::solve_box_qp(problem, qp::QpOptions{}), PreconditionError);
}

// ---- contract sites: linalg ----------------------------------------------

TEST(ContractSites, CholeskyRejectsNonSquare) {
  EXPECT_THROW(linalg::cholesky(linalg::Matrix(2, 3)), PreconditionError);
}

#if defined(PLOS_CONTRACTS)
TEST(ContractSites, CholeskyCheckedBuildRejectsAsymmetricInput) {
  linalg::Matrix a(2, 2);
  a(0, 0) = 4.0;
  a(1, 1) = 3.0;
  a(0, 1) = 1.0;
  a(1, 0) = -1.0;  // asymmetric: lower triangle disagrees
  EXPECT_THROW(linalg::cholesky(a), PreconditionError);
}

TEST(ContractSites, CholeskySolveCheckedBuildRejectsNonPositivePivot) {
  linalg::Matrix l(2, 2);
  l(0, 0) = 1.0;
  l(1, 1) = 0.0;  // zero pivot: not a valid Cholesky factor
  const std::vector<double> b{1.0, 1.0};
  EXPECT_THROW(linalg::cholesky_solve(l, b), PreconditionError);
}
#endif

// ---- contract sites: cutting plane ---------------------------------------

TEST(ContractSites, MostViolatedConstraintRejectsSignsSizeMismatch) {
  data::UserData user;
  user.samples = {linalg::Vector(2, 1.0)};
  user.true_labels = {1};
  user.revealed = {false};
  const auto ctx = core::PlosUserContext::from_user(user);
  const std::vector<int> wrong_signs;  // unlabeled has 1 entry, signs 0
  const linalg::Vector weights(2, 0.0);
  EXPECT_THROW(core::most_violated_constraint(ctx, wrong_signs, weights,
                                              1.0, 1.0),
               PreconditionError);
}

TEST(ContractSites, FitLocalDeviationRejectsNonPositiveLambda) {
  data::UserData user;
  user.samples = {linalg::Vector(2, 1.0)};
  user.true_labels = {1};
  user.revealed = {true};
  const auto ctx = core::PlosUserContext::from_user(user);
  const std::vector<int> signs;
  const linalg::Vector weights(2, 0.0);
  EXPECT_THROW(core::fit_local_deviation(ctx, signs, weights,
                                         /*lambda_over_t=*/0.0, 1.0, 1.0,
                                         1e-2, 5),
               PreconditionError);
}

// ---- contract sites: net framing -----------------------------------------

TEST(ContractSites, DeserializerUnderflowFires) {
  const std::vector<std::uint8_t> tiny{0x01, 0x02};
  net::Deserializer reader(tiny);
  EXPECT_THROW(reader.read_u32(), PreconditionError);
}

TEST(ContractSites, DeserializerRejectsOverflowingVectorLength) {
  // Length prefix 2^61: n * sizeof(double) wraps to 0 in 64 bits, so a
  // multiplying bound would pass; the divide-based contract must fire.
  net::Serializer writer;
  writer.write_u64(std::uint64_t{1} << 61);
  net::Deserializer reader(writer.buffer());
  EXPECT_THROW(reader.read_vector(), PreconditionError);
}

TEST(ContractSites, FrameRoundTripSatisfiesItsOwnPostcondition) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  const auto frame = net::frame_message(payload);
  const auto back = net::unframe_message(frame);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), back->begin()));
}

// ---- contract sites: journal ordering ------------------------------------

obs::RoundRecord make_record(const char* trainer, int round, int admm) {
  obs::RoundRecord record;
  record.trainer = trainer;
  record.cccp_round = round;
  record.admm_iteration = admm;
  return record;
}

TEST(ContractSites, JournalAcceptsMonotonicRounds) {
  obs::Journal journal;
  journal.append(make_record("distributed", 0, 0));
  journal.append(make_record("distributed", 0, 1));
  journal.append(make_record("distributed", 1, 0));
  journal.append(make_record("centralized", 0, -1));  // new trainer resets
  journal.append(make_record("centralized", 1, -1));
  EXPECT_EQ(journal.size(), 5u);
}

TEST(ContractSites, JournalRejectsOutOfOrderRound) {
  obs::Journal journal;
  journal.append(make_record("centralized", 2, -1));
  EXPECT_THROW(journal.append(make_record("centralized", 1, -1)),
               PreconditionError);
}

TEST(ContractSites, JournalRejectsDuplicateAdmmIteration) {
  obs::Journal journal;
  journal.append(make_record("distributed", 0, 3));
  EXPECT_THROW(journal.append(make_record("distributed", 0, 3)),
               PreconditionError);
}

}  // namespace
}  // namespace plos
