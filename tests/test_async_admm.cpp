// Tests for the asynchronous bounded-staleness quorum engine: degenerate
// bitwise equivalence with the synchronous trainer, cross-thread byte
// identity, the bounded-staleness property, and the latency/deadline
// model.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "async/async_admm.hpp"
#include "async/autotune.hpp"
#include "async/latency.hpp"
#include "common/assert.hpp"
#include "core/distributed_plos.hpp"
#include "data/labeling.hpp"
#include "data/synthetic.hpp"
#include "net/simnet.hpp"
#include "obs/journal.hpp"
#include "rng/engine.hpp"

namespace plos::async {
namespace {

data::MultiUserDataset make_population(std::size_t num_users,
                                       double max_rotation,
                                       std::size_t num_providers,
                                       double training_rate,
                                       std::uint64_t seed,
                                       std::size_t points_per_class = 30) {
  data::SyntheticSpec spec;
  spec.num_users = num_users;
  spec.points_per_class = points_per_class;
  spec.max_rotation = max_rotation;
  rng::Engine engine(seed);
  auto dataset = data::generate_synthetic(spec, engine);
  std::vector<std::size_t> providers(num_providers);
  for (std::size_t i = 0; i < num_providers; ++i) providers[i] = i;
  data::reveal_labels(dataset, providers, training_rate, engine);
  return dataset;
}

core::DistributedPlosOptions fast_base() {
  core::DistributedPlosOptions options;
  options.params.lambda = 100.0;
  options.params.cl = 10.0;
  options.params.cu = 1.0;
  options.cutting_plane.epsilon = 1e-2;
  options.cccp.max_iterations = 3;
  options.max_admm_iterations = 60;
  return options;
}

/// Degenerate configuration: 100% quorum, no deadlines — contractually
/// bit-identical to the synchronous engine.
AsyncQuorumOptions degenerate_options(std::uint64_t staleness_bound = 0) {
  AsyncQuorumOptions options;
  options.base = fast_base();
  options.quorum = 1.0;
  options.staleness_bound = staleness_bound;
  options.adaptive_deadline = false;
  options.fixed_deadline_s = 0.0;
  return options;
}

void expect_models_bitwise_equal(const core::PersonalizedModel& a,
                                 const core::PersonalizedModel& b) {
  ASSERT_EQ(a.global_weights.size(), b.global_weights.size());
  for (std::size_t j = 0; j < a.global_weights.size(); ++j) {
    EXPECT_EQ(a.global_weights[j], b.global_weights[j]) << "w0[" << j << "]";
  }
  ASSERT_EQ(a.user_deviations.size(), b.user_deviations.size());
  for (std::size_t t = 0; t < a.user_deviations.size(); ++t) {
    ASSERT_EQ(a.user_deviations[t].size(), b.user_deviations[t].size());
    for (std::size_t j = 0; j < a.user_deviations[t].size(); ++j) {
      EXPECT_EQ(a.user_deviations[t][j], b.user_deviations[t][j])
          << "dev[" << t << "][" << j << "]";
    }
  }
}

TEST(AsyncQuorum, DegenerateMatchesSyncBitwiseFaultFree) {
  auto dataset = make_population(6, 0.4, 3, 0.4, 21);

  obs::Journal sync_journal;
  auto sync_options = fast_base();
  sync_options.journal = &sync_journal;
  net::SimNetwork sync_net(6, net::DeviceProfile{}, net::LinkProfile{});
  const auto sync =
      core::train_distributed_plos(dataset, sync_options, &sync_net);

  obs::Journal async_journal;
  auto async_options = degenerate_options();  // staleness_bound = 0
  async_options.base.journal = &async_journal;
  net::SimNetwork async_net(6, net::DeviceProfile{}, net::LinkProfile{});
  const auto async_result =
      train_async_quorum_plos(dataset, async_options, &async_net);

  expect_models_bitwise_equal(sync.model, async_result.model);
  EXPECT_EQ(sync_journal.to_jsonl(), async_journal.to_jsonl());
  const auto sync_traffic = sync_net.traffic_snapshot();
  const auto async_traffic = async_net.traffic_snapshot();
  EXPECT_EQ(sync_traffic.bytes_to_devices, async_traffic.bytes_to_devices);
  EXPECT_EQ(sync_traffic.bytes_to_server, async_traffic.bytes_to_server);
  EXPECT_EQ(sync_traffic.messages_dropped, async_traffic.messages_dropped);
  EXPECT_EQ(sync_traffic.retries, async_traffic.retries);
  // Nothing was ever late, busy, or evicted.
  EXPECT_EQ(async_result.async.late_uploads_total, 0u);
  EXPECT_EQ(async_result.async.evictions_offline_total, 0u);
  EXPECT_EQ(async_result.async.evictions_late_total, 0u);
  EXPECT_EQ(async_result.async.evictions_failed_total, 0u);
  EXPECT_EQ(async_result.async.max_staleness_seen, 0u);
}

TEST(AsyncQuorum, DegenerateMatchesSyncBitwiseUnderFaults) {
  auto dataset = make_population(6, 0.4, 3, 0.4, 22);
  net::FaultSpec spec;
  spec.drop_probability = 0.15;
  spec.offline_probability = 0.15;
  spec.straggler_probability = 0.2;
  spec.straggler_slowdown = 3.0;
  spec.round_deadline_s = 0.0;  // the sync engine must wait, like quorum=1
  spec.seed = 5;

  obs::Journal sync_journal;
  auto sync_options = fast_base();
  sync_options.journal = &sync_journal;
  net::SimNetwork sync_net(6, net::DeviceProfile{}, net::LinkProfile{});
  sync_net.set_fault_model(net::FaultModel(spec));
  const auto sync =
      core::train_distributed_plos(dataset, sync_options, &sync_net);

  obs::Journal async_journal;
  // A bound larger than any possible run length: the sync engine never
  // evicts, so the degenerate async run must not either.
  auto async_options = degenerate_options(/*staleness_bound=*/1u << 20);
  async_options.base.journal = &async_journal;
  net::SimNetwork async_net(6, net::DeviceProfile{}, net::LinkProfile{});
  async_net.set_fault_model(net::FaultModel(spec));
  const auto async_result =
      train_async_quorum_plos(dataset, async_options, &async_net);

  expect_models_bitwise_equal(sync.model, async_result.model);
  EXPECT_EQ(sync_journal.to_jsonl(), async_journal.to_jsonl());
  const auto sync_traffic = sync_net.traffic_snapshot();
  const auto async_traffic = async_net.traffic_snapshot();
  EXPECT_EQ(sync_traffic.bytes_to_devices, async_traffic.bytes_to_devices);
  EXPECT_EQ(sync_traffic.bytes_to_server, async_traffic.bytes_to_server);
  EXPECT_EQ(sync_traffic.messages_dropped, async_traffic.messages_dropped);
  EXPECT_EQ(sync_traffic.retries, async_traffic.retries);
  EXPECT_EQ(sync.diagnostics.devices_offline_total,
            async_result.diagnostics.devices_offline_total);
  EXPECT_EQ(sync.diagnostics.downlink_failures_total,
            async_result.diagnostics.downlink_failures_total);
  EXPECT_EQ(sync.diagnostics.uplink_failures_total,
            async_result.diagnostics.uplink_failures_total);
}

/// Full async configuration (partial quorum, tight staleness bound,
/// adaptive deadlines, churn + stragglers): models, journals, and the
/// virtual clock must be bitwise identical at every thread count.
TEST(AsyncQuorum, ByteIdenticalAcrossThreadCounts) {
  auto dataset = make_population(8, 0.5, 4, 0.4, 23);
  net::FaultSpec spec;
  spec.drop_probability = 0.1;
  spec.offline_probability = 0.2;
  spec.straggler_probability = 0.3;
  spec.straggler_slowdown = 5.0;
  spec.retry_jitter = 0.5;
  spec.seed = 9;

  std::string reference_journal;
  core::PersonalizedModel reference_model;
  double reference_virtual = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    obs::Journal journal;
    AsyncQuorumOptions options;
    options.base = fast_base();
    options.base.num_threads = threads;
    options.base.journal = &journal;
    options.quorum = 0.6;
    options.staleness_bound = 2;
    options.adaptive_deadline = true;
    net::SimNetwork network(8, net::DeviceProfile{}, net::LinkProfile{});
    network.set_fault_model(net::FaultModel(spec));
    const auto result = train_async_quorum_plos(dataset, options, &network);
    if (threads == 1) {
      reference_journal = journal.to_jsonl();
      reference_model = result.model;
      reference_virtual = result.async.virtual_seconds;
      EXPECT_FALSE(reference_journal.empty());
    } else {
      EXPECT_EQ(journal.to_jsonl(), reference_journal)
          << "journal diverged at " << threads << " threads";
      expect_models_bitwise_equal(reference_model, result.model);
      EXPECT_EQ(result.async.virtual_seconds, reference_virtual)
          << "virtual clock diverged at " << threads << " threads";
    }
  }
}

/// The bounded-staleness property: with 20% churn and a bound of S, no
/// server block older than S steps ever enters an aggregate — at any
/// thread count — and the bound actually bites (evictions happen).
TEST(AsyncQuorum, NoAggregateEverSeesBlocksOlderThanBound) {
  auto dataset = make_population(10, 0.5, 5, 0.4, 24);
  constexpr std::uint64_t kBound = 3;
  net::FaultSpec spec;
  spec.offline_probability = 0.2;  // 20% churn
  spec.drop_probability = 0.1;
  spec.straggler_probability = 0.3;
  spec.straggler_slowdown = 6.0;
  spec.seed = 31;

  for (int threads : {1, 2, 4, 8}) {
    obs::Journal journal;
    AsyncQuorumOptions options;
    options.base = fast_base();
    options.base.num_threads = threads;
    options.base.journal = &journal;
    options.quorum = 0.5;
    options.staleness_bound = kBound;
    net::SimNetwork network(10, net::DeviceProfile{}, net::LinkProfile{});
    network.set_fault_model(net::FaultModel(spec));
    const auto result = train_async_quorum_plos(dataset, options, &network);

    EXPECT_LE(result.async.max_staleness_seen, kBound);
    std::uint64_t evictions = 0;
    for (const obs::RoundRecord& record : journal.records()) {
      EXPECT_LE(record.max_staleness, kBound)
          << "stale block in aggregate at cccp " << record.cccp_round
          << " admm " << record.admm_iteration << " (" << threads
          << " threads)";
      ASSERT_FALSE(record.staleness_hist.empty());
      for (std::size_t bucket = static_cast<std::size_t>(kBound) + 1;
           bucket < record.staleness_hist.size(); ++bucket) {
        EXPECT_EQ(record.staleness_hist[bucket], 0u);
      }
      evictions += record.evictions_offline + record.evictions_late +
                   record.evictions_failed;
    }
    // The property must not hold vacuously: churn at this rate has to
    // trigger evictions, otherwise the bound was never exercised.
    EXPECT_GT(evictions, 0u) << "at " << threads << " threads";
  }
}

/// A partial quorum must cut rounds earlier than the full barrier on a
/// straggler-heavy fleet: same fleet, same faults, less virtual time.
TEST(AsyncQuorum, PartialQuorumShortensVirtualTime) {
  auto dataset = make_population(10, 0.4, 5, 0.4, 25);
  net::FaultSpec spec;
  spec.straggler_probability = 0.3;
  spec.straggler_slowdown = 8.0;
  spec.seed = 41;

  const auto run = [&](double quorum) {
    AsyncQuorumOptions options;
    options.base = fast_base();
    options.quorum = quorum;
    options.staleness_bound = 1u << 20;  // isolate the quorum effect
    options.adaptive_deadline = false;
    net::SimNetwork network(10, net::DeviceProfile{}, net::LinkProfile{});
    network.set_fault_model(net::FaultModel(spec));
    return train_async_quorum_plos(dataset, options, &network);
  };

  const auto barrier = run(1.0);
  const auto quorum = run(0.6);
  ASSERT_GT(barrier.async.virtual_seconds, 0.0);
  EXPECT_LT(quorum.async.virtual_seconds,
            0.8 * barrier.async.virtual_seconds);
}

TEST(AsyncQuorum, RejectsInvalidQuorum) {
  auto dataset = make_population(3, 0.3, 2, 0.4, 26);
  AsyncQuorumOptions options;
  options.base = fast_base();
  net::SimNetwork network(3, net::DeviceProfile{}, net::LinkProfile{});
  options.quorum = 0.0;
  EXPECT_THROW(train_async_quorum_plos(dataset, options, &network),
               PreconditionError);
  options.quorum = 1.5;
  EXPECT_THROW(train_async_quorum_plos(dataset, options, &network),
               PreconditionError);
  options.quorum = 0.5;
  EXPECT_THROW(train_async_quorum_plos(dataset, options, nullptr),
               PreconditionError);
}

// ---- AutoTuner ------------------------------------------------------------

obs::RoundRecord record_with_tail(double stale_p99) {
  obs::RoundRecord record;
  record.stale_p99 = stale_p99;
  return record;
}

AutoTuneConfig small_config() {
  AutoTuneConfig config;
  config.enabled = true;
  config.min_quorum = 0.5;
  config.max_quorum = 1.0;
  config.quorum_step = 0.1;
  config.min_bound = 2;
  config.max_bound = 16;
  config.patience = 2;
  config.cooldown = 2;
  return config;
}

TEST(AutoTuner, WidensBoundAfterPatienceThenHoldsThroughCooldown) {
  AutoTuner tuner(small_config(), 0.6, 4);
  // p99 at 3.5 >= 0.75 * 4: widen signal, but patience = 2 means the first
  // sighting produces no action.
  AutoTuneDecision d = tuner.observe(record_with_tail(3.5));
  EXPECT_STREQ(d.event, "");
  EXPECT_EQ(tuner.staleness_bound(), 4u);
  d = tuner.observe(record_with_tail(3.5));
  EXPECT_STREQ(d.event, "bound_widen");
  EXPECT_EQ(d.trigger, 3.5);
  EXPECT_EQ(tuner.staleness_bound(), 8u);
  EXPECT_EQ(d.staleness_bound, 8u);
  // Two cooldown steps hold even though the signal persists at the new
  // bound (7 >= 0.75 * 8)...
  d = tuner.observe(record_with_tail(7.0));
  EXPECT_STREQ(d.event, "hold");
  d = tuner.observe(record_with_tail(7.0));
  EXPECT_STREQ(d.event, "hold");
  EXPECT_EQ(tuner.staleness_bound(), 8u);
  // ...and the streak carried through the hold, so the next step acts.
  d = tuner.observe(record_with_tail(7.0));
  EXPECT_STREQ(d.event, "bound_widen");
  EXPECT_EQ(tuner.staleness_bound(), 16u);
}

TEST(AutoTuner, RaisesQuorumOnceBoundIsMaxed) {
  AutoTuneConfig config = small_config();
  config.cooldown = 0;
  AutoTuner tuner(config, 0.6, 16);
  tuner.observe(record_with_tail(15.0));
  const AutoTuneDecision d = tuner.observe(record_with_tail(15.0));
  EXPECT_STREQ(d.event, "quorum_up");
  EXPECT_EQ(tuner.staleness_bound(), 16u);
  EXPECT_NEAR(tuner.quorum(), 0.7, 1e-12);
}

TEST(AutoTuner, LowersQuorumWhenTailIsComfortablyInsideTheBound) {
  AutoTuneConfig config = small_config();
  config.cooldown = 0;
  AutoTuner tuner(config, 0.8, 16);
  tuner.observe(record_with_tail(2.0));  // 2 * 2 <= 16: lower signal
  const AutoTuneDecision d = tuner.observe(record_with_tail(2.0));
  EXPECT_STREQ(d.event, "quorum_down");
  EXPECT_NEAR(tuner.quorum(), 0.7, 1e-12);
  EXPECT_EQ(tuner.staleness_bound(), 16u);  // tighten deferred to the floor
}

TEST(AutoTuner, TightensBoundOnlyAfterQuorumReachesTheFloor) {
  AutoTuneConfig config = small_config();
  config.cooldown = 0;
  AutoTuner tuner(config, 0.5, 16);  // quorum already at min_quorum
  tuner.observe(record_with_tail(1.0));  // 4 * 1 <= 16: tighten signal
  const AutoTuneDecision d = tuner.observe(record_with_tail(1.0));
  EXPECT_STREQ(d.event, "bound_tighten");
  EXPECT_EQ(tuner.staleness_bound(), 8u);
  EXPECT_NEAR(tuner.quorum(), 0.5, 1e-12);
}

TEST(AutoTuner, NoisyRoundDoesNotFlipAKnob) {
  AutoTuner tuner(small_config(), 0.6, 4);
  // Alternate widen / quiet: the streak resets each quiet step, so with
  // patience = 2 nothing ever fires.
  for (int i = 0; i < 10; ++i) {
    const double p99 = (i % 2 == 0) ? 3.9 : 0.0;
    const AutoTuneDecision d = tuner.observe(record_with_tail(p99));
    EXPECT_TRUE(d.event[0] == '\0' || std::string(d.event) == "hold") << i;
  }
  EXPECT_EQ(tuner.staleness_bound(), 4u);
  EXPECT_NEAR(tuner.quorum(), 0.6, 1e-12);
}

TEST(AutoTuner, UnsetSketchMeansNoDecision) {
  AutoTuner tuner(small_config(), 0.6, 4);
  const AutoTuneDecision d = tuner.observe(obs::RoundRecord{});
  EXPECT_STREQ(d.event, "");
  EXPECT_TRUE(std::isnan(d.trigger));
}

TEST(AutoTuner, ClampsInitialKnobsAndRejectsBadConfig) {
  AutoTuner tuner(small_config(), 1.5, 1000);
  EXPECT_NEAR(tuner.quorum(), 1.0, 1e-12);
  EXPECT_EQ(tuner.staleness_bound(), 16u);
  AutoTuneConfig bad = small_config();
  bad.patience = 0;
  EXPECT_THROW(AutoTuner(bad, 0.6, 4), PreconditionError);
}

TEST(LatencyModel, CompletionSecondsIsDeterministicAndJitterBounded) {
  LatencyModelSpec spec;
  spec.jitter = 0.2;
  spec.seed = 77;
  const double base = spec.compute_base_s;
  const double a = completion_seconds(spec, 0.1, 50, 10.0, 1.0, 3, 4);
  const double b = completion_seconds(spec, 0.1, 50, 10.0, 1.0, 3, 4);
  EXPECT_EQ(a, b);
  const double nominal =
      0.1 + (base + spec.compute_per_qp_iter_s * 50.0) * 10.0;
  EXPECT_GE(a, nominal * 0.8);
  EXPECT_LT(a, nominal * 1.2);
  // Different devices draw different jitter.
  const double c = completion_seconds(spec, 0.1, 50, 10.0, 1.0, 3, 5);
  EXPECT_NE(a, c);
  // Zero jitter is exactly the nominal time.
  spec.jitter = 0.0;
  EXPECT_EQ(completion_seconds(spec, 0.1, 50, 10.0, 1.0, 3, 4), nominal);
  // The straggler multiplier scales only the compute proxy.
  spec.jitter = 0.0;
  const double slowed = completion_seconds(spec, 0.1, 50, 10.0, 3.0, 3, 4);
  EXPECT_DOUBLE_EQ(slowed,
                   0.1 + (base + spec.compute_per_qp_iter_s * 50.0) * 30.0);
}

TEST(AdaptiveDeadlinesTest, EwmaTracksObservationsAndSlackApplies) {
  AdaptiveDeadlines deadlines(2, /*adaptive=*/true, /*slack=*/2.0,
                              /*alpha=*/0.5, /*fixed_deadline_s=*/0.0);
  // No observations yet and no fixed fallback: no deadline.
  EXPECT_TRUE(std::isinf(deadlines.deadline(0)));
  deadlines.observe(0, 1.0);
  EXPECT_DOUBLE_EQ(deadlines.ewma(0), 1.0);
  EXPECT_DOUBLE_EQ(deadlines.deadline(0), 2.0);
  deadlines.observe(0, 2.0);
  EXPECT_DOUBLE_EQ(deadlines.ewma(0), 1.5);
  EXPECT_DOUBLE_EQ(deadlines.deadline(0), 3.0);
  // Device 1 is untouched.
  EXPECT_TRUE(std::isinf(deadlines.deadline(1)));
}

TEST(AdaptiveDeadlinesTest, FixedFallbackWhenNotAdaptive) {
  AdaptiveDeadlines deadlines(1, /*adaptive=*/false, /*slack=*/2.0,
                              /*alpha=*/0.5, /*fixed_deadline_s=*/4.0);
  EXPECT_DOUBLE_EQ(deadlines.deadline(0), 4.0);
  deadlines.observe(0, 100.0);  // observations must not move a fixed deadline
  EXPECT_DOUBLE_EQ(deadlines.deadline(0), 4.0);
}

}  // namespace
}  // namespace plos::async
