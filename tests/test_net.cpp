// Tests for binary serialization and the network/device simulator.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/assert.hpp"
#include "net/event_queue.hpp"
#include "net/serialize.hpp"
#include "net/simnet.hpp"
#include "rng/engine.hpp"

namespace plos::net {
namespace {

TEST(Serialize, RoundTripScalars) {
  Serializer s;
  s.write_u32(7);
  s.write_u64(1ULL << 40);
  s.write_f64(-3.25);
  Deserializer d(s.buffer());
  EXPECT_EQ(d.read_u32(), 7u);
  EXPECT_EQ(d.read_u64(), 1ULL << 40);
  EXPECT_DOUBLE_EQ(d.read_f64(), -3.25);
  EXPECT_TRUE(d.exhausted());
}

TEST(Serialize, RoundTripVector) {
  Serializer s;
  const std::vector<double> v{1.0, -2.5, 1e300, 0.0};
  s.write_vector(v);
  Deserializer d(s.buffer());
  EXPECT_EQ(d.read_vector(), v);
}

TEST(Serialize, EmptyVector) {
  Serializer s;
  s.write_vector(std::vector<double>{});
  EXPECT_EQ(s.size_bytes(), 8u);  // just the length prefix
  Deserializer d(s.buffer());
  EXPECT_TRUE(d.read_vector().empty());
}

TEST(Serialize, SizeIsExact) {
  Serializer s;
  s.write_u32(1);
  s.write_vector(std::vector<double>(10, 0.0));
  EXPECT_EQ(s.size_bytes(), 4u + 8u + 80u);
}

TEST(Serialize, UnderflowThrows) {
  Serializer s;
  s.write_u32(1);
  Deserializer d(s.buffer());
  d.read_u32();
  EXPECT_THROW(d.read_u32(), PreconditionError);
}

TEST(Serialize, CorruptVectorLengthThrows) {
  Serializer s;
  s.write_u64(1000);  // claims 1000 doubles, provides none
  Deserializer d(s.buffer());
  EXPECT_THROW(d.read_vector(), PreconditionError);
}

TEST(Frame, RoundTrip) {
  Serializer s;
  s.write_u32(2);
  s.write_vector(std::vector<double>{1.0, -2.5, 1e300});
  const auto frame = frame_message(s.buffer());
  EXPECT_EQ(frame.size(), kFrameHeaderBytes + s.size_bytes());
  const auto payload = unframe_message(frame);
  ASSERT_TRUE(payload.has_value());
  ASSERT_EQ(payload->size(), s.size_bytes());
  Deserializer d(*payload);
  EXPECT_EQ(d.read_u32(), 2u);
  EXPECT_EQ(d.read_vector(), (std::vector<double>{1.0, -2.5, 1e300}));
}

TEST(Frame, EmptyPayloadRoundTrips) {
  const auto frame = frame_message(std::vector<std::uint8_t>{});
  EXPECT_EQ(frame.size(), kFrameHeaderBytes);
  const auto payload = unframe_message(frame);
  ASSERT_TRUE(payload.has_value());
  EXPECT_TRUE(payload->empty());
}

TEST(Frame, DetectsEverySingleBitFlip) {
  Serializer s;
  s.write_u32(7);
  s.write_f64(3.25);
  const auto frame = frame_message(s.buffer());
  for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
    auto damaged = frame;
    damaged[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(unframe_message(damaged).has_value())
        << "bit flip at " << bit << " went undetected";
  }
}

TEST(Frame, DetectsTruncationAndGarbage) {
  Serializer s;
  s.write_u32(7);
  const auto frame = frame_message(s.buffer());
  // Truncated payload, truncated header, trailing garbage, empty input.
  const std::vector<std::uint8_t> short_frame(frame.begin(), frame.end() - 1);
  EXPECT_FALSE(unframe_message(short_frame).has_value());
  const std::vector<std::uint8_t> header_only(frame.begin(),
                                              frame.begin() + 8);
  EXPECT_FALSE(unframe_message(header_only).has_value());
  auto padded = frame;
  padded.push_back(0);
  EXPECT_FALSE(unframe_message(padded).has_value());
  EXPECT_FALSE(unframe_message(std::vector<std::uint8_t>{}).has_value());
}

TEST(Frame, Crc32KnownVector) {
  // IEEE CRC32 of "123456789" is 0xCBF43926 (the canonical check value).
  const char* text = "123456789";
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(text);
  EXPECT_EQ(crc32(std::span<const std::uint8_t>(bytes, 9)), 0xCBF43926u);
}

SimNetwork make_network(std::size_t devices = 3) {
  DeviceProfile device;
  device.cpu_slowdown = 10.0;
  device.compute_power_watts = 2.0;
  device.tx_energy_j_per_kb = 0.008;
  device.rx_energy_j_per_kb = 0.005;
  LinkProfile link;
  link.latency_s = 0.01;
  link.bandwidth_kbps = 1024.0;  // 1 KiB takes 8/1024*1024 = 8 ms
  return SimNetwork(devices, device, link);
}

TEST(SimNetwork, ByteAccounting) {
  SimNetwork net = make_network();
  net.send_to_device(0, 100);
  net.send_to_server(0, 50);
  net.send_to_server(1, 70);
  EXPECT_EQ(net.device_metrics(0).bytes_received, 100u);
  EXPECT_EQ(net.device_metrics(0).bytes_sent, 50u);
  EXPECT_EQ(net.device_metrics(1).bytes_sent, 70u);
  EXPECT_EQ(net.server_metrics().bytes_sent, 100u);
  EXPECT_EQ(net.server_metrics().bytes_received, 120u);
  EXPECT_EQ(net.device_metrics(0).messages_received, 1u);
  EXPECT_EQ(net.device_metrics(0).messages_sent, 1u);
}

TEST(SimNetwork, ComputeScaledByCpuFactor) {
  SimNetwork net = make_network();
  net.account_device_compute(0, 0.5);
  EXPECT_DOUBLE_EQ(net.device_metrics(0).compute_seconds, 5.0);
  net.account_server_compute(0.25);
  EXPECT_DOUBLE_EQ(net.server_metrics().compute_seconds, 0.25);
}

TEST(SimNetwork, RoundWallClockIsServerPlusSlowestDevice) {
  SimNetwork net = make_network(2);
  net.account_device_compute(0, 0.1);  // 1.0 s device time
  net.account_device_compute(1, 0.3);  // 3.0 s device time
  net.account_server_compute(0.5);
  net.end_round();
  EXPECT_DOUBLE_EQ(net.total_simulated_seconds(), 0.5 + 3.0);
  EXPECT_EQ(net.rounds_completed(), 1u);
}

TEST(SimNetwork, TransferTimeEntersRound) {
  SimNetwork net = make_network(1);
  net.send_to_device(0, 1024);  // latency 0.01 + 8/1024*... = 0.01 + 1/128
  net.end_round();
  EXPECT_NEAR(net.total_simulated_seconds(), 0.01 + 8.0 / 1024.0, 1e-12);
}

TEST(SimNetwork, EnergyModel) {
  SimNetwork net = make_network(1);
  net.account_device_compute(0, 0.1);  // 1 device-second * 2 W = 2 J
  net.send_to_server(0, 2048);         // 2 KB * 0.008 J/KB = 0.016 J
  net.send_to_device(0, 1024);         // 1 KB * 0.005 J/KB = 0.005 J
  EXPECT_NEAR(net.device_metrics(0).energy_joules, 2.0 + 0.016 + 0.005, 1e-12);
  EXPECT_NEAR(net.total_device_energy(), 2.021, 1e-12);
}

TEST(SimNetwork, MeanBytesPerDevice) {
  SimNetwork net = make_network(2);
  net.send_to_device(0, 100);
  net.send_to_device(1, 300);
  EXPECT_DOUBLE_EQ(net.mean_bytes_per_device(), 200.0);
}

TEST(SimNetwork, RoundsResetScratch) {
  SimNetwork net = make_network(1);
  net.account_device_compute(0, 0.1);
  net.end_round();
  net.end_round();  // empty round adds nothing
  EXPECT_DOUBLE_EQ(net.total_simulated_seconds(), 1.0);
  EXPECT_EQ(net.rounds_completed(), 2u);
}

TEST(SimNetwork, InvalidUsageThrows) {
  SimNetwork net = make_network(1);
  EXPECT_THROW(net.send_to_device(5, 10), PreconditionError);
  EXPECT_THROW(net.account_device_compute(0, -1.0), PreconditionError);
  EXPECT_THROW(SimNetwork(0, DeviceProfile{}, LinkProfile{}),
               PreconditionError);
}

// ---- EventQueue -----------------------------------------------------------

TEST(EventQueue, PopOrderIsIndependentOfInsertionOrder) {
  const std::vector<Event> events{
      {2.0, 0, 3, EventKind::kUpload},   {1.0, 0, 1, EventKind::kDeadline},
      {1.0, 0, 1, EventKind::kUpload},   {1.0, 0, 0, EventKind::kDeadline},
      {2.0, 1, 0, EventKind::kUpload},   {0.5, 2, 7, EventKind::kDeadline},
  };
  // Drain once in the given order, once reversed: identical sequences.
  std::vector<Event> forward_popped;
  std::vector<Event> reverse_popped;
  {
    EventQueue queue;
    for (const Event& event : events) queue.push(event);
    while (!queue.empty()) forward_popped.push_back(queue.pop());
  }
  {
    EventQueue queue;
    for (auto it = events.rbegin(); it != events.rend(); ++it) queue.push(*it);
    while (!queue.empty()) reverse_popped.push_back(queue.pop());
  }
  ASSERT_EQ(forward_popped.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(forward_popped[i].time, reverse_popped[i].time);
    EXPECT_EQ(forward_popped[i].round, reverse_popped[i].round);
    EXPECT_EQ(forward_popped[i].device, reverse_popped[i].device);
    EXPECT_EQ(forward_popped[i].kind, reverse_popped[i].kind);
    if (i > 0) {
      EXPECT_TRUE(event_before(forward_popped[i - 1], forward_popped[i]));
    }
  }
  // Ties on time break by (round, device, kind), upload before deadline.
  EXPECT_EQ(forward_popped[0].device, 7u);               // t=0.5
  EXPECT_EQ(forward_popped[1].device, 0u);               // t=1.0, device 0
  EXPECT_EQ(forward_popped[2].kind, EventKind::kUpload); // t=1.0, device 1
  EXPECT_EQ(forward_popped[3].kind, EventKind::kDeadline);
  EXPECT_EQ(forward_popped[4].round, 0u);                // t=2.0, round 0
  EXPECT_EQ(forward_popped[5].round, 1u);
}

TEST(EventQueue, RejectsNonFiniteOrNegativeTimes) {
  EventQueue queue;
  Event event;
  event.time = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(queue.push(event), PreconditionError);
  event.time = std::numeric_limits<double>::infinity();
  EXPECT_THROW(queue.push(event), PreconditionError);
  event.time = -1.0;
  EXPECT_THROW(queue.push(event), PreconditionError);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, TieOrderSurvivesRandomizedInsertion) {
  // Property test for the total-order claim: build a fleet of events with
  // heavy time ties (coarse grid), then push them in many shuffled orders.
  // Every drain must yield the same sequence, sorted under event_before.
  std::vector<Event> events;
  for (std::uint64_t round = 0; round < 4; ++round) {
    for (std::uint64_t device = 0; device < 8; ++device) {
      // A device emits at most one upload and one deadline per round, so
      // (round, device, kind) keys are unique and the order is total.
      events.push_back({0.25 * static_cast<double>((round + device) % 3),
                        round, device, EventKind::kUpload});
      events.push_back({0.25 * static_cast<double>((round + device) % 3),
                        round, device, EventKind::kDeadline});
    }
  }

  const auto drain = [](const std::vector<Event>& order) {
    EventQueue queue;
    for (const Event& event : order) queue.push(event);
    std::vector<Event> popped;
    while (!queue.empty()) popped.push_back(queue.pop());
    return popped;
  };
  const std::vector<Event> reference = drain(events);
  ASSERT_EQ(reference.size(), events.size());
  for (std::size_t i = 1; i < reference.size(); ++i) {
    EXPECT_TRUE(event_before(reference[i - 1], reference[i]))
        << "pop sequence not strictly increasing at " << i;
  }

  rng::Engine engine(2024);
  std::vector<Event> shuffled = events;
  for (int trial = 0; trial < 32; ++trial) {
    engine.shuffle(shuffled);
    const std::vector<Event> popped = drain(shuffled);
    for (std::size_t i = 0; i < popped.size(); ++i) {
      EXPECT_EQ(popped[i].time, reference[i].time) << "trial " << trial;
      EXPECT_EQ(popped[i].round, reference[i].round) << "trial " << trial;
      EXPECT_EQ(popped[i].device, reference[i].device) << "trial " << trial;
      EXPECT_EQ(popped[i].kind, reference[i].kind) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace plos::net
