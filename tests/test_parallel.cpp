// ThreadPool unit tests: lifecycle, full index coverage, deterministic
// static chunking, exception propagation, the nested-submit deadlock
// guard, and a mixed-size stress run.
#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace plos::parallel {
namespace {

TEST(ResolveNumThreads, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(resolve_num_threads(0), 1u);
}

TEST(ResolveNumThreads, PositiveValuesAreLiteral) {
  EXPECT_EQ(resolve_num_threads(1), 1u);
  EXPECT_EQ(resolve_num_threads(7), 7u);
  // Oversubscription beyond the hardware count is allowed.
  EXPECT_EQ(resolve_num_threads(64), 64u);
}

TEST(ThreadPool, StartupShutdown) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), static_cast<std::size_t>(threads));
  }
  // Default-constructed = hardware concurrency; destruction joins cleanly
  // even when the pool never ran a task.
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                          std::size_t{64}, std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      pool.parallel_for(n, [&](std::size_t i) {
        ASSERT_LT(i, n);
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads
                                     << " threads, n=" << n;
      }
    }
  }
}

TEST(ThreadPool, StaticChunkingIsContiguousAndAscending) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 103;  // not a multiple of the thread count
  std::vector<std::thread::id> owner(kN);
  std::vector<std::int64_t> order(kN);
  std::atomic<std::int64_t> clock{0};
  pool.parallel_for(kN, [&](std::size_t i) {
    owner[i] = std::this_thread::get_id();
    order[i] = clock.fetch_add(1, std::memory_order_relaxed);
  });
  // Each executing thread owns one contiguous index range...
  std::map<std::thread::id, std::pair<std::size_t, std::size_t>> ranges;
  for (std::size_t i = 0; i < kN; ++i) {
    auto [it, inserted] = ranges.try_emplace(owner[i], i, i);
    if (!inserted) {
      it->second.first = std::min(it->second.first, i);
      it->second.second = std::max(it->second.second, i);
    }
  }
  std::size_t covered = 0;
  for (const auto& [tid, range] : ranges) {
    for (std::size_t i = range.first; i <= range.second; ++i) {
      EXPECT_EQ(owner[i], tid) << "chunk not contiguous at index " << i;
    }
    covered += range.second - range.first + 1;
    // ...and runs it in ascending index order.
    for (std::size_t i = range.first; i < range.second; ++i) {
      EXPECT_LT(order[i], order[i + 1]);
    }
  }
  EXPECT_EQ(covered, kN);
  EXPECT_LE(ranges.size(), 4u);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives a failed loop and keeps working.
  std::atomic<int> sum{0};
  pool.parallel_for(10, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, LowestChunkExceptionWins) {
  // Both chunk 0 (caller) and a worker chunk throw; the caller must see the
  // lowest chunk's exception deterministically.
  ThreadPool pool(2);
  try {
    pool.parallel_for(100, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("chunk0");
      if (i == 99) throw std::logic_error("chunk1");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk0");
  }
}

TEST(ThreadPool, SubmitRunsTaskAndPropagatesException) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran.store(true); }).get();
  EXPECT_TRUE(ran.load());
  auto failing = pool.submit([] { throw std::invalid_argument("bad"); });
  EXPECT_THROW(failing.get(), std::invalid_argument);
}

TEST(ThreadPool, NestedParallelForFromWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_sum{0};
  // The outer task occupies the only worker; the nested parallel_for must
  // detect re-entry and run inline instead of waiting on itself.
  auto future = pool.submit([&] {
    pool.parallel_for(50, [&](std::size_t i) {
      inner_sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
    });
    // Nested submit likewise runs inline; waiting on it must not hang.
    pool.submit([&] { inner_sum.fetch_add(1000); }).get();
  });
  ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  future.get();
  EXPECT_EQ(inner_sum.load(), 50 * 49 / 2 + 1000);
}

TEST(ThreadPool, ConcurrentParallelForFromSeveralCallers) {
  // Two external threads drive the same pool at once; per-call bookkeeping
  // must stay independent.
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  auto drive = [&] {
    for (int round = 0; round < 20; ++round) {
      pool.parallel_for(64, [&](std::size_t i) {
        total.fetch_add(static_cast<std::int64_t>(i),
                        std::memory_order_relaxed);
      });
    }
  };
  std::thread a(drive), b(drive);
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 2 * 20 * (64 * 63 / 2));
}

TEST(ThreadPool, StressMixedTaskSizes) {
  ThreadPool pool(8);
  std::int64_t expected = 0;
  std::atomic<std::int64_t> actual{0};
  for (std::size_t n : {std::size_t{1},   std::size_t{7},  std::size_t{512},
                        std::size_t{3},   std::size_t{97}, std::size_t{1024},
                        std::size_t{256}, std::size_t{2},  std::size_t{33}}) {
    for (int repeat = 0; repeat < 5; ++repeat) {
      expected += static_cast<std::int64_t>(n * (n - 1) / 2);
      pool.parallel_for(n, [&](std::size_t i) {
        // Mixed-size busywork so chunks finish at staggered times.
        volatile double sink = 0.0;
        for (std::size_t k = 0; k < (i % 17) * 50; ++k) {
          sink = sink + static_cast<double>(k);
        }
        actual.fetch_add(static_cast<std::int64_t>(i),
                         std::memory_order_relaxed);
      });
    }
  }
  EXPECT_EQ(actual.load(), expected);
}

}  // namespace
}  // namespace plos::parallel
