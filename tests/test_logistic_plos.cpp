// Tests for the logistic-loss PLOS variant (smooth future-work extension).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/assert.hpp"
#include "core/centralized_plos.hpp"
#include "core/evaluation.hpp"
#include "core/logistic_plos.hpp"
#include "data/labeling.hpp"
#include "data/synthetic.hpp"
#include "rng/engine.hpp"
#include "svm/linear_svm.hpp"

namespace plos::core {
namespace {

data::MultiUserDataset make_population(std::size_t num_users,
                                       double max_rotation,
                                       std::size_t num_providers,
                                       double training_rate,
                                       std::uint64_t seed,
                                       std::size_t points_per_class = 40) {
  data::SyntheticSpec spec;
  spec.num_users = num_users;
  spec.points_per_class = points_per_class;
  spec.max_rotation = max_rotation;
  rng::Engine engine(seed);
  auto dataset = data::generate_synthetic(spec, engine);
  std::vector<std::size_t> providers(num_providers);
  for (std::size_t i = 0; i < num_providers; ++i) providers[i] = i;
  data::reveal_labels(dataset, providers, training_rate, engine);
  return dataset;
}

LogisticPlosOptions fast_options() {
  LogisticPlosOptions options;
  options.params.lambda = 100.0;
  options.params.cl = 10.0;
  options.params.cu = 1.0;
  options.cccp.max_iterations = 5;
  return options;
}

TEST(LogisticPlos, LearnsSimplePopulation) {
  auto dataset = make_population(3, 0.3, 2, 0.4, 1);
  const auto result = train_logistic_plos(dataset, fast_options());
  const auto report = evaluate(dataset, predict_all(dataset, result.model));
  EXPECT_GT(report.providers, 0.8);
  EXPECT_GT(report.non_providers, 0.75);
}

TEST(LogisticPlos, ComparableToHingeVariant) {
  auto dataset = make_population(5, std::numbers::pi / 3.0, 3, 0.3, 2);
  const auto logistic = train_logistic_plos(dataset, fast_options());

  CentralizedPlosOptions hinge_options;
  hinge_options.params = fast_options().params;
  hinge_options.cutting_plane.epsilon = 1e-2;
  hinge_options.cccp.max_iterations = 5;
  const auto hinge = train_centralized_plos(dataset, hinge_options);

  const auto rl = evaluate(dataset, predict_all(dataset, logistic.model));
  const auto rh = evaluate(dataset, predict_all(dataset, hinge.model));
  EXPECT_NEAR(rl.overall, rh.overall, 0.08);
}

TEST(LogisticPlos, ObjectiveTraceDecreases) {
  auto dataset = make_population(4, 0.6, 2, 0.3, 3);
  const auto result = train_logistic_plos(dataset, fast_options());
  const auto& trace = result.diagnostics.objective_trace;
  ASSERT_GE(trace.size(), 1u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i], trace[i - 1] * 1.02 + 1e-6);
  }
}

TEST(LogisticPlos, ImprovesOverSvmInitialization) {
  // The final model must score no worse than the initialization point
  // (pooled-SVM w0, zero deviations) on the non-convex objective.
  auto dataset = make_population(4, 0.5, 2, 0.4, 4);
  const auto options = fast_options();
  const auto result = train_logistic_plos(dataset, options);

  PersonalizedModel init = PersonalizedModel::zeros(4, dataset.dim());
  {
    std::vector<linalg::Vector> xs;
    std::vector<int> ys;
    for (const auto& u : dataset.users) {
      for (std::size_t i : u.revealed_indices()) {
        xs.push_back(u.samples[i]);
        ys.push_back(u.true_labels[i]);
      }
    }
    init.global_weights = svm::train_linear_svm(xs, ys).weights;
  }
  EXPECT_LE(logistic_plos_objective(dataset, result.model, options.params),
            logistic_plos_objective(dataset, init, options.params) + 1e-9);
}

TEST(LogisticPlos, ObjectiveValueSanity) {
  auto dataset = make_population(2, 0.0, 1, 0.5, 6, 10);
  const auto model = PersonalizedModel::zeros(2, dataset.dim());
  PlosHyperParams params;
  params.cl = 1.0;
  params.cu = 1.0;
  // All margins 0: every loss term is log(2), normalized per user -> 2log2.
  EXPECT_NEAR(logistic_plos_objective(dataset, model, params),
              2.0 * std::log(2.0), 1e-12);
}

TEST(LogisticPlos, RunsWithNoLabels) {
  auto dataset = make_population(3, 0.0, 0, 0.0, 7, 15);
  const auto result = train_logistic_plos(dataset, fast_options());
  EXPECT_EQ(result.model.num_users(), 3u);
  for (double v : result.diagnostics.objective_trace) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(LogisticPlos, InvalidOptionsThrow) {
  auto dataset = make_population(2, 0.0, 1, 0.4, 8, 10);
  auto options = fast_options();
  options.params.lambda = 0.0;
  EXPECT_THROW(train_logistic_plos(dataset, options), PreconditionError);
}

TEST(LogisticPlos, DeterministicGivenOptions) {
  auto dataset = make_population(3, 0.4, 2, 0.4, 9, 15);
  const auto a = train_logistic_plos(dataset, fast_options());
  const auto b = train_logistic_plos(dataset, fast_options());
  EXPECT_TRUE(linalg::approx_equal(a.model.global_weights,
                                   b.model.global_weights, 0.0));
}

}  // namespace
}  // namespace plos::core
