// plos_run — command-line experiment driver.
//
// Generates one of the three simulated populations, reveals labels, trains
// the selected method(s), and prints provider / non-provider accuracy.
//
//   plos_run --dataset body --users 12 --providers 6 --rate 0.1
//   plos_run --dataset har --method plos --lambda 100 --cu 1
//   plos_run --dataset synth --rotation 1.57 --method all,single,plos
//   plos_run --dataset body --distributed --save-model /tmp/model.bin
//
// Run `plos_run --help` for the full flag list.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numbers>
#include <optional>
#include <string>
#include <vector>

#include "core/baselines.hpp"
#include "core/centralized_plos.hpp"
#include "core/distributed_plos.hpp"
#include "core/evaluation.hpp"
#include "core/logistic_plos.hpp"
#include "core/model_io.hpp"
#include "data/labeling.hpp"
#include "data/synthetic.hpp"
#include "net/simnet.hpp"
#include "rng/engine.hpp"
#include "sensing/body_sensor.hpp"
#include "sensing/har.hpp"

namespace {

using namespace plos;

struct Args {
  std::string dataset = "synth";  // synth | body | har
  std::string methods = "plos,all,group,single";
  std::size_t users = 0;  // 0 = dataset default
  std::size_t providers = 0;
  double rate = 0.06;
  double rotation = std::numbers::pi / 2.0;  // synth only
  double lambda = 100.0;
  double cl = 10.0;
  double cu = 1.0;
  std::uint64_t seed = 42;
  bool distributed = false;
  bool logistic = false;
  std::string save_model_path;
};

void print_usage() {
  std::printf(
      "plos_run — train PLOS and baselines on a simulated population\n\n"
      "  --dataset body|har|synth   population simulator (default synth)\n"
      "  --methods LIST             comma list of plos,all,group,single\n"
      "  --users N                  population size (default per dataset)\n"
      "  --providers N              label-providing users (default: half)\n"
      "  --rate R                   labeled fraction per provider (0..1)\n"
      "  --rotation RAD             synth: max rotation angle\n"
      "  --lambda L --cl CL --cu CU PLOS hyper-parameters\n"
      "  --seed S                   RNG seed\n"
      "  --distributed              train PLOS with ADMM on a simulated fleet\n"
      "  --logistic                 use the logistic-loss PLOS variant\n"
      "  --save-model PATH          checkpoint the trained PLOS model\n"
      "  --help                     this message\n");
}

std::optional<Args> parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      print_usage();
      std::exit(0);
    } else if (flag == "--dataset") {
      args.dataset = value();
    } else if (flag == "--methods") {
      args.methods = value();
    } else if (flag == "--users") {
      args.users = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (flag == "--providers") {
      args.providers =
          static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (flag == "--rate") {
      args.rate = std::strtod(value(), nullptr);
    } else if (flag == "--rotation") {
      args.rotation = std::strtod(value(), nullptr);
    } else if (flag == "--lambda") {
      args.lambda = std::strtod(value(), nullptr);
    } else if (flag == "--cl") {
      args.cl = std::strtod(value(), nullptr);
    } else if (flag == "--cu") {
      args.cu = std::strtod(value(), nullptr);
    } else if (flag == "--seed") {
      args.seed = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--distributed") {
      args.distributed = true;
    } else if (flag == "--logistic") {
      args.logistic = true;
    } else if (flag == "--save-model") {
      args.save_model_path = value();
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", flag.c_str());
      return std::nullopt;
    }
  }
  return args;
}

data::MultiUserDataset build_dataset(const Args& args) {
  rng::Engine engine(args.seed);
  data::MultiUserDataset dataset;
  if (args.dataset == "body") {
    sensing::BodySensorSpec spec;
    if (args.users > 0) spec.num_users = args.users;
    dataset = sensing::generate_body_sensor_dataset(spec, engine);
  } else if (args.dataset == "har") {
    sensing::HarSpec spec;
    if (args.users > 0) spec.num_users = args.users;
    dataset = sensing::generate_har_dataset(spec, engine);
  } else if (args.dataset == "synth") {
    data::SyntheticSpec spec;
    if (args.users > 0) spec.num_users = args.users;
    spec.max_rotation = args.rotation;
    dataset = data::generate_synthetic(spec, engine);
  } else {
    std::fprintf(stderr, "unknown dataset '%s'\n", args.dataset.c_str());
    std::exit(2);
  }

  const std::size_t num_providers =
      args.providers > 0 ? args.providers : dataset.num_users() / 2;
  std::vector<std::size_t> providers;
  for (std::size_t i = 0; i < num_providers && i < dataset.num_users(); ++i) {
    providers.push_back(i * dataset.num_users() /
                        std::max<std::size_t>(1, num_providers));
  }
  rng::Engine label_engine(args.seed + 1);
  data::reveal_labels(dataset, providers, args.rate, label_engine);
  return dataset;
}

void print_report(const char* name, const core::AccuracyReport& report) {
  std::printf("%-10s providers %.4f   non-providers %.4f   overall %.4f\n",
              name, report.providers, report.non_providers, report.overall);
}

bool wants(const Args& args, const char* method) {
  return args.methods.find(method) != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed) return 2;
  const Args& args = *parsed;

  const auto dataset = build_dataset(args);
  std::printf("dataset %s: %zu users (%zu providers), %zu samples, dim %zu\n",
              args.dataset.c_str(), dataset.num_users(),
              dataset.labeled_users().size(), dataset.total_samples(),
              dataset.dim());

  core::PlosHyperParams params;
  params.lambda = args.lambda;
  params.cl = args.cl;
  params.cu = args.cu;

  if (wants(args, "plos")) {
    core::PersonalizedModel model;
    if (args.logistic) {
      core::LogisticPlosOptions options;
      options.params = params;
      const auto result = core::train_logistic_plos(dataset, options);
      model = result.model;
      std::printf("logistic PLOS: %d CCCP rounds, %.2fs\n",
                  result.diagnostics.cccp_iterations,
                  result.diagnostics.train_seconds);
    } else if (args.distributed) {
      core::DistributedPlosOptions options;
      options.params = params;
      net::SimNetwork network(dataset.num_users(), net::DeviceProfile{},
                              net::LinkProfile{});
      const auto result =
          core::train_distributed_plos(dataset, options, &network);
      model = result.model;
      std::printf(
          "distributed PLOS: %d ADMM iterations, %.2f simulated s, "
          "%.2f KB/device\n",
          result.diagnostics.admm_iterations_total,
          network.total_simulated_seconds(),
          network.mean_bytes_per_device() / 1024.0);
    } else {
      core::CentralizedPlosOptions options;
      options.params = params;
      const auto result = core::train_centralized_plos(dataset, options);
      model = result.model;
      std::printf("centralized PLOS: %d CCCP rounds, %zu planes, %.2fs\n",
                  result.diagnostics.cccp_iterations,
                  result.diagnostics.final_constraint_count,
                  result.diagnostics.train_seconds);
    }
    print_report("PLOS", core::evaluate(dataset,
                                        core::predict_all(dataset, model)));
    if (!args.save_model_path.empty()) {
      if (core::save_model(model, args.save_model_path)) {
        std::printf("model saved to %s\n", args.save_model_path.c_str());
      } else {
        std::fprintf(stderr, "failed to save model to %s\n",
                     args.save_model_path.c_str());
        return 1;
      }
    }
  }
  if (wants(args, "all")) {
    print_report("All", core::evaluate(dataset, core::run_all_baseline(dataset)));
  }
  if (wants(args, "group")) {
    print_report("Group",
                 core::evaluate(dataset, core::run_group_baseline(dataset)));
  }
  if (wants(args, "single")) {
    print_report("Single",
                 core::evaluate(dataset, core::run_single_baseline(dataset)));
  }
  return 0;
}
