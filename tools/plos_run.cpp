// plos_run — command-line experiment driver.
//
// Generates one of the three simulated populations, reveals labels, trains
// the selected method(s), and prints provider / non-provider accuracy.
//
//   plos_run --dataset body --users 12 --providers 6 --rate 0.1
//   plos_run --dataset har --method plos --lambda 100 --cu 1
//   plos_run --dataset synth --rotation 1.57 --method all,single,plos
//   plos_run --dataset body --distributed --save-model /tmp/model.bin
//
// Run `plos_run --help` for the full flag list.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <cstdlib>
#include <cstring>
#include <numbers>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "async/async_admm.hpp"
#include "core/baselines.hpp"
#include "core/centralized_plos.hpp"
#include "core/distributed_plos.hpp"
#include "core/evaluation.hpp"
#include "core/logistic_plos.hpp"
#include "core/model_io.hpp"
#include "data/dataset.hpp"
#include "data/labeling.hpp"
#include "data/synthetic.hpp"
#include "net/simnet.hpp"
#include "obs/flight.hpp"
#include "obs/journal.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "rng/engine.hpp"
#include "sensing/body_sensor.hpp"
#include "sensing/har.hpp"

namespace {

using namespace plos;

struct Args {
  std::string dataset = "synth";  // synth | body | har
  std::string methods = "plos,all,group,single";
  std::size_t users = 0;  // 0 = dataset default
  std::size_t providers = 0;
  double rate = 0.06;
  double rotation = std::numbers::pi / 2.0;  // synth only
  double lambda = 100.0;
  double cl = 10.0;
  double cu = 1.0;
  std::uint64_t seed = 42;
  int threads = 1;  // 0 = hardware concurrency
  bool distributed = false;
  bool logistic = false;
  // Bitwise-transparent hot-path caches (DESIGN.md §13); disabled by
  // --no-hotpath-cache or PLOS_NO_HOTPATH_CACHE=1 for equivalence runs.
  bool hotpath_cache = true;
  // Fault injection (distributed only; see net/fault.hpp for semantics).
  double fault_drop = 0.0;
  double fault_offline = 0.0;
  double fault_straggler = 0.0;
  double fault_corrupt = 0.0;
  double round_deadline = 0.0;  // simulated seconds; 0 = wait for stragglers
  // Asynchronous quorum engine (src/async); implies --distributed.
  bool async_mode = false;
  double quorum = 0.6;
  std::uint64_t staleness_bound = 3;
  bool adaptive_deadline = true;
  bool auto_tune = false;      // --auto-tune on: journal-driven knob walk
  std::string flight_out;      // empty = no flight recorder; "-" = stdout
  std::uint64_t journal_every = 1;  // keep every Nth journal record
  std::string save_model_path;
  std::string log_level;    // empty = logging stays off
  std::string trace_out;    // empty = no trace collection
  std::string metrics_out;  // empty = no metrics snapshot; "-" = stdout
  std::string metrics_format = "json";  // json | prom
  std::string manifest_out;  // empty = no run manifest; "-" = stdout
  std::string journal_out;   // empty = no round journal; "-" = stdout
  std::string profile_out;   // empty = no profile tree; "-" = stdout
  std::string watchdog = "off";  // off | warn | abort
  int watchdog_stall_rounds = 0;  // 0 = stall detection disabled
};

void print_usage() {
  std::printf(
      "plos_run — train PLOS and baselines on a simulated population\n\n"
      "  --dataset body|har|synth   population simulator (default synth)\n"
      "  --methods LIST             comma list of plos,all,group,single\n"
      "  --users N                  population size (default per dataset)\n"
      "  --providers N              label-providing users (default: half)\n"
      "  --rate R                   labeled fraction per provider (0..1)\n"
      "  --rotation RAD             synth: max rotation angle\n"
      "  --lambda L --cl CL --cu CU PLOS hyper-parameters\n"
      "  --seed S                   RNG seed\n"
      "  --threads N                worker threads for training (default 1;\n"
      "                             0 = hardware concurrency); results are\n"
      "                             bitwise identical for every N\n"
      "  --distributed              train PLOS with ADMM on a simulated fleet\n"
      "  --fault-drop P             per-message-attempt drop probability\n"
      "  --fault-offline P          per-round device churn probability\n"
      "  --fault-straggler P        per-round straggler probability (4x slowdown)\n"
      "  --fault-corrupt P          per-message bit-corruption probability\n"
      "                             (CRC32-framed, detected and retried)\n"
      "  --round-deadline S         simulated seconds the server waits per\n"
      "                             round; stragglers past it are left behind\n"
      "                             (0 = wait). Fault flags need --distributed\n"
      "  --async                    asynchronous bounded-staleness quorum\n"
      "                             engine instead of the round barrier\n"
      "                             (implies --distributed; --quorum 1.0 with\n"
      "                             --adaptive-deadline off reproduces the\n"
      "                             synchronous run bit for bit)\n"
      "  --quorum Q                 fraction of on-time uploads that closes a\n"
      "                             round, in (0, 1] (default 0.6)\n"
      "  --staleness-bound N        max aggregation steps a device update may\n"
      "                             lag before its server block is evicted;\n"
      "                             positive integer (default 3)\n"
      "  --adaptive-deadline on|off per-device deadlines from the latency\n"
      "                             EWMA (default on)\n"
      "  --auto-tune on|off         walk --quorum / --staleness-bound per\n"
      "                             round from the journal's staleness sketch\n"
      "                             (deterministic hysteresis; every decision\n"
      "                             is journaled; needs --async; default off)\n"
      "  --flight-out FILE          write the flight recorder's Chrome-trace\n"
      "                             JSON of per-device lifecycle events\n"
      "                             (upload attempts, deadline misses, late\n"
      "                             folds, evictions, quorum cuts; needs\n"
      "                             --async; '-' = stdout; explore with\n"
      "                             'plos_inspect timeline')\n"
      "  --no-hotpath-cache         disable the Gram/Lipschitz memoization\n"
      "                             (PLOS_NO_HOTPATH_CACHE=1 does the same);\n"
      "                             results are bitwise identical, only slower\n"
      "  --logistic                 use the logistic-loss PLOS variant\n"
      "  --save-model PATH          checkpoint the trained PLOS model\n"
      "  --log-level LEVEL          trace|debug|info|warn|error|off (stderr)\n"
      "  --trace-out FILE           write Chrome trace-event JSON of solver\n"
      "                             spans (open in chrome://tracing/Perfetto)\n"
      "  --metrics-out FILE         write a metrics-registry snapshot\n"
      "                             ('-' = stdout)\n"
      "  --metrics-format FMT       json (default) or prom (Prometheus text\n"
      "                             exposition) for --metrics-out\n"
      "  --manifest-out FILE        write a run manifest (run.json) capturing\n"
      "                             build, seed, options, dataset fingerprint,\n"
      "                             and final metrics ('-' = stdout)\n"
      "  --journal-out FILE         write the per-round JSONL journal of the\n"
      "                             PLOS training loop ('-' = stdout)\n"
      "  --journal-every N          keep every Nth journal record (counted at\n"
      "                             aggregation boundaries; default 1 = all)\n"
      "  --profile-out FILE         write the hierarchical phase-profile tree\n"
      "                             (per-phase call counts + exact solver\n"
      "                             counters; wall times and peak RSS live in\n"
      "                             its quarantined \"timing\" section)\n"
      "                             ('-' = stdout)\n"
      "  --watchdog MODE            off (default), warn, or abort: convergence\n"
      "                             watchdog over the round journal (NaN,\n"
      "                             divergence, participation collapse; abort\n"
      "                             stops training at the next round boundary)\n"
      "  --watchdog-stall-rounds N  also flag N rounds without objective\n"
      "                             improvement (0 = stall check off)\n"
      "  --help                     this message\n");
}

// ---- strict flag parsing -------------------------------------------------
// Every parse failure (unknown flag, missing value, malformed number)
// prints a diagnostic plus a usage hint and makes the tool exit non-zero:
// a typo must never silently fall back to defaults mid-experiment.

bool parse_double_value(const char* text, double& out) {
  char* end = nullptr;
  out = std::strtod(text, &end);
  // strtod happily parses "nan" and "inf"; a non-finite probability or
  // bound silently corrupts every downstream comparison, so refuse it here.
  return end != text && *end == '\0' && std::isfinite(out);
}

bool parse_u64_value(const char* text, std::uint64_t& out) {
  if (text[0] == '-') return false;
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return end != text && *end == '\0';
}

bool valid_methods_list(const std::string& methods) {
  std::size_t start = 0;
  while (start <= methods.size()) {
    const std::size_t comma = methods.find(',', start);
    const std::string token =
        methods.substr(start, comma == std::string::npos ? std::string::npos
                                                         : comma - start);
    if (token != "plos" && token != "all" && token != "group" &&
        token != "single") {
      return false;
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return true;
}

std::optional<Args> parse(int argc, char** argv) {
  Args args;
  bool ok = true;
  for (int i = 1; i < argc && ok; ++i) {
    const std::string flag = argv[i];
    // Fetches the flag's value; records an error when it is absent.
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "plos_run: missing value for %s\n", flag.c_str());
        ok = false;
        return "";
      }
      return argv[++i];
    };
    const auto double_value = [&](double& out) {
      const char* text = value();
      if (ok && !parse_double_value(text, out)) {
        std::fprintf(stderr, "plos_run: %s expects a number, got '%s'\n",
                     flag.c_str(), text);
        ok = false;
      }
    };
    const auto u64_value = [&](std::uint64_t& out) {
      const char* text = value();
      if (ok && !parse_u64_value(text, out)) {
        std::fprintf(stderr,
                     "plos_run: %s expects a non-negative integer, got '%s'\n",
                     flag.c_str(), text);
        ok = false;
      }
    };
    if (flag == "--help" || flag == "-h") {
      print_usage();
      std::exit(0);
    } else if (flag == "--dataset") {
      args.dataset = value();
    } else if (flag == "--methods") {
      args.methods = value();
      if (ok && !valid_methods_list(args.methods)) {
        std::fprintf(stderr,
                     "plos_run: --methods expects a comma list of "
                     "plos,all,group,single, got '%s'\n",
                     args.methods.c_str());
        ok = false;
      }
    } else if (flag == "--users") {
      std::uint64_t users = 0;
      u64_value(users);
      args.users = static_cast<std::size_t>(users);
    } else if (flag == "--providers") {
      std::uint64_t providers = 0;
      u64_value(providers);
      args.providers = static_cast<std::size_t>(providers);
    } else if (flag == "--rate") {
      double_value(args.rate);
      if (ok && (args.rate < 0.0 || args.rate > 1.0)) {
        std::fprintf(stderr, "plos_run: --rate must be in [0, 1], got %g\n",
                     args.rate);
        ok = false;
      }
    } else if (flag == "--rotation") {
      double_value(args.rotation);
    } else if (flag == "--lambda") {
      double_value(args.lambda);
    } else if (flag == "--cl") {
      double_value(args.cl);
    } else if (flag == "--cu") {
      double_value(args.cu);
    } else if (flag == "--seed") {
      u64_value(args.seed);
    } else if (flag == "--threads") {
      std::uint64_t threads = 0;
      u64_value(threads);
      args.threads = static_cast<int>(threads);
    } else if (flag == "--distributed") {
      args.distributed = true;
    } else if (flag == "--no-hotpath-cache") {
      args.hotpath_cache = false;
    } else if (flag == "--fault-drop" || flag == "--fault-offline" ||
               flag == "--fault-straggler" || flag == "--fault-corrupt") {
      double* slot = flag == "--fault-drop"       ? &args.fault_drop
                     : flag == "--fault-offline"  ? &args.fault_offline
                     : flag == "--fault-straggler" ? &args.fault_straggler
                                                    : &args.fault_corrupt;
      double_value(*slot);
      if (ok && (*slot < 0.0 || *slot > 1.0)) {
        std::fprintf(stderr, "plos_run: %s must be in [0, 1], got %g\n",
                     flag.c_str(), *slot);
        ok = false;
      }
    } else if (flag == "--round-deadline") {
      double_value(args.round_deadline);
      if (ok && args.round_deadline < 0.0) {
        std::fprintf(stderr, "plos_run: --round-deadline must be >= 0, got %g\n",
                     args.round_deadline);
        ok = false;
      }
    } else if (flag == "--async") {
      args.async_mode = true;
      args.distributed = true;
    } else if (flag == "--quorum") {
      double_value(args.quorum);
      if (ok && (args.quorum <= 0.0 || args.quorum > 1.0)) {
        std::fprintf(stderr, "plos_run: --quorum must be in (0, 1], got %g\n",
                     args.quorum);
        ok = false;
      }
    } else if (flag == "--staleness-bound") {
      u64_value(args.staleness_bound);
      if (ok && args.staleness_bound == 0) {
        std::fprintf(stderr,
                     "plos_run: --staleness-bound must be a positive "
                     "integer\n");
        ok = false;
      }
    } else if (flag == "--adaptive-deadline") {
      const std::string mode = value();
      if (ok && mode != "on" && mode != "off") {
        std::fprintf(stderr,
                     "plos_run: --adaptive-deadline expects on or off, "
                     "got '%s'\n",
                     mode.c_str());
        ok = false;
      }
      args.adaptive_deadline = mode == "on";
    } else if (flag == "--auto-tune") {
      const std::string mode = value();
      if (ok && mode != "on" && mode != "off") {
        std::fprintf(stderr,
                     "plos_run: --auto-tune expects on or off, got '%s'\n",
                     mode.c_str());
        ok = false;
      }
      args.auto_tune = mode == "on";
    } else if (flag == "--flight-out") {
      args.flight_out = value();
    } else if (flag == "--journal-every") {
      u64_value(args.journal_every);
      if (ok && args.journal_every == 0) {
        std::fprintf(stderr,
                     "plos_run: --journal-every must be a positive integer\n");
        ok = false;
      }
    } else if (flag == "--logistic") {
      args.logistic = true;
    } else if (flag == "--save-model") {
      args.save_model_path = value();
    } else if (flag == "--log-level") {
      args.log_level = value();
      if (ok && !obs::parse_level(args.log_level).has_value()) {
        std::fprintf(stderr,
                     "plos_run: --log-level expects one of "
                     "trace|debug|info|warn|error|off, got '%s'\n",
                     args.log_level.c_str());
        ok = false;
      }
    } else if (flag == "--trace-out") {
      args.trace_out = value();
    } else if (flag == "--metrics-out") {
      args.metrics_out = value();
    } else if (flag == "--metrics-format") {
      args.metrics_format = value();
      if (ok && args.metrics_format != "json" && args.metrics_format != "prom") {
        std::fprintf(stderr,
                     "plos_run: --metrics-format expects json or prom, "
                     "got '%s'\n",
                     args.metrics_format.c_str());
        ok = false;
      }
    } else if (flag == "--manifest-out") {
      args.manifest_out = value();
    } else if (flag == "--journal-out") {
      args.journal_out = value();
    } else if (flag == "--profile-out") {
      args.profile_out = value();
    } else if (flag == "--watchdog") {
      args.watchdog = value();
      if (ok && args.watchdog != "off" && args.watchdog != "warn" &&
          args.watchdog != "abort") {
        std::fprintf(stderr,
                     "plos_run: --watchdog expects off, warn, or abort, "
                     "got '%s'\n",
                     args.watchdog.c_str());
        ok = false;
      }
    } else if (flag == "--watchdog-stall-rounds") {
      std::uint64_t rounds = 0;
      u64_value(rounds);
      args.watchdog_stall_rounds = static_cast<int>(rounds);
    } else {
      std::fprintf(stderr, "plos_run: unknown flag %s\n", flag.c_str());
      ok = false;
    }
  }
  const bool any_fault_flag = args.fault_drop > 0.0 ||
                              args.fault_offline > 0.0 ||
                              args.fault_straggler > 0.0 ||
                              args.fault_corrupt > 0.0 ||
                              args.round_deadline > 0.0;
  if (ok && any_fault_flag && !(args.distributed && !args.logistic)) {
    std::fprintf(stderr,
                 "plos_run: fault flags apply only to --distributed "
                 "(non-logistic) training\n");
    ok = false;
  }
  if (ok && args.async_mode && args.logistic) {
    std::fprintf(stderr,
                 "plos_run: --async is the distributed hinge-loss engine; "
                 "it cannot combine with --logistic\n");
    ok = false;
  }
  if (ok && args.async_mode && args.round_deadline > 0.0) {
    std::fprintf(stderr,
                 "plos_run: --round-deadline is the synchronous barrier's "
                 "deadline; under --async use --adaptive-deadline\n");
    ok = false;
  }
  if (ok && args.auto_tune && !args.async_mode) {
    std::fprintf(stderr,
                 "plos_run: --auto-tune drives the async engine's quorum and "
                 "staleness bound; it needs --async\n");
    ok = false;
  }
  if (ok && !args.flight_out.empty() && !args.async_mode) {
    std::fprintf(stderr,
                 "plos_run: --flight-out records the async engine's device "
                 "lifecycle; it needs --async\n");
    ok = false;
  }
  // Environment escape hatch so CI equivalence jobs can flip whole test
  // matrices without threading a flag through every invocation. "0" and
  // empty keep the cache on; anything else disables it.
  if (const char* env = std::getenv("PLOS_NO_HOTPATH_CACHE");
      env != nullptr && env[0] != '\0' && std::string(env) != "0") {
    args.hotpath_cache = false;
  }
  if (!ok) {
    std::fprintf(stderr, "run 'plos_run --help' for usage\n");
    return std::nullopt;
  }
  return args;
}

// Pre-creates the canonical solver/network instruments so every snapshot
// carries stable keys (zero-valued when a code path never ran — e.g. no
// ADMM residuals in a centralized run).
void register_standard_instruments() {
  obs::metrics().gauge("plos.objective");
  obs::metrics().gauge("plos.admm.objective");
  obs::metrics().gauge("plos.admm.primal_residual");
  obs::metrics().gauge("plos.admm.dual_residual");
  obs::metrics().gauge("plos.cutting_plane.violation");
  obs::metrics().counter("plos.cutting_plane.constraints_added");
  obs::metrics().counter("qp.capped_simplex.solves");
  obs::metrics().counter("qp.capped_simplex.seconds");
  obs::metrics().histogram("qp.capped_simplex.iterations",
                           obs::default_iteration_buckets());
  obs::metrics().gauge("plos.admm.participation_rate");
  obs::metrics().counter("simnet.bytes_to_device");
  obs::metrics().counter("simnet.bytes_to_server");
  obs::metrics().counter("simnet.messages_to_device");
  obs::metrics().counter("simnet.messages_to_server");
  obs::metrics().counter("simnet.device_energy_joules");
  obs::metrics().counter("simnet.rounds");
  obs::metrics().counter("simnet.messages_dropped");
  obs::metrics().counter("simnet.messages_corrupted");
  obs::metrics().counter("simnet.retries");
  obs::metrics().counter("simnet.failed_messages");
  obs::metrics().counter("plos.watchdog.nonfinite");
  obs::metrics().counter("plos.watchdog.stall");
  obs::metrics().counter("plos.watchdog.divergence");
  obs::metrics().counter("plos.watchdog.participation");
  obs::metrics().counter("plos.watchdog.staleness");
  obs::metrics().counter("plos.watchdog.violations");
  obs::metrics().gauge("plos.watchdog.violations_total");
}

// Writes `text` to `path`, with "-" meaning stdout (so artifacts can be
// piped straight into plos_inspect).
bool write_text(const std::string& path, const std::string& text) {
  if (path == "-") {
    return std::fwrite(text.data(), 1, text.size(), stdout) == text.size();
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), file) == text.size();
  return std::fclose(file) == 0 && ok;
}

std::string render_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

data::MultiUserDataset build_dataset(const Args& args) {
  rng::Engine engine(args.seed);
  data::MultiUserDataset dataset;
  if (args.dataset == "body") {
    sensing::BodySensorSpec spec;
    if (args.users > 0) spec.num_users = args.users;
    dataset = sensing::generate_body_sensor_dataset(spec, engine);
  } else if (args.dataset == "har") {
    sensing::HarSpec spec;
    if (args.users > 0) spec.num_users = args.users;
    dataset = sensing::generate_har_dataset(spec, engine);
  } else if (args.dataset == "synth") {
    data::SyntheticSpec spec;
    if (args.users > 0) spec.num_users = args.users;
    spec.max_rotation = args.rotation;
    dataset = data::generate_synthetic(spec, engine);
  } else {
    std::fprintf(stderr, "unknown dataset '%s'\n", args.dataset.c_str());
    std::exit(2);
  }

  const std::size_t num_providers =
      args.providers > 0 ? args.providers : dataset.num_users() / 2;
  std::vector<std::size_t> providers;
  for (std::size_t i = 0; i < num_providers && i < dataset.num_users(); ++i) {
    providers.push_back(i * dataset.num_users() /
                        std::max<std::size_t>(1, num_providers));
  }
  rng::Engine label_engine(args.seed + 1);
  data::reveal_labels(dataset, providers, args.rate, label_engine);
  return dataset;
}

void print_report(const char* name, const core::AccuracyReport& report) {
  std::printf("%-10s providers %.4f   non-providers %.4f   overall %.4f\n",
              name, report.providers, report.non_providers, report.overall);
}

bool wants(const Args& args, const char* method) {
  return args.methods.find(method) != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed) return 2;
  const Args& args = *parsed;

  if (!args.log_level.empty()) {
    obs::Logger::instance().set_sink(std::make_shared<obs::StderrSink>());
    obs::Logger::instance().set_level(*obs::parse_level(args.log_level));
  }
  if (!args.metrics_out.empty() || !args.profile_out.empty()) {
    obs::metrics().set_enabled(true);
    register_standard_instruments();
  }
  if (!args.trace_out.empty()) {
    obs::TraceCollector::instance().set_enabled(true);
  }
  if (!args.profile_out.empty()) {
    obs::Profiler::instance().reset();
    obs::Profiler::instance().set_enabled(true);
  }

  const auto wall_start = std::chrono::steady_clock::now();

  // Telemetry sinks: the journal collects one record per training round,
  // the watchdog classifies each record online. Both are wired into the
  // trainer options below only when requested.
  obs::Journal journal;
  journal.set_every(args.journal_every);
  obs::WatchdogConfig watchdog_config;
  watchdog_config.on_violation = args.watchdog == "abort"
                                     ? obs::WatchdogConfig::OnViolation::kAbort
                                     : obs::WatchdogConfig::OnViolation::kWarn;
  watchdog_config.stall_rounds = args.watchdog_stall_rounds;
  // Fault-injected runs keep training through partial participation; flag
  // rounds where most of the fleet stops reaching the server.
  watchdog_config.participation_floor = 0.5;
  watchdog_config.participation_rounds = 3;
  // Under the async engine, aggregates that ride the eviction boundary for
  // several consecutive rounds mean the staleness bound is doing all the
  // work — flag that as a staleness collapse.
  if (args.async_mode) {
    watchdog_config.staleness_ceiling = args.staleness_bound;
  }
  obs::Watchdog watchdog(watchdog_config);
  const bool watchdog_on = args.watchdog != "off";
  const bool journal_wanted =
      !args.journal_out.empty() || !args.manifest_out.empty();
  obs::Journal* journal_ptr = journal_wanted ? &journal : nullptr;
  obs::Watchdog* watchdog_ptr = watchdog_on ? &watchdog : nullptr;

  // Deterministic end-of-run facts destined for the manifest.
  std::map<std::string, double> results;
  std::map<std::string, double> timing_map;
  int rounds_completed = 0;
  double plos_overall_accuracy = 0.0;
  bool trained_plos = false;

  const auto dataset = build_dataset(args);
  std::printf("dataset %s: %zu users (%zu providers), %zu samples, dim %zu\n",
              args.dataset.c_str(), dataset.num_users(),
              dataset.labeled_users().size(), dataset.total_samples(),
              dataset.dim());

  core::PlosHyperParams params;
  params.lambda = args.lambda;
  params.cl = args.cl;
  params.cu = args.cu;

  if (wants(args, "plos")) {
    core::PersonalizedModel model;
    if (args.logistic) {
      core::LogisticPlosOptions options;
      options.params = params;
      const auto result = core::train_logistic_plos(dataset, options);
      model = result.model;
      std::printf("logistic PLOS: %d CCCP rounds, %.2fs\n",
                  result.diagnostics.cccp_iterations,
                  result.diagnostics.train_seconds);
      rounds_completed = result.diagnostics.cccp_iterations;
      results["cccp_rounds"] =
          static_cast<double>(result.diagnostics.cccp_iterations);
    } else if (args.distributed) {
      core::DistributedPlosOptions options;
      options.params = params;
      options.num_threads = args.threads;
      options.hotpath_cache = args.hotpath_cache;
      options.journal = journal_ptr;
      options.watchdog = watchdog_ptr;
      net::SimNetwork network(dataset.num_users(), net::DeviceProfile{},
                              net::LinkProfile{});
      net::FaultSpec fault_spec;
      fault_spec.drop_probability = args.fault_drop;
      fault_spec.offline_probability = args.fault_offline;
      fault_spec.straggler_probability = args.fault_straggler;
      fault_spec.corrupt_probability = args.fault_corrupt;
      fault_spec.round_deadline_s = args.round_deadline;
      fault_spec.seed = args.seed;
      if (fault_spec.any_faults()) {
        network.set_fault_model(net::FaultModel(fault_spec));
      }
      core::DistributedPlosDiagnostics diagnostics;
      if (args.async_mode) {
        async::AsyncQuorumOptions async_options;
        async_options.base = options;
        async_options.quorum = args.quorum;
        async_options.staleness_bound = args.staleness_bound;
        async_options.adaptive_deadline = args.adaptive_deadline;
        async_options.autotune.enabled = args.auto_tune;
        obs::FlightRecorder flight_recorder;
        if (!args.flight_out.empty()) {
          async_options.flight = &flight_recorder;
        }
        const auto result =
            async::train_async_quorum_plos(dataset, async_options, &network);
        if (!args.flight_out.empty()) {
          if (!flight_recorder.write(args.flight_out)) {
            std::fprintf(stderr, "failed to write flight log to %s\n",
                         args.flight_out.c_str());
            return 1;
          }
          if (args.flight_out != "-") {
            std::printf("flight log written to %s (%zu events, %llu "
                        "overwritten)\n",
                        args.flight_out.c_str(), flight_recorder.size(),
                        static_cast<unsigned long long>(
                            flight_recorder.dropped()));
          }
        }
        model = result.model;
        diagnostics = result.diagnostics;
        const auto& a = result.async;
        double mean_quorum = 0.0;
        for (const std::uint64_t q : a.quorum_trace) {
          mean_quorum += static_cast<double>(q);
        }
        if (!a.quorum_trace.empty()) {
          mean_quorum /= static_cast<double>(a.quorum_trace.size());
        }
        const std::uint64_t evictions = a.evictions_offline_total +
                                        a.evictions_late_total +
                                        a.evictions_failed_total;
        std::printf(
            "async PLOS: %d ADMM iterations, %.4f virtual s, mean quorum "
            "%.2f/%zu, late uploads %llu, evictions %llu, max staleness "
            "%llu\n",
            diagnostics.admm_iterations_total, a.virtual_seconds, mean_quorum,
            dataset.num_users(),
            static_cast<unsigned long long>(a.late_uploads_total),
            static_cast<unsigned long long>(evictions),
            static_cast<unsigned long long>(a.max_staleness_seen));
        results["async_mean_quorum"] = mean_quorum;
        results["async_late_uploads"] =
            static_cast<double>(a.late_uploads_total);
        results["async_evictions"] = static_cast<double>(evictions);
        results["async_virtual_seconds"] = a.virtual_seconds;
        results["async_max_staleness"] =
            static_cast<double>(a.max_staleness_seen);
        if (args.auto_tune) {
          std::printf(
              "auto-tune: %llu actions, final quorum %.2f, final staleness "
              "bound %llu\n",
              static_cast<unsigned long long>(a.tune_actions), a.final_quorum,
              static_cast<unsigned long long>(a.final_staleness_bound));
          results["async_tune_actions"] =
              static_cast<double>(a.tune_actions);
          results["async_final_quorum"] = a.final_quorum;
          results["async_final_staleness_bound"] =
              static_cast<double>(a.final_staleness_bound);
        }
        // The async engine's wall clock is the deterministic virtual one.
        timing_map["simulated_seconds"] = a.virtual_seconds;
      } else {
        const auto result =
            core::train_distributed_plos(dataset, options, &network);
        model = result.model;
        diagnostics = result.diagnostics;
        std::printf(
            "distributed PLOS: %d ADMM iterations, %.2f simulated s, "
            "%.2f KB/device\n",
            diagnostics.admm_iterations_total,
            network.total_simulated_seconds(),
            network.mean_bytes_per_device() / 1024.0);
        timing_map["simulated_seconds"] = network.total_simulated_seconds();
      }
      if (diagnostics.watchdog_aborted) {
        std::printf("watchdog aborted training after %d ADMM iterations\n",
                    diagnostics.admm_iterations_total);
      }
      rounds_completed = diagnostics.admm_iterations_total;
      results["cccp_rounds"] =
          static_cast<double>(diagnostics.cccp_iterations);
      results["admm_iterations"] =
          static_cast<double>(diagnostics.admm_iterations_total);
      results["qp_solves"] = static_cast<double>(diagnostics.qp_solves);
      if (!diagnostics.objective_trace.empty()) {
        results["final_objective"] = diagnostics.objective_trace.back();
      }
      if (!diagnostics.primal_residual_trace.empty()) {
        results["final_primal_residual"] =
            diagnostics.primal_residual_trace.back();
        results["final_dual_residual"] =
            diagnostics.dual_residual_trace.back();
      }
      const auto traffic = network.traffic_snapshot();
      results["bytes_to_devices"] =
          static_cast<double>(traffic.bytes_to_devices);
      results["bytes_to_server"] = static_cast<double>(traffic.bytes_to_server);
      results["messages_dropped"] =
          static_cast<double>(traffic.messages_dropped);
      results["retries"] = static_cast<double>(traffic.retries);
      if (!diagnostics.participation_trace.empty()) {
        double mean = 0.0;
        for (double p : diagnostics.participation_trace) mean += p;
        results["mean_participation"] =
            mean /
            static_cast<double>(diagnostics.participation_trace.size());
      }
      if (fault_spec.any_faults()) {
        const auto& d = diagnostics;
        double mean_participation = 0.0;
        for (double p : d.participation_trace) mean_participation += p;
        if (!d.participation_trace.empty()) {
          mean_participation /=
              static_cast<double>(d.participation_trace.size());
        }
        std::printf(
            "faults: participation %.3f, offline %zu, deadline misses %zu, "
            "dropped %zu (down %zu / up %zu), corrupted %zu, retries %zu, "
            "failed messages %zu\n",
            mean_participation, d.devices_offline_total,
            d.deadline_misses_total,
            d.fault_counters.downlink_dropped + d.fault_counters.uplink_dropped,
            d.fault_counters.downlink_dropped, d.fault_counters.uplink_dropped,
            d.fault_counters.downlink_corrupted +
                d.fault_counters.uplink_corrupted,
            d.fault_counters.retries, d.fault_counters.failed_messages);
      }
    } else {
      core::CentralizedPlosOptions options;
      options.params = params;
      options.num_threads = args.threads;
      options.hotpath_cache = args.hotpath_cache;
      options.journal = journal_ptr;
      options.watchdog = watchdog_ptr;
      const auto result = core::train_centralized_plos(dataset, options);
      model = result.model;
      std::printf("centralized PLOS: %d CCCP rounds, %zu planes, %.2fs\n",
                  result.diagnostics.cccp_iterations,
                  result.diagnostics.final_constraint_count,
                  result.diagnostics.train_seconds);
      if (result.diagnostics.watchdog_aborted) {
        std::printf("watchdog aborted training after %d CCCP rounds\n",
                    result.diagnostics.cccp_iterations);
      }
      rounds_completed = result.diagnostics.cccp_iterations;
      results["cccp_rounds"] =
          static_cast<double>(result.diagnostics.cccp_iterations);
      results["qp_solves"] = static_cast<double>(result.diagnostics.qp_solves);
      results["constraints"] =
          static_cast<double>(result.diagnostics.final_constraint_count);
      if (!result.diagnostics.objective_trace.empty()) {
        results["final_objective"] = result.diagnostics.objective_trace.back();
      }
    }
    const auto plos_report =
        core::evaluate(dataset, core::predict_all(dataset, model));
    print_report("PLOS", plos_report);
    trained_plos = true;
    plos_overall_accuracy = plos_report.overall;
    results["accuracy.plos.providers"] = plos_report.providers;
    results["accuracy.plos.non_providers"] = plos_report.non_providers;
    results["accuracy.plos.overall"] = plos_report.overall;
    if (!args.save_model_path.empty()) {
      if (core::save_model(model, args.save_model_path)) {
        std::printf("model saved to %s\n", args.save_model_path.c_str());
      } else {
        std::fprintf(stderr, "failed to save model to %s\n",
                     args.save_model_path.c_str());
        return 1;
      }
    }
  }
  core::BaselineOptions baseline_options;
  baseline_options.num_threads = args.threads;
  if (wants(args, "all")) {
    const auto report = core::evaluate(
        dataset, core::run_all_baseline(dataset, baseline_options));
    print_report("All", report);
    results["accuracy.all.overall"] = report.overall;
  }
  if (wants(args, "group")) {
    core::GroupBaselineOptions group_options;
    group_options.base = baseline_options;
    const auto report = core::evaluate(
        dataset, core::run_group_baseline(dataset, group_options));
    print_report("Group", report);
    results["accuracy.group.overall"] = report.overall;
  }
  if (wants(args, "single")) {
    const auto report = core::evaluate(
        dataset, core::run_single_baseline(dataset, baseline_options));
    print_report("Single", report);
    results["accuracy.single.overall"] = report.overall;
  }

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  const char* watchdog_verdict = watchdog_on ? watchdog.verdict() : "off";
  PLOS_LOG_INFO("run complete", obs::F("accuracy", plos_overall_accuracy),
                obs::F("trained_plos", trained_plos),
                obs::F("rounds", rounds_completed),
                obs::F("wall_seconds", wall_seconds),
                obs::F("watchdog", watchdog_verdict));

  if (!args.manifest_out.empty()) {
    obs::RunManifest manifest;
    manifest.tool = "plos_run";
    obs::fill_build_info(manifest);
    manifest.seed = args.seed;
    manifest.dataset = data::fingerprint(dataset, args.dataset);
    manifest.options["dataset"] = args.dataset;
    manifest.options["methods"] = args.methods;
    manifest.options["mode"] = args.logistic      ? "logistic"
                               : args.distributed ? "distributed"
                                                  : "centralized";
    manifest.options["lambda"] = render_double(args.lambda);
    manifest.options["cl"] = render_double(args.cl);
    manifest.options["cu"] = render_double(args.cu);
    manifest.options["rate"] = render_double(args.rate);
    if (args.dataset == "synth") {
      manifest.options["rotation"] = render_double(args.rotation);
    }
    manifest.options["hotpath_cache"] = args.hotpath_cache ? "1" : "0";
    // Async keys ride under the "async" prefix so a degenerate-equivalence
    // diff can exclude them wholesale (--ignore options.async); synchronous
    // manifests gain no new keys at all.
    if (args.async_mode) {
      manifest.options["async"] = "1";
      manifest.options["async_quorum"] = render_double(args.quorum);
      manifest.options["async_staleness_bound"] =
          std::to_string(args.staleness_bound);
      manifest.options["async_adaptive_deadline"] =
          args.adaptive_deadline ? "on" : "off";
      if (args.auto_tune) manifest.options["async_auto_tune"] = "on";
    }
    // Only non-default downsampling lands in the manifest: default-1 runs
    // keep byte-identical manifests with pre-flag builds (golden files).
    if (args.journal_every > 1) {
      manifest.options["journal_every"] = std::to_string(args.journal_every);
    }
    manifest.options["watchdog"] = args.watchdog;
    if (args.watchdog_stall_rounds > 0) {
      manifest.options["watchdog_stall_rounds"] =
          std::to_string(args.watchdog_stall_rounds);
    }
    const bool any_faults = args.fault_drop > 0.0 || args.fault_offline > 0.0 ||
                            args.fault_straggler > 0.0 ||
                            args.fault_corrupt > 0.0 ||
                            args.round_deadline > 0.0;
    if (any_faults) {
      manifest.fault["drop_probability"] = render_double(args.fault_drop);
      manifest.fault["offline_probability"] = render_double(args.fault_offline);
      manifest.fault["straggler_probability"] =
          render_double(args.fault_straggler);
      manifest.fault["corrupt_probability"] = render_double(args.fault_corrupt);
      manifest.fault["round_deadline_s"] = render_double(args.round_deadline);
    }
    manifest.results = results;
    manifest.watchdog_verdict = watchdog_verdict;
    manifest.watchdog_violations = watchdog.violations().size();
    if (!watchdog.violations().empty()) {
      manifest.watchdog_first_violation =
          obs::violation_kind_name(watchdog.violations().front().kind);
    }
    manifest.threads =
        args.threads == 0
            ? static_cast<int>(std::thread::hardware_concurrency())
            : args.threads;
    manifest.wall_seconds = wall_seconds;
    manifest.timing = timing_map;
    if (!obs::write_manifest(manifest, args.manifest_out)) {
      std::fprintf(stderr, "failed to write manifest to %s\n",
                   args.manifest_out.c_str());
      return 1;
    }
    if (args.manifest_out != "-") {
      std::printf("manifest written to %s\n", args.manifest_out.c_str());
    }
  }
  if (!args.journal_out.empty()) {
    if (!journal.write_jsonl(args.journal_out)) {
      std::fprintf(stderr, "failed to write journal to %s\n",
                   args.journal_out.c_str());
      return 1;
    }
    if (args.journal_out != "-") {
      std::printf("journal written to %s\n", args.journal_out.c_str());
    }
  }
  if (!args.trace_out.empty()) {
    if (obs::TraceCollector::instance().write_chrome_json(args.trace_out)) {
      std::printf("trace written to %s\n", args.trace_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   args.trace_out.c_str());
      return 1;
    }
  }
  if (!args.metrics_out.empty()) {
    const std::string payload = args.metrics_format == "prom"
                                    ? obs::metrics().to_prometheus()
                                    : obs::metrics().to_json();
    if (!write_text(args.metrics_out, payload)) {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   args.metrics_out.c_str());
      return 1;
    }
    if (args.metrics_out != "-") {
      std::printf("metrics written to %s\n", args.metrics_out.c_str());
    }
  }
  if (!args.profile_out.empty()) {
    obs::ProfileJsonOptions profile_options;
    profile_options.registry = &obs::metrics();
    if (!obs::write_profile(args.profile_out, profile_options)) {
      std::fprintf(stderr, "failed to write profile to %s\n",
                   args.profile_out.c_str());
      return 1;
    }
    if (args.profile_out != "-") {
      std::printf("profile written to %s\n", args.profile_out.c_str());
    }
  }
  return 0;
}
