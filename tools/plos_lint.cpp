// plos_lint CLI: determinism-invariant static analyzer over the PLOS tree.
//
//   plos_lint                     lint src/ tools/ bench/ tests/ from the
//                                 repo root (override with --root)
//   plos_lint src/core            lint only paths under a prefix
//   plos_lint --self-test         run the engine against embedded fixtures
//   plos_lint --list-rules        print the active rule catalog
//
// Exit codes: 0 clean, 1 findings / self-test failure, 2 usage or config
// error. All logic lives in src/lint so tests drive it in-process.
#include <cstdio>
#include <string>
#include <vector>

#include "lint/lint.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string out;
  const int code = plos::lint::run_cli(args, out);
  std::fwrite(out.data(), 1, out.size(), code == 0 ? stdout : stderr);
  return code;
}
