// plos_inspect — read, compare, and gate run telemetry.
//
//   plos_inspect report run.json [journal.jsonl]
//       human convergence report from a manifest and/or round journal
//       (either file may also be a bare journal; formats are detected)
//
//   plos_inspect diff a.json b.json [--tol EPS] [--field-tol PATH=EPS]
//                [--timing] [--ignore PREFIX]
//       field-by-field manifest comparison; exits 1 on any difference.
//       Timing fields are ignored unless --timing is given.
//
//   plos_inspect check run.json --against golden.json [--tol EPS]
//                [--field-tol PATH=EPS] [--ignore PREFIX]
//       regression gate for CI: like diff, but with cross-build defaults
//       (tolerance 1e-6; timing, build info, and the raw dataset content
//       hash ignored). --ignore (repeatable) skips additional dot-path
//       prefixes — e.g. options.hotpath_cache when gating a cache-disabled
//       run against the default golden. Exits 1 on violation, 2 on
//       usage/IO errors.
//
//   plos_inspect bench-report BENCH.json
//       human summary of one BENCH_*.json bench suite
//
//   plos_inspect bench-diff A.json B.json
//       exact-counter comparison of two bench suites (wall time ignored);
//       exits 1 on any counter drift
//
//   plos_inspect bench-check RUN.json --against BENCH_baseline.json
//                [--time-tol FACTOR]
//       CI perf gate: counters exact, median wall time allowed to exceed
//       the baseline by at most FACTOR (default 3.0 = 4x). Exits 1 on
//       violation.
//
//   plos_inspect timeline flight.json
//       causal per-round view of a flight log written by
//       `plos_run --async --flight-out`: upload attempts with their
//       retry/drop/corruption outcomes, deadline misses, quorum cuts,
//       late folds, evictions, and aggregates on the virtual clock.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "obs/inspect.hpp"
#include "obs/journal.hpp"
#include "obs/json.hpp"

namespace {

using namespace plos;

void print_usage() {
  std::printf(
      "plos_inspect — inspect and compare PLOS run telemetry\n\n"
      "  plos_inspect report FILE [FILE]\n"
      "      print a convergence report from a run manifest (run.json)\n"
      "      and/or a round journal (journal.jsonl); '-' reads stdin\n"
      "  plos_inspect diff A B [--tol EPS] [--field-tol PATH=EPS] [--timing]\n"
      "               [--ignore PREFIX]\n"
      "      compare two manifests field by field (exit 1 on differences;\n"
      "      timing.* ignored unless --timing)\n"
      "  plos_inspect check RUN --against GOLDEN [--tol EPS]\n"
      "               [--field-tol PATH=EPS] [--ignore PREFIX]\n"
      "      gate RUN against a golden manifest (default tolerance 1e-6;\n"
      "      timing.*, build.*, dataset.content_hash ignored; --ignore\n"
      "      skips extra dot-path prefixes; exit 1 on violation)\n"
      "  plos_inspect bench-report BENCH.json\n"
      "      print a human summary of one BENCH_*.json bench suite\n"
      "  plos_inspect bench-diff A B\n"
      "      compare two bench suites' exact counters (wall time ignored;\n"
      "      exit 1 on drift)\n"
      "  plos_inspect bench-check RUN --against BASELINE [--time-tol F]\n"
      "      perf gate: counters exact, median wall time may exceed the\n"
      "      baseline by at most F (default 3.0 = 4x); exit 1 on violation\n"
      "  plos_inspect timeline FLIGHT.json\n"
      "      causal per-round device-lifecycle view of a flight log\n"
      "      (plos_run --async --flight-out)\n");
}

int usage_error(const char* message) {
  std::fprintf(stderr, "plos_inspect: %s\nrun 'plos_inspect --help' for usage\n",
               message);
  return 2;
}

bool parse_double(const char* text, double& out) {
  char* end = nullptr;
  out = std::strtod(text, &end);
  return end != text && *end == '\0';
}

// A telemetry file is either one JSON object (manifest) or JSON Lines
// (journal). Detected by content, so `report` takes files in any order.
struct LoadedFile {
  std::optional<obs::json::Value> manifest;
  std::vector<obs::RoundRecord> journal;
};

bool load_telemetry_file(const std::string& path, LoadedFile& out,
                         std::string& error) {
  std::string text;
  if (!obs::read_file(path, text)) {
    error = "cannot read " + path;
    return false;
  }
  // Try whole-document JSON first: a manifest is exactly one object.
  std::string parse_error;
  if (auto value = obs::json::parse(text, &parse_error);
      value && value->is_object()) {
    // A single journal record also parses as an object; classify by the
    // journal's mandatory trainer/cccp_round fields.
    if (value->find("trainer") == nullptr) {
      out.manifest = std::move(*value);
      return true;
    }
  }
  std::string journal_error;
  if (obs::parse_journal_jsonl(text, out.journal, &journal_error)) {
    return true;
  }
  error = path + ": not a manifest (" + parse_error + ") nor a journal (" +
          journal_error + ")";
  return false;
}

int run_report(const std::vector<std::string>& files) {
  if (files.empty() || files.size() > 2) {
    return usage_error("report expects one or two files");
  }
  std::optional<obs::json::Value> manifest;
  std::vector<obs::RoundRecord> journal;
  for (const std::string& path : files) {
    LoadedFile loaded;
    std::string error;
    if (!load_telemetry_file(path, loaded, error)) {
      std::fprintf(stderr, "plos_inspect: %s\n", error.c_str());
      return 2;
    }
    if (loaded.manifest) manifest = std::move(loaded.manifest);
    if (!loaded.journal.empty()) journal = std::move(loaded.journal);
  }
  const std::string report = obs::convergence_report(
      manifest ? &*manifest : nullptr, journal.empty() ? nullptr : &journal);
  std::fputs(report.c_str(), stdout);
  return 0;
}

struct CompareArgs {
  std::vector<std::string> files;
  std::string against;
  std::optional<double> tolerance;
  std::optional<double> time_tolerance;
  std::map<std::string, double> field_tolerances;
  std::vector<std::string> ignored_prefixes;
  bool include_timing = false;
};

std::optional<CompareArgs> parse_compare_args(int argc, char** argv, int first) {
  CompareArgs args;
  for (int i = first; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "plos_inspect: missing value for %s\n",
                     flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--tol") {
      const char* text = value();
      double tol = 0.0;
      if (text == nullptr || !parse_double(text, tol) || tol < 0.0) {
        std::fprintf(stderr, "plos_inspect: --tol expects a number >= 0\n");
        return std::nullopt;
      }
      args.tolerance = tol;
    } else if (flag == "--time-tol") {
      const char* text = value();
      double tol = 0.0;
      if (text == nullptr || !parse_double(text, tol) || tol < 0.0) {
        std::fprintf(stderr, "plos_inspect: --time-tol expects a number >= 0\n");
        return std::nullopt;
      }
      args.time_tolerance = tol;
    } else if (flag == "--field-tol") {
      const char* text = value();
      if (text == nullptr) return std::nullopt;
      const char* eq = std::strchr(text, '=');
      double tol = 0.0;
      if (eq == nullptr || eq == text || !parse_double(eq + 1, tol) ||
          tol < 0.0) {
        std::fprintf(stderr,
                     "plos_inspect: --field-tol expects PATH=EPS, got '%s'\n",
                     text);
        return std::nullopt;
      }
      args.field_tolerances[std::string(text, eq)] = tol;
    } else if (flag == "--timing") {
      args.include_timing = true;
    } else if (flag == "--ignore") {
      const char* text = value();
      if (text == nullptr || text[0] == '\0') {
        std::fprintf(stderr, "plos_inspect: --ignore expects a path prefix\n");
        return std::nullopt;
      }
      args.ignored_prefixes.emplace_back(text);
    } else if (flag == "--against") {
      const char* text = value();
      if (text == nullptr) return std::nullopt;
      args.against = text;
    } else if (!flag.empty() && flag[0] == '-' && flag != "-") {
      std::fprintf(stderr, "plos_inspect: unknown flag %s\n", flag.c_str());
      return std::nullopt;
    } else {
      args.files.push_back(flag);
    }
  }
  return args;
}

bool load_manifest(const std::string& path, obs::json::Value& out) {
  std::string text;
  if (!obs::read_file(path, text)) {
    std::fprintf(stderr, "plos_inspect: cannot read %s\n", path.c_str());
    return false;
  }
  std::string error;
  auto value = obs::json::parse(text, &error);
  if (!value || !value->is_object()) {
    std::fprintf(stderr, "plos_inspect: %s: %s\n", path.c_str(),
                 error.empty() ? "not a JSON object" : error.c_str());
    return false;
  }
  out = std::move(*value);
  return true;
}

void print_differences(const obs::DiffResult& result, const std::string& left,
                       const std::string& right) {
  std::printf("%zu field(s) differ between %s and %s:\n",
              result.differences.size(), left.c_str(), right.c_str());
  for (const obs::DiffEntry& entry : result.differences) {
    std::printf("  %-40s %s  |  %s\n", entry.path.c_str(), entry.left.c_str(),
                entry.right.c_str());
  }
}

int run_diff(const CompareArgs& args) {
  if (args.files.size() != 2) return usage_error("diff expects two files");
  obs::json::Value left, right;
  if (!load_manifest(args.files[0], left) ||
      !load_manifest(args.files[1], right)) {
    return 2;
  }
  obs::DiffOptions options = obs::default_diff_options();
  if (args.include_timing) options.ignored_prefixes.clear();
  if (args.tolerance) options.tolerance = *args.tolerance;
  options.field_tolerances = args.field_tolerances;
  options.ignored_prefixes.insert(options.ignored_prefixes.end(),
                                  args.ignored_prefixes.begin(),
                                  args.ignored_prefixes.end());
  const obs::DiffResult result = obs::diff_values(left, right, options);
  if (result.identical()) {
    std::printf("manifests match (%zu field(s) compared)\n",
                result.fields_compared);
    return 0;
  }
  print_differences(result, args.files[0], args.files[1]);
  return 1;
}

int run_check(const CompareArgs& args) {
  if (args.files.size() != 1 || args.against.empty()) {
    return usage_error("check expects RUN --against GOLDEN");
  }
  obs::json::Value run, golden;
  if (!load_manifest(args.files[0], run) ||
      !load_manifest(args.against, golden)) {
    return 2;
  }
  obs::DiffOptions options = obs::default_check_options();
  if (args.tolerance) options.tolerance = *args.tolerance;
  for (const auto& [path, tol] : args.field_tolerances) {
    options.field_tolerances[path] = tol;
  }
  options.ignored_prefixes.insert(options.ignored_prefixes.end(),
                                  args.ignored_prefixes.begin(),
                                  args.ignored_prefixes.end());
  const obs::DiffResult result = obs::diff_values(run, golden, options);
  if (result.identical()) {
    std::printf("check passed: %s matches %s (%zu field(s), tol %g)\n",
                args.files[0].c_str(), args.against.c_str(),
                result.fields_compared, options.tolerance);
    return 0;
  }
  std::printf("check FAILED: ");
  print_differences(result, args.files[0], args.against);
  return 1;
}

int run_bench_report(const std::vector<std::string>& files) {
  if (files.size() != 1) return usage_error("bench-report expects one file");
  obs::json::Value suite;
  if (!load_manifest(files[0], suite)) return 2;
  const std::string report = obs::bench_report(suite);
  std::fputs(report.c_str(), stdout);
  return 0;
}

int run_bench_compare(const CompareArgs& args, bool check_time) {
  std::string run_path, baseline_path;
  if (check_time) {
    if (args.files.size() != 1 || args.against.empty()) {
      return usage_error("bench-check expects RUN --against BASELINE");
    }
    run_path = args.files[0];
    baseline_path = args.against;
  } else {
    if (args.files.size() != 2) {
      return usage_error("bench-diff expects two files");
    }
    run_path = args.files[0];
    baseline_path = args.files[1];
  }
  obs::json::Value run, baseline;
  if (!load_manifest(run_path, run) ||
      !load_manifest(baseline_path, baseline)) {
    return 2;
  }
  obs::BenchCheckOptions options;
  options.check_time_regression = check_time;
  if (args.time_tolerance) options.time_tolerance = *args.time_tolerance;
  const obs::BenchCheckResult result =
      obs::bench_check(run, baseline, options);
  for (const std::string& note : result.notes) {
    std::printf("  %s\n", note.c_str());
  }
  if (result.ok()) {
    std::printf("bench %s passed: %s matches %s (%zu counter(s) exact%s)\n",
                check_time ? "check" : "diff", run_path.c_str(),
                baseline_path.c_str(), result.counters_compared,
                check_time ? ", wall time within tolerance" : "");
    return 0;
  }
  std::printf("bench %s FAILED: %zu violation(s) against %s:\n",
              check_time ? "check" : "diff", result.violations.size(),
              baseline_path.c_str());
  for (const std::string& violation : result.violations) {
    std::printf("  %s\n", violation.c_str());
  }
  return 1;
}

// DeviceRoundStatus vocabulary (core/admm_device.hpp enum order) for
// rendering fold/eviction causes without pulling the core library in.
const char* device_status_name(int status) {
  switch (status) {
    case 0: return "participated";
    case 1: return "unavailable";
    case 2: return "offline";
    case 3: return "downlink_failed";
    case 4: return "deadline_missed";
    case 5: return "uplink_failed";
    case 6: return "late_upload";
    case 7: return "busy";
    default: return "unknown";
  }
}

const char* attempt_result_name(int result) {
  switch (result) {
    case 0: return "delivered";
    case 1: return "dropped";
    case 2: return "corrupted";
    default: return "unknown";
  }
}

int run_timeline(const std::vector<std::string>& files) {
  if (files.size() != 1) {
    return usage_error("timeline expects one flight-log file");
  }
  std::string text;
  if (!obs::read_file(files[0], text)) {
    std::fprintf(stderr, "plos_inspect: cannot read %s\n", files[0].c_str());
    return 2;
  }
  std::vector<obs::FlightEvent> events;
  std::string error;
  if (!obs::parse_flight_json(text, events, &error)) {
    std::fprintf(stderr, "plos_inspect: %s: %s\n", files[0].c_str(),
                 error.c_str());
    return 2;
  }
  std::printf("flight timeline: %zu event(s) from %s\n", events.size(),
              files[0].c_str());
  std::uint64_t current_round = 0;
  bool have_round = false;
  for (const obs::FlightEvent& e : events) {
    if (!have_round || e.round != current_round) {
      current_round = e.round;
      have_round = true;
      std::printf("round %llu\n",
                  static_cast<unsigned long long>(e.round));
    }
    switch (e.kind) {
      case obs::FlightEventKind::kBootstrap:
        std::printf("  device %-4u bootstrap contribution\n", e.device);
        break;
      case obs::FlightEventKind::kUploadAttempt:
        std::printf("  device %-4u upload attempt %u %-9s [%.6f, %.6f]s\n",
                    e.device, e.attempt, attempt_result_name(e.cause),
                    e.t_start, e.t_end);
        break;
      case obs::FlightEventKind::kDeadlineMiss:
        std::printf(
            "  device %-4u deadline miss          (deadline %.6fs, "
            "completion %.6fs)\n",
            e.device, e.t_start, e.t_end);
        break;
      case obs::FlightEventKind::kQuorumCut:
        std::printf("  server      quorum cut  [%.6f, %.6f]s  (%llu fresh)\n",
                    e.t_start, e.t_end,
                    static_cast<unsigned long long>(e.staleness));
        break;
      case obs::FlightEventKind::kLateFold:
        std::printf(
            "  device %-4u late fold   (arrived %.6fs, folded %.6fs, "
            "staleness %llu, cause %s)\n",
            e.device, e.t_start, e.t_end,
            static_cast<unsigned long long>(e.staleness),
            device_status_name(e.cause));
        break;
      case obs::FlightEventKind::kEviction:
        std::printf(
            "  device %-4u evicted     at %.6fs (staleness %llu, cause %s)\n",
            e.device, e.t_start,
            static_cast<unsigned long long>(e.staleness),
            device_status_name(e.cause));
        break;
      case obs::FlightEventKind::kAggregate:
        std::printf("  server      aggregate   at %.6fs (%llu fresh)\n",
                    e.t_start, static_cast<unsigned long long>(e.staleness));
        break;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    print_usage();
    return 0;
  }
  const auto args = parse_compare_args(argc, argv, 2);
  if (!args) {
    std::fprintf(stderr, "run 'plos_inspect --help' for usage\n");
    return 2;
  }
  if (command == "report") return run_report(args->files);
  if (command == "diff") return run_diff(*args);
  if (command == "check") return run_check(*args);
  if (command == "bench-report") return run_bench_report(args->files);
  if (command == "bench-diff") return run_bench_compare(*args, false);
  if (command == "bench-check") return run_bench_compare(*args, true);
  if (command == "timeline") return run_timeline(args->files);
  return usage_error(("unknown command '" + command + "'").c_str());
}
