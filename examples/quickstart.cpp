// Quickstart: the smallest useful PLOS program.
//
// Generates a synthetic population where users observe rotated views of the
// same two-class problem and only some users label a few samples, trains
// the personalized PLOS model, and compares it with the one-global-model
// baseline (All).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <numbers>

#include "core/baselines.hpp"
#include "core/centralized_plos.hpp"
#include "core/evaluation.hpp"
#include "data/labeling.hpp"
#include "data/synthetic.hpp"
#include "rng/engine.hpp"

int main() {
  using namespace plos;

  // 1. A population of 10 users; user t's data are rotated by t/9 * 90°.
  data::SyntheticSpec spec;
  spec.num_users = 10;
  spec.points_per_class = 100;
  spec.max_rotation = std::numbers::pi / 2.0;

  rng::Engine engine(42);
  auto dataset = data::generate_synthetic(spec, engine);

  // 2. Only 5 of the 10 users label 5% of their samples.
  data::reveal_labels(dataset, {0, 2, 4, 6, 8}, 0.05, engine);

  // 3. Train PLOS: one global hyperplane + a personal deviation per user.
  core::CentralizedPlosOptions options;
  options.params.lambda = 100.0;  // pull toward the shared hyperplane
  options.params.cl = 10.0;       // weight of labeled hinge losses
  options.params.cu = 1.0;        // weight of unlabeled (clustering) losses
  const auto result = core::train_centralized_plos(dataset, options);

  // 4. Evaluate against the global-classifier baseline.
  const auto plos_report =
      core::evaluate(dataset, core::predict_all(dataset, result.model));
  const auto all_report = core::evaluate(dataset, core::run_all_baseline(dataset));

  std::printf("PLOS quickstart (10 users, 5 providers, 5%% labels)\n");
  std::printf("%-22s %-18s %s\n", "method", "providers acc", "non-providers acc");
  std::printf("%-22s %-18.3f %.3f\n", "PLOS", plos_report.providers,
              plos_report.non_providers);
  std::printf("%-22s %-18.3f %.3f\n", "All (global SVM)", all_report.providers,
              all_report.non_providers);
  std::printf("\nCCCP iterations: %d, cutting planes: %zu, train time: %.2fs\n",
              result.diagnostics.cccp_iterations,
              result.diagnostics.final_constraint_count,
              result.diagnostics.train_seconds);
  return 0;
}
