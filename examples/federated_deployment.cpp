// Federated deployment: distributed PLOS over a simulated star network of
// phone-class devices (the paper's §VI-E scenario).
//
// Raw data never leave the devices; only model parameters travel. The
// simulator charges every serialized byte, scales measured solver time onto
// phone-speed CPUs, and reports energy.
//
// Build & run:  ./build/examples/federated_deployment
#include <cstdio>

#include "core/distributed_plos.hpp"
#include "core/evaluation.hpp"
#include "data/labeling.hpp"
#include "data/synthetic.hpp"
#include "net/simnet.hpp"
#include "rng/engine.hpp"

int main() {
  using namespace plos;

  const std::size_t num_users = 30;
  data::SyntheticSpec spec;
  spec.num_users = num_users;
  spec.points_per_class = 100;
  spec.max_rotation = 1.0;

  rng::Engine engine(11);
  auto dataset = data::generate_synthetic(spec, engine);
  std::vector<std::size_t> providers;
  for (std::size_t t = 0; t < num_users; t += 2) providers.push_back(t);
  data::reveal_labels(dataset, providers, 0.05, engine);

  // Nexus-5-class devices on a home uplink.
  net::DeviceProfile device;
  device.cpu_slowdown = 12.0;
  device.compute_power_watts = 2.5;
  device.tx_energy_j_per_kb = 0.008;
  device.rx_energy_j_per_kb = 0.005;
  net::LinkProfile link;
  link.latency_s = 0.03;
  link.bandwidth_kbps = 5000.0;
  net::SimNetwork network(num_users, device, link);

  core::DistributedPlosOptions options;
  options.params.lambda = 100.0;
  options.params.cl = 10.0;
  options.params.cu = 1.0;
  options.rho = 1.0;
  options.eps_abs = 1e-3;
  const auto result = core::train_distributed_plos(dataset, options, &network);

  const auto report =
      core::evaluate(dataset, core::predict_all(dataset, result.model));
  std::printf("federated PLOS on %zu devices\n", num_users);
  std::printf("  accuracy: providers %.3f, non-providers %.3f\n",
              report.providers, report.non_providers);
  std::printf("  CCCP rounds: %d, ADMM iterations: %d\n",
              result.diagnostics.cccp_iterations,
              result.diagnostics.admm_iterations_total);
  std::printf("  simulated wall clock: %.2f s over %zu rounds\n",
              network.total_simulated_seconds(), network.rounds_completed());
  std::printf("  per-device traffic: %.2f KB (mean)\n",
              network.mean_bytes_per_device() / 1024.0);
  std::printf("  per-device energy:  %.3f J (mean)\n",
              network.total_device_energy() /
                  static_cast<double>(num_users));
  std::printf("  server saw %zu bytes of model parameters and 0 bytes of raw "
              "data\n",
              network.server_metrics().bytes_received);
  return 0;
}
