// Model persistence: train once, checkpoint the population model to disk,
// reload it in a fresh process, and serve predictions — the deployment
// loop of a real mobile-sensing service. Also shows the logistic-loss
// variant as a drop-in alternative trainer.
//
// Build & run:  ./build/examples/model_persistence
#include <cstdio>
#include <filesystem>

#include "core/evaluation.hpp"
#include "core/logistic_plos.hpp"
#include "core/model_io.hpp"
#include "data/labeling.hpp"
#include "data/synthetic.hpp"
#include "rng/engine.hpp"

int main() {
  using namespace plos;

  data::SyntheticSpec spec;
  spec.num_users = 8;
  spec.points_per_class = 80;
  spec.max_rotation = 0.8;
  rng::Engine engine(31);
  auto dataset = data::generate_synthetic(spec, engine);
  data::reveal_labels(dataset, {0, 2, 4, 6}, 0.1, engine);

  // Train the smooth (logistic-loss) PLOS variant.
  core::LogisticPlosOptions options;
  options.params.lambda = 100.0;
  options.params.cl = 10.0;
  options.params.cu = 1.0;
  const auto result = core::train_logistic_plos(dataset, options);
  const auto before =
      core::evaluate(dataset, core::predict_all(dataset, result.model));
  std::printf("trained logistic PLOS: providers %.3f, non-providers %.3f\n",
              before.providers, before.non_providers);

  // Checkpoint to disk.
  const auto path =
      (std::filesystem::temp_directory_path() / "plos_population_model.bin")
          .string();
  if (!core::save_model(result.model, path)) {
    std::printf("failed to save model to %s\n", path.c_str());
    return 1;
  }
  const auto bytes = std::filesystem::file_size(path);
  std::printf("checkpointed to %s (%zu bytes: w0 + %zu user deviations)\n",
              path.c_str(), static_cast<std::size_t>(bytes),
              result.model.num_users());

  // Reload (as a freshly started serving process would) and verify the
  // restored model predicts identically.
  const auto restored = core::load_model(path);
  if (!restored) {
    std::printf("failed to reload model\n");
    return 1;
  }
  const auto after =
      core::evaluate(dataset, core::predict_all(dataset, *restored));
  std::printf("restored model:        providers %.3f, non-providers %.3f "
              "(identical: %s)\n",
              after.providers, after.non_providers,
              after.overall == before.overall ? "yes" : "NO");

  std::filesystem::remove(path);
  return after.overall == before.overall ? 0 : 1;
}
