// Activity recognition on a simulated body-sensor network — the paper's
// §VI-B scenario end to end:
//
//   raw 20 Hz accelerometer/gyroscope signals from 3 nodes per user
//     -> sliding-window segmentation (3.2 s, 50% overlap)
//     -> 120-dimensional feature vectors
//     -> PLOS vs All / Single / Group
//
// Build & run:  ./build/examples/activity_recognition
#include <cstdio>

#include "core/baselines.hpp"
#include "core/centralized_plos.hpp"
#include "core/evaluation.hpp"
#include "data/labeling.hpp"
#include "rng/engine.hpp"
#include "sensing/body_sensor.hpp"

int main() {
  using namespace plos;

  // 12 subjects wear 3 nodes each (waist, both shins) with free placement;
  // two activities: rest at standing vs rest at sitting.
  sensing::BodySensorSpec spec;
  spec.num_users = 12;

  rng::Engine engine(5);
  auto dataset = sensing::generate_body_sensor_dataset(spec, engine);
  std::printf("simulated %zu users, %zu windows each, %zu features\n",
              dataset.num_users(), dataset.users[0].num_samples(),
              dataset.dim());

  // Half the users label ~10%% of their windows.
  data::reveal_labels(dataset, {0, 2, 4, 6, 8, 10}, 0.10, engine);

  core::CentralizedPlosOptions options;
  options.params.lambda = 30.0;  // body-sensor domain: looser commonness tie
  options.params.cl = 10.0;
  options.params.cu = 5.0;       // and stronger unlabeled weighting
  const auto plos = core::train_centralized_plos(dataset, options);

  const auto report_plos =
      core::evaluate(dataset, core::predict_all(dataset, plos.model));
  const auto report_all =
      core::evaluate(dataset, core::run_all_baseline(dataset));
  const auto report_single =
      core::evaluate(dataset, core::run_single_baseline(dataset));
  const auto report_group =
      core::evaluate(dataset, core::run_group_baseline(dataset));

  std::printf("\n%-10s %-16s %s\n", "method", "providers acc",
              "non-providers acc");
  const auto row = [](const char* name, const core::AccuracyReport& r) {
    std::printf("%-10s %-16.3f %.3f\n", name, r.providers, r.non_providers);
  };
  row("PLOS", report_plos);
  row("All", report_all);
  row("Group", report_group);
  row("Single", report_single);

  std::printf(
      "\nPLOS personalizes: global |w0| = %.3f, mean personal deviation "
      "|v_t| = %.3f\n",
      linalg::norm(plos.model.global_weights), [&] {
        double s = 0.0;
        for (const auto& v : plos.model.user_deviations) s += linalg::norm(v);
        return s / static_cast<double>(plos.model.num_users());
      }());
  return 0;
}
