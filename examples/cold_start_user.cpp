// Cold start: a brand-new user who has never labeled anything joins a
// population of established users. Single-user learning can only cluster
// their data (it does not even know which cluster means "standing");
// PLOS transfers the population's knowledge through the shared hyperplane
// while still adapting to the newcomer's personal data structure.
//
// Build & run:  ./build/examples/cold_start_user
#include <cstdio>

#include "core/baselines.hpp"
#include "core/centralized_plos.hpp"
#include "core/evaluation.hpp"
#include "data/labeling.hpp"
#include "rng/engine.hpp"
#include "sensing/har.hpp"

int main() {
  using namespace plos;

  // 9 established users + 1 newcomer (user 9), HAR-style features.
  sensing::HarSpec spec;
  spec.num_users = 10;
  spec.dim = 200;
  spec.samples_per_class = 40;

  rng::Engine engine(23);
  auto dataset = sensing::generate_har_dataset(spec, engine);
  data::reveal_labels(dataset, {0, 1, 2, 3, 4, 5, 6, 7, 8}, 0.15, engine);
  // User 9 reveals nothing: the cold-start case.

  core::CentralizedPlosOptions options;
  options.params.lambda = 100.0;
  options.params.cl = 10.0;
  options.params.cu = 1.0;
  const auto plos = core::train_centralized_plos(dataset, options);

  const auto plos_pred = core::predict_all(dataset, plos.model);
  const auto single_pred = core::run_single_baseline(dataset);
  const auto all_pred = core::run_all_baseline(dataset);

  const std::size_t newcomer = 9;
  std::printf("cold-start accuracy for the label-free newcomer (user %zu):\n",
              newcomer);
  std::printf("  PLOS    %.3f   (personalized, knowledge borrowed from peers)\n",
              core::user_accuracy(dataset.users[newcomer], plos_pred[newcomer]));
  std::printf("  All     %.3f   (one global model for everyone)\n",
              core::user_accuracy(dataset.users[newcomer], all_pred[newcomer]));
  std::printf("  Single  %.3f   (k-means on own data, best label matching)\n",
              core::user_accuracy(dataset.users[newcomer],
                                  single_pred[newcomer]));

  std::printf("\nnewcomer's personal deviation |v| = %.3f (vs |w0| = %.3f): "
              "PLOS adapted the shared model to their data structure\n",
              linalg::norm(plos.model.user_deviations[newcomer]),
              linalg::norm(plos.model.global_weights));
  return 0;
}
