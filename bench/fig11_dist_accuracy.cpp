// Figure 11 — accuracy difference between centralized and distributed PLOS
// as the population grows (10..100 users). Expected shape: the difference
// hovers around zero for both user types — ADMM solves the same
// convexified objective the centralized QP does.
#include <benchmark/benchmark.h>

#include <numbers>

#include "bench_support.hpp"
#include "rng/engine.hpp"

namespace {

using namespace plos;

data::MultiUserDataset make_dataset(std::size_t num_users,
                                    std::uint64_t seed) {
  data::SyntheticSpec spec;
  spec.num_users = num_users;
  spec.points_per_class = 50;
  spec.max_rotation = std::numbers::pi / 2.0;
  rng::Engine engine(seed);
  auto dataset = data::generate_synthetic(spec, engine);
  bench::reveal_spread_providers(dataset, num_users / 2, 0.05, seed + 1);
  return dataset;
}

core::CentralizedPlosOptions lean_centralized() {
  auto options = bench::bench_plos_options();
  options.cutting_plane.epsilon = 5e-2;
  options.cccp.max_iterations = 3;
  return options;
}

core::DistributedPlosOptions lean_distributed() {
  auto options = bench::bench_distributed_options();
  options.cutting_plane.epsilon = 5e-2;
  options.cccp.max_iterations = 3;
  return options;
}

void print_figure() {
  bench::print_title(
      "Figure 11: accuracy difference centralized - distributed (percent)");
  const std::vector<std::string> names{"diff_label", "diff_unlabel"};
  bench::print_header("users", names);

  for (std::size_t users = 10; users <= 100; users += 10) {
    const auto dataset = make_dataset(users, users);
    const auto centralized =
        core::train_centralized_plos(dataset, lean_centralized());
    const auto distributed =
        core::train_distributed_plos(dataset, lean_distributed());
    const auto rc =
        core::evaluate(dataset, core::predict_all(dataset, centralized.model));
    const auto rd =
        core::evaluate(dataset, core::predict_all(dataset, distributed.model));
    bench::print_row(
        static_cast<double>(users),
        std::vector<double>{100.0 * (rc.providers - rd.providers),
                            100.0 * (rc.non_providers - rd.non_providers)});
  }
}

void BM_DistributedPlos40Users(benchmark::State& state) {
  const auto dataset = make_dataset(40, 40);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::train_distributed_plos(dataset, lean_distributed()));
  }
}
BENCHMARK(BM_DistributedPlos40Users)
    ->Unit(benchmark::kMillisecond)
    ->Apply(plos::bench::bench_time_config);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
