// Ablation 1 — does the unlabeled (maximum-margin-clustering) term matter?
// Sweeps Cu from 0 (labels only — plain regularized multi-task SVM) upward
// on the body-sensor population with sparse labels. The margin structure of
// unlabeled windows should lift accuracy, most visibly for label-free
// users, until Cu overwhelms the label signal.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"
#include "rng/engine.hpp"

namespace {

using namespace plos;

data::MultiUserDataset make_dataset() {
  sensing::BodySensorSpec spec;
  spec.num_users = 12;
  spec.seconds_per_activity = 60.0;
  rng::Engine engine(5);
  auto dataset = sensing::generate_body_sensor_dataset(spec, engine);
  bench::reveal_first_providers(dataset, 6, 0.06, 6);
  return dataset;
}

void print_figure() {
  bench::print_title(
      "Ablation 1: PLOS accuracy vs unlabeled-loss weight Cu (Cl = 10, lambda = 30)");
  const std::vector<std::string> names{"PLOS_label", "PLOS_unlabel"};
  bench::print_header("Cu", names);

  const auto dataset = make_dataset();
  for (double cu : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    auto options = bench::bench_body_plos_options();
    options.params.cu = cu;
    const auto result = core::train_centralized_plos(dataset, options);
    const auto report =
        core::evaluate(dataset, core::predict_all(dataset, result.model));
    bench::print_row(cu, std::vector<double>{report.providers,
                                             report.non_providers});
  }
}

void BM_TrainPlosNoUnlabeledTerm(benchmark::State& state) {
  const auto dataset = make_dataset();
  auto options = bench::bench_body_plos_options();
  options.params.cu = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::train_centralized_plos(dataset, options));
  }
}
BENCHMARK(BM_TrainPlosNoUnlabeledTerm)
    ->Unit(benchmark::kMillisecond)
    ->Apply(plos::bench::bench_time_config);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
