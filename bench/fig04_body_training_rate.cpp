// Figure 4 — body-sensor dataset: accuracy vs the fraction of labeled
// samples (4%..48%) with 9 fixed label providers. Expected shape: Single
// improves sharply with more labels and eventually beats All on providers;
// Group sits between; PLOS best everywhere.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"
#include "rng/engine.hpp"

namespace {

using namespace plos;

data::MultiUserDataset make_dataset(std::uint64_t seed) {
  sensing::BodySensorSpec spec;
  spec.num_users = 20;
  rng::Engine engine(seed);
  return sensing::generate_body_sensor_dataset(spec, engine);
}

void print_figure() {
  bench::print_title(
      "Figure 4: body-sensor accuracy vs training rate (9 providers)");
  const auto names = bench::accuracy_series_names();
  bench::print_header("rate_percent", names);

  auto dataset = make_dataset(2024);
  for (int percent = 4; percent <= 48; percent += 8) {
    bench::reveal_first_providers(dataset, 9, percent / 100.0,
                                  static_cast<std::uint64_t>(percent));
    const auto reports =
        bench::run_all_methods(dataset, bench::bench_body_plos_options());
    bench::print_row(static_cast<double>(percent),
                     bench::accuracy_series_values(reports));
  }
}

void BM_TrainPlosBodySensorRich(benchmark::State& state) {
  auto dataset = make_dataset(2024);
  bench::reveal_first_providers(dataset, 9, 0.24, 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::train_centralized_plos(dataset, bench::bench_body_plos_options()));
  }
}
BENCHMARK(BM_TrainPlosBodySensorRich)
    ->Unit(benchmark::kMillisecond)
    ->Apply(plos::bench::bench_time_config);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
