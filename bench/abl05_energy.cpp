// Ablation 5 — device energy: distributed PLOS (model-parameter exchange +
// on-device solving) vs the centralized alternative's one-shot raw-data
// upload. The paper argues distributed PLOS is "efficient in energy"; this
// bench quantifies the claim under the radio/CPU energy model and shows
// the honest trade-off: distributed energy is dominated by on-device
// compute and stays roughly flat in dataset size, while raw-upload radio
// energy grows linearly — the crossover sits around a couple thousand
// samples per user, i.e. continuous sensing workloads favor distributed,
// one-off small datasets do not.
#include <benchmark/benchmark.h>

#include <numbers>

#include "bench_support.hpp"
#include "net/serialize.hpp"
#include "net/simnet.hpp"
#include "rng/engine.hpp"

namespace {

using namespace plos;

data::MultiUserDataset make_dataset(std::size_t points_per_class) {
  data::SyntheticSpec spec;
  spec.num_users = 20;
  spec.points_per_class = points_per_class;
  spec.max_rotation = std::numbers::pi / 2.0;
  rng::Engine engine(21);
  auto dataset = data::generate_synthetic(spec, engine);
  bench::reveal_spread_providers(dataset, 10, 0.05, 22);
  return dataset;
}

// Radio energy a user would spend uploading every raw sample once.
double raw_upload_energy_joules(const data::UserData& user,
                                const net::DeviceProfile& profile) {
  net::Serializer s;
  for (const auto& x : user.samples) s.write_vector(x);
  return static_cast<double>(s.size_bytes()) / 1024.0 *
         profile.tx_energy_j_per_kb;
}

void print_figure() {
  bench::print_title(
      "Ablation 5: mean per-device energy (J), distributed vs raw upload");
  const std::vector<std::string> names{"distributed_J", "raw_upload_J",
                                       "dist_radio_kb"};
  bench::print_header("samples/user", names);

  const net::DeviceProfile profile;
  for (std::size_t points : {25u, 50u, 100u, 400u, 1000u, 2000u, 4000u}) {
    const auto dataset = make_dataset(points);
    net::SimNetwork network(dataset.num_users(), profile, net::LinkProfile{});
    core::train_distributed_plos(dataset, bench::bench_distributed_options(),
                                 &network);
    double raw = 0.0;
    for (const auto& user : dataset.users) {
      raw += raw_upload_energy_joules(user, profile);
    }
    raw /= static_cast<double>(dataset.num_users());
    bench::print_row(
        static_cast<double>(2 * points),
        std::vector<double>{network.total_device_energy() /
                                static_cast<double>(dataset.num_users()),
                            raw,
                            network.mean_bytes_per_device() / 1024.0});
  }
}

void BM_DistributedPlosEnergyRun(benchmark::State& state) {
  const auto dataset = make_dataset(100);
  for (auto _ : state) {
    net::SimNetwork network(dataset.num_users(), net::DeviceProfile{},
                            net::LinkProfile{});
    benchmark::DoNotOptimize(core::train_distributed_plos(
        dataset, bench::bench_distributed_options(), &network));
  }
}
BENCHMARK(BM_DistributedPlosEnergyRun)
    ->Unit(benchmark::kMillisecond)
    ->Apply(plos::bench::bench_time_config);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
