// Ablation 6 — loss functions: the paper's hinge-loss PLOS vs the smooth
// logistic-loss variant (§VII future work). Accuracy should be comparable;
// the interesting differences are training cost profiles (cutting planes +
// QP vs a single L-BFGS solve per CCCP round).
#include <benchmark/benchmark.h>

#include <numbers>

#include "bench_support.hpp"
#include "core/logistic_plos.hpp"
#include "rng/engine.hpp"

namespace {

using namespace plos;

data::MultiUserDataset make_dataset(double rotation, std::uint64_t seed) {
  data::SyntheticSpec spec;
  spec.num_users = 10;
  spec.points_per_class = 150;
  spec.max_rotation = rotation;
  rng::Engine engine(seed);
  auto dataset = data::generate_synthetic(spec, engine);
  bench::reveal_spread_providers(dataset, 5, 0.05, seed + 1);
  return dataset;
}

void print_figure() {
  bench::print_title(
      "Ablation 6: hinge PLOS vs logistic PLOS across rotation levels");
  const std::vector<std::string> names{"hinge_l", "hinge_u", "hinge_s",
                                       "logit_l", "logit_u", "logit_s"};
  bench::print_header("rotation/pi", names);

  for (int step = 0; step <= 4; ++step) {
    const double rotation = std::numbers::pi * step / 4.0;
    const auto dataset = make_dataset(rotation, 61 + step);

    const auto hinge =
        core::train_centralized_plos(dataset, bench::bench_plos_options());
    const auto rh =
        core::evaluate(dataset, core::predict_all(dataset, hinge.model));

    core::LogisticPlosOptions logistic_options;
    logistic_options.params = bench::bench_plos_options().params;
    logistic_options.cccp.max_iterations = 4;
    const auto logistic = core::train_logistic_plos(dataset, logistic_options);
    const auto rl =
        core::evaluate(dataset, core::predict_all(dataset, logistic.model));

    bench::print_row(static_cast<double>(step) / 4.0,
                     std::vector<double>{rh.providers, rh.non_providers,
                                         hinge.diagnostics.train_seconds,
                                         rl.providers, rl.non_providers,
                                         logistic.diagnostics.train_seconds});
  }
}

void BM_TrainLogisticPlos(benchmark::State& state) {
  const auto dataset = make_dataset(std::numbers::pi / 2.0, 63);
  core::LogisticPlosOptions options;
  options.params = bench::bench_plos_options().params;
  options.cccp.max_iterations = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::train_logistic_plos(dataset, options));
  }
}
BENCHMARK(BM_TrainLogisticPlos)->Unit(benchmark::kMillisecond)->Apply(plos::bench::bench_time_config);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
