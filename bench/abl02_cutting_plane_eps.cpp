// Ablation 2 — cutting-plane tolerance: solve quality and cost vs epsilon.
// The 1-slack working set should stay small (tens of planes) even for tight
// tolerances; accuracy saturates well before the tightest setting, which is
// what makes the approach practical on device-class hardware.
#include <benchmark/benchmark.h>

#include <numbers>

#include "bench_support.hpp"
#include "rng/engine.hpp"

namespace {

using namespace plos;

data::MultiUserDataset make_dataset() {
  data::SyntheticSpec spec;
  spec.num_users = 10;
  spec.points_per_class = 200;
  spec.max_rotation = std::numbers::pi / 2.0;
  rng::Engine engine(9);
  auto dataset = data::generate_synthetic(spec, engine);
  bench::reveal_spread_providers(dataset, 5, 0.05, 10);
  return dataset;
}

void print_figure() {
  bench::print_title(
      "Ablation 2: accuracy / constraints / time vs cutting-plane epsilon");
  const std::vector<std::string> names{"acc_label", "acc_unlabel",
                                       "constraints", "qp_solves", "time_s"};
  bench::print_header("epsilon", names);

  const auto dataset = make_dataset();
  for (double eps : {0.3, 0.1, 0.03, 0.01, 0.003, 0.001}) {
    auto options = bench::bench_plos_options();
    options.cutting_plane.epsilon = eps;
    const auto result = core::train_centralized_plos(dataset, options);
    const auto report =
        core::evaluate(dataset, core::predict_all(dataset, result.model));
    bench::print_row(
        eps, std::vector<double>{
                 report.providers, report.non_providers,
                 static_cast<double>(
                     result.diagnostics.final_constraint_count),
                 static_cast<double>(result.diagnostics.qp_solves),
                 result.diagnostics.train_seconds});
  }
}

void BM_TrainPlosTightEpsilon(benchmark::State& state) {
  const auto dataset = make_dataset();
  auto options = bench::bench_plos_options();
  options.cutting_plane.epsilon = 1e-3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::train_centralized_plos(dataset, options));
  }
}
BENCHMARK(BM_TrainPlosTightEpsilon)
    ->Unit(benchmark::kMillisecond)
    ->Apply(plos::bench::bench_time_config);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
