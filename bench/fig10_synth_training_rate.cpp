// Figure 10 — synthetic data: accuracy vs training rate (1%..10%) with 5
// providers at rotation pi/2. Expected shape: every label-using method
// improves with more labels; Single's unlabeled users stay flat; PLOS best.
#include <benchmark/benchmark.h>

#include <numbers>

#include "bench_support.hpp"
#include "rng/engine.hpp"

namespace {

using namespace plos;

data::MultiUserDataset make_dataset(double rate, std::uint64_t seed) {
  data::SyntheticSpec spec;
  spec.num_users = 10;
  spec.points_per_class = 200;
  spec.max_rotation = std::numbers::pi / 2.0;
  rng::Engine engine(seed);
  auto dataset = data::generate_synthetic(spec, engine);
  bench::reveal_spread_providers(dataset, 5, rate, seed + 1);
  return dataset;
}

void print_figure() {
  bench::print_title("Figure 10: synthetic accuracy vs training rate (%)");
  const auto names = bench::accuracy_series_names();
  bench::print_header("rate_percent", names);

  const int kSeeds = 2;
  for (int percent = 1; percent <= 10; ++percent) {
    std::vector<double> sums(names.size(), 0.0);
    for (int seed = 0; seed < kSeeds; ++seed) {
      const auto dataset =
          make_dataset(percent / 100.0,
                       53 * static_cast<std::uint64_t>(seed) + percent);
      const auto reports =
          bench::run_all_methods(dataset, bench::bench_plos_options());
      const auto values = bench::accuracy_series_values(reports);
      for (std::size_t i = 0; i < values.size(); ++i) sums[i] += values[i];
    }
    for (auto& v : sums) v /= kSeeds;
    bench::print_row(static_cast<double>(percent), sums);
  }
}

void BM_TrainPlosMidRate(benchmark::State& state) {
  const auto dataset = make_dataset(0.05, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::train_centralized_plos(dataset, bench::bench_plos_options()));
  }
}
BENCHMARK(BM_TrainPlosMidRate)->Unit(benchmark::kMillisecond)->Apply(plos::bench::bench_time_config);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
