// Figure 13 — per-user message overhead (KB) of distributed PLOS as the
// population grows. Expected shape: flat — each device exchanges only its
// own model parameters per round, independent of how many peers exist, and
// the ADMM round count stays stable.
#include <benchmark/benchmark.h>

#include <numbers>

#include "bench_support.hpp"
#include "net/simnet.hpp"
#include "rng/engine.hpp"

namespace {

using namespace plos;

data::MultiUserDataset make_dataset(std::size_t num_users,
                                    std::uint64_t seed) {
  data::SyntheticSpec spec;
  spec.num_users = num_users;
  spec.points_per_class = 50;
  spec.max_rotation = std::numbers::pi / 2.0;
  rng::Engine engine(seed);
  auto dataset = data::generate_synthetic(spec, engine);
  bench::reveal_spread_providers(dataset, num_users / 2, 0.05, seed + 1);
  return dataset;
}

core::DistributedPlosOptions lean_distributed() {
  auto options = bench::bench_distributed_options();
  options.cutting_plane.epsilon = 5e-2;
  options.cccp.max_iterations = 3;
  return options;
}

void print_figure() {
  bench::print_title(
      "Figure 13: per-user message overhead (KB) of distributed PLOS");
  const std::vector<std::string> names{"overhead_kb", "admm_iterations"};
  bench::print_header("users", names);

  for (std::size_t users = 10; users <= 100; users += 10) {
    const auto dataset = make_dataset(users, users);
    net::SimNetwork network(users, net::DeviceProfile{}, net::LinkProfile{});
    const auto result =
        core::train_distributed_plos(dataset, lean_distributed(), &network);
    bench::print_row(
        static_cast<double>(users),
        std::vector<double>{
            network.mean_bytes_per_device() / 1024.0,
            static_cast<double>(result.diagnostics.admm_iterations_total)});
  }
}

void BM_DistributedPlosMessageAccounting(benchmark::State& state) {
  const auto dataset = make_dataset(50, 50);
  for (auto _ : state) {
    net::SimNetwork network(50, net::DeviceProfile{}, net::LinkProfile{});
    benchmark::DoNotOptimize(
        core::train_distributed_plos(dataset, lean_distributed(), &network));
  }
}
BENCHMARK(BM_DistributedPlosMessageAccounting)
    ->Unit(benchmark::kMillisecond)
    ->Apply(plos::bench::bench_time_config);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
