// Figure 12 — running time of centralized vs distributed PLOS as the
// population grows. Expected shape: centralized time grows superlinearly
// (the joint dual QP gains variables with every user); distributed time
// stays nearly flat (devices solve fixed-size local problems in parallel),
// although each phone-class device is slower than the server, so
// centralized wins at small populations and loses at large ones.
//
// Centralized time is measured solver wall time on this machine (the
// "server"); distributed time is the simulated wall clock of the device
// fleet: per round, server update + slowest device (compute scaled to
// phone speed + both message transfers).
#include <benchmark/benchmark.h>

#include <numbers>

#include "bench_support.hpp"
#include "net/simnet.hpp"
#include "rng/engine.hpp"

namespace {

using namespace plos;

data::MultiUserDataset make_dataset(std::size_t num_users,
                                    std::uint64_t seed) {
  data::SyntheticSpec spec;
  spec.num_users = num_users;
  spec.points_per_class = 50;
  spec.max_rotation = std::numbers::pi / 2.0;
  rng::Engine engine(seed);
  auto dataset = data::generate_synthetic(spec, engine);
  bench::reveal_spread_providers(dataset, num_users / 2, 0.05, seed + 1);
  return dataset;
}

core::CentralizedPlosOptions lean_centralized() {
  auto options = bench::bench_plos_options();
  options.cutting_plane.epsilon = 5e-2;
  options.cccp.max_iterations = 3;
  return options;
}

core::DistributedPlosOptions lean_distributed() {
  auto options = bench::bench_distributed_options();
  options.cutting_plane.epsilon = 5e-2;
  options.cccp.max_iterations = 3;
  return options;
}

net::SimNetwork make_network(std::size_t num_users) {
  net::DeviceProfile device;
  device.cpu_slowdown = 12.0;  // phone vs server core
  net::LinkProfile link;
  link.latency_s = 0.02;
  link.bandwidth_kbps = 5000.0;
  return net::SimNetwork(num_users, device, link);
}

void print_figure() {
  bench::print_title(
      "Figure 12: running time (s) centralized vs distributed");
  const std::vector<std::string> names{"centralized_s", "distributed_s"};
  bench::print_header("users", names);

  for (std::size_t users = 10; users <= 100; users += 10) {
    const auto dataset = make_dataset(users, users);
    const auto centralized =
        core::train_centralized_plos(dataset, lean_centralized());
    net::SimNetwork network = make_network(users);
    core::train_distributed_plos(dataset, lean_distributed(), &network);
    bench::print_row(
        static_cast<double>(users),
        std::vector<double>{centralized.diagnostics.train_seconds,
                            network.total_simulated_seconds()});
  }
}

void BM_CentralizedPlos60Users(benchmark::State& state) {
  const auto dataset = make_dataset(60, 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::train_centralized_plos(dataset, lean_centralized()));
  }
}
BENCHMARK(BM_CentralizedPlos60Users)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
