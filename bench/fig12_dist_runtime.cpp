// Figure 12 — running time of centralized vs distributed PLOS as the
// population grows. Expected shape: centralized time grows superlinearly
// (the joint dual QP gains variables with every user); distributed time
// stays nearly flat (devices solve fixed-size local problems in parallel),
// although each phone-class device is slower than the server, so
// centralized wins at small populations and loses at large ones.
//
// Centralized time is measured solver wall time on this machine (the
// "server"); distributed time is the simulated wall clock of the device
// fleet: per round, server update + slowest device (compute scaled to
// phone speed + both message transfers).
#include <benchmark/benchmark.h>

#include <numbers>

#include "bench_support.hpp"
#include "net/simnet.hpp"
#include "rng/engine.hpp"

namespace {

using namespace plos;

data::MultiUserDataset make_dataset(std::size_t num_users,
                                    std::uint64_t seed) {
  data::SyntheticSpec spec;
  spec.num_users = num_users;
  spec.points_per_class = 50;
  spec.max_rotation = std::numbers::pi / 2.0;
  rng::Engine engine(seed);
  auto dataset = data::generate_synthetic(spec, engine);
  bench::reveal_spread_providers(dataset, num_users / 2, 0.05, seed + 1);
  return dataset;
}

core::CentralizedPlosOptions lean_centralized() {
  auto options = bench::bench_plos_options();
  options.cutting_plane.epsilon = 5e-2;
  options.cccp.max_iterations = 3;
  return options;
}

core::DistributedPlosOptions lean_distributed() {
  auto options = bench::bench_distributed_options();
  options.cutting_plane.epsilon = 5e-2;
  options.cccp.max_iterations = 3;
  return options;
}

net::SimNetwork make_network(std::size_t num_users) {
  net::DeviceProfile device;
  device.cpu_slowdown = 12.0;  // phone vs server core
  net::LinkProfile link;
  link.latency_s = 0.02;
  link.bandwidth_kbps = 5000.0;
  return net::SimNetwork(num_users, device, link);
}

void print_figure() {
  bench::print_title(
      "Figure 12: running time (s) centralized vs distributed");
  const std::vector<std::string> names{"centralized_s", "distributed_s"};
  bench::print_header("users", names);

  for (std::size_t users = 10; users <= 100; users += 10) {
    const auto dataset = make_dataset(users, users);
    const auto centralized =
        core::train_centralized_plos(dataset, lean_centralized());
    net::SimNetwork network = make_network(users);
    core::train_distributed_plos(dataset, lean_distributed(), &network);
    bench::print_row(
        static_cast<double>(users),
        std::vector<double>{centralized.diagnostics.train_seconds,
                            network.total_simulated_seconds()});
  }
}

void BM_CentralizedPlos60Users(benchmark::State& state) {
  const auto dataset = make_dataset(60, 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::train_centralized_plos(dataset, lean_centralized()));
  }
}
BENCHMARK(BM_CentralizedPlos60Users)
    ->Unit(benchmark::kMillisecond)
    ->Apply(bench::bench_time_config);

// PLOS_BENCH_JSON mode: emit BENCH_fig12_dist_runtime.json instead of the
// figure table. The counters are exact solver/ledger outputs (thread-count
// and machine independent); only "timing" moves between hosts.
void emit_bench_json() {
  bench::BenchSuite suite;
  suite.name = "fig12_dist_runtime";
  {
    const auto dataset = make_dataset(60, 60);
    core::PlosDiagnostics diagnostics;
    bench::BenchCase bench_case;
    bench_case.stats = bench::run_timed([&] {
      diagnostics =
          core::train_centralized_plos(dataset, lean_centralized())
              .diagnostics;
    });
    bench_case.counters["cccp_rounds"] =
        static_cast<double>(diagnostics.cccp_iterations);
    bench_case.counters["qp_solves"] =
        static_cast<double>(diagnostics.qp_solves);
    bench_case.counters["constraints"] =
        static_cast<double>(diagnostics.final_constraint_count);
    suite.cases["centralized_60users"] = bench_case;
  }
  {
    const auto dataset = make_dataset(40, 40);
    core::DistributedPlosDiagnostics diagnostics;
    net::SimNetwork::TrafficSnapshot traffic;
    bench::BenchCase bench_case;
    bench_case.stats = bench::run_timed([&] {
      net::SimNetwork network = make_network(40);
      diagnostics =
          core::train_distributed_plos(dataset, lean_distributed(), &network)
              .diagnostics;
      traffic = network.traffic_snapshot();
    });
    bench_case.counters["cccp_rounds"] =
        static_cast<double>(diagnostics.cccp_iterations);
    bench_case.counters["admm_iterations"] =
        static_cast<double>(diagnostics.admm_iterations_total);
    bench_case.counters["qp_solves"] =
        static_cast<double>(diagnostics.qp_solves);
    bench_case.counters["bytes"] = static_cast<double>(
        traffic.bytes_to_devices + traffic.bytes_to_server);
    suite.cases["distributed_40users"] = bench_case;
  }
  bench::write_bench_suite(suite);
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::bench_json_enabled()) {
    emit_bench_json();
    return 0;
  }
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
