// Figure 9 — synthetic data: accuracy vs the number of label-providing
// users (1..10) at fixed rotation pi/2 and 2% labeling. Expected shape:
// All/Group/PLOS improve with more providers, Single flat; PLOS on top.
#include <benchmark/benchmark.h>

#include <numbers>

#include "bench_support.hpp"
#include "rng/engine.hpp"

namespace {

using namespace plos;

data::MultiUserDataset make_dataset(std::size_t providers,
                                    std::uint64_t seed) {
  data::SyntheticSpec spec;
  spec.num_users = 10;
  spec.points_per_class = 200;
  spec.max_rotation = std::numbers::pi / 2.0;
  rng::Engine engine(seed);
  auto dataset = data::generate_synthetic(spec, engine);
  bench::reveal_spread_providers(dataset, providers, 0.02, seed + 1);
  return dataset;
}

void print_figure() {
  bench::print_title(
      "Figure 9: synthetic accuracy vs number of label providers");
  const auto names = bench::accuracy_series_names();
  bench::print_header("providers", names);

  const int kSeeds = 2;
  for (std::size_t providers = 1; providers <= 10; ++providers) {
    std::vector<double> sums(names.size(), 0.0);
    for (int seed = 0; seed < kSeeds; ++seed) {
      const auto dataset = make_dataset(
          providers, 31 * static_cast<std::uint64_t>(seed) + providers);
      const auto reports =
          bench::run_all_methods(dataset, bench::bench_plos_options());
      const auto values = bench::accuracy_series_values(reports);
      for (std::size_t i = 0; i < values.size(); ++i) sums[i] += values[i];
    }
    for (auto& v : sums) v /= kSeeds;
    bench::print_row(static_cast<double>(providers), sums);
  }
}

void BM_TrainPlosFiveProviders(benchmark::State& state) {
  const auto dataset = make_dataset(5, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::train_centralized_plos(dataset, bench::bench_plos_options()));
  }
}
BENCHMARK(BM_TrainPlosFiveProviders)
    ->Unit(benchmark::kMillisecond)
    ->Apply(plos::bench::bench_time_config);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
