#include "bench_support.hpp"

#include <algorithm>
#include <benchmark/benchmark.h>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "rng/engine.hpp"

namespace plos::bench {

namespace {

const char* bench_metrics_path() {
  static const char* path = std::getenv("PLOS_BENCH_METRICS");
  return path;
}

const char* bench_manifest_path() {
  static const char* path = std::getenv("PLOS_BENCH_MANIFEST");
  return path;
}

std::string render_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

// Appends one manifest line describing a run_all_methods invocation. Only
// deterministic fields plus the PLOS train time (under "timing", which
// plos_inspect ignores by default) — a sweep of these lines diffs cleanly
// across machines.
void append_bench_manifest(const data::MultiUserDataset& dataset,
                           const core::CentralizedPlosOptions& options,
                           const core::PlosDiagnostics& diagnostics,
                           const MethodReports& reports) {
  obs::RunManifest manifest;
  manifest.tool = "bench";
  obs::fill_build_info(manifest);
  manifest.seed = options.seed;
  manifest.dataset = data::fingerprint(dataset, "bench");
  manifest.options["lambda"] = render_double(options.params.lambda);
  manifest.options["cl"] = render_double(options.params.cl);
  manifest.options["cu"] = render_double(options.params.cu);
  manifest.options["cutting_plane_epsilon"] =
      render_double(options.cutting_plane.epsilon);
  manifest.options["cccp_max_iterations"] =
      std::to_string(options.cccp.max_iterations);
  manifest.options["mode"] = "centralized";
  manifest.results["accuracy.plos.providers"] = reports.plos.providers;
  manifest.results["accuracy.plos.non_providers"] = reports.plos.non_providers;
  manifest.results["accuracy.plos.overall"] = reports.plos.overall;
  manifest.results["accuracy.all.overall"] = reports.all.overall;
  manifest.results["accuracy.group.overall"] = reports.group.overall;
  manifest.results["accuracy.single.overall"] = reports.single.overall;
  manifest.results["cccp_rounds"] =
      static_cast<double>(diagnostics.cccp_iterations);
  manifest.results["qp_solves"] = static_cast<double>(diagnostics.qp_solves);
  if (!diagnostics.objective_trace.empty()) {
    manifest.results["final_objective"] = diagnostics.objective_trace.back();
  }
  manifest.threads = options.num_threads;
  manifest.wall_seconds = diagnostics.train_seconds;
  std::FILE* file = std::fopen(bench_manifest_path(), "a");
  if (file == nullptr) return;
  const std::string line = obs::manifest_to_json(manifest);
  std::fprintf(file, "%s\n", line.c_str());
  std::fclose(file);
}

}  // namespace

int bench_num_threads() {
  static const int threads = [] {
    const char* text = std::getenv("PLOS_BENCH_THREADS");
    if (text == nullptr) return 1;
    const int parsed = std::atoi(text);
    return parsed >= 0 ? parsed : 1;
  }();
  return threads;
}

int bench_reps() {
  static const int reps = [] {
    const char* text = std::getenv("PLOS_BENCH_REPS");
    if (text == nullptr) return 1;
    return std::max(1, std::atoi(text));
  }();
  return reps;
}

int bench_warmup() {
  static const int warmup = [] {
    const char* text = std::getenv("PLOS_BENCH_WARMUP");
    if (text == nullptr) return 0;
    return std::max(0, std::atoi(text));
  }();
  return warmup;
}

void bench_time_config(benchmark::internal::Benchmark* bench) {
  const int warmup = bench_warmup();
  if (warmup > 0) {
    // google-benchmark rejects MinWarmUpTime on a benchmark with an exact
    // Iterations() count, so a warm-up request switches the registration
    // to time-based mode (gbench then auto-scales the measured
    // iterations). Exact warm-up semantics are run_timed()'s job.
    bench->MinWarmUpTime(0.25 * warmup);
    return;
  }
  bench->Iterations(bench_reps());
}

namespace {

double median_of_sorted(const std::vector<double>& sorted) {
  const std::size_t n = sorted.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? sorted[n / 2]
                    : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

}  // namespace

TimedStats run_timed(const std::function<void()>& body) {
  TimedStats stats;
  stats.reps = bench_reps();
  stats.warmup = bench_warmup();
  for (int i = 0; i < stats.warmup; ++i) body();
  std::vector<double> samples_ms;
  samples_ms.reserve(static_cast<std::size_t>(stats.reps));
  for (int i = 0; i < stats.reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const auto stop = std::chrono::steady_clock::now();
    samples_ms.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
  std::sort(samples_ms.begin(), samples_ms.end());
  stats.min_ms = samples_ms.front();
  stats.median_ms = median_of_sorted(samples_ms);
  std::vector<double> deviations_ms;
  deviations_ms.reserve(samples_ms.size());
  for (double sample : samples_ms) {
    deviations_ms.push_back(std::abs(sample - stats.median_ms));
  }
  std::sort(deviations_ms.begin(), deviations_ms.end());
  stats.mad_ms = median_of_sorted(deviations_ms);
  return stats;
}

std::string bench_suite_to_json(const BenchSuite& suite) {
  std::string out = "{\"schema_version\":";
  out += std::to_string(suite.schema_version);
  out += ",\"name\":";
  out += obs::json::escape(suite.name);  // escape() adds the quotes
  out += ",\"cases\":{";
  bool first_case = true;
  for (const auto& [case_name, bench_case] : suite.cases) {
    if (!first_case) out += ',';
    first_case = false;
    out += obs::json::escape(case_name);
    out += ":{\"counters\":{";
    bool first_counter = true;
    for (const auto& [counter, value] : bench_case.counters) {
      if (!first_counter) out += ',';
      first_counter = false;
      out += obs::json::escape(counter);
      out += ':';
      out += obs::json::number(value);
    }
    out += "},\"timing\":{\"reps\":";
    out += std::to_string(bench_case.stats.reps);
    out += ",\"warmup\":";
    out += std::to_string(bench_case.stats.warmup);
    out += ",\"median_ms\":";
    out += obs::json::number(bench_case.stats.median_ms);
    out += ",\"mad_ms\":";
    out += obs::json::number(bench_case.stats.mad_ms);
    out += ",\"min_ms\":";
    out += obs::json::number(bench_case.stats.min_ms);
    out += "}}";
  }
  out += "}}";
  return out;
}

namespace {

const char* bench_json_dir() {
  static const char* dir = std::getenv("PLOS_BENCH_JSON");
  return dir;
}

}  // namespace

bool bench_json_enabled() { return bench_json_dir() != nullptr; }

bool write_bench_suite(const BenchSuite& suite) {
  if (!bench_json_enabled()) return false;
  const std::string path =
      std::string(bench_json_dir()) + "/BENCH_" + suite.name + ".json";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string json = bench_suite_to_json(suite);
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), file) == json.size() &&
      std::fputc('\n', file) != EOF;
  std::printf("wrote %s\n", path.c_str());
  return std::fclose(file) == 0 && ok;
}

bool bench_metrics_enabled() { return bench_metrics_path() != nullptr; }

bool bench_manifest_enabled() { return bench_manifest_path() != nullptr; }

PhaseMetrics::PhaseMetrics(std::string phase) : phase_(std::move(phase)) {
  if (!bench_metrics_enabled()) return;
  active_ = true;
  obs::metrics().set_enabled(true);
  obs::metrics().reset_values();
}

PhaseMetrics::~PhaseMetrics() {
  if (!active_) return;
  std::FILE* file = std::fopen(bench_metrics_path(), "a");
  if (file == nullptr) return;
  const std::string snapshot = obs::metrics().to_json();
  std::fprintf(file, "{\"phase\":\"%s\",\"metrics\":%s}\n", phase_.c_str(),
               snapshot.c_str());
  std::fclose(file);
}

MethodReports run_all_methods(const data::MultiUserDataset& dataset,
                              const core::CentralizedPlosOptions& options) {
  MethodReports reports;
  core::PlosDiagnostics plos_diagnostics;
  {
    const PhaseMetrics phase("plos_train");
    const auto plos = core::train_centralized_plos(dataset, options);
    plos_diagnostics = plos.diagnostics;
    reports.plos =
        core::evaluate(dataset, core::predict_all(dataset, plos.model));
  }
  const PhaseMetrics phase("baselines");
  core::BaselineOptions baseline_options;
  baseline_options.num_threads = options.num_threads;
  core::GroupBaselineOptions group_options;
  group_options.base = baseline_options;
  reports.all =
      core::evaluate(dataset, core::run_all_baseline(dataset, baseline_options));
  reports.group =
      core::evaluate(dataset, core::run_group_baseline(dataset, group_options));
  reports.single = core::evaluate(
      dataset, core::run_single_baseline(dataset, baseline_options));
  if (bench_manifest_enabled()) {
    append_bench_manifest(dataset, options, plos_diagnostics, reports);
  }
  return reports;
}

core::CentralizedPlosOptions bench_plos_options() {
  core::CentralizedPlosOptions options;
  options.params.lambda = 100.0;
  options.params.cl = 10.0;
  options.params.cu = 1.0;
  options.cutting_plane.epsilon = 1e-2;
  options.cccp.max_iterations = 4;
  options.num_threads = bench_num_threads();
  return options;
}

core::CentralizedPlosOptions bench_body_plos_options() {
  core::CentralizedPlosOptions options = bench_plos_options();
  options.params.lambda = 30.0;
  options.params.cu = 5.0;
  return options;
}

core::DistributedPlosOptions bench_distributed_options() {
  core::DistributedPlosOptions options;
  options.params.lambda = 100.0;
  options.params.cl = 10.0;
  options.params.cu = 1.0;
  options.cutting_plane.epsilon = 1e-2;
  options.cccp.max_iterations = 4;
  options.rho = 1.0;
  options.eps_abs = 1e-3;
  options.max_admm_iterations = 150;
  options.num_threads = bench_num_threads();
  return options;
}

void reveal_first_providers(data::MultiUserDataset& dataset,
                            std::size_t num_providers, double rate,
                            std::uint64_t seed) {
  std::vector<std::size_t> providers(num_providers);
  for (std::size_t i = 0; i < num_providers; ++i) providers[i] = i;
  rng::Engine engine(seed);
  data::hide_all_labels(dataset);
  data::reveal_labels(dataset, providers, rate, engine);
}

void reveal_spread_providers(data::MultiUserDataset& dataset,
                             std::size_t num_providers, double rate,
                             std::uint64_t seed) {
  std::vector<std::size_t> providers;
  const std::size_t num_users = dataset.num_users();
  for (std::size_t i = 0; i < num_providers; ++i) {
    providers.push_back(i * num_users / num_providers);
  }
  rng::Engine engine(seed);
  data::hide_all_labels(dataset);
  data::reveal_labels(dataset, providers, rate, engine);
}

void print_title(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

void print_header(const std::string& x_name,
                  std::span<const std::string> series) {
  std::printf("%-14s", x_name.c_str());
  for (const auto& s : series) std::printf("%14s", s.c_str());
  std::printf("\n");
}

void print_row(double x, std::span<const double> values) {
  std::printf("%-14.4g", x);
  for (double v : values) std::printf("%14.4f", v);
  std::printf("\n");
  std::fflush(stdout);
}

std::vector<std::string> accuracy_series_names() {
  return {"PLOS_label",   "All_label",   "Group_label",   "Single_label",
          "PLOS_unlabel", "All_unlabel", "Group_unlabel", "Single_unlabel"};
}

std::vector<double> accuracy_series_values(const MethodReports& r) {
  return {r.plos.providers,       r.all.providers,
          r.group.providers,      r.single.providers,
          r.plos.non_providers,   r.all.non_providers,
          r.group.non_providers,  r.single.non_providers};
}

}  // namespace plos::bench
