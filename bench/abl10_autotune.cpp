// Ablation 10 — journal-driven quorum/staleness auto-tuning (src/async):
// the observability controller (--auto-tune) against the hand-tuned knobs
// ablation 9 found for the same chronic-straggler fleet (30% of devices on
// 6x-slower CPUs, compute-bound solves). The controller starts from
// deliberately wrong knobs — quorum 0.7 with a staleness bound of 4, a
// configuration whose tight bound evicts every chronic straggler's block
// before it can fold (3.5x the hand-tuned time-to-accuracy when left
// alone; the untuned_start case below measures it) — and walks both knobs
// toward the knee using only the staleness sketch the journal already
// carries (stale_p99 hysteresis: widen the bound when the tail crowds it,
// lower the quorum when the tail is slack, tighten back at the quorum
// floor). Expected shape: the tuned run reaches the synchronous run's
// final accuracy band (within one point, entered and never left) within
// 1.5x the hand-tuned time-to-accuracy — without anyone having run the
// abl09 sweep — and every decision lands in the journal with its
// triggering percentile. A caveat the numbers make visible: recovery is
// not free from an arbitrarily bad start. A near-barrier 90% quorum pays
// patience x slow-round time before the first action, and the transient
// dominates (~2x hand-tuned); the controller converges to the same knobs
// but the early barrier-paced rounds are sunk cost. PLOS_BENCH_JSON mode
// emits BENCH_abl10_autotune.json with exact llround-scaled counters
// (tta_within1pt_us, tta_vs_hand_x1000, tune_actions,
// final_quorum_x1000, final_staleness_bound, accuracy_x10000) for the CI
// perf gate.
#include <benchmark/benchmark.h>

#include <cmath>
#include <limits>
#include <numbers>
#include <string>
#include <vector>

#include "async/async_admm.hpp"
#include "bench_support.hpp"
#include "core/evaluation.hpp"
#include "core/model.hpp"
#include "linalg/vector.hpp"
#include "net/simnet.hpp"
#include "rng/engine.hpp"

namespace {

using namespace plos;

data::MultiUserDataset make_dataset() {
  data::SyntheticSpec spec;
  spec.num_users = 20;
  spec.points_per_class = 60;
  spec.max_rotation = std::numbers::pi / 2.0;
  rng::Engine engine(71);
  auto dataset = data::generate_synthetic(spec, engine);
  bench::reveal_spread_providers(dataset, 10, 0.05, 72);
  return dataset;
}

// Same chronic-straggler fleet as ablation 9: devices 0-2 and 10-12 run on
// 6x-slower CPUs on every dispatch, so the barrier always waits for them.
constexpr double kStragglerSlowdown = 6.0;

bool is_straggler(std::size_t device) { return device % 10 < 3; }

void apply_straggler_fleet(net::SimNetwork& network) {
  for (std::size_t t = 0; t < network.num_devices(); ++t) {
    if (!is_straggler(t)) continue;
    net::DeviceProfile profile;
    profile.cpu_slowdown *= kStragglerSlowdown;
    network.set_device_profile(t, profile);
  }
}

async::AsyncQuorumOptions make_options(double quorum,
                                       std::uint64_t staleness_bound,
                                       bool auto_tune) {
  async::AsyncQuorumOptions options;
  options.base = bench::bench_distributed_options();
  options.base.cutting_plane.epsilon = 5e-2;
  options.base.cccp.max_iterations = 3;
  options.base.num_threads = bench::bench_num_threads();
  options.quorum = quorum;
  options.staleness_bound = staleness_bound;
  options.adaptive_deadline = false;
  options.autotune.enabled = auto_tune;
  // Compute-bound local solves, as in ablation 9: the straggling CPUs pace
  // the barrier, which is the regime the controller has to navigate.
  options.latency.compute_base_s = 5e-2;
  return options;
}

struct AccuracySample {
  double virtual_seconds = 0.0;
  double accuracy = 0.0;
};

struct CaseOutcome {
  async::AsyncQuorumResult result;
  double accuracy = 0.0;
  std::vector<AccuracySample> trace;
};

// Earliest virtual time at which the run enters the accuracy band
// [target, 1] and never leaves it again. Infinity when it never settles.
double time_to_accuracy(const std::vector<AccuracySample>& trace,
                        double target) {
  double entered = std::numeric_limits<double>::infinity();
  for (const auto& sample : trace) {
    if (sample.accuracy >= target) {
      if (!std::isfinite(entered)) entered = sample.virtual_seconds;
    } else {
      entered = std::numeric_limits<double>::infinity();
    }
  }
  return entered;
}

CaseOutcome run_case(const data::MultiUserDataset& dataset, double quorum,
                     std::uint64_t staleness_bound, bool auto_tune) {
  CaseOutcome outcome;
  net::SimNetwork network(dataset.num_users(), net::DeviceProfile{},
                          net::LinkProfile{});
  apply_straggler_fleet(network);
  auto options = make_options(quorum, staleness_bound, auto_tune);
  core::PersonalizedModel probe =
      core::PersonalizedModel::zeros(dataset.num_users(), 0);
  options.on_aggregate = [&](const async::AsyncAggregateView& view) {
    probe.global_weights = view.w0;
    for (std::size_t t = 0; t < view.w.size(); ++t) {
      probe.user_deviations[t] = linalg::sub(view.w[t], view.w0);
    }
    outcome.trace.push_back(AccuracySample{
        view.virtual_seconds,
        core::evaluate(dataset, core::predict_all(dataset, probe)).overall});
  };
  outcome.result = async::train_async_quorum_plos(dataset, options, &network);
  outcome.accuracy =
      core::evaluate(dataset,
                     core::predict_all(dataset, outcome.result.model))
          .overall;
  return outcome;
}

// The degenerate configuration is the synchronous barrier; its final
// accuracy anchors the time-to-accuracy band for every other case.
CaseOutcome run_sync_baseline(const data::MultiUserDataset& dataset) {
  return run_case(dataset, 1.0, 1u << 20, /*auto_tune=*/false);
}

// Ablation 9's winning hand-tuned knobs on this fleet.
CaseOutcome run_hand_tuned(const data::MultiUserDataset& dataset) {
  return run_case(dataset, 0.6, 12, /*auto_tune=*/false);
}

// The controller's starting point: a quorum above the knee and a bound so
// tight every chronic straggler's block is evicted before it folds.
CaseOutcome run_auto_tuned(const data::MultiUserDataset& dataset) {
  return run_case(dataset, 0.7, 4, /*auto_tune=*/true);
}

// The same wrong knobs left alone — what the controller is rescuing.
CaseOutcome run_untuned_start(const data::MultiUserDataset& dataset) {
  return run_case(dataset, 0.7, 4, /*auto_tune=*/false);
}

void print_figure() {
  bench::print_title(
      "Ablation 10: journal-driven auto-tuning vs hand-tuned quorum knobs");
  const std::vector<std::string> names{"accuracy", "virtual_s", "tta_s",
                                      "tta_vs_hand", "tune_acts",
                                      "final_quorum", "final_bound"};
  bench::print_header("case", names);

  const auto dataset = make_dataset();
  const auto barrier = run_sync_baseline(dataset);
  const auto hand = run_hand_tuned(dataset);
  const auto untuned = run_untuned_start(dataset);
  const auto tuned = run_auto_tuned(dataset);
  const double band = barrier.accuracy - 0.01;
  const double hand_tta = time_to_accuracy(hand.trace, band);
  const struct {
    double id;
    const CaseOutcome* outcome;
  } rows[] = {
      {0.0, &barrier}, {1.0, &hand}, {2.0, &untuned}, {3.0, &tuned}};
  for (const auto& row : rows) {
    const auto& a = row.outcome->result.async;
    const double tta = time_to_accuracy(row.outcome->trace, band);
    bench::print_row(
        row.id,
        std::vector<double>{row.outcome->accuracy, a.virtual_seconds, tta,
                            tta / hand_tta,
                            static_cast<double>(a.tune_actions),
                            a.final_quorum,
                            static_cast<double>(a.final_staleness_bound)});
  }
}

void fill_counters(bench::BenchCase& bench_case, const CaseOutcome& outcome,
                   const CaseOutcome& barrier, const CaseOutcome& hand) {
  const auto& a = outcome.result.async;
  bench_case.counters["admm_iterations"] = static_cast<double>(
      outcome.result.diagnostics.admm_iterations_total);
  bench_case.counters["late_uploads"] =
      static_cast<double>(a.late_uploads_total);
  bench_case.counters["evictions"] = static_cast<double>(
      a.evictions_offline_total + a.evictions_late_total +
      a.evictions_failed_total);
  bench_case.counters["max_staleness"] =
      static_cast<double>(a.max_staleness_seen);
  bench_case.counters["tune_actions"] = static_cast<double>(a.tune_actions);
  bench_case.counters["final_quorum_x1000"] =
      static_cast<double>(std::llround(a.final_quorum * 1e3));
  bench_case.counters["final_staleness_bound"] =
      static_cast<double>(a.final_staleness_bound);
  // Machine-exact integer-valued doubles so the perf gate compares exactly.
  bench_case.counters["virtual_wall_us"] =
      static_cast<double>(std::llround(a.virtual_seconds * 1e6));
  bench_case.counters["accuracy_x10000"] =
      static_cast<double>(std::llround(outcome.accuracy * 1e4));
  bench_case.counters["acc_gap_vs_sync_x10000"] = static_cast<double>(
      std::llround((barrier.accuracy - outcome.accuracy) * 1e4));
  // Time into (and staying in) the one-point band around the synchronous
  // final accuracy, and its ratio against the hand-tuned run — the
  // acceptance metric (<= 1500 for the auto-tuned case).
  const double band = barrier.accuracy - 0.01;
  const double tta = time_to_accuracy(outcome.trace, band);
  const double hand_tta = time_to_accuracy(hand.trace, band);
  bench_case.counters["tta_within1pt_us"] = static_cast<double>(
      std::isfinite(tta) ? std::llround(tta * 1e6) : -1);
  bench_case.counters["tta_vs_hand_x1000"] = static_cast<double>(
      std::isfinite(tta) && std::isfinite(hand_tta)
          ? std::llround(tta / hand_tta * 1e3)
          : -1);
}

void emit_bench_json() {
  bench::BenchSuite suite;
  suite.name = "abl10_autotune";
  const auto dataset = make_dataset();

  CaseOutcome barrier;
  CaseOutcome hand;
  CaseOutcome untuned;
  CaseOutcome tuned;
  bench::BenchCase barrier_case;
  barrier_case.stats =
      bench::run_timed([&] { barrier = run_sync_baseline(dataset); });
  bench::BenchCase hand_case;
  hand_case.stats = bench::run_timed([&] { hand = run_hand_tuned(dataset); });
  bench::BenchCase untuned_case;
  untuned_case.stats =
      bench::run_timed([&] { untuned = run_untuned_start(dataset); });
  bench::BenchCase tuned_case;
  tuned_case.stats = bench::run_timed([&] { tuned = run_auto_tuned(dataset); });

  fill_counters(barrier_case, barrier, barrier, hand);
  fill_counters(hand_case, hand, barrier, hand);
  fill_counters(untuned_case, untuned, barrier, hand);
  fill_counters(tuned_case, tuned, barrier, hand);
  suite.cases["sync_barrier_straggler30"] = barrier_case;
  suite.cases["hand_tuned_q60_b12"] = hand_case;
  suite.cases["untuned_start_q70_b4"] = untuned_case;
  suite.cases["auto_tuned_from_q70_b4"] = tuned_case;
  bench::write_bench_suite(suite);
}

void BM_AutoTunedStragglerFleet(benchmark::State& state) {
  const auto dataset = make_dataset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_auto_tuned(dataset));
  }
}
BENCHMARK(BM_AutoTunedStragglerFleet)
    ->Unit(benchmark::kMillisecond)
    ->Apply(plos::bench::bench_time_config);

}  // namespace

int main(int argc, char** argv) {
  if (bench::bench_json_enabled()) {
    emit_bench_json();
    return 0;
  }
  print_figure();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
