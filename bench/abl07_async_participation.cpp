// Ablation 7 — asynchronous distributed PLOS (§VII future work): accuracy,
// ADMM iterations, and per-device traffic as device participation drops.
// Expected shape: accuracy degrades gracefully; iterations to converge grow
// as staleness rises, but per-round traffic falls proportionally.
#include <benchmark/benchmark.h>

#include <numbers>

#include "bench_support.hpp"
#include "net/simnet.hpp"
#include "rng/engine.hpp"

namespace {

using namespace plos;

data::MultiUserDataset make_dataset() {
  data::SyntheticSpec spec;
  spec.num_users = 20;
  spec.points_per_class = 60;
  spec.max_rotation = std::numbers::pi / 2.0;
  rng::Engine engine(71);
  auto dataset = data::generate_synthetic(spec, engine);
  bench::reveal_spread_providers(dataset, 10, 0.05, 72);
  return dataset;
}

core::AsyncDistributedPlosOptions make_options(double participation) {
  core::AsyncDistributedPlosOptions options;
  options.base = bench::bench_distributed_options();
  options.base.cutting_plane.epsilon = 5e-2;
  options.base.cccp.max_iterations = 3;
  options.participation = participation;
  return options;
}

void print_figure() {
  bench::print_title(
      "Ablation 7: async distributed PLOS vs participation rate");
  const std::vector<std::string> names{"acc_label", "acc_unlabel",
                                       "admm_iters", "overhead_kb"};
  bench::print_header("participation", names);

  const auto dataset = make_dataset();
  for (double p : {1.0, 0.8, 0.6, 0.4, 0.2}) {
    net::SimNetwork network(dataset.num_users(), net::DeviceProfile{},
                            net::LinkProfile{});
    const auto result =
        core::train_async_distributed_plos(dataset, make_options(p), &network);
    const auto report =
        core::evaluate(dataset, core::predict_all(dataset, result.model));
    bench::print_row(
        p, std::vector<double>{
               report.providers, report.non_providers,
               static_cast<double>(result.diagnostics.admm_iterations_total),
               network.mean_bytes_per_device() / 1024.0});
  }
}

void BM_AsyncDistributedHalfParticipation(benchmark::State& state) {
  const auto dataset = make_dataset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::train_async_distributed_plos(dataset, make_options(0.5)));
  }
}
BENCHMARK(BM_AsyncDistributedHalfParticipation)
    ->Unit(benchmark::kMillisecond)
    ->Apply(plos::bench::bench_time_config);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
