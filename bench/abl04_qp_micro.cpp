// Ablation 4 — QP solver micro-benchmarks: capped-simplex projection and
// FISTA solve time vs problem size, plus the warm-start payoff that the
// cutting-plane loops rely on, and thread-count scaling of the end-to-end
// centralized trainer (serial-equivalent parallelism — only time moves).
#include <benchmark/benchmark.h>

#include "bench_support.hpp"
#include "data/labeling.hpp"
#include "data/synthetic.hpp"
#include "qp/capped_simplex_qp.hpp"
#include "qp/projection.hpp"
#include "rng/engine.hpp"

namespace {

using namespace plos;

qp::CappedSimplexQpProblem random_problem(std::size_t n, std::size_t groups,
                                          std::uint64_t seed) {
  rng::Engine engine(seed);
  linalg::Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = engine.gaussian();
  }
  qp::CappedSimplexQpProblem p;
  p.hessian = b.matmul(b.transposed());
  for (std::size_t i = 0; i < n; ++i) p.hessian(i, i) += 1.0;
  p.linear = engine.gaussian_vector(n);
  p.groups.assign(groups, {});
  for (std::size_t i = 0; i < n; ++i) p.groups[i % groups].push_back(i);
  p.caps.assign(groups, 0.5);
  return p;
}

void BM_Projection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Engine engine(n);
  const linalg::Vector base = engine.gaussian_vector(n, 0.5, 1.0);
  for (auto _ : state) {
    linalg::Vector x = base;
    qp::project_capped_simplex(x, 1.0);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Projection)->Arg(16)->Arg(128)->Arg(1024)->Arg(8192);

void BM_QpSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto p = random_problem(n, std::max<std::size_t>(1, n / 16), n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qp::solve_capped_simplex_qp(p));
  }
}
BENCHMARK(BM_QpSolve)->Arg(16)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_QpSolveWarmStarted(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto p = random_problem(n, std::max<std::size_t>(1, n / 16), n);
  const auto cold = qp::solve_capped_simplex_qp(p);
  qp::QpOptions options;
  options.warm_start = cold.solution;
  for (auto _ : state) {
    benchmark::DoNotOptimize(qp::solve_capped_simplex_qp(p, options));
  }
}
BENCHMARK(BM_QpSolveWarmStarted)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Thread scaling of one full centralized CCCP run on a 20-user population.
// The per-user separation oracle and Hessian row assembly dominate, so
// wall-clock should drop roughly linearly until the core count is reached
// (on a multi-core host; with a single core the times simply match).
void BM_CentralizedCccpThreads(benchmark::State& state) {
  data::SyntheticSpec spec;
  spec.num_users = 20;
  spec.points_per_class = 30;
  spec.max_rotation = 1.2;
  rng::Engine engine(404);
  auto dataset = data::generate_synthetic(spec, engine);
  data::reveal_labels(dataset, {0, 4, 8, 12, 16}, 0.3, engine);
  auto options = bench::bench_plos_options();
  options.cccp.max_iterations = 2;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::train_centralized_plos(dataset, options));
  }
}
BENCHMARK(BM_CentralizedCccpThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
