// Ablation 4 — QP solver micro-benchmarks: capped-simplex projection and
// FISTA solve time vs problem size, plus the warm-start payoff that the
// cutting-plane loops rely on, and thread-count scaling of the end-to-end
// centralized trainer (serial-equivalent parallelism — only time moves).
#include <benchmark/benchmark.h>

#include "bench_support.hpp"
#include "data/labeling.hpp"
#include "data/synthetic.hpp"
#include "obs/metrics.hpp"
#include "qp/capped_simplex_qp.hpp"
#include "qp/projection.hpp"
#include "rng/engine.hpp"

namespace {

using namespace plos;

qp::CappedSimplexQpProblem random_problem(std::size_t n, std::size_t groups,
                                          std::uint64_t seed) {
  rng::Engine engine(seed);
  linalg::Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = engine.gaussian();
  }
  qp::CappedSimplexQpProblem p;
  p.hessian = b.matmul(b.transposed());
  for (std::size_t i = 0; i < n; ++i) p.hessian(i, i) += 1.0;
  p.linear = engine.gaussian_vector(n);
  p.groups.assign(groups, {});
  for (std::size_t i = 0; i < n; ++i) p.groups[i % groups].push_back(i);
  p.caps.assign(groups, 0.5);
  return p;
}

void BM_Projection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Engine engine(n);
  const linalg::Vector base = engine.gaussian_vector(n, 0.5, 1.0);
  for (auto _ : state) {
    linalg::Vector x = base;
    qp::project_capped_simplex(x, 1.0);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Projection)
    ->Arg(16)
    ->Arg(128)
    ->Arg(1024)
    ->Arg(8192)
    ->Apply(bench::bench_time_config);

void BM_QpSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto p = random_problem(n, std::max<std::size_t>(1, n / 16), n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qp::solve_capped_simplex_qp(p));
  }
}
BENCHMARK(BM_QpSolve)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond)
    ->Apply(bench::bench_time_config);

void BM_QpSolveWarmStarted(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto p = random_problem(n, std::max<std::size_t>(1, n / 16), n);
  const auto cold = qp::solve_capped_simplex_qp(p);
  qp::QpOptions options;
  options.warm_start = cold.solution;
  // The hot-path engine re-solves with both the previous solution and the
  // memoized Lipschitz estimate; benchmark the same configuration.
  options.lipschitz = qp::lipschitz_estimate(p.hessian);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qp::solve_capped_simplex_qp(p, options));
  }
}
BENCHMARK(BM_QpSolveWarmStarted)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond)
    ->Apply(bench::bench_time_config);

// Thread scaling of one full centralized CCCP run on a 20-user population.
// The per-user separation oracle and Hessian row assembly dominate, so
// wall-clock should drop roughly linearly until the core count is reached
// (on a multi-core host; with a single core the times simply match).
void BM_CentralizedCccpThreads(benchmark::State& state) {
  data::SyntheticSpec spec;
  spec.num_users = 20;
  spec.points_per_class = 30;
  spec.max_rotation = 1.2;
  rng::Engine engine(404);
  auto dataset = data::generate_synthetic(spec, engine);
  data::reveal_labels(dataset, {0, 4, 8, 12, 16}, 0.3, engine);
  auto options = bench::bench_plos_options();
  options.cccp.max_iterations = 2;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::train_centralized_plos(dataset, options));
  }
}
BENCHMARK(BM_CentralizedCccpThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Apply(bench::bench_time_config);

// PLOS_BENCH_JSON mode: emit BENCH_abl04_qp_micro.json (QP micro-kernels)
// and BENCH_cccp_threads.json (the BM_CentralizedCccpThreads scaling
// sweep). Every counter is exact; in the cccp_threads suite the four
// thread-count cases must agree counter-for-counter — serial-equivalent
// parallelism is itself part of what the baseline gates.
void emit_bench_json() {
  bench::BenchSuite micro;
  micro.name = "abl04_qp_micro";
  {
    const std::size_t n = 8192;
    rng::Engine engine(n);
    const linalg::Vector base = engine.gaussian_vector(n, 0.5, 1.0);
    linalg::Vector projected = base;
    bench::BenchCase bench_case;
    bench_case.stats = bench::run_timed([&] {
      projected = base;
      qp::project_capped_simplex(projected, 1.0);
    });
    std::size_t nonzeros = 0;
    for (std::size_t i = 0; i < projected.size(); ++i) {
      if (projected[i] != 0.0) ++nonzeros;
    }
    bench_case.counters["n"] = static_cast<double>(n);
    bench_case.counters["nonzeros"] = static_cast<double>(nonzeros);
    micro.cases["projection_n8192"] = bench_case;
  }
  {
    const std::size_t n = 256;
    const auto problem = random_problem(n, n / 16, n);
    qp::QpResult result;
    bench::BenchCase bench_case;
    bench_case.stats = bench::run_timed(
        [&] { result = qp::solve_capped_simplex_qp(problem); });
    bench_case.counters["n"] = static_cast<double>(n);
    bench_case.counters["iterations"] = static_cast<double>(result.iterations);
    micro.cases["qp_solve_n256"] = bench_case;

    // Warm re-solve in the exact hot-path configuration: previous solution
    // as warm start plus the memoized Lipschitz estimate. The obs counters
    // turn the cache claims into exact gated evidence — every timed solve
    // must take the iteration-0 warm exit (warm_hit_rate == 1) and reuse
    // the supplied Lipschitz constant (lipschitz_reuse_rate == 1).
    qp::QpOptions warm_options;
    warm_options.warm_start = result.solution;
    warm_options.lipschitz = qp::lipschitz_estimate(problem.hessian);
    qp::QpResult warm_result;
    bench::BenchCase warm_case;
    auto& registry = obs::metrics();
    registry.set_enabled(true);
    registry.reset_values();
    warm_case.stats = bench::run_timed([&] {
      warm_result = qp::solve_capped_simplex_qp(problem, warm_options);
    });
    const double warm_solves =
        registry.counter("qp.capped_simplex.solves").value();
    const double warm_hits =
        registry.counter("qp.capped_simplex.warm_hits").value();
    const double lipschitz_reuses =
        registry.counter("qp.capped_simplex.lipschitz_reuses").value();
    registry.set_enabled(false);
    warm_case.counters["n"] = static_cast<double>(n);
    warm_case.counters["iterations"] =
        static_cast<double>(warm_result.iterations);
    warm_case.counters["warm_hit_rate"] =
        warm_solves > 0.0 ? warm_hits / warm_solves : 0.0;
    warm_case.counters["lipschitz_reuse_rate"] =
        warm_solves > 0.0 ? lipschitz_reuses / warm_solves : 0.0;
    micro.cases["qp_solve_warm_n256"] = warm_case;
  }
  bench::write_bench_suite(micro);

  bench::BenchSuite scaling;
  scaling.name = "cccp_threads";
  data::SyntheticSpec spec;
  spec.num_users = 20;
  spec.points_per_class = 30;
  spec.max_rotation = 1.2;
  rng::Engine engine(404);
  auto dataset = data::generate_synthetic(spec, engine);
  data::reveal_labels(dataset, {0, 4, 8, 12, 16}, 0.3, engine);
  for (const int threads : {1, 2, 4, 8}) {
    auto options = bench::bench_plos_options();
    options.cccp.max_iterations = 2;
    options.num_threads = threads;
    core::PlosDiagnostics diagnostics;
    bench::BenchCase bench_case;
    bench_case.stats = bench::run_timed([&] {
      diagnostics =
          core::train_centralized_plos(dataset, options).diagnostics;
    });
    bench_case.counters["cccp_rounds"] =
        static_cast<double>(diagnostics.cccp_iterations);
    bench_case.counters["qp_solves"] =
        static_cast<double>(diagnostics.qp_solves);
    bench_case.counters["constraints"] =
        static_cast<double>(diagnostics.final_constraint_count);
    scaling.cases["threads_" + std::to_string(threads)] = bench_case;
  }
  bench::write_bench_suite(scaling);
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::bench_json_enabled()) {
    emit_bench_json();
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
