// Ablation 3 — ADMM step size rho: rounds to converge, message cost, and
// accuracy. rho trades primal vs dual residual progress; too small or too
// large inflates rounds (and therefore every device's communication bill).
// The paper fixes rho = 1.
#include <benchmark/benchmark.h>

#include <numbers>

#include "bench_support.hpp"
#include "net/simnet.hpp"
#include "rng/engine.hpp"

namespace {

using namespace plos;

data::MultiUserDataset make_dataset() {
  data::SyntheticSpec spec;
  spec.num_users = 20;
  spec.points_per_class = 80;
  spec.max_rotation = std::numbers::pi / 2.0;
  rng::Engine engine(12);
  auto dataset = data::generate_synthetic(spec, engine);
  bench::reveal_spread_providers(dataset, 10, 0.05, 13);
  return dataset;
}

void print_figure() {
  bench::print_title(
      "Ablation 3: distributed PLOS vs ADMM step size rho");
  const std::vector<std::string> names{"acc_label", "acc_unlabel",
                                       "admm_iters", "overhead_kb"};
  bench::print_header("rho", names);

  const auto dataset = make_dataset();
  for (double rho : {0.05, 0.2, 1.0, 5.0, 20.0}) {
    auto options = bench::bench_distributed_options();
    options.rho = rho;
    net::SimNetwork network(dataset.num_users(), net::DeviceProfile{},
                            net::LinkProfile{});
    const auto result =
        core::train_distributed_plos(dataset, options, &network);
    const auto report =
        core::evaluate(dataset, core::predict_all(dataset, result.model));
    bench::print_row(
        rho,
        std::vector<double>{
            report.providers, report.non_providers,
            static_cast<double>(result.diagnostics.admm_iterations_total),
            network.mean_bytes_per_device() / 1024.0});
  }
}

void BM_DistributedPlosRho1(benchmark::State& state) {
  const auto dataset = make_dataset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::train_distributed_plos(dataset,
                                     bench::bench_distributed_options()));
  }
}
BENCHMARK(BM_DistributedPlosRho1)
    ->Unit(benchmark::kMillisecond)
    ->Apply(plos::bench::bench_time_config);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
