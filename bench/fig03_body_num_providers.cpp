// Figure 3 — body-sensor dataset: accuracy vs the number of users who
// provide labels (2..18 of 20), each labeling 6% of their windows.
// Expected shape: Single flat (too few labels, no sharing); All and Group
// improve with more providers; PLOS best on both user types with the
// largest gap on providers.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"
#include "rng/engine.hpp"

namespace {

using namespace plos;

data::MultiUserDataset make_dataset(std::uint64_t seed) {
  sensing::BodySensorSpec spec;
  spec.num_users = 20;
  rng::Engine engine(seed);
  return sensing::generate_body_sensor_dataset(spec, engine);
}

void print_figure() {
  bench::print_title(
      "Figure 3: body-sensor accuracy vs number of label providers "
      "(20 users, 6% labels)");
  const auto names = bench::accuracy_series_names();
  bench::print_header("providers", names);

  auto dataset = make_dataset(2024);
  for (std::size_t providers = 2; providers <= 18; providers += 2) {
    bench::reveal_first_providers(dataset, providers, 0.06, providers);
    const auto reports =
        bench::run_all_methods(dataset, bench::bench_body_plos_options());
    bench::print_row(static_cast<double>(providers),
                     bench::accuracy_series_values(reports));
  }
}

void BM_TrainPlosBodySensor(benchmark::State& state) {
  auto dataset = make_dataset(2024);
  bench::reveal_first_providers(dataset, 10, 0.06, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::train_centralized_plos(dataset, bench::bench_body_plos_options()));
  }
}
BENCHMARK(BM_TrainPlosBodySensor)
    ->Unit(benchmark::kMillisecond)
    ->Apply(plos::bench::bench_time_config);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
