// Figure 5 — HAR-like smartphone dataset: accuracy vs number of label
// providers (6..27 of 30), each labeling 6% (~3 samples per activity).
// Expected shape: same ordering as Figure 3 but with a smaller All↔PLOS gap
// (weaker personal traits on the waist-mounted phone).
#include <benchmark/benchmark.h>

#include "bench_support.hpp"
#include "rng/engine.hpp"

namespace {

using namespace plos;

data::MultiUserDataset make_dataset(std::uint64_t seed) {
  sensing::HarSpec spec;  // defaults: 30 users, 561 dims, 50/class
  rng::Engine engine(seed);
  return sensing::generate_har_dataset(spec, engine);
}

void print_figure() {
  bench::print_title(
      "Figure 5: HAR accuracy vs number of label providers (30 users, "
      "6% labels)");
  const auto names = bench::accuracy_series_names();
  bench::print_header("providers", names);

  auto dataset = make_dataset(77);
  for (std::size_t providers = 6; providers <= 27; providers += 3) {
    bench::reveal_first_providers(dataset, providers, 0.06, providers);
    const auto reports =
        bench::run_all_methods(dataset, bench::bench_plos_options());
    bench::print_row(static_cast<double>(providers),
                     bench::accuracy_series_values(reports));
  }
}

void BM_TrainPlosHar(benchmark::State& state) {
  auto dataset = make_dataset(77);
  bench::reveal_first_providers(dataset, 15, 0.06, 15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::train_centralized_plos(dataset, bench::bench_plos_options()));
  }
}
BENCHMARK(BM_TrainPlosHar)->Unit(benchmark::kMillisecond)->Apply(plos::bench::bench_time_config);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
