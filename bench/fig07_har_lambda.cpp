// Figure 7 — HAR-like dataset: PLOS accuracy vs log10(lambda) with 15
// providers labeling 6 samples each. Expected shape: an inverted U — small
// lambda behaves like Single (per-user overfitting on few labels), large
// lambda like All (one shared hyperplane); the best sits in between
// (the paper finds log10(lambda) ≈ 2).
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_support.hpp"
#include "rng/engine.hpp"

namespace {

using namespace plos;

data::MultiUserDataset make_dataset(std::uint64_t seed) {
  sensing::HarSpec spec;
  rng::Engine engine(seed);
  auto dataset = generate_har_dataset(spec, engine);
  bench::reveal_first_providers(dataset, 15, 0.06, seed + 1);
  return dataset;
}

void print_figure() {
  bench::print_title("Figure 7: HAR PLOS accuracy vs log10(lambda)");
  const std::vector<std::string> names{"PLOS_label", "PLOS_unlabel"};
  bench::print_header("log10_lambda", names);

  const auto dataset = make_dataset(88);
  for (double log_lambda = 0.0; log_lambda <= 4.0; log_lambda += 0.5) {
    auto options = bench::bench_plos_options();
    options.params.lambda = std::pow(10.0, log_lambda);
    const auto result = core::train_centralized_plos(dataset, options);
    const auto report =
        core::evaluate(dataset, core::predict_all(dataset, result.model));
    bench::print_row(log_lambda, std::vector<double>{report.providers,
                                                     report.non_providers});
  }
}

void BM_TrainPlosLambda100(benchmark::State& state) {
  const auto dataset = make_dataset(88);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::train_centralized_plos(dataset, bench::bench_plos_options()));
  }
}
BENCHMARK(BM_TrainPlosLambda100)
    ->Unit(benchmark::kMillisecond)
    ->Apply(plos::bench::bench_time_config);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
