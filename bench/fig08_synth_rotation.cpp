// Figure 8 — synthetic data: accuracy vs the maximum rotation angle among
// users (the "difference level" knob). Expected shape: All degrades quickly
// as users diverge, Single stays flat, Group degrades slower than All, PLOS
// stays best with a mild decline (stronger on label-free users).
//
// Setup per the paper §VI-D: 10 users, 200 points per class, ±(10,10)
// Gaussians with covariance [[225,-180],[-180,225]], 10% label noise,
// 5 providers labeling 8 samples each (2%).
#include <benchmark/benchmark.h>

#include <numbers>

#include "bench_support.hpp"
#include "rng/engine.hpp"

namespace {

using namespace plos;

data::MultiUserDataset make_dataset(double max_rotation, std::uint64_t seed) {
  data::SyntheticSpec spec;
  spec.num_users = 10;
  spec.points_per_class = 200;
  spec.max_rotation = max_rotation;
  rng::Engine engine(seed);
  auto dataset = data::generate_synthetic(spec, engine);
  bench::reveal_spread_providers(dataset, 5, 0.02, seed + 1);
  return dataset;
}

void print_figure() {
  bench::print_title(
      "Figure 8: synthetic accuracy vs rotation angle (x = angle/pi)");
  const auto names = bench::accuracy_series_names();
  bench::print_header("rotation/pi", names);

  const int kSeeds = 2;
  for (int step = 0; step <= 6; ++step) {
    const double angle =
        std::numbers::pi * static_cast<double>(step) / 6.0;
    std::vector<double> sums(names.size(), 0.0);
    for (int seed = 0; seed < kSeeds; ++seed) {
      const auto dataset =
          make_dataset(angle, 100 * static_cast<std::uint64_t>(seed) + step);
      const auto reports =
          bench::run_all_methods(dataset, bench::bench_plos_options());
      const auto values = bench::accuracy_series_values(reports);
      for (std::size_t i = 0; i < values.size(); ++i) sums[i] += values[i];
    }
    for (auto& v : sums) v /= kSeeds;
    bench::print_row(static_cast<double>(step) / 6.0, sums);
  }
}

void BM_TrainPlosRotated(benchmark::State& state) {
  const auto dataset = make_dataset(std::numbers::pi / 2.0, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::train_centralized_plos(dataset, bench::bench_plos_options()));
  }
}
BENCHMARK(BM_TrainPlosRotated)->Unit(benchmark::kMillisecond)->Apply(plos::bench::bench_time_config);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
