// Ablation 8 — fault tolerance: distributed PLOS accuracy, rounds, and
// device energy as the per-message drop rate rises (0 .. 0.5), with 10%
// device churn and CRC-checked retries in force. Expected shape: retries
// recover most drops, so accuracy degrades by at most a few percent while
// retry traffic/energy and (under churn) ADMM iterations grow — graceful
// degradation rather than a cliff. Set PLOS_BENCH_METRICS=<file> to dump a
// per-drop-rate metrics snapshot (retry/drop/corrupt counters, traffic,
// participation gauge) as JSON lines.
#include <benchmark/benchmark.h>

#include <memory>
#include <numbers>

#include "bench_support.hpp"
#include "net/fault.hpp"
#include "net/simnet.hpp"
#include "rng/engine.hpp"

namespace {

using namespace plos;

data::MultiUserDataset make_dataset() {
  data::SyntheticSpec spec;
  spec.num_users = 20;
  spec.points_per_class = 60;
  spec.max_rotation = std::numbers::pi / 2.0;
  rng::Engine engine(81);
  auto dataset = data::generate_synthetic(spec, engine);
  bench::reveal_spread_providers(dataset, 10, 0.05, 82);
  return dataset;
}

net::FaultSpec make_fault_spec(double drop_rate) {
  net::FaultSpec spec;
  spec.drop_probability = drop_rate;
  spec.corrupt_probability = drop_rate / 10.0;
  spec.offline_probability = 0.1;
  spec.seed = 83;
  return spec;
}

core::DistributedPlosOptions make_options() {
  auto options = bench::bench_distributed_options();
  options.cutting_plane.epsilon = 5e-2;
  options.cccp.max_iterations = 3;
  options.num_threads = bench::bench_num_threads();
  return options;
}

void print_figure() {
  bench::print_title(
      "Ablation 8: distributed PLOS under message drop faults");
  const std::vector<std::string> names{"acc_label",   "acc_unlabel",
                                      "admm_iters",  "energy_j",
                                      "participation", "retries"};
  bench::print_header("drop_rate", names);

  const auto dataset = make_dataset();
  for (double drop : {0.0, 0.1, 0.3, 0.5}) {
    std::unique_ptr<bench::PhaseMetrics> phase;
    if (bench::bench_metrics_enabled()) {
      phase = std::make_unique<bench::PhaseMetrics>(
          "fault_drop_" + std::to_string(drop));
    }
    net::SimNetwork network(dataset.num_users(), net::DeviceProfile{},
                            net::LinkProfile{});
    const net::FaultSpec fault_spec = make_fault_spec(drop);
    if (fault_spec.any_faults()) {
      network.set_fault_model(net::FaultModel(fault_spec));
    }
    const auto result =
        core::train_distributed_plos(dataset, make_options(), &network);
    const auto report =
        core::evaluate(dataset, core::predict_all(dataset, result.model));
    double participation = 1.0;
    if (!result.diagnostics.participation_trace.empty()) {
      participation = 0.0;
      for (double p : result.diagnostics.participation_trace) {
        participation += p;
      }
      participation /=
          static_cast<double>(result.diagnostics.participation_trace.size());
    }
    bench::print_row(
        drop,
        std::vector<double>{
            report.providers, report.non_providers,
            static_cast<double>(result.diagnostics.admm_iterations_total),
            network.total_device_energy() /
                static_cast<double>(dataset.num_users()),
            participation,
            static_cast<double>(result.diagnostics.fault_counters.retries)});
  }
}

void BM_DistributedPlosThirtyPercentDrop(benchmark::State& state) {
  const auto dataset = make_dataset();
  for (auto _ : state) {
    net::SimNetwork network(dataset.num_users(), net::DeviceProfile{},
                            net::LinkProfile{});
    network.set_fault_model(net::FaultModel(make_fault_spec(0.3)));
    benchmark::DoNotOptimize(
        core::train_distributed_plos(dataset, make_options(), &network));
  }
}
BENCHMARK(BM_DistributedPlosThirtyPercentDrop)
    ->Unit(benchmark::kMillisecond)
    ->Apply(plos::bench::bench_time_config);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
