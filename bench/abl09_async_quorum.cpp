// Ablation 9 — asynchronous bounded-staleness quorum (src/async): accuracy
// and simulated wall-clock of distributed PLOS when the round barrier is
// replaced by quorum aggregation, on a straggler-heavy fleet (30% of the
// devices are chronic stragglers with 6x-slower CPUs). The synchronous
// baseline is the degenerate async run (quorum 1.0, no deadlines), which
// the engine reproduces bit for bit and whose virtual clock is the barrier
// schedule. Expected shape: a 60% quorum reaches the synchronous run's
// final accuracy (within one point, entered and never left) in well under
// 0.6x the barrier's simulated wall-clock — the slow devices stop pacing
// the fleet, and their uploads keep folding in late under the staleness
// bound (12 > the ~6-8 rounds a slow solve spans at the fast cut pace)
// instead of being dropped. Chronic stragglers never make a 60% cut, so
// their blocks stay a few steps stale and the residual thresholds do not
// fire; the run then ends at the ADMM iteration cap, which is why
// time-to-accuracy, not end-to-end time, is the headline metric.
// PLOS_BENCH_JSON mode emits BENCH_abl09_async_quorum.json with exact
// llround-scaled counters (virtual_wall_us, accuracy_x10000,
// wallclock_ratio_x1000, tta_within1pt_us, tta_ratio_x1000,
// acc_gap_vs_sync_x10000) for the CI perf gate.
#include <benchmark/benchmark.h>

#include <cmath>
#include <limits>
#include <numbers>
#include <string>
#include <vector>

#include "async/async_admm.hpp"
#include "bench_support.hpp"
#include "core/evaluation.hpp"
#include "core/model.hpp"
#include "linalg/vector.hpp"
#include "net/simnet.hpp"
#include "rng/engine.hpp"

namespace {

using namespace plos;

data::MultiUserDataset make_dataset() {
  data::SyntheticSpec spec;
  spec.num_users = 20;
  spec.points_per_class = 60;
  spec.max_rotation = std::numbers::pi / 2.0;
  rng::Engine engine(71);
  auto dataset = data::generate_synthetic(spec, engine);
  bench::reveal_spread_providers(dataset, 10, 0.05, 72);
  return dataset;
}

// Chronic stragglers: 30% of the fleet (devices 0-2, 10-12) runs on
// 6x-slower CPUs. Unlike the per-round FaultSpec straggler draw, a chronic
// straggler is slow on EVERY dispatch, so the barrier always waits for it
// while a 60% quorum never has to.
constexpr double kStragglerSlowdown = 6.0;

bool is_straggler(std::size_t device) { return device % 10 < 3; }

void apply_straggler_fleet(net::SimNetwork& network) {
  for (std::size_t t = 0; t < network.num_devices(); ++t) {
    if (!is_straggler(t)) continue;
    net::DeviceProfile profile;  // defaults, 6x the reference slowdown
    profile.cpu_slowdown *= kStragglerSlowdown;
    network.set_device_profile(t, profile);
  }
}

async::AsyncQuorumOptions make_options(double quorum,
                                       std::uint64_t staleness_bound,
                                       bool adaptive) {
  async::AsyncQuorumOptions options;
  options.base = bench::bench_distributed_options();
  options.base.cutting_plane.epsilon = 5e-2;
  options.base.cccp.max_iterations = 3;
  options.base.num_threads = bench::bench_num_threads();
  options.quorum = quorum;
  options.staleness_bound = staleness_bound;
  options.adaptive_deadline = adaptive;
  // Compute-bound local solves: phone-class QP work dwarfs the radio time,
  // so a straggling device actually paces the barrier. With the default
  // link-dominated spec every round trip costs the same ~0.2 s of radio and
  // an 8x compute straggler is invisible.
  options.latency.compute_base_s = 5e-2;
  return options;
}

struct AccuracySample {
  double virtual_seconds = 0.0;
  double accuracy = 0.0;
};

struct CaseOutcome {
  async::AsyncQuorumResult result;
  double accuracy = 0.0;
  /// Accuracy after every aggregation step, against the virtual clock.
  std::vector<AccuracySample> trace;
};

// Earliest virtual time at which the run enters the accuracy band
// [target, 1] and never leaves it again. Infinity when it never settles.
double time_to_accuracy(const std::vector<AccuracySample>& trace,
                        double target) {
  double entered = std::numeric_limits<double>::infinity();
  for (const auto& sample : trace) {
    if (sample.accuracy >= target) {
      if (!std::isfinite(entered)) entered = sample.virtual_seconds;
    } else {
      entered = std::numeric_limits<double>::infinity();
    }
  }
  return entered;
}

CaseOutcome run_case(const data::MultiUserDataset& dataset, double quorum,
                     std::uint64_t staleness_bound, bool adaptive,
                     bool stragglers) {
  CaseOutcome outcome;
  net::SimNetwork network(dataset.num_users(), net::DeviceProfile{},
                          net::LinkProfile{});
  if (stragglers) apply_straggler_fleet(network);
  auto options = make_options(quorum, staleness_bound, adaptive);
  core::PersonalizedModel probe =
      core::PersonalizedModel::zeros(dataset.num_users(), 0);
  options.on_aggregate = [&](const async::AsyncAggregateView& view) {
    probe.global_weights = view.w0;
    for (std::size_t t = 0; t < view.w.size(); ++t) {
      probe.user_deviations[t] = linalg::sub(view.w[t], view.w0);
    }
    outcome.trace.push_back(AccuracySample{
        view.virtual_seconds,
        core::evaluate(dataset, core::predict_all(dataset, probe)).overall});
  };
  outcome.result = async::train_async_quorum_plos(dataset, options, &network);
  outcome.accuracy =
      core::evaluate(dataset,
                     core::predict_all(dataset, outcome.result.model))
          .overall;
  return outcome;
}

// The degenerate configuration is the synchronous barrier: every round
// waits for its slowest device and nothing is ever late or evicted.
CaseOutcome run_sync_baseline(const data::MultiUserDataset& dataset,
                              bool stragglers) {
  return run_case(dataset, 1.0, 1u << 20, /*adaptive=*/false, stragglers);
}

void print_figure() {
  bench::print_title(
      "Ablation 9: async bounded-staleness quorum vs the round barrier");
  const std::vector<std::string> names{"accuracy",  "virtual_s",
                                       "tta_s",     "tta_ratio",
                                       "late_upl",  "evictions",
                                       "max_stale"};
  bench::print_header("quorum", names);

  const auto dataset = make_dataset();
  const auto barrier = run_sync_baseline(dataset, /*stragglers=*/true);
  // Time-to-accuracy band: within one accuracy point of the synchronous
  // final model, entered and never left (DAWNBench-style). tta_ratio is
  // measured against the synchronous run's full simulated wall-clock —
  // the acceptance bar is <= 0.6 for the 60% quorum.
  const double band = barrier.accuracy - 0.01;
  for (double quorum : {1.0, 0.8, 0.6}) {
    const CaseOutcome outcome =
        quorum == 1.0 ? barrier
                      : run_case(dataset, quorum, 12, /*adaptive=*/false,
                                 /*stragglers=*/true);
    const auto& a = outcome.result.async;
    bench::print_row(
        quorum,
        std::vector<double>{
            outcome.accuracy, a.virtual_seconds,
            time_to_accuracy(outcome.trace, band),
            time_to_accuracy(outcome.trace, band) /
                barrier.result.async.virtual_seconds,
            static_cast<double>(a.late_uploads_total),
            static_cast<double>(a.evictions_offline_total +
                                a.evictions_late_total +
                                a.evictions_failed_total),
            static_cast<double>(a.max_staleness_seen)});
  }
}

void fill_counters(bench::BenchCase& bench_case, const CaseOutcome& outcome,
                   const CaseOutcome& baseline) {
  const auto& a = outcome.result.async;
  bench_case.counters["admm_iterations"] = static_cast<double>(
      outcome.result.diagnostics.admm_iterations_total);
  bench_case.counters["qp_solves"] =
      static_cast<double>(outcome.result.diagnostics.qp_solves);
  bench_case.counters["late_uploads"] =
      static_cast<double>(a.late_uploads_total);
  bench_case.counters["evictions"] = static_cast<double>(
      a.evictions_offline_total + a.evictions_late_total +
      a.evictions_failed_total);
  bench_case.counters["max_staleness"] =
      static_cast<double>(a.max_staleness_seen);
  // Machine-exact integer-valued doubles so the perf gate compares them
  // exactly: the virtual clock in microseconds and scaled ratios.
  bench_case.counters["virtual_wall_us"] =
      static_cast<double>(std::llround(a.virtual_seconds * 1e6));
  bench_case.counters["accuracy_x10000"] =
      static_cast<double>(std::llround(outcome.accuracy * 1e4));
  bench_case.counters["wallclock_ratio_x1000"] = static_cast<double>(
      std::llround(a.virtual_seconds /
                   baseline.result.async.virtual_seconds * 1e3));
  bench_case.counters["acc_gap_vs_sync_x10000"] = static_cast<double>(
      std::llround((baseline.accuracy - outcome.accuracy) * 1e4));
  // Time to enter (and stay in) the one-accuracy-point band around the
  // synchronous final model, and its ratio to the synchronous run's full
  // simulated wall-clock — the acceptance metric (<= 600 for quorum60).
  const double tta = time_to_accuracy(outcome.trace, baseline.accuracy - 0.01);
  bench_case.counters["tta_within1pt_us"] = static_cast<double>(
      std::isfinite(tta) ? std::llround(tta * 1e6) : -1);
  bench_case.counters["tta_ratio_x1000"] = static_cast<double>(
      std::isfinite(tta)
          ? std::llround(tta / baseline.result.async.virtual_seconds * 1e3)
          : -1);
}

void emit_bench_json() {
  bench::BenchSuite suite;
  suite.name = "abl09_async_quorum";
  const auto dataset = make_dataset();

  CaseOutcome barrier;
  {
    bench::BenchCase bench_case;
    bench_case.stats = bench::run_timed(
        [&] { barrier = run_sync_baseline(dataset, /*stragglers=*/true); });
    fill_counters(bench_case, barrier, barrier);
    suite.cases["sync_barrier_straggler30"] = bench_case;
  }
  const struct {
    const char* name;
    double quorum;
    bool stragglers;
  } configs[] = {
      {"quorum60_straggler30", 0.6, true},
      {"quorum80_straggler30", 0.8, true},
      {"quorum60_faultfree", 0.6, false},
  };
  for (const auto& config : configs) {
    CaseOutcome outcome;
    bench::BenchCase bench_case;
    bench_case.stats = bench::run_timed([&] {
      outcome = run_case(dataset, config.quorum, 12, /*adaptive=*/false,
                         config.stragglers);
    });
    fill_counters(bench_case, outcome, barrier);
    suite.cases[config.name] = bench_case;
  }
  bench::write_bench_suite(suite);
}

void BM_AsyncQuorumStragglerHeavy(benchmark::State& state) {
  const auto dataset = make_dataset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_case(dataset, 0.6, 12, /*adaptive=*/true, /*stragglers=*/true));
  }
}
BENCHMARK(BM_AsyncQuorumStragglerHeavy)
    ->Unit(benchmark::kMillisecond)
    ->Apply(plos::bench::bench_time_config);

}  // namespace

int main(int argc, char** argv) {
  if (bench::bench_json_enabled()) {
    emit_bench_json();
    return 0;
  }
  print_figure();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
