// Figure 6 — HAR-like smartphone dataset: accuracy vs training rate
// (4%..48%) with 15 fixed label providers. Expected shape: Single/Group
// close the gap to All as labels grow; Single's unlabeled users stay flat;
// PLOS best.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"
#include "rng/engine.hpp"

namespace {

using namespace plos;

data::MultiUserDataset make_dataset(std::uint64_t seed) {
  sensing::HarSpec spec;
  rng::Engine engine(seed);
  return sensing::generate_har_dataset(spec, engine);
}

void print_figure() {
  bench::print_title(
      "Figure 6: HAR accuracy vs training rate (15 providers)");
  const auto names = bench::accuracy_series_names();
  bench::print_header("rate_percent", names);

  auto dataset = make_dataset(77);
  for (int percent = 4; percent <= 48; percent += 8) {
    bench::reveal_first_providers(dataset, 15, percent / 100.0,
                                  static_cast<std::uint64_t>(percent));
    const auto reports =
        bench::run_all_methods(dataset, bench::bench_plos_options());
    bench::print_row(static_cast<double>(percent),
                     bench::accuracy_series_values(reports));
  }
}

void BM_TrainPlosHarRich(benchmark::State& state) {
  auto dataset = make_dataset(77);
  bench::reveal_first_providers(dataset, 15, 0.24, 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::train_centralized_plos(dataset, bench::bench_plos_options()));
  }
}
BENCHMARK(BM_TrainPlosHarRich)->Unit(benchmark::kMillisecond)->Apply(plos::bench::bench_time_config);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
