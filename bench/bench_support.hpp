// Shared support for the per-figure benchmark binaries.
//
// Every binary regenerates one figure of the paper's evaluation section:
// it prints the figure's series as an aligned text table (accuracy per
// sweep point per method) and then runs google-benchmark timings for a
// representative configuration.
#pragma once

#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/baselines.hpp"
#include "core/centralized_plos.hpp"
#include "core/distributed_plos.hpp"
#include "core/evaluation.hpp"
#include "data/dataset.hpp"
#include "data/labeling.hpp"
#include "data/synthetic.hpp"
#include "sensing/body_sensor.hpp"
#include "sensing/har.hpp"

namespace benchmark::internal {
class Benchmark;  // keep <benchmark/benchmark.h> out of this header
}

namespace plos::bench {

/// Accuracy reports of the four compared methods on one dataset.
struct MethodReports {
  core::AccuracyReport plos;
  core::AccuracyReport all;
  core::AccuracyReport group;
  core::AccuracyReport single;
};

/// Trains centralized PLOS and the three baselines and evaluates all four.
MethodReports run_all_methods(const data::MultiUserDataset& dataset,
                              const core::CentralizedPlosOptions& options);

/// PLOS hyper-parameters used by the synthetic and HAR figure benches
/// (fixed rather than cross-validated per point to keep bench runtime
/// bounded; chosen once by CV-style sweeps, as EXPERIMENTS.md documents).
core::CentralizedPlosOptions bench_plos_options();

/// Body-sensor figures use stronger unlabeled weighting and a looser
/// commonness tie (λ=30, Cu=5): free placement makes personal structure
/// more informative there, and the paper's per-experiment CV would pick
/// different parameters per dataset too.
core::CentralizedPlosOptions bench_body_plos_options();

/// Matching options for the distributed trainer.
core::DistributedPlosOptions bench_distributed_options();

/// Worker-thread count for bench training runs, from the PLOS_BENCH_THREADS
/// environment variable (default 1 = serial; 0 = hardware concurrency).
/// Results are bitwise identical for every value, so it only moves timings.
int bench_num_threads();

/// Reveals labels for the first `num_providers` users at `rate`.
void reveal_first_providers(data::MultiUserDataset& dataset,
                            std::size_t num_providers, double rate,
                            std::uint64_t seed);

/// Reveals labels for `num_providers` users spread evenly across the user
/// index range. The synthetic population's rotation angle grows with the
/// user index, so spreading providers keeps every rotation regime
/// represented among the label providers (first-k would leave the most
/// rotated users systematically label-free).
void reveal_spread_providers(data::MultiUserDataset& dataset,
                             std::size_t num_providers, double rate,
                             std::uint64_t seed);

// ---- table printing ------------------------------------------------------

void print_title(const std::string& title);
void print_header(const std::string& x_name,
                  std::span<const std::string> series);
void print_row(double x, std::span<const double> values);

/// Standard 8 series of the paper's accuracy figures:
/// {PLOS, All, Group, Single} × {label, unlabel}.
std::vector<std::string> accuracy_series_names();
std::vector<double> accuracy_series_values(const MethodReports& reports);

// ---- opt-in run manifests ------------------------------------------------

/// True when the PLOS_BENCH_MANIFEST environment variable names an output
/// file; run_all_methods then appends one run-manifest JSON line per
/// invocation (build info, solver options, dataset fingerprint, all four
/// methods' accuracies, PLOS convergence counters), so a whole figure
/// sweep becomes a machine-readable JSONL series inspectable with
/// `plos_inspect report` / `diff` per line.
bool bench_manifest_enabled();

// ---- opt-in per-phase metrics dump ---------------------------------------

/// True when the PLOS_BENCH_METRICS environment variable names an output
/// file; benches then record solver-internal metrics per phase.
bool bench_metrics_enabled();

// ---- standardized timed runner & BENCH_*.json baselines ------------------

/// Timed repetitions for bench hot sections, from the PLOS_BENCH_REPS
/// environment variable (default 1, minimum 1).
int bench_reps();

/// Untimed warm-up runs before the timed repetitions, from
/// PLOS_BENCH_WARMUP (default 0).
int bench_warmup();

/// Applies the env knobs to a google-benchmark registration (replacing the
/// previously hard-coded ->Iterations(1)): exactly bench_reps() iterations
/// or — because google-benchmark forbids combining an exact iteration
/// count with a warm-up phase — time-based mode with ~0.25 s of warm-up
/// per requested warm-up iteration when PLOS_BENCH_WARMUP > 0. Exact
/// warm-up/rep semantics live in run_timed(), which the BENCH_*.json
/// emission path uses.
void bench_time_config(benchmark::internal::Benchmark* bench);

/// Wall-time statistics over bench_reps() timed runs of a body after
/// bench_warmup() untimed runs. Median/MAD are robust to scheduler noise;
/// min approximates the noise-free cost.
struct TimedStats {
  int reps = 1;
  int warmup = 0;
  double median_ms = 0.0;
  double mad_ms = 0.0;  ///< median absolute deviation from the median
  double min_ms = 0.0;
};

/// Runs body bench_warmup() times untimed, then bench_reps() times timed.
TimedStats run_timed(const std::function<void()>& body);

/// One named bench case: exact deterministic counters (compared exactly
/// by `plos_inspect bench-check`) plus wall-time stats (compared with a
/// relative tolerance, or ignored by `bench-diff`).
struct BenchCase {
  std::map<std::string, double> counters;
  TimedStats stats;
};

/// An in-memory BENCH_<name>.json document.
struct BenchSuite {
  std::string name;
  int schema_version = 1;
  std::map<std::string, BenchCase> cases;
};

/// Renders the schema-versioned baseline JSON:
/// {"schema_version":1,"name":…,
///  "cases":{case:{"counters":{…},
///                 "timing":{"reps","warmup","median_ms","mad_ms",
///                           "min_ms"}},…}}
std::string bench_suite_to_json(const BenchSuite& suite);

/// True when the PLOS_BENCH_JSON environment variable names an output
/// directory; benches with a JSON mode then skip their figure tables and
/// google-benchmark phase and emit machine-readable baselines instead.
bool bench_json_enabled();

/// Writes <PLOS_BENCH_JSON>/BENCH_<suite.name>.json; false when disabled
/// or on I/O failure.
bool write_bench_suite(const BenchSuite& suite);

/// RAII phase scope. When bench_metrics_enabled(), construction enables the
/// global metrics registry and zeroes its values; destruction appends one
/// JSON line `{"phase":"<name>","metrics":<registry snapshot>}` to the
/// PLOS_BENCH_METRICS file. The snapshot carries the solver-internal
/// breakdown (time in QP vs cutting-plane separation vs serialization,
/// iteration histograms, simnet traffic) for BENCH_*.json post-processing.
/// A no-op when the variable is unset, so benches stay overhead-free by
/// default.
class PhaseMetrics {
 public:
  explicit PhaseMetrics(std::string phase);
  ~PhaseMetrics();

  PhaseMetrics(const PhaseMetrics&) = delete;
  PhaseMetrics& operator=(const PhaseMetrics&) = delete;

 private:
  std::string phase_;
  bool active_ = false;
};

}  // namespace plos::bench
