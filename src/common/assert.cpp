#include "common/assert.hpp"

#include <atomic>
#include <sstream>

namespace plos {

namespace {

const char* kind_name(ContractKind kind) {
  switch (kind) {
    case ContractKind::kCheck: return "PLOS_CHECK";
    case ContractKind::kDcheck: return "PLOS_DCHECK";
    case ContractKind::kCheckFinite: return "PLOS_CHECK_FINITE";
  }
  return "PLOS_CHECK";
}

std::atomic<ContractHandler> g_handler{nullptr};

}  // namespace

ContractHandler set_contract_handler(ContractHandler handler) {
  return g_handler.exchange(handler);
}

namespace detail {

void contract_fail(ContractKind kind, const char* expr, const char* file,
                   int line, const std::string& msg) {
  std::ostringstream os;
  os << kind_name(kind) << " failed: (" << expr << ") at " << file << ":"
     << line;
  if (!msg.empty()) os << " — " << msg;
  const std::string what = os.str();

  if (ContractHandler handler = g_handler.load()) {
    handler(ContractViolation{kind, expr, file, line, msg});
  }
  // A returning handler does not resume execution: the violated invariant
  // still holds downstream code hostage, so the throw is unconditional.
  throw PreconditionError(what);
}

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  contract_fail(ContractKind::kCheck, expr, file, line, msg);
}

}  // namespace detail
}  // namespace plos
