#include "common/assert.hpp"

#include <sstream>

namespace plos::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::ostringstream os;
  os << "PLOS precondition failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

}  // namespace plos::detail
