// Wall-clock stopwatch used to meter real solver time, which the network
// simulator then scales onto simulated device CPUs.
#pragma once

#include <chrono>

namespace plos {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Seconds since construction or the last reset().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace plos
