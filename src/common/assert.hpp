// Tiered contract checking for the PLOS library.
//
// Three tiers (DESIGN.md §11):
//
//   PLOS_CHECK(expr, msg)   always on, release builds included: guards API
//                           contracts whose cost is negligible next to the
//                           numerical work. Silent contract violations in a
//                           learning system produce answers that are wrong
//                           in hard-to-detect ways.
//   PLOS_DCHECK(expr, msg)  compiled in only under -DPLOS_CONTRACTS (CMake
//                           option PLOS_CONTRACTS): O(n)+ invariant sweeps
//                           on hot paths — QP dual feasibility, Cholesky
//                           symmetry, capped-simplex bounds. When contracts
//                           are off the condition is type-checked but never
//                           evaluated.
//   PLOS_CHECK_FINITE(expr) always on; evaluates `expr` once, fails if the
//                           value is NaN/Inf, and yields the value, so it
//                           wraps an expression in place.
//
// The `msg` argument is a stream expression: anything `operator<<`-able,
// chained with `<<`, e.g. PLOS_CHECK(n > 0, "got n=" << n). It is only
// evaluated on failure.
//
// Violations are routed through a process-wide registered handler
// (set_contract_handler); the default — and the guaranteed fallback if a
// custom handler returns — throws plos::PreconditionError so contracts are
// testable with gtest (EXPECT_THROW) and carry file/line context. These
// checks guard contracts, not recoverable runtime conditions; recoverable
// conditions are reported through status structs or std::optional at the
// call site.
#pragma once

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

namespace plos {

/// Thrown when a PLOS_CHECK / PLOS_DCHECK / PLOS_CHECK_FINITE contract is
/// violated (by the default handler, and unconditionally after a custom
/// handler returns).
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Which contract tier fired.
enum class ContractKind { kCheck, kDcheck, kCheckFinite };

/// Everything a failure handler learns about a violation.
struct ContractViolation {
  ContractKind kind;
  const char* expression;  ///< stringized condition
  const char* file;
  int line;
  std::string message;  ///< formatted caller message (may be empty)
};

/// Failure handler: observes the violation (log, count, abort...). If it
/// returns, PreconditionError is thrown regardless — a contract violation
/// never continues execution.
using ContractHandler = void (*)(const ContractViolation&);

/// Registers `handler` (nullptr restores the default throwing handler).
/// Returns the previously registered handler. Thread-safe.
ContractHandler set_contract_handler(ContractHandler handler);

namespace detail {

[[noreturn]] void contract_fail(ContractKind kind, const char* expr,
                                const char* file, int line,
                                const std::string& msg);

/// Legacy entry point kept for older call sites; equivalent to a kCheck
/// failure.
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);

template <typename T>
T check_finite(T value, const char* expr, const char* file, int line) {
  if (!std::isfinite(static_cast<double>(value))) {
    std::ostringstream os;
    os << "non-finite value " << static_cast<double>(value);
    contract_fail(ContractKind::kCheckFinite, expr, file, line, os.str());
  }
  return value;
}

}  // namespace detail
}  // namespace plos

#define PLOS_CONTRACT_FAIL_(kind, expr_str, msg)                        \
  do {                                                                  \
    std::ostringstream plos_contract_os_;                               \
    plos_contract_os_ << msg;                                           \
    ::plos::detail::contract_fail((kind), (expr_str), __FILE__,         \
                                  __LINE__, plos_contract_os_.str());   \
  } while (false)

// Always-on contract check.
#define PLOS_CHECK(expr, msg)                                           \
  do {                                                                  \
    if (!(expr)) {                                                      \
      PLOS_CONTRACT_FAIL_(::plos::ContractKind::kCheck, #expr, msg);    \
    }                                                                   \
  } while (false)

#define PLOS_ASSERT(expr) PLOS_CHECK(expr, "")

// Debug/checked-build contract check (CMake -DPLOS_CONTRACTS=ON). Off, the
// condition and message stay type-checked (no unused-variable warnings at
// call sites) but are never evaluated: the `if (false)` branch is dead.
#if defined(PLOS_CONTRACTS)
#define PLOS_DCHECK(expr, msg)                                          \
  do {                                                                  \
    if (!(expr)) {                                                      \
      PLOS_CONTRACT_FAIL_(::plos::ContractKind::kDcheck, #expr, msg);   \
    }                                                                   \
  } while (false)
#else
#define PLOS_DCHECK(expr, msg)                                          \
  do {                                                                  \
    if (false) {                                                        \
      if (!(expr)) {                                                    \
        PLOS_CONTRACT_FAIL_(::plos::ContractKind::kDcheck, #expr, msg); \
      }                                                                 \
    }                                                                   \
  } while (false)
#endif

// Always-on finiteness gate; evaluates to the checked value.
#define PLOS_CHECK_FINITE(expr) \
  (::plos::detail::check_finite((expr), #expr, __FILE__, __LINE__))
