// Precondition / invariant checking for the PLOS library.
//
// Violations throw plos::PreconditionError so they are testable with gtest
// (EXPECT_THROW) and carry file/line context. These checks guard API
// contracts, not recoverable runtime conditions; recoverable conditions are
// reported through status structs or std::optional at the call site.
#pragma once

#include <stdexcept>
#include <string>

namespace plos {

/// Thrown when a PLOS_ASSERT / PLOS_CHECK contract is violated.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace plos

// Always-on contract check (also in release builds: the costs here are
// negligible next to the numerical work, and silent contract violations in a
// learning system produce answers that are wrong in hard-to-detect ways).
#define PLOS_CHECK(expr, msg)                                          \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::plos::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                  \
  } while (false)

#define PLOS_ASSERT(expr) PLOS_CHECK(expr, "")
