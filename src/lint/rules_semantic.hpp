// Token-level semantic rule families (DESIGN.md §16).
//
// Three analyses over the lexer's token stream and the include graph:
//
//   race-surface        Inside a `parallel_for`/`submit` lambda body, a
//                       write (`=`, compound assignment, `++`/`--`, or a
//                       known-mutating method call) to a by-reference or
//                       this-captured variable that is not indexed by a
//                       lambda-local value, not std::atomic, and not
//                       preceded by a lock guard in the same body is a
//                       finding. Catches the class of bug TSan only finds
//                       when a schedule exposes it.
//
//   accumulation-order  In hot-path code, a loop-carried `+=`/`-=` into a
//                       zero-initialized double whose element term reads
//                       the innermost loop variable inline must route
//                       through the linalg::kernels pinned-order
//                       primitives (§13). Scans (the target is re-read
//                       inside the loop), seeded recurrences (non-zero
//                       initializer), and folds over hoisted locals are
//                       structurally exempt.
//
//   layering            Every include edge between top-level modules must
//                       be declared in the layering DAG
//                       (tools/lint_layers.json). No grandfather list.
//
// The heuristics' false-positive/false-negative envelope is documented in
// DESIGN.md §16; all three are deterministic functions of the token
// stream.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/include_graph.hpp"
#include "lint/lexer.hpp"

namespace plos::lint {

struct Finding;
struct Rule;

void apply_race_surface(const Rule& rule, const std::string& path,
                        const std::vector<Token>& tokens,
                        std::vector<Finding>& findings);

void apply_accumulation_order(const Rule& rule, const std::string& path,
                              const std::vector<Token>& tokens,
                              std::vector<Finding>& findings);

void apply_layering(const Rule& rule, const std::string& path,
                    std::string_view scrubbed, const LayerGraph& layers,
                    std::vector<Finding>& findings);

}  // namespace plos::lint
