// Deterministic C++ token stream for the plos_lint semantic rules
// (DESIGN.md §16).
//
// Two layers, both pure functions of the input bytes:
//
//   1. strip_comments_and_strings — the scrubber. Blanks comment bodies and
//      string/char-literal contents (raw strings with custom delimiters,
//      escaped quotes, line splices in // comments, digit separators)
//      while preserving line structure byte for byte, so every downstream
//      line number is the source line number. Quoted #include targets are
//      kept readable for the include-graph rules. The scrubber is
//      idempotent: scrub(scrub(x)) == scrub(x), property-tested over a
//      seeded corpus in tests/test_lint_lexer.cpp.
//
//   2. tokenize — lexes *scrubbed* text into identifiers, numbers,
//      punctuation (max-munch over the real C++ operator table), and
//      blanked string/char literals, each tagged with its 1-based line and
//      the brace/paren nesting depth it sits in. This is not a full C++
//      front end: no preprocessing, no template disambiguation. It is
//      exactly the substrate the race-surface and accumulation-order rules
//      need — stable identifiers plus reliable bracket matching.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace plos::lint {

enum class TokenKind {
  kIdentifier,  ///< [A-Za-z_][A-Za-z0-9_]* (keywords included)
  kNumber,      ///< pp-number: 1.5e-3, 0xFF, 1'000'000, .5f
  kString,      ///< a (scrubbed) "..." literal; text keeps the contents
  kChar,        ///< a (scrubbed) '...' literal
  kPunct,       ///< operator or punctuator, longest-match spelling
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 1;         ///< 1-based source line of the first character
  int brace_depth = 0;  ///< {} nesting level the token sits in
  int paren_depth = 0;  ///< () nesting level the token sits in
};

/// Blanks comments and string/char-literal contents (raw strings included)
/// while preserving line structure. Quoted #include targets survive so the
/// include rules can parse them out of the scrubbed text. Idempotent.
std::string strip_comments_and_strings(std::string_view source);

/// Lexes scrubbed text (see above) into a deterministic token stream.
/// Depth fields: an opening bracket carries the depth outside it, a closing
/// bracket the depth outside it too, and every token in between carries the
/// depth inside — so "tokens with brace_depth > d" is exactly "tokens
/// enclosed by the block that opened at depth d".
std::vector<Token> tokenize(std::string_view scrubbed);

}  // namespace plos::lint
