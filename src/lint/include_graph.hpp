// Whole-tree include graph and the declarative layering DAG
// (DESIGN.md §16).
//
// The include graph is built from scrubbed sources (lexer.hpp): quoted
// include targets are resolved against the project file set the same way
// the build resolves them — relative to src/ (the single include root) or
// to the including file's directory. Angle includes never re-enter the
// project.
//
// The layering DAG lives in tools/lint_layers.json: every top-level module
// (src/<name>, plus the tools/bench/tests/examples roots) declares the
// exact set of modules it may include. Any edge the file does not declare
// is a finding — there is no grandfather list — and the declared graph
// itself must be acyclic, validated at parse time. "*" marks a top-layer
// module (harnesses, binaries) that may include anything.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace plos::lint {

/// Repo-relative path → file contents (mirrors lint.hpp's FileSet; kept
/// here too so this header stands alone).
using IncludeFileSet = std::map<std::string, std::string>;

/// One #include directive parsed out of scrubbed text.
struct Include {
  int line = 0;
  bool angle = false;
  std::string target;  ///< path between the delimiters
};

/// Parses every #include out of scrubbed source lines (1-based lines).
std::vector<Include> parse_includes(std::string_view scrubbed);

/// Resolves an include string against the project file set. Returns the
/// contents and sets `resolved` to the repo-relative path, or nullptr.
const std::string* resolve_include(const IncludeFileSet& project,
                                   const std::string& from,
                                   const std::string& target,
                                   std::string* resolved);

/// Does `target` (an include string) reach a header whose include path
/// starts with `forbidden`, following project includes depth-first?
bool include_reaches(const IncludeFileSet& project, const std::string& from,
                     const std::string& target, const std::string& forbidden,
                     std::set<std::string>& visited);

/// The declarative layering DAG: module name → modules it may include.
/// A module whose allow-list is exactly {"*"} sits in the top layer and
/// may include anything (and nothing may sit above it implicitly — other
/// modules must still declare their own edges).
struct LayerGraph {
  std::map<std::string, std::vector<std::string>> allowed;

  bool has_module(const std::string& name) const {
    return allowed.find(name) != allowed.end();
  }
  bool allows(const std::string& from, const std::string& to) const;
};

/// Parses tools/lint_layers.json. Rejects malformed JSON, unknown modules
/// referenced in an allow-list, and cycles in the declared graph.
std::optional<LayerGraph> parse_layers(std::string_view json_text,
                                       std::string* error = nullptr);

/// Top-level module a repo-relative path belongs to: "src/qp/foo.hpp" →
/// "qp", "tools/plos_lint.cpp" → "tools", "bench/..." → "bench". Files
/// directly under src/ (no module directory) map to "src".
std::string module_of(const std::string& path);

/// Module an *include target* belongs to ("qp/box_qp.hpp" → "qp"). A bare
/// target with no directory ("bench_support.hpp") resolves same-directory
/// and returns the including file's module, passed as `from_module`.
std::string module_of_target(const std::string& target,
                             const std::string& from_module);

}  // namespace plos::lint
