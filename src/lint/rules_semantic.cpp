#include "lint/rules_semantic.hpp"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <set>

#include "lint/lint.hpp"

namespace plos::lint {

namespace {

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// Index of the bracket matching tokens[open] (same spelling pair), or
/// tokens.size() when unbalanced. Works for (), [], {} and <> is not
/// supported (the lexer splits >> so templates stay out of the walks).
std::size_t match_forward(const std::vector<Token>& tokens, std::size_t open,
                          char open_char, char close_char) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kPunct || tokens[i].text.size() != 1) {
      continue;
    }
    const char c = tokens[i].text[0];
    if (c == open_char) ++depth;
    if (c == close_char && --depth == 0) return i;
  }
  return tokens.size();
}

/// Index of the opener matching tokens[close], walking backward.
std::size_t match_backward(const std::vector<Token>& tokens, std::size_t close,
                           char open_char, char close_char) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (tokens[i].kind != TokenKind::kPunct || tokens[i].text.size() != 1) {
      if (i == 0) break;
      continue;
    }
    const char c = tokens[i].text[0];
    if (c == close_char) ++depth;
    if (c == open_char && --depth == 0) return i;
    if (i == 0) break;
  }
  return tokens.size();
}

// ---- race-surface --------------------------------------------------------

const std::set<std::string>& mutating_methods() {
  static const std::set<std::string> kMutators = {
      "push_back", "emplace_back", "pop_back", "insert",  "emplace",
      "erase",     "clear",        "resize",   "assign",  "reserve"};
  return kMutators;
}

bool is_assign_op(const Token& t) {
  if (t.kind != TokenKind::kPunct) return false;
  static const std::set<std::string> kOps = {"=",  "+=", "-=",  "*=",  "/=",
                                             "%=", "&=", "|=",  "^=",
                                             "<<=", ">>="};
  return kOps.count(t.text) != 0;
}

// Identifiers that can precede a name without declaring it.
bool non_declaring_keyword(const std::string& text) {
  static const std::set<std::string> kKeywords = {
      "return",   "throw",  "new",     "delete",   "else",     "do",
      "case",     "goto",   "break",   "continue", "sizeof",   "typeid",
      "co_return", "co_await", "co_yield", "operator", "not"};
  return kKeywords.count(text) != 0;
}

/// Collects identifiers that look declared inside [begin, end): an
/// identifier preceded by a type-ish token (identifier, `>`, `&`, `&&`,
/// `*`) and followed by a declarator-ish one (`=`, `;`, `,`, `:`, `(`,
/// `)`, `{`, `[`). Misclassifying an expression as a declaration only
/// weakens the rule (false negative), never strengthens it — the envelope
/// DESIGN.md §16 documents.
std::set<std::string> collect_locals(const std::vector<Token>& tokens,
                                     std::size_t begin, std::size_t end) {
  std::set<std::string> locals;
  for (std::size_t i = begin; i < end; ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier) continue;
    if (i == begin || i + 1 >= end) continue;
    const Token& prev = tokens[i - 1];
    const Token& next = tokens[i + 1];
    const bool type_before =
        (prev.kind == TokenKind::kIdentifier &&
         !non_declaring_keyword(prev.text)) ||
        is_punct(prev, ">") || is_punct(prev, "&") || is_punct(prev, "&&") ||
        is_punct(prev, "*");
    const bool declarator_after =
        is_punct(next, "=") || is_punct(next, ";") || is_punct(next, ",") ||
        is_punct(next, ":") || is_punct(next, "(") || is_punct(next, ")") ||
        is_punct(next, "{") || is_punct(next, "[");
    if (type_before && declarator_after) locals.insert(tokens[i].text);
  }
  return locals;
}

/// Names declared std::atomic anywhere in the file: `atomic < ... > name`.
std::set<std::string> collect_atomics(const std::vector<Token>& tokens) {
  std::set<std::string> atomics;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (!is_ident(tokens[i], "atomic")) continue;
    std::size_t j = i + 1;
    if (is_punct(tokens[j], "<")) {
      int depth = 0;
      for (; j < tokens.size(); ++j) {
        if (is_punct(tokens[j], "<")) ++depth;
        if (is_punct(tokens[j], ">") && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    if (j < tokens.size() && tokens[j].kind == TokenKind::kIdentifier) {
      atomics.insert(tokens[j].text);
    }
  }
  return atomics;
}

struct CaptureInfo {
  bool default_ref = false;    // [&]
  bool default_value = false;  // [=]
  bool captures_this = false;  // [this] or [*this]
  std::set<std::string> by_ref;
  std::set<std::string> by_value;
};

CaptureInfo parse_captures(const std::vector<Token>& tokens,
                           std::size_t open_bracket,
                           std::size_t close_bracket) {
  CaptureInfo info;
  std::vector<std::vector<const Token*>> entries(1);
  int nest = 0;
  for (std::size_t i = open_bracket + 1; i < close_bracket; ++i) {
    const Token& t = tokens[i];
    if (t.kind == TokenKind::kPunct && t.text.size() == 1) {
      const char c = t.text[0];
      if (c == '(' || c == '[' || c == '{') ++nest;
      if (c == ')' || c == ']' || c == '}') --nest;
      if (c == ',' && nest == 0) {
        entries.emplace_back();
        continue;
      }
    }
    entries.back().push_back(&t);
  }
  for (const auto& entry : entries) {
    if (entry.empty()) continue;
    if (entry.size() == 1 && is_punct(*entry[0], "&")) {
      info.default_ref = true;
    } else if (entry.size() == 1 && is_punct(*entry[0], "=")) {
      info.default_value = true;
    } else if (is_ident(*entry[0], "this") ||
               (is_punct(*entry[0], "*") && entry.size() > 1 &&
                is_ident(*entry[1], "this"))) {
      info.captures_this = true;
    } else if (is_punct(*entry[0], "&") && entry.size() > 1 &&
               entry[1]->kind == TokenKind::kIdentifier) {
      info.by_ref.insert(entry[1]->text);
    } else if (entry[0]->kind == TokenKind::kIdentifier) {
      info.by_value.insert(entry[0]->text);
    }
  }
  return info;
}

/// Walks backward from `pos` (the token before a write operator) to the
/// base identifier of the lvalue path, collecting identifiers used inside
/// its subscript/call groups. Returns nullopt when the shape is not an
/// lvalue path.
struct LvaluePath {
  std::string base;
  std::size_t base_index = 0;
  std::set<std::string> index_idents;
};

std::optional<LvaluePath> walk_lvalue_backward(
    const std::vector<Token>& tokens, std::size_t pos) {
  LvaluePath path;
  while (true) {
    const Token& t = tokens[pos];
    if (is_punct(t, "]") || is_punct(t, ")")) {
      const char open = t.text[0] == ']' ? '[' : '(';
      const std::size_t m = match_backward(tokens, pos, open, t.text[0]);
      if (m >= tokens.size() || m == 0) return std::nullopt;
      for (std::size_t k = m + 1; k < pos; ++k) {
        if (tokens[k].kind == TokenKind::kIdentifier) {
          path.index_idents.insert(tokens[k].text);
        }
      }
      pos = m - 1;
      continue;
    }
    if (t.kind == TokenKind::kIdentifier) {
      path.base = t.text;
      path.base_index = pos;
      if (pos > 0 && (is_punct(tokens[pos - 1], ".") ||
                      is_punct(tokens[pos - 1], "->") ||
                      is_punct(tokens[pos - 1], "::"))) {
        if (pos < 2) return std::nullopt;
        pos -= 2;
        continue;
      }
      return path;
    }
    // A leading dereference writes through the named pointer; keep the
    // base found so far if any, otherwise give up on the shape.
    if (is_punct(t, "*") && !path.base.empty()) return path;
    return std::nullopt;
  }
}

struct LambdaRegion {
  CaptureInfo captures;
  std::set<std::string> params;
  std::size_t body_begin = 0;  // token index of '{'
  std::size_t body_end = 0;    // token index of matching '}'
};

/// Finds the lambda passed to a parallel_for/submit call whose opening
/// paren is at `call_open`. Returns nullopt when no lambda literal appears
/// among the arguments (e.g. a declaration or a named functor).
std::optional<LambdaRegion> parse_lambda(const std::vector<Token>& tokens,
                                         std::size_t call_open,
                                         std::size_t call_close) {
  std::size_t intro = tokens.size();
  for (std::size_t i = call_open + 1; i < call_close; ++i) {
    if (is_punct(tokens[i], "[") && i > 0 &&
        (is_punct(tokens[i - 1], "(") || is_punct(tokens[i - 1], ","))) {
      intro = i;
      break;
    }
  }
  if (intro >= tokens.size()) return std::nullopt;
  const std::size_t intro_close = match_forward(tokens, intro, '[', ']');
  if (intro_close >= tokens.size()) return std::nullopt;

  LambdaRegion region;
  region.captures = parse_captures(tokens, intro, intro_close);

  std::size_t cursor = intro_close + 1;
  if (cursor < tokens.size() && is_punct(tokens[cursor], "(")) {
    const std::size_t params_close = match_forward(tokens, cursor, '(', ')');
    if (params_close >= tokens.size()) return std::nullopt;
    int nest = 0;
    for (std::size_t i = cursor + 1; i < params_close; ++i) {
      const Token& t = tokens[i];
      if (t.kind == TokenKind::kPunct && t.text.size() == 1) {
        const char c = t.text[0];
        if (c == '(' || c == '[' || c == '{') ++nest;
        if (c == ')' || c == ']' || c == '}') --nest;
      }
      // A parameter name is the identifier right before a top-level comma
      // or the closing paren.
      if (t.kind == TokenKind::kIdentifier && nest == 0) {
        const bool at_end = i + 1 == params_close;
        const bool before_comma =
            i + 1 < params_close && is_punct(tokens[i + 1], ",");
        if (at_end || before_comma) region.params.insert(t.text);
      }
    }
    cursor = params_close + 1;
  }
  while (cursor < tokens.size() && !is_punct(tokens[cursor], "{")) {
    // mutable / noexcept / -> trailing return type
    if (is_punct(tokens[cursor], ";") || is_punct(tokens[cursor], ")")) {
      return std::nullopt;
    }
    ++cursor;
  }
  if (cursor >= tokens.size()) return std::nullopt;
  region.body_begin = cursor;
  region.body_end = match_forward(tokens, cursor, '{', '}');
  if (region.body_end >= tokens.size()) return std::nullopt;
  return region;
}

bool lock_guard_before(const std::vector<Token>& tokens, std::size_t begin,
                       std::size_t pos) {
  for (std::size_t i = begin; i < pos; ++i) {
    if (tokens[i].kind == TokenKind::kIdentifier &&
        (tokens[i].text == "lock_guard" || tokens[i].text == "scoped_lock" ||
         tokens[i].text == "unique_lock")) {
      return true;
    }
  }
  return false;
}

void check_write(const Rule& rule, const std::string& path,
                 const std::vector<Token>& tokens, const LambdaRegion& lambda,
                 const std::set<std::string>& locals,
                 const std::set<std::string>& atomics,
                 const LvaluePath& lvalue, std::size_t op_index,
                 const char* what, std::vector<Finding>& findings) {
  const CaptureInfo& cap = lambda.captures;
  const std::string& base = lvalue.base;
  if (base == "auto") return;  // structured binding declaration, not a write
  if (locals.count(base) != 0 || lambda.params.count(base) != 0) return;
  if (atomics.count(base) != 0) return;
  if (cap.by_value.count(base) != 0) return;  // explicit copy capture
  const bool by_ref =
      cap.by_ref.count(base) != 0 || cap.default_ref || cap.captures_this;
  if (!by_ref) return;  // by-value capture: a write cannot escape the chunk
  for (const std::string& idx : lvalue.index_idents) {
    if (locals.count(idx) != 0 || lambda.params.count(idx) != 0) return;
  }
  if (lock_guard_before(tokens, lambda.body_begin, op_index)) return;
  findings.push_back(
      Finding{rule.name, path, tokens[op_index].line,
              rule.message + " (" + what + " '" + base +
                  "' is shared across chunks; index it by the chunk "
                  "variable, make it atomic, or guard it with a lock)"});
}

}  // namespace

void apply_race_surface(const Rule& rule, const std::string& path,
                        const std::vector<Token>& tokens,
                        std::vector<Finding>& all_findings) {
  std::vector<Finding> findings;
  const std::set<std::string> atomics = collect_atomics(tokens);
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (!(is_ident(tokens[i], "parallel_for") ||
          is_ident(tokens[i], "submit")) ||
        !is_punct(tokens[i + 1], "(")) {
      continue;
    }
    const std::size_t call_open = i + 1;
    const std::size_t call_close = match_forward(tokens, call_open, '(', ')');
    if (call_close >= tokens.size()) continue;
    const auto lambda = parse_lambda(tokens, call_open, call_close);
    if (!lambda) continue;
    const std::set<std::string> locals =
        collect_locals(tokens, lambda->body_begin + 1, lambda->body_end);

    for (std::size_t k = lambda->body_begin + 1; k < lambda->body_end; ++k) {
      const Token& t = tokens[k];
      if (is_assign_op(t) && k > lambda->body_begin + 1) {
        const auto lvalue = walk_lvalue_backward(tokens, k - 1);
        if (lvalue) {
          check_write(rule, path, tokens, *lambda, locals, atomics, *lvalue,
                      k, "write target", findings);
        }
      } else if (is_punct(t, "++") || is_punct(t, "--")) {
        std::optional<LvaluePath> lvalue;
        if (k + 1 < lambda->body_end &&
            tokens[k + 1].kind == TokenKind::kIdentifier) {
          // Prefix form: consume the lvalue path forward (ident, member
          // accesses, subscripts), then classify it via the backward walk
          // from its last token so subscript identifiers are collected.
          std::size_t j = k + 1;
          while (j < lambda->body_end) {
            if (tokens[j].kind == TokenKind::kIdentifier) {
              ++j;
            } else if (is_punct(tokens[j], ".") ||
                       is_punct(tokens[j], "->") ||
                       is_punct(tokens[j], "::")) {
              ++j;
            } else if (is_punct(tokens[j], "[")) {
              j = match_forward(tokens, j, '[', ']') + 1;
            } else {
              break;
            }
          }
          lvalue = walk_lvalue_backward(tokens, j - 1);
        } else if (k > lambda->body_begin + 1) {
          lvalue = walk_lvalue_backward(tokens, k - 1);
        }
        if (lvalue) {
          check_write(rule, path, tokens, *lambda, locals, atomics, *lvalue,
                      k, "increment target", findings);
        }
      } else if (t.kind == TokenKind::kIdentifier &&
                 mutating_methods().count(t.text) != 0 &&
                 k > lambda->body_begin + 1 && k + 1 < lambda->body_end &&
                 (is_punct(tokens[k - 1], ".") ||
                  is_punct(tokens[k - 1], "->")) &&
                 is_punct(tokens[k + 1], "(")) {
        const auto lvalue = walk_lvalue_backward(tokens, k - 2);
        if (lvalue) {
          check_write(rule, path, tokens, *lambda, locals, atomics, *lvalue,
                      k, "mutated receiver", findings);
        }
      }
    }
  }
  // One finding per line keeps the reports stable when a line holds
  // several writes to the same shared variable.
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.message) < std::tie(b.line, b.message);
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.line == b.line;
                             }),
                 findings.end());
  all_findings.insert(all_findings.end(),
                      std::make_move_iterator(findings.begin()),
                      std::make_move_iterator(findings.end()));
}

// ---- accumulation-order --------------------------------------------------

namespace {

struct LoopRegion {
  std::string induction;       // empty for while / induction-free headers
  std::size_t body_begin = 0;  // first token inside the body
  std::size_t body_end = 0;    // one past the last token inside the body
};

std::vector<LoopRegion> collect_loops(const std::vector<Token>& tokens) {
  std::vector<LoopRegion> loops;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (!(is_ident(tokens[i], "for") || is_ident(tokens[i], "while")) ||
        !is_punct(tokens[i + 1], "(")) {
      continue;
    }
    const std::size_t header_open = i + 1;
    const std::size_t header_close =
        match_forward(tokens, header_open, '(', ')');
    if (header_close >= tokens.size()) continue;

    LoopRegion loop;
    if (is_ident(tokens[i], "for")) {
      for (std::size_t k = header_open + 1; k + 1 < header_close; ++k) {
        if (tokens[k].kind == TokenKind::kIdentifier &&
            (is_punct(tokens[k + 1], "=") || is_punct(tokens[k + 1], ":"))) {
          loop.induction = tokens[k].text;
          break;
        }
      }
    }
    std::size_t body = header_close + 1;
    if (body >= tokens.size()) continue;
    if (is_punct(tokens[body], "{")) {
      const std::size_t close = match_forward(tokens, body, '{', '}');
      if (close >= tokens.size()) continue;
      loop.body_begin = body + 1;
      loop.body_end = close;
    } else {
      std::size_t k = body;
      while (k < tokens.size() && !is_punct(tokens[k], ";")) ++k;
      loop.body_begin = body;
      loop.body_end = k + 1 < tokens.size() ? k + 1 : tokens.size();
    }
    loops.push_back(std::move(loop));
  }
  return loops;
}

/// Declaration token indices of `double name = 0;`-style zero-initialized
/// scalars, keyed by name.
std::map<std::string, std::vector<std::size_t>> collect_zero_doubles(
    const std::vector<Token>& tokens) {
  std::map<std::string, std::vector<std::size_t>> decls;
  for (std::size_t i = 0; i + 3 < tokens.size(); ++i) {
    if (!is_ident(tokens[i], "double")) continue;
    if (tokens[i + 1].kind != TokenKind::kIdentifier) continue;
    if (!is_punct(tokens[i + 2], "=")) continue;
    if (tokens[i + 3].kind != TokenKind::kNumber) continue;
    if (std::strtod(tokens[i + 3].text.c_str(), nullptr) != 0.0) continue;
    if (i + 4 < tokens.size() && !is_punct(tokens[i + 4], ";") &&
        !is_punct(tokens[i + 4], ",")) {
      continue;
    }
    decls[tokens[i + 1].text].push_back(i);
  }
  return decls;
}

}  // namespace

void apply_accumulation_order(const Rule& rule, const std::string& path,
                              const std::vector<Token>& tokens,
                              std::vector<Finding>& findings) {
  const auto zero_doubles = collect_zero_doubles(tokens);
  if (zero_doubles.empty()) return;
  const auto loops = collect_loops(tokens);
  if (loops.empty()) return;

  for (std::size_t op = 1; op + 1 < tokens.size(); ++op) {
    const Token& t = tokens[op];
    if (!(is_punct(t, "+=") || is_punct(t, "-="))) continue;

    // Bare-identifier target only: member/element updates (x.f +=,
    // a[i] +=) are not scalar reductions.
    const Token& lhs = tokens[op - 1];
    if (lhs.kind != TokenKind::kIdentifier) continue;
    if (op >= 2 && (is_punct(tokens[op - 2], ".") ||
                    is_punct(tokens[op - 2], "->") ||
                    is_punct(tokens[op - 2], "::"))) {
      continue;
    }
    const auto decl_it = zero_doubles.find(lhs.text);
    if (decl_it == zero_doubles.end()) continue;

    // Innermost loop containing the statement.
    const LoopRegion* innermost = nullptr;
    for (const LoopRegion& loop : loops) {
      if (loop.body_begin <= op && op < loop.body_end) {
        if (innermost == nullptr ||
            loop.body_begin >= innermost->body_begin) {
          innermost = &loop;
        }
      }
    }
    if (innermost == nullptr || innermost->induction.empty()) continue;

    // Declared fresh inside this loop body → per-iteration scalar, not a
    // loop-carried accumulator.
    bool declared_inside = false;
    for (const std::size_t d : decl_it->second) {
      if (innermost->body_begin <= d && d < op) declared_inside = true;
    }
    if (declared_inside) continue;

    // Statement extent: operator to the terminating semicolon.
    std::size_t stmt_end = op + 1;
    while (stmt_end < tokens.size() && !is_punct(tokens[stmt_end], ";")) {
      ++stmt_end;
    }

    // The element term must read the loop variable inline; folds over
    // hoisted locals are the blessed shape for branching losses.
    bool reads_induction = false;
    bool routed_through_kernels = false;
    for (std::size_t k = op + 1; k < stmt_end; ++k) {
      if (tokens[k].kind != TokenKind::kIdentifier) continue;
      if (tokens[k].text == innermost->induction) reads_induction = true;
      if ((tokens[k].text == "linalg" || tokens[k].text == "kernels") &&
          k + 1 < stmt_end && is_punct(tokens[k + 1], "::")) {
        routed_through_kernels = true;
      }
    }
    if (!reads_induction || routed_through_kernels) continue;

    // Scan exemption: a target re-read elsewhere in the loop body is a
    // recurrence (prefix scan, damped update) whose order is the
    // algorithm, not a reassociable fold.
    bool re_read = false;
    for (std::size_t k = innermost->body_begin; k < innermost->body_end;
         ++k) {
      if (k + 1 == op || (k >= op && k < stmt_end)) continue;
      if (tokens[k].kind == TokenKind::kIdentifier &&
          tokens[k].text == lhs.text) {
        re_read = true;
        break;
      }
    }
    if (re_read) continue;

    findings.push_back(Finding{
        rule.name, path, t.line,
        rule.message + " (loop-carried fold into '" + lhs.text + "')"});
  }
}

// ---- layering ------------------------------------------------------------

void apply_layering(const Rule& rule, const std::string& path,
                    std::string_view scrubbed, const LayerGraph& layers,
                    std::vector<Finding>& findings) {
  const std::string from = module_of(path);
  if (!layers.has_module(from)) {
    findings.push_back(Finding{
        rule.name, path, 1,
        "module \"" + from +
            "\" is not declared in the layering DAG (tools/lint_layers.json)"});
    return;
  }
  for (const Include& inc : parse_includes(scrubbed)) {
    if (inc.angle) continue;  // system headers are outside the DAG
    const std::string to = module_of_target(inc.target, from);
    if (to == from) continue;
    if (!layers.has_module(to)) {
      findings.push_back(Finding{
          rule.name, path, inc.line,
          "include of \"" + inc.target + "\" reaches module \"" + to +
              "\" which is not declared in the layering DAG"});
      continue;
    }
    if (!layers.allows(from, to)) {
      findings.push_back(Finding{
          rule.name, path, inc.line,
          rule.message + " (edge " + from + " -> " + to + " via \"" +
              inc.target + "\" is not in the layering DAG)"});
    }
  }
}

}  // namespace plos::lint
