#include "lint/lexer.hpp"

#include <array>
#include <cctype>
#include <cstddef>
#include <regex>

namespace plos::lint {

namespace {

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// True when the current line up to `quote_pos` is exactly an #include
// directive, i.e. the quoted token that follows is an include path. Those
// must survive scrubbing: the include-graph and include-order rules read
// their targets.
bool include_directive_before(std::string_view source, std::size_t quote_pos) {
  std::size_t line_start =
      quote_pos == 0 ? std::string_view::npos
                     : source.rfind('\n', quote_pos - 1);
  line_start = line_start == std::string_view::npos ? 0 : line_start + 1;
  static const std::regex re(R"(^\s*#\s*include\s*$)", std::regex::optimize);
  const std::string prefix(source.substr(line_start, quote_pos - line_start));
  return std::regex_match(prefix, re);
}

// Is the quote at position i the opening of a raw string literal? The R
// must directly precede it and must itself start an identifier there: a
// lone R, or an encoding prefix (u8R, uR, UR, LR). `FOUR "x"` is not raw.
bool raw_string_opener(char prev_code, char prev_code2) {
  if (prev_code != 'R') return false;
  return !is_word(prev_code2) || prev_code2 == 'u' || prev_code2 == 'U' ||
         prev_code2 == 'L' || prev_code2 == '8';
}

}  // namespace

std::string strip_comments_and_strings(std::string_view source) {
  std::string out(source);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;   // for R"delim( ... )delim"
  char prev_code = '\0';   // last code character kept (raw/digit-sep tests)
  char prev_code2 = '\0';  // the one before it

  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          if (raw_string_opener(prev_code, prev_code2)) {
            std::size_t j = i + 1;
            raw_delim.clear();
            while (j < source.size() && source[j] != '(') {
              raw_delim += source[j];
              ++j;
            }
            // Keep R"delim( (and the )delim" closer below) so the blanked
            // text re-parses as the same raw literal: scrubbing must be
            // idempotent, and blanking the '(' would send a second pass
            // hunting for a delimiter across the rest of the file.
            i = j;
            state = State::kRaw;
            raw_delim = ")" + raw_delim + "\"";
          } else if (include_directive_before(source, i)) {
            // #include "path": keep the path readable for include rules.
            const std::size_t close = source.find('"', i + 1);
            i = close == std::string_view::npos ? source.size() : close;
            prev_code2 = prev_code;
            prev_code = '"';
          } else {
            state = State::kString;
          }
        } else if (c == '\'' && !is_word(prev_code)) {
          // Apostrophe after a word character is a digit separator
          // (1'000'000), not a char literal.
          state = State::kChar;
        } else {
          if (!std::isspace(static_cast<unsigned char>(c))) {
            prev_code2 = prev_code;
            prev_code = c;
          }
        }
        break;
      case State::kLineComment:
        if (c == '\\' && next == '\n') {
          // Line splice: the comment logically continues on the next line.
          out[i] = ' ';
          ++i;
        } else if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          prev_code2 = prev_code;
          prev_code = '"';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          prev_code2 = prev_code;
          prev_code = '\'';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRaw:
        if (source.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
          prev_code2 = prev_code;
          prev_code = '"';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

namespace {

// Multi-character punctuators, longest first within each length class.
// Max-munch over this table mirrors the real lexer closely enough for the
// semantic rules (no <=> to keep the table C++17-friendly in spirit; the
// tree doesn't use it).
constexpr std::array<std::string_view, 4> kPunct3 = {"<<=", ">>=", "->*",
                                                     "..."};
constexpr std::array<std::string_view, 19> kPunct2 = {
    "::", "->", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=", "==", "!=", "<=", ">=", "&&", "||", "<<"};
// ">>" is intentionally absent: lexing it as two ">" tokens keeps template
// argument lists (std::vector<std::vector<double>>) bracket-balanced for
// the backward walks the semantic rules do.

bool starts_number(std::string_view s, std::size_t i) {
  const char c = s[i];
  if (std::isdigit(static_cast<unsigned char>(c)) != 0) return true;
  return c == '.' && i + 1 < s.size() &&
         std::isdigit(static_cast<unsigned char>(s[i + 1])) != 0;
}

}  // namespace

std::vector<Token> tokenize(std::string_view scrubbed) {
  std::vector<Token> tokens;
  int line = 1;
  int brace = 0;
  int paren = 0;
  std::size_t i = 0;
  const std::size_t n = scrubbed.size();
  while (i < n) {
    const char c = scrubbed[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    Token token;
    token.line = line;
    if (is_word(c) && !starts_number(scrubbed, i)) {
      std::size_t j = i;
      while (j < n && is_word(scrubbed[j])) ++j;
      token.kind = TokenKind::kIdentifier;
      token.text = std::string(scrubbed.substr(i, j - i));
      i = j;
    } else if (starts_number(scrubbed, i)) {
      // pp-number: letters, digits, dots, digit separators, and exponent
      // signs after e/E/p/P all glue onto the token.
      std::size_t j = i;
      while (j < n) {
        const char d = scrubbed[j];
        if (is_word(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') && j > i &&
                   (scrubbed[j - 1] == 'e' || scrubbed[j - 1] == 'E' ||
                    scrubbed[j - 1] == 'p' || scrubbed[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      token.kind = TokenKind::kNumber;
      token.text = std::string(scrubbed.substr(i, j - i));
      i = j;
    } else if (c == '"') {
      // Scrubbed literal: contents are blanks (or an include path); the
      // closing quote is the next quote, escapes were already blanked.
      const std::size_t close = scrubbed.find('"', i + 1);
      const std::size_t end = close == std::string_view::npos ? n : close + 1;
      token.kind = TokenKind::kString;
      token.text = std::string(scrubbed.substr(i + 1, end - i - 2));
      for (std::size_t k = i; k < end; ++k) {
        if (scrubbed[k] == '\n') ++line;
      }
      i = end;
    } else if (c == '\'') {
      const std::size_t close = scrubbed.find('\'', i + 1);
      const std::size_t end = close == std::string_view::npos ? n : close + 1;
      token.kind = TokenKind::kChar;
      token.text = std::string(scrubbed.substr(i + 1, end - i - 2));
      i = end;
    } else {
      token.kind = TokenKind::kPunct;
      std::string_view rest = scrubbed.substr(i);
      for (std::string_view p : kPunct3) {
        if (rest.rfind(p, 0) == 0) token.text = std::string(p);
      }
      if (token.text.empty()) {
        for (std::string_view p : kPunct2) {
          if (rest.rfind(p, 0) == 0) token.text = std::string(p);
        }
      }
      if (token.text.empty()) token.text = std::string(1, c);
      i += token.text.size();
      // Depth bookkeeping: closers report the depth *outside* the bracket,
      // same as their opener, so matched pairs carry equal depths.
      if (c == '{') {
        token.brace_depth = brace++;
        token.paren_depth = paren;
        tokens.push_back(std::move(token));
        continue;
      }
      if (c == '}') {
        brace = brace > 0 ? brace - 1 : 0;
        token.brace_depth = brace;
        token.paren_depth = paren;
        tokens.push_back(std::move(token));
        continue;
      }
      if (c == '(' || c == '[') {
        token.brace_depth = brace;
        token.paren_depth = paren++;
        tokens.push_back(std::move(token));
        continue;
      }
      if (c == ')' || c == ']') {
        paren = paren > 0 ? paren - 1 : 0;
        token.brace_depth = brace;
        token.paren_depth = paren;
        tokens.push_back(std::move(token));
        continue;
      }
    }
    token.brace_depth = brace;
    token.paren_depth = paren;
    tokens.push_back(std::move(token));
  }
  return tokens;
}

}  // namespace plos::lint
