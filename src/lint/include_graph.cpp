#include "lint/include_graph.hpp"

#include <algorithm>
#include <filesystem>
#include <regex>

#include "lint/lexer.hpp"
#include "obs/json.hpp"

namespace plos::lint {

namespace {

namespace json = plos::obs::json;

bool has_prefix(const std::string& path, const std::string& prefix) {
  return path.rfind(prefix, 0) == 0;
}

}  // namespace

std::vector<Include> parse_includes(std::string_view scrubbed) {
  static const std::regex include_re(
      R"(^\s*#\s*include\s*([<"])([^>"]+)([>"]))", std::regex::optimize);
  std::vector<Include> includes;
  int line = 1;
  std::size_t start = 0;
  while (start <= scrubbed.size()) {
    std::size_t end = scrubbed.find('\n', start);
    if (end == std::string_view::npos) end = scrubbed.size();
    const std::string_view text = scrubbed.substr(start, end - start);
    std::match_results<std::string_view::const_iterator> m;
    if (std::regex_search(text.begin(), text.end(), m, include_re)) {
      includes.push_back(Include{line, m[1].str() == "<", m[2].str()});
    }
    if (end == scrubbed.size()) break;
    start = end + 1;
    ++line;
  }
  return includes;
}

const std::string* resolve_include(const IncludeFileSet& project,
                                   const std::string& from,
                                   const std::string& target,
                                   std::string* resolved) {
  const std::string from_dir =
      std::filesystem::path(from).parent_path().generic_string();
  for (const std::string& candidate :
       {std::string("src/") + target,
        from_dir.empty() ? target : from_dir + "/" + target, target}) {
    auto it = project.find(candidate);
    if (it != project.end()) {
      *resolved = candidate;
      return &it->second;
    }
  }
  return nullptr;
}

bool include_reaches(const IncludeFileSet& project, const std::string& from,
                     const std::string& target, const std::string& forbidden,
                     std::set<std::string>& visited) {
  if (has_prefix(target, forbidden)) return true;
  std::string resolved;
  const std::string* contents =
      resolve_include(project, from, target, &resolved);
  if (contents == nullptr || !visited.insert(resolved).second) return false;
  const std::string code = strip_comments_and_strings(*contents);
  for (const Include& inc : parse_includes(code)) {
    if (inc.angle) continue;  // system headers never re-enter the project
    if (include_reaches(project, resolved, inc.target, forbidden, visited)) {
      return true;
    }
  }
  return false;
}

bool LayerGraph::allows(const std::string& from, const std::string& to) const {
  if (from == to) return true;
  const auto it = allowed.find(from);
  if (it == allowed.end()) return false;
  for (const std::string& entry : it->second) {
    if (entry == "*" || entry == to) return true;
  }
  return false;
}

namespace {

// Depth-first cycle check over the declared edges ("*" entries are top
// layer and contribute no edges worth chasing — nothing declares an edge
// back into them, and if something did, that explicit edge is walked).
bool has_cycle(const LayerGraph& graph, const std::string& node,
               std::map<std::string, int>& color, std::string* cycle_node) {
  color[node] = 1;  // in progress
  const auto it = graph.allowed.find(node);
  if (it != graph.allowed.end()) {
    for (const std::string& next : it->second) {
      if (next == "*") continue;
      const int c = color.count(next) != 0 ? color[next] : 0;
      if (c == 1) {
        *cycle_node = next;
        return true;
      }
      if (c == 0 && has_cycle(graph, next, color, cycle_node)) return true;
    }
  }
  color[node] = 2;  // done
  return false;
}

}  // namespace

std::optional<LayerGraph> parse_layers(std::string_view json_text,
                                       std::string* error) {
  std::string parse_error;
  const auto doc = json::parse(json_text, &parse_error);
  if (!doc || !doc->is_object()) {
    if (error != nullptr) {
      *error = "lint_layers.json: " +
               (parse_error.empty() ? "not a JSON object" : parse_error);
    }
    return std::nullopt;
  }
  const json::Value* modules = doc->find("modules");
  if (modules == nullptr || !modules->is_object()) {
    if (error != nullptr) {
      *error = "lint_layers.json: missing \"modules\" object";
    }
    return std::nullopt;
  }

  LayerGraph graph;
  for (const auto& [name, deps] : modules->as_object()) {
    if (!deps.is_array()) {
      if (error != nullptr) {
        *error = "lint_layers.json: module \"" + name + "\" is not an array";
      }
      return std::nullopt;
    }
    std::vector<std::string> allow;
    for (const json::Value& v : deps.as_array()) {
      if (v.is_string()) allow.push_back(v.as_string());
    }
    graph.allowed[name] = std::move(allow);
  }

  // Every named dependency must itself be a declared module.
  for (const auto& [name, deps] : graph.allowed) {
    for (const std::string& dep : deps) {
      if (dep != "*" && !graph.has_module(dep)) {
        if (error != nullptr) {
          *error = "lint_layers.json: module \"" + name +
                   "\" allows unknown module \"" + dep + "\"";
        }
        return std::nullopt;
      }
    }
  }

  // The declared graph must be a DAG — a cycle would make "layering" a
  // fiction and the findings order-dependent.
  std::map<std::string, int> color;
  for (const auto& [name, deps] : graph.allowed) {
    std::string cycle_node;
    if ((color.count(name) == 0 || color[name] == 0) &&
        has_cycle(graph, name, color, &cycle_node)) {
      if (error != nullptr) {
        *error = "lint_layers.json: cycle through module \"" + cycle_node +
                 "\" — the layering must be a DAG";
      }
      return std::nullopt;
    }
  }
  return graph;
}

std::string module_of(const std::string& path) {
  const std::size_t slash = path.find('/');
  if (slash == std::string::npos) return path;
  const std::string root = path.substr(0, slash);
  if (root != "src") return root;
  const std::size_t second = path.find('/', slash + 1);
  if (second == std::string::npos) return "src";
  return path.substr(slash + 1, second - slash - 1);
}

std::string module_of_target(const std::string& target,
                             const std::string& from_module) {
  const std::size_t slash = target.find('/');
  if (slash == std::string::npos) return from_module;
  return target.substr(0, slash);
}

}  // namespace plos::lint
