// plos_lint: determinism-invariant static analyzer (DESIGN.md §11, §16).
//
// The determinism contract (§8: bitwise-identical models, journals, and
// byte ledgers at any thread count) and the federated privacy boundary
// (raw rows never cross the network layer) are enforced dynamically by the
// equivalence suites and golden manifests. This analyzer enforces them
// statically: a deterministic C++ token stream (lexer.hpp), a whole-tree
// include graph with a declarative layering DAG (include_graph.hpp), and
// token-level semantic rule families (rules_semantic.hpp) on top of the
// original line/regex catalog — no libclang — that reject nondeterminism,
// contract-free numeric code, and undeclared module edges before they run.
//
// The rule *catalog* is built in (each RuleKind below is a matching
// strategy); the checked-in `tools/lint_rules.json` instantiates it:
// which rules run, over which path prefixes, with which banned patterns
// and exemptions. The layering DAG lives in `tools/lint_layers.json`.
// Every in-source exception uses the visible suppression syntax
//
//     // plos-lint: allow(rule-name[, rule-name...])    same or next line
//     // plos-lint: allow-file(rule-name)               whole file
//
// so exceptions show up in diffs and code review.
//
// The engine works on in-memory file sets so tests drive it hermetically;
// the CLI walks the real tree. All scanning, ordering, and reporting is
// deterministic (sorted paths, config-ordered rules, sorted findings) —
// including the threaded scan, which merges per-file results in path
// order and is byte-identical at any thread count.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lint/include_graph.hpp"
#include "lint/lexer.hpp"

namespace plos::lint {

/// One rule violation at a source location.
struct Finding {
  std::string rule;
  std::string file;  ///< repo-relative path
  int line = 0;      ///< 1-based
  std::string message;
};

/// Matching strategy a rule uses.
enum class RuleKind {
  kBannedPattern,         ///< any regex in `patterns` hit in scrubbed code
  kFloatEq,               ///< == / != against a nonzero floating literal
  kPragmaOnce,            ///< headers must contain #pragma once
  kIncludeOrder,          ///< own-header first; angle block before quoted
  kUsingNamespaceHeader,  ///< `using namespace` in a header
  kForbiddenInclude,      ///< (transitive) include of a banned header prefix
  kRaceSurface,           ///< unsynchronized shared write in a pool lambda
  kAccumulationOrder,     ///< loop-carried double fold outside linalg::kernels
  kLayering,              ///< include edge not declared in the layering DAG
};

struct Rule {
  std::string name;
  RuleKind kind = RuleKind::kBannedPattern;
  std::string message;
  bool enabled = true;
  std::vector<std::string> patterns;     ///< kBannedPattern: ECMAScript regexes
  std::vector<std::string> paths;        ///< apply only under these prefixes (empty = everywhere)
  std::vector<std::string> allow_paths;  ///< exempt these prefixes
  std::string forbidden;                 ///< kForbiddenInclude: include-path prefix
  bool transitive = false;               ///< kForbiddenInclude: follow project includes
};

struct Config {
  std::vector<std::string> roots;       ///< directories to scan, repo-relative
  std::vector<std::string> extensions;  ///< file suffixes to scan
  std::vector<Rule> rules;
  LayerGraph layers;          ///< layering DAG (tools/lint_layers.json)
  bool layers_loaded = false; ///< kLayering rules are skipped until loaded
};

/// Parses `tools/lint_rules.json` text. Returns nullopt (and sets `error`
/// when non-null) on malformed JSON or an unknown rule kind.
std::optional<Config> parse_config(std::string_view json_text,
                                   std::string* error = nullptr);

/// Repo-relative path → file contents. Ordered so iteration (and therefore
/// finding order) is deterministic.
using FileSet = std::map<std::string, std::string>;

// strip_comments_and_strings / tokenize live in lint/lexer.hpp (included
// above) — the scrubber is the lexer's first stage.

/// Lints one file. `project` (optional) supplies the rest of the tree for
/// include-graph rules. Suppressions already applied; sorted by line.
std::vector<Finding> lint_source(const Config& config, const std::string& path,
                                 std::string_view source,
                                 const FileSet* project = nullptr);

/// Lints every file in the set; findings sorted by (file, line, rule).
/// `threads` > 1 scans files on a parallel::ThreadPool; results are merged
/// in path order, so the output is byte-identical at any thread count.
std::vector<Finding> lint_files(const Config& config, const FileSet& files,
                                int threads = 1);

/// Reads every file matching config.extensions under config.roots (relative
/// to `root_dir`) from disk. Returns nullopt + `error` if a root is missing.
std::optional<FileSet> collect_tree(const std::string& root_dir,
                                    const Config& config, std::string* error);

/// "file:line: error: [rule] message" lines, one per finding.
std::string format_findings(const std::vector<Finding>& findings);

/// SARIF 2.1.0 log (one run, enabled rules in the driver catalog, one
/// result per finding). Deterministic byte-for-byte for a given config and
/// finding list.
std::string format_sarif(const Config& config,
                         const std::vector<Finding>& findings);

/// Mechanical fixer for the include-order and pragma-once rules. Produces
/// a fixed copy of `source` (idempotent: fixing a fixed file is a no-op).
/// Refuses to touch files carrying any `plos-lint:` suppression marker,
/// and leaves the include region alone when it holds anything besides
/// includes and blank lines (a comment inside the block, say).
struct FixOutcome {
  bool changed = false;
  bool refused = false;  ///< suppression marker present, file untouched
  std::string text;      ///< fixed contents (valid when changed)
};
FixOutcome fix_mechanical(const Config& config, const std::string& path,
                          std::string_view source);

/// Runs the engine against the embedded good/bad fixture snippets: every
/// bad fixture must produce its expected rule (reported with rule name and
/// file:line), every good fixture must lint clean.
struct SelfTestResult {
  bool ok = false;
  std::string report;
};
SelfTestResult self_test(const Config& config);

/// CLI driver (the `plos_lint` binary is a thin wrapper so tests can cover
/// argument parsing and exit codes in-process). Appends human-readable
/// output to `out` (or a SARIF log under --format sarif). Exit codes: 0
/// clean / self-test passed, 1 findings or self-test failure, 2 usage or
/// configuration error.
int run_cli(const std::vector<std::string>& args, std::string& out);

}  // namespace plos::lint
