// plos_lint: determinism-invariant static analyzer (DESIGN.md §11).
//
// The determinism contract (§8: bitwise-identical models, journals, and
// byte ledgers at any thread count) and the federated privacy boundary
// (raw rows never cross the network layer) are enforced dynamically by the
// equivalence suites and golden manifests. This analyzer enforces them
// statically: a token/regex scanner plus a lightweight project include
// graph — no libclang — that rejects nondeterminism and contract-free
// numeric code before it runs.
//
// The rule *catalog* is built in (each RuleKind below is a matching
// strategy); the checked-in `tools/lint_rules.json` instantiates it:
// which rules run, over which path prefixes, with which banned patterns
// and exemptions. Every in-source exception uses the visible suppression
// syntax
//
//     // plos-lint: allow(rule-name[, rule-name...])    same or next line
//     // plos-lint: allow-file(rule-name)               whole file
//
// so exceptions show up in diffs and code review.
//
// The engine works on in-memory file sets so tests drive it hermetically;
// the CLI walks the real tree. All scanning, ordering, and reporting is
// deterministic (sorted paths, config-ordered rules, sorted findings).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace plos::lint {

/// One rule violation at a source location.
struct Finding {
  std::string rule;
  std::string file;  ///< repo-relative path
  int line = 0;      ///< 1-based
  std::string message;
};

/// Matching strategy a rule uses.
enum class RuleKind {
  kBannedPattern,         ///< any regex in `patterns` hit in scrubbed code
  kFloatEq,               ///< == / != against a nonzero floating literal
  kPragmaOnce,            ///< headers must contain #pragma once
  kIncludeOrder,          ///< own-header first; angle block before quoted
  kUsingNamespaceHeader,  ///< `using namespace` in a header
  kForbiddenInclude,      ///< (transitive) include of a banned header prefix
};

struct Rule {
  std::string name;
  RuleKind kind = RuleKind::kBannedPattern;
  std::string message;
  bool enabled = true;
  std::vector<std::string> patterns;     ///< kBannedPattern: ECMAScript regexes
  std::vector<std::string> paths;        ///< apply only under these prefixes (empty = everywhere)
  std::vector<std::string> allow_paths;  ///< exempt these prefixes
  std::string forbidden;                 ///< kForbiddenInclude: include-path prefix
  bool transitive = false;               ///< kForbiddenInclude: follow project includes
};

struct Config {
  std::vector<std::string> roots;       ///< directories to scan, repo-relative
  std::vector<std::string> extensions;  ///< file suffixes to scan
  std::vector<Rule> rules;
};

/// Parses `tools/lint_rules.json` text. Returns nullopt (and sets `error`
/// when non-null) on malformed JSON or an unknown rule kind.
std::optional<Config> parse_config(std::string_view json_text,
                                   std::string* error = nullptr);

/// Repo-relative path → file contents. Ordered so iteration (and therefore
/// finding order) is deterministic.
using FileSet = std::map<std::string, std::string>;

/// Blanks comments and string/char-literal contents (raw strings included)
/// while preserving line structure, so pattern rules never fire on prose
/// or quoted text. Quoted #include targets are kept readable — the include
/// rules parse them out of the scrubbed text. Exposed for tests.
std::string strip_comments_and_strings(std::string_view source);

/// Lints one file. `project` (optional) supplies the rest of the tree for
/// include-graph rules. Suppressions already applied; sorted by line.
std::vector<Finding> lint_source(const Config& config, const std::string& path,
                                 std::string_view source,
                                 const FileSet* project = nullptr);

/// Lints every file in the set; findings sorted by (file, line, rule).
std::vector<Finding> lint_files(const Config& config, const FileSet& files);

/// Reads every file matching config.extensions under config.roots (relative
/// to `root_dir`) from disk. Returns nullopt + `error` if a root is missing.
std::optional<FileSet> collect_tree(const std::string& root_dir,
                                    const Config& config, std::string* error);

/// "file:line: error: [rule] message" lines, one per finding.
std::string format_findings(const std::vector<Finding>& findings);

/// Runs the engine against the embedded good/bad fixture snippets: every
/// bad fixture must produce its expected rule (reported with rule name and
/// file:line), every good fixture must lint clean.
struct SelfTestResult {
  bool ok = false;
  std::string report;
};
SelfTestResult self_test(const Config& config);

/// CLI driver (the `plos_lint` binary is a thin wrapper so tests can cover
/// argument parsing and exit codes in-process). Appends human-readable
/// output to `out`. Exit codes: 0 clean / self-test passed, 1 findings or
/// self-test failure, 2 usage or configuration error.
int run_cli(const std::vector<std::string>& args, std::string& out);

}  // namespace plos::lint
