#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

#include "common/assert.hpp"
#include "obs/json.hpp"

namespace plos::lint {

namespace {

namespace json = plos::obs::json;

// ---- source scrubbing ----------------------------------------------------

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// True when the current line up to `quote_pos` is exactly an #include
// directive, i.e. the quoted token that follows is an include path. Those
// must survive scrubbing: the include-graph and include-order rules read
// their targets.
bool include_directive_before(std::string_view source, std::size_t quote_pos) {
  std::size_t line_start =
      quote_pos == 0 ? std::string_view::npos
                     : source.rfind('\n', quote_pos - 1);
  line_start = line_start == std::string_view::npos ? 0 : line_start + 1;
  static const std::regex re(R"(^\s*#\s*include\s*$)", std::regex::optimize);
  const std::string prefix(source.substr(line_start, quote_pos - line_start));
  return std::regex_match(prefix, re);
}

}  // namespace

std::string strip_comments_and_strings(std::string_view source) {
  std::string out(source);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  char prev_code = '\0';  // last code character kept (digit-separator test)

  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          // Raw string? The opening R (or u8R etc.) directly precedes.
          if (prev_code == 'R') {
            std::size_t j = i + 1;
            raw_delim.clear();
            while (j < source.size() && source[j] != '(') {
              raw_delim += source[j];
              ++j;
            }
            state = State::kRaw;
            raw_delim = ")" + raw_delim + "\"";
          } else if (include_directive_before(source, i)) {
            // #include "path": keep the path readable for include rules.
            const std::size_t close = source.find('"', i + 1);
            i = close == std::string_view::npos ? source.size() : close;
            prev_code = '"';
          } else {
            state = State::kString;
          }
        } else if (c == '\'' && !is_word(prev_code)) {
          // Apostrophe after a word character is a digit separator
          // (1'000'000), not a char literal.
          state = State::kChar;
        } else {
          if (!std::isspace(static_cast<unsigned char>(c))) prev_code = c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          prev_code = '"';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          prev_code = '\'';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRaw:
        if (source.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
          prev_code = '"';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

namespace {

std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    if (end == text.size()) break;
    start = end + 1;
  }
  return lines;
}

// ---- suppressions --------------------------------------------------------

struct Suppressions {
  std::set<std::string> file_wide;                  // allow-file(rule)
  std::map<int, std::set<std::string>> per_line;    // allow(rule) on line N
};

void parse_allow_list(std::string_view text, std::set<std::string>& out) {
  std::string name;
  for (char c : text) {
    if (c == ',' || c == ')') {
      if (!name.empty()) out.insert(name);
      name.clear();
      if (c == ')') return;
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      name += c;
    }
  }
}

Suppressions parse_suppressions(const std::vector<std::string_view>& lines) {
  Suppressions sup;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    const std::size_t marker = line.find("plos-lint:");
    if (marker == std::string_view::npos) continue;
    std::string_view rest = line.substr(marker + 10);
    while (!rest.empty() &&
           std::isspace(static_cast<unsigned char>(rest.front()))) {
      rest.remove_prefix(1);
    }
    if (rest.rfind("allow-file(", 0) == 0) {
      parse_allow_list(rest.substr(11), sup.file_wide);
    } else if (rest.rfind("allow(", 0) == 0) {
      parse_allow_list(rest.substr(6), sup.per_line[static_cast<int>(i + 1)]);
    }
  }
  return sup;
}

bool suppressed(const Suppressions& sup, const std::string& rule, int line) {
  if (sup.file_wide.count(rule) != 0) return true;
  for (int l : {line, line - 1}) {
    auto it = sup.per_line.find(l);
    if (it != sup.per_line.end() && it->second.count(rule) != 0) return true;
  }
  return false;
}

// ---- path scoping --------------------------------------------------------

bool has_prefix(const std::string& path, const std::string& prefix) {
  return path.rfind(prefix, 0) == 0;
}

bool rule_applies(const Rule& rule, const std::string& path) {
  if (!rule.paths.empty() &&
      std::none_of(rule.paths.begin(), rule.paths.end(),
                   [&](const std::string& p) { return has_prefix(path, p); })) {
    return false;
  }
  return std::none_of(
      rule.allow_paths.begin(), rule.allow_paths.end(),
      [&](const std::string& p) { return has_prefix(path, p); });
}

bool is_header(const std::string& path) {
  return path.size() >= 4 && (path.rfind(".hpp") == path.size() - 4 ||
                              path.rfind(".h") == path.size() - 2);
}

// ---- rule engines --------------------------------------------------------

struct Include {
  int line = 0;
  bool angle = false;
  std::string target;  // path between the delimiters
};

std::vector<Include> parse_includes(
    const std::vector<std::string_view>& code_lines) {
  static const std::regex include_re(
      R"(^\s*#\s*include\s*([<"])([^>"]+)([>"]))", std::regex::optimize);
  std::vector<Include> includes;
  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    std::match_results<std::string_view::const_iterator> m;
    if (std::regex_search(code_lines[i].begin(), code_lines[i].end(), m,
                          include_re)) {
      includes.push_back(Include{static_cast<int>(i + 1), m[1].str() == "<",
                                 m[2].str()});
    }
  }
  return includes;
}

std::string stem_of(const std::string& path) {
  return std::filesystem::path(path).stem().string();
}

void apply_banned_patterns(const Rule& rule, const std::string& path,
                           const std::vector<std::string_view>& code_lines,
                           std::vector<Finding>& findings) {
  std::vector<std::regex> compiled;
  compiled.reserve(rule.patterns.size());
  for (const std::string& p : rule.patterns) {
    compiled.emplace_back(p, std::regex::optimize);
  }
  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    for (std::size_t r = 0; r < compiled.size(); ++r) {
      if (std::regex_search(code_lines[i].begin(), code_lines[i].end(),
                            compiled[r])) {
        findings.push_back(Finding{rule.name, path, static_cast<int>(i + 1),
                                   rule.message});
        break;  // one finding per line per rule
      }
    }
  }
}

void apply_float_eq(const Rule& rule, const std::string& path,
                    const std::vector<std::string_view>& code_lines,
                    std::vector<Finding>& findings) {
  // A floating literal: 1.5 / .5 / 1. / 1e-9 / 1.5e3, optional f/F suffix.
  static const char* kFloat =
      R"((\d+\.\d*([eE][-+]?\d+)?|\.\d+([eE][-+]?\d+)?|\d+[eE][-+]?\d+)[fFlL]?)";
  static const std::regex rhs_re(std::string(R"((==|!=)\s*[-+]?)") + kFloat,
                                 std::regex::optimize);
  static const std::regex lhs_re(std::string(kFloat) + R"(\s*(==|!=))",
                                 std::regex::optimize);
  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    const std::string line(code_lines[i]);
    bool flagged = false;
    for (const std::regex* re : {&rhs_re, &lhs_re}) {
      for (auto it = std::sregex_iterator(line.begin(), line.end(), *re);
           !flagged && it != std::sregex_iterator(); ++it) {
        const std::smatch& m = *it;
        // Exact comparison against zero (x == 0.0) is the explicit
        // "was this coordinate ever touched" idiom and stays legal.
        const std::string literal =
            m[1].str() == "==" || m[1].str() == "!=" ? m[2].str() : m[1].str();
        flagged = std::strtod(literal.c_str(), nullptr) != 0.0;
      }
      if (flagged) break;
    }
    if (flagged) {
      findings.push_back(
          Finding{rule.name, path, static_cast<int>(i + 1), rule.message});
    }
  }
}

void apply_pragma_once(const Rule& rule, const std::string& path,
                       std::string_view source,
                       std::vector<Finding>& findings) {
  if (!is_header(path)) return;
  if (source.find("#pragma once") == std::string_view::npos) {
    findings.push_back(Finding{rule.name, path, 1, rule.message});
  }
}

void apply_include_order(const Rule& rule, const std::string& path,
                         const std::vector<std::string_view>& code_lines,
                         std::vector<Finding>& findings) {
  const std::vector<Include> includes = parse_includes(code_lines);
  if (includes.empty()) return;

  // A .cpp's own header (same stem) must be the very first include.
  const bool is_source = path.rfind(".cpp") == path.size() - 4;
  if (is_source) {
    const std::string stem = stem_of(path);
    for (std::size_t i = 0; i < includes.size(); ++i) {
      if (!includes[i].angle && stem_of(includes[i].target) == stem) {
        if (i != 0) {
          findings.push_back(Finding{rule.name, path, includes[i].line,
                                     "own header must be the first include"});
        }
        break;
      }
    }
  }

  // After an optional leading quoted subject header, the angle-bracket
  // block must precede the quoted block (no interleaving back).
  std::size_t start = includes.empty() || includes[0].angle ? 0 : 1;
  bool seen_quoted = false;
  for (std::size_t i = start; i < includes.size(); ++i) {
    if (!includes[i].angle) {
      seen_quoted = true;
    } else if (seen_quoted) {
      findings.push_back(
          Finding{rule.name, path, includes[i].line,
                  "angle-bracket include after project includes"});
    }
  }
}

void apply_using_namespace(const Rule& rule, const std::string& path,
                           const std::vector<std::string_view>& code_lines,
                           std::vector<Finding>& findings) {
  if (!is_header(path)) return;
  static const std::regex re(R"(\busing\s+namespace\b)", std::regex::optimize);
  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    if (std::regex_search(code_lines[i].begin(), code_lines[i].end(), re)) {
      findings.push_back(
          Finding{rule.name, path, static_cast<int>(i + 1), rule.message});
    }
  }
}

// Resolves an include string against the project file set: headers are
// included relative to src/ (the single include root) or to the including
// file's directory (bench_support.hpp style).
const std::string* resolve_include(const FileSet& project,
                                   const std::string& from,
                                   const std::string& target,
                                   std::string* resolved) {
  const std::string from_dir =
      std::filesystem::path(from).parent_path().generic_string();
  for (const std::string& candidate :
       {std::string("src/") + target,
        from_dir.empty() ? target : from_dir + "/" + target, target}) {
    auto it = project.find(candidate);
    if (it != project.end()) {
      *resolved = candidate;
      return &it->second;
    }
  }
  return nullptr;
}

// Does `target` (an include string) reach a header whose include path
// starts with `forbidden`, following project includes depth-first?
bool include_reaches(const FileSet& project, const std::string& from,
                     const std::string& target, const std::string& forbidden,
                     std::set<std::string>& visited) {
  if (has_prefix(target, forbidden)) return true;
  std::string resolved;
  const std::string* contents =
      resolve_include(project, from, target, &resolved);
  if (contents == nullptr || !visited.insert(resolved).second) return false;
  const std::string code = strip_comments_and_strings(*contents);
  for (const Include& inc : parse_includes(split_lines(code))) {
    if (inc.angle) continue;  // system headers never re-enter the project
    if (include_reaches(project, resolved, inc.target, forbidden, visited)) {
      return true;
    }
  }
  return false;
}

void apply_forbidden_include(const Rule& rule, const std::string& path,
                             const std::vector<std::string_view>& code_lines,
                             const FileSet* project,
                             std::vector<Finding>& findings) {
  for (const Include& inc : parse_includes(code_lines)) {
    if (inc.angle) continue;
    bool hit = has_prefix(inc.target, rule.forbidden);
    if (!hit && rule.transitive && project != nullptr) {
      std::set<std::string> visited;
      hit = include_reaches(*project, path, inc.target, rule.forbidden,
                            visited);
    }
    if (hit) {
      findings.push_back(Finding{
          rule.name, path, inc.line,
          rule.message + " (via \"" + inc.target + "\")"});
    }
  }
}

// ---- config parsing ------------------------------------------------------

std::vector<std::string> string_array(const json::Value& obj,
                                      std::string_view key) {
  std::vector<std::string> out;
  const json::Value* field = obj.find(key);
  if (field == nullptr || !field->is_array()) return out;
  for (const json::Value& v : field->as_array()) {
    if (v.is_string()) out.push_back(v.as_string());
  }
  return out;
}

std::optional<RuleKind> kind_from_string(const std::string& kind) {
  if (kind == "banned-pattern") return RuleKind::kBannedPattern;
  if (kind == "float-eq") return RuleKind::kFloatEq;
  if (kind == "pragma-once") return RuleKind::kPragmaOnce;
  if (kind == "include-order") return RuleKind::kIncludeOrder;
  if (kind == "using-namespace-header") return RuleKind::kUsingNamespaceHeader;
  if (kind == "forbidden-include") return RuleKind::kForbiddenInclude;
  return std::nullopt;
}

}  // namespace

std::optional<Config> parse_config(std::string_view json_text,
                                   std::string* error) {
  std::string parse_error;
  const auto doc = json::parse(json_text, &parse_error);
  if (!doc || !doc->is_object()) {
    if (error != nullptr) {
      *error = "lint_rules.json: " +
               (parse_error.empty() ? "not a JSON object" : parse_error);
    }
    return std::nullopt;
  }

  Config config;
  config.roots = string_array(*doc, "roots");
  config.extensions = string_array(*doc, "extensions");
  if (config.extensions.empty()) config.extensions = {".cpp", ".hpp", ".h"};

  const json::Value* rules = doc->find("rules");
  if (rules == nullptr || !rules->is_array()) {
    if (error != nullptr) *error = "lint_rules.json: missing \"rules\" array";
    return std::nullopt;
  }
  for (const json::Value& entry : rules->as_array()) {
    if (!entry.is_object()) continue;
    Rule rule;
    if (const json::Value* v = entry.find("name"); v && v->is_string()) {
      rule.name = v->as_string();
    }
    std::string kind = "banned-pattern";
    if (const json::Value* v = entry.find("kind"); v && v->is_string()) {
      kind = v->as_string();
    }
    const auto parsed_kind = kind_from_string(kind);
    if (rule.name.empty() || !parsed_kind) {
      if (error != nullptr) {
        *error = "lint_rules.json: rule \"" + rule.name +
                 "\" has missing name or unknown kind \"" + kind + "\"";
      }
      return std::nullopt;
    }
    rule.kind = *parsed_kind;
    if (const json::Value* v = entry.find("message"); v && v->is_string()) {
      rule.message = v->as_string();
    }
    if (const json::Value* v = entry.find("enabled"); v && v->is_bool()) {
      rule.enabled = v->as_bool();
    }
    if (const json::Value* v = entry.find("forbidden"); v && v->is_string()) {
      rule.forbidden = v->as_string();
    }
    if (const json::Value* v = entry.find("transitive"); v && v->is_bool()) {
      rule.transitive = v->as_bool();
    }
    rule.patterns = string_array(entry, "patterns");
    rule.paths = string_array(entry, "paths");
    rule.allow_paths = string_array(entry, "allow_paths");
    config.rules.push_back(std::move(rule));
  }
  return config;
}

std::vector<Finding> lint_source(const Config& config, const std::string& path,
                                 std::string_view source,
                                 const FileSet* project) {
  const std::string code = strip_comments_and_strings(source);
  const std::vector<std::string_view> code_lines = split_lines(code);
  const Suppressions sup = parse_suppressions(split_lines(source));

  std::vector<Finding> findings;
  for (const Rule& rule : config.rules) {
    if (!rule.enabled || !rule_applies(rule, path)) continue;
    switch (rule.kind) {
      case RuleKind::kBannedPattern:
        apply_banned_patterns(rule, path, code_lines, findings);
        break;
      case RuleKind::kFloatEq:
        apply_float_eq(rule, path, code_lines, findings);
        break;
      case RuleKind::kPragmaOnce:
        apply_pragma_once(rule, path, source, findings);
        break;
      case RuleKind::kIncludeOrder:
        apply_include_order(rule, path, code_lines, findings);
        break;
      case RuleKind::kUsingNamespaceHeader:
        apply_using_namespace(rule, path, code_lines, findings);
        break;
      case RuleKind::kForbiddenInclude:
        apply_forbidden_include(rule, path, code_lines, project, findings);
        break;
    }
  }

  std::erase_if(findings, [&](const Finding& f) {
    return suppressed(sup, f.rule, f.line);
  });
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  return findings;
}

std::vector<Finding> lint_files(const Config& config, const FileSet& files) {
  std::vector<Finding> findings;
  for (const auto& [path, contents] : files) {
    auto file_findings = lint_source(config, path, contents, &files);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

std::optional<FileSet> collect_tree(const std::string& root_dir,
                                    const Config& config, std::string* error) {
  namespace fs = std::filesystem;
  FileSet files;
  for (const std::string& root : config.roots) {
    const fs::path dir = fs::path(root_dir) / root;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
      if (error != nullptr) {
        *error = "scan root not found: " + dir.generic_string();
      }
      return std::nullopt;
    }
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string rel =
          fs::relative(entry.path(), root_dir).generic_string();
      const bool wanted = std::any_of(
          config.extensions.begin(), config.extensions.end(),
          [&](const std::string& ext) {
            return rel.size() >= ext.size() &&
                   rel.compare(rel.size() - ext.size(), ext.size(), ext) == 0;
          });
      if (!wanted) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream contents;
      contents << in.rdbuf();
      files[rel] = contents.str();
    }
  }
  return files;
}

std::string format_findings(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.file + ":" + std::to_string(f.line) + ": error: [" + f.rule +
           "] " + f.message + "\n";
  }
  return out;
}

// ---- self-test fixtures --------------------------------------------------

namespace {

struct Fixture {
  const char* name;
  const char* path;         // repo-relative, drives path-scoped rules
  const char* expect_rule;  // "" = must lint clean
  const char* source;
};

// Bad fixtures must each trip exactly their named rule; good fixtures must
// produce no findings. Bad code lives in raw strings here, which the
// scrubber blanks when plos_lint scans its own source — the analyzer does
// not flag its own fixtures.
const Fixture kFixtures[] = {
    {"rng-in-solver", "src/core/bad_rng.cpp", "determinism-rng",
     R"(#include "core/bad_rng.hpp"
void seed_model() {
  std::random_device rd;
  (void)rd;
}
)"},
    {"unseeded-engine", "src/core/bad_engine.cpp", "determinism-rng",
     R"(#include "core/bad_engine.hpp"
#include <random>
std::mt19937 gen;
)"},
    {"clock-in-solver", "src/core/bad_clock.cpp", "determinism-clock",
     R"(#include "core/bad_clock.hpp"
#include <chrono>
double now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
)"},
    {"unordered-in-solver", "src/core/bad_unordered.cpp",
     "determinism-unordered",
     R"(#include "core/bad_unordered.hpp"
#include <unordered_map>
std::unordered_map<int, double> weights;
)"},
    {"build-stamp", "src/data/bad_stamp.cpp", "determinism-build-stamp",
     R"(#include "data/bad_stamp.hpp"
const char* built_at() { return __DATE__; }
)"},
    {"float-in-core", "src/qp/bad_float.cpp", "numeric-no-float",
     R"(#include "qp/bad_float.hpp"
float step_size = 0;
)"},
    {"float-equality", "src/core/bad_eq.cpp", "numeric-float-eq",
     R"(#include "core/bad_eq.hpp"
bool converged(double f) { return f == 1.5; }
)"},
    {"c-abs-on-double", "src/core/bad_abs.cpp", "numeric-c-abs",
     R"(#include "core/bad_abs.hpp"
#include <cstdlib>
double mag(double x) { return abs(x); }
)"},
    {"raw-data-in-net", "src/net/bad_privacy.cpp", "privacy-raw-data",
     R"(#include "net/bad_privacy.hpp"

#include "data/dataset.hpp"
)"},
    {"iostream-in-lib", "src/core/bad_io.cpp", "io-iostream",
     R"(#include "core/bad_io.hpp"

#include <iostream>
void report() { std::cout << "objective\n"; }
)"},
    {"missing-pragma-once", "src/core/bad_header.hpp", "hygiene-pragma-once",
     R"(namespace plos {}
)"},
    {"include-order", "src/core/bad_order.cpp", "hygiene-include-order",
     R"(#include "core/bad_order.hpp"

#include "common/assert.hpp"

#include <vector>
)"},
    {"using-namespace-header", "src/core/bad_using.hpp",
     "hygiene-using-namespace",
     R"(#pragma once
using namespace std;
)"},
    {"clean-solver-file", "src/core/good_clean.cpp", "",
     R"(#include "core/good_clean.hpp"

#include <cmath>

#include "rng/engine.hpp"

double scaled(double x) { return std::abs(x) * 2.0; }
bool untouched(double x) { return x == 0.0; }
bool close(double a, double b) { return std::abs(a - b) <= 1e-9; }
)"},
    {"suppressed-violation", "src/core/good_suppressed.cpp", "",
     R"(#include "core/good_suppressed.hpp"
// The bootstrap seed below is derived once and logged; determinism is
// preserved because it feeds a recorded manifest field.
// plos-lint: allow(determinism-rng)
std::random_device bootstrap_entropy;
)"},
    {"clock-in-obs-sink", "src/obs/good_timer.cpp", "",
     R"(#include "obs/good_timer.hpp"
#include <chrono>
double wall_us() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
)"},
    {"prose-not-code", "src/core/good_prose.cpp", "",
     R"(#include "core/good_prose.hpp"
// Comments may discuss rand() and std::random_device freely; so may
// string literals:
const char* kDoc = "never call rand() or srand() in solvers";
)"},
};

}  // namespace

SelfTestResult self_test(const Config& config) {
  SelfTestResult result;
  result.ok = true;
  for (const Fixture& fixture : kFixtures) {
    const auto findings = lint_source(config, fixture.path, fixture.source);
    const std::string expect = fixture.expect_rule;
    std::string line = std::string("self-test ") + fixture.name + ": ";
    if (expect.empty()) {
      if (findings.empty()) {
        line += "clean, as expected";
      } else {
        result.ok = false;
        line += "expected clean but got " + format_findings(findings);
      }
    } else {
      const bool hit = std::any_of(
          findings.begin(), findings.end(),
          [&](const Finding& f) { return f.rule == expect; });
      const bool only_expected = std::all_of(
          findings.begin(), findings.end(),
          [&](const Finding& f) { return f.rule == expect; });
      if (hit && only_expected) {
        line += "rejected by [" + findings[0].rule + "] at " +
                findings[0].file + ":" + std::to_string(findings[0].line) +
                ", as expected";
      } else if (!hit) {
        result.ok = false;
        line += "expected [" + expect + "] but got " +
                (findings.empty() ? std::string("no findings")
                                  : format_findings(findings));
      } else {
        result.ok = false;
        line += "expected only [" + expect + "] but got " +
                format_findings(findings);
      }
    }
    result.report += line + "\n";
  }
  result.report += result.ok ? "self-test: all fixtures passed\n"
                             : "self-test: FAILED\n";
  return result;
}

// ---- CLI -----------------------------------------------------------------

int run_cli(const std::vector<std::string>& args, std::string& out) {
  std::string root = ".";
  std::string rules_path;
  bool do_self_test = false;
  bool list_rules = false;
  std::vector<std::string> filters;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--root" || arg == "--rules") {
      if (i + 1 >= args.size()) {
        out += "plos_lint: missing value for " + arg + "\n";
        return 2;
      }
      (arg == "--root" ? root : rules_path) = args[++i];
    } else if (arg == "--self-test") {
      do_self_test = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help") {
      out += "usage: plos_lint [--root DIR] [--rules FILE] [--self-test] "
             "[--list-rules] [path-prefix...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      out += "plos_lint: unknown flag " + arg + "\n";
      return 2;
    } else {
      filters.push_back(arg);
    }
  }
  if (rules_path.empty()) rules_path = root + "/tools/lint_rules.json";

  std::ifstream in(rules_path, std::ios::binary);
  if (!in) {
    out += "plos_lint: cannot open rules file " + rules_path + "\n";
    return 2;
  }
  std::ostringstream rules_text;
  rules_text << in.rdbuf();
  std::string error;
  const auto config = parse_config(rules_text.str(), &error);
  if (!config) {
    out += "plos_lint: " + error + "\n";
    return 2;
  }

  if (list_rules) {
    for (const Rule& rule : config->rules) {
      out += rule.name + (rule.enabled ? "" : " (disabled)") + ": " +
             rule.message + "\n";
    }
    return 0;
  }
  if (do_self_test) {
    const SelfTestResult result = self_test(*config);
    out += result.report;
    return result.ok ? 0 : 1;
  }

  auto files = collect_tree(root, *config, &error);
  if (!files) {
    out += "plos_lint: " + error + "\n";
    return 2;
  }
  if (!filters.empty()) {
    std::erase_if(*files, [&](const auto& entry) {
      return std::none_of(filters.begin(), filters.end(),
                          [&](const std::string& f) {
                            return has_prefix(entry.first, f);
                          });
    });
  }
  const auto findings = lint_files(*config, *files);
  out += format_findings(findings);
  out += "plos_lint: " + std::to_string(findings.size()) + " finding(s) in " +
         std::to_string(files->size()) + " file(s) scanned\n";
  return findings.empty() ? 0 : 1;
}

}  // namespace plos::lint
