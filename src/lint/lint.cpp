#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

#include "common/assert.hpp"
#include "lint/rules_semantic.hpp"
#include "obs/json.hpp"
#include "parallel/thread_pool.hpp"

namespace plos::lint {

namespace {

namespace json = plos::obs::json;

std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    if (end == text.size()) break;
    start = end + 1;
  }
  return lines;
}

// ---- suppressions --------------------------------------------------------

struct Suppressions {
  std::set<std::string> file_wide;                  // allow-file(rule)
  std::map<int, std::set<std::string>> per_line;    // allow(rule) on line N
};

void parse_allow_list(std::string_view text, std::set<std::string>& out) {
  std::string name;
  for (char c : text) {
    if (c == ',' || c == ')') {
      if (!name.empty()) out.insert(name);
      name.clear();
      if (c == ')') return;
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      name += c;
    }
  }
}

Suppressions parse_suppressions(const std::vector<std::string_view>& lines) {
  Suppressions sup;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    const std::size_t marker = line.find("plos-lint:");
    if (marker == std::string_view::npos) continue;
    std::string_view rest = line.substr(marker + 10);
    while (!rest.empty() &&
           std::isspace(static_cast<unsigned char>(rest.front()))) {
      rest.remove_prefix(1);
    }
    if (rest.rfind("allow-file(", 0) == 0) {
      parse_allow_list(rest.substr(11), sup.file_wide);
    } else if (rest.rfind("allow(", 0) == 0) {
      parse_allow_list(rest.substr(6), sup.per_line[static_cast<int>(i + 1)]);
    }
  }
  return sup;
}

bool suppressed(const Suppressions& sup, const std::string& rule, int line) {
  if (sup.file_wide.count(rule) != 0) return true;
  for (int l : {line, line - 1}) {
    auto it = sup.per_line.find(l);
    if (it != sup.per_line.end() && it->second.count(rule) != 0) return true;
  }
  return false;
}

// ---- path scoping --------------------------------------------------------

bool has_prefix(const std::string& path, const std::string& prefix) {
  return path.rfind(prefix, 0) == 0;
}

bool rule_applies(const Rule& rule, const std::string& path) {
  if (!rule.paths.empty() &&
      std::none_of(rule.paths.begin(), rule.paths.end(),
                   [&](const std::string& p) { return has_prefix(path, p); })) {
    return false;
  }
  return std::none_of(
      rule.allow_paths.begin(), rule.allow_paths.end(),
      [&](const std::string& p) { return has_prefix(path, p); });
}

bool is_header(const std::string& path) {
  return path.size() >= 4 && (path.rfind(".hpp") == path.size() - 4 ||
                              path.rfind(".h") == path.size() - 2);
}

// ---- rule engines --------------------------------------------------------

std::string stem_of(const std::string& path) {
  return std::filesystem::path(path).stem().string();
}

void apply_banned_patterns(const Rule& rule, const std::string& path,
                           const std::vector<std::string_view>& code_lines,
                           std::vector<Finding>& findings) {
  std::vector<std::regex> compiled;
  compiled.reserve(rule.patterns.size());
  for (const std::string& p : rule.patterns) {
    compiled.emplace_back(p, std::regex::optimize);
  }
  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    for (std::size_t r = 0; r < compiled.size(); ++r) {
      if (std::regex_search(code_lines[i].begin(), code_lines[i].end(),
                            compiled[r])) {
        findings.push_back(Finding{rule.name, path, static_cast<int>(i + 1),
                                   rule.message});
        break;  // one finding per line per rule
      }
    }
  }
}

void apply_float_eq(const Rule& rule, const std::string& path,
                    const std::vector<std::string_view>& code_lines,
                    std::vector<Finding>& findings) {
  // A floating literal: 1.5 / .5 / 1. / 1e-9 / 1.5e3, optional f/F suffix.
  static const char* kFloat =
      R"((\d+\.\d*([eE][-+]?\d+)?|\.\d+([eE][-+]?\d+)?|\d+[eE][-+]?\d+)[fFlL]?)";
  static const std::regex rhs_re(std::string(R"((==|!=)\s*[-+]?)") + kFloat,
                                 std::regex::optimize);
  static const std::regex lhs_re(std::string(kFloat) + R"(\s*(==|!=))",
                                 std::regex::optimize);
  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    const std::string line(code_lines[i]);
    bool flagged = false;
    for (const std::regex* re : {&rhs_re, &lhs_re}) {
      for (auto it = std::sregex_iterator(line.begin(), line.end(), *re);
           !flagged && it != std::sregex_iterator(); ++it) {
        const std::smatch& m = *it;
        // Exact comparison against zero (x == 0.0) is the explicit
        // "was this coordinate ever touched" idiom and stays legal.
        const std::string literal =
            m[1].str() == "==" || m[1].str() == "!=" ? m[2].str() : m[1].str();
        flagged = std::strtod(literal.c_str(), nullptr) != 0.0;
      }
      if (flagged) break;
    }
    if (flagged) {
      findings.push_back(
          Finding{rule.name, path, static_cast<int>(i + 1), rule.message});
    }
  }
}

void apply_pragma_once(const Rule& rule, const std::string& path,
                       std::string_view source,
                       std::vector<Finding>& findings) {
  if (!is_header(path)) return;
  if (source.find("#pragma once") == std::string_view::npos) {
    findings.push_back(Finding{rule.name, path, 1, rule.message});
  }
}

void apply_include_order(const Rule& rule, const std::string& path,
                         const std::vector<Include>& includes,
                         std::vector<Finding>& findings) {
  if (includes.empty()) return;

  // A .cpp's own header (same stem) must be the very first include.
  const bool is_source = path.rfind(".cpp") == path.size() - 4;
  if (is_source) {
    const std::string stem = stem_of(path);
    for (std::size_t i = 0; i < includes.size(); ++i) {
      if (!includes[i].angle && stem_of(includes[i].target) == stem) {
        if (i != 0) {
          findings.push_back(Finding{rule.name, path, includes[i].line,
                                     "own header must be the first include"});
        }
        break;
      }
    }
  }

  // After an optional leading quoted subject header, the angle-bracket
  // block must precede the quoted block (no interleaving back).
  std::size_t start = includes.empty() || includes[0].angle ? 0 : 1;
  bool seen_quoted = false;
  for (std::size_t i = start; i < includes.size(); ++i) {
    if (!includes[i].angle) {
      seen_quoted = true;
    } else if (seen_quoted) {
      findings.push_back(
          Finding{rule.name, path, includes[i].line,
                  "angle-bracket include after project includes"});
    }
  }
}

void apply_using_namespace(const Rule& rule, const std::string& path,
                           const std::vector<std::string_view>& code_lines,
                           std::vector<Finding>& findings) {
  if (!is_header(path)) return;
  static const std::regex re(R"(\busing\s+namespace\b)", std::regex::optimize);
  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    if (std::regex_search(code_lines[i].begin(), code_lines[i].end(), re)) {
      findings.push_back(
          Finding{rule.name, path, static_cast<int>(i + 1), rule.message});
    }
  }
}

void apply_forbidden_include(const Rule& rule, const std::string& path,
                             const std::vector<Include>& includes,
                             const FileSet* project,
                             std::vector<Finding>& findings) {
  for (const Include& inc : includes) {
    if (inc.angle) continue;
    bool hit = has_prefix(inc.target, rule.forbidden);
    if (!hit && rule.transitive && project != nullptr) {
      std::set<std::string> visited;
      hit = include_reaches(*project, path, inc.target, rule.forbidden,
                            visited);
    }
    if (hit) {
      findings.push_back(Finding{
          rule.name, path, inc.line,
          rule.message + " (via \"" + inc.target + "\")"});
    }
  }
}

// ---- config parsing ------------------------------------------------------

std::vector<std::string> string_array(const json::Value& obj,
                                      std::string_view key) {
  std::vector<std::string> out;
  const json::Value* field = obj.find(key);
  if (field == nullptr || !field->is_array()) return out;
  for (const json::Value& v : field->as_array()) {
    if (v.is_string()) out.push_back(v.as_string());
  }
  return out;
}

std::optional<RuleKind> kind_from_string(const std::string& kind) {
  if (kind == "banned-pattern") return RuleKind::kBannedPattern;
  if (kind == "float-eq") return RuleKind::kFloatEq;
  if (kind == "pragma-once") return RuleKind::kPragmaOnce;
  if (kind == "include-order") return RuleKind::kIncludeOrder;
  if (kind == "using-namespace-header") return RuleKind::kUsingNamespaceHeader;
  if (kind == "forbidden-include") return RuleKind::kForbiddenInclude;
  if (kind == "race-surface") return RuleKind::kRaceSurface;
  if (kind == "accumulation-order") return RuleKind::kAccumulationOrder;
  if (kind == "layering") return RuleKind::kLayering;
  return std::nullopt;
}

}  // namespace

std::optional<Config> parse_config(std::string_view json_text,
                                   std::string* error) {
  std::string parse_error;
  const auto doc = json::parse(json_text, &parse_error);
  if (!doc || !doc->is_object()) {
    if (error != nullptr) {
      *error = "lint_rules.json: " +
               (parse_error.empty() ? "not a JSON object" : parse_error);
    }
    return std::nullopt;
  }

  Config config;
  config.roots = string_array(*doc, "roots");
  config.extensions = string_array(*doc, "extensions");
  if (config.extensions.empty()) config.extensions = {".cpp", ".hpp", ".h"};

  const json::Value* rules = doc->find("rules");
  if (rules == nullptr || !rules->is_array()) {
    if (error != nullptr) *error = "lint_rules.json: missing \"rules\" array";
    return std::nullopt;
  }
  for (const json::Value& entry : rules->as_array()) {
    if (!entry.is_object()) continue;
    Rule rule;
    if (const json::Value* v = entry.find("name"); v && v->is_string()) {
      rule.name = v->as_string();
    }
    std::string kind = "banned-pattern";
    if (const json::Value* v = entry.find("kind"); v && v->is_string()) {
      kind = v->as_string();
    }
    const auto parsed_kind = kind_from_string(kind);
    if (rule.name.empty() || !parsed_kind) {
      if (error != nullptr) {
        *error = "lint_rules.json: rule \"" + rule.name +
                 "\" has missing name or unknown kind \"" + kind + "\"";
      }
      return std::nullopt;
    }
    rule.kind = *parsed_kind;
    if (const json::Value* v = entry.find("message"); v && v->is_string()) {
      rule.message = v->as_string();
    }
    if (const json::Value* v = entry.find("enabled"); v && v->is_bool()) {
      rule.enabled = v->as_bool();
    }
    if (const json::Value* v = entry.find("forbidden"); v && v->is_string()) {
      rule.forbidden = v->as_string();
    }
    if (const json::Value* v = entry.find("transitive"); v && v->is_bool()) {
      rule.transitive = v->as_bool();
    }
    rule.patterns = string_array(entry, "patterns");
    rule.paths = string_array(entry, "paths");
    rule.allow_paths = string_array(entry, "allow_paths");
    config.rules.push_back(std::move(rule));
  }
  return config;
}

std::vector<Finding> lint_source(const Config& config, const std::string& path,
                                 std::string_view source,
                                 const FileSet* project) {
  const std::string code = strip_comments_and_strings(source);
  const std::vector<std::string_view> code_lines = split_lines(code);
  const std::vector<Include> includes = parse_includes(code);
  const Suppressions sup = parse_suppressions(split_lines(source));

  // The token stream is shared by the semantic rules and built on demand:
  // pattern-only configs never pay for tokenization.
  std::optional<std::vector<Token>> tokens;
  const auto token_stream = [&]() -> const std::vector<Token>& {
    if (!tokens) tokens = tokenize(code);
    return *tokens;
  };

  std::vector<Finding> findings;
  for (const Rule& rule : config.rules) {
    if (!rule.enabled || !rule_applies(rule, path)) continue;
    switch (rule.kind) {
      case RuleKind::kBannedPattern:
        apply_banned_patterns(rule, path, code_lines, findings);
        break;
      case RuleKind::kFloatEq:
        apply_float_eq(rule, path, code_lines, findings);
        break;
      case RuleKind::kPragmaOnce:
        apply_pragma_once(rule, path, source, findings);
        break;
      case RuleKind::kIncludeOrder:
        apply_include_order(rule, path, includes, findings);
        break;
      case RuleKind::kUsingNamespaceHeader:
        apply_using_namespace(rule, path, code_lines, findings);
        break;
      case RuleKind::kForbiddenInclude:
        apply_forbidden_include(rule, path, includes, project, findings);
        break;
      case RuleKind::kRaceSurface:
        apply_race_surface(rule, path, token_stream(), findings);
        break;
      case RuleKind::kAccumulationOrder:
        apply_accumulation_order(rule, path, token_stream(), findings);
        break;
      case RuleKind::kLayering:
        if (config.layers_loaded) {
          apply_layering(rule, path, code, config.layers, findings);
        }
        break;
    }
  }

  std::erase_if(findings, [&](const Finding& f) {
    return suppressed(sup, f.rule, f.line);
  });
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  return findings;
}

std::vector<Finding> lint_files(const Config& config, const FileSet& files,
                                int threads) {
  std::vector<const FileSet::value_type*> entries;
  entries.reserve(files.size());
  for (const auto& entry : files) entries.push_back(&entry);

  std::vector<std::vector<Finding>> per_file(entries.size());
  const auto scan_one = [&](std::size_t i) {
    per_file[i] =
        lint_source(config, entries[i]->first, entries[i]->second, &files);
  };
  if (threads > 1 && entries.size() > 1) {
    parallel::ThreadPool pool(threads);
    pool.parallel_for(entries.size(), scan_one);
  } else {
    for (std::size_t i = 0; i < entries.size(); ++i) scan_one(i);
  }

  // Merge in path order: the report is byte-identical at any thread count.
  std::vector<Finding> findings;
  for (auto& file_findings : per_file) {
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

std::optional<FileSet> collect_tree(const std::string& root_dir,
                                    const Config& config, std::string* error) {
  namespace fs = std::filesystem;
  FileSet files;
  for (const std::string& root : config.roots) {
    const fs::path dir = fs::path(root_dir) / root;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
      if (error != nullptr) {
        *error = "scan root not found: " + dir.generic_string();
      }
      return std::nullopt;
    }
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string rel =
          fs::relative(entry.path(), root_dir).generic_string();
      const bool wanted = std::any_of(
          config.extensions.begin(), config.extensions.end(),
          [&](const std::string& ext) {
            return rel.size() >= ext.size() &&
                   rel.compare(rel.size() - ext.size(), ext.size(), ext) == 0;
          });
      if (!wanted) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream contents;
      contents << in.rdbuf();
      files[rel] = contents.str();
    }
  }
  return files;
}

std::string format_findings(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.file + ":" + std::to_string(f.line) + ": error: [" + f.rule +
           "] " + f.message + "\n";
  }
  return out;
}

std::string format_sarif(const Config& config,
                         const std::vector<Finding>& findings) {
  std::map<std::string, std::size_t> rule_index;
  std::string rules_json;
  for (const Rule& rule : config.rules) {
    if (!rule.enabled) continue;
    if (!rules_json.empty()) rules_json += ",";
    rule_index[rule.name] = rule_index.size();
    rules_json += "{\"id\":" + json::escape(rule.name) +
                  ",\"shortDescription\":{\"text\":" +
                  json::escape(rule.message) + "}}";
  }

  std::string results_json;
  for (const Finding& f : findings) {
    if (!results_json.empty()) results_json += ",";
    results_json += "{\"ruleId\":" + json::escape(f.rule);
    const auto it = rule_index.find(f.rule);
    if (it != rule_index.end()) {
      results_json += ",\"ruleIndex\":" + std::to_string(it->second);
    }
    results_json +=
        ",\"level\":\"error\",\"message\":{\"text\":" + json::escape(f.message) +
        "},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":" +
        json::escape(f.file) +
        ",\"uriBaseId\":\"SRCROOT\"},\"region\":{\"startLine\":" +
        std::to_string(f.line) + "}}}]}";
  }

  return "{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\","
         "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":"
         "{\"name\":\"plos_lint\",\"rules\":[" +
         rules_json + "]}},\"columnKind\":\"utf16CodeUnits\",\"results\":[" +
         results_json + "]}]}\n";
}

// ---- mechanical fixes ----------------------------------------------------

namespace {

std::string_view trim_left(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  return s;
}

std::vector<std::string> split_lines_owned(std::string_view text) {
  std::vector<std::string> lines;
  for (std::string_view line : split_lines(text)) {
    lines.emplace_back(line);
  }
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out += lines[i];
    if (i + 1 < lines.size()) out += "\n";
  }
  return out;
}

}  // namespace

FixOutcome fix_mechanical(const Config& config, const std::string& path,
                          std::string_view source) {
  FixOutcome outcome;
  if (source.find("plos-lint:") != std::string_view::npos) {
    outcome.refused = true;
    return outcome;
  }
  bool want_pragma = false;
  bool want_order = false;
  for (const Rule& rule : config.rules) {
    if (!rule.enabled || !rule_applies(rule, path)) continue;
    if (rule.kind == RuleKind::kPragmaOnce) want_pragma = true;
    if (rule.kind == RuleKind::kIncludeOrder) want_order = true;
  }

  std::vector<std::string> lines = split_lines_owned(source);

  if (want_pragma && is_header(path) &&
      source.find("#pragma once") == std::string_view::npos) {
    // Insert after the leading comment block (and its trailing blank), so
    // the file-header prose stays on top.
    std::size_t at = 0;
    while (at < lines.size()) {
      const std::string_view t = trim_left(lines[at]);
      if (t.empty() || t.rfind("//", 0) == 0) {
        ++at;
      } else {
        break;
      }
    }
    const bool needs_blank = at < lines.size() && !trim_left(lines[at]).empty();
    lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(at),
                 "#pragma once");
    if (needs_blank) {
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(at) + 1, "");
    }
  }

  if (want_order) {
    const std::string code = strip_comments_and_strings(join_lines(lines));
    const std::vector<Include> includes = parse_includes(code);
    if (includes.size() >= 2) {
      const int first = includes.front().line;  // 1-based
      const int last = includes.back().line;
      std::set<int> include_lines;
      for (const Include& inc : includes) include_lines.insert(inc.line);

      // Only rebuild a region that holds nothing but includes and blank
      // lines — a comment pinned to one include would otherwise detach.
      bool safe = true;
      for (int l = first; l <= last && safe; ++l) {
        if (include_lines.count(l) != 0) continue;
        if (!trim_left(lines[static_cast<std::size_t>(l - 1)]).empty()) {
          safe = false;
        }
      }
      if (safe) {
        const bool is_source = path.rfind(".cpp") == path.size() - 4;
        const std::string stem = stem_of(path);
        std::vector<std::string> own, angle, quoted;
        for (const Include& inc : includes) {
          std::string& line = lines[static_cast<std::size_t>(inc.line - 1)];
          if (!inc.angle && is_source && own.empty() &&
              stem_of(inc.target) == stem) {
            own.push_back(line);
          } else if (inc.angle) {
            angle.push_back(line);
          } else {
            quoted.push_back(line);
          }
        }
        std::vector<std::string> region;
        for (const auto* block : {&own, &angle, &quoted}) {
          if (block->empty()) continue;
          if (!region.empty()) region.emplace_back();
          region.insert(region.end(), block->begin(), block->end());
        }
        lines.erase(lines.begin() + (first - 1), lines.begin() + last);
        lines.insert(lines.begin() + (first - 1), region.begin(),
                     region.end());
      }
    }
  }

  std::string fixed = join_lines(lines);
  if (fixed != source) {
    outcome.changed = true;
    outcome.text = std::move(fixed);
  }
  return outcome;
}

// ---- self-test fixtures --------------------------------------------------

namespace {

struct Fixture {
  const char* name;
  const char* path;         // repo-relative, drives path-scoped rules
  const char* expect_rule;  // "" = must lint clean; "a,b" = a required,
                            // b tolerated (overlapping rule families)
  const char* source;
};

// Bad fixtures must each trip exactly their named rule; good fixtures must
// produce no findings. Bad code lives in raw strings here, which the
// scrubber blanks when plos_lint scans its own source — the analyzer does
// not flag its own fixtures.
const Fixture kFixtures[] = {
    {"rng-in-solver", "src/core/bad_rng.cpp", "determinism-rng",
     R"(#include "core/bad_rng.hpp"
void seed_model() {
  std::random_device rd;
  (void)rd;
}
)"},
    {"unseeded-engine", "src/core/bad_engine.cpp", "determinism-rng",
     R"(#include "core/bad_engine.hpp"
#include <random>
std::mt19937 gen;
)"},
    {"clock-in-solver", "src/core/bad_clock.cpp", "determinism-clock",
     R"(#include "core/bad_clock.hpp"
#include <chrono>
double now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
)"},
    {"unordered-in-solver", "src/core/bad_unordered.cpp",
     "determinism-unordered",
     R"(#include "core/bad_unordered.hpp"
#include <unordered_map>
std::unordered_map<int, double> weights;
)"},
    {"build-stamp", "src/data/bad_stamp.cpp", "determinism-build-stamp",
     R"(#include "data/bad_stamp.hpp"
const char* built_at() { return __DATE__; }
)"},
    {"float-in-core", "src/qp/bad_float.cpp", "numeric-no-float",
     R"(#include "qp/bad_float.hpp"
float step_size = 0;
)"},
    {"float-equality", "src/core/bad_eq.cpp", "numeric-float-eq",
     R"(#include "core/bad_eq.hpp"
bool converged(double f) { return f == 1.5; }
)"},
    {"c-abs-on-double", "src/core/bad_abs.cpp", "numeric-c-abs",
     R"(#include "core/bad_abs.hpp"
#include <cstdlib>
double mag(double x) { return abs(x); }
)"},
    // The layering DAG generalizes the hand-written privacy edge, so when
    // a layers file is loaded this fixture trips both families.
    {"raw-data-in-net", "src/net/bad_privacy.cpp", "privacy-raw-data,layering",
     R"(#include "net/bad_privacy.hpp"

#include "data/dataset.hpp"
)"},
    {"iostream-in-lib", "src/core/bad_io.cpp", "io-iostream",
     R"(#include "core/bad_io.hpp"

#include <iostream>
void report() { std::cout << "objective\n"; }
)"},
    {"missing-pragma-once", "src/core/bad_header.hpp", "hygiene-pragma-once",
     R"(namespace plos {}
)"},
    {"include-order", "src/core/bad_order.cpp", "hygiene-include-order",
     R"(#include "core/bad_order.hpp"

#include "common/assert.hpp"

#include <vector>
)"},
    {"using-namespace-header", "src/core/bad_using.hpp",
     "hygiene-using-namespace",
     R"(#pragma once
using namespace std;
)"},
    // Planted unsynchronized capture: `total` is shared across chunks and
    // written without indexing, atomics, or a lock. Must flag.
    {"race-unsynchronized-capture", "src/core/bad_race.cpp", "race-surface",
     R"(#include "core/bad_race.hpp"

#include <cstddef>
#include <vector>

#include "parallel/thread_pool.hpp"

double sum_losses(const std::vector<double>& x) {
  double total = 0.0;
  plos::parallel::ThreadPool pool(4);
  pool.parallel_for(x.size(), [&](std::size_t t) {
    total += x[t];
  });
  return total;
}
)"},
    // Chunk-indexed write: every chunk owns out[t]. Must NOT flag.
    {"race-chunk-indexed-write", "src/core/good_chunked.cpp", "",
     R"(#include "core/good_chunked.hpp"

#include <cstddef>
#include <vector>

#include "parallel/thread_pool.hpp"

void square_all(std::vector<double>& out, const std::vector<double>& in) {
  plos::parallel::ThreadPool pool(2);
  pool.parallel_for(in.size(), [&](std::size_t t) {
    out[t] = in[t] * in[t];
  });
}
)"},
    {"accumulation-raw-fold", "src/qp/bad_fold.cpp", "accumulation-order",
     R"(#include "qp/bad_fold.hpp"

#include <cstddef>
#include <vector>

double objective(const std::vector<double>& g, const std::vector<double>& x) {
  double obj = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    obj += g[i] * x[i];
  }
  return obj;
}
)"},
    // Pinned-order kernel call and a genuine recurrence (the target is
    // re-read in the loop) are both legal shapes.
    {"accumulation-kernel-and-scan", "src/qp/good_fold.cpp", "",
     R"(#include "qp/good_fold.hpp"

#include <vector>

#include "linalg/kernels.hpp"

double objective(const std::vector<double>& g, const std::vector<double>& x) {
  return plos::linalg::kernels::blocked_dot(g, x);
}

double first_crossing(const std::vector<double>& u, double cap) {
  double running = 0.0;
  for (double v : u) {
    running += v;
    if (running > cap) return running;
  }
  return running;
}
)"},
    {"layering-undeclared-edge", "src/linalg/bad_layering.cpp", "layering",
     R"(#include "linalg/bad_layering.hpp"

#include "qp/box_qp.hpp"
)"},
    {"layering-declared-edges", "src/qp/good_layering.cpp", "",
     R"(#include "qp/good_layering.hpp"

#include "linalg/kernels.hpp"
#include "obs/json.hpp"
)"},
    {"clean-solver-file", "src/core/good_clean.cpp", "",
     R"(#include "core/good_clean.hpp"

#include <cmath>

#include "rng/engine.hpp"

double scaled(double x) { return std::abs(x) * 2.0; }
bool untouched(double x) { return x == 0.0; }
bool close(double a, double b) { return std::abs(a - b) <= 1e-9; }
)"},
    {"suppressed-violation", "src/core/good_suppressed.cpp", "",
     R"(#include "core/good_suppressed.hpp"
// The bootstrap seed below is derived once and logged; determinism is
// preserved because it feeds a recorded manifest field.
// plos-lint: allow(determinism-rng)
std::random_device bootstrap_entropy;
)"},
    {"clock-in-obs-sink", "src/obs/good_timer.cpp", "",
     R"(#include "obs/good_timer.hpp"
#include <chrono>
double wall_us() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
)"},
    {"prose-not-code", "src/core/good_prose.cpp", "",
     R"(#include "core/good_prose.hpp"
// Comments may discuss rand() and std::random_device freely; so may
// string literals:
const char* kDoc = "never call rand() or srand() in solvers";
)"},
};

std::vector<std::string> split_rule_list(const char* text) {
  std::vector<std::string> rules;
  std::string name;
  for (const char* p = text;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!name.empty()) rules.push_back(name);
      name.clear();
      if (*p == '\0') break;
    } else {
      name += *p;
    }
  }
  return rules;
}

}  // namespace

SelfTestResult self_test(const Config& config) {
  SelfTestResult result;
  result.ok = true;
  for (const Fixture& fixture : kFixtures) {
    const auto findings = lint_source(config, fixture.path, fixture.source);
    const std::vector<std::string> expect = split_rule_list(fixture.expect_rule);
    std::string line = std::string("self-test ") + fixture.name + ": ";
    if (expect.empty()) {
      if (findings.empty()) {
        line += "clean, as expected";
      } else {
        result.ok = false;
        line += "expected clean but got " + format_findings(findings);
      }
    } else {
      const bool hit = std::any_of(
          findings.begin(), findings.end(),
          [&](const Finding& f) { return f.rule == expect.front(); });
      const bool only_expected = std::all_of(
          findings.begin(), findings.end(), [&](const Finding& f) {
            return std::find(expect.begin(), expect.end(), f.rule) !=
                   expect.end();
          });
      if (hit && only_expected) {
        line += "rejected by [" + findings[0].rule + "] at " +
                findings[0].file + ":" + std::to_string(findings[0].line) +
                ", as expected";
      } else if (!hit) {
        result.ok = false;
        line += "expected [" + expect.front() + "] but got " +
                (findings.empty() ? std::string("no findings")
                                  : format_findings(findings));
      } else {
        result.ok = false;
        line += "expected only [" + expect.front() + "] but got " +
                format_findings(findings);
      }
    }
    result.report += line + "\n";
  }
  result.report += result.ok ? "self-test: all fixtures passed\n"
                             : "self-test: FAILED\n";
  return result;
}

// ---- CLI -----------------------------------------------------------------

int run_cli(const std::vector<std::string>& args, std::string& out) {
  std::string root = ".";
  std::string rules_path;
  std::string layers_path;
  std::string format = "text";
  int threads = 1;
  bool do_self_test = false;
  bool list_rules = false;
  bool do_fix = false;
  std::vector<std::string> filters;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--root" || arg == "--rules" || arg == "--layers" ||
        arg == "--format" || arg == "--threads") {
      if (i + 1 >= args.size()) {
        out += "plos_lint: missing value for " + arg + "\n";
        return 2;
      }
      const std::string& value = args[++i];
      if (arg == "--root") {
        root = value;
      } else if (arg == "--rules") {
        rules_path = value;
      } else if (arg == "--layers") {
        layers_path = value;
      } else if (arg == "--format") {
        if (value != "text" && value != "sarif") {
          out += "plos_lint: unknown format " + value +
                 " (expected text or sarif)\n";
          return 2;
        }
        format = value;
      } else {
        threads = std::atoi(value.c_str());
        if (threads < 1) {
          out += "plos_lint: --threads needs a positive integer, got " +
                 value + "\n";
          return 2;
        }
      }
    } else if (arg == "--self-test") {
      do_self_test = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--fix") {
      do_fix = true;
    } else if (arg == "--help") {
      out += "usage: plos_lint [--root DIR] [--rules FILE] [--layers FILE] "
             "[--format text|sarif] [--threads N] [--fix] [--self-test] "
             "[--list-rules] [path-prefix...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      out += "plos_lint: unknown flag " + arg + "\n";
      return 2;
    } else {
      filters.push_back(arg);
    }
  }
  if (rules_path.empty()) rules_path = root + "/tools/lint_rules.json";
  if (layers_path.empty()) layers_path = root + "/tools/lint_layers.json";

  std::ifstream in(rules_path, std::ios::binary);
  if (!in) {
    out += "plos_lint: cannot open rules file " + rules_path + "\n";
    return 2;
  }
  std::ostringstream rules_text;
  rules_text << in.rdbuf();
  std::string error;
  auto config = parse_config(rules_text.str(), &error);
  if (!config) {
    out += "plos_lint: " + error + "\n";
    return 2;
  }

  const bool wants_layering = std::any_of(
      config->rules.begin(), config->rules.end(), [](const Rule& rule) {
        return rule.enabled && rule.kind == RuleKind::kLayering;
      });
  if (wants_layering) {
    std::ifstream layers_in(layers_path, std::ios::binary);
    if (!layers_in) {
      out += "plos_lint: cannot open layering DAG " + layers_path + "\n";
      return 2;
    }
    std::ostringstream layers_text;
    layers_text << layers_in.rdbuf();
    const auto layers = parse_layers(layers_text.str(), &error);
    if (!layers) {
      out += "plos_lint: " + error + "\n";
      return 2;
    }
    config->layers = *layers;
    config->layers_loaded = true;
  }

  if (list_rules) {
    for (const Rule& rule : config->rules) {
      out += rule.name + (rule.enabled ? "" : " (disabled)") + ": " +
             rule.message + "\n";
    }
    return 0;
  }
  if (do_self_test) {
    const SelfTestResult result = self_test(*config);
    out += result.report;
    return result.ok ? 0 : 1;
  }

  auto files = collect_tree(root, *config, &error);
  if (!files) {
    out += "plos_lint: " + error + "\n";
    return 2;
  }
  if (!filters.empty()) {
    std::erase_if(*files, [&](const auto& entry) {
      return std::none_of(filters.begin(), filters.end(),
                          [&](const std::string& f) {
                            return has_prefix(entry.first, f);
                          });
    });
  }

  if (do_fix) {
    int fixed = 0;
    for (const auto& [path, contents] : *files) {
      const FixOutcome outcome = fix_mechanical(*config, path, contents);
      if (outcome.refused) {
        out += "refused (plos-lint suppression present): " + path + "\n";
        continue;
      }
      if (!outcome.changed) continue;
      std::ofstream file_out(std::filesystem::path(root) / path,
                             std::ios::binary | std::ios::trunc);
      file_out << outcome.text;
      out += "fixed: " + path + "\n";
      ++fixed;
    }
    out += "plos_lint: " + std::to_string(fixed) + " file(s) fixed\n";
    return 0;
  }

  const auto findings = lint_files(*config, *files, threads);
  if (format == "sarif") {
    out += format_sarif(*config, findings);
  } else {
    out += format_findings(findings);
    out += "plos_lint: " + std::to_string(findings.size()) +
           " finding(s) in " + std::to_string(files->size()) +
           " file(s) scanned\n";
  }
  return findings.empty() ? 0 : 1;
}

}  // namespace plos::lint
