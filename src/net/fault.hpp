// Deterministic fault injection for the simulated network.
//
// Phones on flaky radios drop rounds, straggle, and corrupt payloads; the
// distributed trainer must survive all of it (paper §V-VI keeps raw data
// on-device precisely because the uplink is the scarce, unreliable
// resource). This header provides the *schedule*: which device is offline
// in which round, which message attempt is dropped or corrupted, which
// device straggles and by how much.
//
// Every decision is a pure function of a counter-based key
//
//     (seed, round, device, direction, attempt, draw-kind)
//
// hashed through a splitmix64-style finalizer into a uniform in [0, 1).
// There is no shared RNG stream, so any thread can evaluate any draw in any
// order and always gets the same answer — the PR 2 determinism contract
// (bitwise-identical models and byte ledgers at every thread count)
// survives fault injection unchanged. The flip side, documented in
// DESIGN.md §9: participation decisions must never consult *measured* wall
// time (which is nondeterministic); deadlines are resolved against the
// fault schedule, and measured time feeds only the reported simulated
// clock.
//
// A default-constructed FaultModel is inert: every predicate returns
// "no fault", every multiplier is exactly 1.0, so fault-free paths are
// bit-for-bit the pre-fault code.
#pragma once

#include <cstddef>
#include <cstdint>

namespace plos::net {

/// Message direction over the star topology.
enum class Direction : std::uint32_t {
  kDownlink = 0,  ///< server -> device
  kUplink = 1,    ///< device -> server
};

/// Fault probabilities and policy knobs. All probabilities are per-draw:
/// drop/corrupt per message *attempt*, offline/straggler per (round,
/// device).
struct FaultSpec {
  double drop_probability = 0.0;      ///< message attempt lost in transit
  double corrupt_probability = 0.0;   ///< delivered attempt fails its CRC
  double offline_probability = 0.0;   ///< device absent for a whole round
  double straggler_probability = 0.0; ///< device straggles this round
  /// Compute + link time multiplier applied to a straggling device's round.
  double straggler_slowdown = 4.0;
  /// Simulated-seconds budget the server waits for devices each round;
  /// 0 disables the deadline (stragglers are waited for). When set,
  /// straggling devices miss the round: the server proceeds without their
  /// upload and the round's device term is capped at the deadline.
  double round_deadline_s = 0.0;
  /// Extra transmission attempts after the first, per message. Each retry
  /// is charged to the ledgers and adds retry_backoff_s of device wait.
  int max_retries = 2;
  double retry_backoff_s = 0.05;
  /// Seeded jitter on the retry backoff, as a fraction of retry_backoff_s:
  /// attempt `a` waits retry_backoff_s * (1 + retry_jitter * (2u - 1))
  /// where u in [0, 1) is a pure counter-based draw keyed by the attempt.
  /// Desynchronizes retry storms (a burst of drops would otherwise make
  /// every device re-fire on the same simulated tick and land together on
  /// a round deadline). 0 disables jitter exactly (multiplier == 1.0);
  /// must be in [0, 1] so the backoff never goes negative.
  double retry_jitter = 0.0;
  std::uint64_t seed = 0;

  /// True when any fault can actually fire (deadline/slowdown alone do
  /// nothing without a straggler probability).
  bool any_faults() const {
    return drop_probability > 0.0 || corrupt_probability > 0.0 ||
           offline_probability > 0.0 || straggler_probability > 0.0;
  }
};

/// Pure, stateless view over a FaultSpec: all methods are const, thread-safe
/// and reproducible (see file comment for the keying).
class FaultModel {
 public:
  /// Inert model: no faults, multiplier exactly 1.0.
  FaultModel() = default;

  explicit FaultModel(const FaultSpec& spec);

  bool enabled() const { return enabled_; }
  const FaultSpec& spec() const { return spec_; }

  /// Device is fully absent this round: receives nothing, sends nothing.
  bool offline(std::uint64_t round, std::size_t device) const;

  /// Device straggles this round (compute/link scaled by
  /// straggler_slowdown).
  bool straggler(std::uint64_t round, std::size_t device) const;

  /// Straggler with an active round deadline: the server will not wait, the
  /// device's upload is skipped. False whenever round_deadline_s == 0.
  bool misses_deadline(std::uint64_t round, std::size_t device) const;

  /// 1.0, or straggler_slowdown when the device straggles this round.
  /// Exactly 1.0 when disabled, so multiplying by it is a bitwise identity.
  double time_multiplier(std::uint64_t round, std::size_t device) const;

  /// Message attempt `attempt` (0-based) is lost in transit.
  bool drop(std::uint64_t round, std::size_t device, Direction direction,
            int attempt) const;

  /// Delivered attempt carries a bit error (to be caught by the CRC).
  bool corrupt(std::uint64_t round, std::size_t device, Direction direction,
               int attempt) const;

  /// Which bit of an `num_bits`-bit frame the corruption flips; only
  /// meaningful when corrupt(...) fired. num_bits must be > 0.
  std::size_t corrupt_bit(std::uint64_t round, std::size_t device,
                          Direction direction, int attempt,
                          std::size_t num_bits) const;

  /// Seeded multiplicative jitter on the retry backoff of message attempt
  /// `attempt` (>= 1): uniform in [1 - retry_jitter, 1 + retry_jitter),
  /// exactly 1.0 when retry_jitter == 0 or the model is disabled — so the
  /// jitter-free timing path is bitwise unchanged.
  double retry_backoff_multiplier(std::uint64_t round, std::size_t device,
                                  Direction direction, int attempt) const;

 private:
  /// Uniform in [0, 1) from the counter-based key; `kind` separates the
  /// independent draw families (offline, straggler, drop, ...).
  double uniform(std::uint64_t kind, std::uint64_t round, std::size_t device,
                 std::uint64_t direction, std::uint64_t attempt) const;

  FaultSpec spec_;
  bool enabled_ = false;
};

/// The counter-based uniform draw underlying every FaultModel decision,
/// exposed for other deterministic timing models (the async engine's
/// latency jitter). Chains (seed, kind, round, device, direction, attempt)
/// through a splitmix64 finalizer and returns a uniform in [0, 1) with
/// full 53-bit resolution. Draw kinds 0x01-0x06 are reserved by FaultModel;
/// external callers should key their families from 0x10 upward.
double counter_uniform(std::uint64_t seed, std::uint64_t kind,
                       std::uint64_t round, std::uint64_t device,
                       std::uint64_t direction, std::uint64_t attempt);

/// Accumulated fault/retry counters (one struct per SimNetwork; aggregate,
/// order-independent integer totals so they meet the determinism contract).
struct FaultCounters {
  std::size_t downlink_dropped = 0;   ///< lost server->device attempts
  std::size_t uplink_dropped = 0;     ///< lost device->server attempts
  std::size_t downlink_corrupted = 0; ///< CRC-rejected server->device
  std::size_t uplink_corrupted = 0;   ///< CRC-rejected device->server
  std::size_t retries = 0;            ///< attempts beyond the first
  std::size_t failed_messages = 0;    ///< undelivered after all retries
};

}  // namespace plos::net
