#include "net/event_queue.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace plos::net {

bool event_before(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.round != b.round) return a.round < b.round;
  if (a.device != b.device) return a.device < b.device;
  return static_cast<std::uint32_t>(a.kind) <
         static_cast<std::uint32_t>(b.kind);
}

void EventQueue::push(const Event& event) {
  PLOS_CHECK(std::isfinite(event.time) && event.time >= 0.0,
             "EventQueue: event time must be finite and non-negative, got "
                 << event.time);
  heap_.push(event);
}

const Event& EventQueue::top() const {
  PLOS_CHECK(!heap_.empty(), "EventQueue: top() on empty queue");
  return heap_.top();
}

Event EventQueue::pop() {
  PLOS_CHECK(!heap_.empty(), "EventQueue: pop() on empty queue");
  const Event event = heap_.top();
  heap_.pop();
  return event;
}

}  // namespace plos::net
