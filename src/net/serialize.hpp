// Binary message serialization.
//
// The distributed PLOS evaluation charges every transmitted byte to the
// communication budget (paper Fig. 13), so model parameters are serialized
// into real wire-format buffers rather than estimated: a message costs
// exactly what its encoding occupies. Little-endian fixed-width encoding,
// length-prefixed vectors.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace plos::net {

class Serializer {
 public:
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_f64(double v);
  void write_vector(std::span<const double> v);  ///< u64 length + payload

  const std::vector<std::uint8_t>& buffer() const { return buffer_; }
  std::size_t size_bytes() const { return buffer_.size(); }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Reads values back in write order; throws PreconditionError on underflow.
class Deserializer {
 public:
  explicit Deserializer(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint32_t read_u32();
  std::uint64_t read_u64();
  double read_f64();
  std::vector<double> read_vector();

  std::size_t remaining() const { return data_.size() - offset_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
};

// ---- CRC32-checked wire frames -------------------------------------------
//
// The fault-injection path flips real bits in transit (see net/fault.hpp),
// so corrupted uploads must be *detected*, not assumed away. Messages sent
// over a faulty link are wrapped in a fixed 16-byte frame header
//
//   u32 magic 'PLF\x01' | u32 version | u32 payload length | u32 CRC32
//
// and the receiver validates magic, version, length, and checksum before
// decoding; any mismatch is treated as a dropped message (the sender
// retries). CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) detects all
// single-bit and burst-<=32-bit errors, which covers the simulator's
// single-bit-flip corruption model exactly.
//
// Versioning: fault-free runs transmit *unframed* payloads (frame version 1
// is only negotiated when a FaultModel is attached), so the byte ledgers —
// and the checked-in goldens that pin them — are unchanged for fault-free
// configurations.

inline constexpr std::uint32_t kFrameMagic = 0x01464C50u;  // "PLF\x01" LE
inline constexpr std::uint32_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;

/// CRC32 (IEEE) of `data`.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Wraps `payload` in a frame header (magic, version, length, CRC32).
std::vector<std::uint8_t> frame_message(std::span<const std::uint8_t> payload);

/// Validates a frame and returns a view of its payload, or nullopt when the
/// magic/version/length/CRC check fails (corrupt or truncated frame). The
/// view aliases `frame`, which must outlive it.
std::optional<std::span<const std::uint8_t>> unframe_message(
    std::span<const std::uint8_t> frame);

}  // namespace plos::net
