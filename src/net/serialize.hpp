// Binary message serialization.
//
// The distributed PLOS evaluation charges every transmitted byte to the
// communication budget (paper Fig. 13), so model parameters are serialized
// into real wire-format buffers rather than estimated: a message costs
// exactly what its encoding occupies. Little-endian fixed-width encoding,
// length-prefixed vectors.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace plos::net {

class Serializer {
 public:
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_f64(double v);
  void write_vector(std::span<const double> v);  ///< u64 length + payload

  const std::vector<std::uint8_t>& buffer() const { return buffer_; }
  std::size_t size_bytes() const { return buffer_.size(); }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Reads values back in write order; throws PreconditionError on underflow.
class Deserializer {
 public:
  explicit Deserializer(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint32_t read_u32();
  std::uint64_t read_u64();
  double read_f64();
  std::vector<double> read_vector();

  std::size_t remaining() const { return data_.size() - offset_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
};

}  // namespace plos::net
