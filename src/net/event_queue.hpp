// Deterministic event queue for the asynchronous round engine.
//
// The async ADMM server (src/async) is event-driven: device uploads
// "arrive" at deterministic virtual completion times on the simulated
// clock, and the server cuts a round when a quorum of them is in. For the
// bitwise-determinism contract (DESIGN.md §8) to survive, the order in
// which those events are observed must be a pure function of their
// contents — never of insertion order, heap layout, or thread timing.
//
// Events are therefore totally ordered by the lexicographic key
//
//     (sim_time, round, device_id, event_kind)
//
// with kUpload < kDeadline so that an upload landing exactly on a deadline
// tick still counts as on time. Because the order is total (no two distinct
// events compare equal: a device emits at most one upload and one deadline
// marker per round), the pop sequence is independent of the order events
// were pushed in, which is what makes the queue safe to fill from values
// computed by a worker pool and drain on the aggregation thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

namespace plos::net {

/// What an event queue entry announces.
enum class EventKind : std::uint32_t {
  kUpload = 0,    ///< a device upload completed at `time`
  kDeadline = 1,  ///< the server stops waiting for this device at `time`
};

/// One scheduled occurrence on the simulated clock.
struct Event {
  double time = 0.0;          ///< virtual seconds since round start
  std::uint64_t round = 0;    ///< ADMM round the event belongs to
  std::uint64_t device = 0;   ///< originating device id
  EventKind kind = EventKind::kUpload;
};

/// Strict lexicographic (time, round, device, kind) order; a total order
/// over the events of one round because (device, kind) pairs are unique.
bool event_before(const Event& a, const Event& b);

/// Min-queue over Event under event_before. Push in any order; pop always
/// yields the globally smallest remaining event.
class EventQueue {
 public:
  /// Inserts an event. Time must be finite and non-negative (enforced):
  /// a NaN would silently poison the total order.
  void push(const Event& event);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Smallest remaining event; queue must be non-empty.
  const Event& top() const;

  /// Removes and returns the smallest remaining event; must be non-empty.
  Event pop();

 private:
  struct After {
    bool operator()(const Event& a, const Event& b) const {
      // std::priority_queue is a max-heap; invert to pop the minimum.
      return event_before(b, a);
    }
  };
  std::priority_queue<Event, std::vector<Event>, After> heap_;
};

}  // namespace plos::net
