#include "net/fault.hpp"

#include "common/assert.hpp"

namespace plos::net {

namespace {

// Draw families: distinct constants keep e.g. the offline draw of
// (round, device) independent from its straggler draw.
constexpr std::uint64_t kOfflineDraw = 0x01;
constexpr std::uint64_t kStragglerDraw = 0x02;
constexpr std::uint64_t kDropDraw = 0x03;
constexpr std::uint64_t kCorruptDraw = 0x04;
constexpr std::uint64_t kCorruptBitDraw = 0x05;
constexpr std::uint64_t kRetryJitterDraw = 0x06;

// splitmix64 finalizer: full-avalanche 64-bit mix.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Chain the key words through the mixer; each word is absorbed after a full
// avalanche of the previous ones, so flipping any single input bit
// decorrelates the output.
std::uint64_t hash_key(std::uint64_t seed, std::uint64_t kind,
                       std::uint64_t round, std::uint64_t device,
                       std::uint64_t direction, std::uint64_t attempt) {
  std::uint64_t h = mix64(seed);
  h = mix64(h ^ kind);
  h = mix64(h ^ round);
  h = mix64(h ^ device);
  h = mix64(h ^ direction);
  h = mix64(h ^ attempt);
  return h;
}

}  // namespace

FaultModel::FaultModel(const FaultSpec& spec)
    : spec_(spec), enabled_(spec.any_faults()) {
  const auto valid_probability = [](double p) { return p >= 0.0 && p <= 1.0; };
  PLOS_CHECK(valid_probability(spec.drop_probability),
             "FaultModel: drop_probability outside [0, 1]");
  PLOS_CHECK(valid_probability(spec.corrupt_probability),
             "FaultModel: corrupt_probability outside [0, 1]");
  PLOS_CHECK(valid_probability(spec.offline_probability),
             "FaultModel: offline_probability outside [0, 1]");
  PLOS_CHECK(valid_probability(spec.straggler_probability),
             "FaultModel: straggler_probability outside [0, 1]");
  PLOS_CHECK(spec.straggler_slowdown >= 1.0,
             "FaultModel: straggler_slowdown must be >= 1");
  PLOS_CHECK(spec.round_deadline_s >= 0.0,
             "FaultModel: round_deadline_s must be >= 0");
  PLOS_CHECK(spec.max_retries >= 0, "FaultModel: max_retries must be >= 0");
  PLOS_CHECK(spec.retry_backoff_s >= 0.0,
             "FaultModel: retry_backoff_s must be >= 0");
  PLOS_CHECK(spec.retry_jitter >= 0.0 && spec.retry_jitter <= 1.0,
             "FaultModel: retry_jitter outside [0, 1]");
}

double counter_uniform(std::uint64_t seed, std::uint64_t kind,
                       std::uint64_t round, std::uint64_t device,
                       std::uint64_t direction, std::uint64_t attempt) {
  const std::uint64_t h =
      hash_key(seed, kind, round, device, direction, attempt);
  // Top 53 bits -> [0, 1) with full double resolution.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double FaultModel::uniform(std::uint64_t kind, std::uint64_t round,
                           std::size_t device, std::uint64_t direction,
                           std::uint64_t attempt) const {
  return counter_uniform(spec_.seed, kind, round,
                         static_cast<std::uint64_t>(device), direction,
                         attempt);
}

bool FaultModel::offline(std::uint64_t round, std::size_t device) const {
  if (!enabled_ || spec_.offline_probability <= 0.0) return false;
  return uniform(kOfflineDraw, round, device, 0, 0) <
         spec_.offline_probability;
}

bool FaultModel::straggler(std::uint64_t round, std::size_t device) const {
  if (!enabled_ || spec_.straggler_probability <= 0.0) return false;
  return uniform(kStragglerDraw, round, device, 0, 0) <
         spec_.straggler_probability;
}

bool FaultModel::misses_deadline(std::uint64_t round,
                                 std::size_t device) const {
  return spec_.round_deadline_s > 0.0 && straggler(round, device);
}

double FaultModel::time_multiplier(std::uint64_t round,
                                   std::size_t device) const {
  return straggler(round, device) ? spec_.straggler_slowdown : 1.0;
}

bool FaultModel::drop(std::uint64_t round, std::size_t device,
                      Direction direction, int attempt) const {
  if (!enabled_ || spec_.drop_probability <= 0.0) return false;
  return uniform(kDropDraw, round, device,
                 static_cast<std::uint64_t>(direction),
                 static_cast<std::uint64_t>(attempt)) <
         spec_.drop_probability;
}

bool FaultModel::corrupt(std::uint64_t round, std::size_t device,
                         Direction direction, int attempt) const {
  if (!enabled_ || spec_.corrupt_probability <= 0.0) return false;
  return uniform(kCorruptDraw, round, device,
                 static_cast<std::uint64_t>(direction),
                 static_cast<std::uint64_t>(attempt)) <
         spec_.corrupt_probability;
}

std::size_t FaultModel::corrupt_bit(std::uint64_t round, std::size_t device,
                                    Direction direction, int attempt,
                                    std::size_t num_bits) const {
  PLOS_CHECK(num_bits > 0, "FaultModel: corrupt_bit on empty frame");
  const std::uint64_t h = hash_key(spec_.seed, kCorruptBitDraw, round,
                                   static_cast<std::uint64_t>(device),
                                   static_cast<std::uint64_t>(direction),
                                   static_cast<std::uint64_t>(attempt));
  return static_cast<std::size_t>(h % num_bits);
}

double FaultModel::retry_backoff_multiplier(std::uint64_t round,
                                            std::size_t device,
                                            Direction direction,
                                            int attempt) const {
  if (!enabled_ || spec_.retry_jitter <= 0.0) return 1.0;
  const double u = uniform(kRetryJitterDraw, round, device,
                           static_cast<std::uint64_t>(direction),
                           static_cast<std::uint64_t>(attempt));
  return 1.0 + spec_.retry_jitter * (2.0 * u - 1.0);
}

}  // namespace plos::net
