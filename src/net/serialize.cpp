#include "net/serialize.hpp"

#include <cstring>

#include "common/assert.hpp"

namespace plos::net {

namespace {

template <typename T>
void append_raw(std::vector<std::uint8_t>& buffer, T value) {
  // Little-endian on all supported targets; memcpy avoids aliasing UB.
  std::uint8_t bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  buffer.insert(buffer.end(), bytes, bytes + sizeof(T));
}

template <typename T>
T read_raw(std::span<const std::uint8_t> data, std::size_t& offset) {
  PLOS_CHECK(offset + sizeof(T) <= data.size(),
             "Deserializer: buffer underflow");
  T value;
  std::memcpy(&value, data.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

}  // namespace

void Serializer::write_u32(std::uint32_t v) { append_raw(buffer_, v); }
void Serializer::write_u64(std::uint64_t v) { append_raw(buffer_, v); }
void Serializer::write_f64(double v) { append_raw(buffer_, v); }

void Serializer::write_vector(std::span<const double> v) {
  write_u64(v.size());
  for (double x : v) write_f64(x);
}

std::uint32_t Deserializer::read_u32() {
  return read_raw<std::uint32_t>(data_, offset_);
}
std::uint64_t Deserializer::read_u64() {
  return read_raw<std::uint64_t>(data_, offset_);
}
double Deserializer::read_f64() { return read_raw<double>(data_, offset_); }

std::vector<double> Deserializer::read_vector() {
  const std::uint64_t n = read_u64();
  PLOS_CHECK(n * sizeof(double) <= remaining(),
             "Deserializer: vector length exceeds buffer");
  std::vector<double> out(static_cast<std::size_t>(n));
  for (auto& x : out) x = read_f64();
  return out;
}

}  // namespace plos::net
