#include "net/serialize.hpp"

#include <cstring>

#include "common/assert.hpp"

namespace plos::net {

namespace {

template <typename T>
void append_raw(std::vector<std::uint8_t>& buffer, T value) {
  // Little-endian on all supported targets; memcpy avoids aliasing UB.
  std::uint8_t bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  buffer.insert(buffer.end(), bytes, bytes + sizeof(T));
}

template <typename T>
T read_raw(std::span<const std::uint8_t> data, std::size_t& offset) {
  PLOS_CHECK(offset + sizeof(T) <= data.size(),
             "Deserializer: buffer underflow");
  T value;
  std::memcpy(&value, data.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

}  // namespace

void Serializer::write_u32(std::uint32_t v) { append_raw(buffer_, v); }
void Serializer::write_u64(std::uint64_t v) { append_raw(buffer_, v); }
void Serializer::write_f64(double v) { append_raw(buffer_, v); }

void Serializer::write_vector(std::span<const double> v) {
  write_u64(v.size());
  for (double x : v) write_f64(x);
}

std::uint32_t Deserializer::read_u32() {
  return read_raw<std::uint32_t>(data_, offset_);
}
std::uint64_t Deserializer::read_u64() {
  return read_raw<std::uint64_t>(data_, offset_);
}
double Deserializer::read_f64() { return read_raw<double>(data_, offset_); }

std::vector<double> Deserializer::read_vector() {
  const std::uint64_t n = read_u64();
  // Divide instead of multiplying: n * sizeof(double) can wrap for a
  // corrupt length prefix and sneak past the bound.
  PLOS_CHECK(n <= remaining() / sizeof(double),
             "Deserializer: vector length " << n << " exceeds "
                                            << remaining() << " byte buffer");
  std::vector<double> out(static_cast<std::size_t>(n));
  for (auto& x : out) x = read_f64();
  return out;
}

namespace {

const std::uint32_t* crc32_table() {
  static const std::uint32_t* table = [] {
    auto* t = new std::uint32_t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::uint32_t load_u32(std::span<const std::uint8_t> data,
                       std::size_t offset) {
  std::uint32_t v;
  std::memcpy(&v, data.data() + offset, sizeof(v));
  return v;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  const std::uint32_t* table = crc32_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> frame_message(
    std::span<const std::uint8_t> payload) {
  PLOS_CHECK(payload.size() <= 0xFFFFFFFFull,
             "frame_message: payload exceeds u32 length field");
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  append_raw(frame, kFrameMagic);
  append_raw(frame, kFrameVersion);
  append_raw(frame, static_cast<std::uint32_t>(payload.size()));
  append_raw(frame, crc32(payload));
  frame.insert(frame.end(), payload.begin(), payload.end());
  // Checked-build postcondition: the frame we just built must decode to the
  // same payload — length field, magic, and CRC all agree (O(n) re-CRC).
  PLOS_DCHECK(frame.size() == kFrameHeaderBytes + payload.size(),
              "frame_message: header/payload length mismatch");
  PLOS_DCHECK(unframe_message(frame).has_value(),
              "frame_message: emitted frame fails its own CRC/length check");
  return frame;
}

std::optional<std::span<const std::uint8_t>> unframe_message(
    std::span<const std::uint8_t> frame) {
  if (frame.size() < kFrameHeaderBytes) return std::nullopt;
  if (load_u32(frame, 0) != kFrameMagic) return std::nullopt;
  if (load_u32(frame, 4) != kFrameVersion) return std::nullopt;
  const std::uint32_t length = load_u32(frame, 8);
  if (frame.size() != kFrameHeaderBytes + length) return std::nullopt;
  const auto payload = frame.subspan(kFrameHeaderBytes, length);
  if (crc32(payload) != load_u32(frame, 12)) return std::nullopt;
  return payload;
}

}  // namespace plos::net
