// Deterministic star-topology network/device simulator.
//
// Substitute for the paper's §VI-E testbed (Nexus 5 phones + a 3.4 GHz
// server): the scaling experiments measure *shape* — centralized solve time
// growing superlinearly in the number of users while the distributed
// per-device time stays flat, and per-user message volume independent of
// population size. The simulator provides:
//
//   * byte-exact accounting of every message (callers pass real serialized
//     buffers sizes);
//   * a latency + bandwidth link model per device;
//   * a CPU-speed factor per device (phone vs server) applied to *measured*
//     compute times of the real local solver;
//   * an energy model (compute power draw + per-byte radio cost);
//   * synchronous-round wall-clock semantics: devices compute and
//     communicate in parallel, so a round costs
//     server_compute + max_t(downlink_t + device_compute_t + uplink_t)
//     (max over devices, not a sum — matching real concurrent execution);
//   * thread safety: the distributed trainer drives devices from a thread
//     pool, so every accounting entry point and reader serializes on an
//     internal mutex. Byte and message ledgers are integer-exact, which
//     makes the totals independent of the interleaving of concurrent
//     accounting calls; per-device fields are only ever touched by the one
//     worker simulating that device within a round.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "common/assert.hpp"

namespace plos::net {

struct DeviceProfile {
  /// Device-seconds per server-second: >1 means slower than the reference
  /// machine the solver actually runs on (phone ≈ 8-15x a desktop core).
  double cpu_slowdown = 10.0;
  double compute_power_watts = 2.0;   ///< CPU power draw while solving
  double tx_energy_j_per_kb = 0.008;  ///< radio transmit cost
  double rx_energy_j_per_kb = 0.005;  ///< radio receive cost
};

struct LinkProfile {
  double latency_s = 0.02;        ///< one-way propagation delay
  double bandwidth_kbps = 2000.0; ///< application-layer throughput
};

/// Accumulated per-device counters.
struct DeviceMetrics {
  std::size_t bytes_sent = 0;
  std::size_t bytes_received = 0;
  std::size_t messages_sent = 0;
  std::size_t messages_received = 0;
  double compute_seconds = 0.0;  ///< device-scaled compute time
  double energy_joules = 0.0;
};

struct ServerMetrics {
  std::size_t bytes_sent = 0;
  std::size_t bytes_received = 0;
  double compute_seconds = 0.0;
};

/// Star topology: one server, N devices, synchronous rounds.
class SimNetwork {
 public:
  SimNetwork(std::size_t num_devices, DeviceProfile device_profile,
             LinkProfile link_profile);

  std::size_t num_devices() const { return devices_.size(); }

  // -- accounting entry points (called by the distributed trainer) --------

  /// Server -> device message of `bytes` bytes in the current round.
  void send_to_device(std::size_t device, std::size_t bytes);

  /// Device -> server message of `bytes` bytes in the current round.
  void send_to_server(std::size_t device, std::size_t bytes);

  /// Charge `measured_seconds` of reference-machine compute to a device;
  /// the device's cpu_slowdown converts it to simulated device time.
  void account_device_compute(std::size_t device, double measured_seconds);

  /// Charge compute to the server (no scaling).
  void account_server_compute(double measured_seconds);

  /// Close the current synchronous round: simulated wall-clock advances by
  /// the server compute plus the slowest device's compute+communication.
  void end_round();

  // -- results -------------------------------------------------------------

  double total_simulated_seconds() const { return simulated_seconds_; }
  std::size_t rounds_completed() const { return rounds_; }
  const DeviceMetrics& device_metrics(std::size_t device) const;
  const ServerMetrics& server_metrics() const { return server_; }

  /// Mean bytes sent+received per device over the whole run.
  double mean_bytes_per_device() const;

  /// Total device energy in joules.
  double total_device_energy() const;

 private:
  double transfer_seconds(std::size_t bytes) const;

  /// Guards all ledgers against concurrent accounting from device workers.
  mutable std::mutex mutex_;
  DeviceProfile device_profile_;
  LinkProfile link_profile_;
  std::vector<DeviceMetrics> devices_;
  ServerMetrics server_;

  // Per-round scratch: compute + comm time accrued by each device and the
  // server within the open round.
  std::vector<double> round_device_seconds_;
  double round_server_seconds_ = 0.0;
  double simulated_seconds_ = 0.0;
  std::size_t rounds_ = 0;
};

}  // namespace plos::net
