// Deterministic star-topology network/device simulator.
//
// Substitute for the paper's §VI-E testbed (Nexus 5 phones + a 3.4 GHz
// server): the scaling experiments measure *shape* — centralized solve time
// growing superlinearly in the number of users while the distributed
// per-device time stays flat, and per-user message volume independent of
// population size. The simulator provides:
//
//   * byte-exact accounting of every message (callers pass real serialized
//     buffers sizes);
//   * a latency + bandwidth link model per device;
//   * a CPU-speed factor per device (phone vs server) applied to *measured*
//     compute times of the real local solver;
//   * an energy model (compute power draw + per-byte radio cost);
//   * synchronous-round wall-clock semantics: devices compute and
//     communicate in parallel, so a round costs
//     server_compute + max_t(downlink_t + device_compute_t + uplink_t)
//     (max over devices, not a sum — matching real concurrent execution);
//   * thread safety: the distributed trainer drives devices from a thread
//     pool, so every accounting entry point and reader serializes on an
//     internal mutex. Byte and message ledgers are integer-exact, which
//     makes the totals independent of the interleaving of concurrent
//     accounting calls; per-device fields are only ever touched by the one
//     worker simulating that device within a round;
//   * fault injection (optional, see net/fault.hpp): an attached FaultModel
//     makes transmit_to_device/transmit_to_server run a bounded
//     retry/backoff loop over CRC32-checked frames — every attempt is
//     charged to the ledgers, drops and CRC rejections are counted, and
//     straggling devices have their compute/link time scaled. All fault
//     decisions are counter-based (keyed on the round counter), so ledgers
//     and outcomes stay bitwise-deterministic at any thread count. Without
//     a fault model the accounting is bit-for-bit the pre-fault behavior.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "net/fault.hpp"
#include "obs/sketch.hpp"

namespace plos::net {

struct DeviceProfile {
  /// Device-seconds per server-second: >1 means slower than the reference
  /// machine the solver actually runs on (phone ≈ 8-15x a desktop core).
  double cpu_slowdown = 10.0;
  double compute_power_watts = 2.0;   ///< CPU power draw while solving
  double tx_energy_j_per_kb = 0.008;  ///< radio transmit cost
  double rx_energy_j_per_kb = 0.005;  ///< radio receive cost
};

struct LinkProfile {
  double latency_s = 0.02;        ///< one-way propagation delay
  double bandwidth_kbps = 2000.0; ///< application-layer throughput
};

/// Accumulated per-device counters.
struct DeviceMetrics {
  std::size_t bytes_sent = 0;
  std::size_t bytes_received = 0;
  std::size_t messages_sent = 0;
  std::size_t messages_received = 0;
  double compute_seconds = 0.0;  ///< device-scaled compute time
  double energy_joules = 0.0;
};

struct ServerMetrics {
  std::size_t bytes_sent = 0;
  std::size_t bytes_received = 0;
  double compute_seconds = 0.0;
};

/// Star topology: one server, N devices, synchronous rounds.
class SimNetwork {
 public:
  SimNetwork(std::size_t num_devices, DeviceProfile device_profile,
             LinkProfile link_profile);

  std::size_t num_devices() const { return devices_.size(); }

  // -- heterogeneous links -------------------------------------------------

  /// Overrides the link profile of one device (default: the constructor's
  /// profile for every device). Needed by the straggler model and any
  /// heterogeneous-fleet experiment; set before training starts.
  void set_device_link(std::size_t device, LinkProfile profile);

  const LinkProfile& device_link(std::size_t device) const;

  /// Overrides the device profile of one device (default: the
  /// constructor's profile for every device). Chronic stragglers — devices
  /// that are persistently slower than the fleet, not just unlucky in one
  /// round — are modeled as per-device cpu_slowdown overrides; compute and
  /// energy ledger charges use the override too. Set before training
  /// starts.
  void set_device_profile(std::size_t device, DeviceProfile profile);

  const DeviceProfile& device_profile(std::size_t device) const;

  // -- fault injection -----------------------------------------------------

  /// Attaches a fault model; transmit_* consult it and the distributed
  /// trainer reads it back for offline/deadline scheduling. Attach before
  /// training starts.
  void set_fault_model(FaultModel model) { fault_ = model; }

  const FaultModel& fault_model() const { return fault_; }

  /// Index of the currently open round (== rounds_completed()); the key the
  /// fault schedule is evaluated against.
  std::uint64_t current_round() const { return rounds_; }

  /// Snapshot of the fault/retry counters.
  FaultCounters fault_counters() const;

  /// Mutually consistent traffic totals taken under one lock; the round
  /// journal computes per-iteration deltas from consecutive snapshots.
  /// All fields are integer-exact ledgers, so snapshots taken at round
  /// boundaries are bitwise thread-count-independent.
  struct TrafficSnapshot {
    std::uint64_t bytes_to_devices = 0;  ///< server-side bytes sent
    std::uint64_t bytes_to_server = 0;   ///< server-side bytes received
    std::uint64_t messages_dropped = 0;  ///< downlink + uplink drops
    std::uint64_t retries = 0;           ///< attempts beyond the first
  };
  TrafficSnapshot traffic_snapshot() const;

  /// Copy of the cumulative per-message link-latency sketch (one sample —
  /// the straggler-scaled transfer window — per on-air message charged to
  /// the ledgers; lost-in-transit attempts are not samples). Counts-only
  /// and guarded by the same lock as the byte ledgers, so snapshots at
  /// round boundaries are bitwise thread-count-independent; the journal
  /// diffs consecutive snapshots for per-round latency quantiles.
  obs::QuantileSketch latency_sketch() const;

  /// Per-attempt detail for the flight recorder (see set_attempt_log).
  /// `result` matches obs::AttemptResult: 0 delivered, 1 dropped in
  /// transit, 2 CRC-rejected at the receiver.
  struct TransmitAttempt {
    int result = 0;
    double seconds = 0.0;  ///< backoff + transfer window of this attempt
  };

  struct TransmitOutcome {
    bool delivered = true;
    int attempts = 1;
    /// Deterministic virtual seconds the exchange occupied on the device's
    /// clock: per-attempt transfer windows plus (jittered) retry backoff,
    /// exactly what the round ledger was charged. Pure function of
    /// (frame size, round, device, direction) through the fault schedule,
    /// so the async engine can build event times from it.
    double seconds = 0.0;
    /// One entry per attempt when attempt logging is on (bounded by the
    /// fault spec's max_retries + 1); empty otherwise.
    std::vector<TransmitAttempt> attempt_log;
  };

  /// Enables per-attempt logs on transmit outcomes (the flight recorder's
  /// retry/drop/corruption causes). Off by default: the log allocates per
  /// message, and only `plos_run --flight-out` consumes it. Never affects
  /// ledgers or outcome seconds.
  void set_attempt_log(bool enabled) { attempt_log_ = enabled; }

  /// Fault-aware server -> device transmission of a CRC32 frame: retries up
  /// to the fault spec's max_retries on drop or CRC rejection, charging
  /// every attempt (sender bytes always; receiver bytes/energy only for
  /// attempts that arrive) plus retry backoff to the device's round time.
  /// Corruption flips a schedule-chosen bit in a copy of the frame and runs
  /// the real unframe/CRC check. With no fault model attached this is a
  /// plain send_to_device of frame.size() bytes.
  TransmitOutcome transmit_to_device(std::size_t device,
                                     std::span<const std::uint8_t> frame);

  /// Fault-aware device -> server transmission; mirror of
  /// transmit_to_device.
  TransmitOutcome transmit_to_server(std::size_t device,
                                     std::span<const std::uint8_t> frame);

  // -- accounting entry points (called by the distributed trainer) --------

  /// Server -> device message of `bytes` bytes in the current round.
  void send_to_device(std::size_t device, std::size_t bytes);

  /// Device -> server message of `bytes` bytes in the current round.
  void send_to_server(std::size_t device, std::size_t bytes);

  /// Charge `measured_seconds` of reference-machine compute to a device;
  /// the device's cpu_slowdown converts it to simulated device time.
  void account_device_compute(std::size_t device, double measured_seconds);

  /// Charge compute to the server (no scaling).
  void account_server_compute(double measured_seconds);

  /// Close the current synchronous round: simulated wall-clock advances by
  /// the server compute plus the slowest device's compute+communication.
  /// When a fault model with a round deadline is attached, the device term
  /// is capped at the deadline (the server stops waiting for stragglers).
  void end_round();

  /// Deterministic one-way link time for `bytes` over the device's link:
  /// latency + serialization delay. Public so the async engine's virtual
  /// completion-time model charges exactly what the ledger charges.
  double transfer_seconds_for(std::size_t device, std::size_t bytes) const;

  /// Fleet-wide device hardware profile (CPU slowdown, energy model).
  /// The constructor's fleet-wide profile (per-device overrides excluded).
  const DeviceProfile& device_profile() const { return device_profile_; }

  // -- results -------------------------------------------------------------

  double total_simulated_seconds() const { return simulated_seconds_; }
  std::size_t rounds_completed() const { return rounds_; }
  const DeviceMetrics& device_metrics(std::size_t device) const;
  const ServerMetrics& server_metrics() const { return server_; }

  /// Mean bytes sent+received per device over the whole run.
  double mean_bytes_per_device() const;

  /// Total device energy in joules.
  double total_device_energy() const;

 private:
  double transfer_seconds(std::size_t device, std::size_t bytes) const;

  /// Shared body of transmit_to_device / transmit_to_server.
  TransmitOutcome transmit(std::size_t device, Direction direction,
                           std::span<const std::uint8_t> frame);

  /// Charges one on-air message to the ledgers (both ends). Caller holds
  /// mutex_; `multiplier` is the straggler time scale for this round.
  void charge_message(std::size_t device, Direction direction,
                      std::size_t bytes, double multiplier);

  /// Guards all ledgers against concurrent accounting from device workers.
  mutable std::mutex mutex_;
  DeviceProfile device_profile_;
  LinkProfile link_profile_;
  std::vector<DeviceProfile> device_profiles_;  ///< per-device overrides
  std::vector<LinkProfile> device_links_;       ///< per-device overrides
  FaultModel fault_;
  FaultCounters fault_counters_;
  std::vector<DeviceMetrics> devices_;
  ServerMetrics server_;
  obs::QuantileSketch latency_sketch_;
  bool attempt_log_ = false;

  // Per-round scratch: compute + comm time accrued by each device and the
  // server within the open round.
  std::vector<double> round_device_seconds_;
  double round_server_seconds_ = 0.0;
  double simulated_seconds_ = 0.0;
  std::size_t rounds_ = 0;
};

}  // namespace plos::net
