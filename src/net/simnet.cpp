#include "net/simnet.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace plos::net {

namespace {

// The registry mirrors aggregate traffic/energy so metrics snapshots carry
// the communication budget without walking SimNetwork instances. Per-device
// splits stay in DeviceMetrics.
struct SimnetInstruments {
  obs::Counter& bytes_to_device;
  obs::Counter& bytes_to_server;
  obs::Counter& messages_to_device;
  obs::Counter& messages_to_server;
  obs::Counter& device_energy_joules;
  obs::Counter& rounds;
};

SimnetInstruments& simnet_instruments() {
  static SimnetInstruments* instruments = new SimnetInstruments{
      obs::metrics().counter("simnet.bytes_to_device"),
      obs::metrics().counter("simnet.bytes_to_server"),
      obs::metrics().counter("simnet.messages_to_device"),
      obs::metrics().counter("simnet.messages_to_server"),
      obs::metrics().counter("simnet.device_energy_joules"),
      obs::metrics().counter("simnet.rounds"),
  };
  return *instruments;
}

}  // namespace

SimNetwork::SimNetwork(std::size_t num_devices, DeviceProfile device_profile,
                       LinkProfile link_profile)
    : device_profile_(device_profile),
      link_profile_(link_profile),
      devices_(num_devices),
      round_device_seconds_(num_devices, 0.0) {
  PLOS_CHECK(num_devices > 0, "SimNetwork: need at least one device");
  PLOS_CHECK(device_profile.cpu_slowdown > 0.0,
             "SimNetwork: cpu_slowdown must be positive");
  PLOS_CHECK(link_profile.bandwidth_kbps > 0.0,
             "SimNetwork: bandwidth must be positive");
}

double SimNetwork::transfer_seconds(std::size_t bytes) const {
  const double kb = static_cast<double>(bytes) / 1024.0;
  return link_profile_.latency_s + kb * 8.0 / link_profile_.bandwidth_kbps;
}

void SimNetwork::send_to_device(std::size_t device, std::size_t bytes) {
  PLOS_CHECK(device < devices_.size(), "SimNetwork: device out of range");
  const std::lock_guard<std::mutex> lock(mutex_);
  const double kb = static_cast<double>(bytes) / 1024.0;
  server_.bytes_sent += bytes;
  devices_[device].bytes_received += bytes;
  devices_[device].messages_received += 1;
  devices_[device].energy_joules += kb * device_profile_.rx_energy_j_per_kb;
  round_device_seconds_[device] += transfer_seconds(bytes);
  simnet_instruments().bytes_to_device.add(static_cast<double>(bytes));
  simnet_instruments().messages_to_device.increment();
  simnet_instruments().device_energy_joules.add(
      kb * device_profile_.rx_energy_j_per_kb);
}

void SimNetwork::send_to_server(std::size_t device, std::size_t bytes) {
  PLOS_CHECK(device < devices_.size(), "SimNetwork: device out of range");
  const std::lock_guard<std::mutex> lock(mutex_);
  const double kb = static_cast<double>(bytes) / 1024.0;
  server_.bytes_received += bytes;
  devices_[device].bytes_sent += bytes;
  devices_[device].messages_sent += 1;
  devices_[device].energy_joules += kb * device_profile_.tx_energy_j_per_kb;
  round_device_seconds_[device] += transfer_seconds(bytes);
  simnet_instruments().bytes_to_server.add(static_cast<double>(bytes));
  simnet_instruments().messages_to_server.increment();
  simnet_instruments().device_energy_joules.add(
      kb * device_profile_.tx_energy_j_per_kb);
}

void SimNetwork::account_device_compute(std::size_t device,
                                        double measured_seconds) {
  PLOS_CHECK(device < devices_.size(), "SimNetwork: device out of range");
  PLOS_CHECK(measured_seconds >= 0.0, "SimNetwork: negative compute time");
  const std::lock_guard<std::mutex> lock(mutex_);
  const double device_seconds =
      measured_seconds * device_profile_.cpu_slowdown;
  devices_[device].compute_seconds += device_seconds;
  devices_[device].energy_joules +=
      device_seconds * device_profile_.compute_power_watts;
  round_device_seconds_[device] += device_seconds;
  simnet_instruments().device_energy_joules.add(
      device_seconds * device_profile_.compute_power_watts);
}

void SimNetwork::account_server_compute(double measured_seconds) {
  PLOS_CHECK(measured_seconds >= 0.0, "SimNetwork: negative compute time");
  const std::lock_guard<std::mutex> lock(mutex_);
  server_.compute_seconds += measured_seconds;
  round_server_seconds_ += measured_seconds;
}

void SimNetwork::end_round() {
  const std::lock_guard<std::mutex> lock(mutex_);
  const double slowest_device =
      *std::max_element(round_device_seconds_.begin(),
                        round_device_seconds_.end());
  simulated_seconds_ += round_server_seconds_ + slowest_device;
  std::fill(round_device_seconds_.begin(), round_device_seconds_.end(), 0.0);
  round_server_seconds_ = 0.0;
  ++rounds_;
  simnet_instruments().rounds.increment();
}

const DeviceMetrics& SimNetwork::device_metrics(std::size_t device) const {
  PLOS_CHECK(device < devices_.size(), "SimNetwork: device out of range");
  return devices_[device];
}

double SimNetwork::mean_bytes_per_device() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const auto& d : devices_) {
    total += static_cast<double>(d.bytes_sent + d.bytes_received);
  }
  return total / static_cast<double>(devices_.size());
}

double SimNetwork::total_device_energy() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const auto& d : devices_) total += d.energy_joules;
  return total;
}

}  // namespace plos::net
