#include "net/simnet.hpp"

#include <algorithm>

#include "net/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace plos::net {

namespace {

// The registry mirrors aggregate traffic/energy so metrics snapshots carry
// the communication budget without walking SimNetwork instances. Per-device
// splits stay in DeviceMetrics.
struct SimnetInstruments {
  obs::Counter& bytes_to_device;
  obs::Counter& bytes_to_server;
  obs::Counter& messages_to_device;
  obs::Counter& messages_to_server;
  obs::Counter& device_energy_joules;
  obs::Counter& rounds;
  obs::Counter& messages_dropped;
  obs::Counter& messages_corrupted;
  obs::Counter& retries;
  obs::Counter& failed_messages;
};

SimnetInstruments& simnet_instruments() {
  static SimnetInstruments* instruments = new SimnetInstruments{
      obs::metrics().counter("simnet.bytes_to_device"),
      obs::metrics().counter("simnet.bytes_to_server"),
      obs::metrics().counter("simnet.messages_to_device"),
      obs::metrics().counter("simnet.messages_to_server"),
      obs::metrics().counter("simnet.device_energy_joules"),
      obs::metrics().counter("simnet.rounds"),
      obs::metrics().counter("simnet.messages_dropped"),
      obs::metrics().counter("simnet.messages_corrupted"),
      obs::metrics().counter("simnet.retries"),
      obs::metrics().counter("simnet.failed_messages"),
  };
  return *instruments;
}

}  // namespace

SimNetwork::SimNetwork(std::size_t num_devices, DeviceProfile device_profile,
                       LinkProfile link_profile)
    : device_profile_(device_profile),
      link_profile_(link_profile),
      device_profiles_(num_devices, device_profile),
      device_links_(num_devices, link_profile),
      devices_(num_devices),
      round_device_seconds_(num_devices, 0.0) {
  PLOS_CHECK(num_devices > 0, "SimNetwork: need at least one device");
  PLOS_CHECK(device_profile.cpu_slowdown > 0.0,
             "SimNetwork: cpu_slowdown must be positive");
  PLOS_CHECK(link_profile.bandwidth_kbps > 0.0,
             "SimNetwork: bandwidth must be positive");
}

void SimNetwork::set_device_profile(std::size_t device,
                                    DeviceProfile profile) {
  PLOS_CHECK(device < devices_.size(), "SimNetwork: device out of range");
  PLOS_CHECK(profile.cpu_slowdown > 0.0,
             "SimNetwork: cpu_slowdown must be positive");
  const std::lock_guard<std::mutex> lock(mutex_);
  device_profiles_[device] = profile;
}

const DeviceProfile& SimNetwork::device_profile(std::size_t device) const {
  PLOS_CHECK(device < devices_.size(), "SimNetwork: device out of range");
  return device_profiles_[device];
}

void SimNetwork::set_device_link(std::size_t device, LinkProfile profile) {
  PLOS_CHECK(device < devices_.size(), "SimNetwork: device out of range");
  PLOS_CHECK(profile.bandwidth_kbps > 0.0,
             "SimNetwork: bandwidth must be positive");
  const std::lock_guard<std::mutex> lock(mutex_);
  device_links_[device] = profile;
}

const LinkProfile& SimNetwork::device_link(std::size_t device) const {
  PLOS_CHECK(device < devices_.size(), "SimNetwork: device out of range");
  return device_links_[device];
}

double SimNetwork::transfer_seconds(std::size_t device,
                                    std::size_t bytes) const {
  const LinkProfile& link = device_links_[device];
  const double kb = static_cast<double>(bytes) / 1024.0;
  return link.latency_s + kb * 8.0 / link.bandwidth_kbps;
}

double SimNetwork::transfer_seconds_for(std::size_t device,
                                        std::size_t bytes) const {
  PLOS_CHECK(device < devices_.size(), "SimNetwork: device out of range");
  const std::lock_guard<std::mutex> lock(mutex_);
  return transfer_seconds(device, bytes);
}

void SimNetwork::charge_message(std::size_t device, Direction direction,
                                std::size_t bytes, double multiplier) {
  const double kb = static_cast<double>(bytes) / 1024.0;
  if (direction == Direction::kDownlink) {
    server_.bytes_sent += bytes;
    devices_[device].bytes_received += bytes;
    devices_[device].messages_received += 1;
    devices_[device].energy_joules += kb * device_profiles_[device].rx_energy_j_per_kb;
    simnet_instruments().bytes_to_device.add(static_cast<double>(bytes));
    simnet_instruments().messages_to_device.increment();
    simnet_instruments().device_energy_joules.add(
        kb * device_profiles_[device].rx_energy_j_per_kb);
  } else {
    server_.bytes_received += bytes;
    devices_[device].bytes_sent += bytes;
    devices_[device].messages_sent += 1;
    devices_[device].energy_joules += kb * device_profiles_[device].tx_energy_j_per_kb;
    simnet_instruments().bytes_to_server.add(static_cast<double>(bytes));
    simnet_instruments().messages_to_server.increment();
    simnet_instruments().device_energy_joules.add(
        kb * device_profiles_[device].tx_energy_j_per_kb);
  }
  const double window = transfer_seconds(device, bytes) * multiplier;
  round_device_seconds_[device] += window;
  // One latency sample per on-air message, straggler-scaled exactly like
  // the round clock. Counts-only, so concurrent workers' recordings merge
  // to the same sketch in any interleaving.
  latency_sketch_.record(window);
}

obs::QuantileSketch SimNetwork::latency_sketch() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return latency_sketch_;
}

void SimNetwork::send_to_device(std::size_t device, std::size_t bytes) {
  PLOS_CHECK(device < devices_.size(), "SimNetwork: device out of range");
  const std::lock_guard<std::mutex> lock(mutex_);
  charge_message(device, Direction::kDownlink, bytes, 1.0);
}

void SimNetwork::send_to_server(std::size_t device, std::size_t bytes) {
  PLOS_CHECK(device < devices_.size(), "SimNetwork: device out of range");
  const std::lock_guard<std::mutex> lock(mutex_);
  charge_message(device, Direction::kUplink, bytes, 1.0);
}

SimNetwork::TransmitOutcome SimNetwork::transmit(
    std::size_t device, Direction direction,
    std::span<const std::uint8_t> frame) {
  PLOS_CHECK(device < devices_.size(), "SimNetwork: device out of range");
  PLOS_SPAN("net.transmit");
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t round = rounds_;
  const double multiplier = fault_.time_multiplier(round, device);
  const std::size_t bytes = frame.size();
  const double kb = static_cast<double>(bytes) / 1024.0;
  const int max_attempts =
      fault_.enabled() ? fault_.spec().max_retries + 1 : 1;

  TransmitOutcome outcome;
  // Flight-recorder detail: per-attempt windows and outcomes, appended as
  // each attempt resolves. Bounded by max_attempts; derived from the same
  // deterministic quantities as the ledgers.
  const auto log_attempt = [&](int result, double seconds) {
    if (attempt_log_) outcome.attempt_log.push_back({result, seconds});
  };
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    outcome.attempts = attempt + 1;
    double attempt_seconds = 0.0;
    if (attempt > 0) {
      ++fault_counters_.retries;
      // Seeded jitter (exactly 1.0 when retry_jitter == 0) desynchronizes
      // retry storms; pure counter draw, so the wait is deterministic.
      const double backoff =
          fault_.spec().retry_backoff_s * multiplier *
          fault_.retry_backoff_multiplier(round, device, direction, attempt);
      round_device_seconds_[device] += backoff;
      outcome.seconds += backoff;
      attempt_seconds += backoff;
      simnet_instruments().retries.increment();
    }

    if (fault_.drop(round, device, direction, attempt)) {
      // Lost in transit: the sender's radio paid for the attempt; the
      // receiver decodes nothing but waits out the transfer window.
      if (direction == Direction::kDownlink) {
        server_.bytes_sent += bytes;
        ++fault_counters_.downlink_dropped;
      } else {
        devices_[device].bytes_sent += bytes;
        devices_[device].messages_sent += 1;
        devices_[device].energy_joules +=
            kb * device_profiles_[device].tx_energy_j_per_kb;
        simnet_instruments().device_energy_joules.add(
            kb * device_profiles_[device].tx_energy_j_per_kb);
        ++fault_counters_.uplink_dropped;
      }
      round_device_seconds_[device] +=
          transfer_seconds(device, bytes) * multiplier;
      outcome.seconds += transfer_seconds(device, bytes) * multiplier;
      attempt_seconds += transfer_seconds(device, bytes) * multiplier;
      simnet_instruments().messages_dropped.increment();
      log_attempt(/*result=*/1, attempt_seconds);
      continue;
    }

    charge_message(device, direction, bytes, multiplier);
    outcome.seconds += transfer_seconds(device, bytes) * multiplier;
    attempt_seconds += transfer_seconds(device, bytes) * multiplier;

    if (fault_.corrupt(round, device, direction, attempt)) {
      // Flip the schedule-chosen bit in a copy and run the real CRC check:
      // the corruption path exercises the actual frame validation, not a
      // modeled stand-in.
      std::vector<std::uint8_t> damaged(frame.begin(), frame.end());
      const std::size_t bit = fault_.corrupt_bit(round, device, direction,
                                                 attempt, damaged.size() * 8);
      damaged[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      if (!unframe_message(damaged).has_value()) {
        if (direction == Direction::kDownlink) {
          ++fault_counters_.downlink_corrupted;
        } else {
          ++fault_counters_.uplink_corrupted;
        }
        simnet_instruments().messages_corrupted.increment();
        log_attempt(/*result=*/2, attempt_seconds);
        continue;  // receiver rejects the frame; sender retries
      }
      // CRC32 catches every single-bit flip on a well-formed frame, so
      // reaching here means the caller sent unframed bytes; treat as
      // delivered (nothing to validate against).
    }

    outcome.delivered = true;
    log_attempt(/*result=*/0, attempt_seconds);
    return outcome;
  }

  outcome.delivered = false;
  ++fault_counters_.failed_messages;
  simnet_instruments().failed_messages.increment();
  return outcome;
}

SimNetwork::TransmitOutcome SimNetwork::transmit_to_device(
    std::size_t device, std::span<const std::uint8_t> frame) {
  return transmit(device, Direction::kDownlink, frame);
}

SimNetwork::TransmitOutcome SimNetwork::transmit_to_server(
    std::size_t device, std::span<const std::uint8_t> frame) {
  return transmit(device, Direction::kUplink, frame);
}

FaultCounters SimNetwork::fault_counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return fault_counters_;
}

SimNetwork::TrafficSnapshot SimNetwork::traffic_snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  TrafficSnapshot snapshot;
  snapshot.bytes_to_devices = server_.bytes_sent;
  snapshot.bytes_to_server = server_.bytes_received;
  snapshot.messages_dropped =
      fault_counters_.downlink_dropped + fault_counters_.uplink_dropped;
  snapshot.retries = fault_counters_.retries;
  return snapshot;
}

void SimNetwork::account_device_compute(std::size_t device,
                                        double measured_seconds) {
  PLOS_CHECK(device < devices_.size(), "SimNetwork: device out of range");
  PLOS_CHECK(measured_seconds >= 0.0, "SimNetwork: negative compute time");
  const std::lock_guard<std::mutex> lock(mutex_);
  // Straggler multiplier is exactly 1.0 without faults, so the fault-free
  // ledger is bitwise unchanged.
  const double device_seconds = measured_seconds *
                                device_profiles_[device].cpu_slowdown *
                                fault_.time_multiplier(rounds_, device);
  devices_[device].compute_seconds += device_seconds;
  devices_[device].energy_joules +=
      device_seconds * device_profiles_[device].compute_power_watts;
  round_device_seconds_[device] += device_seconds;
  simnet_instruments().device_energy_joules.add(
      device_seconds * device_profiles_[device].compute_power_watts);
}

void SimNetwork::account_server_compute(double measured_seconds) {
  PLOS_CHECK(measured_seconds >= 0.0, "SimNetwork: negative compute time");
  const std::lock_guard<std::mutex> lock(mutex_);
  server_.compute_seconds += measured_seconds;
  round_server_seconds_ += measured_seconds;
}

void SimNetwork::end_round() {
  const std::lock_guard<std::mutex> lock(mutex_);
  double slowest_device =
      *std::max_element(round_device_seconds_.begin(),
                        round_device_seconds_.end());
  // With a round deadline the server proceeds at the deadline at the
  // latest; straggler time past it never reaches the wall clock.
  if (fault_.enabled() && fault_.spec().round_deadline_s > 0.0) {
    slowest_device = std::min(slowest_device, fault_.spec().round_deadline_s);
  }
  simulated_seconds_ += round_server_seconds_ + slowest_device;
  std::fill(round_device_seconds_.begin(), round_device_seconds_.end(), 0.0);
  round_server_seconds_ = 0.0;
  ++rounds_;
  simnet_instruments().rounds.increment();
}

const DeviceMetrics& SimNetwork::device_metrics(std::size_t device) const {
  PLOS_CHECK(device < devices_.size(), "SimNetwork: device out of range");
  return devices_[device];
}

double SimNetwork::mean_bytes_per_device() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const auto& d : devices_) {
    total += static_cast<double>(d.bytes_sent + d.bytes_received);
  }
  return total / static_cast<double>(devices_.size());
}

double SimNetwork::total_device_energy() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const auto& d : devices_) total += d.energy_joules;
  return total;
}

}  // namespace plos::net
