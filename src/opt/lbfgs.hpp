// Limited-memory BFGS with Armijo backtracking line search.
//
// Smooth unconstrained minimization substrate used by the logistic PLOS
// variant (the paper's "extend to other machine learning models" future
// work): the CCCP-convexified logistic objective is smooth, so quasi-Newton
// replaces the cutting-plane/QP machinery of the hinge formulation.
#pragma once

#include <functional>

#include "linalg/vector.hpp"

namespace plos::opt {

/// Objective callback: fills `gradient` (same size as x) and returns f(x).
using ObjectiveFn =
    std::function<double(std::span<const double> x, std::span<double> gradient)>;

struct LbfgsOptions {
  int max_iterations = 200;
  /// Stop when ||gradient||_inf <= tolerance * max(1, ||x||_inf).
  double tolerance = 1e-6;
  std::size_t history = 8;  ///< stored (s, y) correction pairs
  /// Armijo sufficient-decrease constant and backtracking factor.
  double armijo_c1 = 1e-4;
  double backtrack = 0.5;
  int max_line_search_steps = 40;
};

struct LbfgsResult {
  linalg::Vector x;
  double objective = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Minimizes f starting from `initial`. f must be continuously
/// differentiable; convergence to a stationary point is checked via the
/// gradient norm.
LbfgsResult minimize_lbfgs(const ObjectiveFn& f, linalg::Vector initial,
                           const LbfgsOptions& options = {});

/// Max |analytic - finite difference| gradient error of f at x — test
/// utility for objective implementations.
double gradient_check(const ObjectiveFn& f, std::span<const double> x,
                      double step = 1e-6);

}  // namespace plos::opt
