#include "opt/lbfgs.hpp"

#include <cmath>
#include <deque>

#include "common/assert.hpp"

namespace plos::opt {

namespace {

double inf_norm(std::span<const double> v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

}  // namespace

LbfgsResult minimize_lbfgs(const ObjectiveFn& f, linalg::Vector initial,
                           const LbfgsOptions& options) {
  PLOS_CHECK(!initial.empty(), "minimize_lbfgs: empty initial point");
  PLOS_CHECK(options.history >= 1, "minimize_lbfgs: history must be >= 1");

  const std::size_t n = initial.size();
  LbfgsResult result;
  result.x = std::move(initial);

  linalg::Vector gradient(n);
  double fx = f(result.x, gradient);
  PLOS_CHECK(std::isfinite(fx), "minimize_lbfgs: non-finite initial value");

  struct Correction {
    linalg::Vector s;  ///< x_{k+1} - x_k
    linalg::Vector y;  ///< grad_{k+1} - grad_k
    double rho;        ///< 1 / <y, s>
  };
  std::deque<Correction> history;
  linalg::Vector alpha_buffer;

  for (int it = 0; it < options.max_iterations; ++it) {
    result.iterations = it;
    if (inf_norm(gradient) <=
        options.tolerance * std::max(1.0, inf_norm(result.x))) {
      result.converged = true;
      break;
    }

    // Two-loop recursion: direction = -H_k * gradient.
    linalg::Vector direction = gradient;
    alpha_buffer.assign(history.size(), 0.0);
    for (std::size_t i = history.size(); i-- > 0;) {
      const Correction& c = history[i];
      alpha_buffer[i] = c.rho * linalg::dot(c.s, direction);
      linalg::axpy(-alpha_buffer[i], c.y, direction);
    }
    if (!history.empty()) {
      // Initial Hessian scaling gamma = <s,y>/<y,y> of the newest pair.
      const Correction& last = history.back();
      const double yy = linalg::squared_norm(last.y);
      if (yy > 0.0) {
        linalg::scale(direction, linalg::dot(last.s, last.y) / yy);
      }
    }
    for (std::size_t i = 0; i < history.size(); ++i) {
      const Correction& c = history[i];
      const double beta = c.rho * linalg::dot(c.y, direction);
      linalg::axpy(alpha_buffer[i] - beta, c.s, direction);
    }
    linalg::scale(direction, -1.0);

    double descent = linalg::dot(gradient, direction);
    if (descent >= 0.0) {
      // Fall back to steepest descent if curvature information is stale.
      direction = linalg::scaled(gradient, -1.0);
      descent = -linalg::squared_norm(gradient);
      history.clear();
    }

    // Armijo backtracking.
    double step = 1.0;
    linalg::Vector x_next(n);
    linalg::Vector gradient_next(n);
    double fx_next = fx;
    bool accepted = false;
    for (int ls = 0; ls < options.max_line_search_steps; ++ls) {
      for (std::size_t j = 0; j < n; ++j) {
        x_next[j] = result.x[j] + step * direction[j];
      }
      fx_next = f(x_next, gradient_next);
      if (std::isfinite(fx_next) &&
          fx_next <= fx + options.armijo_c1 * step * descent) {
        accepted = true;
        break;
      }
      step *= options.backtrack;
    }
    if (!accepted) break;  // line search failed: stationary for our purposes

    Correction c;
    c.s = linalg::sub(x_next, result.x);
    c.y = linalg::sub(gradient_next, gradient);
    const double sy = linalg::dot(c.s, c.y);
    if (sy > 1e-12) {
      c.rho = 1.0 / sy;
      history.push_back(std::move(c));
      if (history.size() > options.history) history.pop_front();
    }

    result.x = std::move(x_next);
    gradient = std::move(gradient_next);
    fx = fx_next;
  }

  result.objective = fx;
  return result;
}

double gradient_check(const ObjectiveFn& f, std::span<const double> x,
                      double step) {
  linalg::Vector point(x.begin(), x.end());
  linalg::Vector analytic(point.size());
  f(point, analytic);

  double worst = 0.0;
  linalg::Vector scratch(point.size());
  for (std::size_t j = 0; j < point.size(); ++j) {
    const double saved = point[j];
    point[j] = saved + step;
    const double plus = f(point, scratch);
    point[j] = saved - step;
    const double minus = f(point, scratch);
    point[j] = saved;
    const double numeric = (plus - minus) / (2.0 * step);
    worst = std::max(worst, std::abs(numeric - analytic[j]));
  }
  return worst;
}

}  // namespace plos::opt
