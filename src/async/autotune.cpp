#include "async/autotune.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace plos::async {

AutoTuner::AutoTuner(const AutoTuneConfig& config, double initial_quorum,
                     std::uint64_t initial_bound)
    : config_(config),
      quorum_(std::clamp(initial_quorum, config.min_quorum,
                         config.max_quorum)),
      bound_(std::clamp(initial_bound, config.min_bound, config.max_bound)) {
  PLOS_CHECK(config.min_quorum > 0.0 &&
                 config.min_quorum <= config.max_quorum &&
                 config.max_quorum <= 1.0,
             "AutoTuneConfig: quorum bounds outside (0, 1]");
  PLOS_CHECK(config.quorum_step > 0.0,
             "AutoTuneConfig: quorum_step must be positive");
  PLOS_CHECK(config.min_bound >= 1 && config.min_bound <= config.max_bound,
             "AutoTuneConfig: staleness bounds out of order");
  PLOS_CHECK(config.patience >= 1, "AutoTuneConfig: patience must be >= 1");
  PLOS_CHECK(config.cooldown >= 0, "AutoTuneConfig: negative cooldown");
  PLOS_CHECK(config.widen_fraction > 0.0 && config.widen_fraction <= 1.0,
             "AutoTuneConfig: widen_fraction outside (0, 1]");
}

AutoTuneDecision AutoTuner::observe(const obs::RoundRecord& record) {
  AutoTuneDecision decision;
  decision.quorum = quorum_;
  decision.staleness_bound = bound_;
  const double p99 = record.stale_p99;
  if (std::isnan(p99)) return decision;  // no sketch in the record

  // Streaks update every step, including during cooldown — a persistent
  // signal keeps its evidence while the hold expires. All comparisons are
  // exact FP against journaled values, so the walk is bitwise-reproducible
  // from the journal alone.
  const double bound = static_cast<double>(bound_);
  const bool widen_signal = p99 >= config_.widen_fraction * bound;
  // The tail fits in half the bound: the cut is fresher than it needs to
  // be, so stop paying barrier time for it.
  const bool lower_signal = !widen_signal && 2.0 * p99 <= bound;
  // The tail fits in a quarter of the bound: the eviction net is slack.
  const bool tighten_signal = !widen_signal && 4.0 * p99 <= bound;
  widen_streak_ = widen_signal ? widen_streak_ + 1 : 0;
  lower_streak_ = lower_signal ? lower_streak_ + 1 : 0;
  tighten_streak_ = tighten_signal ? tighten_streak_ + 1 : 0;

  if (cooldown_left_ > 0) {
    --cooldown_left_;
    decision.event = "hold";
    return decision;
  }

  const auto act = [&](const char* event, double trigger) {
    decision.event = event;
    decision.trigger = trigger;
    decision.quorum = quorum_;
    decision.staleness_bound = bound_;
    cooldown_left_ = config_.cooldown;
    widen_streak_ = 0;
    lower_streak_ = 0;
    tighten_streak_ = 0;
  };

  // Priority: protect blocks from wholesale eviction first, then chase
  // the cheaper cut, then reel the bound back in.
  if (widen_streak_ >= config_.patience) {
    if (bound_ < config_.max_bound) {
      bound_ = std::min(bound_ * 2, config_.max_bound);
      act("bound_widen", p99);
    } else if (quorum_ < config_.max_quorum) {
      // Bound maxed out and the tail still grows: the fleet cannot keep
      // up with the cut pace — wait for more of it.
      quorum_ = std::min(quorum_ + config_.quorum_step, config_.max_quorum);
      act("quorum_up", p99);
    }
    return decision;
  }
  if (lower_streak_ >= config_.patience && quorum_ > config_.min_quorum) {
    quorum_ = std::max(quorum_ - config_.quorum_step, config_.min_quorum);
    act("quorum_down", p99);
    return decision;
  }
  if (tighten_streak_ >= config_.patience && bound_ > config_.min_bound &&
      quorum_ <= config_.min_quorum) {
    // Only tighten once the quorum walk has settled: halving the bound
    // mid-descent would evict the very blocks the descent makes late.
    bound_ = std::max(bound_ / 2, config_.min_bound);
    act("bound_tighten", p99);
    return decision;
  }
  return decision;
}

}  // namespace plos::async
