// Journal-driven quorum/staleness auto-tuning for the async engine.
//
// ROADMAP item 4's open half: instead of hand-tuned `--quorum` and
// `--staleness-bound` values, the controller reads the fleet staleness
// sketch the journal already carries (stale_p50/p90/p99 from
// core::StalenessLedger::fill_record) and walks both knobs toward the knee
// of the staleness/latency trade-off:
//
//   * a fleet whose staleness tail is comfortably inside the bound is
//     paying barrier time for freshness it does not need -> lower the
//     quorum one step (stragglers stop pacing the cut; their uploads fold
//     in late under the bound);
//   * a staleness tail at the bound means blocks are about to be evicted
//     wholesale -> double the bound (keep chronically late devices'
//     uploads usable), and once the bound is maxed out, raise the quorum
//     back (the fleet genuinely cannot keep up);
//   * a tail pinned at zero with a wide bound -> halve the bound back
//     (tight bounds keep the eviction safety net meaningful).
//
// The rule is a deterministic hysteresis: a signal must persist for
// `patience` consecutive aggregation steps before acting, and every action
// is followed by `cooldown` steps of enforced hold — so one noisy round
// never flips a knob, and decisions are a pure function of the journal
// sequence (bitwise thread-count-independent, DESIGN.md §15). Every
// decision is journaled with the percentile value that triggered it.
#pragma once

#include <cstdint>

#include "obs/journal.hpp"

namespace plos::async {

struct AutoTuneConfig {
  bool enabled = false;
  /// Quorum fraction bounds and step of the hysteresis walk.
  double min_quorum = 0.5;
  double max_quorum = 1.0;
  double quorum_step = 0.1;
  /// Staleness-bound bounds; the bound moves by doubling/halving.
  std::uint64_t min_bound = 2;
  std::uint64_t max_bound = 64;
  /// Consecutive steps a signal must persist before the controller acts.
  int patience = 2;
  /// Steps of enforced hold after every action. One step is enough for
  /// the next aggregate to reflect the new knobs (the streak counters keep
  /// accruing through the hold, so a persistent signal is not forgotten);
  /// longer holds mostly stretch the transient on straggler fleets
  /// (bench/abl10_autotune).
  int cooldown = 1;
  /// Widen the bound when stale_p99 >= widen_fraction * bound.
  double widen_fraction = 0.75;
};

/// One observe() outcome: the knob values in force for the *next* step and
/// the action (if any) that moved them.
struct AutoTuneDecision {
  /// "", "hold" (signal pending, hysteresis not satisfied), "quorum_down",
  /// "quorum_up", "bound_widen", or "bound_tighten".
  const char* event = "";
  /// Percentile value that triggered the action (RoundRecord::kUnset when
  /// event is "" or "hold").
  double trigger = obs::RoundRecord::kUnset;
  double quorum = 0.0;
  std::uint64_t staleness_bound = 0;
};

/// Deterministic hysteresis controller (see file comment). Drive it on the
/// aggregation thread: observe() after each journal record is filled; the
/// returned knobs apply from the next aggregation step.
class AutoTuner {
 public:
  AutoTuner(const AutoTuneConfig& config, double initial_quorum,
            std::uint64_t initial_bound);

  double quorum() const { return quorum_; }
  std::uint64_t staleness_bound() const { return bound_; }

  /// Feeds one aggregation step's record (stale_p99 must be filled) and
  /// returns the decision for the next step.
  AutoTuneDecision observe(const obs::RoundRecord& record);

 private:
  AutoTuneConfig config_;
  double quorum_;
  std::uint64_t bound_;
  int cooldown_left_ = 0;
  int widen_streak_ = 0;
  int lower_streak_ = 0;
  int tighten_streak_ = 0;
};

}  // namespace plos::async
