// Asynchronous bounded-staleness ADMM with quorum aggregation.
//
// The synchronous engine (core/distributed_plos) closes a round when every
// dispatched device has answered, so one straggler sets the pace of the
// whole fleet. This engine replaces the barrier with an event-driven round:
//
//   * every dispatched device's round trip gets a deterministic virtual
//     completion time (async/latency.hpp) built from the SimNetwork link
//     charges and a QP-work compute proxy — never from measured wall time;
//   * completion and deadline events go into a deterministic event queue
//     (net/event_queue.hpp) with the total order (time, round, device,
//     kind); the server aggregates as soon as a configurable quorum of
//     on-time uploads has arrived, cutting the round at that event's time;
//   * uploads that miss the cut (or their per-device deadline) are not
//     lost: they arrive later on the virtual clock and are folded into a
//     subsequent aggregate with a staleness-discounted dual update, weight
//     1 / (1 + age);
//   * bounded staleness: a server block whose data is older than
//     `staleness_bound` aggregation steps is evicted — reset to the
//     consensus (w_t = w0, v_t = 0, ξ_t = 0, u_t = 0) — and the device
//     re-bootstraps from the current consensus on its next dispatch;
//   * per-device deadlines adapt from an EWMA of observed round-trip
//     latencies (async/latency.hpp), so chronically slow devices stop
//     gating the quorum without being dropped from training.
//
// Degenerate-equivalence contract (DESIGN.md §14): with quorum = 1.0 and
// no deadlines, every upload is on time, nothing is ever late, busy, or
// evicted, and the engine reproduces the synchronous trainer bit for bit —
// models, journals, and byte ledgers — because it runs the same AdmmDevice
// code and the same server-update FP sequence in the same order. All
// configurations (any quorum, staleness bound, deadline policy) are
// bitwise-deterministic at any thread count: scheduling decisions derive
// from counter-based draws and the deterministic event order, and all
// cross-device arithmetic happens on the aggregation thread in ascending
// device order.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "async/autotune.hpp"
#include "async/latency.hpp"
#include "core/distributed_plos.hpp"
#include "data/dataset.hpp"
#include "net/simnet.hpp"
#include "obs/flight.hpp"

namespace plos::async {

/// Read-only server state handed to the on_aggregate observer after each
/// aggregation step. References are only valid inside the callback.
struct AsyncAggregateView {
  std::uint64_t aggregation_step;  ///< aggregates completed so far
  double virtual_seconds;          ///< virtual clock at this round's cut
  const linalg::Vector& w0;        ///< consensus after the update
  const std::vector<linalg::Vector>& w;  ///< per-user blocks (w_t)
};

struct AsyncQuorumOptions {
  core::DistributedPlosOptions base;
  /// Fraction of the fleet whose on-time uploads close a round, in (0, 1].
  /// The per-round target is max(1, ceil(quorum * num_users)); when fewer
  /// uploads than that can arrive (failures, busy devices) the round cuts
  /// at its last event instead. 1.0 restores the synchronous barrier.
  double quorum = 0.6;
  /// Max aggregation steps a server block's data may lag behind before the
  /// block is evicted. 0 is only meaningful fault-free (nothing ever ages).
  std::uint64_t staleness_bound = 3;
  /// Adapt per-device deadlines from the latency EWMA. When false, the
  /// fixed deadline applies (0 = no deadline at all).
  bool adaptive_deadline = true;
  double deadline_slack = 2.0;  ///< deadline = slack * EWMA latency
  double ewma_alpha = 0.3;      ///< EWMA smoothing of observed latency
  double fixed_deadline_s = 0.0;  ///< fallback/static deadline; 0 = none
  LatencyModelSpec latency;
  /// Observability-driven controller (async/autotune.hpp): when enabled,
  /// `quorum` and `staleness_bound` above are only the starting point — the
  /// hysteresis rule walks both knobs per aggregation step from the
  /// journal's staleness sketch, and every decision lands in the journal's
  /// tuned_*/tune_* fields. Disabled by default: the CLI values stay fixed
  /// and the journal's tune fields keep their defaults (which preserves
  /// degenerate-mode byte equality).
  AutoTuneConfig autotune;
  /// Borrowed flight recorder (obs/flight.hpp): when set, the engine logs
  /// the causal per-device lifecycle — upload attempt k with its
  /// retry/drop/corruption outcome, deadline misses, late folds with the
  /// staleness at fold, evictions with their cause, quorum cuts and
  /// aggregates — on the virtual clock, recorded on the aggregation thread
  /// so the log is byte-identical at any thread count. Null disables all
  /// recording (and the per-attempt transmit logs it needs).
  obs::FlightRecorder* flight = nullptr;
  /// Observer called on the aggregation thread after every server update
  /// (benches use it to track accuracy against the virtual clock). It must
  /// not feed anything back into training: the engine's FP sequence — and
  /// the degenerate-equivalence and determinism contracts — do not depend
  /// on it.
  std::function<void(const AsyncAggregateView&)> on_aggregate;
};

/// Async-specific outcome, alongside the shared distributed diagnostics.
struct AsyncQuorumDiagnostics {
  /// Fresh (on-time, pre-cut) uploads aggregated per ADMM step.
  std::vector<std::uint64_t> quorum_trace;
  std::uint64_t late_uploads_total = 0;  ///< cached uploads folded in late
  std::uint64_t evictions_offline_total = 0;
  std::uint64_t evictions_late_total = 0;
  std::uint64_t evictions_failed_total = 0;
  std::uint64_t max_staleness_seen = 0;  ///< max block age at any aggregate
  /// Auto-tune outcome (meaningful when options.autotune.enabled): knob
  /// values in force at the end of the run and the number of journaled
  /// controller actions (holds excluded).
  double final_quorum = 0.0;
  std::uint64_t final_staleness_bound = 0;
  std::uint64_t tune_actions = 0;
  /// Simulated wall-clock of the whole ADMM phase: the sum of round cut
  /// times. In degenerate mode this is the synchronous schedule (every
  /// round waits for its slowest device), so the quorum speedup is the
  /// ratio of this field between two runs.
  double virtual_seconds = 0.0;
};

struct AsyncQuorumResult {
  core::PersonalizedModel model;
  core::DistributedPlosDiagnostics diagnostics;
  AsyncQuorumDiagnostics async;
};

/// Trains distributed PLOS under the asynchronous quorum schedule.
/// `network` is required: completion times are built from its link model
/// and ledger charges. The network must have one device per user.
AsyncQuorumResult train_async_quorum_plos(const data::MultiUserDataset& dataset,
                                          const AsyncQuorumOptions& options,
                                          net::SimNetwork* network);

}  // namespace plos::async
