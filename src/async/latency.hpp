// Virtual completion-time model and adaptive per-device deadlines for the
// asynchronous quorum engine (async/async_admm.hpp).
//
// The async engine is driven entirely by the simulated clock: a device's
// round trip "takes" downlink + compute + uplink virtual seconds, where the
// link terms are exactly what SimNetwork charged to its ledgers (including
// retry backoff under fault injection) and the compute term is a
// deterministic proxy scaled by the device's QP work, its CPU slowdown,
// and the fault schedule's straggler multiplier. A seeded multiplicative
// jitter (a pure counter draw, net::counter_uniform) decorrelates devices
// with identical payload sizes. No measured wall time enters any of it, so
// completion times — and everything scheduled from them — are bitwise
// thread-count-independent (DESIGN.md §8).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace plos::async {

struct LatencyModelSpec {
  /// Fixed virtual seconds per local solve, before CPU scaling.
  double compute_base_s = 5e-4;
  /// Additional virtual seconds per QP inner iteration of the solve, the
  /// deterministic stand-in for "more cutting-plane work takes longer".
  double compute_per_qp_iter_s = 2e-6;
  /// Multiplicative completion-time jitter: a round trip is scaled by
  /// 1 + jitter * (2u - 1), u a pure counter draw. In [0, 1).
  double jitter = 0.2;
  /// Seed of the jitter draws (independent of the fault schedule seed).
  std::uint64_t seed = 1234;
};

/// Virtual seconds a device's full round trip occupies: jittered
/// (link_seconds + compute proxy), with the compute proxy scaled by the
/// device CPU slowdown and the fault schedule's straggler multiplier.
/// Pure function of its arguments.
double completion_seconds(const LatencyModelSpec& spec, double link_seconds,
                          int qp_iteration_delta, double cpu_slowdown,
                          double time_multiplier, std::uint64_t round,
                          std::size_t device);

/// Per-device upload deadlines adapted from an EWMA of observed virtual
/// round-trip latencies. Observations happen on the aggregation thread in
/// ascending device order, so the tracker is deterministic. A device with
/// no observations yet gets the fixed fallback (0 = no deadline).
class AdaptiveDeadlines {
 public:
  AdaptiveDeadlines(std::size_t num_users, bool adaptive, double slack,
                    double alpha, double fixed_deadline_s);

  /// Deadline for the device's next round trip, in virtual seconds from
  /// dispatch; +infinity when no deadline applies yet.
  double deadline(std::size_t device) const;

  /// Feeds one observed round-trip latency.
  void observe(std::size_t device, double seconds);

  /// Current EWMA for the device (0 before any observation).
  double ewma(std::size_t device) const;

 private:
  bool adaptive_;
  double slack_;
  double alpha_;
  double fixed_deadline_s_;
  std::vector<double> ewma_;
  std::vector<char> observed_;
};

}  // namespace plos::async
