#include "async/async_admm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/assert.hpp"
#include "common/stopwatch.hpp"
#include "core/admm_device.hpp"
#include "net/event_queue.hpp"
#include "net/serialize.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "qp/warm_store.hpp"
#include "rng/engine.hpp"

namespace plos::async {

namespace {

// A round trip that missed this step's cut or its deadline: the upload
// still arrives at `arrival` on the virtual clock and is folded into a
// later aggregate unless its data ages past the staleness bound first.
// While active, the device is busy and is not re-dispatched.
struct PendingUpload {
  bool active = false;
  double arrival = 0.0;         ///< absolute virtual seconds
  std::uint64_t data_step = 0;  ///< aggregation step the solve was based on
  core::AdmmDevice::LocalSolution sol;
  char cause = core::kLateUpload;  ///< kLateUpload | kDeadlineMissed
};

}  // namespace

AsyncQuorumResult train_async_quorum_plos(const data::MultiUserDataset& dataset,
                                          const AsyncQuorumOptions& options,
                                          net::SimNetwork* network) {
  dataset.check_invariants();
  const std::size_t num_users = dataset.num_users();
  const std::size_t dim = dataset.dim();
  const core::DistributedPlosOptions& base = options.base;
  PLOS_CHECK(num_users > 0, "train_async_quorum_plos: no users");
  PLOS_CHECK(dim > 0, "train_async_quorum_plos: empty dataset");
  PLOS_CHECK(base.params.lambda > 0.0 && base.rho > 0.0,
             "train_async_quorum_plos: lambda and rho must be positive");
  PLOS_CHECK(network != nullptr,
             "train_async_quorum_plos: a SimNetwork is required (completion "
             "times are built from its link model)");
  PLOS_CHECK(network->num_devices() == num_users,
             "train_async_quorum_plos: network/device count mismatch");
  PLOS_CHECK(options.quorum > 0.0 && options.quorum <= 1.0,
             "train_async_quorum_plos: quorum outside (0, 1]");

  PLOS_SPAN("plos.async_train");
  PLOS_LOG_INFO("async quorum train start", obs::F("users", num_users),
                obs::F("dim", dim), obs::F("quorum", options.quorum),
                obs::F("staleness_bound", options.staleness_bound),
                obs::F("adaptive_deadline", options.adaptive_deadline),
                obs::F("threads", parallel::resolve_num_threads(
                                      base.num_threads)));

  parallel::ThreadPool pool(base.num_threads);
  const Stopwatch total_watch;
  AsyncQuorumResult result;
  result.model = core::PersonalizedModel::zeros(num_users, dim);

  const net::FaultModel* fault = nullptr;
  if (network->fault_model().enabled()) fault = &network->fault_model();

  qp::WarmStore warm_store(num_users);
  std::vector<core::AdmmDevice> devices;
  devices.reserve(num_users);
  for (std::size_t t = 0; t < num_users; ++t) {
    devices.emplace_back(dataset.users[t], num_users, base, &warm_store, t);
  }

  // --- bootstrap round: identical to the synchronous engine --------------
  linalg::Vector w0 = linalg::zeros(dim);
  if (base.svm_bootstrap) {
    PLOS_SPAN("plos.bootstrap");
    std::vector<linalg::Vector> locals(num_users);
    pool.parallel_for(num_users, [&](std::size_t t) {
      Stopwatch device_watch;
      locals[t] = devices[t].bootstrap_weights();
      network->account_device_compute(t, device_watch.elapsed_seconds());
    });
    std::size_t contributors = 0;
    const std::uint64_t bootstrap_round = network->current_round();
    for (std::size_t t = 0; t < num_users; ++t) {
      if (locals[t].empty()) continue;
      if (fault != nullptr && fault->offline(bootstrap_round, t)) {
        ++result.diagnostics.devices_offline_total;
        continue;
      }
      net::Serializer s;
      s.write_u32(/*message type*/ 0);
      s.write_vector(locals[t]);
      if (fault != nullptr) {
        const auto frame = net::frame_message(s.buffer());
        if (!network->transmit_to_server(t, frame).delivered) {
          ++result.diagnostics.uplink_failures_total;
          continue;  // bootstrap upload lost: average over the others
        }
      } else {
        network->send_to_server(t, s.size_bytes());
      }
      linalg::axpy(1.0, locals[t], w0);
      ++contributors;
      if (options.flight != nullptr) {
        obs::FlightEvent event;
        event.round = 0;
        event.device = static_cast<std::uint32_t>(t);
        event.kind = obs::FlightEventKind::kBootstrap;
        event.cause = static_cast<int>(core::kParticipated);
        options.flight->record(event);
      }
    }
    if (contributors > 0) {
      linalg::scale(w0, 1.0 / static_cast<double>(contributors));
    }
    network->end_round();
  }
  if (linalg::norm(w0) == 0.0) {
    rng::Engine engine(base.seed);
    w0 = engine.gaussian_vector(dim);
    const double n = linalg::norm(w0);
    if (n > 0.0) linalg::scale(w0, 1.0 / n);
  }

  std::vector<linalg::Vector> u(num_users, linalg::zeros(dim));
  std::vector<linalg::Vector> w(num_users, w0);
  std::vector<linalg::Vector> v(num_users, linalg::zeros(dim));
  linalg::Vector xi(num_users, 0.0);

  const double sqrt_t = std::sqrt(static_cast<double>(num_users));
  double previous_cccp_objective = std::numeric_limits<double>::infinity();

  const auto total_device_qp_solves = [&devices]() {
    int total = 0;
    for (const core::AdmmDevice& device : devices) total += device.qp_solves();
    return total;
  };
  const auto total_device_qp_iterations = [&devices]() {
    int total = 0;
    for (const core::AdmmDevice& device : devices) {
      total += device.qp_iterations();
    }
    return total;
  };
  const auto total_working_set_size = [&devices]() {
    std::size_t total = 0;
    for (const core::AdmmDevice& device : devices) {
      total += device.working_set_size();
    }
    return total;
  };

  const bool telemetry = base.journal != nullptr || base.watchdog != nullptr;
  net::SimNetwork::TrafficSnapshot previous_traffic =
      network->traffic_snapshot();
  obs::QuantileSketch previous_latency = network->latency_sketch();
  bool watchdog_aborted = false;

  // Observability loop closure: the controller walks the quorum and the
  // staleness bound from the journal's staleness sketch; when disabled the
  // CLI values stay in force verbatim. The flight recorder needs the
  // network's per-attempt transmit logs.
  const bool tuning = options.autotune.enabled;
  AutoTuner tuner(options.autotune, options.quorum, options.staleness_bound);
  double quorum_now = tuning ? tuner.quorum() : options.quorum;
  std::uint64_t staleness_bound_now =
      tuning ? tuner.staleness_bound() : options.staleness_bound;
  obs::FlightRecorder* const flight = options.flight;
  if (flight != nullptr) network->set_attempt_log(true);

  // Async scheduling state. The staleness ledger and the step counter are
  // maintained exactly as in the synchronous engine (one tick per ADMM
  // iteration, spanning CCCP rounds), which is what makes degenerate-mode
  // journals byte-identical.
  core::StalenessLedger staleness(num_users);
  std::uint64_t aggregation_step = 0;
  double virtual_seconds = 0.0;
  AdaptiveDeadlines deadlines(num_users, options.adaptive_deadline,
                              options.deadline_slack, options.ewma_alpha,
                              options.fixed_deadline_s);
  std::vector<PendingUpload> pending(num_users);
  // Why each device last failed to deliver fresh — attributes a later
  // eviction of its block to a cause.
  std::vector<char> last_miss_cause(num_users, core::kParticipated);

  for (int cccp = 0; cccp < base.cccp.max_iterations; ++cccp) {
    PLOS_SPAN("plos.cccp_round", "round", cccp);
    const Stopwatch round_watch;
    const int round_admm_before = result.diagnostics.admm_iterations_total;
    const int round_qp_before = total_device_qp_solves();
    result.diagnostics.cccp_iterations = cccp + 1;
    pool.parallel_for(num_users, [&](std::size_t t) {
      Stopwatch device_watch;
      devices[t].begin_cccp_round(w[t], cccp == 0, base.seed + t);
      network->account_device_compute(t, device_watch.elapsed_seconds());
    });
    // In-flight uploads were solved against the previous round's CCCP
    // linearization; folding them across the boundary would mix cutting
    // planes from two different sign patterns. Drop them — the devices
    // simply become free again, and their blocks keep aging toward the
    // staleness bound like any other miss.
    for (std::size_t t = 0; t < num_users; ++t) pending[t].active = false;

    double objective = 0.0;
    for (int admm = 0; admm < base.max_admm_iterations; ++admm) {
      PLOS_SPAN("plos.admm_round", "iteration", admm);
      ++result.diagnostics.admm_iterations_total;
      const int iteration_qp_solves_before =
          (telemetry || tuning) ? total_device_qp_solves() : 0;
      const int iteration_qp_iterations_before =
          (telemetry || tuning) ? total_device_qp_iterations() : 0;
      const linalg::Vector w0_old = w0;
      std::vector<linalg::Vector> u_old = u;
      const std::uint64_t round = network->current_round();
      std::vector<char> status(num_users, core::kParticipated);
      std::vector<char> fresh(num_users, 0);
      std::vector<double> late_weight(num_users, 0.0);
      std::uint64_t late_count = 0;
      std::uint64_t ev_offline = 0, ev_late = 0, ev_failed = 0;

      // Resets a server block whose data aged past the staleness bound:
      // the device re-bootstraps from the current consensus (w_t = w0,
      // v_t = 0, ξ_t = 0) with a cleared dual. u_old must be zeroed too —
      // the server accumulation below reads it.
      const auto evict = [&](std::size_t t, char cause) {
        if (flight != nullptr) {
          obs::FlightEvent event;
          event.round = aggregation_step;
          event.device = static_cast<std::uint32_t>(t);
          event.kind = obs::FlightEventKind::kEviction;
          event.cause = static_cast<int>(cause);
          event.t_start = virtual_seconds;
          event.t_end = virtual_seconds;
          event.staleness = staleness.age(t, aggregation_step);
          flight->record(event);
        }
        w[t] = w0_old;
        v[t] = linalg::zeros(dim);
        xi[t] = 0.0;
        u[t] = linalg::zeros(dim);
        u_old[t] = linalg::zeros(dim);
        staleness.refresh(t, aggregation_step);
        switch (cause) {
          case core::kOffline:
            ++ev_offline;
            break;
          case core::kDownlinkFailed:
          case core::kUplinkFailed:
            ++ev_failed;
            break;
          default:  // late, busy, deadline-missed
            ++ev_late;
            break;
        }
      };

      // -- fold late uploads that have arrived by now ----------------------
      for (std::size_t t = 0; t < num_users; ++t) {
        if (!pending[t].active) continue;
        if (pending[t].arrival > virtual_seconds) {
          status[t] = core::kBusy;  // still in flight; not re-dispatched
          continue;
        }
        pending[t].active = false;
        const std::uint64_t age = aggregation_step - pending[t].data_step;
        if (age > staleness_bound_now) {
          // The cached upload is older than the bound: discard it and
          // evict the block outright — applying it would let data older
          // than S steps into the aggregate.
          evict(t, pending[t].cause);
          status[t] = pending[t].cause;
          continue;
        }
        w[t] = std::move(pending[t].sol.w);
        v[t] = std::move(pending[t].sol.v);
        xi[t] = pending[t].sol.xi;
        // Staleness-discounted dual refresh: an upload computed `age`
        // steps ago moves u_t with weight 1 / (1 + age).
        late_weight[t] = 1.0 / (1.0 + static_cast<double>(age));
        staleness.refresh(t, pending[t].data_step);
        ++late_count;
        status[t] = pending[t].cause;
        if (flight != nullptr) {
          obs::FlightEvent event;
          event.round = aggregation_step;
          event.device = static_cast<std::uint32_t>(t);
          event.kind = obs::FlightEventKind::kLateFold;
          event.cause = static_cast<int>(pending[t].cause);
          event.t_start = pending[t].arrival;
          event.t_end = virtual_seconds;
          event.staleness = age;
          flight->record(event);
        }
      }

      // -- dispatch: scatter, local solves, gather (buffered) --------------
      // Same per-device code path as the synchronous engine; solutions are
      // buffered and applied on the aggregation thread once the event
      // order decides who made the cut. The fault schedule's round
      // deadline is not consulted — the async per-device deadlines replace
      // it (its straggler slowdown still applies, through the completion
      // time).
      std::vector<core::AdmmDevice::LocalSolution> solutions(num_users);
      std::vector<char> dispatched(num_users, 0);
      std::vector<char> delivered(num_users, 0);
      std::vector<double> completion(num_users, 0.0);
      // Per-device uplink attempt logs for the flight recorder. Workers
      // fill their own slot; the aggregation thread replays them in
      // ascending device order, so the log order never depends on worker
      // interleaving.
      std::vector<std::vector<net::SimNetwork::TransmitAttempt>>
          uplink_attempts(flight != nullptr ? num_users : 0);
      pool.parallel_for(num_users, [&](std::size_t t) {
        const double cpu_slowdown = network->device_profile(t).cpu_slowdown;
        if (pending[t].active) return;  // busy
        if (fault != nullptr && fault->offline(round, t)) {
          status[t] = core::kOffline;
          return;
        }
        double link_seconds = 0.0;
        if (fault != nullptr) {
          const auto frame =
              net::frame_message(core::admm_broadcast_payload(w0, u[t]));
          const auto outcome = network->transmit_to_device(t, frame);
          if (!outcome.delivered) {
            status[t] = core::kDownlinkFailed;
            return;  // device never received (w0, u_t) this round
          }
          link_seconds += outcome.seconds;
        } else {
          const auto payload = core::admm_broadcast_payload(w0, u[t]);
          network->send_to_device(t, payload.size());
          link_seconds += network->transfer_seconds_for(t, payload.size());
        }
        PLOS_SPAN("plos.device_solve", "device", static_cast<double>(t));
        Stopwatch device_watch;
        const int qp_iterations_before = devices[t].qp_iterations();
        auto sol = devices[t].solve(w0, u[t]);
        network->account_device_compute(t, device_watch.elapsed_seconds());
        const int qp_iteration_delta =
            devices[t].qp_iterations() - qp_iterations_before;
        bool upload_delivered = true;
        if (fault != nullptr) {
          const auto frame = net::frame_message(
              core::admm_update_payload(sol.w, sol.v, sol.xi));
          const auto outcome = network->transmit_to_server(t, frame);
          upload_delivered = outcome.delivered;
          link_seconds += outcome.seconds;
          if (!upload_delivered) status[t] = core::kUplinkFailed;
          if (flight != nullptr) uplink_attempts[t] = outcome.attempt_log;
        } else {
          const auto payload =
              core::admm_update_payload(sol.w, sol.v, sol.xi);
          network->send_to_server(t, payload.size());
          const double upload_seconds =
              network->transfer_seconds_for(t, payload.size());
          link_seconds += upload_seconds;
          if (flight != nullptr) {
            uplink_attempts[t].push_back({0, upload_seconds});
          }
        }
        const double multiplier =
            fault != nullptr ? fault->time_multiplier(round, t) : 1.0;
        completion[t] = completion_seconds(options.latency, link_seconds,
                                           qp_iteration_delta, cpu_slowdown,
                                           multiplier, round, t);
        solutions[t] = std::move(sol);
        dispatched[t] = 1;
        delivered[t] = upload_delivered ? 1 : 0;
      });

      // -- event-ordered round cut ----------------------------------------
      // One event per dispatched device at min(completion, deadline); the
      // round cuts at the quorum-th on-time upload, or — if the quorum is
      // unreachable this step — at the last event (failed and straggling
      // devices must not hang the server). The target counts FRESH uploads
      // against the whole fleet: cheaper variants (relative to the
      // dispatched subset, or crediting folded late arrivals) cut rounds
      // faster but starve the aggregate of fresh updates, and the extra
      // ADMM iterations cost more simulated time than the shorter rounds
      // save. The queue's total order makes the cut independent of worker
      // interleaving.
      net::EventQueue queue;
      std::size_t dispatched_count = 0;
      for (std::size_t t = 0; t < num_users; ++t) {
        if (dispatched[t] == 0) continue;
        ++dispatched_count;
        const double device_deadline = deadlines.deadline(t);
        const bool on_time =
            delivered[t] != 0 && completion[t] <= device_deadline;
        net::Event event;
        event.time = std::min(completion[t], device_deadline);
        event.round = round;
        event.device = static_cast<std::uint64_t>(t);
        event.kind =
            on_time ? net::EventKind::kUpload : net::EventKind::kDeadline;
        queue.push(event);
      }
      const std::size_t round_quorum = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::ceil(
                 quorum_now * static_cast<double>(num_users))));
      double t_cut = 0.0;
      std::size_t uploads_seen = 0;
      while (!queue.empty()) {
        const net::Event event = queue.pop();
        t_cut = event.time;
        if (event.kind == net::EventKind::kUpload) {
          ++uploads_seen;
          if (uploads_seen >= round_quorum) break;
        }
      }
      if (uploads_seen == 0 && t_cut == 0.0) {
        // Nothing was dispatched (everyone busy or offline): advance the
        // clock to the earliest in-flight arrival so the loop makes
        // progress instead of spinning at a frozen virtual time.
        double min_arrival = std::numeric_limits<double>::infinity();
        for (std::size_t t = 0; t < num_users; ++t) {
          if (pending[t].active) {
            min_arrival = std::min(min_arrival, pending[t].arrival);
          }
        }
        if (std::isfinite(min_arrival)) {
          t_cut = std::max(0.0, min_arrival - virtual_seconds);
        }
      }

      // -- classify dispatched devices against the cut ---------------------
      std::uint64_t fresh_count = 0;
      for (std::size_t t = 0; t < num_users; ++t) {
        if (dispatched[t] == 0) continue;
        const double device_deadline = deadlines.deadline(t);
        const bool on_time =
            delivered[t] != 0 && completion[t] <= device_deadline;
        if (on_time && completion[t] <= t_cut) {
          w[t] = std::move(solutions[t].w);
          v[t] = std::move(solutions[t].v);
          xi[t] = solutions[t].xi;
          fresh[t] = 1;
          ++fresh_count;
          status[t] = core::kParticipated;
          staleness.refresh(t, aggregation_step);
        } else if (delivered[t] != 0) {
          // Arrives after the cut (or past its deadline): stash it; the
          // device stays busy until the upload lands on the virtual clock.
          pending[t].active = true;
          pending[t].arrival = virtual_seconds + completion[t];
          pending[t].data_step = aggregation_step;
          pending[t].sol = std::move(solutions[t]);
          pending[t].cause = on_time ? static_cast<char>(core::kLateUpload)
                                     : static_cast<char>(
                                           core::kDeadlineMissed);
          status[t] = pending[t].cause;
        }
        // Undelivered uploads keep the failure status the worker set.
      }

      // -- flight recorder: replay this step's device lifecycles -----------
      // Aggregation thread only, ascending device order: attempt slices are
      // laid back to back so the last one ends at the device's completion
      // time on the virtual clock (start clamped to the round start — the
      // completion jitter can undercut the raw attempt windows).
      if (flight != nullptr) {
        const double round_start = virtual_seconds;
        for (std::size_t t = 0; t < num_users; ++t) {
          if (dispatched[t] == 0) continue;
          const auto& attempts = uplink_attempts[t];
          double attempt_total = 0.0;
          for (const auto& attempt : attempts) {
            attempt_total += attempt.seconds;
          }
          double slice_start = std::max(
              round_start, round_start + completion[t] - attempt_total);
          for (std::size_t k = 0; k < attempts.size(); ++k) {
            obs::FlightEvent event;
            event.round = aggregation_step;
            event.device = static_cast<std::uint32_t>(t);
            event.attempt = static_cast<std::uint32_t>(k + 1);
            event.kind = obs::FlightEventKind::kUploadAttempt;
            event.cause = attempts[k].result;
            event.t_start = slice_start;
            event.t_end = slice_start + attempts[k].seconds;
            flight->record(event);
            slice_start = event.t_end;
          }
          const double device_deadline = deadlines.deadline(t);
          if (delivered[t] != 0 && completion[t] > device_deadline &&
              std::isfinite(device_deadline)) {
            obs::FlightEvent event;
            event.round = aggregation_step;
            event.device = static_cast<std::uint32_t>(t);
            event.kind = obs::FlightEventKind::kDeadlineMiss;
            event.cause = static_cast<int>(core::kDeadlineMissed);
            event.t_start = round_start + device_deadline;
            event.t_end = round_start + completion[t];
            flight->record(event);
          }
        }
        obs::FlightEvent cut;
        cut.round = aggregation_step;
        cut.device = obs::kFlightServerDevice;
        cut.kind = obs::FlightEventKind::kQuorumCut;
        cut.t_start = round_start;
        cut.t_end = round_start + t_cut;
        cut.staleness = fresh_count;
        flight->record(cut);
      }

      // Feed the deadline tracker after classification, ascending (the
      // EWMA influences the *next* dispatch, never the current cut).
      for (std::size_t t = 0; t < num_users; ++t) {
        if (dispatched[t] != 0 && delivered[t] != 0) {
          deadlines.observe(t, completion[t]);
        }
      }
      virtual_seconds += t_cut;

      // -- bounded staleness: evict blocks that aged past the bound --------
      // Runs before the server update, so no block older than S steps ever
      // enters an aggregate.
      for (std::size_t t = 0; t < num_users; ++t) {
        if (staleness.age(t, aggregation_step) > staleness_bound_now) {
          evict(t, last_miss_cause[t]);
        }
      }

      // Degradation tallies and miss-cause tracking (fixed device order).
      for (std::size_t t = 0; t < num_users; ++t) {
        switch (status[t]) {
          case core::kOffline:
            ++result.diagnostics.devices_offline_total;
            break;
          case core::kDownlinkFailed:
            ++result.diagnostics.downlink_failures_total;
            break;
          case core::kDeadlineMissed:
            ++result.diagnostics.deadline_misses_total;
            break;
          case core::kUplinkFailed:
            ++result.diagnostics.uplink_failures_total;
            break;
          default:
            break;
        }
        if (fresh[t] != 0) {
          last_miss_cause[t] = core::kParticipated;
        } else if (status[t] != core::kParticipated) {
          last_miss_cause[t] = status[t];
        }
      }
      const double participation_rate = static_cast<double>(fresh_count) /
                                        static_cast<double>(num_users);
      result.diagnostics.participation_trace.push_back(participation_rate);
      result.async.quorum_trace.push_back(fresh_count);
      result.async.late_uploads_total += late_count;
      result.async.evictions_offline_total += ev_offline;
      result.async.evictions_late_total += ev_late;
      result.async.evictions_failed_total += ev_failed;
      result.async.max_staleness_seen =
          std::max(result.async.max_staleness_seen,
                   staleness.max_age(aggregation_step));

      // -- server closed-form updates (Eq. 23), identical FP sequence ------
      Stopwatch server_watch;
      double primal_sq = 0.0;
      double w_sq = 0.0, target_sq = 0.0, u_sq = 0.0;
      {
        PLOS_SPAN("plos.server_update");
        linalg::Vector acc = linalg::zeros(dim);
        for (std::size_t t = 0; t < num_users; ++t) {
          linalg::axpy(1.0, w[t], acc);
          linalg::axpy(-1.0, v[t], acc);
          linalg::axpy(1.0, u_old[t], acc);
        }
        linalg::scale(acc, base.rho / (2.0 + static_cast<double>(num_users) *
                                                 base.rho));
        w0 = std::move(acc);
        for (std::size_t t = 0; t < num_users; ++t) {
          linalg::Vector residual = linalg::sub(w[t], w0);
          linalg::axpy(-1.0, v[t], residual);
          // Fresh blocks refresh their dual exactly as in the synchronous
          // engine; late-folded blocks move theirs by the staleness
          // discount; everyone else keeps u in force.
          if (fresh[t] != 0) {
            u[t] = linalg::add(u_old[t], residual);
          } else if (late_weight[t] > 0.0) {
            u[t] = u_old[t];
            linalg::axpy(late_weight[t], residual, u[t]);
          }
          primal_sq += linalg::squared_norm(residual);
          w_sq += linalg::squared_norm(w[t]);
          linalg::Vector target = linalg::add(w0, v[t]);
          target_sq += linalg::squared_norm(target);
          u_sq += linalg::squared_norm(u[t]);
        }
      }

      objective = linalg::squared_norm(w0);
      for (std::size_t t = 0; t < num_users; ++t) {
        objective += base.params.lambda / static_cast<double>(num_users) *
                         linalg::squared_norm(v[t]) +
                     xi[t];
      }
      const double dual_residual =
          base.rho * std::sqrt(2.0 * static_cast<double>(num_users)) *
          std::sqrt(linalg::squared_distance(w0, w0_old));
      const double primal_residual = std::sqrt(primal_sq);
      network->account_server_compute(server_watch.elapsed_seconds());
      network->end_round();
      if (flight != nullptr) {
        obs::FlightEvent event;
        event.round = aggregation_step;
        event.device = obs::kFlightServerDevice;
        event.kind = obs::FlightEventKind::kAggregate;
        event.t_start = virtual_seconds;
        event.t_end = virtual_seconds;
        event.staleness = fresh_count;
        flight->record(event);
      }

      result.diagnostics.objective_trace.push_back(objective);
      result.diagnostics.primal_residual_trace.push_back(primal_residual);
      result.diagnostics.dual_residual_trace.push_back(dual_residual);
      static obs::Gauge& primal_gauge =
          obs::metrics().gauge("plos.admm.primal_residual");
      static obs::Gauge& dual_gauge =
          obs::metrics().gauge("plos.admm.dual_residual");
      static obs::Gauge& objective_gauge =
          obs::metrics().gauge("plos.admm.objective");
      static obs::Gauge& participation_gauge =
          obs::metrics().gauge("plos.admm.participation_rate");
      primal_gauge.set(primal_residual);
      dual_gauge.set(dual_residual);
      objective_gauge.set(objective);
      participation_gauge.set(participation_rate);
      PLOS_LOG_TRACE("async admm iteration", obs::F("cccp", cccp),
                     obs::F("admm", admm), obs::F("objective", objective),
                     obs::F("primal_residual", primal_residual),
                     obs::F("dual_residual", dual_residual),
                     obs::F("quorum", fresh_count),
                     obs::F("late", late_count),
                     obs::F("dispatched", dispatched_count),
                     obs::F("round_quorum", round_quorum),
                     obs::F("t_cut", t_cut));

      if (telemetry || tuning) {
        obs::RoundRecord record;
        record.trainer = "distributed";
        record.cccp_round = cccp;
        record.admm_iteration = admm;
        record.objective = objective;
        record.objective_finite = std::isfinite(objective);
        record.primal_residual = primal_residual;
        record.dual_residual = dual_residual;
        record.constraints = total_working_set_size();
        record.qp_solves =
            total_device_qp_solves() - iteration_qp_solves_before;
        record.qp_iterations =
            total_device_qp_iterations() - iteration_qp_iterations_before;
        record.participation_rate = participation_rate;
        record.quorum_size = fresh_count;
        record.late_uploads = late_count;
        record.evictions_offline = ev_offline;
        record.evictions_late = ev_late;
        record.evictions_failed = ev_failed;
        staleness.fill_record(record, aggregation_step);
        obs::CauseCounters causes(core::kDeviceRoundStatusCount);
        for (std::size_t t = 0; t < num_users; ++t) {
          causes.add(static_cast<std::size_t>(status[t]));
        }
        record.cause_counts = causes.counts();
        const auto traffic = network->traffic_snapshot();
        record.bytes_to_devices =
            traffic.bytes_to_devices - previous_traffic.bytes_to_devices;
        record.bytes_to_server =
            traffic.bytes_to_server - previous_traffic.bytes_to_server;
        record.messages_dropped =
            traffic.messages_dropped - previous_traffic.messages_dropped;
        record.retries = traffic.retries - previous_traffic.retries;
        previous_traffic = traffic;
        const obs::QuantileSketch latency = network->latency_sketch();
        const obs::QuantileSketch step_latency =
            latency.diff(previous_latency);
        record.lat_count = step_latency.count();
        if (!step_latency.empty()) {
          record.lat_p50 = step_latency.quantile(0.50);
          record.lat_p90 = step_latency.quantile(0.90);
          record.lat_p99 = step_latency.quantile(0.99);
        }
        previous_latency = latency;
        if (tuning) {
          // Journal the knobs in force for THIS step, then let the
          // controller read the very record it will be journaled in — the
          // decision and its trigger land beside the evidence.
          record.tuned_quorum = quorum_now;
          record.tuned_staleness_bound = staleness_bound_now;
          const AutoTuneDecision decision = tuner.observe(record);
          record.tune_event = decision.event;
          record.tune_trigger = decision.trigger;
          if (record.tune_event[0] != '\0' && record.tune_event != "hold") {
            ++result.async.tune_actions;
          }
          quorum_now = tuner.quorum();
          staleness_bound_now = tuner.staleness_bound();
        }
        if (base.journal != nullptr) base.journal->append(record);
        if (base.watchdog != nullptr &&
            base.watchdog->observe(record) == obs::WatchdogAction::kAbort) {
          watchdog_aborted = true;
          break;
        }
      }
      ++aggregation_step;

      if (options.on_aggregate) {
        options.on_aggregate(
            AsyncAggregateView{aggregation_step, virtual_seconds, w0, w});
      }

      // Paper thresholds (Eq. 24) plus Boyd's relative terms.
      const double primal_threshold =
          sqrt_t * base.eps_abs +
          base.eps_rel * std::sqrt(std::max(w_sq, target_sq));
      const double dual_threshold =
          std::sqrt(2.0) * sqrt_t * base.eps_abs +
          base.eps_rel * base.rho * std::sqrt(u_sq);
      if (dual_residual <= dual_threshold &&
          primal_residual <= primal_threshold) {
        break;
      }
    }

    result.diagnostics.round_seconds.push_back(round_watch.elapsed_seconds());
    result.diagnostics.round_admm_iterations.push_back(
        result.diagnostics.admm_iterations_total - round_admm_before);
    result.diagnostics.round_qp_solves.push_back(total_device_qp_solves() -
                                                 round_qp_before);
    PLOS_LOG_DEBUG(
        "async cccp round", obs::F("round", cccp),
        obs::F("objective", objective),
        obs::F("admm_iterations",
               result.diagnostics.round_admm_iterations.back()),
        obs::F("qp_solves", result.diagnostics.round_qp_solves.back()),
        obs::F("virtual_seconds", virtual_seconds));

    if (watchdog_aborted) {
      result.diagnostics.watchdog_aborted = true;
      break;
    }
    if (std::abs(previous_cccp_objective - objective) <=
        base.cccp.objective_tolerance * (1.0 + std::abs(objective))) {
      break;
    }
    previous_cccp_objective = objective;
  }
  result.diagnostics.qp_solves = total_device_qp_solves();

  result.model.global_weights = w0;
  for (std::size_t t = 0; t < num_users; ++t) {
    result.model.user_deviations[t] = linalg::sub(w[t], w0);
  }
  result.diagnostics.train_seconds = total_watch.elapsed_seconds();
  result.diagnostics.fault_counters = network->fault_counters();
  result.async.virtual_seconds = virtual_seconds;
  result.async.final_quorum = quorum_now;
  result.async.final_staleness_bound = staleness_bound_now;

  PLOS_LOG_INFO(
      "async quorum train done",
      obs::F("cccp_rounds", result.diagnostics.cccp_iterations),
      obs::F("admm_iterations", result.diagnostics.admm_iterations_total),
      obs::F("qp_solves", result.diagnostics.qp_solves),
      obs::F("late_uploads", result.async.late_uploads_total),
      obs::F("evictions", result.async.evictions_offline_total +
                              result.async.evictions_late_total +
                              result.async.evictions_failed_total),
      obs::F("max_staleness", result.async.max_staleness_seen),
      obs::F("virtual_seconds", result.async.virtual_seconds),
      obs::F("seconds", result.diagnostics.train_seconds));
  return result;
}

}  // namespace plos::async
