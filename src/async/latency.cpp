#include "async/latency.hpp"

#include <limits>

#include "common/assert.hpp"
#include "net/fault.hpp"

namespace plos::async {

namespace {

// Draw family for the completion-time jitter. net::FaultModel reserves the
// low kinds (0x01-0x06) for its own schedule; external consumers of
// net::counter_uniform key from 0x10 upward.
constexpr std::uint64_t kLatencyJitterDraw = 0x10;

}  // namespace

double completion_seconds(const LatencyModelSpec& spec, double link_seconds,
                          int qp_iteration_delta, double cpu_slowdown,
                          double time_multiplier, std::uint64_t round,
                          std::size_t device) {
  PLOS_CHECK(spec.jitter >= 0.0 && spec.jitter < 1.0,
             "LatencyModelSpec: jitter outside [0, 1)");
  PLOS_CHECK(spec.compute_base_s >= 0.0 && spec.compute_per_qp_iter_s >= 0.0,
             "LatencyModelSpec: negative compute proxy");
  const double compute =
      (spec.compute_base_s +
       spec.compute_per_qp_iter_s * static_cast<double>(qp_iteration_delta)) *
      cpu_slowdown * time_multiplier;
  double total = link_seconds + compute;
  if (spec.jitter > 0.0) {
    const double u = net::counter_uniform(
        spec.seed, kLatencyJitterDraw, round,
        static_cast<std::uint64_t>(device), /*direction=*/0, /*attempt=*/0);
    total *= 1.0 + spec.jitter * (2.0 * u - 1.0);
  }
  return total;
}

AdaptiveDeadlines::AdaptiveDeadlines(std::size_t num_users, bool adaptive,
                                     double slack, double alpha,
                                     double fixed_deadline_s)
    : adaptive_(adaptive),
      slack_(slack),
      alpha_(alpha),
      fixed_deadline_s_(fixed_deadline_s),
      ewma_(num_users, 0.0),
      observed_(num_users, 0) {
  PLOS_CHECK(slack >= 1.0, "AdaptiveDeadlines: slack must be >= 1");
  PLOS_CHECK(alpha > 0.0 && alpha <= 1.0,
             "AdaptiveDeadlines: alpha outside (0, 1]");
  PLOS_CHECK(fixed_deadline_s >= 0.0,
             "AdaptiveDeadlines: negative fixed deadline");
}

double AdaptiveDeadlines::deadline(std::size_t device) const {
  PLOS_CHECK(device < ewma_.size(), "AdaptiveDeadlines: device out of range");
  if (adaptive_ && observed_[device] != 0) return slack_ * ewma_[device];
  if (fixed_deadline_s_ > 0.0) return fixed_deadline_s_;
  return std::numeric_limits<double>::infinity();
}

void AdaptiveDeadlines::observe(std::size_t device, double seconds) {
  PLOS_CHECK(device < ewma_.size(), "AdaptiveDeadlines: device out of range");
  if (observed_[device] == 0) {
    ewma_[device] = seconds;
    observed_[device] = 1;
  } else {
    ewma_[device] = alpha_ * seconds + (1.0 - alpha_) * ewma_[device];
  }
}

double AdaptiveDeadlines::ewma(std::size_t device) const {
  PLOS_CHECK(device < ewma_.size(), "AdaptiveDeadlines: device out of range");
  return ewma_[device];
}

}  // namespace plos::async
