#include "qp/projection.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"

namespace plos::qp {

void project_capped_simplex(std::span<double> x, double cap) {
  PLOS_CHECK(cap >= 0.0, "project_capped_simplex: negative cap");
  double clipped_sum = 0.0;
  for (double& v : x) {
    if (v < 0.0) v = 0.0;
    clipped_sum += v;
  }
  if (clipped_sum <= cap) return;

  // Project onto { v >= 0, sum(v) = cap }: find theta such that
  // sum_i max(x_i - theta, 0) = cap, via descending sort.
  std::vector<double> u(x.begin(), x.end());
  std::sort(u.begin(), u.end(), std::greater<double>());
  double running = 0.0;
  double theta = 0.0;
  for (std::size_t k = 0; k < u.size(); ++k) {
    running += u[k];
    const double candidate = (running - cap) / static_cast<double>(k + 1);
    if (k + 1 == u.size() || u[k + 1] <= candidate) {
      theta = candidate;
      break;
    }
  }
  for (double& v : x) v = std::max(v - theta, 0.0);
}

void project_box(std::span<double> x, double lo, double hi) {
  PLOS_CHECK(lo <= hi, "project_box: lo > hi");
  for (double& v : x) v = std::clamp(v, lo, hi);
}

}  // namespace plos::qp
