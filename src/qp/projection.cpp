#include "qp/projection.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/assert.hpp"
#include "linalg/kernels.hpp"

namespace plos::qp {

void project_capped_simplex(std::span<double> x, double cap) {
  PLOS_CHECK(cap >= 0.0, "project_capped_simplex: negative cap");
  for (double& v : x) {
    if (v < 0.0) v = 0.0;
  }
  // Same left-to-right add order as the fused clamp-and-sum loop this
  // replaces: clamping only rewrites elements before any is added.
  const double clipped_sum = linalg::kernels::serial_sum(x);
  if (clipped_sum <= cap) return;

  // Project onto { v >= 0, sum(v) = cap }: find theta such that
  // sum_i max(x_i - theta, 0) = cap, via descending sort.
  std::vector<double> u(x.begin(), x.end());
  std::sort(u.begin(), u.end(), std::greater<double>());
  double running = 0.0;
  double theta = 0.0;
  for (std::size_t k = 0; k < u.size(); ++k) {
    running += u[k];
    const double candidate = (running - cap) / static_cast<double>(k + 1);
    if (k + 1 == u.size() || u[k + 1] <= candidate) {
      theta = candidate;
      break;
    }
  }
  for (double& v : x) v = std::max(v - theta, 0.0);

  // The threshold step can leave the floating-point sum a few ulps ABOVE
  // cap, and a re-projection of such a point would re-enter this branch and
  // drift every coordinate by an ulp. Shave the excess off the largest
  // coordinate (first index on ties) until the same left-to-right sum the
  // feasibility check above uses comes out <= cap. The post-condition makes
  // the projection bitwise idempotent: a second application hits the early
  // return and touches nothing.
  for (;;) {
    const double sum = linalg::kernels::serial_sum(x);
    if (sum <= cap) break;
    std::size_t arg = 0;
    for (std::size_t i = 1; i < x.size(); ++i) {
      if (x[i] > x[arg]) arg = i;
    }
    double shaved = x[arg] - (sum - cap);
    // Guarantee strict progress even when the excess rounds away.
    if (!(shaved < x[arg])) shaved = std::nextafter(x[arg], 0.0);
    x[arg] = std::max(shaved, 0.0);
  }
}

void project_box(std::span<double> x, double lo, double hi) {
  PLOS_CHECK(lo <= hi, "project_box: lo > hi");
  for (double& v : x) v = std::clamp(v, lo, hi);
}

}  // namespace plos::qp
