// Persistent dual warm-start state for the cutting-plane QP solvers.
//
// The trainers re-solve one small capped-simplex dual per user (centralized:
// one joint dual; distributed: one per device) thousands of times — across
// cutting-plane iterations, ADMM iterations, and CCCP rounds. Within a round
// the working set only grows, so the previous γ padded with zeros is a good
// warm start (the solvers already do that). ACROSS rounds the working set is
// rebuilt from scratch, but CCCP signs converge quickly, so later rounds
// re-derive mostly the *same* planes — the WarmStore remembers the last
// converged γ per (slot, plane id) and seeds re-appearing planes with it
// instead of zero.
//
// Plane ids are content-interned (core::PlaneGramCache), so "the same plane"
// means bitwise-identical s — a seed can never leak across genuinely
// different constraints. Seeds only initialize the FISTA iterate (which is
// projected before use); they never alter the problem, so a bad seed can
// only cost iterations, never correctness.
//
// Storage is structure-of-arrays: per-slot parallel arrays of plane id and
// γ, sorted by id. Slots are independent — per-device slots are touched only
// by the worker that owns the device in a round, and the flat arrays are
// what a later aggregator shard would snapshot/ship per shard (ROADMAP
// item 1). No wall-clock or pointer-derived state lives here: everything is
// a pure function of the solver trajectory (cache-purity lint rule).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/vector.hpp"

namespace plos::qp {

class WarmStore {
 public:
  explicit WarmStore(std::size_t num_slots);

  std::size_t num_slots() const { return ids_.size(); }

  /// Replaces slot's stored duals with (plane_ids[k], gammas[k]) pairs.
  /// plane_ids need not be sorted; when an id repeats (a plane re-entered
  /// the working set within a round) the last-listed γ wins.
  void store(std::size_t slot, std::span<const std::uint32_t> plane_ids,
             std::span<const double> gammas);

  /// γ last stored for (slot, plane_id), or 0.0 when the plane has never
  /// been part of this slot's converged dual.
  double seed(std::size_t slot, std::uint32_t plane_id) const;

  /// Convenience: seeds for a whole working set, in order.
  linalg::Vector seed_vector(std::size_t slot,
                             std::span<const std::uint32_t> plane_ids) const;

  /// Drops slot's stored duals.
  void clear(std::size_t slot);

  /// Number of stored (plane, γ) pairs in `slot` (tests/diagnostics).
  std::size_t slot_size(std::size_t slot) const;

 private:
  // Structure-of-arrays per slot, kept sorted by plane id for binary-search
  // lookups and deterministic serialization order.
  std::vector<std::vector<std::uint32_t>> ids_;
  std::vector<std::vector<double>> gammas_;
};

}  // namespace plos::qp
