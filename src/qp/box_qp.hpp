// Box-constrained convex QP:  min ½ xᵀHx − cᵀx  s.t.  lo ≤ x ≤ hi.
//
// General-purpose substrate solver (dual of the classic C-SVM has this shape
// per coordinate block); solved with projected gradient + FISTA restart.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "qp/capped_simplex_qp.hpp"  // reuses QpOptions / QpResult

namespace plos::qp {

struct BoxQpProblem {
  linalg::Matrix hessian;  ///< H (n x n, symmetric PSD)
  linalg::Vector linear;   ///< c (n)
  double lo = 0.0;
  double hi = 1.0;
};

QpResult solve_box_qp(const BoxQpProblem& problem, const QpOptions& options = {});

}  // namespace plos::qp
