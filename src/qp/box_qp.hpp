// Box-constrained convex QP:  min ½ xᵀHx − cᵀx  s.t.  lo ≤ x ≤ hi.
//
// General-purpose substrate solver (dual of the classic C-SVM has this shape
// per coordinate block); solved with projected gradient + FISTA restart.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "qp/capped_simplex_qp.hpp"  // reuses QpOptions / QpResult

namespace plos::qp {

struct BoxQpProblem {
  linalg::Matrix hessian;  ///< H (n x n, symmetric PSD)
  linalg::Vector linear;   ///< c (n)
  double lo = 0.0;
  double hi = 1.0;
};

QpResult solve_box_qp(const BoxQpProblem& problem, const QpOptions& options = {});

/// Max KKT violation of `x` for `problem`: box-feasibility violation plus
/// stationarity measured as the norm of the unit-step projected gradient.
/// Mirrors qp::kkt_residual for the capped-simplex dual; used by the
/// property-test suite.
double kkt_residual(const BoxQpProblem& problem, std::span<const double> x);

}  // namespace plos::qp
