#include "qp/capped_simplex_qp.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/stopwatch.hpp"
#include "linalg/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "qp/projection.hpp"

namespace plos::qp {

namespace {

void validate(const CappedSimplexQpProblem& p) {
  const std::size_t n = p.linear.size();
  PLOS_CHECK(p.hessian.rows() == n && p.hessian.cols() == n,
             "CappedSimplexQp: hessian/linear size mismatch");
  PLOS_CHECK(p.groups.size() == p.caps.size(),
             "CappedSimplexQp: groups/caps size mismatch");
  std::vector<char> seen(n, 0);
  for (const auto& g : p.groups) {
    PLOS_CHECK(!g.empty(), "CappedSimplexQp: empty group");
    for (std::size_t idx : g) {
      PLOS_CHECK(idx < n, "CappedSimplexQp: group index out of range");
      PLOS_CHECK(!seen[idx], "CappedSimplexQp: groups must be disjoint");
      seen[idx] = 1;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    PLOS_CHECK(seen[i], "CappedSimplexQp: groups must cover all indices");
  }
  for (double cap : p.caps) {
    PLOS_CHECK(cap >= 0.0, "CappedSimplexQp: negative cap");
  }
}

void project_groups(const CappedSimplexQpProblem& p, linalg::Vector& x) {
  // Gather/scatter per group; the feasible set is a product over groups so
  // projection decomposes exactly.
  for (std::size_t g = 0; g < p.groups.size(); ++g) {
    const auto& idx = p.groups[g];
    linalg::Vector block(idx.size());
    for (std::size_t k = 0; k < idx.size(); ++k) block[k] = x[idx[k]];
    project_capped_simplex(block, p.caps[g]);
    for (std::size_t k = 0; k < idx.size(); ++k) x[idx[k]] = block[k];
  }
}

double objective(const CappedSimplexQpProblem& p,
                 std::span<const double> x) {
  const linalg::Vector hx = p.hessian.matvec(x);
  return 0.5 * linalg::dot(x, hx) - linalg::dot(p.linear, x);
}

linalg::Vector gradient(const CappedSimplexQpProblem& p,
                        std::span<const double> x) {
  linalg::Vector g = p.hessian.matvec(x);
  linalg::axpy(-1.0, p.linear, g);
  return g;
}

// Step length for a given Lipschitz constant: estimate it unless the
// caller supplied a cached value. Checked builds re-derive the estimate
// and insist on exact equality — a stale cache would silently change
// iterate trajectories, so the contract is bitwise, not approximate.
double resolve_lipschitz(const linalg::Matrix& h, double supplied,
                         obs::Counter& reuses) {
  if (supplied > 0.0) {
    PLOS_DCHECK(supplied == lipschitz_estimate(h),
                "QpOptions::lipschitz " << supplied
                                        << " != fresh estimate — stale cache");
    reuses.increment();
    return supplied;
  }
  return lipschitz_estimate(h);
}

}  // namespace

// Largest eigenvalue of H via power iteration (Lipschitz constant of the
// gradient). A loose overestimate only slows convergence, so a handful of
// iterations with a safety factor is enough.
double lipschitz_estimate(const linalg::Matrix& h) {
  const std::size_t n = h.rows();
  linalg::Vector v(n, 1.0 / std::sqrt(static_cast<double>(n)));
  double lambda = 0.0;
  for (int it = 0; it < 30; ++it) {
    linalg::Vector hv = h.matvec(v);
    const double nrm = linalg::norm(hv);
    if (nrm <= 1e-300) return 1e-12;  // H ~ 0: any small constant works
    lambda = nrm;
    linalg::scale(hv, 1.0 / nrm);
    v = std::move(hv);
  }
  return 1.1 * lambda + 1e-12;
}

QpResult solve_capped_simplex_qp(const CappedSimplexQpProblem& problem,
                                 const QpOptions& options) {
  PLOS_SPAN("qp.capped_simplex_solve");
  const Stopwatch watch;
  validate(problem);
  const std::size_t n = problem.linear.size();

  QpResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }

  static obs::Counter& lipschitz_reuses =
      obs::metrics().counter("qp.capped_simplex.lipschitz_reuses");
  static obs::Counter& warm_hits =
      obs::metrics().counter("qp.capped_simplex.warm_hits");
  const double lips =
      resolve_lipschitz(problem.hessian, options.lipschitz, lipschitz_reuses);
  const double step = 1.0 / lips;

  linalg::Vector x(n, 0.0);
  if (!options.warm_start.empty()) {
    PLOS_CHECK(options.warm_start.size() == n,
               "CappedSimplexQp: warm start size mismatch");
    x = options.warm_start;
  }
  project_groups(problem, x);
  linalg::Vector y = x;       // FISTA extrapolation point
  linalg::Vector x_prev = x;
  double momentum = 1.0;      // FISTA t_k sequence
  double f_prev = objective(problem, x);

  // Iteration-0 convergence test: when the projected warm start already
  // satisfies the stopping rule it is returned unchanged, so re-solving
  // from a converged solution is bitwise-idempotent (the property-test
  // suite pins this) and late ADMM iterations whose working set and prox
  // center barely moved skip the FISTA loop entirely.
  {
    linalg::Vector probe = x;
    linalg::axpy(-step, gradient(problem, x), probe);
    project_groups(problem, probe);
    const double pg_step0 = std::sqrt(linalg::squared_distance(probe, x)) /
                            std::max(step, 1e-300);
    if (pg_step0 <= options.tolerance * (1.0 + std::abs(f_prev))) {
      result.converged = true;
      if (!options.warm_start.empty()) warm_hits.increment();
    }
  }

  for (int it = 0; !result.converged && it < options.max_iterations; ++it) {
    const linalg::Vector grad_y = gradient(problem, y);
    linalg::Vector x_next = y;
    linalg::axpy(-step, grad_y, x_next);
    project_groups(problem, x_next);

    // Convergence: projected-gradient step measured at the new iterate.
    linalg::Vector pg = gradient(problem, x_next);
    linalg::Vector probe = x_next;
    linalg::axpy(-step, pg, probe);
    project_groups(problem, probe);
    const double pg_step = std::sqrt(linalg::squared_distance(probe, x_next)) /
                           std::max(step, 1e-300);

    const double f_next = objective(problem, x_next);
    // Adaptive restart (O'Donoghue & Candès): drop momentum on non-descent.
    if (f_next > f_prev) {
      momentum = 1.0;
      y = x_next;
    } else {
      const double momentum_next =
          0.5 * (1.0 + std::sqrt(1.0 + 4.0 * momentum * momentum));
      const double beta = (momentum - 1.0) / momentum_next;
      y = x_next;
      for (std::size_t i = 0; i < n; ++i) y[i] += beta * (x_next[i] - x_prev[i]);
      momentum = momentum_next;
    }
    x_prev = x;
    x = x_next;
    f_prev = f_next;
    result.iterations = it + 1;

    if (pg_step <= options.tolerance * (1.0 + std::abs(f_next))) {
      result.converged = true;
      break;
    }
  }

  result.solution = std::move(x);
  result.objective = PLOS_CHECK_FINITE(objective(problem, result.solution));

  // Checked-build postcondition: the iterate is (numerically) inside the
  // capped simplex — dual feasibility of the recovered multipliers.
  for (std::size_t i = 0; i < n; ++i) {
    PLOS_DCHECK(result.solution[i] >= -1e-9,
                "CappedSimplexQp: negative multiplier gamma[" << i << "]="
                                                             << result.solution[i]);
  }
  for (std::size_t g = 0; g < problem.groups.size(); ++g) {
    const double sum =
        linalg::kernels::serial_gather_sum(result.solution, problem.groups[g]);
    PLOS_DCHECK(sum <= problem.caps[g] + 1e-9 * (1.0 + problem.caps[g]),
                "CappedSimplexQp: group " << g << " sum " << sum
                                          << " exceeds cap " << problem.caps[g]);
  }

  // Instrument handles are resolved once; the registry is a process-lifetime
  // singleton, so the cached references never dangle across reset_values().
  static obs::Counter& solves = obs::metrics().counter("qp.capped_simplex.solves");
  static obs::Counter& seconds =
      obs::metrics().counter("qp.capped_simplex.seconds");
  static obs::Histogram& iterations = obs::metrics().histogram(
      "qp.capped_simplex.iterations", obs::default_iteration_buckets());
  solves.increment();
  seconds.add(watch.elapsed_seconds());
  iterations.record(static_cast<double>(result.iterations));
  return result;
}

double kkt_residual(const CappedSimplexQpProblem& problem,
                    std::span<const double> gamma) {
  validate(problem);
  PLOS_CHECK(gamma.size() == problem.linear.size(),
             "kkt_residual: gamma size mismatch");

  double feasibility = 0.0;
  for (double v : gamma) feasibility = std::max(feasibility, -v);
  for (std::size_t g = 0; g < problem.groups.size(); ++g) {
    const double s =
        linalg::kernels::serial_gather_sum(gamma, problem.groups[g]);
    feasibility = std::max(feasibility, s - problem.caps[g]);
  }

  // Stationarity on a convex set: x is optimal iff x == P(x - grad(x)).
  linalg::Vector probe(gamma.begin(), gamma.end());
  const linalg::Vector grad = gradient(problem, gamma);
  linalg::axpy(-1.0, grad, probe);
  project_groups(problem, probe);
  linalg::Vector x(gamma.begin(), gamma.end());
  const double stationarity = std::sqrt(linalg::squared_distance(probe, x));

  return std::max(feasibility, stationarity);
}

}  // namespace plos::qp
