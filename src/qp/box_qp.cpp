#include "qp/box_qp.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/stopwatch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "qp/projection.hpp"

namespace plos::qp {

namespace {

double objective(const BoxQpProblem& p, std::span<const double> x) {
  const linalg::Vector hx = p.hessian.matvec(x);
  return 0.5 * linalg::dot(x, hx) - linalg::dot(p.linear, x);
}

linalg::Vector gradient(const BoxQpProblem& p, std::span<const double> x) {
  linalg::Vector g = p.hessian.matvec(x);
  linalg::axpy(-1.0, p.linear, g);
  return g;
}

double lipschitz_estimate(const linalg::Matrix& h) {
  const std::size_t n = h.rows();
  linalg::Vector v(n, 1.0 / std::sqrt(static_cast<double>(n)));
  double lambda = 0.0;
  for (int it = 0; it < 30; ++it) {
    linalg::Vector hv = h.matvec(v);
    const double nrm = linalg::norm(hv);
    if (nrm <= 1e-300) return 1e-12;
    lambda = nrm;
    linalg::scale(hv, 1.0 / nrm);
    v = std::move(hv);
  }
  return 1.1 * lambda + 1e-12;
}

}  // namespace

QpResult solve_box_qp(const BoxQpProblem& problem, const QpOptions& options) {
  PLOS_SPAN("qp.box_solve");
  const Stopwatch watch;
  const std::size_t n = problem.linear.size();
  PLOS_CHECK(problem.hessian.rows() == n && problem.hessian.cols() == n,
             "BoxQp: hessian/linear size mismatch");
  PLOS_CHECK(problem.lo <= problem.hi, "BoxQp: lo > hi");

  QpResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }

  const double step = 1.0 / lipschitz_estimate(problem.hessian);
  linalg::Vector x(n, 0.0);
  project_box(x, problem.lo, problem.hi);
  linalg::Vector y = x;
  linalg::Vector x_prev = x;
  double momentum = 1.0;
  double f_prev = objective(problem, x);

  for (int it = 0; it < options.max_iterations; ++it) {
    const linalg::Vector grad_y = gradient(problem, y);
    linalg::Vector x_next = y;
    linalg::axpy(-step, grad_y, x_next);
    project_box(x_next, problem.lo, problem.hi);

    linalg::Vector probe = x_next;
    linalg::axpy(-step, gradient(problem, x_next), probe);
    project_box(probe, problem.lo, problem.hi);
    const double pg_step =
        std::sqrt(linalg::squared_distance(probe, x_next)) / step;

    const double f_next = objective(problem, x_next);
    if (f_next > f_prev) {
      momentum = 1.0;
      y = x_next;
    } else {
      const double momentum_next =
          0.5 * (1.0 + std::sqrt(1.0 + 4.0 * momentum * momentum));
      const double beta = (momentum - 1.0) / momentum_next;
      y = x_next;
      for (std::size_t i = 0; i < n; ++i) y[i] += beta * (x_next[i] - x_prev[i]);
      momentum = momentum_next;
    }
    x_prev = x;
    x = x_next;
    f_prev = f_next;
    result.iterations = it + 1;

    if (pg_step <= options.tolerance * (1.0 + std::abs(f_next))) {
      result.converged = true;
      break;
    }
  }

  result.solution = std::move(x);
  result.objective = PLOS_CHECK_FINITE(objective(problem, result.solution));

  // Checked-build postcondition: projection kept every coordinate inside
  // the box (exact — project_box clamps, no arithmetic slack needed).
  for (std::size_t i = 0; i < n; ++i) {
    PLOS_DCHECK(result.solution[i] >= problem.lo &&
                    result.solution[i] <= problem.hi,
                "BoxQp: solution[" << i << "]=" << result.solution[i]
                                   << " outside [" << problem.lo << ", "
                                   << problem.hi << "]");
  }

  static obs::Counter& solves = obs::metrics().counter("qp.box.solves");
  static obs::Counter& seconds = obs::metrics().counter("qp.box.seconds");
  static obs::Histogram& iterations = obs::metrics().histogram(
      "qp.box.iterations", obs::default_iteration_buckets());
  solves.increment();
  seconds.add(watch.elapsed_seconds());
  iterations.record(static_cast<double>(result.iterations));
  return result;
}

}  // namespace plos::qp
