#include "qp/box_qp.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/stopwatch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "qp/projection.hpp"

namespace plos::qp {

namespace {

double objective(const BoxQpProblem& p, std::span<const double> x) {
  const linalg::Vector hx = p.hessian.matvec(x);
  return 0.5 * linalg::dot(x, hx) - linalg::dot(p.linear, x);
}

linalg::Vector gradient(const BoxQpProblem& p, std::span<const double> x) {
  linalg::Vector g = p.hessian.matvec(x);
  linalg::axpy(-1.0, p.linear, g);
  return g;
}

}  // namespace

QpResult solve_box_qp(const BoxQpProblem& problem, const QpOptions& options) {
  PLOS_SPAN("qp.box_solve");
  const Stopwatch watch;
  const std::size_t n = problem.linear.size();
  PLOS_CHECK(problem.hessian.rows() == n && problem.hessian.cols() == n,
             "BoxQp: hessian/linear size mismatch");
  PLOS_CHECK(problem.lo <= problem.hi, "BoxQp: lo > hi");

  QpResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }

  static obs::Counter& lipschitz_reuses =
      obs::metrics().counter("qp.box.lipschitz_reuses");
  static obs::Counter& warm_hits = obs::metrics().counter("qp.box.warm_hits");
  double lips = options.lipschitz;
  if (lips > 0.0) {
    PLOS_DCHECK(lips == lipschitz_estimate(problem.hessian),
                "QpOptions::lipschitz " << lips
                                        << " != fresh estimate — stale cache");
    lipschitz_reuses.increment();
  } else {
    lips = lipschitz_estimate(problem.hessian);
  }
  const double step = 1.0 / lips;

  linalg::Vector x(n, 0.0);
  if (!options.warm_start.empty()) {
    PLOS_CHECK(options.warm_start.size() == n,
               "BoxQp: warm start size mismatch");
    x = options.warm_start;
  }
  project_box(x, problem.lo, problem.hi);
  linalg::Vector y = x;
  linalg::Vector x_prev = x;
  double momentum = 1.0;
  double f_prev = objective(problem, x);

  // Iteration-0 convergence test — mirrors the capped-simplex solver: a
  // converged (projected) warm start returns unchanged after 0 iterations.
  {
    linalg::Vector probe = x;
    linalg::axpy(-step, gradient(problem, x), probe);
    project_box(probe, problem.lo, problem.hi);
    const double pg_step0 =
        std::sqrt(linalg::squared_distance(probe, x)) / step;
    if (pg_step0 <= options.tolerance * (1.0 + std::abs(f_prev))) {
      result.converged = true;
      if (!options.warm_start.empty()) warm_hits.increment();
    }
  }

  for (int it = 0; !result.converged && it < options.max_iterations; ++it) {
    const linalg::Vector grad_y = gradient(problem, y);
    linalg::Vector x_next = y;
    linalg::axpy(-step, grad_y, x_next);
    project_box(x_next, problem.lo, problem.hi);

    linalg::Vector probe = x_next;
    linalg::axpy(-step, gradient(problem, x_next), probe);
    project_box(probe, problem.lo, problem.hi);
    const double pg_step =
        std::sqrt(linalg::squared_distance(probe, x_next)) / step;

    const double f_next = objective(problem, x_next);
    if (f_next > f_prev) {
      momentum = 1.0;
      y = x_next;
    } else {
      const double momentum_next =
          0.5 * (1.0 + std::sqrt(1.0 + 4.0 * momentum * momentum));
      const double beta = (momentum - 1.0) / momentum_next;
      y = x_next;
      for (std::size_t i = 0; i < n; ++i) y[i] += beta * (x_next[i] - x_prev[i]);
      momentum = momentum_next;
    }
    x_prev = x;
    x = x_next;
    f_prev = f_next;
    result.iterations = it + 1;

    if (pg_step <= options.tolerance * (1.0 + std::abs(f_next))) {
      result.converged = true;
      break;
    }
  }

  result.solution = std::move(x);
  result.objective = PLOS_CHECK_FINITE(objective(problem, result.solution));

  // Checked-build postcondition: projection kept every coordinate inside
  // the box (exact — project_box clamps, no arithmetic slack needed).
  for (std::size_t i = 0; i < n; ++i) {
    PLOS_DCHECK(result.solution[i] >= problem.lo &&
                    result.solution[i] <= problem.hi,
                "BoxQp: solution[" << i << "]=" << result.solution[i]
                                   << " outside [" << problem.lo << ", "
                                   << problem.hi << "]");
  }

  static obs::Counter& solves = obs::metrics().counter("qp.box.solves");
  static obs::Counter& seconds = obs::metrics().counter("qp.box.seconds");
  static obs::Histogram& iterations = obs::metrics().histogram(
      "qp.box.iterations", obs::default_iteration_buckets());
  solves.increment();
  seconds.add(watch.elapsed_seconds());
  iterations.record(static_cast<double>(result.iterations));
  return result;
}

double kkt_residual(const BoxQpProblem& problem, std::span<const double> x) {
  const std::size_t n = problem.linear.size();
  PLOS_CHECK(problem.hessian.rows() == n && problem.hessian.cols() == n,
             "kkt_residual: hessian/linear size mismatch");
  PLOS_CHECK(x.size() == n, "kkt_residual: x size mismatch");

  double feasibility = 0.0;
  for (double v : x) {
    feasibility = std::max(feasibility, problem.lo - v);
    feasibility = std::max(feasibility, v - problem.hi);
  }

  // Stationarity on a convex set: x is optimal iff x == P(x - grad(x)).
  linalg::Vector probe(x.begin(), x.end());
  const linalg::Vector grad = gradient(problem, x);
  linalg::axpy(-1.0, grad, probe);
  project_box(probe, problem.lo, problem.hi);
  const double stationarity = std::sqrt(linalg::squared_distance(probe, x));

  return std::max(feasibility, stationarity);
}

}  // namespace plos::qp
