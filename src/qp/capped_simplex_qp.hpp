// Convex QP over a product of capped simplices, solved with FISTA
// (accelerated projected gradient) plus adaptive restart.
//
// This is the dual shape of both PLOS cutting-plane QPs:
//   * centralized dual (paper Eq. 16): one group per user t with cap T/(2λ);
//   * distributed per-device dual (derived from Eq. 22): a single group with
//     cap 1.
//
//   minimize    f(γ) = ½ γᵀ H γ − cᵀ γ
//   subject to  γ ≥ 0,  Σ_{k ∈ group g} γ_k ≤ cap_g  for every group g
//
// H must be symmetric PSD. Groups must partition {0, …, n−1}.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace plos::qp {

struct CappedSimplexQpProblem {
  linalg::Matrix hessian;                        ///< H (n x n, symmetric PSD)
  linalg::Vector linear;                         ///< c (n)
  std::vector<std::vector<std::size_t>> groups;  ///< partition of indices
  linalg::Vector caps;                           ///< one cap per group
};

struct QpOptions {
  /// Stop when the norm of the projected-gradient step falls below this.
  double tolerance = 1e-9;
  int max_iterations = 5000;
  /// Optional warm start; projected onto the feasible set before use.
  /// Cutting-plane loops re-solve a growing problem, so passing the previous
  /// solution (padded with zeros for new variables) cuts iterations sharply.
  /// A warm start that already satisfies the convergence test is returned
  /// unchanged after zero iterations (see QpResult::iterations), which is
  /// what makes warm-started re-solves bitwise-idempotent.
  linalg::Vector warm_start;
  /// Precomputed gradient Lipschitz constant for `hessian` (the FISTA step
  /// is 1/L). 0 = estimate internally with lipschitz_estimate(). Callers
  /// that re-solve with an unchanged Hessian cache the estimate and pass it
  /// here; because lipschitz_estimate is a pure function of H, supplying
  /// the cached value is bitwise-neutral (checked builds re-derive it and
  /// PLOS_DCHECK exact equality).
  double lipschitz = 0.0;
};

struct QpResult {
  linalg::Vector solution;
  double objective = 0.0;  ///< f at the solution (minimization form)
  int iterations = 0;      ///< 0 = the (projected) warm start already passed
  bool converged = false;
};

/// Validates the problem (shapes, group partition, caps) and solves it.
QpResult solve_capped_simplex_qp(const CappedSimplexQpProblem& problem,
                                 const QpOptions& options = {});

/// Max KKT violation of `gamma` for `problem`: feasibility violation plus
/// stationarity measured as the norm of the unit-step projected gradient.
/// Near-zero means near-optimal; used by tests and solver diagnostics.
double kkt_residual(const CappedSimplexQpProblem& problem,
                    std::span<const double> gamma);

/// Power-iteration overestimate of λmax(H), the gradient Lipschitz constant
/// the FISTA solvers step against. Deterministic pure function of H: both
/// QP solvers call it when QpOptions::lipschitz is 0, and hot-path callers
/// memoize it per Hessian version and pass it back via the option.
double lipschitz_estimate(const linalg::Matrix& h);

}  // namespace plos::qp
