// Euclidean projections onto the feasible sets used by the PLOS QP duals.
#pragma once

#include <span>

#include "linalg/vector.hpp"

namespace plos::qp {

/// In-place projection of x onto { v : v >= 0, sum(v) <= cap }.
///
/// If clipping negatives already satisfies the cap the clipped point is the
/// projection; otherwise the point is projected onto the simplex
/// { v >= 0, sum(v) = cap } with the sort-based threshold method
/// (Held/Wolfe/Crowder). cap must be >= 0.
void project_capped_simplex(std::span<double> x, double cap);

/// In-place projection of x onto the box [lo, hi] element-wise.
void project_box(std::span<double> x, double lo, double hi);

}  // namespace plos::qp
