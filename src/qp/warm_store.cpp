#include "qp/warm_store.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace plos::qp {

WarmStore::WarmStore(std::size_t num_slots)
    : ids_(num_slots), gammas_(num_slots) {}

void WarmStore::store(std::size_t slot,
                      std::span<const std::uint32_t> plane_ids,
                      std::span<const double> gammas) {
  PLOS_CHECK(slot < ids_.size(), "WarmStore: slot out of range");
  PLOS_CHECK(plane_ids.size() == gammas.size(),
             "WarmStore: ids/gammas size mismatch");
  std::vector<std::size_t> order(plane_ids.size());
  for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
  // Sort by id with input order as tiebreak so a duplicated id (a plane
  // that re-entered the working set) resolves to its last-listed γ.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return plane_ids[a] != plane_ids[b] ? plane_ids[a] < plane_ids[b] : a < b;
  });
  auto& ids = ids_[slot];
  auto& values = gammas_[slot];
  ids.clear();
  values.clear();
  ids.reserve(order.size());
  values.reserve(order.size());
  for (std::size_t k : order) {
    if (!ids.empty() && ids.back() == plane_ids[k]) {
      values.back() = gammas[k];
    } else {
      ids.push_back(plane_ids[k]);
      values.push_back(gammas[k]);
    }
  }
}

double WarmStore::seed(std::size_t slot, std::uint32_t plane_id) const {
  PLOS_CHECK(slot < ids_.size(), "WarmStore: slot out of range");
  const auto& ids = ids_[slot];
  const auto it = std::lower_bound(ids.begin(), ids.end(), plane_id);
  static obs::Counter& hits = obs::metrics().counter("qp.warm_store.hits");
  static obs::Counter& misses = obs::metrics().counter("qp.warm_store.misses");
  if (it == ids.end() || *it != plane_id) {
    misses.increment();
    return 0.0;
  }
  hits.increment();
  return gammas_[slot][static_cast<std::size_t>(it - ids.begin())];
}

linalg::Vector WarmStore::seed_vector(
    std::size_t slot, std::span<const std::uint32_t> plane_ids) const {
  linalg::Vector out(plane_ids.size());
  for (std::size_t k = 0; k < plane_ids.size(); ++k) {
    out[k] = seed(slot, plane_ids[k]);
  }
  return out;
}

void WarmStore::clear(std::size_t slot) {
  PLOS_CHECK(slot < ids_.size(), "WarmStore: slot out of range");
  ids_[slot].clear();
  gammas_[slot].clear();
}

std::size_t WarmStore::slot_size(std::size_t slot) const {
  PLOS_CHECK(slot < ids_.size(), "WarmStore: slot out of range");
  return ids_[slot].size();
}

}  // namespace plos::qp
