// Logistic-loss PLOS — the paper's §VII future work ("extend the proposed
// framework to other machine learning models") implemented for logistic
// regression.
//
// The objective keeps the PLOS structure but swaps hinge losses for their
// smooth logistic counterparts:
//
//   ||w0||² + (λ/T) Σ_t ||v_t||²
//     + Σ_t (Cl/m_t) Σ_labeled  log(1 + exp(−y_i  w_t·x_i))
//     + Σ_t (Cu/m_t) Σ_unlabeled log(1 + exp(−|w_t·x_i|))
//
// The unlabeled "hat" loss log(1+e^{−|z|}) is non-convex; it admits the DC
// decomposition log(1+e^{|z|}) − |z|, and fixing s = sign(z₀) gives the
// majorizer log(1+e^{−s z}) (tight at z₀, an upper bound everywhere since
// s·z ≤ |z|). The CCCP outer loop therefore mirrors the hinge solver; each
// inner problem is smooth and convex and is minimized jointly over
// (w0, v_1, …, v_T) with L-BFGS instead of cutting planes + QP.
#pragma once

#include "core/centralized_plos.hpp"  // PersonalizedModel, PlosDiagnostics
#include "core/options.hpp"
#include "data/dataset.hpp"
#include "opt/lbfgs.hpp"

namespace plos::core {

struct LogisticPlosOptions {
  PlosHyperParams params;
  CccpOptions cccp;
  opt::LbfgsOptions lbfgs{300, 1e-6, 8, 1e-4, 0.5, 40};
  /// Same initialization policies as the hinge trainer.
  bool svm_initialization = true;
  double init_svm_c = 1.0;
  bool cluster_sign_initialization = true;
  std::uint64_t seed = 99;
};

struct LogisticPlosResult {
  PersonalizedModel model;
  PlosDiagnostics diagnostics;  ///< qp_solves counts L-BFGS runs here
};

LogisticPlosResult train_logistic_plos(const data::MultiUserDataset& dataset,
                                       const LogisticPlosOptions& options = {});

/// The non-convex objective above (used for CCCP monotonicity tests).
double logistic_plos_objective(const data::MultiUserDataset& dataset,
                               const PersonalizedModel& model,
                               const PlosHyperParams& params);

}  // namespace plos::core
