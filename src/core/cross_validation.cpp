#include "core/cross_validation.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "rng/engine.hpp"

namespace plos::core {

namespace {

struct RevealedSample {
  std::size_t user;
  std::size_t index;
};

}  // namespace

double cross_validate(const data::MultiUserDataset& dataset,
                      const TrainPredictFn& train_predict,
                      const CrossValidationOptions& options) {
  dataset.check_invariants();
  std::vector<RevealedSample> revealed;
  for (std::size_t t = 0; t < dataset.num_users(); ++t) {
    for (std::size_t i : dataset.users[t].revealed_indices()) {
      revealed.push_back({t, i});
    }
  }
  PLOS_CHECK(revealed.size() >= 2,
             "cross_validate: need at least two revealed samples");

  rng::Engine engine(options.seed);
  engine.shuffle(revealed);
  const std::size_t folds =
      options.num_folds == 0
          ? revealed.size()
          : std::min(options.num_folds, revealed.size());

  double correct = 0.0;
  std::size_t scored = 0;
  for (std::size_t f = 0; f < folds; ++f) {
    // Samples whose index ≡ f (mod folds) are held out this round.
    data::MultiUserDataset fold = dataset;
    std::vector<RevealedSample> held_out;
    for (std::size_t s = f; s < revealed.size(); s += folds) {
      fold.users[revealed[s].user].revealed[revealed[s].index] = false;
      held_out.push_back(revealed[s]);
    }

    const std::vector<UserPrediction> predictions = train_predict(fold);
    PLOS_CHECK(predictions.size() == dataset.num_users(),
               "cross_validate: train_predict returned wrong user count");
    for (const RevealedSample& s : held_out) {
      PLOS_CHECK(predictions[s.user].labels.size() ==
                     dataset.users[s.user].num_samples(),
                 "cross_validate: prediction size mismatch");
      if (predictions[s.user].labels[s.index] ==
          dataset.users[s.user].true_labels[s.index]) {
        correct += 1.0;
      }
      ++scored;
    }
  }
  PLOS_ASSERT(scored > 0);
  return correct / static_cast<double>(scored);
}

std::size_t select_best_parameter(
    const data::MultiUserDataset& dataset,
    const std::vector<double>& candidates,
    const std::function<TrainPredictFn(double)>& make_train_predict,
    const CrossValidationOptions& options) {
  PLOS_CHECK(!candidates.empty(), "select_best_parameter: no candidates");
  std::size_t best = 0;
  double best_accuracy = -1.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double accuracy =
        cross_validate(dataset, make_train_predict(candidates[i]), options);
    if (accuracy > best_accuracy) {
      best_accuracy = accuracy;
      best = i;
    }
  }
  return best;
}

}  // namespace plos::core
