#include "core/evaluation.hpp"

#include "cluster/hungarian.hpp"
#include "common/assert.hpp"

namespace plos::core {

double user_accuracy(const data::UserData& user,
                     const UserPrediction& prediction) {
  PLOS_CHECK(prediction.labels.size() == user.num_samples(),
             "user_accuracy: prediction/sample size mismatch");
  PLOS_CHECK(user.num_samples() > 0, "user_accuracy: user has no samples");

  if (prediction.match_clusters) {
    // Map ±1 ids to {0, 1} and score under the best assignment.
    std::vector<std::size_t> predicted, truth;
    predicted.reserve(user.num_samples());
    truth.reserve(user.num_samples());
    for (std::size_t i = 0; i < user.num_samples(); ++i) {
      predicted.push_back(prediction.labels[i] > 0 ? 1 : 0);
      truth.push_back(user.true_labels[i] > 0 ? 1 : 0);
    }
    return cluster::best_assignment_accuracy(predicted, truth, 2);
  }

  std::size_t correct = 0;
  for (std::size_t i = 0; i < user.num_samples(); ++i) {
    if (prediction.labels[i] == user.true_labels[i]) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(user.num_samples());
}

AccuracyReport evaluate(const data::MultiUserDataset& dataset,
                        const std::vector<UserPrediction>& predictions) {
  PLOS_CHECK(predictions.size() == dataset.num_users(),
             "evaluate: predictions/users size mismatch");
  AccuracyReport report;
  double providers_sum = 0.0;
  double non_providers_sum = 0.0;
  double overall_sum = 0.0;
  for (std::size_t t = 0; t < dataset.num_users(); ++t) {
    const double acc = user_accuracy(dataset.users[t], predictions[t]);
    overall_sum += acc;
    if (dataset.users[t].provides_labels()) {
      providers_sum += acc;
      ++report.num_providers;
    } else {
      non_providers_sum += acc;
      ++report.num_non_providers;
    }
  }
  if (report.num_providers > 0) {
    report.providers = providers_sum / static_cast<double>(report.num_providers);
  }
  if (report.num_non_providers > 0) {
    report.non_providers =
        non_providers_sum / static_cast<double>(report.num_non_providers);
  }
  report.overall = overall_sum / static_cast<double>(dataset.num_users());
  return report;
}

std::vector<UserPrediction> predict_all(const data::MultiUserDataset& dataset,
                                        const PersonalizedModel& model) {
  PLOS_CHECK(model.num_users() == dataset.num_users(),
             "predict_all: model/users size mismatch");
  std::vector<UserPrediction> out(dataset.num_users());
  for (std::size_t t = 0; t < dataset.num_users(); ++t) {
    const linalg::Vector w = model.user_weights(t);
    out[t].labels.reserve(dataset.users[t].num_samples());
    for (const auto& x : dataset.users[t].samples) {
      out[t].labels.push_back(linalg::dot(w, x) >= 0.0 ? 1 : -1);
    }
  }
  return out;
}

}  // namespace plos::core
