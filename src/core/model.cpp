#include "core/model.hpp"

#include "common/assert.hpp"

namespace plos::core {

linalg::Vector PersonalizedModel::user_weights(std::size_t user) const {
  PLOS_CHECK(user < user_deviations.size(),
             "PersonalizedModel: user out of range");
  return linalg::add(global_weights, user_deviations[user]);
}

double PersonalizedModel::decision_value(std::size_t user,
                                         std::span<const double> x) const {
  PLOS_CHECK(user < user_deviations.size(),
             "PersonalizedModel: user out of range");
  return linalg::dot(global_weights, x) + linalg::dot(user_deviations[user], x);
}

int PersonalizedModel::predict(std::size_t user,
                               std::span<const double> x) const {
  return decision_value(user, x) >= 0.0 ? 1 : -1;
}

PersonalizedModel PersonalizedModel::zeros(std::size_t num_users,
                                           std::size_t dim) {
  PersonalizedModel m;
  m.global_weights = linalg::zeros(dim);
  m.user_deviations.assign(num_users, linalg::zeros(dim));
  return m;
}

}  // namespace plos::core
