// Model persistence: serialize a trained PersonalizedModel to the same
// wire format the distributed runtime uses, and save/load it on disk. A
// deployed mobile-sensing service checkpoints the population model between
// training rounds and ships per-user slices to devices.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/model.hpp"

namespace plos::core {

/// Serializes the model (magic + version header, then w0 and every v_t).
std::vector<std::uint8_t> serialize_model(const PersonalizedModel& model);

/// Parses a buffer produced by serialize_model. Returns std::nullopt on a
/// malformed buffer (wrong magic/version, truncation, inconsistent
/// dimensions) — corrupt checkpoints are a recoverable condition.
std::optional<PersonalizedModel> deserialize_model(
    std::span<const std::uint8_t> buffer);

/// Writes the serialized model to `path`; returns false on I/O failure.
bool save_model(const PersonalizedModel& model, const std::string& path);

/// Reads a model from `path`; nullopt on I/O failure or malformed content.
std::optional<PersonalizedModel> load_model(const std::string& path);

}  // namespace plos::core
