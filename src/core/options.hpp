// Hyper-parameters and solver knobs shared by the PLOS trainers.
#pragma once

#include <cstdint>

#include "qp/capped_simplex_qp.hpp"

namespace plos::core {

/// The paper's three predefined parameters (§IV-A).
struct PlosHyperParams {
  /// λ: how strongly per-user hyperplanes are pulled toward the global one.
  /// Large λ → users share one hyperplane (All-like); small λ → independent
  /// per-user hyperplanes (Single-like).
  double lambda = 100.0;
  /// Cl: weight of labeled-sample hinge losses.
  double cl = 10.0;
  /// Cu: weight of unlabeled-sample (max-margin-clustering) losses.
  double cu = 1.0;
};

/// Cutting-plane working-set loop (§IV-B).
struct CuttingPlaneOptions {
  /// ε: stop when no constraint is violated by more than this.
  double epsilon = 1e-3;
  int max_iterations = 200;
};

/// CCCP outer loop.
struct CccpOptions {
  int max_iterations = 8;
  /// Stop when the relative objective change between consecutive CCCP
  /// iterations drops below this.
  double objective_tolerance = 1e-4;
};

}  // namespace plos::core
