#include "core/logistic_plos.hpp"

#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "common/stopwatch.hpp"
#include "core/cutting_plane.hpp"
#include "rng/engine.hpp"
#include "svm/linear_svm.hpp"

namespace plos::core {

namespace {

// log(1 + exp(-m)) computed without overflow.
double log1p_exp_neg(double margin) {
  if (margin > 0.0) return std::log1p(std::exp(-margin));
  return -margin + std::log1p(std::exp(margin));
}

// d/dm log(1+exp(-m)) = -sigmoid(-m).
double neg_sigmoid_neg(double margin) {
  if (margin > 0.0) {
    const double e = std::exp(-margin);
    return -e / (1.0 + e);
  }
  const double e = std::exp(margin);
  return -1.0 / (1.0 + e);
}

// Flattened layout of the inner problem's variables: [w0 | v_1 | ... | v_T].
std::span<const double> block(std::span<const double> x, std::size_t index,
                              std::size_t dim) {
  return x.subspan(index * dim, dim);
}
std::span<double> block(std::span<double> x, std::size_t index,
                        std::size_t dim) {
  return x.subspan(index * dim, dim);
}

}  // namespace

double logistic_plos_objective(const data::MultiUserDataset& dataset,
                               const PersonalizedModel& model,
                               const PlosHyperParams& params) {
  const std::size_t num_users = dataset.num_users();
  PLOS_CHECK(model.num_users() == num_users,
             "logistic_plos_objective: user mismatch");
  double objective = linalg::squared_norm(model.global_weights);
  for (std::size_t t = 0; t < num_users; ++t) {
    objective += params.lambda / static_cast<double>(num_users) *
                 linalg::squared_norm(model.user_deviations[t]);
    const auto& user = dataset.users[t];
    if (user.num_samples() == 0) continue;
    const linalg::Vector w = model.user_weights(t);
    double labeled_loss = 0.0;
    double unlabeled_loss = 0.0;
    for (std::size_t i = 0; i < user.num_samples(); ++i) {
      const double value = linalg::dot(w, user.samples[i]);
      if (user.revealed[i]) {
        const double label = static_cast<double>(user.true_labels[i]);
        labeled_loss += log1p_exp_neg(label * value);
      } else {
        unlabeled_loss += log1p_exp_neg(std::abs(value));
      }
    }
    objective += (params.cl * labeled_loss + params.cu * unlabeled_loss) /
                 static_cast<double>(user.num_samples());
  }
  return objective;
}

LogisticPlosResult train_logistic_plos(const data::MultiUserDataset& dataset,
                                       const LogisticPlosOptions& options) {
  dataset.check_invariants();
  const std::size_t num_users = dataset.num_users();
  const std::size_t dim = dataset.dim();
  PLOS_CHECK(num_users > 0, "train_logistic_plos: no users");
  PLOS_CHECK(dim > 0, "train_logistic_plos: empty dataset");
  PLOS_CHECK(options.params.lambda > 0.0,
             "train_logistic_plos: lambda must be positive");

  const Stopwatch watch;
  LogisticPlosResult result;
  result.model = PersonalizedModel::zeros(num_users, dim);

  std::vector<PlosUserContext> contexts;
  contexts.reserve(num_users);
  for (const auto& user : dataset.users) {
    contexts.push_back(PlosUserContext::from_user(user));
  }

  // Initialization mirrors the hinge trainer: pooled SVM (or random unit
  // direction when nobody labels anything).
  {
    std::vector<linalg::Vector> xs;
    std::vector<int> ys;
    for (const auto& user : dataset.users) {
      for (std::size_t i : user.revealed_indices()) {
        xs.push_back(user.samples[i]);
        ys.push_back(user.true_labels[i]);
      }
    }
    if (options.svm_initialization && !xs.empty()) {
      svm::LinearSvmOptions svm_options;
      svm_options.c = options.init_svm_c;
      result.model.global_weights =
          svm::train_linear_svm(xs, ys, svm_options).weights;
    } else {
      rng::Engine engine(options.seed);
      result.model.global_weights = engine.gaussian_vector(dim);
      const double n = linalg::norm(result.model.global_weights);
      if (n > 0.0) linalg::scale(result.model.global_weights, 1.0 / n);
    }
  }

  const double lambda_over_t =
      options.params.lambda / static_cast<double>(num_users);

  double previous_objective = std::numeric_limits<double>::infinity();
  for (int cccp = 0; cccp < options.cccp.max_iterations; ++cccp) {
    result.diagnostics.cccp_iterations = cccp + 1;

    // Freeze linearization signs at the current iterate.
    std::vector<std::vector<int>> signs(num_users);
    for (std::size_t t = 0; t < num_users; ++t) {
      const linalg::Vector w = result.model.user_weights(t);
      if (cccp == 0 && options.cluster_sign_initialization &&
          contexts[t].labeled.empty()) {
        signs[t] =
            cluster_initial_signs(contexts[t], w, lambda_over_t,
                                  options.params.cl, options.params.cu,
                                  options.seed + t);
      } else {
        signs[t] = cccp_signs(contexts[t], w);
      }
    }

    // Smooth convex inner problem over [w0 | v_1 | ... | v_T].
    const auto objective_fn = [&](std::span<const double> x,
                                  std::span<double> gradient) {
      std::fill(gradient.begin(), gradient.end(), 0.0);
      const auto w0 = block(x, 0, dim);
      double value = linalg::squared_norm(w0);
      linalg::axpy(2.0, w0, block(gradient, 0, dim));

      for (std::size_t t = 0; t < num_users; ++t) {
        const auto v = block(x, t + 1, dim);
        value += lambda_over_t * linalg::squared_norm(v);
        linalg::axpy(2.0 * lambda_over_t, v, block(gradient, t + 1, dim));

        const auto& user = dataset.users[t];
        const std::size_t m = user.num_samples();
        if (m == 0) continue;
        const double inv_m = 1.0 / static_cast<double>(m);

        std::size_t unlabeled_pos = 0;
        for (std::size_t i = 0; i < m; ++i) {
          const double label =
              user.revealed[i]
                  ? static_cast<double>(user.true_labels[i])
                  : static_cast<double>(signs[t][unlabeled_pos++]);
          const double weight =
              (user.revealed[i] ? options.params.cl : options.params.cu) *
              inv_m;
          const auto& xi = user.samples[i];
          const double margin =
              label * (linalg::dot(w0, xi) + linalg::dot(v, xi));
          value += weight * log1p_exp_neg(margin);
          const double coeff = weight * label * neg_sigmoid_neg(margin);
          linalg::axpy(coeff, xi, block(gradient, 0, dim));
          linalg::axpy(coeff, xi, block(gradient, t + 1, dim));
        }
      }
      return value;
    };

    linalg::Vector x0((num_users + 1) * dim, 0.0);
    std::copy(result.model.global_weights.begin(),
              result.model.global_weights.end(), x0.begin());
    for (std::size_t t = 0; t < num_users; ++t) {
      std::copy(result.model.user_deviations[t].begin(),
                result.model.user_deviations[t].end(),
                x0.begin() + static_cast<std::ptrdiff_t>((t + 1) * dim));
    }

    const auto solved = opt::minimize_lbfgs(objective_fn, std::move(x0),
                                            options.lbfgs);
    ++result.diagnostics.qp_solves;  // one smooth solve per CCCP round

    std::copy(solved.x.begin(), solved.x.begin() + static_cast<std::ptrdiff_t>(dim),
              result.model.global_weights.begin());
    for (std::size_t t = 0; t < num_users; ++t) {
      const auto v = block(std::span<const double>(solved.x), t + 1, dim);
      result.model.user_deviations[t].assign(v.begin(), v.end());
    }

    const double objective =
        logistic_plos_objective(dataset, result.model, options.params);
    result.diagnostics.objective_trace.push_back(objective);
    if (std::abs(previous_objective - objective) <=
        options.cccp.objective_tolerance * (1.0 + std::abs(objective))) {
      break;
    }
    previous_objective = objective;
  }

  result.diagnostics.train_seconds = watch.elapsed_seconds();
  return result;
}

}  // namespace plos::core
