// The personalized model PLOS learns: a global hyperplane w0 shared by all
// users plus one per-user deviation v_t, predicting with w_t = w0 + v_t.
#pragma once

#include <span>
#include <vector>

#include "linalg/vector.hpp"

namespace plos::core {

struct PersonalizedModel {
  linalg::Vector global_weights;               ///< w0
  std::vector<linalg::Vector> user_deviations; ///< v_t per user

  std::size_t num_users() const { return user_deviations.size(); }
  std::size_t dim() const { return global_weights.size(); }

  /// w_t = w0 + v_t.
  linalg::Vector user_weights(std::size_t user) const;

  /// Decision value w_t · x.
  double decision_value(std::size_t user, std::span<const double> x) const;

  /// Predicted label in {-1, +1} (ties to +1).
  int predict(std::size_t user, std::span<const double> x) const;

  /// Zero-initialized model of the given shape.
  static PersonalizedModel zeros(std::size_t num_users, std::size_t dim);
};

}  // namespace plos::core
