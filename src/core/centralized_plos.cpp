#include "core/centralized_plos.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/stopwatch.hpp"
#include "core/cutting_plane.hpp"
#include "core/gram_cache.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "qp/warm_store.hpp"
#include "rng/engine.hpp"
#include "svm/linear_svm.hpp"

namespace plos::core {

namespace {

// Dual QP state over the union of all users' working sets. Grows
// incrementally: adding a constraint appends one variable, one Hessian
// row/column, one linear coefficient, and one group member. Plane products
// flow through the trainer-owned PlaneGramCache (so a plane re-derived in a
// later CCCP round serves its Hessian border from memo) and converged duals
// persist per user in the trainer-owned WarmStore at round boundaries.
class DualState {
 public:
  DualState(std::size_t num_users, double lambda, PlaneGramCache* gram,
            qp::WarmStore* warm)
      : lambda_over_t_(lambda / static_cast<double>(num_users)),
        cap_(static_cast<double>(num_users) / (2.0 * lambda)),
        groups_(num_users),
        gram_(gram),
        warm_(warm) {}

  std::size_t size() const { return planes_.size(); }

  void add_constraint(std::size_t user, CuttingPlane plane,
                      parallel::ThreadPool& pool) {
    const std::size_t a = planes_.size();
    const std::uint32_t id = gram_->intern(plane.s);
    // Extend the Hessian by one row/column. Row copies parallelize (each
    // worker owns disjoint rows), but the border dots run on the calling
    // thread: they mutate the shared Gram cache, which is single-owner by
    // contract — and after the first CCCP round they are mostly memo hits.
    linalg::Matrix h(a + 1, a + 1);
    pool.parallel_for(a, [&](std::size_t i) {
      for (std::size_t j = 0; j < a; ++j) h(i, j) = hessian_(i, j);
    });
    for (std::size_t i = 0; i < a; ++i) {
      const double d = gram_->dot(ids_[i], id);
      const double entry =
          (lambda_over_t_ + (planes_[i].user == user ? 1.0 : 0.0)) * d;
      h(i, a) = entry;
      h(a, i) = entry;
    }
    h(a, a) = (lambda_over_t_ + 1.0) * gram_->dot(id, id);
    // The bordered Hessian stays positive semidefinite only if the new
    // diagonal entry (a Gram self-product) is finite and non-negative.
    PLOS_DCHECK(std::isfinite(h(a, a)) && h(a, a) >= 0.0,
                "DualState: bad Hessian border diagonal " << h(a, a));
    hessian_ = std::move(h);

    linear_.push_back(plane.offset);
    groups_[user].push_back(a);
    // New dual variables start from the γ this plane converged to the last
    // time it was in user's working set (0 if never) instead of flat zero.
    previous_gamma_.push_back(warm_->seed(user, id));
    ids_.push_back(id);
    planes_.push_back({user, std::move(plane)});
    count_constraint_added();
  }

  /// Persists each user's current duals keyed by interned plane id, so the
  /// next CCCP round's re-derived planes warm-start where they converged.
  void persist_warm_starts() {
    for (std::size_t t = 0; t < groups_.size(); ++t) {
      std::vector<std::uint32_t> ids;
      std::vector<double> gammas;
      ids.reserve(groups_[t].size());
      gammas.reserve(groups_[t].size());
      for (std::size_t a : groups_[t]) {
        ids.push_back(ids_[a]);
        gammas.push_back(previous_gamma_[a]);
      }
      warm_->store(t, ids, gammas);
    }
  }

  /// Solves the dual and recovers (w0, v_t) into `model`.
  qp::QpResult solve(PersonalizedModel& model, const qp::QpOptions& base) {
    qp::CappedSimplexQpProblem problem;
    problem.hessian = hessian_;
    problem.linear = linear_;
    for (const auto& g : groups_) {
      if (g.empty()) continue;  // users without constraints impose nothing
      problem.groups.push_back(g);
      problem.caps.push_back(cap_);
    }

    qp::QpOptions options = base;
    options.warm_start = previous_gamma_;
    options.warm_start.resize(size(), 0.0);
    qp::QpResult result = qp::solve_capped_simplex_qp(problem, options);
    previous_gamma_ = result.solution;

    // Primal recovery: w0 = (λ/T) Σ γ s, v_t = Σ_{k∈t} γ s.
    const std::size_t dim = model.global_weights.size();
    model.global_weights = linalg::zeros(dim);
    for (auto& v : model.user_deviations) v = linalg::zeros(dim);
    for (std::size_t a = 0; a < planes_.size(); ++a) {
      const double gamma = result.solution[a];
      if (gamma == 0.0) continue;
      linalg::axpy(gamma * lambda_over_t_, planes_[a].plane.s,
                   model.global_weights);
      linalg::axpy(gamma, planes_[a].plane.s,
                   model.user_deviations[planes_[a].user]);
    }
    return result;
  }

  const std::vector<CuttingPlane>* user_planes(std::size_t user,
                                               std::vector<CuttingPlane>&
                                                   scratch) const {
    scratch.clear();
    for (std::size_t a : groups_[user]) scratch.push_back(planes_[a].plane);
    return &scratch;
  }

 private:
  struct Entry {
    std::size_t user;
    CuttingPlane plane;
  };

  double lambda_over_t_;
  double cap_;
  linalg::Matrix hessian_;
  linalg::Vector linear_;
  std::vector<std::vector<std::size_t>> groups_;
  std::vector<Entry> planes_;
  std::vector<std::uint32_t> ids_;  ///< interned plane id per dual variable
  linalg::Vector previous_gamma_;
  PlaneGramCache* gram_;
  qp::WarmStore* warm_;
};

linalg::Vector initial_global_weights(const data::MultiUserDataset& dataset,
                                      const CentralizedPlosOptions& options) {
  const std::size_t dim = dataset.dim();
  if (options.svm_initialization) {
    std::vector<linalg::Vector> xs;
    std::vector<int> ys;
    for (const auto& user : dataset.users) {
      for (std::size_t i : user.revealed_indices()) {
        xs.push_back(user.samples[i]);
        ys.push_back(user.true_labels[i]);
      }
    }
    if (!xs.empty()) {
      svm::LinearSvmOptions svm_options;
      svm_options.c = options.init_svm_c;
      return svm::train_linear_svm(xs, ys, svm_options).weights;
    }
  }
  // No labels anywhere: PLOS degenerates to maximum-margin clustering and
  // needs a symmetry-breaking start.
  rng::Engine engine(options.seed);
  linalg::Vector w = engine.gaussian_vector(dim);
  const double n = linalg::norm(w);
  if (n > 0.0) linalg::scale(w, 1.0 / n);
  return w;
}

}  // namespace

double plos_objective(const data::MultiUserDataset& dataset,
                      const PersonalizedModel& model,
                      const PlosHyperParams& params) {
  const std::size_t num_users = dataset.num_users();
  PLOS_CHECK(model.num_users() == num_users, "plos_objective: user mismatch");
  double objective = linalg::squared_norm(model.global_weights);
  for (std::size_t t = 0; t < num_users; ++t) {
    objective += params.lambda / static_cast<double>(num_users) *
                 linalg::squared_norm(model.user_deviations[t]);
    const auto& user = dataset.users[t];
    if (user.num_samples() == 0) continue;
    const linalg::Vector w = model.user_weights(t);
    double labeled_loss = 0.0;
    double unlabeled_loss = 0.0;
    for (std::size_t i = 0; i < user.num_samples(); ++i) {
      const double value = linalg::dot(w, user.samples[i]);
      if (user.revealed[i]) {
        const double label = static_cast<double>(user.true_labels[i]);
        labeled_loss += std::max(0.0, 1.0 - label * value);
      } else {
        unlabeled_loss += std::max(0.0, 1.0 - std::abs(value));
      }
    }
    objective += (params.cl * labeled_loss + params.cu * unlabeled_loss) /
                 static_cast<double>(user.num_samples());
  }
  return objective;
}

CentralizedPlosResult train_centralized_plos(
    const data::MultiUserDataset& dataset,
    const CentralizedPlosOptions& options) {
  dataset.check_invariants();
  const std::size_t num_users = dataset.num_users();
  const std::size_t dim = dataset.dim();
  PLOS_CHECK(num_users > 0, "train_centralized_plos: no users");
  PLOS_CHECK(dim > 0, "train_centralized_plos: empty dataset");
  PLOS_CHECK(options.params.lambda > 0.0,
             "train_centralized_plos: lambda must be positive");

  PLOS_SPAN("plos.centralized_train");
  PLOS_LOG_INFO("centralized train start", obs::F("users", num_users),
                obs::F("dim", dim), obs::F("lambda", options.params.lambda),
                obs::F("threads", parallel::resolve_num_threads(
                                      options.num_threads)));
  parallel::ThreadPool pool(options.num_threads);
  const Stopwatch watch;
  CentralizedPlosResult result;
  result.model = PersonalizedModel::zeros(num_users, dim);
  result.model.global_weights = initial_global_weights(dataset, options);

  std::vector<PlosUserContext> contexts;
  contexts.reserve(num_users);
  for (const auto& user : dataset.users) {
    contexts.push_back(PlosUserContext::from_user(user));
  }

  // Hot-path state that outlives the per-round DualState: the Gram cache
  // keeps every plane (and pairwise product) ever derived, and the warm
  // store carries converged duals across CCCP rounds (DESIGN.md §13).
  PlaneGramCache gram(options.hotpath_cache);
  qp::WarmStore warm_store(num_users);

  double previous_objective = std::numeric_limits<double>::infinity();
  PersonalizedModel previous_model = result.model;
  for (int cccp = 0; cccp < options.cccp.max_iterations; ++cccp) {
    PLOS_SPAN("plos.cccp_round", "round", cccp);
    const Stopwatch round_watch;
    const int round_qp_solves_before = result.diagnostics.qp_solves;
    int round_qp_iterations = 0;
    result.diagnostics.cccp_iterations = cccp + 1;

    // Fix the CCCP linearization signs at the current iterate. Each user's
    // signs depend only on their own data, weights, and a per-user seed, so
    // the loop parallelizes with no cross-user state.
    std::vector<std::vector<int>> signs(num_users);
    std::vector<linalg::Vector> weights(num_users);
    {
      PLOS_SPAN("plos.sign_fit");
      pool.parallel_for(num_users, [&](std::size_t t) {
        weights[t] = result.model.user_weights(t);
        if (cccp == 0 && options.cluster_sign_initialization &&
            contexts[t].labeled.empty()) {
          // Per-user scratch cache: the sign-fitting refinements re-derive
          // planes across their CCCP rounds, but the fits run concurrently,
          // so they must not touch the trainer's single-owner cache.
          PlaneGramCache sign_cache(options.hotpath_cache);
          signs[t] = cluster_initial_signs(
              contexts[t], weights[t],
              options.params.lambda / static_cast<double>(num_users),
              options.params.cl, options.params.cu, options.seed + t,
              &sign_cache);
        } else {
          signs[t] = cccp_signs(contexts[t], weights[t]);
        }
      });
    }

    // Fresh working sets per convex subproblem (Algorithm 1, step 3). The
    // initialization model above only fixes the CCCP signs; the convex
    // subproblem itself starts from the empty working set's optimum w' = 0
    // (every sample violates its margin there), so the cutting-plane loop
    // genuinely optimizes the PLOS objective instead of merely certifying
    // the init — an SVM init that happens to satisfy all margins must not
    // short-circuit training.
    DualState dual(num_users, options.params.lambda, &gram, &warm_store);
    for (auto& w : weights) w.assign(dim, 0.0);
    result.model = PersonalizedModel::zeros(num_users, dim);

    // Per-iteration separation results, one slot per user so the parallel
    // oracle writes race-free and the ordered reduction below adds accepted
    // constraints in ascending user order — the exact serial sequence.
    std::vector<CuttingPlane> separated(num_users);
    std::vector<char> violated(num_users, 0);

    for (int it = 0; it < options.cutting_plane.max_iterations; ++it) {
      PLOS_SPAN("plos.cutting_plane_iteration", "iteration", it);
      // Separation oracle (Eq. 12): one most-violated constraint per user,
      // embarrassingly parallel — a user's plane, s_kt statistics, and
      // slack depend only on their own working set and weights, never on
      // constraints other users add within the same iteration.
      {
        PLOS_SPAN("plos.separation");
        pool.parallel_for(num_users, [&](std::size_t t) {
          violated[t] = 0;
          if (contexts[t].num_samples() == 0) return;
          CuttingPlane plane =
              most_violated_constraint(contexts[t], signs[t], weights[t],
                                       options.params.cl, options.params.cu);
          std::vector<CuttingPlane> scratch;
          const double xi = optimal_slack(*dual.user_planes(t, scratch),
                                          weights[t]);
          if (constraint_violation(plane, weights[t], xi) >
              options.cutting_plane.epsilon) {
            separated[t] = std::move(plane);
            violated[t] = 1;
          }
        });
      }
      bool added = false;
      for (std::size_t t = 0; t < num_users; ++t) {
        if (!violated[t]) continue;
        dual.add_constraint(t, std::move(separated[t]), pool);
        added = true;
      }
      if (!added) break;

      {
        PLOS_SPAN("plos.dual_solve");
        round_qp_iterations +=
            dual.solve(result.model, options.qp).iterations;
      }
      ++result.diagnostics.qp_solves;
      pool.parallel_for(num_users, [&](std::size_t t) {
        weights[t] = result.model.user_weights(t);
      });
    }
    result.diagnostics.final_constraint_count = dual.size();
    dual.persist_warm_starts();

    const double objective =
        plos_objective(dataset, result.model, options.params);
    result.diagnostics.round_seconds.push_back(round_watch.elapsed_seconds());
    result.diagnostics.round_qp_solves.push_back(
        result.diagnostics.qp_solves - round_qp_solves_before);
    // Telemetry: one journal record per started round — including a round
    // the descent safeguard rejects below, since the rejected objective is
    // exactly what convergence analysis and the watchdog need to see. All
    // record fields are deterministic solver state, so the journal is
    // byte-identical at any thread count.
    if (options.journal != nullptr || options.watchdog != nullptr) {
      obs::RoundRecord record;
      record.trainer = "centralized";
      record.cccp_round = cccp;
      record.objective = objective;
      record.objective_finite = std::isfinite(objective);
      record.constraints = dual.size();
      record.qp_solves = result.diagnostics.round_qp_solves.back();
      record.qp_iterations = round_qp_iterations;
      if (options.journal != nullptr) options.journal->append(record);
      if (options.watchdog != nullptr &&
          options.watchdog->observe(record) == obs::WatchdogAction::kAbort) {
        result.diagnostics.watchdog_aborted = true;
        // Keep the best iterate: a round whose objective regressed (the
        // usual divergence-abort shape) must not become the result.
        if (objective > previous_objective) result.model = previous_model;
        break;
      }
    }
    // CCCP descent safeguard: the subproblems are solved only to the
    // cutting-plane tolerance, so a round can fail to improve the true
    // objective — in that case keep the previous iterate and stop.
    if (objective > previous_objective) {
      PLOS_LOG_DEBUG("cccp round rejected", obs::F("round", cccp),
                     obs::F("objective", objective),
                     obs::F("previous", previous_objective));
      result.model = previous_model;
      break;
    }
    result.diagnostics.objective_trace.push_back(objective);
    // Gauge samples mirror the accepted-objective trace, so a snapshot's
    // "plos.objective" trajectory is monotone like the diagnostics trace.
    static obs::Gauge& objective_gauge = obs::metrics().gauge("plos.objective");
    objective_gauge.set(objective);
    PLOS_LOG_DEBUG("cccp round", obs::F("round", cccp),
                   obs::F("objective", objective),
                   obs::F("constraints", dual.size()),
                   obs::F("qp_solves", result.diagnostics.round_qp_solves.back()),
                   obs::F("seconds", result.diagnostics.round_seconds.back()));
    if (previous_objective - objective <=
        options.cccp.objective_tolerance * (1.0 + std::abs(objective))) {
      break;
    }
    previous_objective = objective;
    previous_model = result.model;
  }

  result.diagnostics.train_seconds = watch.elapsed_seconds();
  PLOS_LOG_INFO("centralized train done",
                obs::F("cccp_rounds", result.diagnostics.cccp_iterations),
                obs::F("qp_solves", result.diagnostics.qp_solves),
                obs::F("constraints", result.diagnostics.final_constraint_count),
                obs::F("seconds", result.diagnostics.train_seconds));
  return result;
}

}  // namespace plos::core
