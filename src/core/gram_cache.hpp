// Content-interned cutting-plane store with memoized inner products.
//
// Both PLOS trainers spend most of their Gram work on ⟨s_i, s_j⟩ products
// between cutting planes (d = 120/561 doubles each). Within one CCCP round
// the working set only grows, so those products are already computed once
// per pair — but every round REBUILDS the working set from freshly derived
// planes, and because the CCCP signs converge after a round or two, most
// "new" planes are bitwise re-derivations of planes the previous round
// already measured. The PlaneGramCache interns planes by content (exact
// bitwise equality, hash + full compare) and memoizes pairwise products by
// interned id, so a re-derived plane costs one hash instead of one
// d-dimensional dot per existing plane.
//
// Contract (DESIGN.md §13):
//   * Interning is ALWAYS on — plane identity feeds the qp::WarmStore and
//     is part of the algorithm state, identical in both cache flavors.
//   * Memoization is bitwise-transparent: dot(i, j) returns exactly
//     kernels::blocked_dot(plane(i), plane(j)) whether it hits or misses,
//     because a hit merely replays a previously computed value of the same
//     pure function. PLOS_NO_HOTPATH_CACHE / hotpath_cache=false turns
//     memoization off and results may not move by a single bit (enforced
//     by tests/test_hotpath_cache.cpp).
//   * Entries are never invalidated — planes are immutable once interned
//     and products depend on nothing else. The cache stores no wall-clock
//     and no pointer-derived state (cache-purity lint rule), so its
//     contents are a pure function of the planes fed to it.
//
// Instances are single-owner: one per distributed Device, one per
// centralized dual, one per local deviation fit — each touched by exactly
// one thread at a time under the pool's static chunking, so no locking is
// needed and thread count cannot reorder anything.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "linalg/vector.hpp"

namespace plos::core {

class PlaneGramCache {
 public:
  /// memoize = false keeps interning but recomputes every product —
  /// the PLOS_NO_HOTPATH_CACHE flavor.
  explicit PlaneGramCache(bool memoize = true) : memoize_(memoize) {}

  bool memoize() const { return memoize_; }

  /// Interns `s` by content and returns its stable id. A bitwise-identical
  /// plane (same doubles in the same order) always maps to the same id.
  std::uint32_t intern(const linalg::Vector& s);

  const linalg::Vector& plane(std::uint32_t id) const;

  std::size_t num_planes() const { return planes_.size(); }

  /// ⟨plane(i), plane(j)⟩ in the blocked-kernel accumulation order;
  /// memoized per unordered pair when memoize() is on (i == j gives the
  /// squared norm).
  double dot(std::uint32_t i, std::uint32_t j);

 private:
  bool memoize_;
  std::vector<linalg::Vector> planes_;
  /// Content hash -> ids sharing it (collisions resolved by full compare).
  std::map<std::uint64_t, std::vector<std::uint32_t>> by_hash_;
  /// (min(i,j) << 32 | max(i,j)) -> memoized product.
  std::map<std::uint64_t, double> dots_;
};

}  // namespace plos::core
