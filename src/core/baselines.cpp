#include "core/baselines.hpp"

#include <algorithm>

#include "cluster/kmeans.hpp"
#include "cluster/lsh.hpp"
#include "cluster/spectral.hpp"
#include "common/assert.hpp"
#include "svm/linear_svm.hpp"

namespace plos::core {

namespace {

svm::LinearSvmModel train_pooled_svm(
    const data::MultiUserDataset& dataset,
    const std::vector<std::size_t>& member_users, double c) {
  std::vector<linalg::Vector> xs;
  std::vector<int> ys;
  for (std::size_t t : member_users) {
    const auto& user = dataset.users[t];
    for (std::size_t i : user.revealed_indices()) {
      xs.push_back(user.samples[i]);
      ys.push_back(user.true_labels[i]);
    }
  }
  svm::LinearSvmOptions options;
  options.c = c;
  return svm::train_linear_svm(xs, ys, options);
}

UserPrediction predict_with_svm(const data::UserData& user,
                                const svm::LinearSvmModel& model) {
  UserPrediction p;
  p.labels.reserve(user.num_samples());
  for (const auto& x : user.samples) p.labels.push_back(model.predict(x));
  return p;
}

/// Cluster the pooled samples of `member_users` with k-means (k = 2) and
/// emit per-user ±1 cluster ids, flagged for best-assignment scoring.
void cluster_members(const data::MultiUserDataset& dataset,
                     const std::vector<std::size_t>& member_users,
                     rng::Engine& engine,
                     std::vector<UserPrediction>& predictions) {
  std::vector<linalg::Vector> pooled;
  for (std::size_t t : member_users) {
    const auto& s = dataset.users[t].samples;
    pooled.insert(pooled.end(), s.begin(), s.end());
  }
  if (pooled.empty()) return;
  const std::size_t k = std::min<std::size_t>(2, pooled.size());
  const auto result = cluster::kmeans(pooled, k, engine);
  std::size_t cursor = 0;
  for (std::size_t t : member_users) {
    UserPrediction p;
    p.match_clusters = true;
    for (std::size_t i = 0; i < dataset.users[t].num_samples(); ++i) {
      p.labels.push_back(result.assignments[cursor++] == 0 ? 1 : -1);
    }
    predictions[t] = std::move(p);
  }
}

}  // namespace

std::vector<UserPrediction> run_all_baseline(
    const data::MultiUserDataset& dataset, const BaselineOptions& options) {
  dataset.check_invariants();
  std::vector<std::size_t> everyone(dataset.num_users());
  for (std::size_t t = 0; t < everyone.size(); ++t) everyone[t] = t;
  const auto model = train_pooled_svm(dataset, everyone, options.svm_c);

  std::vector<UserPrediction> predictions(dataset.num_users());
  for (std::size_t t = 0; t < dataset.num_users(); ++t) {
    predictions[t] = predict_with_svm(dataset.users[t], model);
  }
  return predictions;
}

std::vector<UserPrediction> run_single_baseline(
    const data::MultiUserDataset& dataset, const BaselineOptions& options) {
  dataset.check_invariants();
  rng::Engine engine(options.seed);
  std::vector<UserPrediction> predictions(dataset.num_users());
  for (std::size_t t = 0; t < dataset.num_users(); ++t) {
    const auto& user = dataset.users[t];
    if (user.provides_labels()) {
      const auto model = train_pooled_svm(dataset, {t}, options.svm_c);
      predictions[t] = predict_with_svm(user, model);
    } else {
      rng::Engine user_engine = engine.fork(t);
      cluster_members(dataset, {t}, user_engine, predictions);
    }
  }
  return predictions;
}

std::vector<std::size_t> group_users(const data::MultiUserDataset& dataset,
                                     const GroupBaselineOptions& options) {
  dataset.check_invariants();
  const std::size_t num_users = dataset.num_users();
  PLOS_CHECK(num_users > 0, "group_users: no users");
  rng::Engine engine(options.base.seed);

  const cluster::RandomHyperplaneHasher hasher(dataset.dim(), options.lsh_bits,
                                               engine);
  std::vector<linalg::Vector> histograms;
  histograms.reserve(num_users);
  for (const auto& user : dataset.users) {
    histograms.push_back(hasher.histogram(user.samples));
  }

  linalg::Matrix similarity(num_users, num_users);
  for (std::size_t i = 0; i < num_users; ++i) {
    for (std::size_t j = i; j < num_users; ++j) {
      const double s =
          cluster::generalized_jaccard(histograms[i], histograms[j]);
      similarity(i, j) = s;
      similarity(j, i) = s;
    }
  }

  const std::size_t k = std::min(options.num_groups, num_users);
  return cluster::spectral_clustering(similarity, k, engine);
}

std::vector<UserPrediction> run_group_baseline(
    const data::MultiUserDataset& dataset,
    const GroupBaselineOptions& options) {
  const std::vector<std::size_t> assignment = group_users(dataset, options);
  const std::size_t k = std::min(options.num_groups, dataset.num_users());

  rng::Engine engine(options.base.seed);
  std::vector<UserPrediction> predictions(dataset.num_users());
  for (std::size_t g = 0; g < k; ++g) {
    std::vector<std::size_t> members;
    for (std::size_t t = 0; t < dataset.num_users(); ++t) {
      if (assignment[t] == g) members.push_back(t);
    }
    if (members.empty()) continue;

    const bool any_labels =
        std::any_of(members.begin(), members.end(), [&](std::size_t t) {
          return dataset.users[t].provides_labels();
        });
    if (any_labels) {
      const auto model =
          train_pooled_svm(dataset, members, options.base.svm_c);
      for (std::size_t t : members) {
        predictions[t] = predict_with_svm(dataset.users[t], model);
      }
    } else {
      rng::Engine group_engine = engine.fork(g);
      cluster_members(dataset, members, group_engine, predictions);
    }
  }
  return predictions;
}

}  // namespace plos::core
