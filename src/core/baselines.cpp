#include "core/baselines.hpp"

#include <algorithm>
#include <optional>

#include "cluster/kmeans.hpp"
#include "cluster/lsh.hpp"
#include "cluster/spectral.hpp"
#include "common/assert.hpp"
#include "parallel/thread_pool.hpp"
#include "svm/linear_svm.hpp"

namespace plos::core {

namespace {

svm::LinearSvmModel train_pooled_svm(
    const data::MultiUserDataset& dataset,
    const std::vector<std::size_t>& member_users, double c) {
  std::vector<linalg::Vector> xs;
  std::vector<int> ys;
  for (std::size_t t : member_users) {
    const auto& user = dataset.users[t];
    for (std::size_t i : user.revealed_indices()) {
      xs.push_back(user.samples[i]);
      ys.push_back(user.true_labels[i]);
    }
  }
  svm::LinearSvmOptions options;
  options.c = c;
  return svm::train_linear_svm(xs, ys, options);
}

UserPrediction predict_with_svm(const data::UserData& user,
                                const svm::LinearSvmModel& model) {
  UserPrediction p;
  p.labels.reserve(user.num_samples());
  for (const auto& x : user.samples) p.labels.push_back(model.predict(x));
  return p;
}

/// Cluster the pooled samples of `member_users` with k-means (k = 2) and
/// emit per-user ±1 cluster ids, flagged for best-assignment scoring.
void cluster_members(const data::MultiUserDataset& dataset,
                     const std::vector<std::size_t>& member_users,
                     rng::Engine& engine,
                     std::vector<UserPrediction>& predictions) {
  std::vector<linalg::Vector> pooled;
  for (std::size_t t : member_users) {
    const auto& s = dataset.users[t].samples;
    pooled.insert(pooled.end(), s.begin(), s.end());
  }
  if (pooled.empty()) return;
  const std::size_t k = std::min<std::size_t>(2, pooled.size());
  const auto result = cluster::kmeans(pooled, k, engine);
  std::size_t cursor = 0;
  for (std::size_t t : member_users) {
    UserPrediction p;
    p.match_clusters = true;
    for (std::size_t i = 0; i < dataset.users[t].num_samples(); ++i) {
      p.labels.push_back(result.assignments[cursor++] == 0 ? 1 : -1);
    }
    predictions[t] = std::move(p);
  }
}

}  // namespace

std::vector<UserPrediction> run_all_baseline(
    const data::MultiUserDataset& dataset, const BaselineOptions& options) {
  dataset.check_invariants();
  std::vector<std::size_t> everyone(dataset.num_users());
  for (std::size_t t = 0; t < everyone.size(); ++t) everyone[t] = t;
  const auto model = train_pooled_svm(dataset, everyone, options.svm_c);

  parallel::ThreadPool pool(options.num_threads);
  std::vector<UserPrediction> predictions(dataset.num_users());
  pool.parallel_for(dataset.num_users(), [&](std::size_t t) {
    predictions[t] = predict_with_svm(dataset.users[t], model);
  });
  return predictions;
}

std::vector<UserPrediction> run_single_baseline(
    const data::MultiUserDataset& dataset, const BaselineOptions& options) {
  dataset.check_invariants();
  rng::Engine engine(options.seed);
  // Fork the per-user k-means streams serially, in the exact order the
  // serial loop consumed the parent stream (label-free users, ascending t);
  // the fits themselves then parallelize with one private engine each.
  std::vector<std::optional<rng::Engine>> cluster_engines(dataset.num_users());
  for (std::size_t t = 0; t < dataset.num_users(); ++t) {
    if (!dataset.users[t].provides_labels()) cluster_engines[t] = engine.fork(t);
  }
  parallel::ThreadPool pool(options.num_threads);
  std::vector<UserPrediction> predictions(dataset.num_users());
  pool.parallel_for(dataset.num_users(), [&](std::size_t t) {
    const auto& user = dataset.users[t];
    if (user.provides_labels()) {
      const auto model = train_pooled_svm(dataset, {t}, options.svm_c);
      predictions[t] = predict_with_svm(user, model);
    } else {
      cluster_members(dataset, {t}, *cluster_engines[t], predictions);
    }
  });
  return predictions;
}

std::vector<std::size_t> group_users(const data::MultiUserDataset& dataset,
                                     const GroupBaselineOptions& options) {
  dataset.check_invariants();
  const std::size_t num_users = dataset.num_users();
  PLOS_CHECK(num_users > 0, "group_users: no users");
  rng::Engine engine(options.base.seed);

  const cluster::RandomHyperplaneHasher hasher(dataset.dim(), options.lsh_bits,
                                               engine);
  // The hasher is immutable once built; per-user histograms and the upper
  // similarity triangle write disjoint slots, so both loops parallelize.
  parallel::ThreadPool pool(options.base.num_threads);
  std::vector<linalg::Vector> histograms(num_users);
  pool.parallel_for(num_users, [&](std::size_t t) {
    histograms[t] = hasher.histogram(dataset.users[t].samples);
  });

  linalg::Matrix similarity(num_users, num_users);
  pool.parallel_for(num_users, [&](std::size_t i) {
    for (std::size_t j = i; j < num_users; ++j) {
      const double s =
          cluster::generalized_jaccard(histograms[i], histograms[j]);
      similarity(i, j) = s;
      similarity(j, i) = s;
    }
  });

  const std::size_t k = std::min(options.num_groups, num_users);
  return cluster::spectral_clustering(similarity, k, engine);
}

std::vector<UserPrediction> run_group_baseline(
    const data::MultiUserDataset& dataset,
    const GroupBaselineOptions& options) {
  const std::vector<std::size_t> assignment = group_users(dataset, options);
  const std::size_t k = std::min(options.num_groups, dataset.num_users());

  rng::Engine engine(options.base.seed);
  // Membership lists and the k-means engine forks are computed serially in
  // ascending group order (matching the serial stream consumption); the
  // per-group SVM fits / clusterings then run in parallel — groups touch
  // disjoint members, so the prediction writes never alias.
  std::vector<std::vector<std::size_t>> group_members(k);
  std::vector<std::optional<rng::Engine>> group_engines(k);
  std::vector<char> group_has_labels(k, 0);
  for (std::size_t t = 0; t < dataset.num_users(); ++t) {
    group_members[assignment[t]].push_back(t);
  }
  for (std::size_t g = 0; g < k; ++g) {
    if (group_members[g].empty()) continue;
    group_has_labels[g] = std::any_of(
        group_members[g].begin(), group_members[g].end(), [&](std::size_t t) {
          return dataset.users[t].provides_labels();
        });
    if (!group_has_labels[g]) group_engines[g] = engine.fork(g);
  }

  parallel::ThreadPool pool(options.base.num_threads);
  std::vector<UserPrediction> predictions(dataset.num_users());
  pool.parallel_for(k, [&](std::size_t g) {
    const std::vector<std::size_t>& members = group_members[g];
    if (members.empty()) return;
    if (group_has_labels[g]) {
      const auto model =
          train_pooled_svm(dataset, members, options.base.svm_c);
      for (std::size_t t : members) {
        predictions[t] = predict_with_svm(dataset.users[t], model);
      }
    } else {
      cluster_members(dataset, members, *group_engines[g], predictions);
    }
  });
  return predictions;
}

}  // namespace plos::core
