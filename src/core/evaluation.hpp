// Evaluation harness.
//
// The paper reports classification accuracy averaged separately over users
// who provide labels and users who do not. Methods that output clusters
// instead of classes (Single / Group on label-free users) are scored under
// the best one-to-one cluster↔class assignment ("label matching").
#pragma once

#include <vector>

#include "core/model.hpp"
#include "data/dataset.hpp"

namespace plos::core {

/// One method's predictions for one user, aligned with the user's samples.
struct UserPrediction {
  std::vector<int> labels;     ///< {-1, +1} class labels or ±1 cluster ids
  bool match_clusters = false; ///< score under best cluster↔class assignment
};

struct AccuracyReport {
  double providers = 0.0;      ///< mean accuracy over label-providing users
  double non_providers = 0.0;  ///< mean accuracy over label-free users
  double overall = 0.0;        ///< mean accuracy over all users
  std::size_t num_providers = 0;
  std::size_t num_non_providers = 0;
};

/// Accuracy of one user's predictions against ground truth.
double user_accuracy(const data::UserData& user,
                     const UserPrediction& prediction);

/// Per-user accuracies averaged within the provider / non-provider splits.
AccuracyReport evaluate(const data::MultiUserDataset& dataset,
                        const std::vector<UserPrediction>& predictions);

/// Predictions of a personalized model on every sample of every user.
std::vector<UserPrediction> predict_all(const data::MultiUserDataset& dataset,
                                        const PersonalizedModel& model);

}  // namespace plos::core
