// Shared 1-slack cutting-plane machinery for both PLOS solvers.
//
// After the paper's reformulation (Eq. 4) each user contributes constraints
// indexed by subset-selection vectors c ∈ {0,1}^{m_t}. A constraint enters
// the optimization only through two derived quantities:
//
//   s_c = (1/m_t) [ Cl Σ_{labeled, c_i=1} y_i x_i
//                 + Cu Σ_{unlabeled, c_i=1} sign_i x_i ]      ∈ R^d
//   b_c = (1/m_t) [ Cl · #labeled selected + Cu · #unlabeled selected ]
//
// reading "w satisfies s_c·w ≥ b_c − ξ_t". sign_i is the CCCP linearization
// sign of the unlabeled point (fixed within one convex subproblem). The most
// violated constraint selects exactly the samples with margin < 1 (Eq. 14).
#pragma once

#include <cstdint>
#include <vector>

#include "core/gram_cache.hpp"
#include "data/dataset.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace plos::core {

/// One cutting plane: the pair (s_c, b_c) above.
struct CuttingPlane {
  linalg::Vector s;
  double offset = 0.0;  ///< b_c
};

/// Per-user immutable view used by the PLOS solvers: index lists split by
/// label visibility, plus the revealed labels.
struct PlosUserContext {
  const data::UserData* user = nullptr;
  std::vector<std::size_t> labeled;    ///< indices with revealed labels
  std::vector<std::size_t> unlabeled;  ///< the rest

  std::size_t num_samples() const { return user->num_samples(); }

  static PlosUserContext from_user(const data::UserData& user);
};

/// CCCP linearization signs for one user's unlabeled samples:
/// sign_i = sign(w_t · x_i), with sign(0) = +1. Ordered as ctx.unlabeled.
std::vector<int> cccp_signs(const PlosUserContext& ctx,
                            std::span<const double> user_weights);

/// Result of fitting the personal deviation for one user with fixed signs:
/// min over (v, ξ) of (λ/T)||v||² + ξ subject to the user's 1-slack
/// constraints at w = w0 + v. This is user t's contribution to the PLOS
/// objective (Eq. 4) with w0 held fixed; solved by cutting planes over the
/// same single-group capped-simplex dual the distributed device uses (the
/// ρ→∞ limit of Eq. 22).
struct LocalDeviationFit {
  linalg::Vector weights;  ///< w = w0 + v
  double objective = 0.0;  ///< (λ/T)||v||² + ξ
};

/// `cache` (optional) interns every cutting plane and serves all pairwise
/// products; callers fitting the same user repeatedly pass a shared cache so
/// re-derived planes cost one hash instead of a dot row. nullptr uses a
/// fit-local cache (bitwise-identical results either way — see
/// PlaneGramCache's contract).
LocalDeviationFit fit_local_deviation(const PlosUserContext& ctx,
                                      std::span<const int> signs,
                                      std::span<const double> global_weights,
                                      double lambda_over_t, double cl,
                                      double cu, double epsilon,
                                      int max_iterations,
                                      PlaneGramCache* cache = nullptr);

/// Initial CCCP signs for a user with NO labels, chosen by PLOS's own
/// objective. Two candidate assignments — the current weights' predictions
/// and a 2-means clustering of the user's data (polarity aligned with the
/// weights by majority vote) — are each refined by a short local CCCP
/// (alternate fit_local_deviation with re-signing) and scored by the final
/// local objective (λ/T)||v||² + ξ. The λ coupling arbitrates exactly as in
/// the global problem: a wide-margin split far from w0 wins only when its
/// margin gain outweighs the deviation penalty. Runs entirely on the
/// user's own data (device-local in the distributed setting).
std::vector<int> cluster_initial_signs(const PlosUserContext& ctx,
                                       std::span<const double> user_weights,
                                       double lambda_over_t, double cl,
                                       double cu, std::uint64_t seed,
                                       PlaneGramCache* cache = nullptr);

/// The most violated constraint (Eq. 14) for user `ctx` at weights `w`:
/// selects labeled samples with y_i (w·x_i) < 1 and unlabeled samples with
/// sign_i (w·x_i) < 1.
CuttingPlane most_violated_constraint(const PlosUserContext& ctx,
                                      std::span<const int> signs,
                                      std::span<const double> user_weights,
                                      double cl, double cu);

/// Violation b_c − s_c·w − ξ of a constraint at weights w with slack ξ.
/// Mirrors the value into the "plos.cutting_plane.violation" gauge.
double constraint_violation(const CuttingPlane& plane,
                            std::span<const double> user_weights, double xi);

/// Bumps the shared "plos.cutting_plane.constraints_added" counter; called
/// by every working-set grow site (centralized dual, device dual, local
/// deviation fit) so the registry sees one population-wide count.
void count_constraint_added();

/// Optimal slack for a working set Ω at weights w:
/// ξ = max(0, max_{c ∈ Ω} b_c − s_c·w).
double optimal_slack(const std::vector<CuttingPlane>& working_set,
                     std::span<const double> user_weights);

}  // namespace plos::core
