// Centralized PLOS (paper §IV, Algorithm 1).
//
// Solves the joint personalization objective (Eq. 2/4) with:
//   * a CCCP outer loop that linearizes the non-convex |w_t·x| terms of
//     unlabeled samples at the previous iterate;
//   * a 1-slack cutting-plane loop per convex subproblem;
//   * the structured dual QP (Eq. 16) over all users' working sets, with
//     per-user capped-simplex constraints Σ_k γ_kt ≤ T/(2λ).
//
// The feature map Φ (Eq. 7) is never materialized: every dual Hessian entry
// is (λ/T + [t = t']) ⟨s, s'⟩ with d-dimensional constraint vectors s, and
// the primal is recovered as w0 = (λ/T) Σ γ s,  v_t = Σ_{k∈t} γ s.
#pragma once

#include <cstdint>
#include <vector>

#include "core/model.hpp"
#include "core/options.hpp"
#include "data/dataset.hpp"
#include "obs/journal.hpp"
#include "obs/watchdog.hpp"

namespace plos::core {

struct CentralizedPlosOptions {
  PlosHyperParams params;
  CuttingPlaneOptions cutting_plane;
  CccpOptions cccp;
  /// Inner dual-QP accuracy only needs to stay comfortably below the
  /// cutting-plane epsilon, hence the looser-than-default tolerance.
  qp::QpOptions qp{1e-7, 3000, {}};
  /// Initialize w0 by training a pooled linear SVM on all revealed labels
  /// (falls back to a random unit direction when nobody provides labels,
  /// which turns PLOS into pure maximum-margin clustering).
  bool svm_initialization = true;
  double init_svm_c = 1.0;
  /// First-round CCCP signs for users with zero labels come from 2-means
  /// clustering of their own data (polarity aligned with w0) instead of
  /// sign(w0·x): the personal cluster structure is exactly what the
  /// unlabeled loss is meant to exploit, and this keeps the linearization
  /// from inheriting w0's systematic per-user errors.
  bool cluster_sign_initialization = true;
  std::uint64_t seed = 99;  ///< cluster-init / no-label fallback randomness
  /// Worker threads for per-user separation, CCCP sign fitting, and dual
  /// Hessian row assembly. 0 = all hardware threads, 1 = legacy serial.
  /// Results are bitwise identical for every value (see DESIGN.md §8).
  int num_threads = 1;
  /// Master switch for the bitwise-transparent hot-path caches: Gram dot
  /// memoization and cached Lipschitz estimates (DESIGN.md §13). Models
  /// and journals are bitwise identical either way — the flag exists so
  /// the equivalence suite and PLOS_NO_HOTPATH_CACHE runs can prove that.
  /// Plane interning and cross-round QP warm starts are algorithm state
  /// and stay on in both flavors.
  bool hotpath_cache = true;
  /// Telemetry sinks, both optional and borrowed (caller owns, must
  /// outlive the call). The journal receives one RoundRecord per started
  /// CCCP round, appended on the aggregation thread in round order, so
  /// its serialized form is byte-identical at any thread count. The
  /// watchdog observes every record; under OnViolation::kAbort a
  /// violation stops training at the next round boundary (the best
  /// iterate so far is kept and diagnostics.watchdog_aborted is set).
  obs::Journal* journal = nullptr;
  obs::Watchdog* watchdog = nullptr;
};

struct PlosDiagnostics {
  std::vector<double> objective_trace;  ///< objective after each CCCP round
  int cccp_iterations = 0;
  int qp_solves = 0;
  std::size_t final_constraint_count = 0;
  double train_seconds = 0.0;
  /// Per-CCCP-round breakdown (one entry per *started* round, including a
  /// final round rejected by the descent safeguard): wall time spent in the
  /// round and dual QP solves it performed. train_seconds aggregates these;
  /// the per-round view is what convergence/performance analysis needs.
  std::vector<double> round_seconds;
  std::vector<int> round_qp_solves;
  /// True when the convergence watchdog aborted the run (see
  /// CentralizedPlosOptions::watchdog).
  bool watchdog_aborted = false;
};

struct CentralizedPlosResult {
  PersonalizedModel model;
  PlosDiagnostics diagnostics;
};

/// Trains on the dataset's revealed labels plus the structure of all
/// unlabeled samples. Deterministic for fixed options.
CentralizedPlosResult train_centralized_plos(
    const data::MultiUserDataset& dataset,
    const CentralizedPlosOptions& options = {});

/// The paper-scale objective (Eq. 3, outer minimization merged):
/// ||w0||² + (λ/T) Σ||v_t||² + Σ_t (Cl/m_t Σ hinge(y w·x) + Cu/m_t Σ
/// hinge(|w·x|)). CCCP decreases this monotonically; exposed for tests.
double plos_objective(const data::MultiUserDataset& dataset,
                      const PersonalizedModel& model,
                      const PlosHyperParams& params);

}  // namespace plos::core
