// The per-device half of distributed ADMM, shared by the synchronous round
// engine (core/distributed_plos) and the asynchronous quorum engine
// (src/async).
//
// Extracted so both engines run the exact same local-solver code path:
// the degenerate-equivalence contract (DESIGN.md §14 — async with a 100%
// quorum and no deadlines is bitwise-identical to the synchronous engine)
// only holds if a device's bootstrap, CCCP linearization, cutting-plane
// working set, dual QP, and wire serialization are literally the same
// instructions in both engines, not parallel reimplementations.
//
// One AdmmDevice owns one simulated device: its raw data, CCCP signs, the
// cutting-plane working set of the current CCCP round, and the hot-path
// state of DESIGN.md §13 (device-owned Gram cache, trainer-owned WarmStore
// slot, Lipschitz memo per working-set version). Under the thread pool's
// static chunking each device is touched by exactly one worker per round,
// so none of this needs locking.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/cutting_plane.hpp"
#include "core/distributed_plos.hpp"
#include "core/gram_cache.hpp"
#include "obs/journal.hpp"
#include "obs/sketch.hpp"
#include "qp/warm_store.hpp"

namespace plos::core {

// Wire formats. Sizes are what the simulator charges, so they are real
// serializations, not estimates. Fault-free paths transmit the bare
// payload (sizes — and goldens pinning them — unchanged from the pre-fault
// code); the fault path wraps payloads in CRC32 frames via
// net::frame_message before handing them to SimNetwork::transmit_*.
std::vector<std::uint8_t> admm_broadcast_payload(std::span<const double> w0,
                                                 std::span<const double> u);
std::vector<std::uint8_t> admm_update_payload(std::span<const double> w,
                                              std::span<const double> v,
                                              double xi);

/// Why a device sat out a round (or didn't); tallied into the
/// graceful-degradation diagnostics after each ADMM iteration.
enum DeviceRoundStatus : char {
  kParticipated = 0,
  kUnavailable = 1,     // async schedule said unavailable
  kOffline = 2,         // fault schedule churn window
  kDownlinkFailed = 3,  // broadcast lost after all retries
  kDeadlineMissed = 4,  // straggler; server stopped waiting
  kUplinkFailed = 5,    // update lost/corrupt after all retries
  kLateUpload = 6,      // async: arrived after the quorum cut, folded later
  kBusy = 7,            // async: previous upload still in flight
};

/// Size of the DeviceRoundStatus vocabulary — the journal's cause_counts
/// vector has exactly this many slots in enum order.
inline constexpr std::size_t kDeviceRoundStatusCount = 8;

/// One simulated device (see file comment).
class AdmmDevice {
 public:
  AdmmDevice(const data::UserData& user, std::size_t num_users,
             const DistributedPlosOptions& options, qp::WarmStore* warm,
             std::size_t slot);

  /// Local SVM on revealed labels for the bootstrap round; empty when the
  /// device has no labels.
  linalg::Vector bootstrap_weights() const;

  /// Starts a CCCP round: fix linearization signs at the current w_t and
  /// reset the working set (the planes depend on the signs).
  void begin_cccp_round(std::span<const double> current_weights,
                        bool first_round, std::uint64_t seed);

  struct LocalSolution {
    linalg::Vector w;
    linalg::Vector v;
    double xi = 0.0;
  };

  /// Solves the local problem (Eq. 22) for the received (w0, u_t).
  LocalSolution solve(std::span<const double> w0, std::span<const double> u);

  /// Cumulative dual QP solves this device has performed.
  int qp_solves() const { return qp_solves_; }

  /// Cumulative QP inner iterations across those solves.
  int qp_iterations() const { return qp_iterations_; }

  /// Cutting planes currently in the device's working set.
  std::size_t working_set_size() const { return working_set_.size(); }

 private:
  void add_plane(CuttingPlane plane, const linalg::Vector& d);
  void solve_dual(const linalg::Vector& d, LocalSolution& sol);

  PlosUserContext ctx_;
  const DistributedPlosOptions* options_;
  double num_users_;
  double kappa_;     ///< T/(2λ) + 1/ρ
  double v_over_g_;  ///< T/(2λ)
  std::vector<int> signs_;
  std::vector<CuttingPlane> working_set_;
  std::vector<std::uint32_t> plane_ids_;  ///< interned id per working-set slot
  linalg::Matrix hessian_;   ///< κ ⟨s_i, s_j⟩ over the working set
  linalg::Vector linear_;    ///< b_i − ⟨s_i, d⟩ at the current prox center
  double lipschitz_ = 0.0;   ///< memoized λmax(hessian_); 0 = stale
  linalg::Vector previous_gamma_;
  PlaneGramCache gram_;      ///< persists across CCCP rounds
  qp::WarmStore* warm_;      ///< trainer-owned; this device's slot is slot_
  std::size_t slot_;
  int qp_solves_ = 0;
  int qp_iterations_ = 0;
};

/// Server-side freshness bookkeeping behind the journal's staleness
/// fields. Tracks, per device, the aggregation step whose data the
/// server's cached block (w_t, v_t, ξ_t) was computed in; a block's age
/// at step k is the number of steps its data lags behind k. Both round
/// engines maintain the ledger identically (the synchronous engine just
/// never evicts), which keeps degenerate-mode journals byte-identical.
class StalenessLedger {
 public:
  /// Buckets of the journal staleness histogram; the last is open-ended.
  static constexpr std::size_t kHistogramBuckets = 8;

  explicit StalenessLedger(std::size_t num_users);

  /// Block `t` now holds data computed in aggregation step `step`.
  void refresh(std::size_t t, std::uint64_t step);

  /// Age of block `t` at aggregation step `step`: 0 when refreshed this
  /// step, `step + 1` when still carrying the bootstrap-round state.
  std::uint64_t age(std::size_t t, std::uint64_t step) const;

  /// Max age over all blocks at step `step`.
  std::uint64_t max_age(std::uint64_t step) const;

  /// Bucket layout of the fleet staleness sketch both engines journal
  /// (sub-integer resolution up to 16 rounds, ~12% relative beyond).
  static obs::QuantileSketch::Spec staleness_sketch_spec() {
    return obs::QuantileSketch::Spec{/*min_value=*/1.0,
                                     /*max_value=*/65536.0,
                                     /*sub_buckets=*/8};
  }

  /// Fills record.max_staleness, record.staleness_hist (one count per
  /// block, bucket = min(age, kHistogramBuckets - 1)), and the sketch
  /// quantiles record.stale_p50/p90/p99.
  void fill_record(obs::RoundRecord& record, std::uint64_t step) const;

 private:
  /// Data step + 1 per device; 0 = bootstrap-era block, never refreshed.
  std::vector<std::uint64_t> data_step_;
};

}  // namespace plos::core
