#include "core/admm_device.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "common/stopwatch.hpp"
#include "net/serialize.hpp"
#include "obs/metrics.hpp"
#include "svm/linear_svm.hpp"

namespace plos::core {

namespace {

// Accumulates wire-format serialization wall time so bench snapshots can
// split solver time into QP vs separation vs serialization.
void count_serialize_seconds(const Stopwatch& watch) {
  static obs::Counter& seconds =
      obs::metrics().counter("net.serialize.seconds");
  seconds.add(watch.elapsed_seconds());
}

}  // namespace

std::vector<std::uint8_t> admm_broadcast_payload(std::span<const double> w0,
                                                 std::span<const double> u) {
  const Stopwatch watch;
  net::Serializer s;
  s.write_u32(/*message type*/ 1);
  s.write_vector(w0);
  s.write_vector(u);
  count_serialize_seconds(watch);
  return s.take();
}

std::vector<std::uint8_t> admm_update_payload(std::span<const double> w,
                                              std::span<const double> v,
                                              double xi) {
  const Stopwatch watch;
  net::Serializer s;
  s.write_u32(/*message type*/ 2);
  s.write_vector(w);
  s.write_vector(v);
  s.write_f64(xi);
  count_serialize_seconds(watch);
  return s.take();
}

AdmmDevice::AdmmDevice(const data::UserData& user, std::size_t num_users,
                       const DistributedPlosOptions& options,
                       qp::WarmStore* warm, std::size_t slot)
    : ctx_(PlosUserContext::from_user(user)),
      options_(&options),
      num_users_(static_cast<double>(num_users)),
      kappa_(static_cast<double>(num_users) / (2.0 * options.params.lambda) +
             1.0 / options.rho),
      v_over_g_(static_cast<double>(num_users) /
                (2.0 * options.params.lambda)),
      gram_(options.hotpath_cache),
      warm_(warm),
      slot_(slot) {}

linalg::Vector AdmmDevice::bootstrap_weights() const {
  if (ctx_.labeled.empty()) return {};
  std::vector<linalg::Vector> xs;
  std::vector<int> ys;
  for (std::size_t i : ctx_.labeled) {
    xs.push_back(ctx_.user->samples[i]);
    ys.push_back(ctx_.user->true_labels[i]);
  }
  svm::LinearSvmOptions svm_options;
  svm_options.c = options_->init_svm_c;
  return svm::train_linear_svm(xs, ys, svm_options).weights;
}

void AdmmDevice::begin_cccp_round(std::span<const double> current_weights,
                                  bool first_round, std::uint64_t seed) {
  // Persist the round's converged duals keyed by interned plane id before
  // resetting: planes the next round re-derives bitwise resume from them.
  if (!plane_ids_.empty() && previous_gamma_.size() == plane_ids_.size()) {
    warm_->store(slot_, plane_ids_, previous_gamma_);
  }
  if (first_round && options_->cluster_sign_initialization &&
      ctx_.labeled.empty()) {
    signs_ = cluster_initial_signs(ctx_, current_weights,
                                   options_->params.lambda / num_users_,
                                   options_->params.cl, options_->params.cu,
                                   seed, &gram_);
  } else {
    signs_ = cccp_signs(ctx_, current_weights);
  }
  working_set_.clear();
  plane_ids_.clear();
  hessian_ = linalg::Matrix();
  linear_.clear();
  lipschitz_ = 0.0;
  previous_gamma_.clear();
}

AdmmDevice::LocalSolution AdmmDevice::solve(std::span<const double> w0,
                                            std::span<const double> u) {
  const std::size_t dim = w0.size();
  linalg::Vector d(dim);
  for (std::size_t j = 0; j < dim; ++j) d[j] = w0[j] - u[j];

  LocalSolution sol;
  sol.w = d;  // empty working set ⇒ g = 0 ⇒ w = d, v = 0
  sol.v = linalg::zeros(dim);

  if (ctx_.num_samples() == 0) return sol;

  // The prox center moved: refresh the d-dependent linear coefficients
  // once per ADMM iteration. They are loop-invariant across the plane
  // additions below (each addition appends only its own entry), where
  // the old code recomputed the full set on every dual solve.
  for (std::size_t i = 0; i < working_set_.size(); ++i) {
    linear_[i] =
        working_set_[i].offset - linalg::dot(working_set_[i].s, d);
  }

  // The working set persists across ADMM iterations (the planes depend
  // only on the CCCP signs), but the prox center d moved — re-solve over
  // the existing set before looking for new violations.
  if (!working_set_.empty()) solve_dual(d, sol);

  for (int it = 0; it < options_->cutting_plane.max_iterations; ++it) {
    sol.xi = optimal_slack(working_set_, sol.w);
    CuttingPlane plane = most_violated_constraint(
        ctx_, signs_, sol.w, options_->params.cl, options_->params.cu);
    if (constraint_violation(plane, sol.w, sol.xi) <=
        options_->cutting_plane.epsilon) {
      break;
    }
    add_plane(std::move(plane), d);
    solve_dual(d, sol);
  }
  sol.xi = optimal_slack(working_set_, sol.w);
  return sol;
}

void AdmmDevice::add_plane(CuttingPlane plane, const linalg::Vector& d) {
  const std::size_t a = working_set_.size();
  const std::uint32_t id = gram_.intern(plane.s);
  // Extend the prox-QP Hessian (already scaled by κ) by one border
  // row/column through the Gram cache: a plane re-derived from an earlier
  // round serves its whole border from memo.
  linalg::Matrix h(a + 1, a + 1);
  for (std::size_t i = 0; i < a; ++i) {
    for (std::size_t j = 0; j < a; ++j) h(i, j) = hessian_(i, j);
  }
  for (std::size_t i = 0; i < a; ++i) {
    const double entry = kappa_ * gram_.dot(plane_ids_[i], id);
    h(i, a) = entry;
    h(a, i) = entry;
  }
  h(a, a) = kappa_ * gram_.dot(id, id);
  hessian_ = std::move(h);
  lipschitz_ = 0.0;  // Hessian version changed
  linear_.push_back(plane.offset - linalg::dot(plane.s, d));
  // The new dual variable resumes from the γ this plane converged to in
  // the previous CCCP round (0 if it was never in the working set).
  previous_gamma_.push_back(warm_->seed(slot_, id));
  plane_ids_.push_back(id);
  working_set_.push_back(std::move(plane));
  count_constraint_added();
}

void AdmmDevice::solve_dual(const linalg::Vector& d, LocalSolution& sol) {
  const std::size_t n = working_set_.size();
  qp::CappedSimplexQpProblem problem;
  problem.hessian = hessian_;
  problem.linear = linear_;
  problem.groups.resize(1);
  problem.groups[0].resize(n);
  for (std::size_t i = 0; i < n; ++i) problem.groups[0][i] = i;
  problem.caps = {1.0};

  qp::QpOptions qp_options = options_->qp;
  qp_options.warm_start = previous_gamma_;
  qp_options.warm_start.resize(n, 0.0);
  if (gram_.memoize()) {
    // Lipschitz memo per working-set version: re-solves of an unchanged
    // Hessian (every late ADMM iteration) skip the power iteration.
    // Bitwise-neutral — lipschitz_estimate is a pure function of H, and
    // checked builds re-derive and compare (see QpOptions::lipschitz).
    if (lipschitz_ == 0.0) {
      lipschitz_ = qp::lipschitz_estimate(problem.hessian);
    }
    qp_options.lipschitz = lipschitz_;
  }
  const qp::QpResult result = qp::solve_capped_simplex_qp(problem, qp_options);
  ++qp_solves_;
  qp_iterations_ += result.iterations;
  previous_gamma_ = result.solution;

  linalg::Vector g = linalg::zeros(d.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (result.solution[i] != 0.0) {
      linalg::axpy(result.solution[i], working_set_[i].s, g);
    }
  }
  sol.w = d;
  linalg::axpy(kappa_, g, sol.w);
  sol.v = linalg::scaled(g, v_over_g_);
}

StalenessLedger::StalenessLedger(std::size_t num_users)
    : data_step_(num_users, 0) {}

void StalenessLedger::refresh(std::size_t t, std::uint64_t step) {
  PLOS_CHECK(t < data_step_.size(), "StalenessLedger: device out of range");
  data_step_[t] = step + 1;
}

std::uint64_t StalenessLedger::age(std::size_t t, std::uint64_t step) const {
  PLOS_CHECK(t < data_step_.size(), "StalenessLedger: device out of range");
  // data_step_ stores step + 1, so a block refreshed this step has age 0
  // and a bootstrap-era block (sentinel 0) has age step + 1.
  PLOS_CHECK(data_step_[t] <= step + 1,
             "StalenessLedger: block refreshed in the future");
  return step + 1 - data_step_[t];
}

std::uint64_t StalenessLedger::max_age(std::uint64_t step) const {
  std::uint64_t result = 0;
  for (std::size_t t = 0; t < data_step_.size(); ++t) {
    result = std::max(result, age(t, step));
  }
  return result;
}

void StalenessLedger::fill_record(obs::RoundRecord& record,
                                  std::uint64_t step) const {
  record.staleness_hist.assign(kHistogramBuckets, 0);
  record.max_staleness = 0;
  // Fleet staleness distribution as a bounded sketch (DESIGN.md §15): the
  // journal carries its p50/p90/p99 instead of any O(users) row, and the
  // async auto-tuner reads those percentiles back as its control signal.
  // Ages are integers, so the sketch is exact up to its relative bucket
  // width; one pass on the aggregation thread keeps it deterministic.
  obs::QuantileSketch ages(staleness_sketch_spec());
  for (std::size_t t = 0; t < data_step_.size(); ++t) {
    const std::uint64_t a = age(t, step);
    record.max_staleness = std::max(record.max_staleness, a);
    const std::size_t bucket = static_cast<std::size_t>(
        std::min<std::uint64_t>(a, kHistogramBuckets - 1));
    ++record.staleness_hist[bucket];
    ages.record(static_cast<double>(a));
  }
  record.stale_p50 = ages.quantile(0.50);
  record.stale_p90 = ages.quantile(0.90);
  record.stale_p99 = ages.quantile(0.99);
}

}  // namespace plos::core
