// The paper's three baselines (§VI-A).
//
//   All:    pool every revealed label on the server, train one global linear
//           SVM, apply it to everybody.
//   Single: each user learns alone — an SVM on their own revealed labels, or
//           k-means (k = 2) on their raw samples when they provide none
//           (scored under best cluster↔class assignment).
//   Group:  users are compared WITHOUT sharing raw data via random-
//           hyperplane LSH histograms (n = 128 buckets) and generalized
//           Jaccard similarity, grouped by spectral clustering (3 groups),
//           then each group pools labels and trains a per-group SVM (or
//           k-means when the whole group is label-free).
#pragma once

#include <cstdint>

#include "core/evaluation.hpp"
#include "data/dataset.hpp"

namespace plos::core {

struct BaselineOptions {
  double svm_c = 1.0;
  std::uint64_t seed = 13;  ///< k-means / LSH / spectral randomness
  /// Worker threads for per-user/per-group SVM fits and predictions.
  /// 0 = all hardware threads, 1 = legacy serial; predictions are bitwise
  /// identical for every value (RNG streams are forked serially).
  int num_threads = 1;
};

struct GroupBaselineOptions {
  BaselineOptions base;
  std::size_t num_groups = 3;  ///< paper: 3 spectral clusters
  std::size_t lsh_bits = 7;    ///< paper: n = 128 buckets
};

std::vector<UserPrediction> run_all_baseline(
    const data::MultiUserDataset& dataset, const BaselineOptions& options = {});

std::vector<UserPrediction> run_single_baseline(
    const data::MultiUserDataset& dataset, const BaselineOptions& options = {});

std::vector<UserPrediction> run_group_baseline(
    const data::MultiUserDataset& dataset,
    const GroupBaselineOptions& options = {});

/// The user grouping the Group baseline derives (exposed for tests and
/// examples): LSH histograms → Jaccard similarity → spectral clustering.
std::vector<std::size_t> group_users(const data::MultiUserDataset& dataset,
                                     const GroupBaselineOptions& options = {});

}  // namespace plos::core
