#include "core/cutting_plane.hpp"

#include <algorithm>

#include "cluster/kmeans.hpp"
#include "common/assert.hpp"
#include "common/stopwatch.hpp"
#include "obs/metrics.hpp"
#include "qp/capped_simplex_qp.hpp"
#include "rng/engine.hpp"

namespace plos::core {

PlosUserContext PlosUserContext::from_user(const data::UserData& user) {
  PlosUserContext ctx;
  ctx.user = &user;
  ctx.labeled = user.revealed_indices();
  ctx.unlabeled = user.hidden_indices();
  return ctx;
}

std::vector<int> cccp_signs(const PlosUserContext& ctx,
                            std::span<const double> user_weights) {
  PLOS_CHECK(ctx.user != nullptr, "cccp_signs: null user");
  std::vector<int> signs;
  signs.reserve(ctx.unlabeled.size());
  for (std::size_t i : ctx.unlabeled) {
    const double value = linalg::dot(user_weights, ctx.user->samples[i]);
    signs.push_back(value >= 0.0 ? 1 : -1);
  }
  return signs;
}

LocalDeviationFit fit_local_deviation(const PlosUserContext& ctx,
                                      std::span<const int> signs,
                                      std::span<const double> global_weights,
                                      double lambda_over_t, double cl,
                                      double cu, double epsilon,
                                      int max_iterations,
                                      PlaneGramCache* cache) {
  PLOS_CHECK(ctx.user != nullptr, "fit_local_deviation: null user");
  PLOS_CHECK(lambda_over_t > 0.0,
             "fit_local_deviation: lambda_over_t must be positive");
  const std::size_t dim = global_weights.size();
  const double kappa = 1.0 / (2.0 * lambda_over_t);  // = T/(2λ)

  LocalDeviationFit fit;
  fit.weights.assign(global_weights.begin(), global_weights.end());
  if (ctx.num_samples() == 0) return fit;

  PlaneGramCache local_cache;
  PlaneGramCache& gram = cache != nullptr ? *cache : local_cache;

  std::vector<CuttingPlane> working_set;
  std::vector<std::uint32_t> plane_ids;
  linalg::Matrix dots;
  linalg::Vector linear_base;  // b_i − ⟨s_i, w0⟩, fixed once a plane enters
  linalg::Vector gamma;
  linalg::Vector v = linalg::zeros(dim);

  for (int it = 0; it < max_iterations; ++it) {
    const double xi = optimal_slack(working_set, fit.weights);
    const CuttingPlane plane =
        most_violated_constraint(ctx, signs, fit.weights, cl, cu);
    if (constraint_violation(plane, fit.weights, xi) <= epsilon) break;

    // Extend the ⟨s_i, s_j⟩ matrix with the new plane through the Gram
    // cache: a bitwise re-derivation of a known plane serves its whole row
    // from memo instead of recomputing a dot per existing plane.
    const std::size_t a = working_set.size();
    const std::uint32_t id = gram.intern(plane.s);
    linalg::Matrix next(a + 1, a + 1);
    for (std::size_t i = 0; i < a; ++i) {
      for (std::size_t j = 0; j < a; ++j) next(i, j) = dots(i, j);
    }
    for (std::size_t i = 0; i < a; ++i) {
      const double d = gram.dot(plane_ids[i], id);
      next(i, a) = d;
      next(a, i) = d;
    }
    next(a, a) = gram.dot(id, id);
    dots = std::move(next);
    working_set.push_back(plane);
    plane_ids.push_back(id);
    linear_base.push_back(plane.offset -
                          linalg::dot(plane.s, global_weights));
    count_constraint_added();

    // Dual: max Σγ(b_c − s_c·w0) − ½ κ ||Σγs||², γ ≥ 0, Σγ ≤ 1.
    const std::size_t n = working_set.size();
    qp::CappedSimplexQpProblem problem;
    problem.hessian = linalg::Matrix(n, n);
    problem.linear.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        problem.hessian(i, j) = kappa * dots(i, j);
      }
      problem.linear[i] = linear_base[i];
    }
    problem.groups = {std::vector<std::size_t>(n)};
    for (std::size_t i = 0; i < n; ++i) problem.groups[0][i] = i;
    problem.caps = {1.0};
    qp::QpOptions qp_options{1e-7, 3000, gamma};
    qp_options.warm_start.resize(n, 0.0);
    const qp::QpResult result = qp::solve_capped_simplex_qp(problem, qp_options);
    gamma = result.solution;
    // Dual feasibility of the working-set QP: γ ≥ 0, Σγ ≤ 1 (the QP solver
    // re-verifies its own bounds; this guards the hand-off).
    PLOS_DCHECK(gamma.size() == n,
                "fit_local_deviation: dual size " << gamma.size() << " != " << n);

    linalg::Vector g = linalg::zeros(dim);
    for (std::size_t i = 0; i < n; ++i) {
      if (gamma[i] != 0.0) linalg::axpy(gamma[i], working_set[i].s, g);
    }
    // ρ→∞ limit of the device solve: v = κ g and w = w0 + v.
    v = linalg::scaled(g, kappa);
    fit.weights.assign(global_weights.begin(), global_weights.end());
    linalg::axpy(1.0, v, fit.weights);
  }

  fit.objective = PLOS_CHECK_FINITE(lambda_over_t * linalg::squared_norm(v) +
                                    optimal_slack(working_set, fit.weights));
  return fit;
}

namespace {

// Short local CCCP: alternate deviation fitting and re-signing. Returns the
// final signs and the final local objective.
std::pair<std::vector<int>, double> refine_signs_locally(
    const PlosUserContext& ctx, std::vector<int> signs,
    std::span<const double> global_weights, double lambda_over_t, double cl,
    double cu, PlaneGramCache* cache) {
  double objective = 0.0;
  for (int round = 0; round < 4; ++round) {
    const LocalDeviationFit fit =
        fit_local_deviation(ctx, signs, global_weights, lambda_over_t, cl, cu,
                            /*epsilon=*/1e-2, /*max_iterations=*/50, cache);
    objective = fit.objective;
    std::vector<int> next = cccp_signs(ctx, fit.weights);
    if (next == signs) break;
    signs = std::move(next);
  }
  return {std::move(signs), objective};
}

}  // namespace

std::vector<int> cluster_initial_signs(const PlosUserContext& ctx,
                                       std::span<const double> user_weights,
                                       double lambda_over_t, double cl,
                                       double cu, std::uint64_t seed,
                                       PlaneGramCache* cache) {
  PLOS_CHECK(ctx.user != nullptr, "cluster_initial_signs: null user");
  PLOS_CHECK(ctx.labeled.empty(),
             "cluster_initial_signs: only for users without labels");
  if (ctx.unlabeled.empty()) return {};
  const std::vector<int> weight_signs = cccp_signs(ctx, user_weights);
  if (ctx.unlabeled.size() < 4) return weight_signs;

  std::vector<linalg::Vector> points;
  points.reserve(ctx.unlabeled.size());
  for (std::size_t i : ctx.unlabeled) points.push_back(ctx.user->samples[i]);
  rng::Engine engine(seed);
  const auto clusters = cluster::kmeans(points, 2, engine);

  std::vector<int> cluster_signs(ctx.unlabeled.size());
  int agreement = 0;  // cluster-0-positive convention vs current weights
  for (std::size_t k = 0; k < ctx.unlabeled.size(); ++k) {
    cluster_signs[k] = clusters.assignments[k] == 0 ? 1 : -1;
    agreement += (weight_signs[k] > 0) == (cluster_signs[k] > 0) ? 1 : -1;
  }
  if (agreement < 0) {
    for (int& s : cluster_signs) s = -s;
  }

  auto [refined_weight_signs, weight_score] = refine_signs_locally(
      ctx, weight_signs, user_weights, lambda_over_t, cl, cu, cache);
  const bool one_sided =
      std::all_of(cluster_signs.begin(), cluster_signs.end(),
                  [&](int s) { return s == cluster_signs.front(); });
  if (one_sided) return refined_weight_signs;

  auto [refined_cluster_signs, cluster_score] = refine_signs_locally(
      ctx, std::move(cluster_signs), user_weights, lambda_over_t, cl, cu,
      cache);
  return cluster_score < weight_score ? std::move(refined_cluster_signs)
                                      : std::move(refined_weight_signs);
}

CuttingPlane most_violated_constraint(const PlosUserContext& ctx,
                                      std::span<const int> signs,
                                      std::span<const double> user_weights,
                                      double cl, double cu) {
  const Stopwatch watch;
  PLOS_CHECK(ctx.user != nullptr, "most_violated_constraint: null user");
  PLOS_CHECK(signs.size() == ctx.unlabeled.size(),
             "most_violated_constraint: signs/unlabeled size mismatch");
  const std::size_t m = ctx.num_samples();
  PLOS_CHECK(m > 0, "most_violated_constraint: user has no samples");

  CuttingPlane plane;
  plane.s = linalg::zeros(user_weights.size());
  std::size_t selected_labeled = 0;
  std::size_t selected_unlabeled = 0;

  for (std::size_t i : ctx.labeled) {
    const auto& x = ctx.user->samples[i];
    const double y = static_cast<double>(ctx.user->true_labels[i]);
    if (y * linalg::dot(user_weights, x) < 1.0) {
      linalg::axpy(cl * y, x, plane.s);
      ++selected_labeled;
    }
  }
  for (std::size_t k = 0; k < ctx.unlabeled.size(); ++k) {
    const auto& x = ctx.user->samples[ctx.unlabeled[k]];
    const double sign = static_cast<double>(signs[k]);
    if (sign * linalg::dot(user_weights, x) < 1.0) {
      linalg::axpy(cu * sign, x, plane.s);
      ++selected_unlabeled;
    }
  }

  const double inv_m = 1.0 / static_cast<double>(m);
  linalg::scale(plane.s, inv_m);
  plane.offset = inv_m * (cl * static_cast<double>(selected_labeled) +
                          cu * static_cast<double>(selected_unlabeled));

  static obs::Counter& separations =
      obs::metrics().counter("plos.cutting_plane.separations");
  static obs::Counter& seconds =
      obs::metrics().counter("plos.cutting_plane.separation_seconds");
  separations.increment();
  seconds.add(watch.elapsed_seconds());
  return plane;
}

double constraint_violation(const CuttingPlane& plane,
                            std::span<const double> user_weights, double xi) {
  const double violation =
      plane.offset - linalg::dot(plane.s, user_weights) - xi;
  static obs::Gauge& gauge =
      obs::metrics().gauge("plos.cutting_plane.violation");
  gauge.set(violation);
  return violation;
}

void count_constraint_added() {
  static obs::Counter& constraints =
      obs::metrics().counter("plos.cutting_plane.constraints_added");
  constraints.increment();
}

double optimal_slack(const std::vector<CuttingPlane>& working_set,
                     std::span<const double> user_weights) {
  double xi = 0.0;
  for (const auto& plane : working_set) {
    xi = std::max(xi, plane.offset - linalg::dot(plane.s, user_weights));
  }
  // Slack non-negativity: ξ = max(0, violations) by construction; NaN plane
  // terms would poison the max silently, so re-assert in checked builds.
  PLOS_DCHECK(xi >= 0.0, "optimal_slack: negative or NaN slack " << xi);
  return xi;
}

}  // namespace plos::core
