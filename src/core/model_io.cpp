#include "core/model_io.hpp"

#include <fstream>

#include "common/assert.hpp"
#include "net/serialize.hpp"

namespace plos::core {

namespace {

constexpr std::uint32_t kMagic = 0x504c4f53;  // "PLOS"
constexpr std::uint32_t kVersion = 1;

}  // namespace

std::vector<std::uint8_t> serialize_model(const PersonalizedModel& model) {
  net::Serializer s;
  s.write_u32(kMagic);
  s.write_u32(kVersion);
  s.write_u64(model.num_users());
  s.write_vector(model.global_weights);
  for (const auto& v : model.user_deviations) s.write_vector(v);
  return s.take();
}

std::optional<PersonalizedModel> deserialize_model(
    std::span<const std::uint8_t> buffer) {
  try {
    net::Deserializer d(buffer);
    if (d.read_u32() != kMagic) return std::nullopt;
    if (d.read_u32() != kVersion) return std::nullopt;
    const std::uint64_t num_users = d.read_u64();
    PersonalizedModel model;
    model.global_weights = d.read_vector();
    model.user_deviations.reserve(static_cast<std::size_t>(num_users));
    for (std::uint64_t t = 0; t < num_users; ++t) {
      model.user_deviations.push_back(d.read_vector());
      if (model.user_deviations.back().size() !=
          model.global_weights.size()) {
        return std::nullopt;
      }
    }
    if (!d.exhausted()) return std::nullopt;  // trailing garbage
    return model;
  } catch (const PreconditionError&) {
    return std::nullopt;  // truncated buffer
  }
}

bool save_model(const PersonalizedModel& model, const std::string& path) {
  const auto bytes = serialize_model(model);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

std::optional<PersonalizedModel> load_model(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return deserialize_model(bytes);
}

}  // namespace plos::core
