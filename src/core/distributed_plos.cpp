#include "core/distributed_plos.hpp"

#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "common/stopwatch.hpp"
#include "core/admm_device.hpp"
#include "linalg/vector.hpp"
#include "net/serialize.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "qp/warm_store.hpp"
#include "rng/engine.hpp"

namespace plos::core {

namespace {

// The per-device solver, the wire payload builders, and the round-status
// vocabulary live in core/admm_device.* — shared with the asynchronous
// quorum engine (src/async) so both engines run bitwise-identical device
// code.

// Shared implementation: participation = 1 is the synchronous algorithm
// (the availability RNG is bypassed entirely so results are bit-identical
// to the original code path); participation < 1 makes each device respond
// per ADMM iteration only with that probability.
DistributedPlosResult train_distributed_impl(
    const data::MultiUserDataset& dataset,
    const DistributedPlosOptions& options, net::SimNetwork* network,
    double participation, std::uint64_t schedule_seed) {
  dataset.check_invariants();
  const std::size_t num_users = dataset.num_users();
  const std::size_t dim = dataset.dim();
  PLOS_CHECK(num_users > 0, "train_distributed_plos: no users");
  PLOS_CHECK(dim > 0, "train_distributed_plos: empty dataset");
  PLOS_CHECK(options.params.lambda > 0.0 && options.rho > 0.0,
             "train_distributed_plos: lambda and rho must be positive");
  if (network != nullptr) {
    PLOS_CHECK(network->num_devices() == num_users,
               "train_distributed_plos: network/device count mismatch");
  }

  PLOS_SPAN("plos.distributed_train");
  PLOS_LOG_INFO("distributed train start", obs::F("users", num_users),
                obs::F("dim", dim), obs::F("rho", options.rho),
                obs::F("participation", participation),
                obs::F("threads", parallel::resolve_num_threads(
                                      options.num_threads)));
  // Devices are simulated concurrently: each worker owns a disjoint set of
  // device indices per round (static chunking), so all per-device state —
  // working sets, w/v/xi slots, SimNetwork per-device ledgers — is written
  // by exactly one thread per round and results match the serial schedule
  // bitwise. Only cross-device aggregation (w0 update, objective) stays on
  // the calling thread, in fixed device order.
  parallel::ThreadPool pool(options.num_threads);
  const Stopwatch total_watch;
  DistributedPlosResult result;
  result.model = PersonalizedModel::zeros(num_users, dim);

  // Fault injection rides on the network: an attached, enabled FaultModel
  // switches message exchange to CRC32-framed transmit_* with retries and
  // derives per-round participation from the counter-based fault schedule.
  // All fault draws are pure functions of (seed, round, device, ...), so
  // workers can evaluate them concurrently without breaking the bitwise
  // determinism contract.
  const net::FaultModel* fault = nullptr;
  if (network != nullptr && network->fault_model().enabled()) {
    fault = &network->fault_model();
  }

  // Converged per-plane duals, one slot per device, carried across CCCP
  // rounds. Workers only ever touch their own device's slot, so the store
  // needs no locking under the pool's static chunking.
  qp::WarmStore warm_store(num_users);
  std::vector<AdmmDevice> devices;
  devices.reserve(num_users);
  for (std::size_t t = 0; t < num_users; ++t) {
    devices.emplace_back(dataset.users[t], num_users, options, &warm_store, t);
  }

  // --- bootstrap round: average of local SVMs as the initial w0 ----------
  linalg::Vector w0 = linalg::zeros(dim);
  if (options.svm_bootstrap) {
    PLOS_SPAN("plos.bootstrap");
    // Local SVM fits run in parallel on the devices; the upload accounting
    // and the server-side average stay in ascending device order so the
    // floating-point sum matches the serial path bitwise.
    std::vector<linalg::Vector> locals(num_users);
    pool.parallel_for(num_users, [&](std::size_t t) {
      Stopwatch device_watch;
      locals[t] = devices[t].bootstrap_weights();
      if (network != nullptr) {
        network->account_device_compute(t, device_watch.elapsed_seconds());
      }
    });
    std::size_t contributors = 0;
    const std::uint64_t bootstrap_round =
        network != nullptr ? network->current_round() : 0;
    for (std::size_t t = 0; t < num_users; ++t) {
      if (locals[t].empty()) continue;
      if (fault != nullptr && fault->offline(bootstrap_round, t)) {
        ++result.diagnostics.devices_offline_total;
        continue;
      }
      if (network != nullptr) {
        net::Serializer s;
        s.write_u32(/*message type*/ 0);
        s.write_vector(locals[t]);
        if (fault != nullptr) {
          const auto frame = net::frame_message(s.buffer());
          if (!network->transmit_to_server(t, frame).delivered) {
            ++result.diagnostics.uplink_failures_total;
            continue;  // bootstrap upload lost: average over the others
          }
        } else {
          network->send_to_server(t, s.size_bytes());
        }
      }
      linalg::axpy(1.0, locals[t], w0);
      ++contributors;
    }
    if (contributors > 0) {
      linalg::scale(w0, 1.0 / static_cast<double>(contributors));
    }
    if (network != nullptr) network->end_round();
  }
  if (linalg::norm(w0) == 0.0) {
    // Nobody provided labels: random symmetry-breaking direction.
    rng::Engine engine(options.seed);
    w0 = engine.gaussian_vector(dim);
    const double n = linalg::norm(w0);
    if (n > 0.0) linalg::scale(w0, 1.0 / n);
  }

  rng::Engine schedule(schedule_seed);
  std::vector<linalg::Vector> u(num_users, linalg::zeros(dim));
  std::vector<linalg::Vector> w(num_users, w0);
  std::vector<linalg::Vector> v(num_users, linalg::zeros(dim));
  linalg::Vector xi(num_users, 0.0);

  const double sqrt_t = std::sqrt(static_cast<double>(num_users));
  double previous_cccp_objective = std::numeric_limits<double>::infinity();

  const auto total_device_qp_solves = [&devices]() {
    int total = 0;
    for (const AdmmDevice& device : devices) total += device.qp_solves();
    return total;
  };
  const auto total_device_qp_iterations = [&devices]() {
    int total = 0;
    for (const AdmmDevice& device : devices) total += device.qp_iterations();
    return total;
  };
  const auto total_working_set_size = [&devices]() {
    std::size_t total = 0;
    for (const AdmmDevice& device : devices) total += device.working_set_size();
    return total;
  };

  // Telemetry baselines for per-iteration deltas. Snapshots are taken on
  // the aggregation thread at iteration boundaries (after the pool join),
  // so every journal field is deterministic at any thread count.
  const bool telemetry =
      options.journal != nullptr || options.watchdog != nullptr;
  net::SimNetwork::TrafficSnapshot previous_traffic;
  if (network != nullptr) previous_traffic = network->traffic_snapshot();
  // Cumulative link-latency sketch baseline: the journal carries per-step
  // quantiles of the delta between consecutive snapshots (DESIGN.md §15).
  obs::QuantileSketch previous_latency =
      network != nullptr ? network->latency_sketch() : obs::QuantileSketch();
  bool watchdog_aborted = false;

  // Server-block freshness for the journal's staleness fields. The
  // synchronous engine refreshes every participant at each aggregation
  // step and never evicts; sharing the ledger vocabulary with the async
  // quorum engine keeps degenerate-mode journals byte-identical. The step
  // counter spans CCCP rounds (one tick per ADMM iteration).
  StalenessLedger staleness(num_users);
  std::uint64_t aggregation_step = 0;

  for (int cccp = 0; cccp < options.cccp.max_iterations; ++cccp) {
    PLOS_SPAN("plos.cccp_round", "round", cccp);
    const Stopwatch round_watch;
    const int round_admm_before = result.diagnostics.admm_iterations_total;
    const int round_qp_before = total_device_qp_solves();
    result.diagnostics.cccp_iterations = cccp + 1;
    pool.parallel_for(num_users, [&](std::size_t t) {
      Stopwatch device_watch;
      devices[t].begin_cccp_round(w[t], cccp == 0, options.seed + t);
      if (network != nullptr) {
        network->account_device_compute(t, device_watch.elapsed_seconds());
      }
    });

    double objective = 0.0;
    for (int admm = 0; admm < options.max_admm_iterations; ++admm) {
      PLOS_SPAN("plos.admm_round", "iteration", admm);
      ++result.diagnostics.admm_iterations_total;
      const int iteration_qp_solves_before =
          telemetry ? total_device_qp_solves() : 0;
      const int iteration_qp_iterations_before =
          telemetry ? total_device_qp_iterations() : 0;
      const linalg::Vector w0_old = w0;
      std::vector<linalg::Vector> u_old = u;
      const std::uint64_t round =
          network != nullptr ? network->current_round() : 0;
      std::vector<char> available(num_users, 1);
      std::vector<char> participated(num_users, 0);
      std::vector<char> status(num_users, kParticipated);

      // The availability schedule draws stay on the calling thread in
      // ascending device order, exactly as the serial loop consumed the
      // stream (participation = 1 bypasses the RNG entirely).
      if (participation < 1.0) {
        for (std::size_t t = 0; t < num_users; ++t) {
          available[t] = schedule.bernoulli(participation) ? 1 : 0;
        }
      }

      // Scatter (w0, u_t), local solves, gather (w_t, v_t, ξ_t) — the T
      // independent per-device prox-QPs (Eq. 22), solved concurrently.
      // Unavailable devices (async schedule), churned-out devices, and
      // devices whose round trip failed keep their last uploads in force;
      // the server update below runs over whoever actually delivered.
      // A device's (w_t, v_t, ξ_t) slot is updated only once its upload
      // reaches the server — a lost upload leaves the server's cached view
      // in place even though the device's local working set advanced.
      pool.parallel_for(num_users, [&](std::size_t t) {
        if (!available[t]) {
          status[t] = kUnavailable;
          return;
        }
        if (fault != nullptr && fault->offline(round, t)) {
          status[t] = kOffline;
          return;
        }
        if (network != nullptr) {
          if (fault != nullptr) {
            const auto frame =
                net::frame_message(admm_broadcast_payload(w0, u[t]));
            if (!network->transmit_to_device(t, frame).delivered) {
              status[t] = kDownlinkFailed;
              return;  // device never received (w0, u_t) this round
            }
          } else {
            network->send_to_device(t, admm_broadcast_payload(w0, u[t]).size());
          }
        }
        PLOS_SPAN("plos.device_solve", "device", static_cast<double>(t));
        Stopwatch device_watch;
        auto sol = devices[t].solve(w0, u[t]);
        if (network != nullptr) {
          network->account_device_compute(t, device_watch.elapsed_seconds());
        }
        if (fault != nullptr && fault->misses_deadline(round, t)) {
          // Straggler past the server's deadline: the compute happened (and
          // was charged) but the upload is pointless — the server moved on.
          status[t] = kDeadlineMissed;
          return;
        }
        if (network != nullptr) {
          if (fault != nullptr) {
            const auto frame =
                net::frame_message(admm_update_payload(sol.w, sol.v, sol.xi));
            if (!network->transmit_to_server(t, frame).delivered) {
              status[t] = kUplinkFailed;
              return;
            }
          } else {
            network->send_to_server(t,
                                    admm_update_payload(sol.w, sol.v, sol.xi).size());
          }
        }
        w[t] = std::move(sol.w);
        v[t] = std::move(sol.v);
        xi[t] = sol.xi;
        participated[t] = 1;
      });

      // Degradation tallies and participation trace (fixed device order on
      // the calling thread).
      std::size_t participants = 0;
      for (std::size_t t = 0; t < num_users; ++t) {
        participants += participated[t] != 0 ? 1 : 0;
        switch (status[t]) {
          case kOffline:
            ++result.diagnostics.devices_offline_total;
            break;
          case kDownlinkFailed:
            ++result.diagnostics.downlink_failures_total;
            break;
          case kDeadlineMissed:
            ++result.diagnostics.deadline_misses_total;
            break;
          case kUplinkFailed:
            ++result.diagnostics.uplink_failures_total;
            break;
          default:
            break;
        }
      }
      const double participation_rate =
          static_cast<double>(participants) / static_cast<double>(num_users);
      result.diagnostics.participation_trace.push_back(participation_rate);

      // Server closed-form updates (Eq. 23).
      Stopwatch server_watch;
      double primal_sq = 0.0;
      double w_sq = 0.0, target_sq = 0.0, u_sq = 0.0;
      {
        PLOS_SPAN("plos.server_update");
        linalg::Vector acc = linalg::zeros(dim);
        for (std::size_t t = 0; t < num_users; ++t) {
          linalg::axpy(1.0, w[t], acc);
          linalg::axpy(-1.0, v[t], acc);
          linalg::axpy(1.0, u_old[t], acc);
        }
        linalg::scale(acc, options.rho / (2.0 + static_cast<double>(num_users) *
                                                    options.rho));
        w0 = std::move(acc);
        for (std::size_t t = 0; t < num_users; ++t) {
          linalg::Vector residual = linalg::sub(w[t], w0);
          linalg::axpy(-1.0, v[t], residual);
          // Dual variables refresh only for devices whose constraint block
          // actually re-solved this iteration (stale blocks keep their u).
          if (participated[t]) u[t] = linalg::add(u_old[t], residual);
          primal_sq += linalg::squared_norm(residual);
          w_sq += linalg::squared_norm(w[t]);
          linalg::Vector target = linalg::add(w0, v[t]);
          target_sq += linalg::squared_norm(target);
          u_sq += linalg::squared_norm(u[t]);
        }
      }

      objective = linalg::squared_norm(w0);
      for (std::size_t t = 0; t < num_users; ++t) {
        objective += options.params.lambda / static_cast<double>(num_users) *
                         linalg::squared_norm(v[t]) +
                     xi[t];
      }
      const double dual_residual =
          options.rho * std::sqrt(2.0 * static_cast<double>(num_users)) *
          std::sqrt(linalg::squared_distance(w0, w0_old));
      const double primal_residual = std::sqrt(primal_sq);
      if (network != nullptr) {
        network->account_server_compute(server_watch.elapsed_seconds());
        network->end_round();
      }

      // Participants' server blocks now hold this step's data; every other
      // cached block aged by one step.
      for (std::size_t t = 0; t < num_users; ++t) {
        if (participated[t]) staleness.refresh(t, aggregation_step);
      }

      result.diagnostics.objective_trace.push_back(objective);
      result.diagnostics.primal_residual_trace.push_back(primal_residual);
      result.diagnostics.dual_residual_trace.push_back(dual_residual);
      static obs::Gauge& primal_gauge =
          obs::metrics().gauge("plos.admm.primal_residual");
      static obs::Gauge& dual_gauge =
          obs::metrics().gauge("plos.admm.dual_residual");
      static obs::Gauge& objective_gauge =
          obs::metrics().gauge("plos.admm.objective");
      static obs::Gauge& participation_gauge =
          obs::metrics().gauge("plos.admm.participation_rate");
      primal_gauge.set(primal_residual);
      dual_gauge.set(dual_residual);
      objective_gauge.set(objective);
      participation_gauge.set(participation_rate);
      PLOS_LOG_TRACE("admm iteration", obs::F("cccp", cccp),
                     obs::F("admm", admm), obs::F("objective", objective),
                     obs::F("primal_residual", primal_residual),
                     obs::F("dual_residual", dual_residual),
                     obs::F("participation", participation_rate));

      if (telemetry) {
        obs::RoundRecord record;
        record.trainer = "distributed";
        record.cccp_round = cccp;
        record.admm_iteration = admm;
        record.objective = objective;
        record.objective_finite = std::isfinite(objective);
        record.primal_residual = primal_residual;
        record.dual_residual = dual_residual;
        record.constraints = total_working_set_size();
        record.qp_solves =
            total_device_qp_solves() - iteration_qp_solves_before;
        record.qp_iterations =
            total_device_qp_iterations() - iteration_qp_iterations_before;
        record.participation_rate = participation_rate;
        record.quorum_size = participants;
        staleness.fill_record(record, aggregation_step);
        // Participation breakdown as per-cause counters — identical code
        // to the async engine's, which keeps degenerate-mode journals
        // byte-identical (DESIGN.md §14).
        obs::CauseCounters causes(kDeviceRoundStatusCount);
        for (std::size_t t = 0; t < num_users; ++t) {
          causes.add(static_cast<std::size_t>(status[t]));
        }
        record.cause_counts = causes.counts();
        if (network != nullptr) {
          const auto traffic = network->traffic_snapshot();
          record.bytes_to_devices =
              traffic.bytes_to_devices - previous_traffic.bytes_to_devices;
          record.bytes_to_server =
              traffic.bytes_to_server - previous_traffic.bytes_to_server;
          record.messages_dropped =
              traffic.messages_dropped - previous_traffic.messages_dropped;
          record.retries = traffic.retries - previous_traffic.retries;
          previous_traffic = traffic;
          const obs::QuantileSketch latency = network->latency_sketch();
          const obs::QuantileSketch step_latency =
              latency.diff(previous_latency);
          record.lat_count = step_latency.count();
          if (!step_latency.empty()) {
            record.lat_p50 = step_latency.quantile(0.50);
            record.lat_p90 = step_latency.quantile(0.90);
            record.lat_p99 = step_latency.quantile(0.99);
          }
          previous_latency = latency;
        }
        if (options.journal != nullptr) options.journal->append(record);
        if (options.watchdog != nullptr &&
            options.watchdog->observe(record) ==
                obs::WatchdogAction::kAbort) {
          watchdog_aborted = true;
          break;
        }
      }
      ++aggregation_step;

      // Paper thresholds (Eq. 24) plus Boyd's relative terms.
      const double primal_threshold =
          sqrt_t * options.eps_abs +
          options.eps_rel * std::sqrt(std::max(w_sq, target_sq));
      const double dual_threshold =
          std::sqrt(2.0) * sqrt_t * options.eps_abs +
          options.eps_rel * options.rho * std::sqrt(u_sq);
      if (dual_residual <= dual_threshold &&
          primal_residual <= primal_threshold) {
        break;
      }
    }

    result.diagnostics.round_seconds.push_back(round_watch.elapsed_seconds());
    result.diagnostics.round_admm_iterations.push_back(
        result.diagnostics.admm_iterations_total - round_admm_before);
    result.diagnostics.round_qp_solves.push_back(total_device_qp_solves() -
                                                 round_qp_before);
    PLOS_LOG_DEBUG(
        "cccp round", obs::F("round", cccp), obs::F("objective", objective),
        obs::F("admm_iterations", result.diagnostics.round_admm_iterations.back()),
        obs::F("qp_solves", result.diagnostics.round_qp_solves.back()),
        obs::F("seconds", result.diagnostics.round_seconds.back()));

    if (watchdog_aborted) {
      result.diagnostics.watchdog_aborted = true;
      break;
    }
    if (std::abs(previous_cccp_objective - objective) <=
        options.cccp.objective_tolerance * (1.0 + std::abs(objective))) {
      break;
    }
    previous_cccp_objective = objective;
  }
  result.diagnostics.qp_solves = total_device_qp_solves();

  result.model.global_weights = w0;
  for (std::size_t t = 0; t < num_users; ++t) {
    // Report consensus-consistent personal deviations w_t − w0 rather than
    // the local v_t (they coincide at exact convergence).
    result.model.user_deviations[t] = linalg::sub(w[t], w0);
  }
  result.diagnostics.train_seconds = total_watch.elapsed_seconds();
  if (network != nullptr) {
    result.diagnostics.fault_counters = network->fault_counters();
  }
  if (fault != nullptr) {
    const auto& d = result.diagnostics;
    double mean_participation = linalg::sum(d.participation_trace);
    if (!d.participation_trace.empty()) {
      mean_participation /= static_cast<double>(d.participation_trace.size());
    }
    PLOS_LOG_INFO(
        "fault degradation summary",
        obs::F("mean_participation", mean_participation),
        obs::F("offline", d.devices_offline_total),
        obs::F("deadline_misses", d.deadline_misses_total),
        obs::F("downlink_failures", d.downlink_failures_total),
        obs::F("uplink_failures", d.uplink_failures_total),
        obs::F("dropped", d.fault_counters.downlink_dropped +
                              d.fault_counters.uplink_dropped),
        obs::F("corrupted", d.fault_counters.downlink_corrupted +
                                d.fault_counters.uplink_corrupted),
        obs::F("retries", d.fault_counters.retries));
  }
  PLOS_LOG_INFO(
      "distributed train done",
      obs::F("cccp_rounds", result.diagnostics.cccp_iterations),
      obs::F("admm_iterations", result.diagnostics.admm_iterations_total),
      obs::F("qp_solves", result.diagnostics.qp_solves),
      obs::F("seconds", result.diagnostics.train_seconds));
  return result;
}

}  // namespace

DistributedPlosResult train_distributed_plos(
    const data::MultiUserDataset& dataset,
    const DistributedPlosOptions& options, net::SimNetwork* network) {
  return train_distributed_impl(dataset, options, network,
                                /*participation=*/1.0, /*schedule_seed=*/0);
}

DistributedPlosResult train_async_distributed_plos(
    const data::MultiUserDataset& dataset,
    const AsyncDistributedPlosOptions& options, net::SimNetwork* network) {
  PLOS_CHECK(options.participation > 0.0 && options.participation <= 1.0,
             "train_async_distributed_plos: participation outside (0, 1]");
  return train_distributed_impl(dataset, options.base, network,
                                options.participation, options.schedule_seed);
}

}  // namespace plos::core
