// Cross-validation over revealed labels for hyper-parameter selection
// (paper §VI-A: "we select parameters ... based on the accuracy reported by
// leave-one-out cross-validation").
//
// Folds are built over the revealed samples only: held-out samples have
// their labels hidden during training and are scored afterwards, so the
// procedure never peeks at labels a real system would not have.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/evaluation.hpp"
#include "data/dataset.hpp"

namespace plos::core {

struct CrossValidationOptions {
  /// Number of folds; 0 selects leave-one-out.
  std::size_t num_folds = 5;
  std::uint64_t seed = 17;
};

/// Trains on a dataset (with some labels hidden by the harness) and returns
/// per-user predictions for every sample.
using TrainPredictFn =
    std::function<std::vector<UserPrediction>(const data::MultiUserDataset&)>;

/// Mean held-out accuracy of `train_predict` across folds. Requires at
/// least 2 revealed samples in the dataset.
double cross_validate(const data::MultiUserDataset& dataset,
                      const TrainPredictFn& train_predict,
                      const CrossValidationOptions& options = {});

/// Evaluates `make_train_predict(candidate)` for every candidate and
/// returns the index of the best cross-validated accuracy (ties to the
/// first). Used to select λ, C, etc.
std::size_t select_best_parameter(
    const data::MultiUserDataset& dataset,
    const std::vector<double>& candidates,
    const std::function<TrainPredictFn(double)>& make_train_predict,
    const CrossValidationOptions& options = {});

}  // namespace plos::core
