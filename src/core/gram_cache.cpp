#include "core/gram_cache.hpp"

#include <bit>

#include "common/assert.hpp"
#include "linalg/kernels.hpp"
#include "obs/metrics.hpp"

namespace plos::core {

namespace {

// FNV-1a over the raw bit patterns: bitwise-identical vectors (and only
// those) share a hash. -0.0 vs +0.0 and NaN payloads hash differently,
// which is exactly right — "same plane" means same doubles.
std::uint64_t content_hash(const linalg::Vector& s) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t bits) {
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (bits >> shift) & 0xffull;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(s.size()));
  for (double v : s) mix(std::bit_cast<std::uint64_t>(v));
  return h;
}

bool bitwise_equal(const linalg::Vector& a, const linalg::Vector& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i]) !=
        std::bit_cast<std::uint64_t>(b[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::uint32_t PlaneGramCache::intern(const linalg::Vector& s) {
  static obs::Counter& interned =
      obs::metrics().counter("plos.gram_cache.planes_interned");
  static obs::Counter& reused =
      obs::metrics().counter("plos.gram_cache.planes_reused");
  const std::uint64_t hash = content_hash(s);
  auto& candidates = by_hash_[hash];
  for (std::uint32_t id : candidates) {
    if (bitwise_equal(planes_[id], s)) {
      reused.increment();
      return id;
    }
  }
  PLOS_CHECK(planes_.size() < UINT32_MAX, "PlaneGramCache: id overflow");
  const auto id = static_cast<std::uint32_t>(planes_.size());
  planes_.push_back(s);
  candidates.push_back(id);
  interned.increment();
  return id;
}

const linalg::Vector& PlaneGramCache::plane(std::uint32_t id) const {
  PLOS_CHECK(id < planes_.size(), "PlaneGramCache: plane id out of range");
  return planes_[id];
}

double PlaneGramCache::dot(std::uint32_t i, std::uint32_t j) {
  PLOS_CHECK(i < planes_.size() && j < planes_.size(),
             "PlaneGramCache: plane id out of range");
  static obs::Counter& computed =
      obs::metrics().counter("plos.gram_cache.dots_computed");
  static obs::Counter& hits =
      obs::metrics().counter("plos.gram_cache.dots_reused");
  if (!memoize_) {
    computed.increment();
    return linalg::kernels::blocked_dot(planes_[i], planes_[j]);
  }
  const std::uint64_t lo = i < j ? i : j;
  const std::uint64_t hi = i < j ? j : i;
  const std::uint64_t key = (lo << 32) | hi;
  const auto it = dots_.find(key);
  if (it != dots_.end()) {
    hits.increment();
    return it->second;
  }
  computed.increment();
  const double value = linalg::kernels::blocked_dot(planes_[i], planes_[j]);
  dots_.emplace(key, value);
  return value;
}

}  // namespace plos::core
