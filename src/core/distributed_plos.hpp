// Distributed PLOS (paper §V, Algorithm 2).
//
// Solves the same CCCP-convexified objective as the centralized trainer but
// with ADMM: raw data never leave the device. Per ADMM iteration:
//
//   device t:  receives (w0, u_t);  solves the local prox-regularized
//              1-slack problem (Eq. 22) by cutting planes — its dual is a
//              single-group capped-simplex QP with cap 1:
//                 max_{γ≥0, Σγ≤1} Σ_c γ_c (b_c − s_c·d) − ½ κ ||Σ γ_c s_c||²
//              where d = w0 − u_t and κ = T/(2λ) + 1/ρ, recovering
//                 w_t = d + κ g,   v_t = (T/(2λ)) g,   g = Σ γ_c s_c;
//              uploads (w_t, v_t, ξ_t).
//   server:    closed-form updates (Eq. 23)
//                 w0 ← ρ Σ(w_t − v_t + u_t) / (2 + Tρ),
//                 u_t ← u_t + (w_t − w0 − v_t),
//              and the residual stopping rule (Eq. 24).
//
// When a net::SimNetwork is supplied, every exchanged message is serialized
// to wire format and charged byte-exactly, and measured solver time is
// charged to simulated device/server CPUs (Figures 11-13).
//
// Fault tolerance (DESIGN.md §9): when the supplied network carries an
// enabled net::FaultModel, rounds degrade to partial participation instead
// of failing — offline devices are skipped for the round, messages travel
// as CRC32-checked frames with bounded retry/backoff, straggling devices
// past the round deadline are left behind, and the server's Eq. 23 update
// runs over the participating subset while missing/stale devices keep
// their last cached (w_t, v_t) and dual u_t. All participation decisions
// derive from the counter-based fault schedule — never from measured wall
// time — so faulty runs remain bitwise-deterministic at any thread count.
#pragma once

#include <cstdint>

#include "core/centralized_plos.hpp"  // PersonalizedModel, PlosDiagnostics
#include "core/options.hpp"
#include "data/dataset.hpp"
#include "net/simnet.hpp"

namespace plos::core {

struct DistributedPlosOptions {
  PlosHyperParams params;
  CuttingPlaneOptions cutting_plane;
  CccpOptions cccp;
  /// See CentralizedPlosOptions::qp for the tolerance rationale.
  qp::QpOptions qp{1e-7, 3000, {}};
  double rho = 1.0;        ///< ADMM step size (paper sets ρ = 1)
  double eps_abs = 1e-3;   ///< εabs of the residual stopping rule
  /// Relative residual term (Boyd et al. §3.3.1) added to the paper's
  /// absolute thresholds — without it the absolute rule never fires on
  /// data whose feature scale puts ||w_t|| well above εabs.
  double eps_rel = 1e-2;
  int max_admm_iterations = 300;
  /// Bootstrap round: label-providing devices train a local SVM on their
  /// revealed labels and upload it once; the server averages the uploads
  /// into the initial w0 (charged to the communication budget). Without
  /// labels anywhere the server falls back to a random unit direction.
  bool svm_bootstrap = true;
  double init_svm_c = 1.0;
  /// See CentralizedPlosOptions::cluster_sign_initialization; the 2-means
  /// runs on-device, so privacy is unaffected.
  bool cluster_sign_initialization = true;
  std::uint64_t seed = 99;
  /// Worker threads for concurrent per-device ADMM solves (and bootstrap
  /// SVM fits). 0 = all hardware threads, 1 = legacy serial. Models, byte
  /// ledgers, and traces are bitwise identical for every value; only real
  /// wall time changes (see DESIGN.md §8).
  int num_threads = 1;
  /// See CentralizedPlosOptions::hotpath_cache: disables the Gram-dot and
  /// Lipschitz memoization (bitwise-identical results, just slower); plane
  /// interning and cross-round warm starts stay on in both flavors.
  bool hotpath_cache = true;
  /// Telemetry sinks, both optional and borrowed. The journal receives
  /// one RoundRecord per ADMM iteration (objective, residuals,
  /// participation, byte/fault deltas from the simulated network),
  /// appended on the aggregation thread in iteration order — byte-
  /// identical at any thread count. The watchdog observes every record;
  /// under OnViolation::kAbort a violation stops training at the next
  /// iteration boundary (diagnostics.watchdog_aborted is set).
  obs::Journal* journal = nullptr;
  obs::Watchdog* watchdog = nullptr;
};

struct DistributedPlosDiagnostics {
  int cccp_iterations = 0;
  int admm_iterations_total = 0;  ///< summed over CCCP rounds
  int qp_solves = 0;              ///< device dual QP solves, all devices
  std::vector<double> objective_trace;        ///< per ADMM iteration
  std::vector<double> primal_residual_trace;  ///< ||r|| per ADMM iteration
  std::vector<double> dual_residual_trace;    ///< ||s|| per ADMM iteration
  double train_seconds = 0.0;  ///< real (not simulated) wall time
  /// Per-CCCP-round breakdown: wall time, ADMM iterations run, and device
  /// dual QP solves within the round (what train_seconds and
  /// admm_iterations_total aggregate away).
  std::vector<double> round_seconds;
  std::vector<int> round_admm_iterations;
  std::vector<int> round_qp_solves;
  /// Fraction of devices whose update reached the server, per ADMM
  /// iteration (1.0 throughout for fault-free synchronous runs).
  std::vector<double> participation_trace;
  // Graceful-degradation tallies; all zero without fault injection.
  std::size_t devices_offline_total = 0;   ///< churn absences over all rounds
  std::size_t deadline_misses_total = 0;   ///< straggler uploads skipped
  std::size_t downlink_failures_total = 0; ///< broadcasts lost after retries
  std::size_t uplink_failures_total = 0;   ///< updates lost after retries
  net::FaultCounters fault_counters;       ///< message drop/corrupt/retry totals
  /// True when the convergence watchdog aborted the run (see
  /// DistributedPlosOptions::watchdog).
  bool watchdog_aborted = false;
};

struct DistributedPlosResult {
  PersonalizedModel model;
  DistributedPlosDiagnostics diagnostics;
};

/// Trains distributed PLOS. `network` may be null (no accounting); when
/// set, it must have one device per user.
DistributedPlosResult train_distributed_plos(
    const data::MultiUserDataset& dataset,
    const DistributedPlosOptions& options = {},
    net::SimNetwork* network = nullptr);

/// Asynchronous variant (paper §VII future work): per ADMM iteration each
/// device responds only with probability `participation` (modeling slow or
/// sleeping phones); non-responders' last uploaded (w_t, v_t, ξ_t) stay in
/// force on the server, and their dual variables u_t are refreshed only
/// when they next respond. participation = 1 reduces to the synchronous
/// algorithm exactly.
struct AsyncDistributedPlosOptions {
  DistributedPlosOptions base;
  double participation = 0.7;        ///< in (0, 1]
  std::uint64_t schedule_seed = 7;   ///< device availability randomness
};

DistributedPlosResult train_async_distributed_plos(
    const data::MultiUserDataset& dataset,
    const AsyncDistributedPlosOptions& options = {},
    net::SimNetwork* network = nullptr);

}  // namespace plos::core
