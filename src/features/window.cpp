#include "features/window.hpp"

#include "common/assert.hpp"

namespace plos::features {

std::vector<WindowRange> sliding_windows(std::size_t num_samples,
                                         const WindowSpec& spec) {
  PLOS_CHECK(spec.length > 0 && spec.stride > 0,
             "sliding_windows: length and stride must be positive");
  std::vector<WindowRange> out;
  for (std::size_t begin = 0; begin + spec.length <= num_samples;
       begin += spec.stride) {
    out.push_back({begin, begin + spec.length});
  }
  return out;
}

std::span<const double> window_view(std::span<const double> signal,
                                    const WindowRange& range) {
  PLOS_CHECK(range.begin <= range.end && range.end <= signal.size(),
             "window_view: range outside signal");
  return signal.subspan(range.begin, range.end - range.begin);
}

}  // namespace plos::features
