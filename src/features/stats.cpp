#include "features/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/assert.hpp"

namespace plos::features {

double stddev(std::span<const double> x) {
  PLOS_CHECK(!x.empty(), "stddev: empty input");
  const double m = linalg::mean(x);
  double s = 0.0;
  for (double v : x) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(x.size()));
}

double quantile(std::span<const double> x, double q) {
  PLOS_CHECK(!x.empty(), "quantile: empty input");
  PLOS_CHECK(q >= 0.0 && q <= 1.0, "quantile: q outside [0,1]");
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> x) { return quantile(x, 0.5); }

double median_absolute_deviation(std::span<const double> x) {
  const double med = median(x);
  std::vector<double> dev(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) dev[i] = std::abs(x[i] - med);
  return median(dev);
}

double energy(std::span<const double> x) {
  PLOS_CHECK(!x.empty(), "energy: empty input");
  return linalg::squared_norm(x) / static_cast<double>(x.size());
}

double interquartile_range(std::span<const double> x) {
  return quantile(x, 0.75) - quantile(x, 0.25);
}

double max_value(std::span<const double> x) {
  PLOS_CHECK(!x.empty(), "max_value: empty input");
  return *std::max_element(x.begin(), x.end());
}

double min_value(std::span<const double> x) {
  PLOS_CHECK(!x.empty(), "min_value: empty input");
  return *std::min_element(x.begin(), x.end());
}

linalg::Vector signal_features(std::span<const double> x) {
  return {linalg::mean(x),  stddev(x),    median_absolute_deviation(x),
          max_value(x),     min_value(x), energy(x),
          interquartile_range(x)};
}

}  // namespace plos::features
