// Fixed-width sliding-window segmentation (paper: 3.2 s windows at 20 Hz
// with 50 % overlap → 64-sample windows, 32-sample stride).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace plos::features {

struct WindowSpec {
  std::size_t length = 64;  ///< samples per window (> 0)
  std::size_t stride = 32;  ///< hop between window starts (> 0)
};

struct WindowRange {
  std::size_t begin = 0;  ///< first sample index
  std::size_t end = 0;    ///< one past the last sample index
};

/// Start/end ranges of every full window over a signal of `num_samples`
/// samples. Partial trailing windows are dropped (as in the paper's
/// fixed-width segmentation).
std::vector<WindowRange> sliding_windows(std::size_t num_samples,
                                         const WindowSpec& spec);

/// Convenience: the sub-span of `signal` covered by `range`.
std::span<const double> window_view(std::span<const double> signal,
                                    const WindowRange& range);

}  // namespace plos::features
