// Per-signal descriptive statistics used by the body-sensor feature
// extractor (paper §VI-B: mean, standard deviation, median absolute
// deviation, max, min, energy, interquartile range).
#pragma once

#include <span>

#include "linalg/vector.hpp"

namespace plos::features {

/// Population standard deviation. Requires non-empty input.
double stddev(std::span<const double> x);

/// q-quantile with linear interpolation, q in [0, 1]. Requires non-empty.
double quantile(std::span<const double> x, double q);

/// Median (0.5-quantile).
double median(std::span<const double> x);

/// Median absolute deviation from the median.
double median_absolute_deviation(std::span<const double> x);

/// Mean of squares (signal energy per sample).
double energy(std::span<const double> x);

/// Interquartile range q75 - q25.
double interquartile_range(std::span<const double> x);

double max_value(std::span<const double> x);
double min_value(std::span<const double> x);

/// The paper's 7 per-signal features in a fixed order:
/// {mean, stddev, MAD, max, min, energy, IQR}.
linalg::Vector signal_features(std::span<const double> x);

inline constexpr std::size_t kPerSignalFeatureCount = 7;

}  // namespace plos::features
