#include "features/extractor.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "features/stats.hpp"

namespace plos::features {

linalg::Vector accel_cross_features(std::span<const double> ax,
                                    std::span<const double> ay,
                                    std::span<const double> az) {
  PLOS_CHECK(ax.size() == ay.size() && ay.size() == az.size() && !ax.empty(),
             "accel_cross_features: signals must be equal-length, non-empty");
  const auto n = static_cast<double>(ax.size());

  double magnitude_sum = 0.0;
  double sma = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    magnitude_sum +=
        std::sqrt(ax[i] * ax[i] + ay[i] * ay[i] + az[i] * az[i]);
    sma += std::abs(ax[i]) + std::abs(ay[i]) + std::abs(az[i]);
  }

  const double mx = linalg::mean(ax);
  const double my = linalg::mean(ay);
  const double mz = linalg::mean(az);
  const double mnorm = std::sqrt(mx * mx + my * my + mz * mz);
  const auto axis_angle = [mnorm](double component) {
    if (mnorm <= 0.0) return 0.0;
    const double c = std::clamp(component / mnorm, -1.0, 1.0);
    return std::acos(c);
  };

  return {magnitude_sum / n, axis_angle(mx), axis_angle(my), axis_angle(mz),
          sma / n};
}

linalg::Vector node_window_features(const NodeSignals& node,
                                    const WindowRange& range) {
  const std::size_t n = node.num_samples();
  PLOS_CHECK(node.accel_y.size() == n && node.accel_z.size() == n &&
                 node.gyro_u.size() == n && node.gyro_v.size() == n,
             "node_window_features: node signals must be equal-length");

  const std::array<std::span<const double>, kSignalsPerNode> signals = {
      window_view(node.accel_x, range), window_view(node.accel_y, range),
      window_view(node.accel_z, range), window_view(node.gyro_u, range),
      window_view(node.gyro_v, range)};

  linalg::Vector out;
  out.reserve(kNodeFeatureCount);
  for (const auto& s : signals) {
    const linalg::Vector f = signal_features(s);
    out.insert(out.end(), f.begin(), f.end());
  }
  const linalg::Vector cross =
      accel_cross_features(signals[0], signals[1], signals[2]);
  out.insert(out.end(), cross.begin(), cross.end());
  PLOS_ASSERT(out.size() == kNodeFeatureCount);
  return out;
}

linalg::Vector multi_node_window_features(std::span<const NodeSignals> nodes,
                                          const WindowRange& range) {
  PLOS_CHECK(!nodes.empty(), "multi_node_window_features: no nodes");
  linalg::Vector out;
  out.reserve(nodes.size() * kNodeFeatureCount);
  for (const auto& node : nodes) {
    const linalg::Vector f = node_window_features(node, range);
    out.insert(out.end(), f.begin(), f.end());
  }
  return out;
}

std::vector<linalg::Vector> extract_windows(std::span<const NodeSignals> nodes,
                                            const WindowSpec& spec) {
  PLOS_CHECK(!nodes.empty(), "extract_windows: no nodes");
  const std::size_t n = nodes.front().num_samples();
  for (const auto& node : nodes) {
    PLOS_CHECK(node.num_samples() == n,
               "extract_windows: nodes must share a time axis");
  }
  std::vector<linalg::Vector> out;
  for (const WindowRange& range : sliding_windows(n, spec)) {
    out.push_back(multi_node_window_features(nodes, range));
  }
  return out;
}

}  // namespace plos::features
