// Window-level feature assembly for body-sensor nodes.
//
// Each node carries a triaxial accelerometer (x, y, z) and a biaxial
// gyroscope (u, v) — 5 signals. Per window the extractor emits:
//   * 7 statistics per signal (features::signal_features)      → 35
//   * accelerometer cross-signal features                      →  5
//     {mean magnitude, angle(mean accel, x/y/z axis), SMA}
// for 40 features per node; three nodes (waist, left shin, right shin)
// concatenate to the paper's 120-dimensional vector.
#pragma once

#include <array>
#include <span>

#include "features/window.hpp"
#include "linalg/vector.hpp"

namespace plos::features {

inline constexpr std::size_t kSignalsPerNode = 5;   // ax, ay, az, gu, gv
inline constexpr std::size_t kAccelCrossFeatureCount = 5;
inline constexpr std::size_t kNodeFeatureCount = 40;

/// One node's signals over a common time axis (equal lengths).
struct NodeSignals {
  linalg::Vector accel_x;
  linalg::Vector accel_y;
  linalg::Vector accel_z;
  linalg::Vector gyro_u;
  linalg::Vector gyro_v;

  std::size_t num_samples() const { return accel_x.size(); }
};

/// Cross-signal accelerometer features over one window:
/// {mean |a|, angle to x axis, angle to y axis, angle to z axis, SMA}.
/// Angles are of the window-mean acceleration vector, in radians; an
/// all-zero mean vector yields zero angles.
linalg::Vector accel_cross_features(std::span<const double> ax,
                                    std::span<const double> ay,
                                    std::span<const double> az);

/// 40-dimensional feature vector of one node over `range`.
linalg::Vector node_window_features(const NodeSignals& node,
                                    const WindowRange& range);

/// Concatenated feature vector of several nodes over `range`
/// (3 nodes → 120 dimensions).
linalg::Vector multi_node_window_features(std::span<const NodeSignals> nodes,
                                          const WindowRange& range);

/// Segments the nodes' common time axis with `spec` and extracts one
/// feature vector per window.
std::vector<linalg::Vector> extract_windows(std::span<const NodeSignals> nodes,
                                            const WindowSpec& spec);

}  // namespace plos::features
