#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/assert.hpp"
#include "linalg/kernels.hpp"

namespace plos::linalg {

namespace {

double off_diagonal_norm(const Matrix& a) {
  return std::sqrt(kernels::serial_off_diagonal_squared_sum(
      a.data(), a.rows(), a.cols()));
}

}  // namespace

EigenDecomposition symmetric_eigen(const Matrix& a, double tol,
                                   int max_sweeps) {
  PLOS_CHECK(a.rows() == a.cols(), "symmetric_eigen: matrix must be square");
  const std::size_t n = a.rows();

  // Work on the symmetrized copy; accumulate rotations into V.
  Matrix w(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) w(i, j) = 0.5 * (a(i, j) + a(j, i));
  }
  Matrix v = Matrix::identity(n);

  const double scale = std::max(1.0, off_diagonal_norm(w));
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm(w) <= tol * scale) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = w(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double theta = (w(q, q) - w(p, p)) / (2.0 * apq);
        // Stable tangent of the rotation angle (Golub & Van Loan 8.4).
        const double t = (theta >= 0.0)
                             ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                             : 1.0 / (theta - std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        // W <- J^T W J applied to rows/cols p and q.
        for (std::size_t k = 0; k < n; ++k) {
          const double wkp = w(k, p), wkq = w(k, q);
          w(k, p) = c * wkp - s * wkq;
          w(k, q) = s * wkp + c * wkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double wpk = w(p, k), wqk = w(q, k);
          w(p, k) = c * wpk - s * wqk;
          w(q, k) = s * wpk + c * wqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Collect and sort ascending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return w(i, i) < w(j, j); });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    out.values[k] = w(order[k], order[k]);
    for (std::size_t i = 0; i < n; ++i) out.vectors(k, i) = v(i, order[k]);
  }
  return out;
}

}  // namespace plos::linalg
