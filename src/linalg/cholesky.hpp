// Cholesky factorization and SPD linear solves.
//
// Used by the multivariate-normal sampler (covariance factoring) and as a
// building block for QP diagnostics.
#pragma once

#include <optional>

#include "linalg/matrix.hpp"

namespace plos::linalg {

/// Lower-triangular Cholesky factor L with A = L L^T.
/// Returns std::nullopt when A is not (numerically) positive definite.
std::optional<Matrix> cholesky(const Matrix& a);

/// Solve A x = b given the Cholesky factor L of A (forward then back subst).
Vector cholesky_solve(const Matrix& l, std::span<const double> b);

/// Solve the SPD system A x = b directly; nullopt when A is not SPD.
std::optional<Vector> solve_spd(const Matrix& a, std::span<const double> b);

}  // namespace plos::linalg
