#include "linalg/cholesky.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace plos::linalg {

std::optional<Matrix> cholesky(const Matrix& a) {
  PLOS_CHECK(a.rows() == a.cols(), "cholesky: matrix must be square");
  const std::size_t n = a.rows();
  // Checked-build precondition: the factorization only reads the lower
  // triangle, so an asymmetric input silently factors the wrong matrix.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double scale = std::max({1.0, std::abs(a(i, j)), std::abs(a(j, i))});
      PLOS_DCHECK(std::abs(a(i, j) - a(j, i)) <= 1e-9 * scale,
                  "cholesky: asymmetric input at (" << i << "," << j << "): "
                                                    << a(i, j) << " vs "
                                                    << a(j, i));
    }
  }
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (d <= 0.0 || !std::isfinite(d)) return std::nullopt;
    l(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
  return l;
}

Vector cholesky_solve(const Matrix& l, std::span<const double> b) {
  const std::size_t n = l.rows();
  PLOS_CHECK(l.cols() == n && b.size() == n, "cholesky_solve: size mismatch");
  // A factor from a successful cholesky() has a strictly positive diagonal;
  // anything else divides by zero below.
  for (std::size_t i = 0; i < n; ++i) {
    PLOS_DCHECK(l(i, i) > 0.0, "cholesky_solve: non-positive pivot L("
                                   << i << "," << i << ")=" << l(i, i));
  }
  // Forward substitution: L y = b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  // Back substitution: L^T x = y.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

std::optional<Vector> solve_spd(const Matrix& a, std::span<const double> b) {
  auto l = cholesky(a);
  if (!l) return std::nullopt;
  return cholesky_solve(*l, b);
}

}  // namespace plos::linalg
