// Dense vector kernels (BLAS level-1) used throughout the PLOS library.
//
// Vectors are plain std::vector<double>; all kernels take std::span views so
// they compose with Matrix rows and sub-ranges without copies.
#pragma once

#include <span>
#include <vector>

namespace plos::linalg {

using Vector = std::vector<double>;

/// Inner product <a, b>. Requires a.size() == b.size().
double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm ||a||.
double norm(std::span<const double> a);

/// Squared Euclidean norm ||a||^2.
double squared_norm(std::span<const double> a);

/// Squared distance ||a - b||^2. Requires equal sizes.
double squared_distance(std::span<const double> a, std::span<const double> b);

/// y += alpha * x. Requires equal sizes.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void scale(std::span<double> x, double alpha);

/// Element-wise a + b.
Vector add(std::span<const double> a, std::span<const double> b);

/// Element-wise a - b.
Vector sub(std::span<const double> a, std::span<const double> b);

/// alpha * a (new vector).
Vector scaled(std::span<const double> a, double alpha);

/// Zero vector of dimension n.
Vector zeros(std::size_t n);

/// Sum of elements.
double sum(std::span<const double> a);

/// Arithmetic mean. Requires non-empty input.
double mean(std::span<const double> a);

/// True when ||a - b||_inf <= tol.
bool approx_equal(std::span<const double> a, std::span<const double> b,
                  double tol);

}  // namespace plos::linalg
