#include "linalg/vector.hpp"

#include <cmath>
#include <cstdlib>

#include "common/assert.hpp"
#include "linalg/kernels.hpp"

namespace plos::linalg {

// The reductions delegate to the blocked kernels (linalg/kernels.hpp): one
// accumulation order for the whole library, pinned by the kernel golden
// tests so every caller — QP solvers, cutting planes, evaluation — produces
// the same doubles on every build and thread count.

double dot(std::span<const double> a, std::span<const double> b) {
  return kernels::blocked_dot(a, b);
}

double norm(std::span<const double> a) { return std::sqrt(squared_norm(a)); }

double squared_norm(std::span<const double> a) {
  return kernels::blocked_squared_norm(a);
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  return kernels::blocked_squared_distance(a, b);
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  kernels::blocked_axpy(alpha, x, y);
}

void scale(std::span<double> x, double alpha) {
  for (double& v : x) v *= alpha;
}

Vector add(std::span<const double> a, std::span<const double> b) {
  PLOS_CHECK(a.size() == b.size(), "add: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector sub(std::span<const double> a, std::span<const double> b) {
  PLOS_CHECK(a.size() == b.size(), "sub: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector scaled(std::span<const double> a, double alpha) {
  Vector out(a.begin(), a.end());
  scale(out, alpha);
  return out;
}

Vector zeros(std::size_t n) { return Vector(n, 0.0); }

double sum(std::span<const double> a) {
  // Strict left-to-right order, pinned in the kernels TU (§13).
  return kernels::serial_sum(a);
}

double mean(std::span<const double> a) {
  PLOS_CHECK(!a.empty(), "mean: empty input");
  return sum(a) / static_cast<double>(a.size());
}

bool approx_equal(std::span<const double> a, std::span<const double> b,
                  double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace plos::linalg
