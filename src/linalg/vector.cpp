#include "linalg/vector.hpp"

#include <cmath>
#include <cstdlib>

#include "common/assert.hpp"

namespace plos::linalg {

double dot(std::span<const double> a, std::span<const double> b) {
  PLOS_CHECK(a.size() == b.size(), "dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(std::span<const double> a) { return std::sqrt(squared_norm(a)); }

double squared_norm(std::span<const double> a) {
  double s = 0.0;
  for (double v : a) s += v * v;
  return s;
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  PLOS_CHECK(a.size() == b.size(), "squared_distance: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  PLOS_CHECK(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<double> x, double alpha) {
  for (double& v : x) v *= alpha;
}

Vector add(std::span<const double> a, std::span<const double> b) {
  PLOS_CHECK(a.size() == b.size(), "add: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector sub(std::span<const double> a, std::span<const double> b) {
  PLOS_CHECK(a.size() == b.size(), "sub: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector scaled(std::span<const double> a, double alpha) {
  Vector out(a.begin(), a.end());
  scale(out, alpha);
  return out;
}

Vector zeros(std::size_t n) { return Vector(n, 0.0); }

double sum(std::span<const double> a) {
  double s = 0.0;
  for (double v : a) s += v;
  return s;
}

double mean(std::span<const double> a) {
  PLOS_CHECK(!a.empty(), "mean: empty input");
  return sum(a) / static_cast<double>(a.size());
}

bool approx_equal(std::span<const double> a, std::span<const double> b,
                  double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace plos::linalg
